// Quickstart: build a small GEM computation by hand, inspect its orders,
// enumerate its histories and valid history sequences, and check a
// specification written in the concrete GEM syntax against it.
//
// The scenario is the paper's running example: an integer variable Var
// with Assign and Getval events, written to by one process and read by
// another. The element order serializes the accesses even though the
// processes never synchronize.
package main

import (
	"fmt"
	"log"

	"gem/internal/core"
	"gem/internal/gemlang"
	"gem/internal/history"
	"gem/internal/legal"
)

const specSource = `
SPEC quickstart

ELEMENT TYPE Variable
  EVENTS
    Assign(newval: VALUE)
    Getval(oldval: VALUE)
  RESTRICTIONS
    "reads-last-assign":
      (FORALL assign: Assign, getval: Getval)
        (assign ~> getval &
         ~((EXISTS assign2: Assign) (assign ~> assign2 & assign2 ~> getval)))
        -> assign.newval = getval.oldval ;
END

ELEMENT Var : Variable
ELEMENT writer EVENTS Work END
ELEMENT reader EVENTS Use(v: VALUE) END
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Compile the specification from the paper-style concrete syntax.
	spec, err := gemlang.Parse(specSource)
	if err != nil {
		return err
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	fmt.Println("compiled specification:", spec.Name)

	// 2. Build a computation: the writer assigns 5 then 7; the reader
	// reads between the two assignments and uses the value.
	b := core.NewBuilder()
	work := b.Event("writer", "Work", nil)
	a1 := b.Event("Var", "Assign", core.Params{"newval": core.Int(5)})
	g := b.Event("Var", "Getval", core.Params{"oldval": core.Int(5)})
	use := b.Event("reader", "Use", core.Params{"v": core.Int(5)})
	a2 := b.Event("Var", "Assign", core.Params{"newval": core.Int(7)})
	b.Enable(work, a1) // the writer's work enables the first assignment
	b.Enable(a1, a2)   // and its own second assignment
	b.Enable(g, use)   // the read enables the reader's use
	c, err := b.Build()
	if err != nil {
		return err
	}
	fmt.Print(c)

	// 3. Inspect the three orders of Section 5.
	fmt.Println("\norders:")
	fmt.Printf("  a1 |> a2 (enable):        %v\n", c.EnablesDirect(a1, a2))
	fmt.Printf("  a1 ~> g  (element order): %v\n", c.ElemBefore(a1, g))
	fmt.Printf("  work => use (temporal):   %v\n", c.Temporal(work, use))
	fmt.Printf("  work || g (concurrent):   %v\n", c.Concurrent(work, g))

	// 4. Histories and valid history sequences (Section 7).
	fmt.Printf("\nhistories: %d\n", history.Count(c))
	fmt.Printf("maximal valid history sequences: %d\n", history.CountComplete(c))

	// 5. Legality: the computation obeys the Variable restriction...
	res := legal.Check(spec, c, legal.Options{})
	fmt.Printf("\nlegal(C, σ) = %v\n", res.Legal())

	// ...and a stale read is refuted.
	c.Event(g).Params["oldval"] = core.Int(99)
	res = legal.Check(spec, c, legal.Options{})
	fmt.Printf("after corrupting the read: legal(C, σ) = %v\n", res.Legal())
	if res.Legal() {
		return fmt.Errorf("quickstart: corruption not detected")
	}
	fmt.Println("violation:", res.Violations[0].Restriction)
	return nil
}
