// Readers/Writers end to end — the paper's Sections 8 and 9:
//
//  1. Build the Section 8 GEM problem specification (operation chains,
//     πRW threads, mutual exclusion, readers priority).
//  2. Run the paper's Section 9 ReadersWriters monitor exhaustively
//     under a 2-readers/1-writer workload.
//  3. Verify every computation with the sat methodology: project onto
//     the significant objects and check the problem's restrictions.
//  4. Repeat with a writers-priority monitor: the readers-priority
//     restriction refutes it, and the counterexample is shown.
package main

import (
	"fmt"
	"log"

	"gem/internal/logic"
	"gem/internal/monitor"
	"gem/internal/problems/rw"
	"gem/internal/spec"
	"gem/internal/verify"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clients := []string{"r1", "r2", "w1"}
	workload := rw.Workload{Readers: 2, Writers: 1}

	problem, err := rw.ProblemSpec(clients, true /* readers priority */)
	if err != nil {
		return err
	}
	fmt.Println("problem specification:", problem.Name)
	for _, r := range problem.Restrictions() {
		fmt.Printf("  restriction %q (of %s)\n", r.Name, r.Owner)
	}
	corr := rw.MonitorCorrespondence()

	fmt.Println("\n== the paper's readers-priority monitor ==")
	failures, runs, err := checkVariant(problem, rw.ReadersPriority, workload, corr)
	if err != nil {
		return err
	}
	fmt.Printf("%d computations explored, %d refuted\n", runs, failures)
	if failures != 0 {
		return fmt.Errorf("the paper's monitor must verify")
	}
	fmt.Println("=> PROG sat P: the monitor implements reader's priority")

	fmt.Println("\n== a writers-priority monitor against the same spec ==")
	failures, runs, err = checkVariant(problem, rw.WritersPriority, workload, corr)
	if err != nil {
		return err
	}
	fmt.Printf("%d computations explored, %d refuted\n", runs, failures)
	if failures == 0 {
		return fmt.Errorf("the writers-priority monitor must be refuted")
	}
	fmt.Println("=> correctly refuted: a pending read was overtaken by a write")
	return nil
}

func checkVariant(problem *spec.Spec, v rw.Variant, w rw.Workload, corr verify.Correspondence) (failures, total int, err error) {
	prog := rw.NewProgram(v, w)
	runs, truncated, err := monitor.Explore(prog, monitor.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		return 0, 0, err
	}
	if truncated {
		return 0, 0, fmt.Errorf("exploration truncated")
	}
	shown := false
	for _, r := range runs {
		if r.Deadlock {
			return 0, 0, fmt.Errorf("%v deadlocked", v)
		}
		res := verify.Check(problem, r.Comp, corr, logic.CheckOptions{})
		if !res.Sat() {
			failures++
			if !shown {
				shown = true
				fmt.Printf("first counterexample: %v\n", firstLine(res.Error().Error()))
			}
		}
	}
	return failures, len(runs), nil
}

func firstLine(s string) string {
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			return s[:i]
		}
	}
	return s
}
