// Asynchronous distributed Game of Life — the paper's second distributed
// application. A glider travels across the board with every cell running
// as an independent process, generations drifting apart under a random
// schedule, yet each final board equals the synchronous reference
// (functional correctness). The GEM computation of one run is checked
// against the Life specification, including the generation-causality
// restriction that replaces the global barrier.
package main

import (
	"fmt"
	"log"

	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/problems/life"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	board := life.NewBoard(6, 6)
	// Glider.
	board[0][1] = true
	board[1][2] = true
	board[2][0], board[2][1], board[2][2] = true, true, true

	const gens = 4
	fmt.Printf("start:\n%s\n", board)
	want := life.SyncRun(board.Clone(), gens)
	fmt.Printf("synchronous reference after %d generations:\n%s\n", gens, want)

	for seed := int64(0); seed < 8; seed++ {
		run, err := life.AsyncRun(board.Clone(), gens, seed)
		if err != nil {
			return err
		}
		if !run.Final.Equal(want) {
			return fmt.Errorf("seed %d diverged:\n%s", seed, run.Final)
		}
	}
	fmt.Println("8/8 asynchronous schedules match the synchronous reference")

	// Check one run's GEM computation: legality (channel integrity,
	// ascending generations) and the causality restriction.
	sample, err := life.AsyncRun(board.Clone(), gens, 1)
	if err != nil {
		return err
	}
	fmt.Printf("\nsample computation: %d events\n", sample.Comp.NumEvents())
	s := life.Spec(board)
	if err := s.Validate(); err != nil {
		return err
	}
	res := legal.Check(s, sample.Comp, legal.Options{})
	fmt.Printf("legal w.r.t. the Life spec: %v\n", res.Legal())
	if !res.Legal() {
		return res.Error()
	}
	if cx := logic.HoldsAtFull(life.GenerationCausality(board, gens), sample.Comp); cx != nil {
		return fmt.Errorf("causality violated: %v", cx.Error())
	}
	fmt.Println("generation causality holds: every Compute(g) follows all neighbour Compute(g-1)")
	return nil
}
