// CSP bounded buffer verified against the Bounded Buffer problem
// specification — one cell of the paper's Section 11 matrix, shown in
// detail: the CSP program, the exhaustive exploration, one generated
// computation with the simultaneity structure visible, the projection
// onto the problem's significant objects, and the sat verdict.
package main

import (
	"fmt"
	"log"

	"gem/internal/core"
	"gem/internal/csp"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/problems/boundedbuf"
	"gem/internal/verify"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w := boundedbuf.Workload{Producers: 2, Consumers: 1, ItemsPerProducer: 1, Capacity: 2}
	problem, err := boundedbuf.ProblemSpec(w)
	if err != nil {
		return err
	}
	prog := boundedbuf.NewCSPProgram(w)
	fmt.Printf("CSP bounded buffer: %d producers, %d consumers, capacity %d\n",
		w.Producers, w.Consumers, w.Capacity)

	// The CSP primitive's own spec: every computation must be legal with
	// respect to it (simultaneity of exchange, value transfer, …).
	cspSpec := csp.Spec(prog)
	if err := cspSpec.Validate(); err != nil {
		return err
	}

	runs, truncated, err := csp.Explore(prog, csp.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		return err
	}
	if truncated {
		return fmt.Errorf("exploration truncated")
	}
	fmt.Printf("explored %d distinct computations (as partial orders)\n\n", len(runs))

	corr := boundedbuf.CSPCorrespondence(w)
	for i, r := range runs {
		if r.Deadlock {
			return fmt.Errorf("run %d deadlocked", i)
		}
		if res := legal.Check(cspSpec, r.Comp, legal.Options{}); !res.Legal() {
			return fmt.Errorf("run %d violates the CSP primitive spec: %v", i, res.Error())
		}
		res := verify.Check(problem, r.Comp, corr, logic.CheckOptions{})
		if !res.Sat() {
			return fmt.Errorf("run %d fails sat: %v", i, res.Error())
		}
	}
	fmt.Println("every computation satisfies the CSP primitive spec AND the problem spec")

	// Show the structure of one computation and its projection.
	sample := runs[0]
	fmt.Println("\nsample computation (program level):")
	fmt.Print(sample.Comp)
	proj, err := verify.Project(sample.Comp, corr)
	if err != nil {
		return err
	}
	fmt.Println("\nits projection onto the problem's significant objects:")
	fmt.Print(proj.Comp)

	// The simultaneity of CSP exchange is visible as concurrency between
	// the two requests of one communication.
	outReq := sample.Comp.EventsOf(core.Ref(csp.OutElement(boundedbuf.ProducerName(1), boundedbuf.BufferTask), "Req"))
	inpReq := sample.Comp.EventsOf(core.Ref(csp.InpElement(boundedbuf.BufferTask, boundedbuf.ProducerName(1)), "Req"))
	if len(outReq) > 0 && len(inpReq) > 0 {
		fmt.Printf("\nsimultaneity: p1's out.Req and B's inp.Req concurrent = %v\n",
			sample.Comp.Concurrent(outReq[0], inpReq[0]))
	}
	return nil
}
