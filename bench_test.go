// Benchmark harness: one benchmark per experiment of DESIGN.md's
// experiment index (E1–E10). The paper (PODC 1983) contains no
// quantitative tables; its artifacts are worked enumerations and verified
// case studies, so each benchmark regenerates the corresponding artifact
// and reports its cost. EXPERIMENTS.md records the qualitative
// paper-vs-measured comparison.
package gem

import (
	"fmt"
	"io"
	"path/filepath"
	"testing"

	"gem/internal/ada"
	"gem/internal/check"
	"gem/internal/core"
	"gem/internal/csp"
	"gem/internal/gofront"
	"gem/internal/history"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/monitor"
	"gem/internal/mutate"
	"gem/internal/order"
	"gem/internal/problems/boundedbuf"
	"gem/internal/problems/dbupdate"
	"gem/internal/problems/life"
	"gem/internal/problems/oneslot"
	"gem/internal/problems/rw"
	"gem/internal/race"
	"gem/internal/store"
	"gem/internal/thread"
	"gem/internal/verify"
)

// BenchmarkE1GroupAccess regenerates the Section 4 allowed-enable table:
// the 6-element, 4-group structure and its full access relation.
func BenchmarkE1GroupAccess(b *testing.B) {
	elems := []string{"EL1", "EL2", "EL3", "EL4", "EL5", "EL6"}
	want := map[string]int{"EL1": 2, "EL2": 3, "EL3": 4, "EL4": 4, "EL5": 3, "EL6": 1}
	for i := 0; i < b.N; i++ {
		u := core.NewUniverse()
		for _, e := range elems {
			u.AddElement(e)
		}
		u.AddGroup("G1", "EL2", "EL3")
		u.AddGroup("G2", "EL4", "EL5")
		u.AddGroup("G3", "EL3", "EL4")
		u.AddGroup("G4", "EL1")
		if err := u.Validate(); err != nil {
			b.Fatal(err)
		}
		for _, src := range elems {
			n := 0
			for _, dst := range elems {
				if u.Access(src, dst) {
					n++
				}
			}
			if n != want[src] {
				b.Fatalf("access row %s = %d targets, want %d", src, n, want[src])
			}
		}
	}
}

// BenchmarkE2Histories regenerates the Section 7 enumeration: the diamond
// computation's 6 histories and 3 maximal valid history sequences
// (vs 2 linear extensions).
func BenchmarkE2Histories(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bd := core.NewBuilder()
		ids := make([]core.EventID, 4)
		for k := range ids {
			ids[k] = bd.Event(fmt.Sprintf("EL%d", k+1), "E", nil)
		}
		bd.Enable(ids[0], ids[1])
		bd.Enable(ids[0], ids[2])
		bd.Enable(ids[1], ids[3])
		bd.Enable(ids[2], ids[3])
		c, err := bd.Build()
		if err != nil {
			b.Fatal(err)
		}
		if got := history.Count(c); got != 6 {
			b.Fatalf("histories = %d, want 6", got)
		}
		if got := history.CountComplete(c); got != 3 {
			b.Fatalf("vhs = %d, want 3", got)
		}
		if got := history.EnumerateLinear(c, 0, func(history.Sequence) bool { return true }); got != 2 {
			b.Fatalf("linear extensions = %d, want 2", got)
		}
	}
}

// BenchmarkE3RWSpec compiles the Section 8 Readers/Writers problem
// specification (through the gemlang parser) and checks a serialized
// computation against it, including the temporal priority restriction.
func BenchmarkE3RWSpec(b *testing.B) {
	users := []string{"u1", "u2"}
	for i := 0; i < b.N; i++ {
		s, err := rw.ProblemSpec(users, true)
		if err != nil {
			b.Fatal(err)
		}
		c, err := rw.BuildComputation(s, []rw.Transaction{
			{User: "u1", Write: true, Value: 7},
			{User: "u2"},
			{User: "u1"},
		})
		if err != nil {
			b.Fatal(err)
		}
		if res := legal.Check(s, c, legal.Options{}); !res.Legal() {
			b.Fatal(res.Error())
		}
	}
}

// BenchmarkE4MonitorRW reproduces the Section 9 verification: exhaustive
// exploration of the paper's ReadersWriters monitor (2 readers, 1
// writer) with the priority, mutual-exclusion, and sharing properties
// checked on every computation; the writers-priority mutant must fail.
// The j sub-benchmarks exercise the parallel check engine
// (logic.HoldsEvery fans (computation, property) pairs out to a worker
// pool); j=1 is the sequential engine.
func BenchmarkE4MonitorRW(b *testing.B) {
	w := rw.Workload{Readers: 2, Writers: 1}
	me, rp := rw.MutualExclusionProp(), rw.ReadersPriorityProp()
	for _, j := range []int{1, 4} {
		j := j
		b.Run(fmt.Sprintf("j%d", j), func(b *testing.B) {
			opts := logic.CheckOptions{Parallelism: j}
			for i := 0; i < b.N; i++ {
				runs, _, err := monitor.Explore(rw.NewProgram(rw.ReadersPriority, w), monitor.ExploreOptions{})
				if err != nil {
					b.Fatal(err)
				}
				comps := make([]*core.Computation, len(runs))
				for k, r := range runs {
					comps[k] = r.Comp
				}
				if ci, _, _ := logic.HoldsEvery([]logic.Formula{me, rp}, comps, opts); ci >= 0 {
					b.Fatal("paper monitor must satisfy ME and readers priority")
				}
				// The mutant must be refuted at least once.
				mutantRuns, _, err := monitor.Explore(rw.NewProgram(rw.WritersPriority, w), monitor.ExploreOptions{})
				if err != nil {
					b.Fatal(err)
				}
				mutants := make([]*core.Computation, len(mutantRuns))
				for k, r := range mutantRuns {
					mutants[k] = r.Comp
				}
				if ci, _, _ := logic.HoldsEvery([]logic.Formula{rp}, mutants, opts); ci < 0 {
					b.Fatal("writers-priority mutant must be refuted")
				}
			}
		})
	}
}

// BenchmarkE5Primitives exercises the three language substrates: one
// sample program per primitive, explored exhaustively, every computation
// checked against the primitive's own GEM specification.
func BenchmarkE5Primitives(b *testing.B) {
	monProg := rw.NewProgram(rw.ReadersPriority, rw.Workload{Readers: 1, Writers: 1})
	monSpec := monitor.Spec(monProg)
	cspProg := boundedbuf.NewCSPProgram(boundedbuf.Workload{Producers: 1, Consumers: 1, ItemsPerProducer: 2, Capacity: 1})
	cspSpec := csp.Spec(cspProg)
	adaProg := boundedbuf.NewAdaProgram(boundedbuf.Workload{Producers: 1, Consumers: 1, ItemsPerProducer: 2, Capacity: 1})
	adaSpec := ada.Spec(adaProg)
	for i := 0; i < b.N; i++ {
		mruns, _, err := monitor.Explore(monProg, monitor.ExploreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range mruns {
			if res := legal.Check(monSpec, r.Comp, legal.Options{}); !res.Legal() {
				b.Fatal(res.Error())
			}
		}
		cruns, _, err := csp.Explore(cspProg, csp.ExploreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range cruns {
			if res := legal.Check(cspSpec, r.Comp, legal.Options{}); !res.Legal() {
				b.Fatal(res.Error())
			}
		}
		aruns, _, err := ada.Explore(adaProg, ada.ExploreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range aruns {
			if res := legal.Check(adaSpec, r.Comp, legal.Options{}); !res.Legal() {
				b.Fatal(res.Error())
			}
		}
	}
}

// BenchmarkE6ProblemSpecs compiles the problem-specification catalogue
// the paper reports — One-Slot Buffer, Bounded Buffer, and the
// Readers/Writers spec in both priority flavours — and checks a nominal
// computation for each.
func BenchmarkE6ProblemSpecs(b *testing.B) {
	osW := oneslot.Workload{Producers: 1, Consumers: 1, ItemsPerProducer: 2}
	bbW := boundedbuf.Workload{Producers: 2, Consumers: 2, ItemsPerProducer: 2, Capacity: 2}
	users := []string{"u1", "u2"}
	for i := 0; i < b.N; i++ {
		osSpec, err := oneslot.ProblemSpec(osW)
		if err != nil {
			b.Fatal(err)
		}
		osComp, err := boundedbuf.BuildComputation(osSpec, boundedbuf.Workload{
			Producers: 1, Consumers: 1, ItemsPerProducer: 2, Capacity: 1})
		if err != nil {
			b.Fatal(err)
		}
		if res := legal.Check(osSpec, osComp, legal.Options{}); !res.Legal() {
			b.Fatal(res.Error())
		}
		bbSpec, err := boundedbuf.ProblemSpec(bbW)
		if err != nil {
			b.Fatal(err)
		}
		bbComp, err := boundedbuf.BuildComputation(bbSpec, bbW)
		if err != nil {
			b.Fatal(err)
		}
		if res := legal.Check(bbSpec, bbComp, legal.Options{}); !res.Legal() {
			b.Fatal(res.Error())
		}
		for _, prio := range []bool{true, false} {
			rwSpec, err := rw.ProblemSpec(users, prio)
			if err != nil {
				b.Fatal(err)
			}
			rwComp, err := rw.BuildComputation(rwSpec, []rw.Transaction{
				{User: "u1", Write: true, Value: 3}, {User: "u2"},
			})
			if err != nil {
				b.Fatal(err)
			}
			if res := legal.Check(rwSpec, rwComp, legal.Options{}); !res.Legal() {
				b.Fatal(res.Error())
			}
		}
	}
}

// BenchmarkE7Matrix runs the full Section 11 verification matrix: three
// languages × three problems, each exhaustively explored and checked
// with the sat methodology. j=1 is the sequential pipeline (materialize,
// then check); higher j streams runs into a sat-check worker pool with
// the shared history-lattice cache. The engine=seq variant pins the
// historical sequence cascade; the plain j entries use the default auto
// engine (lattice fixpoint evaluation where the fragment allows).
func BenchmarkE7Matrix(b *testing.B) {
	for _, cfg := range []struct {
		name string
		opts check.Options
	}{
		{"j1", check.Options{Parallelism: 1}},
		{"j4", check.Options{Parallelism: 4}},
		{"j1/engine=seq", check.Options{Parallelism: 1, Engine: logic.EngineSeq}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := check.RunMatrix(io.Discard, cfg.opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Distributed runs the two distributed applications: all
// schedules of the database-update algorithm (convergence), and a sample
// of asynchronous Life schedules against the synchronous reference.
func BenchmarkE8Distributed(b *testing.B) {
	cfg := dbupdate.Config{Sites: 3, Updates: []dbupdate.Update{{Site: 0, Value: 7}, {Site: 1, Value: 9}}}
	board := life.NewBoard(5, 5)
	board[2][1], board[2][2], board[2][3] = true, true, true
	const gens = 3
	want := life.SyncRun(board.Clone(), gens)
	for i := 0; i < b.N; i++ {
		runs, _, err := dbupdate.Explore(cfg, dbupdate.ExploreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range runs {
			if !r.Converged {
				b.Fatal("dbupdate diverged")
			}
		}
		for seed := int64(0); seed < 4; seed++ {
			run, err := life.AsyncRun(board.Clone(), gens, seed)
			if err != nil {
				b.Fatal(err)
			}
			if !run.Final.Equal(want) {
				b.Fatal("life diverged")
			}
		}
	}
}

// BenchmarkE9HistoryVsState is the Section 8.4 ablation: checking the
// readers-priority property via the paper's history-based temporal
// restriction (over history pairs) versus the structural event-order
// encoding (a state-style reduction evaluated once). Both decide the
// same property; the benchmark measures the cost of generality.
func BenchmarkE9HistoryVsState(b *testing.B) {
	users := []string{"r1", "r2", "w1"}
	w := rw.Workload{Readers: 2, Writers: 1}
	runs, _, err := monitor.Explore(rw.NewProgram(rw.ReadersPriority, w), monitor.ExploreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	problem, err := rw.ProblemSpec(users, true)
	if err != nil {
		b.Fatal(err)
	}
	corr := rw.MonitorCorrespondence()
	var projections []*core.Computation
	for _, r := range runs[:4] {
		proj, err := verify.Project(r.Comp, corr)
		if err != nil {
			b.Fatal(err)
		}
		thread.Apply(proj.Comp, problem.Threads()...)
		projections = append(projections, proj.Comp)
	}
	var priority logic.Formula
	for _, r := range problem.Restrictions() {
		if r.Name == "readers-priority" {
			priority = r.F
		}
	}
	if priority == nil {
		b.Fatal("priority restriction missing")
	}
	b.Run("history-temporal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, c := range projections {
				if cx := logic.Holds(priority, c, logic.CheckOptions{}); cx != nil {
					b.Fatal(cx.Error())
				}
			}
		}
	})
	structural := rw.ReadersPriorityProp()
	b.Run("structural-state", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, r := range runs[:4] {
				if cx := logic.Holds(structural, r.Comp, logic.CheckOptions{}); cx != nil {
					b.Fatal(cx.Error())
				}
			}
		}
	})
}

// BenchmarkE10VhsVsLinear is the Section 7 ablation: deciding a temporal
// formula over all maximal valid history sequences (GEM's semantics, with
// simultaneous concurrent steps) versus linear extensions only.
func BenchmarkE10VhsVsLinear(b *testing.B) {
	// A fence poset: n concurrent chains of length 2 — vhs count grows
	// much faster than linear-extension count per added chain.
	build := func(chains int) *core.Computation {
		bd := core.NewBuilder()
		for k := 0; k < chains; k++ {
			a := bd.Event(fmt.Sprintf("A%d", k), "E", nil)
			c := bd.Event(fmt.Sprintf("B%d", k), "E", nil)
			bd.Enable(a, c)
		}
		c, err := bd.Build()
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	c := build(3)
	f := logic.Box{F: logic.Diamond{F: logic.TrueF{}}} // forces sequence enumeration
	b.Run("vhs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if cx := logic.Holds(f, c, logic.CheckOptions{}); cx != nil {
				b.Fatal(cx.Error())
			}
		}
	})
	b.Run("linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if cx := logic.Holds(f, c, logic.CheckOptions{LinearOnly: true}); cx != nil {
				b.Fatal(cx.Error())
			}
		}
	})
	b.Run("counts", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			vhs := history.CountComplete(c)
			lin := history.EnumerateLinear(c, 0, func(history.Sequence) bool { return true })
			if vhs <= lin {
				b.Fatalf("vhs=%d should exceed linear=%d", vhs, lin)
			}
		}
	})
}

// --- Parameter sweeps ---------------------------------------------------

// BenchmarkSweepHistories scales the Section 7 enumeration: fence posets
// of k independent 2-chains (2k events). History and vhs counts grow
// exponentially with the concurrency width; the bench records the cost
// per k.
func BenchmarkSweepHistories(b *testing.B) {
	for chains := 1; chains <= 4; chains++ {
		chains := chains
		b.Run(fmt.Sprintf("chains=%d", chains), func(b *testing.B) {
			bd := core.NewBuilder()
			for k := 0; k < chains; k++ {
				a := bd.Event(fmt.Sprintf("A%d", k), "E", nil)
				c := bd.Event(fmt.Sprintf("B%d", k), "E", nil)
				bd.Enable(a, c)
			}
			c, err := bd.Build()
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				history.Count(c)
			}
		})
	}
}

// BenchmarkSweepMonitorExploration scales the Section 9 verification
// workload with the number of readers (1 writer throughout). The monitor
// solution is explored and projected onto the Readers/Writers problem
// spec once, untimed; the timed region is the sat check of the spec's
// restrictions — including the temporal readers-priority restriction —
// over the first sweepProjections projections. The engine=seq and
// engine=lattice sub-benchmarks pin the temporal evaluation engine; the
// plain readers=N entries use the default auto engine (which routes the
// priority restriction to the lattice fixpoint evaluator).
func BenchmarkSweepMonitorExploration(b *testing.B) {
	const sweepProjections = 16
	corr := rw.MonitorCorrespondence()
	for readers := 1; readers <= 3; readers++ {
		readers := readers
		if readers == 3 && testing.Short() {
			continue // exploring readers=3 alone takes ~13s
		}
		clients := make([]string, 0, readers+1)
		for r := 1; r <= readers; r++ {
			clients = append(clients, fmt.Sprintf("r%d", r))
		}
		clients = append(clients, "w1")
		problem, err := rw.ProblemSpec(clients, true)
		if err != nil {
			b.Fatal(err)
		}
		prog := rw.NewProgram(rw.ReadersPriority, rw.Workload{Readers: readers, Writers: 1})
		runs, _, err := monitor.Explore(prog, monitor.ExploreOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if len(runs) == 0 {
			b.Fatal("no runs")
		}
		var comps []*core.Computation
		for _, r := range runs {
			if len(comps) == sweepProjections {
				break
			}
			proj, err := verify.Project(r.Comp, corr)
			if err != nil {
				b.Fatal(err)
			}
			thread.Apply(proj.Comp, problem.Threads()...)
			comps = append(comps, proj.Comp)
		}
		check := func(b *testing.B, engine logic.Engine) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for k, c := range comps {
					res := legal.Check(problem, c, legal.Options{Check: logic.CheckOptions{Engine: engine}})
					if !res.Legal() {
						b.Fatalf("projection %d: %v", k, res.Error())
					}
				}
			}
		}
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) { check(b, logic.EngineAuto) })
		b.Run(fmt.Sprintf("readers=%d/engine=seq", readers), func(b *testing.B) { check(b, logic.EngineSeq) })
		b.Run(fmt.Sprintf("readers=%d/engine=lattice", readers), func(b *testing.B) { check(b, logic.EngineLattice) })
	}
}

// BenchmarkE12FailingSpecs times the counterexample path — the check a
// user runs while debugging a broken spec — per evaluation engine, at
// readers=3 scale. The workload projects the readers-priority monitor
// solution onto the RW problem (as in the sweep) and checks three
// deliberately failing temporal properties on each projection until one
// is refuted:
//
//   - reads-finish-first: the leads-to □(write requested ∧ ¬write done →
//     ◇(some read freshly done ∧ ¬write done)) — a plausible-looking
//     "some read completes before the write completes" property. It is
//     violated only on the interleavings that delay every reader's
//     FinishRead past the writer's entire transaction, which sit ~1.5k
//     sequences deep in enumeration order (of millions), and the ◇
//     keeps it out of the histories/pairs reductions — so the old
//     failure-side cascade enumerated and evaluated every sequence up
//     to the witness. The lattice engine refutes it from the exact
//     lower bound and walks the Steps DAG for the witness directly.
//   - exists-box: ∃sw:StartWrite □occurred(sw), an ∃ with a temporal
//     body — a shape the whole-formula gate used to reject outright.
//   - temporal-or: □(∃ Getval) ∨ □(∃ Assign), two temporal disjuncts —
//     likewise previously rejected; refuted by the engine's upper bound.
//
// The seq sub-benchmark is the old failure-side cascade; lattice is the
// new native path (extract witness from the history lattice). E12 in
// EXPERIMENTS.md records the ratio; scripts/bench.sh bounds the lattice
// entry once a baseline record exists.
func BenchmarkE12FailingSpecs(b *testing.B) {
	if testing.Short() {
		b.Skip("readers=3 exploration takes ~13s; skipped in -short mode")
	}
	const projections = 16
	corr := rw.MonitorCorrespondence()
	clients := []string{"r1", "r2", "r3", "w1"}
	problem, err := rw.ProblemSpec(clients, true)
	if err != nil {
		b.Fatal(err)
	}
	runs, _, err := monitor.Explore(rw.NewProgram(rw.ReadersPriority, rw.Workload{Readers: 3, Writers: 1}), monitor.ExploreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	var comps []*core.Computation
	for _, r := range runs {
		if len(comps) == projections {
			break
		}
		proj, err := verify.Project(r.Comp, corr)
		if err != nil {
			b.Fatal(err)
		}
		thread.Apply(proj.Comp, problem.Threads()...)
		comps = append(comps, proj.Comp)
	}
	writeDone := logic.Exists{Var: "fw", Ref: core.Ref("", "FinishWrite"), Body: logic.Occurred{Var: "fw"}}
	readsFinishFirst := logic.Box{F: logic.Implies{
		If: logic.And{
			logic.Exists{Var: "rq", Ref: core.Ref("db.control", "ReqWrite"), Body: logic.Occurred{Var: "rq"}},
			logic.Not{F: writeDone},
		},
		Then: logic.Diamond{F: logic.And{
			logic.Exists{Var: "fr", Ref: core.Ref("", "FinishRead"), Body: logic.New{Var: "fr"}},
			logic.Not{F: writeDone},
		}},
	}}
	existsBox := logic.Exists{Var: "sw", Ref: core.Ref("db.control", "StartWrite"),
		Body: logic.Box{F: logic.Occurred{Var: "sw"}}}
	temporalOr := logic.Or{
		logic.Box{F: logic.Exists{Var: "g", Ref: core.Ref("db.data", "Getval"), Body: logic.Occurred{Var: "g"}}},
		logic.Box{F: logic.Exists{Var: "a", Ref: core.Ref("db.data", "Assign"), Body: logic.Occurred{Var: "a"}}},
	}
	for _, spec := range []struct {
		name string
		f    logic.Formula
	}{
		{"reads-finish-first", readsFinishFirst},
		{"exists-box", existsBox},
		{"temporal-or", temporalOr},
	} {
		spec := spec
		for _, eng := range []struct {
			name   string
			engine logic.Engine
		}{
			{"engine=seq", logic.EngineSeq},
			{"engine=lattice", logic.EngineLattice},
		} {
			eng := eng
			b.Run(spec.name+"/"+eng.name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					refuted := false
					for _, c := range comps {
						if cx := logic.Holds(spec.f, c, logic.CheckOptions{Engine: eng.engine}); cx != nil {
							refuted = true
							break
						}
					}
					if !refuted {
						b.Fatalf("%s not refuted on any projection", spec.name)
					}
				}
			})
		}
	}
}

// BenchmarkE14WarmStore measures incremental checking on the persistent
// result store: the full readers-writers sat check (monitor solution,
// lattice engine) against a cold store — every verdict evaluated and
// written behind — versus a warm one, where every computation hits the
// whole-check sat layer and skips projection, legality, and temporal
// evaluation entirely. Exploration runs once outside the timer for both
// arms, so the ratio isolates exactly what the store accelerates.
func BenchmarkE14WarmStore(b *testing.B) {
	var sc check.Scenario
	for _, s := range check.Matrix() {
		if s.Problem == "readers-writers" && s.Language == check.Monitor {
			sc = s
		}
	}
	problem, corr, err := sc.Setup()
	if err != nil {
		b.Fatal(err)
	}
	var comps []*core.Computation
	truncated, err := sc.Stream(func(c *core.Computation) bool {
		comps = append(comps, c)
		return true
	})
	if err != nil || truncated {
		b.Fatalf("exploration: truncated=%v err=%v", truncated, err)
	}
	runCheck := func(b *testing.B, st *store.Store) {
		idx, res := verify.CheckAll(problem, comps, corr,
			logic.CheckOptions{Engine: logic.EngineLattice, Cache: st})
		if idx >= 0 {
			b.Fatalf("computation %d: %v", idx, res.Error())
		}
	}
	b.Run("cold", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(filepath.Join(dir, fmt.Sprint(i)), store.ReadWrite)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			runCheck(b, st)
		}
	})
	b.Run("warm", func(b *testing.B) {
		st, err := store.Open(b.TempDir(), store.ReadWrite)
		if err != nil {
			b.Fatal(err)
		}
		runCheck(b, st) // prime the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runCheck(b, st)
		}
		if st.Stats().Hits == 0 {
			b.Fatal("warm arm never hit the store")
		}
	})
}

// BenchmarkE15RaceCorpus measures the static data-race pipeline end to
// end: gofront extraction (access and lockset recording included) plus
// the race pass's MHP × lockset analysis, over the whole race fixture
// corpus — the gemgo work a cold run over those packages performs,
// minus only the output formatting. Loading/type-checking happens once
// outside the timer so the number isolates extraction + analysis.
func BenchmarkE15RaceCorpus(b *testing.B) {
	dirs, err := gofront.ExpandPatterns([]string{filepath.Join("internal", "race", "testdata", "src") + "/..."})
	if err != nil {
		b.Fatal(err)
	}
	if len(dirs) < 8 {
		b.Fatalf("race corpus has %d packages, want 8+", len(dirs))
	}
	pkgs := make([]*gofront.Package, len(dirs))
	for i, dir := range dirs {
		if pkgs[i], err = gofront.LoadDir(dir); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pairs := 0
		for _, pkg := range pkgs {
			res := gofront.Analyze(pkg)
			for _, m := range res.Models {
				pairs += len(race.Pairs(m))
			}
		}
		if pairs < 4 {
			b.Fatalf("race corpus yielded %d racy pairs, want one per defect fixture (4+)", pairs)
		}
	}
}

// BenchmarkAblationClosureVsDFS compares the two temporal-order
// representations on a realistic computation (a full RW monitor run):
// precomputed bitset reachability (what core.Computation does) versus
// on-demand DFS per query.
func BenchmarkAblationClosureVsDFS(b *testing.B) {
	runs, _, err := monitor.Explore(rw.NewProgram(rw.ReadersPriority, rw.Workload{Readers: 2, Writers: 1}), monitor.ExploreOptions{})
	if err != nil {
		b.Fatal(err)
	}
	comp := runs[0].Comp
	n := comp.NumEvents()
	// Rebuild the underlying DAG (enable ∪ element order) for the DFS
	// baseline.
	dag := order.NewDAG(n)
	for _, e := range comp.Events() {
		for _, succ := range comp.Enabled(e.ID) {
			dag.AddEdge(int(e.ID), int(succ))
		}
	}
	for _, elem := range comp.Elements() {
		ids := comp.EventsAt(elem)
		for i := 1; i < len(ids); i++ {
			dag.AddEdge(int(ids[i-1]), int(ids[i]))
		}
	}
	b.Run("closure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					_ = comp.Temporal(core.EventID(u), core.EventID(v))
				}
			}
		}
	})
	b.Run("dfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for u := 0; u < n; u++ {
				for v := 0; v < n; v++ {
					_ = dag.ReachesDFS(u, v)
				}
			}
		}
	})
}

// BenchmarkE16Campaign measures mutation-campaign throughput on the
// persistent store: a fixed-seed 300-mutant campaign (generation,
// three-engine checking, ddmin shrinking, corpus persistence) against a
// cold store versus a warm one where every restriction verdict — the
// campaign's dominant cost — is served from disk. scripts/bench.sh
// asserts the warm/cold speedup via benchjson -compare.
func BenchmarkE16Campaign(b *testing.B) {
	runCampaign := func(b *testing.B, st *store.Store) {
		rep, err := mutate.Run(mutate.Config{
			N: 300, Seed: 7, Parallelism: 1, Cache: st, Store: st,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Findings) > 0 {
			b.Fatalf("campaign found %d engine disagreements", len(rep.Findings))
		}
	}
	b.Run("cold", func(b *testing.B) {
		dir := b.TempDir()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(filepath.Join(dir, fmt.Sprint(i)), store.ReadWrite)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			runCampaign(b, st)
		}
	})
	b.Run("warm", func(b *testing.B) {
		st, err := store.Open(b.TempDir(), store.ReadWrite)
		if err != nil {
			b.Fatal(err)
		}
		runCampaign(b, st) // prime the store
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runCampaign(b, st)
		}
		if st.Stats().Hits == 0 {
			b.Fatal("warm arm never hit the store")
		}
	})
}
