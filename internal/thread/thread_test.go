package thread

import (
	"reflect"
	"strings"
	"testing"

	"gem/internal/core"
)

// rwChain builds two read-transaction chains through a control element,
// mirroring the paper's piRW thread: Read -> ReqRead -> StartRead ->
// Getval -> EndRead -> FinishRead.
func rwChain(t *testing.T) (*core.Computation, [2][]core.EventID) {
	t.Helper()
	b := core.NewBuilder()
	var chains [2][]core.EventID
	for u := 0; u < 2; u++ {
		user := "u" + string(rune('1'+u))
		read := b.Event(user, "Read", nil)
		req := b.Event("control", "ReqRead", nil)
		start := b.Event("control", "StartRead", nil)
		get := b.Event("data", "Getval", nil)
		end := b.Event("control", "EndRead", nil)
		fin := b.Event(user, "FinishRead", nil)
		ids := []core.EventID{read, req, start, get, end, fin}
		for i := 1; i < len(ids); i++ {
			b.Enable(ids[i-1], ids[i])
		}
		chains[u] = ids
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, chains
}

func rwType() Type {
	return Type{
		Name: "piRW",
		Path: []core.ClassRef{
			core.Ref("", "Read"),
			core.Ref("control", "ReqRead"),
			core.Ref("control", "StartRead"),
			core.Ref("data", "Getval"),
			core.Ref("control", "EndRead"),
			core.Ref("", "FinishRead"),
		},
	}
}

func TestApplyLabelsChains(t *testing.T) {
	c, chains := rwChain(t)
	insts := Apply(c, rwType())
	if len(insts) != 2 {
		t.Fatalf("got %d instances, want 2", len(insts))
	}
	if insts[0].ID != "piRW#1" || insts[1].ID != "piRW#2" {
		t.Errorf("instance ids = %s, %s", insts[0].ID, insts[1].ID)
	}
	for u, inst := range insts {
		if !reflect.DeepEqual(inst.Events, chains[u]) {
			t.Errorf("instance %d events = %v, want %v", u, inst.Events, chains[u])
		}
		for _, id := range chains[u] {
			if !c.Event(id).HasThread(inst.ID) {
				t.Errorf("event %s missing label %s", c.Event(id).Name(), inst.ID)
			}
		}
	}
	// Events of chain 1 must not carry chain 2's identifier.
	if c.Event(chains[0][2]).HasThread("piRW#2") {
		t.Error("thread identifiers leaked across chains")
	}
}

func TestThreadStopsWhenPathBreaks(t *testing.T) {
	// Read -> ReqRead, but ReqRead enables something off-path: the thread
	// stops there.
	b := core.NewBuilder()
	read := b.Event("u", "Read", nil)
	req := b.Event("control", "ReqRead", nil)
	other := b.Event("control", "Unrelated", nil)
	b.Enable(read, req)
	b.Enable(req, other)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	insts := Apply(c, rwType())
	if len(insts) != 1 {
		t.Fatalf("got %d instances", len(insts))
	}
	if got := insts[0].Events; !reflect.DeepEqual(got, []core.EventID{read, req}) {
		t.Errorf("thread events = %v, want [read req]", got)
	}
	if c.Event(other).HasThread("piRW#1") {
		t.Error("off-path event must not be labelled")
	}
}

func TestApplyEmptyPathIgnored(t *testing.T) {
	c, _ := rwChain(t)
	insts := Apply(c, Type{Name: "empty"})
	if insts != nil {
		t.Errorf("empty path should produce no instances, got %v", insts)
	}
}

func TestAlternativePathsShareCounter(t *testing.T) {
	// One read chain and one write chain; piRW alternatives share the
	// instance counter, so ids are piRW#1 and piRW#2.
	b := core.NewBuilder()
	read := b.Event("u", "Read", nil)
	reqR := b.Event("control", "ReqRead", nil)
	b.Enable(read, reqR)
	write := b.Event("u", "Write", nil)
	reqW := b.Event("control", "ReqWrite", nil)
	b.Enable(write, reqW)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	readAlt := Type{Name: "piRW", Path: []core.ClassRef{core.Ref("", "Read"), core.Ref("control", "ReqRead")}}
	writeAlt := Type{Name: "piRW", Path: []core.ClassRef{core.Ref("", "Write"), core.Ref("control", "ReqWrite")}}
	insts := Apply(c, readAlt, writeAlt)
	if len(insts) != 2 {
		t.Fatalf("got %d instances", len(insts))
	}
	if insts[0].ID != "piRW#1" || insts[1].ID != "piRW#2" {
		t.Errorf("alternative instances = %s, %s", insts[0].ID, insts[1].ID)
	}
	if got := InstancesOf(c, "piRW"); len(got) != 2 {
		t.Errorf("InstancesOf = %v", got)
	}
}

func TestValidateAcceptsApplied(t *testing.T) {
	c, _ := rwChain(t)
	Apply(c, rwType())
	if err := Validate(c, rwType()); err != nil {
		t.Errorf("Validate after Apply: %v", err)
	}
}

func TestValidateRejectsForgedLabel(t *testing.T) {
	c, chains := rwChain(t)
	Apply(c, rwType())
	// Forge: put chain 1's identifier on a chain 2 event.
	ev := c.Event(chains[1][3])
	ev.Threads = append(ev.Threads, "piRW#1")
	err := Validate(c, rwType())
	if err == nil || !strings.Contains(err.Error(), "not on that thread's path") {
		t.Errorf("want forged-label error, got %v", err)
	}
}

func TestValidateRejectsMissingLabel(t *testing.T) {
	c, chains := rwChain(t)
	Apply(c, rwType())
	// Drop a label from the middle of chain 1.
	ev := c.Event(chains[0][2])
	ev.Threads = nil
	err := Validate(c, rwType())
	if err == nil || !strings.Contains(err.Error(), "should carry") {
		t.Errorf("want missing-label error, got %v", err)
	}
}

func TestValidateIgnoresUndeclaredTypes(t *testing.T) {
	c, chains := rwChain(t)
	Apply(c, rwType())
	c.Event(chains[0][0]).Threads = append(c.Event(chains[0][0]).Threads, "other#1")
	if err := Validate(c, rwType()); err != nil {
		t.Errorf("labels of undeclared types must be ignored: %v", err)
	}
}

func TestEventsOn(t *testing.T) {
	c, chains := rwChain(t)
	Apply(c, rwType())
	got := EventsOn(c, "piRW#1")
	if !reflect.DeepEqual(got, chains[0]) {
		t.Errorf("EventsOn = %v, want %v", got, chains[0])
	}
	if got := EventsOn(c, "nope#1"); got != nil {
		t.Errorf("EventsOn(unknown) = %v", got)
	}
}

func TestIDAndTypeOf(t *testing.T) {
	if ID("pi", 7) != "pi#7" {
		t.Errorf("ID = %q", ID("pi", 7))
	}
	if typeOf("pi#7") != "pi" {
		t.Errorf("typeOf = %q", typeOf("pi#7"))
	}
	if typeOf("bare") != "bare" {
		t.Errorf("typeOf(bare) = %q", typeOf("bare"))
	}
}

func TestApplyIdempotentLabels(t *testing.T) {
	c, chains := rwChain(t)
	Apply(c, rwType())
	Apply(c, rwType()) // relabel: identifiers repeat, HasThread dedupes
	ev := c.Event(chains[0][0])
	count := 0
	for _, tid := range ev.Threads {
		if tid == "piRW#1" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("duplicate labels after re-Apply: %v", ev.Threads)
	}
}
