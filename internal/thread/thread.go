// Package thread implements GEM's thread notation (Section 8.3 of the
// paper). A thread type is a path expression over event classes; each
// event matching the head of the path starts a fresh thread instance whose
// identifier is passed along enable edges as long as events enable one
// another in the prescribed class order. Thread identifiers let
// restrictions distinguish events caused by different requests — the key
// to expressing mutual exclusion and priority.
package thread

import (
	"fmt"

	"gem/internal/core"
)

// Type is a thread type: a name and the class path its instances follow,
// e.g. the paper's
//
//	piRW = (u.Read :: db.control.ReqRead :: db.control.StartRead :: …)
type Type struct {
	Name string
	Path []core.ClassRef
}

// Alternative paths: the paper's piRW covers both the read chain and the
// write chain; model that by declaring one Type per alternative with the
// same Name — instances are numbered across all alternatives of the name.

// Instance is one thread instance: its identifier and the events it
// labels, in discovery order (head first).
type Instance struct {
	ID     string
	Events []core.EventID
}

// ID builds the canonical thread-instance identifier. It matches the
// convention used by the logic package's thread quantifiers
// (type + "#" + n).
func ID(threadType string, n int) string {
	return fmt.Sprintf("%s#%d", threadType, n)
}

// Apply labels the computation's events with thread instances of the given
// types and returns the instances. Types sharing a Name are alternatives
// of one thread type and share an instance counter. Labels are added to
// the events in place; existing labels are preserved.
func Apply(c *core.Computation, types ...Type) []Instance {
	counters := make(map[string]int)
	var out []Instance
	for _, tt := range types {
		if len(tt.Path) == 0 {
			continue
		}
		for _, head := range c.EventsOf(tt.Path[0]) {
			counters[tt.Name]++
			inst := Instance{ID: ID(tt.Name, counters[tt.Name])}
			inst.Events = traceFrom(c, tt, head)
			for _, id := range inst.Events {
				addLabel(c.Event(id), inst.ID)
			}
			out = append(out, inst)
		}
	}
	return out
}

// PathsByType groups the paths of the given thread types by type name,
// preserving declaration order of the alternatives. Types sharing a Name
// are alternative paths of one thread type (see Apply); the deep
// analyzer consumes the grouped view to reason per type.
func PathsByType(types []Type) map[string][][]core.ClassRef {
	out := make(map[string][][]core.ClassRef)
	for _, tt := range types {
		if len(tt.Path) == 0 {
			continue
		}
		out[tt.Name] = append(out[tt.Name], tt.Path)
	}
	return out
}

// traceFrom follows the thread path from the head event, collecting every
// event the identifier is passed to. A (event, step) pair is visited at
// most once.
func traceFrom(c *core.Computation, tt Type, head core.EventID) []core.EventID {
	type node struct {
		ev   core.EventID
		step int
	}
	visited := map[node]bool{}
	var events []core.EventID
	queue := []node{{head, 0}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if visited[n] {
			continue
		}
		visited[n] = true
		events = append(events, n.ev)
		if n.step+1 >= len(tt.Path) {
			continue
		}
		next := tt.Path[n.step+1]
		for _, succ := range c.Enabled(n.ev) {
			if next.Matches(c.Event(succ)) {
				queue = append(queue, node{succ, n.step + 1})
			}
		}
	}
	return dedupe(events)
}

// Validate checks an already-labelled computation against the thread
// types: every event carrying an instance of a declared type must be
// reachable by that instance's path, every head event must carry exactly
// one fresh instance of the type, and instances must not share head
// events. It returns the first inconsistency found.
func Validate(c *core.Computation, types ...Type) error {
	// Recompute the expected labelling on a shadow map.
	expected := make(map[core.EventID]map[string]bool)
	counters := make(map[string]int)
	heads := make(map[string]core.EventID)
	for _, tt := range types {
		if len(tt.Path) == 0 {
			continue
		}
		for _, head := range c.EventsOf(tt.Path[0]) {
			counters[tt.Name]++
			tid := ID(tt.Name, counters[tt.Name])
			heads[tid] = head
			for _, id := range traceFrom(c, tt, head) {
				if expected[id] == nil {
					expected[id] = make(map[string]bool)
				}
				expected[id][tid] = true
			}
		}
	}
	declared := make(map[string]bool)
	for _, tt := range types {
		declared[tt.Name] = true
	}
	for _, e := range c.Events() {
		for _, tid := range e.Threads {
			typ := typeOf(tid)
			if !declared[typ] {
				continue // labels of undeclared types are out of scope
			}
			if !expected[e.ID][tid] {
				return fmt.Errorf("thread: event %s carries %s but is not on that thread's path", e.Name(), tid)
			}
		}
	}
	for id, tids := range expected {
		for tid := range tids {
			if !c.Event(id).HasThread(tid) {
				return fmt.Errorf("thread: event %s should carry %s but does not", c.Event(id).Name(), tid)
			}
		}
	}
	return nil
}

// InstancesOf returns the identifiers of all instances of the named thread
// type present in the computation, in first-appearance order.
func InstancesOf(c *core.Computation, name string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, e := range c.Events() {
		for _, tid := range e.Threads {
			if typeOf(tid) == name && !seen[tid] {
				seen[tid] = true
				out = append(out, tid)
			}
		}
	}
	return out
}

// EventsOn returns the events labelled with the given thread instance, in
// id order.
func EventsOn(c *core.Computation, tid string) []core.EventID {
	var out []core.EventID
	for _, e := range c.Events() {
		if e.HasThread(tid) {
			out = append(out, e.ID)
		}
	}
	return out
}

func typeOf(tid string) string {
	for i := len(tid) - 1; i >= 0; i-- {
		if tid[i] == '#' {
			return tid[:i]
		}
	}
	return tid
}

func addLabel(e *core.Event, tid string) {
	if !e.HasThread(tid) {
		e.Threads = append(e.Threads, tid)
	}
}

func dedupe(ids []core.EventID) []core.EventID {
	seen := make(map[core.EventID]bool, len(ids))
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
