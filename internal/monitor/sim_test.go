package monitor

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"gem/internal/core"
	"gem/internal/legal"
)

// counterProgram: a monitor with one Inc entry and n client processes
// each calling Inc once.
func counterProgram(n int) *Program {
	mon := &Monitor{
		Name: "ctr",
		Vars: []string{"count"},
		Entries: []Entry{{
			Name: "Inc",
			Body: []Stmt{Assign{Var: "count", E: Bin{Op: OpAdd, L: VarRef("count"), R: IntLit(1)}}},
		}},
	}
	var procs []Process
	for i := 0; i < n; i++ {
		procs = append(procs, Process{
			Name: "p" + string(rune('1'+i)),
			Body: []ProcStmt{Call{Entry: "Inc"}},
		})
	}
	return &Program{Monitor: mon, Processes: procs}
}

func TestCounterExploration(t *testing.T) {
	runs, truncated, err := Explore(counterProgram(2), ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatal("tiny program should not truncate")
	}
	// Two orders of monitor entry -> two distinct computations.
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(runs))
	}
	for _, r := range runs {
		if r.Deadlock {
			t.Error("counter program should not deadlock")
		}
		if r.FinalVars["count"] != 2 {
			t.Errorf("final count = %d, want 2", r.FinalVars["count"])
		}
	}
}

func TestCounterComputationShape(t *testing.T) {
	runs, _, err := Explore(counterProgram(1), ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	c := runs[0].Comp
	// Expect: p1.Call, ctr.lock.Acq, ctr.Inc.Begin, ctr.count.Assign,
	// ctr.Inc.End, ctr.lock.Rel, p1.Return = 7 events.
	if c.NumEvents() != 7 {
		t.Fatalf("got %d events:\n%s", c.NumEvents(), c)
	}
	call := c.EventsOf(core.Ref("p1", "Call"))
	ret := c.EventsOf(core.Ref("p1", "Return"))
	assign := c.EventsOf(core.Ref("ctr.count", "Assign"))
	if len(call) != 1 || len(ret) != 1 || len(assign) != 1 {
		t.Fatalf("missing events:\n%s", c)
	}
	if !c.Temporal(call[0], assign[0]) || !c.Temporal(assign[0], ret[0]) {
		t.Error("call must precede assign must precede return")
	}
	if got := c.Event(assign[0]).Params["newval"]; got != core.Int(1) {
		t.Errorf("assign newval = %v", got)
	}
	if got := c.Event(ret[0]).Params["entry"]; got != core.Str("Inc") {
		t.Errorf("return entry = %v", got)
	}
}

// TestMonitorMutualExclusion checks the paper's sequential-execution
// property on every generated computation (experiment E5, monitor leg).
func TestMonitorMutualExclusion(t *testing.T) {
	prog := counterProgram(3)
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 6 { // 3! grant orders
		t.Fatalf("got %d runs, want 6", len(runs))
	}
	s := Spec(prog)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		res := legal.Check(s, r.Comp, legal.Options{})
		if !res.Legal() {
			t.Fatalf("generated computation must satisfy the Monitor spec: %v\n%s", res.Error(), r.Comp)
		}
	}
}

// waitSignalProgram: consumer waits until count > 0; producer increments
// and signals.
func waitSignalProgram() *Program {
	mon := &Monitor{
		Name:  "ws",
		Vars:  []string{"count"},
		Conds: []string{"nonempty"},
		Entries: []Entry{
			{
				Name: "Take",
				Body: []Stmt{
					If{
						Cond: Bin{Op: OpEq, L: VarRef("count"), R: IntLit(0)},
						Then: []Stmt{Wait{Cond: "nonempty"}},
					},
					Assign{Var: "count", E: Bin{Op: OpSub, L: VarRef("count"), R: IntLit(1)}},
				},
			},
			{
				Name: "Put",
				Body: []Stmt{
					Assign{Var: "count", E: Bin{Op: OpAdd, L: VarRef("count"), R: IntLit(1)}},
					Signal{Cond: "nonempty"},
				},
			},
		},
	}
	return &Program{
		Monitor: mon,
		Processes: []Process{
			{Name: "consumer", Body: []ProcStmt{Call{Entry: "Take"}}},
			{Name: "producer", Body: []ProcStmt{Call{Entry: "Put"}}},
		},
	}
}

func TestWaitSignal(t *testing.T) {
	prog := waitSignalProgram()
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("got %d runs, want 2 (take-first-waits, put-first)", len(runs))
	}
	s := Spec(prog)
	sawRelease := false
	for _, r := range runs {
		if r.Deadlock {
			t.Errorf("unexpected deadlock:\n%s", r.Comp)
		}
		if r.FinalVars["count"] != 0 {
			t.Errorf("final count = %d, want 0", r.FinalVars["count"])
		}
		res := legal.Check(s, r.Comp, legal.Options{})
		if !res.Legal() {
			t.Errorf("run violates Monitor spec: %v", res.Error())
		}
		if len(r.Comp.EventsOf(core.Ref("ws.nonempty", "Release"))) > 0 {
			sawRelease = true
			// Release must be enabled by exactly one Signal (checked by
			// the spec), and the waiter's Return must follow the
			// producer's Signal temporally.
			sig := r.Comp.EventsOf(core.Ref("ws.nonempty", "Signal"))
			rel := r.Comp.EventsOf(core.Ref("ws.nonempty", "Release"))
			if !r.Comp.Temporal(sig[0], rel[0]) {
				t.Error("Signal must precede Release")
			}
		}
	}
	if !sawRelease {
		t.Error("some schedule must make the consumer wait")
	}
}

func TestDeadlockDetected(t *testing.T) {
	// Consumer waits; nobody signals.
	mon := &Monitor{
		Name:  "d",
		Conds: []string{"never"},
		Entries: []Entry{{
			Name: "Block",
			Body: []Stmt{Wait{Cond: "never"}},
		}},
	}
	prog := &Program{
		Monitor:   mon,
		Processes: []Process{{Name: "p1", Body: []ProcStmt{Call{Entry: "Block"}}}},
	}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || !runs[0].Deadlock {
		t.Fatalf("expected a single deadlocked run, got %+v", runs)
	}
}

func TestWhileLoopInEntry(t *testing.T) {
	mon := &Monitor{
		Name: "loop",
		Vars: []string{"i", "sum"},
		Entries: []Entry{{
			Name: "SumTo",
			Args: []string{"n"},
			Body: []Stmt{
				While{
					Cond: Bin{Op: OpLt, L: VarRef("i"), R: VarRef("n")},
					Body: []Stmt{
						Assign{Var: "i", E: Bin{Op: OpAdd, L: VarRef("i"), R: IntLit(1)}},
						Assign{Var: "sum", E: Bin{Op: OpAdd, L: VarRef("sum"), R: VarRef("i")}},
					},
				},
			},
			Result: VarRef("sum"),
		}},
	}
	prog := &Program{
		Monitor:   mon,
		Processes: []Process{{Name: "p1", Body: []ProcStmt{Call{Entry: "SumTo", Args: []int64{3}}}}},
	}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs", len(runs))
	}
	if runs[0].FinalVars["sum"] != 6 {
		t.Errorf("sum = %d, want 6", runs[0].FinalVars["sum"])
	}
	ret := runs[0].Comp.EventsOf(core.Ref("p1", "Return"))
	if got := runs[0].Comp.Event(ret[0]).Params["result"]; got != core.Int(6) {
		t.Errorf("result param = %v, want 6", got)
	}
}

func TestInitialization(t *testing.T) {
	mon := &Monitor{
		Name: "init",
		Vars: []string{"x"},
		Init: []Stmt{
			Assign{Var: "x", E: IntLit(5)},
			If{Cond: Bin{Op: OpGt, L: VarRef("x"), R: IntLit(3)},
				Then: []Stmt{Assign{Var: "x", E: IntLit(9)}}},
		},
		Entries: []Entry{{Name: "Nop", Body: nil}},
	}
	prog := &Program{
		Monitor:   mon,
		Processes: []Process{{Name: "p1", Body: []ProcStmt{Call{Entry: "Nop"}}}},
	}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].FinalVars["x"] != 9 {
		t.Errorf("x = %d, want 9", runs[0].FinalVars["x"])
	}
	// Init events must temporally precede entry events (total internal
	// order through the chain).
	c := runs[0].Comp
	assigns := c.EventsOf(core.Ref("init.x", "Assign"))
	begins := c.EventsOf(core.Ref("init.Nop", "Begin"))
	if len(assigns) != 2 || len(begins) != 1 {
		t.Fatalf("events wrong:\n%s", c)
	}
	if !c.Temporal(assigns[1], begins[0]) {
		t.Error("initialization must precede entry execution")
	}
}

func TestNonTerminatingProgramCaught(t *testing.T) {
	mon := &Monitor{
		Name: "inf",
		Entries: []Entry{{
			Name: "Spin",
			Body: []Stmt{While{Cond: IntLit(1), Body: []Stmt{Assign{Var: "x", E: IntLit(1)}}}},
		}},
		Vars: []string{"x"},
	}
	prog := &Program{
		Monitor:   mon,
		Processes: []Process{{Name: "p1", Body: []ProcStmt{Call{Entry: "Spin"}}}},
	}
	if _, _, err := Explore(prog, ExploreOptions{MaxSteps: 100}); err == nil {
		t.Fatal("non-terminating program must be reported")
	}
}

func TestMaxRunsTruncates(t *testing.T) {
	_, truncated, err := Explore(counterProgram(3), ExploreOptions{MaxRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("MaxRuns=2 must truncate the 6-run exploration")
	}
}

func TestLocalOpsInterleaveConcurrently(t *testing.T) {
	// Two processes doing only local ops: their events are concurrent, so
	// all interleavings collapse to ONE computation.
	mon := &Monitor{Name: "m", Entries: []Entry{{Name: "Nop"}}}
	prog := &Program{
		Monitor: mon,
		Processes: []Process{
			{Name: "a", Body: []ProcStmt{Op{Class: "Work"}, Op{Class: "Work"}}},
			{Name: "b", Body: []ProcStmt{Op{Class: "Work"}}},
		},
	}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1 (interleavings of concurrent events collapse)", len(runs))
	}
	c := runs[0].Comp
	aOps := c.EventsOf(core.Ref("a", "Work"))
	bOps := c.EventsOf(core.Ref("b", "Work"))
	if !c.Concurrent(aOps[0], bOps[0]) {
		t.Error("ops of different processes must be concurrent")
	}
	if !c.Temporal(aOps[0], aOps[1]) {
		t.Error("ops of one process must be ordered")
	}
}

func TestEntryArgsAndBadCalls(t *testing.T) {
	mon := &Monitor{
		Name: "m",
		Vars: []string{"x"},
		Entries: []Entry{{
			Name: "Set", Args: []string{"v"},
			Body: []Stmt{Assign{Var: "x", E: VarRef("v")}},
		}},
	}
	good := &Program{
		Monitor:   mon,
		Processes: []Process{{Name: "p", Body: []ProcStmt{Call{Entry: "Set", Args: []int64{42}}}}},
	}
	runs, _, err := Explore(good, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].FinalVars["x"] != 42 {
		t.Errorf("x = %d, want 42", runs[0].FinalVars["x"])
	}

	badArity := &Program{
		Monitor:   mon,
		Processes: []Process{{Name: "p", Body: []ProcStmt{Call{Entry: "Set"}}}},
	}
	if _, _, err := Explore(badArity, ExploreOptions{}); err == nil {
		t.Error("arity mismatch must fail")
	}
	badEntry := &Program{
		Monitor:   mon,
		Processes: []Process{{Name: "p", Body: []ProcStmt{Call{Entry: "Ghost"}}}},
	}
	if _, _, err := Explore(badEntry, ExploreOptions{}); err == nil {
		t.Error("unknown entry must fail")
	}
}

func TestExprEvaluation(t *testing.T) {
	env := &evalEnv{vars: map[string]int64{"x": 5}, args: map[string]int64{"y": 2}}
	tests := []struct {
		e    Expr
		want int64
	}{
		{IntLit(7), 7},
		{VarRef("x"), 5},
		{VarRef("y"), 2}, // args shadow vars
		{Bin{Op: OpAdd, L: VarRef("x"), R: VarRef("y")}, 7},
		{Bin{Op: OpSub, L: VarRef("x"), R: IntLit(1)}, 4},
		{Bin{Op: OpEq, L: VarRef("x"), R: IntLit(5)}, 1},
		{Bin{Op: OpNe, L: VarRef("x"), R: IntLit(5)}, 0},
		{Bin{Op: OpLt, L: IntLit(1), R: IntLit(2)}, 1},
		{Bin{Op: OpLe, L: IntLit(2), R: IntLit(2)}, 1},
		{Bin{Op: OpGt, L: IntLit(1), R: IntLit(2)}, 0},
		{Bin{Op: OpGe, L: IntLit(2), R: IntLit(3)}, 0},
		{Bin{Op: OpAnd, L: IntLit(1), R: IntLit(0)}, 0},
		{Bin{Op: OpOr, L: IntLit(1), R: IntLit(0)}, 1},
		{Not{E: IntLit(0)}, 1},
		{Not{E: IntLit(3)}, 0},
		{QueueNonEmpty{Cond: "c"}, 0}, // nil machine: empty
	}
	for _, tt := range tests {
		if got := tt.e.eval(env); got != tt.want {
			t.Errorf("%s = %d, want %d", tt.e, got, tt.want)
		}
	}
}

func TestExprStrings(t *testing.T) {
	e := Bin{Op: OpAdd, L: VarRef("x"), R: IntLit(1)}
	if e.String() != "(x + 1)" {
		t.Errorf("String = %q", e.String())
	}
	if (Not{E: VarRef("b")}).String() != "~b" {
		t.Error("Not rendering wrong")
	}
	if (QueueNonEmpty{Cond: "q"}).String() != "queue(q)" {
		t.Error("queue rendering wrong")
	}
}

func TestUndefinedVariablePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("undefined variable should panic")
		}
	}()
	VarRef("ghost").eval(&evalEnv{vars: map[string]int64{}})
}

// canonicalComp renders a computation's partial order as a canonical
// string (events keyed by element+occurrence, edges sorted).
func canonicalComp(c *core.Computation) string {
	labels := make([]string, c.NumEvents())
	for _, e := range c.Events() {
		labels[e.ID] = fmt.Sprintf("%s^%d:%s%s", e.Element, e.Seq, e.Class, e.Params)
	}
	var lines []string
	lines = append(lines, append([]string(nil), labels...)...)
	for _, e := range c.Events() {
		for _, succ := range c.Enabled(e.ID) {
			lines = append(lines, labels[e.ID]+">"+labels[succ])
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestReductionPreservesComputations validates the partial-order
// reduction: on small programs the reduced and unreduced explorations
// produce exactly the same set of computations (as partial orders).
func TestReductionPreservesComputations(t *testing.T) {
	programs := map[string]*Program{
		"counter-3":   counterProgram(3),
		"wait-signal": waitSignalProgram(),
		"mixed-ops": {
			Monitor: counterProgram(1).Monitor,
			Processes: []Process{
				{Name: "p1", Body: []ProcStmt{
					Op{Class: "Work"},
					Call{Entry: "Inc"},
					Op{Element: "cell", Class: "Assign", Params: map[string]int64{"newval": 1}},
				}},
				{Name: "p2", Body: []ProcStmt{
					Call{Entry: "Inc"},
					Op{Element: "cell", Class: "Getval"},
				}},
			},
		},
	}
	for name, prog := range programs {
		prog := prog
		t.Run(name, func(t *testing.T) {
			collect := func(noReduction bool) map[string]bool {
				runs, truncated, err := Explore(prog, ExploreOptions{NoReduction: noReduction, MaxRuns: 60000})
				if err != nil {
					t.Fatal(err)
				}
				if truncated {
					t.Fatal("truncated")
				}
				out := make(map[string]bool, len(runs))
				for _, r := range runs {
					out[canonicalComp(r.Comp)] = true
				}
				return out
			}
			reduced := collect(false)
			full := collect(true)
			if len(reduced) != len(full) {
				t.Fatalf("reduced explores %d computations, unreduced %d", len(reduced), len(full))
			}
			for k := range full {
				if !reduced[k] {
					t.Fatalf("computation missing from reduced exploration:\n%s", k)
				}
			}
		})
	}
}
