// Package monitor implements the Monitor concurrency primitive as used in
// Section 9 of the paper: a mini-language for monitor programs (entries,
// condition variables, WAIT/SIGNAL with Hoare semantics, integer
// variables), an exhaustive-interleaving simulator that emits GEM
// computations, and the GEM specification of the Monitor primitive itself.
//
// Event model (mirroring the paper's correspondences):
//
//	<mon>.lock              Acq, Rel          — monitor possession intervals
//	<mon>.<entry>           Begin, End        — entry activations
//	<mon>.<var>             Assign(newval)    — variable writes
//	<mon>.<cond>            Wait, Signal, Release
//	<proc>                  Call(entry), Return(entry, result), plus
//	                        program-specific local Op events
//
// Control flow within a process chains events by enablement; monitor
// possession intervals are additionally chained (last internal event ⊳
// next Acq), which makes all monitor-internal events totally ordered by
// the temporal order — the property the paper proves of monitors. A
// condition Release is enabled by exactly one Signal, satisfying the
// paper's prerequisite restriction.
package monitor

import "fmt"

// Expr is an integer-valued expression over monitor variables and entry
// arguments. Booleans are 0/1.
type Expr interface {
	eval(env *evalEnv) int64
	String() string
}

type evalEnv struct {
	vars map[string]int64
	args map[string]int64
	m    *machine // for queue() tests; nil in unit contexts
}

// IntLit is an integer literal.
type IntLit int64

func (e IntLit) eval(*evalEnv) int64 { return int64(e) }
func (e IntLit) String() string      { return fmt.Sprintf("%d", int64(e)) }

// VarRef reads a monitor variable or entry argument.
type VarRef string

func (e VarRef) eval(env *evalEnv) int64 {
	if v, ok := env.args[string(e)]; ok {
		return v
	}
	if v, ok := env.vars[string(e)]; ok {
		return v
	}
	panic(fmt.Sprintf("monitor: undefined variable %q", string(e)))
}
func (e VarRef) String() string { return string(e) }

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var binOpNames = map[BinOp]string{
	OpAdd: "+", OpSub: "-", OpEq: "=", OpNe: "!=", OpLt: "<",
	OpLe: "<=", OpGt: ">", OpGe: ">=", OpAnd: "&", OpOr: "|",
}

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

func (e Bin) eval(env *evalEnv) int64 {
	l, r := e.L.eval(env), e.R.eval(env)
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch e.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpEq:
		return b2i(l == r)
	case OpNe:
		return b2i(l != r)
	case OpLt:
		return b2i(l < r)
	case OpLe:
		return b2i(l <= r)
	case OpGt:
		return b2i(l > r)
	case OpGe:
		return b2i(l >= r)
	case OpAnd:
		return b2i(l != 0 && r != 0)
	case OpOr:
		return b2i(l != 0 || r != 0)
	default:
		panic(fmt.Sprintf("monitor: unknown operator %d", e.Op))
	}
}
func (e Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", e.L, binOpNames[e.Op], e.R)
}

// Not negates a boolean expression.
type Not struct{ E Expr }

func (e Not) eval(env *evalEnv) int64 {
	if e.E.eval(env) != 0 {
		return 0
	}
	return 1
}
func (e Not) String() string { return "~" + e.E.String() }

// QueueNonEmpty tests whether processes are waiting on a condition — the
// paper's "IF queue(readqueue)".
type QueueNonEmpty struct{ Cond string }

func (e QueueNonEmpty) eval(env *evalEnv) int64 {
	if env.m == nil {
		return 0
	}
	if len(env.m.condQ[e.Cond]) > 0 {
		return 1
	}
	return 0
}
func (e QueueNonEmpty) String() string { return fmt.Sprintf("queue(%s)", e.Cond) }

// Stmt is a monitor-entry statement.
type Stmt interface{ stmt() }

// Assign writes a monitor variable.
type Assign struct {
	Var string
	E   Expr
}

// If branches on a condition; Else may be nil.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// While loops on a condition.
type While struct {
	Cond Expr
	Body []Stmt
}

// Wait blocks the caller on a condition queue, releasing the monitor.
type Wait struct{ Cond string }

// Signal resumes the first waiter on a condition (Hoare semantics: the
// waiter runs immediately; the signaller waits on the urgent stack).
type Signal struct{ Cond string }

func (Assign) stmt() {}
func (If) stmt()     {}
func (While) stmt()  {}
func (Wait) stmt()   {}
func (Signal) stmt() {}

// Entry is a monitor entry procedure.
type Entry struct {
	Name string
	Args []string // formal argument names (integer-valued)
	Body []Stmt
	// Result, when non-nil, is evaluated at entry end and carried on the
	// caller's Return event as parameter "result".
	Result Expr
}

// Monitor is a complete monitor declaration.
type Monitor struct {
	Name    string
	Vars    []string // integer variables, zero-initialized before Init
	Conds   []string // condition variables
	Entries []Entry
	Init    []Stmt
}

// EntryNamed returns the named entry.
func (m *Monitor) EntryNamed(name string) (Entry, bool) {
	for _, e := range m.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// ProcStmt is a process (caller) statement.
type ProcStmt interface{ procStmt() }

// Call invokes a monitor entry with literal integer arguments.
type Call struct {
	Entry string
	Args  []int64
}

// Op emits a local event of the given class, with optional integer
// parameters. With Element == "" the event occurs at the process element,
// modelling the process's own actions (computing, producing an item, …).
//
// With Element set, the event occurs at that external shared element —
// the resource the monitor guards, which the paper keeps OUTSIDE the
// monitor ("the data itself must be located outside of the monitor").
// Two classes get shared-variable semantics there: Assign stores its
// "newval" parameter in the element's cell, and Getval reads the cell,
// reporting it as "oldval" on the event.
type Op struct {
	Class   string
	Params  map[string]int64
	Element string
}

func (Call) procStmt() {}
func (Op) procStmt()   {}

// Process is a sequential caller of the monitor.
type Process struct {
	Name string
	Body []ProcStmt
}

// Program is a monitor plus its client processes.
type Program struct {
	Monitor   *Monitor
	Processes []Process
}

// Element names used in generated computations.

// LockElement returns the monitor's lock element name.
func (m *Monitor) LockElement() string { return m.Name + ".lock" }

// EntryElement returns the element name of an entry.
func (m *Monitor) EntryElement(entry string) string { return m.Name + "." + entry }

// VarElement returns the element name of a monitor variable.
func (m *Monitor) VarElement(v string) string { return m.Name + "." + v }

// CondElement returns the element name of a condition variable.
func (m *Monitor) CondElement(c string) string { return m.Name + "." + c }
