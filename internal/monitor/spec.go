package monitor

import (
	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/spec"
)

// Spec builds the GEM specification of a monitor program: the Monitor
// group (lock, entries, variables, conditions — as in the paper's
// "Monitor = GROUP TYPE(lock, {entry}, {cond}, init, {var})"), one element
// per client process, and the Monitor primitive's restrictions:
//
//  1. Release of a wait must be enabled by exactly one Signal, and every
//     Signal can enable at most one Release (the paper's prerequisite
//     example).
//  2. All monitor-internal events are totally ordered by the temporal
//     order — sequential execution of monitor entries, which the paper
//     reports proving of the Monitor primitive.
//  3. Entry activations pair up: each Begin is followed by an End of its
//     entry before another Begin of the same entry (entries are not
//     re-entered concurrently).
//  4. Every Wait is eventually followed in the element order by its
//     Release (only when signalled — expressed per computation via the
//     prerequisite, not as liveness).
func Spec(p *Program) *spec.Spec {
	m := p.Monitor
	s := spec.New(m.Name + "-program")

	procParam := spec.ParamDecl{Name: "proc", Type: "NAME"}
	lock := &spec.ElementDecl{
		Name: m.LockElement(),
		Events: []spec.EventClassDecl{
			{Name: "Acq", Params: []spec.ParamDecl{procParam}},
			{Name: "Rel", Params: []spec.ParamDecl{procParam}},
		},
	}
	s.AddElement(lock)
	members := []string{m.LockElement()}

	for _, e := range m.Entries {
		beginParams := []spec.ParamDecl{procParam}
		for _, arg := range e.Args {
			beginParams = append(beginParams, spec.ParamDecl{Name: arg, Type: "INTEGER"})
		}
		endParams := append(append([]spec.ParamDecl(nil), beginParams...),
			spec.ParamDecl{Name: "result", Type: "INTEGER"})
		s.AddElement(&spec.ElementDecl{
			Name: m.EntryElement(e.Name),
			Events: []spec.EventClassDecl{
				{Name: "Begin", Params: beginParams},
				{Name: "End", Params: endParams},
			},
		})
		members = append(members, m.EntryElement(e.Name))
	}
	for _, v := range m.Vars {
		s.AddElement(&spec.ElementDecl{
			Name: m.VarElement(v),
			Events: []spec.EventClassDecl{
				{Name: "Assign", Params: []spec.ParamDecl{
					{Name: "newval", Type: "INTEGER"}, procParam, {Name: "entry", Type: "NAME"},
				}},
			},
		})
		members = append(members, m.VarElement(v))
	}
	for _, c := range m.Conds {
		cond := &spec.ElementDecl{
			Name: m.CondElement(c),
			Events: []spec.EventClassDecl{
				{Name: "Wait", Params: []spec.ParamDecl{procParam}},
				{Name: "Signal", Params: []spec.ParamDecl{procParam}},
				{Name: "Release", Params: []spec.ParamDecl{procParam}},
			},
			Restrictions: []spec.Restriction{{
				Name: m.CondElement(c) + ".signal-release-prereq",
				F: logic.Prereq(
					core.Ref(m.CondElement(c), "Signal"),
					core.Ref(m.CondElement(c), "Release"),
				),
			}},
		}
		s.AddElement(cond)
		members = append(members, m.CondElement(c))
	}

	group := &spec.GroupDecl{
		Name:    m.Name,
		Members: members,
		// Callers reach the monitor through the lock: Acq is the port.
		Ports: []core.Port{{Element: m.LockElement(), Class: "Acq"}},
	}
	group.Restrictions = append(group.Restrictions,
		spec.Restriction{
			Name: m.Name + ".sequential-execution",
			F:    internalTotalOrder(m),
		},
		spec.Restriction{
			Name: m.Name + ".entries-paired",
			F:    entriesPaired(m),
		},
	)
	s.AddGroup(group)

	// Call events carry the entry name plus the call's arguments under
	// their formal names.
	callParams := []spec.ParamDecl{{Name: "entry", Type: "NAME"}}
	seenFormal := map[string]bool{}
	for _, e := range m.Entries {
		for _, arg := range e.Args {
			if !seenFormal[arg] {
				seenFormal[arg] = true
				callParams = append(callParams, spec.ParamDecl{Name: arg, Type: "INTEGER"})
			}
		}
	}
	for _, proc := range p.Processes {
		classes := []spec.EventClassDecl{
			{Name: "Call", Params: callParams},
			{Name: "Return", Params: []spec.ParamDecl{
				{Name: "entry", Type: "NAME"}, {Name: "result", Type: "INTEGER"},
			}},
		}
		classes = append(classes, opClasses(proc)...)
		s.AddElement(&spec.ElementDecl{Name: proc.Name, Events: classes})
	}
	addExternalElements(s, p)
	return s
}

// addExternalElements declares the shared elements accessed via
// Op{Element: …} — the data the monitor guards, located outside the
// monitor group per the paper. Each gets Variable-style Assign/Getval
// classes (with the accessing process recorded) and, for elements with
// both classes, the paper's reads-last-assign restriction.
func addExternalElements(s *spec.Spec, p *Program) {
	classes := make(map[string]map[string]map[string]bool) // elem -> class -> params
	var order []string
	for _, proc := range p.Processes {
		for _, st := range proc.Body {
			op, ok := st.(Op)
			if !ok || op.Element == "" {
				continue
			}
			if classes[op.Element] == nil {
				classes[op.Element] = make(map[string]map[string]bool)
				order = append(order, op.Element)
			}
			if classes[op.Element][op.Class] == nil {
				classes[op.Element][op.Class] = make(map[string]bool)
			}
			for prm := range op.Params {
				classes[op.Element][op.Class][prm] = true
			}
			classes[op.Element][op.Class]["proc"] = true
			if op.Class == "Getval" {
				classes[op.Element][op.Class]["oldval"] = true
			}
		}
	}
	for _, elem := range order {
		decl := &spec.ElementDecl{Name: elem}
		var classNames []string
		for c := range classes[elem] {
			classNames = append(classNames, c)
		}
		sortStrings(classNames)
		for _, c := range classNames {
			var paramNames []string
			for prm := range classes[elem][c] {
				paramNames = append(paramNames, prm)
			}
			sortStrings(paramNames)
			ec := spec.EventClassDecl{Name: c}
			for _, prm := range paramNames {
				typ := "INTEGER"
				if prm == "proc" {
					typ = "NAME"
				}
				ec.Params = append(ec.Params, spec.ParamDecl{Name: prm, Type: typ})
			}
			decl.Events = append(decl.Events, ec)
		}
		if _, hasA := classes[elem]["Assign"]; hasA {
			if _, hasG := classes[elem]["Getval"]; hasG {
				decl.Restrictions = append(decl.Restrictions, spec.Restriction{
					Name: elem + ".reads-last-assign",
					F:    spec.ReadsLastAssign(elem),
				})
			}
		}
		s.AddElement(decl)
	}
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// internalTotalOrder builds the restriction that any two events at the
// monitor's member elements are temporally ordered.
func internalTotalOrder(m *Monitor) logic.Formula {
	refs := internalRefs(m)
	return logic.ForAllIn{
		Var: "_x", Refs: refs,
		Body: logic.ForAllIn{
			Var: "_y", Refs: refs,
			Body: logic.Or{
				logic.SameEvent{X: "_x", Y: "_y"},
				logic.Precedes{X: "_x", Y: "_y"},
				logic.Precedes{X: "_y", Y: "_x"},
			},
		},
	}
}

// entriesPaired: at every history, an entry has at least as many Begins
// as Ends, and every End belongs to the same process as a prior Begin.
// (Entries CAN have several open activations at once: an activation
// suspended on a condition leaves the entry "begun but not ended" while
// other processes enter — so strict Begin/End alternation would be
// wrong.)
func entriesPaired(m *Monitor) logic.Formula {
	var out logic.And
	for _, e := range m.Entries {
		begin := core.Ref(m.EntryElement(e.Name), "Begin")
		end := core.Ref(m.EntryElement(e.Name), "End")
		out = append(out,
			logic.Box{F: logic.CountDiff{A: begin, B: end, Min: 0, NoMax: true}},
			logic.ForAll{Var: "_end", Ref: end, Body: logic.Exists{
				Var: "_begin", Ref: begin,
				Body: logic.And{
					logic.ElemOrdered{X: "_begin", Y: "_end"},
					logic.ParamCmp{X: "_begin", P: "proc", Op: logic.OpEq, Y: "_end", Q: "proc"},
				},
			}},
		)
	}
	return out
}

func internalRefs(m *Monitor) []core.ClassRef {
	var refs []core.ClassRef
	add := func(elem string, classes ...string) {
		for _, c := range classes {
			refs = append(refs, core.Ref(elem, c))
		}
	}
	add(m.LockElement(), "Acq", "Rel")
	for _, e := range m.Entries {
		add(m.EntryElement(e.Name), "Begin", "End")
	}
	for _, v := range m.Vars {
		add(m.VarElement(v), "Assign")
	}
	for _, c := range m.Conds {
		add(m.CondElement(c), "Wait", "Signal", "Release")
	}
	return refs
}

// opClasses collects the distinct local Op classes a process uses, with
// their integer parameters declared.
func opClasses(proc Process) []spec.EventClassDecl {
	seen := make(map[string]map[string]bool)
	order := []string{}
	for _, st := range proc.Body {
		op, ok := st.(Op)
		if !ok || op.Element != "" {
			continue
		}
		if seen[op.Class] == nil {
			seen[op.Class] = make(map[string]bool)
			order = append(order, op.Class)
		}
		for p := range op.Params {
			seen[op.Class][p] = true
		}
	}
	var out []spec.EventClassDecl
	for _, class := range order {
		var params []spec.ParamDecl
		var names []string
		for p := range seen[class] {
			names = append(names, p)
		}
		// deterministic order
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
		for _, p := range names {
			params = append(params, spec.ParamDecl{Name: p, Type: "INTEGER"})
		}
		out = append(out, spec.EventClassDecl{Name: class, Params: params})
	}
	return out
}
