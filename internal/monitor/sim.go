package monitor

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"gem/internal/core"
)

// Run is one complete (or deadlocked) execution of a monitor program,
// rendered as a GEM computation.
type Run struct {
	Comp      *core.Computation
	FinalVars map[string]int64
	Deadlock  bool
}

// ExploreOptions bounds the exhaustive exploration.
type ExploreOptions struct {
	// MaxRuns caps the number of distinct runs collected (0 = 100000).
	MaxRuns int
	// MaxSteps caps the steps of a single run, guarding against
	// non-terminating programs (0 = 10000).
	MaxSteps int
	// NoReduction disables the partial-order reduction, branching over
	// every enabled transition. Exponentially slower; used to validate
	// that the reduction preserves the set of computations.
	NoReduction bool
	// Ctx cancels the exploration: the DFS polls it at every node, and a
	// cancelled context aborts the walk with ctx.Err() after at most one
	// further run. nil means never cancelled.
	Ctx context.Context
}

// Explore exhaustively enumerates the interleavings of the program under
// Hoare monitor semantics and returns the distinct GEM computations
// reached (distinct as partial orders: interleavings that differ only in
// the order of concurrent events collapse). The second result reports
// whether exploration was truncated by MaxRuns. It is the collect-all
// form of ExploreStream.
func Explore(p *Program, opts ExploreOptions) ([]Run, bool, error) {
	var runs []Run
	truncated, err := ExploreStream(p, opts, func(r Run) bool {
		runs = append(runs, r)
		return true
	})
	if err != nil {
		return nil, false, err
	}
	return runs, truncated, nil
}

// ExploreStream enumerates the distinct runs like Explore but hands each
// one to yield as soon as its terminal state is reached, instead of
// materializing the full slice — checkers can consume runs while the
// exploration is still in progress. Enumeration order is deterministic
// (the DFS order Explore uses). If yield returns false the exploration
// stops early with truncated == false and a nil error.
func ExploreStream(p *Program, opts ExploreOptions, yield func(Run) bool) (bool, error) {
	if opts.MaxRuns == 0 {
		opts.MaxRuns = 100000
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 10000
	}
	seen := make(map[string]bool)
	emitted := 0
	truncated := false
	stopped := false
	var exploreErr error
	var done <-chan struct{}
	if opts.Ctx != nil {
		done = opts.Ctx.Done()
	}

	var dfs func(m *machine)
	dfs = func(m *machine) {
		if truncated || stopped || exploreErr != nil {
			return
		}
		select {
		case <-done:
			exploreErr = opts.Ctx.Err()
			return
		default:
		}
		if m.steps > opts.MaxSteps {
			exploreErr = fmt.Errorf("monitor: run exceeded %d steps (non-terminating program?)", opts.MaxSteps)
			return
		}
		// Apply invisible transitions eagerly, in place (no branching) —
		// unless the reduction is disabled for validation runs.
		if !opts.NoReduction {
			for {
				if m.steps > opts.MaxSteps {
					exploreErr = fmt.Errorf("monitor: run exceeded %d steps (non-terminating program?)", opts.MaxSteps)
					return
				}
				eager, _ := m.transitions(false)
				if eager == nil {
					break
				}
				if err := m.apply(*eager); err != nil {
					exploreErr = err
					return
				}
			}
		}
		_, branches := m.transitions(opts.NoReduction)
		if len(branches) == 0 {
			key := m.canonicalKey()
			if seen[key] {
				return
			}
			seen[key] = true
			run, err := m.finish()
			if err != nil {
				exploreErr = err
				return
			}
			emitted++
			if !yield(run) {
				stopped = true
				return
			}
			if emitted >= opts.MaxRuns {
				truncated = true
			}
			return
		}
		for _, t := range branches {
			next := m.clone()
			if err := next.apply(t); err != nil {
				exploreErr = err
				return
			}
			dfs(next)
			if truncated || stopped || exploreErr != nil {
				return
			}
		}
	}
	m, err := newMachine(p)
	if err != nil {
		return false, err
	}
	dfs(m)
	if exploreErr != nil {
		return false, exploreErr
	}
	return truncated, nil
}

type procStatus int

const (
	statusReady procStatus = iota + 1
	statusBlockedEntry
	statusWaiting
	statusUrgent
	statusDone
)

type frame struct {
	block []Stmt
	idx   int
}

type procState struct {
	status  procStatus
	bodyIdx int
	frames  []frame
	args    map[string]int64
	entry   string
	lastEv  int
	// resume bookkeeping
	resuming bool   // must emit Release+Acq (signalled waiter)
	signalEv int    // Signal event enabling our Release
	waitCond string // condition the process last waited on
}

// resumeCond returns the condition whose Release the resuming process
// must emit.
func (p *procState) resumeCond() string { return p.waitCond }

type evRec struct {
	elem   string
	class  string
	params core.Params
}

type machine struct {
	prog   *Program
	vars   map[string]int64
	procs  []procState
	holder int
	urgent []int
	condQ  map[string][]int
	entryQ []int

	events    []evRec
	edges     [][2]int
	lastMonEv int
	steps     int
	// ext holds the cells of external shared elements accessed via
	// Op{Element: …}.
	ext map[string]int64
}

func newMachine(p *Program) (*machine, error) {
	m := &machine{
		prog:      p,
		vars:      make(map[string]int64, len(p.Monitor.Vars)),
		procs:     make([]procState, len(p.Processes)),
		holder:    -1,
		condQ:     make(map[string][]int, len(p.Monitor.Conds)),
		lastMonEv: -1,
		ext:       make(map[string]int64),
	}
	for _, v := range p.Monitor.Vars {
		m.vars[v] = 0
	}
	for _, c := range p.Monitor.Conds {
		m.condQ[c] = nil
	}
	for i := range m.procs {
		m.procs[i] = procState{status: statusReady, lastEv: -1, signalEv: -1}
	}
	// Initialization runs to completion before any process step, holding
	// the monitor conceptually.
	env := &evalEnv{vars: m.vars, m: m}
	if err := m.runInit(p.Monitor.Init, env); err != nil {
		return nil, err
	}
	return m, nil
}

func (m *machine) runInit(body []Stmt, env *evalEnv) error {
	for _, st := range body {
		switch s := st.(type) {
		case Assign:
			m.vars[s.Var] = s.E.eval(env)
			m.emitInternal(-1, m.prog.Monitor.VarElement(s.Var), "Assign",
				core.Params{"newval": core.Int(m.vars[s.Var]), "proc": core.Str("init"), "entry": core.Str("init")})
		case If:
			branch := s.Else
			if s.Cond.eval(env) != 0 {
				branch = s.Then
			}
			if err := m.runInit(branch, env); err != nil {
				return err
			}
		default:
			return fmt.Errorf("monitor: statement %T not allowed in initialization", st)
		}
	}
	return nil
}

func (m *machine) clone() *machine {
	next := &machine{
		prog:      m.prog,
		vars:      make(map[string]int64, len(m.vars)),
		procs:     make([]procState, len(m.procs)),
		holder:    m.holder,
		urgent:    append([]int(nil), m.urgent...),
		condQ:     make(map[string][]int, len(m.condQ)),
		entryQ:    append([]int(nil), m.entryQ...),
		events:    append([]evRec(nil), m.events...),
		edges:     append([][2]int(nil), m.edges...),
		lastMonEv: m.lastMonEv,
		steps:     m.steps,
		ext:       make(map[string]int64, len(m.ext)),
	}
	for k, v := range m.ext {
		next.ext[k] = v
	}
	for k, v := range m.vars {
		next.vars[k] = v
	}
	for c, q := range m.condQ {
		next.condQ[c] = append([]int(nil), q...)
	}
	for i, p := range m.procs {
		cp := p
		cp.frames = make([]frame, len(p.frames))
		copy(cp.frames, p.frames)
		if p.args != nil {
			cp.args = make(map[string]int64, len(p.args))
			for k, v := range p.args {
				cp.args[k] = v
			}
		}
		next.procs[i] = cp
	}
	return next
}

// emit appends an event enabled by the process's previous event plus any
// extra enablers; it returns the event index.
func (m *machine) emit(proc int, elem, class string, params core.Params, extra ...int) int {
	idx := len(m.events)
	m.events = append(m.events, evRec{elem: elem, class: class, params: params})
	if proc >= 0 && m.procs[proc].lastEv >= 0 {
		m.edges = append(m.edges, [2]int{m.procs[proc].lastEv, idx})
	}
	for _, e := range extra {
		if e >= 0 && e != idx {
			m.edges = append(m.edges, [2]int{e, idx})
		}
	}
	if proc >= 0 {
		m.procs[proc].lastEv = idx
	}
	return idx
}

// emitInternal emits a monitor-internal event and threads the
// internal-total-order chain through it.
func (m *machine) emitInternal(proc int, elem, class string, params core.Params, extra ...int) int {
	if m.lastMonEv >= 0 {
		extra = append(extra, m.lastMonEv)
	}
	idx := m.emit(proc, elem, class, params, extra...)
	m.lastMonEv = idx
	return idx
}

// transition is one schedulable step.
type transition struct {
	kind string // "step", "grant", "urgent"
	proc int
}

// transitions partitions the schedulable steps for partial-order
// reduction. A transition is "invisible" when it commutes with every
// other enabled transition and leads to the same partial order regardless
// of scheduling: process-local ops and entry calls (events at the
// process's own element), the monitor holder's internal steps, and the
// forced urgent resume. One invisible transition may be executed eagerly
// without branching. The branching choices that remain are exactly the
// semantically distinct ones: which queued caller enters the free
// monitor, and the order of operations at shared external elements.
//
// With full=true every enabled transition is collected into branches
// (eager stays nil) — the unreduced exploration used to validate the
// reduction.
func (m *machine) transitions(full bool) (eager *transition, branches []transition) {
	for i := range m.procs {
		p := &m.procs[i]
		if p.status != statusReady {
			continue
		}
		if m.holder == i {
			if !full {
				return &transition{kind: "step", proc: i}, nil
			}
			branches = append(branches, transition{kind: "step", proc: i})
			continue
		}
		if p.bodyIdx < len(m.prog.Processes[i].Body) {
			st := m.prog.Processes[i].Body[p.bodyIdx]
			if op, ok := st.(Op); !full {
				if ok && op.Element != "" {
					branches = append(branches, transition{kind: "step", proc: i})
					continue
				}
				return &transition{kind: "step", proc: i}, nil
			}
			branches = append(branches, transition{kind: "step", proc: i})
		}
	}
	if m.holder == -1 {
		if len(m.urgent) > 0 {
			if !full {
				return &transition{kind: "urgent", proc: m.urgent[len(m.urgent)-1]}, nil
			}
			branches = append(branches, transition{kind: "urgent", proc: m.urgent[len(m.urgent)-1]})
		} else {
			for _, p := range m.entryQ {
				branches = append(branches, transition{kind: "grant", proc: p})
			}
		}
	}
	return nil, branches
}

func (m *machine) apply(t transition) error {
	m.steps++
	switch t.kind {
	case "grant":
		return m.applyGrant(t.proc)
	case "urgent":
		return m.applyUrgentResume()
	default:
		if m.holder == t.proc {
			return m.stepInside(t.proc)
		}
		return m.stepOutside(t.proc)
	}
}

func (m *machine) applyGrant(proc int) error {
	for i, p := range m.entryQ {
		if p == proc {
			m.entryQ = append(m.entryQ[:i], m.entryQ[i+1:]...)
			break
		}
	}
	m.holder = proc
	p := &m.procs[proc]
	entry, ok := m.prog.Monitor.EntryNamed(p.entry)
	if !ok {
		return fmt.Errorf("monitor: unknown entry %q", p.entry)
	}
	procName := m.prog.Processes[proc].Name
	m.emitInternal(proc, m.prog.Monitor.LockElement(), "Acq", core.Params{"proc": core.Str(procName)})
	beginParams := core.Params{"proc": core.Str(procName)}
	for name, v := range p.args {
		beginParams[name] = core.Int(v)
	}
	m.emitInternal(proc, m.prog.Monitor.EntryElement(p.entry), "Begin", beginParams)
	p.frames = []frame{{block: entry.Body}}
	p.status = statusReady
	return nil
}

func (m *machine) applyUrgentResume() error {
	proc := m.urgent[len(m.urgent)-1]
	m.urgent = m.urgent[:len(m.urgent)-1]
	m.holder = proc
	p := &m.procs[proc]
	p.status = statusReady
	m.emitInternal(proc, m.prog.Monitor.LockElement(), "Acq",
		core.Params{"proc": core.Str(m.prog.Processes[proc].Name)})
	return nil
}

// stepOutside executes the next process-body statement.
func (m *machine) stepOutside(proc int) error {
	p := &m.procs[proc]
	st := m.prog.Processes[proc].Body[p.bodyIdx]
	p.bodyIdx++
	switch s := st.(type) {
	case Call:
		entry, ok := m.prog.Monitor.EntryNamed(s.Entry)
		if !ok {
			return fmt.Errorf("monitor: call to unknown entry %q", s.Entry)
		}
		if len(s.Args) != len(entry.Args) {
			return fmt.Errorf("monitor: entry %s expects %d args, got %d", s.Entry, len(entry.Args), len(s.Args))
		}
		args := make(map[string]int64, len(s.Args))
		for i, name := range entry.Args {
			args[name] = s.Args[i]
		}
		p.entry = s.Entry
		p.args = args
		callParams := core.Params{"entry": core.Str(s.Entry)}
		for name, v := range args {
			callParams[name] = core.Int(v)
		}
		m.emit(proc, m.prog.Processes[proc].Name, "Call", callParams)
		p.status = statusBlockedEntry
		m.entryQ = append(m.entryQ, proc)
	case Op:
		params := make(core.Params, len(s.Params)+2)
		for k, v := range s.Params {
			params[k] = core.Int(v)
		}
		elem := m.prog.Processes[proc].Name
		if s.Element != "" {
			elem = s.Element
			params["proc"] = core.Str(m.prog.Processes[proc].Name)
			switch s.Class {
			case "Assign":
				m.ext[s.Element] = s.Params["newval"]
			case "Getval":
				params["oldval"] = core.Int(m.ext[s.Element])
			}
		}
		m.emit(proc, elem, s.Class, params)
	default:
		return fmt.Errorf("monitor: process statement %T not supported", st)
	}
	return nil
}

// stepInside advances the monitor holder: first any pending resume
// events, then statements until one event-producing action completes.
func (m *machine) stepInside(proc int) error {
	p := &m.procs[proc]
	if p.resuming {
		mon := m.prog.Monitor
		procName := m.prog.Processes[proc].Name
		rel := m.emitInternal(proc, mon.CondElement(p.resumeCond()), "Release",
			core.Params{"proc": core.Str(procName)}, p.signalEv)
		m.emitInternal(proc, mon.LockElement(), "Acq",
			core.Params{"proc": core.Str(procName)}, rel)
		p.resuming = false
		p.signalEv = -1
		return nil
	}
	env := &evalEnv{vars: m.vars, args: p.args, m: m}
	for {
		st, ok := m.nextStmt(proc)
		if !ok {
			return m.endEntry(proc, env)
		}
		switch s := st.(type) {
		case Assign:
			m.vars[s.Var] = s.E.eval(env)
			m.emitInternal(proc, m.prog.Monitor.VarElement(s.Var), "Assign",
				core.Params{
					"newval": core.Int(m.vars[s.Var]),
					"proc":   core.Str(m.prog.Processes[proc].Name),
					"entry":  core.Str(p.entry),
				})
			return nil
		case If:
			branch := s.Else
			if s.Cond.eval(env) != 0 {
				branch = s.Then
			}
			if len(branch) > 0 {
				p.frames = append(p.frames, frame{block: branch})
			}
		case While:
			if s.Cond.eval(env) != 0 {
				// Re-test after the body: rewind this statement.
				top := &p.frames[len(p.frames)-1]
				top.idx--
				p.frames = append(p.frames, frame{block: s.Body})
			}
		case Wait:
			mon := m.prog.Monitor
			procName := core.Str(m.prog.Processes[proc].Name)
			w := m.emitInternal(proc, mon.CondElement(s.Cond), "Wait", core.Params{"proc": procName})
			m.emitInternal(proc, mon.LockElement(), "Rel", core.Params{"proc": procName}, w)
			m.condQ[s.Cond] = append(m.condQ[s.Cond], proc)
			p.status = statusWaiting
			p.waitCond = s.Cond
			m.holder = -1
			return nil
		case Signal:
			mon := m.prog.Monitor
			sig := m.emitInternal(proc, mon.CondElement(s.Cond), "Signal",
				core.Params{"proc": core.Str(m.prog.Processes[proc].Name)})
			if q := m.condQ[s.Cond]; len(q) > 0 {
				waiter := q[0]
				m.condQ[s.Cond] = q[1:]
				m.urgent = append(m.urgent, proc)
				p.status = statusUrgent
				w := &m.procs[waiter]
				w.status = statusReady
				w.resuming = true
				w.signalEv = sig
				m.holder = waiter
			}
			return nil
		default:
			return fmt.Errorf("monitor: statement %T not supported", st)
		}
	}
}

// nextStmt pops the next statement from the holder's continuation.
func (m *machine) nextStmt(proc int) (Stmt, bool) {
	p := &m.procs[proc]
	for len(p.frames) > 0 {
		top := &p.frames[len(p.frames)-1]
		if top.idx < len(top.block) {
			st := top.block[top.idx]
			top.idx++
			return st, true
		}
		p.frames = p.frames[:len(p.frames)-1]
	}
	return nil, false
}

func (m *machine) endEntry(proc int, env *evalEnv) error {
	p := &m.procs[proc]
	mon := m.prog.Monitor
	entry, _ := mon.EntryNamed(p.entry)
	params := core.Params{"entry": core.Str(p.entry)}
	if entry.Result != nil {
		params["result"] = core.Int(entry.Result.eval(env))
	}
	procName := core.Str(m.prog.Processes[proc].Name)
	endParams := core.Params{"proc": procName}
	for name, v := range p.args {
		endParams[name] = core.Int(v)
	}
	if r, ok := params["result"]; ok {
		endParams["result"] = r
	}
	m.emitInternal(proc, mon.EntryElement(p.entry), "End", endParams)
	rel := m.emitInternal(proc, mon.LockElement(), "Rel", core.Params{"proc": procName})
	m.emit(proc, m.prog.Processes[proc].Name, "Return", params, rel)
	m.holder = -1
	p.frames = nil
	p.args = nil
	p.entry = ""
	return nil
}

// finish builds the Run for a state with no transitions.
func (m *machine) finish() (Run, error) {
	deadlock := false
	for i := range m.procs {
		p := &m.procs[i]
		done := p.status == statusReady && m.holder != i && p.bodyIdx >= len(m.prog.Processes[i].Body)
		if !done {
			deadlock = true
		}
	}
	b := core.NewBuilder()
	ids := make([]core.EventID, len(m.events))
	for i, e := range m.events {
		ids[i] = b.Event(e.elem, e.class, e.params)
	}
	for _, e := range m.edges {
		b.Enable(ids[e[0]], ids[e[1]])
	}
	comp, err := b.Build()
	if err != nil {
		return Run{}, fmt.Errorf("monitor: generated computation invalid: %w", err)
	}
	finals := make(map[string]int64, len(m.vars))
	for k, v := range m.vars {
		finals[k] = v
	}
	return Run{Comp: comp, FinalVars: finals, Deadlock: deadlock}, nil
}

// canonicalKey identifies the run's partial order: events keyed by
// (element, per-element occurrence index) with sorted edges, so different
// interleavings of the same computation collapse.
func (m *machine) canonicalKey() string {
	perElem := make(map[string]int)
	labels := make([]string, len(m.events))
	for i, e := range m.events {
		labels[i] = fmt.Sprintf("%s^%d:%s%s", e.elem, perElem[e.elem], e.class, e.params)
		perElem[e.elem]++
	}
	var sb strings.Builder
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	for _, l := range sorted {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	edgeLabels := make([]string, len(m.edges))
	for i, e := range m.edges {
		edgeLabels[i] = labels[e[0]] + ">" + labels[e[1]]
	}
	sort.Strings(edgeLabels)
	for _, l := range edgeLabels {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}
