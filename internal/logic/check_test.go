package logic

import (
	"strings"
	"testing"

	"gem/internal/core"
	"gem/internal/history"
)

// variableComputation builds the paper's Variable element: a sequence of
// Assign and Getval events at one element. If faithful, each Getval yields
// the value of the latest preceding Assign.
func variableComputation(t *testing.T, faithful bool) *core.Computation {
	t.Helper()
	b := core.NewBuilder()
	b.Event("Var", "Assign", core.Params{"newval": core.Int(1)})
	b.Event("Var", "Getval", core.Params{"oldval": core.Int(1)})
	b.Event("Var", "Assign", core.Params{"newval": core.Int(2)})
	got := core.Int(2)
	if !faithful {
		got = core.Int(1) // stale read
	}
	b.Event("Var", "Getval", core.Params{"oldval": got})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// variableRestriction encodes the paper's Section 8.2 Variable
// restriction: for every assign/getval pair with no intervening assign and
// assign before getval, the values must agree.
func variableRestriction() Formula {
	assignRef := core.Ref("Var", "Assign")
	getvalRef := core.Ref("Var", "Getval")
	noIntervening := Not{F: Exists{
		Var: "assign2", Ref: assignRef,
		Body: And{
			ElemOrdered{X: "assign", Y: "assign2"},
			ElemOrdered{X: "assign2", Y: "getval"},
		},
	}}
	return ForAll{
		Var: "assign", Ref: assignRef,
		Body: ForAll{
			Var: "getval", Ref: getvalRef,
			Body: Implies{
				If:   And{ElemOrdered{X: "assign", Y: "getval"}, noIntervening},
				Then: ParamCmp{X: "assign", P: "newval", Op: OpEq, Y: "getval", Q: "oldval"},
			},
		},
	}
}

func TestVariableRestrictionHolds(t *testing.T) {
	c := variableComputation(t, true)
	if cx := Holds(variableRestriction(), c, CheckOptions{}); cx != nil {
		t.Errorf("faithful variable computation should satisfy the restriction: %v", cx.Error())
	}
}

func TestVariableRestrictionRefutesStaleRead(t *testing.T) {
	c := variableComputation(t, false)
	cx := Holds(variableRestriction(), c, CheckOptions{})
	if cx == nil {
		t.Fatal("stale read must violate the Variable restriction")
	}
	if !strings.Contains(cx.Error(), "restriction violated") {
		t.Errorf("counterexample message: %s", cx.Error())
	}
}

// TestMessagePassingRestriction encodes Section 5's send/receive data
// transfer: if send enables receive, their parameters must be equal.
func TestMessagePassingRestriction(t *testing.T) {
	build := func(recvVal int64) *core.Computation {
		b := core.NewBuilder()
		s := b.Event("Sender", "Send", core.Params{"par1": core.Int(42)})
		r := b.Event("Receiver", "Receive", core.Params{"par2": core.Int(recvVal)})
		b.Enable(s, r)
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	restriction := ForAll{
		Var: "send", Ref: core.Ref("", "Send"),
		Body: ForAll{
			Var: "receive", Ref: core.Ref("", "Receive"),
			Body: Implies{
				If:   Enables{X: "send", Y: "receive"},
				Then: ParamCmp{X: "send", P: "par1", Op: OpEq, Y: "receive", Q: "par2"},
			},
		},
	}
	if cx := Holds(restriction, build(42), CheckOptions{}); cx != nil {
		t.Errorf("matching message passing should hold: %v", cx.Error())
	}
	if cx := Holds(restriction, build(7), CheckOptions{}); cx == nil {
		t.Error("corrupted message must be refuted")
	}
}

func TestQuantifiers(t *testing.T) {
	c, ids := diamondComp(t)
	env := NewEnv(history.Full(c))
	anyE := core.Ref("", "E")

	if !(ForAll{Var: "e", Ref: anyE, Body: Occurred{Var: "e"}}).Eval(env) {
		t.Error("all events occurred at the full history")
	}
	if !(Exists{Var: "e", Ref: core.Ref("EL1", "E"), Body: TrueF{}}).Eval(env) {
		t.Error("EL1 has an event")
	}
	if (Exists{Var: "e", Ref: core.Ref("EL9", "E"), Body: TrueF{}}).Eval(env) {
		t.Error("EL9 has no events")
	}
	// Exactly one event enables e4 from EL2.
	uniq := ExistsUnique{Var: "x", Ref: core.Ref("EL2", "E"), Body: Enables{X: "x", Y: "tgt"}}
	if !uniq.Eval(env.bind("tgt", ids[3])) {
		t.Error("exactly one EL2 event enables e4")
	}
	// ExistsUnique fails when two events satisfy the body.
	two := ExistsUnique{Var: "x", Ref: anyE, Body: Enables{X: "x", Y: "tgt"}}
	if two.Eval(env.bind("tgt", ids[3])) {
		t.Error("two enablers of e4: uniqueness must fail")
	}
	// AtMostOne accepts zero.
	zero := AtMostOne{Var: "x", Ref: anyE, Body: Enables{X: "x", Y: "tgt"}}
	if !zero.Eval(env.bind("tgt", ids[0])) {
		t.Error("no enablers of e1: at-most-one holds")
	}
	if two2 := (AtMostOne{Var: "x", Ref: anyE, Body: Enables{X: "x", Y: "tgt"}}); two2.Eval(env.bind("tgt", ids[3])) {
		t.Error("two enablers of e4: at-most-one must fail")
	}
}

func TestThreadQuantifiers(t *testing.T) {
	b := core.NewBuilder()
	x := b.Event("X", "Req", nil)
	y := b.Event("X", "Req", nil)
	b.Thread(x, ThreadID("pi", 1))
	b.Thread(y, ThreadID("pi", 2))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(history.Full(c))

	// Every pi thread has a Req event.
	f := ForAllThread{Var: "t", Type: "pi", Body: Exists{
		Var: "e", Ref: core.Ref("X", "Req"), Body: OnThread{X: "e", T: "t"},
	}}
	if !f.Eval(env) {
		t.Error("every thread should have its Req event")
	}
	// Some pi thread exists.
	g := ExistsThread{Var: "t", Type: "pi", Body: TrueF{}}
	if !g.Eval(env) {
		t.Error("thread domain should be non-empty")
	}
	// No thread of another type.
	h := ExistsThread{Var: "t", Type: "rho", Body: TrueF{}}
	if h.Eval(env) {
		t.Error("no rho threads exist")
	}
}

func TestBoxDiamondOverSequences(t *testing.T) {
	c, ids := diamondComp(t)
	// ◇ occurred(e4) must hold on every complete vhs.
	even := ForAll{Var: "e", Ref: core.Ref("EL4", "E"), Body: Diamond{F: Occurred{Var: "e"}}}
	if cx := Holds(even, c, CheckOptions{}); cx != nil {
		t.Errorf("eventually-e4 should hold on all complete sequences: %v", cx.Error())
	}
	// □ occurred(e1) fails: the empty history lacks e1.
	alwaysE1 := ForAll{Var: "e", Ref: core.Ref("EL1", "E"), Body: Box{F: Occurred{Var: "e"}}}
	if cx := Holds(alwaysE1, c, CheckOptions{}); cx == nil {
		t.Error("always-e1 must fail at the empty history")
	}
	// □(occurred(e4) -> occurred(e2)) holds: e2 precedes e4.
	safety := Box{F: Implies{
		If:   Exists{Var: "x", Ref: core.Ref("EL4", "E"), Body: Occurred{Var: "x"}},
		Then: Exists{Var: "y", Ref: core.Ref("EL2", "E"), Body: Occurred{Var: "y"}},
	}}
	if cx := Holds(safety, c, CheckOptions{}); cx != nil {
		t.Errorf("safety implication should hold: %v", cx.Error())
	}
	_ = ids
}

func TestBoxDegeneratesOutsideSequence(t *testing.T) {
	c, _ := diamondComp(t)
	env := NewEnv(history.Full(c))
	f := Box{F: Exists{Var: "e", Ref: core.Ref("EL1", "E"), Body: Occurred{Var: "e"}}}
	if !f.Eval(env) {
		t.Error("Box outside a sequence evaluates its body at the current history")
	}
	g := Diamond{F: FalseF{}}
	if g.Eval(env) {
		t.Error("Diamond of false is false everywhere")
	}
}

func TestHoldsInvariantSemantics(t *testing.T) {
	c, _ := diamondComp(t)
	// Invariant (no temporal op, has history predicate): "e4 occurred
	// implies e1 occurred" — holds at every history.
	inv := Implies{
		If:   Exists{Var: "x", Ref: core.Ref("EL4", "E"), Body: Occurred{Var: "x"}},
		Then: Exists{Var: "y", Ref: core.Ref("EL1", "E"), Body: Occurred{Var: "y"}},
	}
	if cx := Holds(inv, c, CheckOptions{}); cx != nil {
		t.Errorf("prefix-closure invariant should hold: %v", cx.Error())
	}
	// "e1 occurred" is not invariant (fails at the empty history).
	notInv := Exists{Var: "y", Ref: core.Ref("EL1", "E"), Body: Occurred{Var: "y"}}
	if cx := Holds(notInv, c, CheckOptions{}); cx == nil {
		t.Error("non-invariant must be refuted at the empty history")
	}
	// But it holds at the full history.
	if cx := HoldsAtFull(notInv, c); cx != nil {
		t.Errorf("HoldsAtFull should accept: %v", cx.Error())
	}
}

func TestHoldsAllReportsIndex(t *testing.T) {
	c, _ := diamondComp(t)
	fs := []Formula{TrueF{}, FalseF{}, TrueF{}}
	idx, cx := HoldsAll(fs, c, CheckOptions{})
	if idx != 1 || cx == nil {
		t.Errorf("HoldsAll = (%d, %v), want (1, counterexample)", idx, cx)
	}
	idx, cx = HoldsAll([]Formula{TrueF{}}, c, CheckOptions{})
	if idx != -1 || cx != nil {
		t.Errorf("all-pass HoldsAll = (%d, %v)", idx, cx)
	}
}

func TestLinearOnlyOption(t *testing.T) {
	c, _ := diamondComp(t)
	// A formula distinguishing vhs from linear semantics: "eventually
	// exactly one of e2/e3 has occurred". True on every linear extension
	// (whichever of the pair is added first), but false on the vhs whose
	// simultaneous step adds e2 and e3 "at the same time".
	occ2 := Exists{Var: "x", Ref: core.Ref("EL2", "E"), Body: Occurred{Var: "x"}}
	occ3 := Exists{Var: "y", Ref: core.Ref("EL3", "E"), Body: Occurred{Var: "y"}}
	f := Diamond{F: And{
		Or{occ2, occ3},
		Not{F: And{occ2, occ3}},
	}}
	if cx := Holds(f, c, CheckOptions{LinearOnly: true}); cx != nil {
		t.Errorf("under linear semantics the formula holds: %v", cx.Error())
	}
	if cx := Holds(f, c, CheckOptions{}); cx == nil {
		t.Error("under full vhs semantics the simultaneous step refutes it")
	}
}

func TestCounterexampleError(t *testing.T) {
	var nilCx *Counterexample
	if nilCx.Error() != "<no counterexample>" {
		t.Error("nil counterexample message wrong")
	}
	c, _ := diamondComp(t)
	// A genuinely temporal formula (nested ◇) is checked over sequences
	// and the counterexample carries the violating sequence.
	cx := Holds(Box{F: Diamond{F: FalseF{}}}, c, CheckOptions{})
	if cx == nil {
		t.Fatal("expected counterexample")
	}
	if !strings.Contains(cx.Error(), "sequence") {
		t.Errorf("temporal counterexample should mention the sequence: %s", cx.Error())
	}
	// The □-invariant reduction reports the violating history directly.
	cx2 := Holds(Box{F: FalseF{}}, c, CheckOptions{})
	if cx2 == nil || strings.Contains(cx2.Error(), "sequence") {
		t.Errorf("invariant counterexample should be history-level: %v", cx2)
	}
}

func TestHasTemporalAndHistoryPredicates(t *testing.T) {
	tests := []struct {
		f        Formula
		temporal bool
		hist     bool
	}{
		{TrueF{}, false, false},
		{Occurred{Var: "e"}, false, true},
		{Box{F: TrueF{}}, true, false},
		{Diamond{F: Occurred{Var: "e"}}, true, true},
		{Not{F: Box{F: TrueF{}}}, true, false},
		{And{TrueF{}, New{Var: "e"}}, false, true},
		{Or{FalseF{}, Box{F: TrueF{}}}, true, false},
		{Implies{If: TrueF{}, Then: Potential{Var: "e"}}, false, true},
		{Iff{A: TrueF{}, B: AtControl{Var: "e", Ref: core.Ref("", "X")}}, false, true},
		{ForAll{Var: "e", Ref: core.Ref("", "X"), Body: Diamond{F: TrueF{}}}, true, false},
		{Exists{Var: "e", Ref: core.Ref("", "X"), Body: Occurred{Var: "e"}}, false, true},
		{ForAllThread{Var: "t", Type: "pi", Body: Box{F: TrueF{}}}, true, false},
		{Enables{X: "a", Y: "b"}, false, false},
	}
	for _, tt := range tests {
		if got := HasTemporal(tt.f); got != tt.temporal {
			t.Errorf("HasTemporal(%s) = %v, want %v", tt.f, got, tt.temporal)
		}
		if got := HasHistoryPredicate(tt.f); got != tt.hist {
			t.Errorf("HasHistoryPredicate(%s) = %v, want %v", tt.f, got, tt.hist)
		}
	}
}

func TestEnvBindings(t *testing.T) {
	c, ids := diamondComp(t)
	env := NewEnv(history.Full(c))
	if env.Bindings() != "" {
		t.Error("fresh env has no bindings")
	}
	env2 := env.bind("x", ids[0]).bindThread("t", "pi#1")
	s := env2.Bindings()
	if !strings.Contains(s, "x=EL1.E^0") || !strings.Contains(s, "t=pi#1") {
		t.Errorf("Bindings = %q", s)
	}
	if _, ok := env.Lookup("x"); ok {
		t.Error("bind must not mutate the parent env")
	}
	if id, ok := env2.Lookup("x"); !ok || id != ids[0] {
		t.Error("Lookup failed")
	}
}
