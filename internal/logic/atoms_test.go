package logic

import (
	"strings"
	"testing"

	"gem/internal/core"
	"gem/internal/history"
)

// diamondComp builds the Section 7 diamond with parameters so parameter
// predicates can be exercised: e1..e4, each at its own element, e1 with
// val=1 etc.
func diamondComp(t *testing.T) (*core.Computation, [4]core.EventID) {
	t.Helper()
	b := core.NewBuilder()
	var ids [4]core.EventID
	for i := 0; i < 4; i++ {
		ids[i] = b.Event("EL"+string(rune('1'+i)), "E", core.Params{"val": core.Int(int64(i + 1))})
	}
	b.Enable(ids[0], ids[1])
	b.Enable(ids[0], ids[2])
	b.Enable(ids[1], ids[3])
	b.Enable(ids[2], ids[3])
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, ids
}

func envWith(c *core.Computation, h history.History, binds map[string]core.EventID) *Env {
	env := NewEnv(h)
	for k, v := range binds {
		env = env.bind(k, v)
	}
	return env
}

func TestAtomicPredicates(t *testing.T) {
	c, ids := diamondComp(t)
	h := history.FromEvents(c, ids[1]) // {e1, e2}
	env := envWith(c, h, map[string]core.EventID{
		"e1": ids[0], "e2": ids[1], "e3": ids[2], "e4": ids[3],
	})

	tests := []struct {
		name string
		f    Formula
		want bool
	}{
		{"true", TrueF{}, true},
		{"false", FalseF{}, false},
		{"occurred e1", Occurred{Var: "e1"}, true},
		{"occurred e3", Occurred{Var: "e3"}, false},
		{"at element", AtElement{Var: "e1", Element: "EL1"}, true},
		{"at wrong element", AtElement{Var: "e1", Element: "EL2"}, false},
		{"in class", InClass{Var: "e1", Ref: core.Ref("EL1", "E")}, true},
		{"in wrong class", InClass{Var: "e1", Ref: core.Ref("", "F")}, false},
		{"enables direct", Enables{X: "e1", Y: "e2"}, true},
		{"enables not transitive", Enables{X: "e1", Y: "e4"}, false},
		{"elem order same element only", ElemOrdered{X: "e1", Y: "e2"}, false},
		{"temporal transitive", Precedes{X: "e1", Y: "e4"}, true},
		{"temporal not backwards", Precedes{X: "e4", Y: "e1"}, false},
		{"concurrent", ConcurrentWith{X: "e2", Y: "e3"}, true},
		{"not concurrent", ConcurrentWith{X: "e1", Y: "e2"}, false},
		{"same event", SameEvent{X: "e1", Y: "e1"}, true},
		{"different events", SameEvent{X: "e1", Y: "e2"}, false},
		{"param lt", ParamCmp{X: "e1", P: "val", Op: OpLt, Y: "e2", Q: "val"}, true},
		{"param eq self", ParamCmp{X: "e1", P: "val", Op: OpEq, Y: "e1", Q: "val"}, true},
		{"param missing", ParamCmp{X: "e1", P: "nope", Op: OpEq, Y: "e1", Q: "val"}, false},
		{"param const ge", ParamConst{X: "e4", P: "val", Op: OpGe, V: core.Int(4)}, true},
		{"param const ne", ParamConst{X: "e4", P: "val", Op: OpNe, V: core.Int(4)}, false},
		{"new e2", New{Var: "e2"}, true},
		{"not new e1", New{Var: "e1"}, false},
		{"potential e3", Potential{Var: "e3"}, true},
		{"not potential e4", Potential{Var: "e4"}, false},
		{"at control: e2 has not enabled e4", AtControl{Var: "e2", Ref: core.Ref("EL4", "E")}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Eval(env); got != tt.want {
				t.Errorf("%s = %v, want %v", tt.f, got, tt.want)
			}
		})
	}
}

func TestCmpOps(t *testing.T) {
	one, two := core.Int(1), core.Int(2)
	tests := []struct {
		op       CmpOp
		a, b     core.Value
		want     bool
		wantName string
	}{
		{OpEq, one, one, true, "="},
		{OpEq, one, two, false, "="},
		{OpNe, one, two, true, "!="},
		{OpLt, one, two, true, "<"},
		{OpLt, two, one, false, "<"},
		{OpLe, one, one, true, "<="},
		{OpGt, two, one, true, ">"},
		{OpGe, one, one, true, ">="},
		{OpGe, one, two, false, ">="},
	}
	for _, tt := range tests {
		if got := tt.op.apply(tt.a, tt.b); got != tt.want {
			t.Errorf("%v %s %v = %v, want %v", tt.a, tt.op, tt.b, got, tt.want)
		}
		if tt.op.String() != tt.wantName {
			t.Errorf("op name = %q, want %q", tt.op.String(), tt.wantName)
		}
	}
}

func TestThreadPredicates(t *testing.T) {
	b := core.NewBuilder()
	x := b.Event("X", "Req", nil)
	y := b.Event("Y", "Start", nil)
	z := b.Event("X", "Req", nil)
	b.Enable(x, y)
	b.Thread(x, ThreadID("pi", 1))
	b.Thread(y, ThreadID("pi", 1))
	b.Thread(z, ThreadID("pi", 2))
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnv(history.Full(c)).
		bind("x", x).bind("y", y).bind("z", z).
		bindThread("t1", ThreadID("pi", 1)).
		bindThread("t2", ThreadID("pi", 2))

	if !(OnThread{X: "x", T: "t1"}).Eval(env) {
		t.Error("x should be on thread pi#1")
	}
	if (OnThread{X: "z", T: "t1"}).Eval(env) {
		t.Error("z is not on thread pi#1")
	}
	if !(ThreadsDistinct{T1: "t1", T2: "t2"}).Eval(env) {
		t.Error("t1 and t2 are distinct")
	}
	if (ThreadsDistinct{T1: "t1", T2: "t1"}).Eval(env) {
		t.Error("t1 equals itself")
	}
}

func TestThreadIDHelpers(t *testing.T) {
	tid := ThreadID("piRW", 3)
	if tid != "piRW#3" {
		t.Errorf("ThreadID = %q", tid)
	}
	if got := ThreadTypeOf(tid); got != "piRW" {
		t.Errorf("ThreadTypeOf = %q", got)
	}
	if got := ThreadTypeOf("bare"); got != "bare" {
		t.Errorf("ThreadTypeOf(bare) = %q", got)
	}
}

func TestUnboundVariablePanics(t *testing.T) {
	c, _ := diamondComp(t)
	env := NewEnv(history.Full(c))
	defer func() {
		if r := recover(); r == nil {
			t.Error("unbound variable should panic")
		} else if !strings.Contains(r.(string), "unbound") {
			t.Errorf("panic message = %v", r)
		}
	}()
	Occurred{Var: "ghost"}.Eval(env)
}

func TestFormulaStrings(t *testing.T) {
	tests := []struct {
		f    Formula
		want string
	}{
		{Occurred{Var: "e"}, "occurred(e)"},
		{Enables{X: "a", Y: "b"}, "a |> b"},
		{Precedes{X: "a", Y: "b"}, "a => b"},
		{ElemOrdered{X: "a", Y: "b"}, "a =>el b"},
		{Not{F: TrueF{}}, "~(true)"},
		{And{TrueF{}, FalseF{}}, "(true & false)"},
		{Or{}, "false"},
		{And{}, "true"},
		{Implies{If: TrueF{}, Then: FalseF{}}, "(true -> false)"},
		{Iff{A: TrueF{}, B: TrueF{}}, "(true <-> true)"},
		{Box{F: TrueF{}}, "[](true)"},
		{Diamond{F: TrueF{}}, "<>(true)"},
		{New{Var: "e"}, "new(e)"},
		{Potential{Var: "e"}, "potential(e)"},
		{AtControl{Var: "e", Ref: core.Ref("", "S")}, "e at S"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}
