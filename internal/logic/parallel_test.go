package logic

import (
	"runtime"
	"sync"
	"testing"

	"gem/internal/core"
	"gem/internal/history"
)

// withProcs raises GOMAXPROCS for the duration of a test so the parallel
// code paths are exercised even on a single-core host (Workers caps the
// pool at GOMAXPROCS).
func withProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

func TestWorkers(t *testing.T) {
	withProcs(t, 4)
	tests := []struct{ par, n, want int }{
		{0, 10, 1},
		{1, 10, 1},
		{4, 10, 4},
		{4, 3, 3},
		{8, 10, 4}, // capped at GOMAXPROCS
		{4, 1, 1},
		{-1, 10, 1},
	}
	for _, tt := range tests {
		if got := Workers(tt.par, tt.n); got != tt.want {
			t.Errorf("Workers(%d, %d) = %d, want %d", tt.par, tt.n, got, tt.want)
		}
	}
}

// TestFirstFailureDeterminism: the parallel pool reports the same lowest
// failing index and result as the sequential loop, and every unit below
// that index is evaluated (never skipped).
func TestFirstFailureDeterminism(t *testing.T) {
	withProcs(t, 4)
	fails := map[int]bool{7: true, 23: true, 41: true}
	const n = 50
	run := func(par int) (int, string, map[int]bool) {
		var mu sync.Mutex
		evaluated := make(map[int]bool)
		idx, res := FirstFailure(nil, n, par, func(i int) (string, bool) {
			mu.Lock()
			evaluated[i] = true
			mu.Unlock()
			if fails[i] {
				return "failed-" + string(rune('0'+i/10)) + string(rune('0'+i%10)), false
			}
			return "", true
		})
		return idx, res, evaluated
	}
	seqIdx, seqRes, _ := run(1)
	if seqIdx != 7 || seqRes != "failed-07" {
		t.Fatalf("sequential = (%d, %q), want (7, failed-07)", seqIdx, seqRes)
	}
	for trial := 0; trial < 10; trial++ {
		parIdx, parRes, evaluated := run(4)
		if parIdx != seqIdx || parRes != seqRes {
			t.Fatalf("parallel = (%d, %q), sequential = (%d, %q)", parIdx, parRes, seqIdx, seqRes)
		}
		for i := 0; i < seqIdx; i++ {
			if !evaluated[i] {
				t.Fatalf("unit %d below the failing index was skipped", i)
			}
		}
	}
}

func TestFirstFailureAllPass(t *testing.T) {
	withProcs(t, 4)
	for _, par := range []int{1, 4} {
		idx, res := FirstFailure(nil, 100, par, func(i int) (int, bool) { return i, true })
		if idx != -1 || res != 0 {
			t.Errorf("par %d: all-pass FirstFailure = (%d, %d), want (-1, 0)", par, idx, res)
		}
	}
}

func TestHoldsEveryIndices(t *testing.T) {
	withProcs(t, 4)
	c1, _ := diamondComp(t)
	c2, _ := diamondComp(t)
	fs := []Formula{TrueF{}, FalseF{}}
	for _, par := range []int{1, 4} {
		ci, fi, cx := HoldsEvery(fs, []*core.Computation{c1, c2}, CheckOptions{Parallelism: par})
		if ci != 0 || fi != 1 || cx == nil {
			t.Errorf("par %d: HoldsEvery = (%d, %d, %v), want (0, 1, cx)", par, ci, fi, cx)
		}
	}
	if ci, fi, cx := HoldsEvery(fs, nil, CheckOptions{}); ci != -1 || fi != -1 || cx != nil {
		t.Errorf("empty comps: HoldsEvery = (%d, %d, %v)", ci, fi, cx)
	}
}

// TestLatticeBuiltOncePerCheck: checking several □ restrictions against
// one computation — both the □-invariant reduction and the history-pairs
// reduction — enumerates the history lattice exactly once.
func TestLatticeBuiltOncePerCheck(t *testing.T) {
	c, _ := diamondComp(t)
	inv := Box{F: Implies{
		If:   Exists{Var: "x", Ref: core.Ref("EL4", "E"), Body: Occurred{Var: "x"}},
		Then: Exists{Var: "y", Ref: core.Ref("EL2", "E"), Body: Occurred{Var: "y"}},
	}}
	pairs := Box{F: Implies{
		If:   Exists{Var: "x", Ref: core.Ref("EL1", "E"), Body: Occurred{Var: "x"}},
		Then: Box{F: Exists{Var: "y", Ref: core.Ref("EL1", "E"), Body: Occurred{Var: "y"}}},
	}}
	before := history.LatticeBuilds()
	if idx, cx := HoldsAll([]Formula{inv, pairs, inv, pairs}, c, CheckOptions{}); idx >= 0 {
		t.Fatalf("restrictions should hold, failed at %d: %v", idx, cx.Error())
	}
	if d := history.LatticeBuilds() - before; d != 1 {
		t.Errorf("lattice enumerated %d times across 4 restrictions, want 1", d)
	}
	// A bounded check bypasses the cache and must not enumerate it.
	before = history.LatticeBuilds()
	if cx := Holds(inv, c, CheckOptions{MaxHistories: 3}); cx != nil {
		t.Fatalf("bounded check failed: %v", cx.Error())
	}
	if d := history.LatticeBuilds() - before; d != 0 {
		t.Errorf("bounded check built the shared lattice %d times, want 0", d)
	}
}
