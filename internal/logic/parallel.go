package logic

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"gem/internal/core"
)

// Workers returns the effective worker count for n independent units at
// the requested parallelism: 0 and 1 mean sequential, and the pool is
// never larger than the number of units or useful beyond GOMAXPROCS for
// CPU-bound checking.
func Workers(par, n int) int {
	if par <= 1 || n <= 1 {
		return 1
	}
	if max := runtime.GOMAXPROCS(0); par > max {
		par = max
	}
	if par > n {
		par = n
	}
	if par < 1 {
		par = 1
	}
	return par
}

// FailureChunk is the number of units a FirstFailure worker claims per
// dispatch. Claiming runs of indices instead of single items keeps the
// shared counter off the hot path: per-item atomic increments put a
// contended cache line between every pair of cheap checks, which is what
// made -j4 slower than -j1 on the E4/E7 workloads. It also bounds the
// cancellation latency: workers poll the context once per claimed chunk,
// so a cancelled run stops within at most FailureChunk further checks
// per worker.
const FailureChunk = 16

// Done returns ctx's done channel, tolerating a nil context (the
// engines treat nil as context.Background(): never cancelled). Polling
// a nil channel in a select with a default case is free, so callers can
// hold the channel instead of re-checking ctx.
func Done(ctx context.Context) <-chan struct{} {
	if ctx == nil {
		return nil
	}
	return ctx.Done()
}

// Cancelled reports whether the done channel (from Done) is closed,
// without blocking.
func Cancelled(done <-chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		return false
	}
}

// FirstFailure evaluates check(i) for i in [0, n) and returns the lowest
// index whose check reports failure (ok == false) together with that
// check's result, or (-1, zero) when every unit passes. With par <= 1 it
// is a plain sequential loop that stops at the first failure; with
// par > 1 workers claim chunks of consecutive units from a shared
// counter, with deterministic first-failure semantics: units above the
// best failing index found so far are skipped, units below it are always
// evaluated, so the reported index and result are identical to the
// sequential run's.
//
// A nil ctx is never cancelled. When ctx is cancelled the run stops
// promptly — within FailureChunk further checks per worker — and
// returns the best failure found so far, or (-1, zero) if none was;
// callers that must distinguish "all passed" from "gave up" consult
// ctx.Err(), exactly like a truncated enumeration.
func FirstFailure[T any](ctx context.Context, n, par int, check func(i int) (T, bool)) (int, T) {
	var zero T
	done := Done(ctx)
	w := Workers(par, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			if i%FailureChunk == 0 && Cancelled(done) {
				return -1, zero
			}
			if res, ok := check(i); !ok {
				return i, res
			}
		}
		return -1, zero
	}
	// Chunks small enough that every worker gets several keep the tail
	// balanced when n is not much larger than the pool.
	chunk := FailureChunk
	if c := n / (w * 4); c < chunk {
		chunk = c
	}
	if chunk < 1 {
		chunk = 1
	}
	var (
		next    atomic.Int64
		minFail atomic.Int64
		mu      sync.Mutex
		results = make(map[int]T)
		wg      sync.WaitGroup
	)
	minFail.Store(int64(n))
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if Cancelled(done) {
					return
				}
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				if int64(lo) >= minFail.Load() {
					continue // a lower failure already decides the run
				}
				for i := lo; i < hi; i++ {
					if int64(i) >= minFail.Load() {
						break
					}
					res, ok := check(i)
					if ok {
						continue
					}
					mu.Lock()
					results[i] = res
					mu.Unlock()
					for {
						cur := minFail.Load()
						if int64(i) >= cur || minFail.CompareAndSwap(cur, int64(i)) {
							break
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	// After cancellation the reported failure is the best one actually
	// found (possibly not the global first), so partial results still
	// carry their evidence.
	if m := int(minFail.Load()); m < n {
		return m, results[m]
	}
	return -1, zero
}

// HoldsAll checks several restrictions, returning the first
// counterexample, annotated with its index, or (-1, nil) if all hold.
// With opts.Parallelism > 1 the restrictions are checked concurrently
// with deterministic first-failure semantics: the reported index and
// counterexample are the ones the sequential run finds. Cancellation of
// opts.Ctx stops the fan-out promptly (see FirstFailure).
func HoldsAll(fs []Formula, c *core.Computation, opts CheckOptions) (int, *Counterexample) {
	inner := opts
	inner.Parallelism = 1
	return FirstFailure(opts.Ctx, len(fs), opts.Parallelism, func(i int) (*Counterexample, bool) {
		cx := Holds(fs[i], c, inner)
		return cx, cx == nil
	})
}

// HoldsEvery checks every restriction against every computation, fanning
// the (computation, formula) pairs out to a worker pool. It returns the
// indices of the first failure in (computation-major, formula-minor)
// order plus its counterexample, or (-1, -1, nil) when every pair holds —
// exactly what nested sequential loops would report. Cancellation of
// opts.Ctx stops the fan-out promptly (see FirstFailure).
func HoldsEvery(fs []Formula, comps []*core.Computation, opts CheckOptions) (int, int, *Counterexample) {
	if len(fs) == 0 || len(comps) == 0 {
		return -1, -1, nil
	}
	inner := opts
	inner.Parallelism = 1
	u, cx := FirstFailure(opts.Ctx, len(comps)*len(fs), opts.Parallelism, func(i int) (*Counterexample, bool) {
		cx := Holds(fs[i%len(fs)], comps[i/len(fs)], inner)
		return cx, cx == nil
	})
	if u < 0 {
		return -1, -1, nil
	}
	return u / len(fs), u % len(fs), cx
}
