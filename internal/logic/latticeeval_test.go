package logic

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gem/internal/core"
	"gem/internal/obs"
)

// These tests counter-verify the lattice fixpoint engine against the
// definitional sequence semantics: whenever the engine's bounds decide a
// formula (before any fallback) the verdict must equal brute-force
// enumeration on randomized computations and formulas, every extracted
// counterexample must be a complete valid history sequence that falsifies
// the formula, and Holds must report identical verdicts under every
// engine. Witness identity across engines is deliberately NOT required:
// the lattice engine extracts its own violating sequence, and the seq
// engine serves as the verdict oracle.

// TestSequenceInsensitiveShapes pins the exported syntactic predicate:
// the shapes whose lower bound is exact by the per-node rules alone (no
// binding-domain knowledge). The evaluator applies the same rules per
// node — plus data-dependent single-binding relaxations — so a false
// entry here means "fallback possible", not "fallback certain".
func TestSequenceInsensitiveShapes(t *testing.T) {
	imm := Occurred{Var: "e"}
	imm2 := New{Var: "e"}
	tests := []struct {
		f    Formula
		want bool
	}{
		{imm, true},
		{Box{F: imm}, true},
		{Diamond{F: imm}, true},
		{Box{F: Box{F: imm}}, true},
		{Box{F: Diamond{F: imm}}, true},  // leads-to: □◇p
		{Diamond{F: Box{F: imm}}, false}, // exact AF needs an immediate body
		{Diamond{F: Diamond{F: imm}}, false},
		{Not{F: Box{F: imm}}, true}, // ¬□p = upper polarity, EG on immediate
		{Not{F: Diamond{F: Diamond{F: imm}}}, true},
		{Not{F: Diamond{F: Box{F: imm}}}, true},          // upper(◇□p) = EF∘EG, both exact
		{Not{F: Diamond{F: Box{F: Box{F: imm}}}}, false}, // exact EG needs an immediate body
		{And{Box{F: imm}, Diamond{F: imm2}}, true},
		{Or{Box{F: imm}, imm2}, true},
		// Two sequence-dependent disjuncts: the lower bound under-
		// approximates (per-node lowExact=false), so the verdict can be
		// inconclusive — though the upper bound still decides definite
		// failures of this shape without fallback.
		{Or{Box{F: imm}, Diamond{F: imm2}}, false},
		{Implies{If: imm, Then: Box{F: imm2}}, true},
		{Implies{If: Box{F: imm}, Then: imm2}, true},                      // immediate Then; upper(□imm) is exact (EG)
		{Implies{If: Diamond{F: imm}, Then: imm2}, true},                  // immediate Then; upper(◇imm) is exact (EF)
		{Implies{If: Diamond{F: Box{F: imm}}, Then: imm2}, true},          // upper(◇□p) exact as above
		{Implies{If: Diamond{F: Box{F: Box{F: imm}}}, Then: imm2}, false}, // EG of a non-immediate body
		{Box{F: Implies{If: imm, Then: Box{F: imm2}}}, true},              // the paper's priority shape
		{Box{F: Implies{If: imm, Then: Diamond{F: imm2}}}, true},
		{ForAll{Var: "e", Ref: core.Ref("", "X"), Body: Box{F: imm}}, true},
		// ∃ with a non-immediate body: the union of per-witness lower
		// bounds is sound but not exact over multi-binding domains (the
		// evaluator accepts ≤1-binding domains at run time).
		{Exists{Var: "e", Ref: core.Ref("", "X"), Body: Box{F: imm}}, false},
		{Exists{Var: "e", Ref: core.Ref("", "X"), Body: imm}, true}, // immediate overall
		{Not{F: ForAll{Var: "e", Ref: core.Ref("", "X"), Body: Box{F: imm}}}, false},
		// upper(∃x □p) = ∪ₓ upper(□p) is exact ("some sequence" commutes
		// with ∃x), so the negation has an exact lower bound.
		{Not{F: Exists{Var: "e", Ref: core.Ref("", "X"), Body: Box{F: imm}}}, true},
		{ExistsUnique{Var: "e", Ref: core.Ref("", "X"), Body: Box{F: imm}}, false},
		{Iff{A: Box{F: imm}, B: imm2}, false},
	}
	for _, tt := range tests {
		if got := SequenceInsensitive(tt.f); got != tt.want {
			t.Errorf("SequenceInsensitive(%s) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

// randFragment builds a random formula inside the syntactically exact
// fragment, with enough shape diversity to exercise every exact rule:
// nested □, ◇ of immediate bodies, leads-to, negated temporals, guarded
// implications and quantified bodies.
func randFragment(rng *rand.Rand) Formula {
	imm := func() Formula { return randImmediate(rng) }
	var f Formula
	switch rng.Intn(10) {
	case 0:
		f = Box{F: imm()}
	case 1:
		f = Diamond{F: imm()}
	case 2:
		f = Box{F: Box{F: imm()}}
	case 3:
		f = Box{F: Diamond{F: imm()}}
	case 4:
		f = Not{F: Box{F: imm()}}
	case 5:
		f = Not{F: Diamond{F: imm()}}
	case 6:
		f = Box{F: Implies{If: imm(), Then: Box{F: imm()}}}
	case 7:
		f = Box{F: Implies{If: imm(), Then: Diamond{F: imm()}}}
	case 8:
		f = And{Box{F: imm()}, Diamond{F: imm()}}
	case 9:
		f = Or{Box{F: imm()}, imm()}
	}
	if rng.Intn(4) == 0 {
		f = ForAll{Var: "z", Ref: core.Ref("", "X"), Body: Box{F: Implies{If: Occurred{Var: "z"}, Then: f}}}
	}
	return f
}

// randBoundAtom builds a random immediate atom over a quantifier-bound
// event variable.
func randBoundAtom(rng *rand.Rand, v string) Formula {
	var atom Formula
	switch rng.Intn(3) {
	case 0:
		atom = Occurred{Var: v}
	case 1:
		atom = New{Var: v}
	default:
		atom = Potential{Var: v}
	}
	if rng.Intn(3) == 0 {
		return Not{F: atom}
	}
	return atom
}

// randTemporal builds a random formula over the FULL temporal language,
// including the newly covered shapes the syntactic fragment rejects:
// ∃/∃!/at-most-one with non-immediate bodies, two-disjunct temporal ∨,
// and temporal ≡. The lattice engine must bound all of them soundly and
// may decide them (definite failures always, successes when a bound is
// exact or tight enough).
func randTemporal(rng *rand.Rand) Formula {
	imm := func() Formula { return randImmediate(rng) }
	classes := []core.ClassRef{core.Ref("", "X"), core.Ref("", "Y"), core.Ref("A", "X")}
	ref := func() core.ClassRef { return classes[rng.Intn(len(classes))] }
	temporalBody := func(v string) Formula {
		if rng.Intn(2) == 0 {
			return Box{F: randBoundAtom(rng, v)}
		}
		return Diamond{F: randBoundAtom(rng, v)}
	}
	var f Formula
	switch rng.Intn(16) {
	case 0, 1, 2, 3:
		f = randFragment(rng)
	case 4:
		f = Or{Box{F: imm()}, Diamond{F: imm()}} // two temporal disjuncts
	case 5:
		f = Or{Box{F: imm()}, Box{F: imm()}}
	case 6:
		f = Or{Diamond{F: imm()}, Diamond{F: imm()}}
	case 7:
		f = Exists{Var: "z", Ref: ref(), Body: temporalBody("z")} // ∃ non-immediate
	case 8:
		f = Not{F: Exists{Var: "z", Ref: ref(), Body: temporalBody("z")}}
	case 9:
		f = ExistsUnique{Var: "z", Ref: ref(), Body: temporalBody("z")}
	case 10:
		f = AtMostOne{Var: "z", Ref: ref(), Body: temporalBody("z")}
	case 11:
		f = Iff{A: Box{F: imm()}, B: imm()}
	case 12:
		f = Iff{A: Diamond{F: imm()}, B: Diamond{F: imm()}}
	case 13:
		f = ForAll{Var: "z", Ref: ref(), Body: Or{temporalBody("z"), temporalBody("z")}}
	case 14:
		f = And{Exists{Var: "z", Ref: ref(), Body: temporalBody("z")}, Box{F: imm()}}
	case 15:
		f = Implies{If: Exists{Var: "z", Ref: ref(), Body: temporalBody("z")}, Then: Diamond{F: imm()}}
	}
	return f
}

// requireLatticeWitness asserts the lattice engine's counterexample
// contract: a complete valid history sequence, starting at the empty
// history, that falsifies the formula.
func requireLatticeWitness(t *testing.T, cx *Counterexample) bool {
	t.Helper()
	if cx.Seq == nil {
		t.Logf("lattice counterexample has no sequence: %v", cx.Error())
		return false
	}
	if err := cx.Seq.Validate(); err != nil {
		t.Logf("lattice witness is not a valid history sequence: %v", err)
		return false
	}
	if !cx.Seq.IsComplete() {
		t.Logf("lattice witness is not a complete sequence: %v", cx.Seq)
		return false
	}
	if cx.Seq[0].Len() != 0 {
		t.Logf("lattice witness does not start at the empty history")
		return false
	}
	if err := cx.Verify(); err != nil {
		t.Logf("lattice witness does not falsify the formula: %v", err)
		return false
	}
	return true
}

// TestQuickLatticeFragmentAgreesWithBruteForce compares the lattice
// engine's raw outcome — not Holds, which masks a lattice bug by
// delegating — against brute-force sequence enumeration on the
// syntactically exact fragment, where it must always decide. 150 random
// (computation, formula) pairs exceed the issue's 100-computation floor.
func TestQuickLatticeFragmentAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(rng, 6)
		formula := randFragment(rng)
		if !SequenceInsensitive(formula) {
			t.Fatalf("randFragment produced a non-fragment formula: %s", formula)
		}
		cx, decided := latticeDecide(context.Background(), formula, c)
		if !decided {
			t.Logf("fragment formula not decided: %s", formula)
			return false
		}
		want := bruteForce(formula, c)
		if (cx == nil) != want {
			t.Logf("disagreement on %s\n%s lattice=%v brute=%v", formula, c, cx == nil, want)
			return false
		}
		if cx != nil && !requireLatticeWitness(t, cx) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickLatticeFullLanguageSound runs the engine over the FULL
// language: whatever it decides must match brute force, every witness
// must be genuine, and formulas that brute-force FAIL must always be
// decided (failures never fall back — either ¬upper(∅) or an exact lower
// bound catches them... the former for inexact shapes, by soundness of
// the bounds; the only permitted indecision is on satisfied formulas
// whose lower bound is both inexact and too coarse).
func TestQuickLatticeFullLanguageSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(rng, 6)
		formula := randTemporal(rng)
		cx, decided := latticeDecide(context.Background(), formula, c)
		want := bruteForce(formula, c)
		if !decided {
			if SequenceInsensitive(formula) {
				t.Logf("syntactically exact formula not decided: %s", formula)
				return false
			}
			return true
		}
		if (cx == nil) != want {
			t.Logf("disagreement on %s\n%s lattice=%v brute=%v", formula, c, cx == nil, want)
			return false
		}
		if cx != nil && !requireLatticeWitness(t, cx) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickEngineAgreement: Holds under auto, lattice and seq reports
// identical verdicts on random computations over the full language, and
// every engine's counterexample independently falsifies the formula
// (Counterexample.Verify). The 120 randomized computations meet the
// issue's floor; witness identity is deliberately not compared.
func TestQuickEngineAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(rng, 6)
		formula := randTemporal(rng)
		cxAuto := Holds(formula, c, CheckOptions{Engine: EngineAuto})
		cxLat := Holds(formula, c, CheckOptions{Engine: EngineLattice})
		cxSeq := Holds(formula, c, CheckOptions{Engine: EngineSeq})
		if (cxAuto == nil) != (cxSeq == nil) || (cxLat == nil) != (cxSeq == nil) {
			t.Logf("verdict disagreement on %s: auto=%v lattice=%v seq=%v",
				formula, cxAuto == nil, cxLat == nil, cxSeq == nil)
			return false
		}
		for _, cx := range []*Counterexample{cxAuto, cxLat, cxSeq} {
			if err := cx.Verify(); err != nil {
				t.Logf("invalid counterexample for %s: %v", formula, err)
				return false
			}
		}
		// The raw lattice outcome, when decided, must carry the full
		// witness contract (Holds-level witnesses may come from other
		// reductions, e.g. the history-pair engine's two-history format).
		if cx, decided := latticeDecide(context.Background(), formula, c); decided && cx != nil {
			if !requireLatticeWitness(t, cx) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// twoConcurrentComp builds the smallest computation with real sequence
// branching: one X event and one Y event, unordered (three complete
// sequences: a-first, b-first, simultaneous).
func twoConcurrentComp(t *testing.T) *core.Computation {
	t.Helper()
	b := core.NewBuilder()
	b.Event("A", "X", nil)
	b.Event("B", "Y", nil)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestLatticeNativeCounterexamples: failing checks on the shapes the old
// engine delegated (∃ with a non-immediate body, two-disjunct temporal ∨)
// now complete inside the lattice engine — no engine.seq span, no
// fallback counter — and produce a complete valid falsifying sequence.
func TestLatticeNativeCounterexamples(t *testing.T) {
	c := twoConcurrentComp(t)
	existsX := Exists{Var: "x", Ref: core.Ref("", "X"), Body: Occurred{Var: "x"}}
	existsY := Exists{Var: "y", Ref: core.Ref("", "Y"), Body: Occurred{Var: "y"}}
	for _, tt := range []struct {
		name string
		f    Formula
	}{
		// ∃ over two bindings with a temporal body; false because no event
		// has occurred at the empty history, where every sequence starts.
		{"exists-nonimmediate", ForAllIn{Var: "w", Refs: []core.ClassRef{core.Ref("", "X"), core.Ref("", "Y")},
			Body: Exists{Var: "x", Ref: core.Ref("", "X"), Body: Box{F: Occurred{Var: "x"}}}}},
		// Two temporal disjuncts, both false at position 0 of every
		// sequence.
		{"temporal-or", Or{Box{F: And{existsX, existsY}}, Box{F: existsX}}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			obs.Enable()
			defer obs.Disable()
			cx := Holds(tt.f, c, CheckOptions{Engine: EngineLattice})
			snap := obs.Snapshot()
			if cx == nil {
				t.Fatalf("%s should fail on the two-event computation", tt.f)
			}
			if !requireLatticeWitness(t, cx) {
				t.Fatalf("lattice witness contract violated")
			}
			if n := snap.Counters["engine.lattice.fallback"]; n != 0 {
				t.Errorf("check fell back to the sequence engine %d times", n)
			}
			if n := snap.Counters["engine.lattice.cex"]; n == 0 {
				t.Error("lattice counterexample counter not recorded")
			}
			for _, sp := range snap.Spans {
				if sp.Name == "engine.seq" {
					t.Error("sequence cascade ran despite lattice-native counterexample")
				}
			}
		})
	}
}

// TestLatticeFallbackObservable: a satisfied formula whose lower bound is
// genuinely too coarse (two temporal disjuncts covering all sequences
// only jointly) must fall back — and the fallback must be visible on the
// obs counter, which is what ci.sh gates on.
func TestLatticeFallbackObservable(t *testing.T) {
	c := twoConcurrentComp(t)
	existsX := Exists{Var: "x", Ref: core.Ref("", "X"), Body: Occurred{Var: "x"}}
	existsY := Exists{Var: "y", Ref: core.Ref("", "Y"), Body: Occurred{Var: "y"}}
	// p = "a occurred or b has not"; q symmetrically. Each sequence keeps
	// p or keeps q throughout, but neither invariant covers all
	// sequences: □p ∨ □q holds while lower(□p)∪lower(□q) misses ∅.
	p := Or{existsX, Not{F: existsY}}
	q := Or{existsY, Not{F: existsX}}
	f := Or{Box{F: p}, Box{F: q}}
	obs.Enable()
	defer obs.Disable()
	if cx := Holds(f, c, CheckOptions{Engine: EngineLattice}); cx != nil {
		t.Fatalf("formula should hold: %v", cx.Error())
	}
	snap := obs.Snapshot()
	if n := snap.Counters["engine.lattice.fallback"]; n != 1 {
		t.Errorf("fallback counter = %d, want 1", n)
	}
	if cx, decided := latticeDecide(context.Background(), f, c); decided {
		t.Errorf("bounds should be inconclusive here, got decided (cx=%v)", cx)
	}
}

func TestParseEngineRoundTrip(t *testing.T) {
	for _, e := range []Engine{EngineAuto, EngineSeq, EngineLattice} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if e, err := ParseEngine(""); err != nil || e != EngineAuto {
		t.Errorf("empty engine should default to auto, got %v, %v", e, err)
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("unknown engine should be rejected")
	}
	if got := Engine(99).String(); got != "engine(99)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

// TestLatticeEngineBudgetsBypass: enumeration budgets and the LinearOnly
// ablation change the checked semantics, so the lattice engine must not
// engage under them — the option structs must behave exactly as before.
func TestLatticeEngineBudgetsBypass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomComp(rng, 6)
	formula := Box{F: Diamond{F: Occurred{Var: "e"}}}
	bound := ForAll{Var: "e", Ref: core.Ref("", "X"), Body: formula}
	for _, opts := range []CheckOptions{
		{Engine: EngineLattice, MaxSequences: 3},
		{Engine: EngineLattice, MaxHistories: 3},
		{Engine: EngineLattice, LinearOnly: true},
	} {
		seq := opts
		seq.Engine = EngineSeq
		got := Holds(bound, c, opts)
		want := Holds(bound, c, seq)
		if (got == nil) != (want == nil) {
			t.Errorf("budgeted check diverged between engines under %+v", opts)
		}
		if got != nil && want != nil && !reflect.DeepEqual(got.History, want.History) {
			t.Errorf("budgeted counterexample diverged under %+v", opts)
		}
	}
}
