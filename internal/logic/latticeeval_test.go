package logic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"gem/internal/core"
)

// These tests counter-verify the lattice fixpoint engine against the
// definitional sequence semantics: the raw lattice verdict (before any
// fallback) must equal brute-force enumeration on randomized computations
// and formulas, and Holds must report identical verdicts and identical
// counterexamples under every engine.

func TestSequenceInsensitiveShapes(t *testing.T) {
	imm := Occurred{Var: "e"}
	imm2 := New{Var: "e"}
	tests := []struct {
		f    Formula
		want bool
	}{
		{imm, true},
		{Box{F: imm}, true},
		{Diamond{F: imm}, true},
		{Box{F: Box{F: imm}}, true},
		{Box{F: Diamond{F: imm}}, true},  // leads-to: □◇p
		{Diamond{F: Box{F: imm}}, false}, // AF needs an immediate body
		{Diamond{F: Diamond{F: imm}}, false},
		{Not{F: Box{F: imm}}, true}, // ¬□p = upper polarity, EG on immediate
		{Not{F: Diamond{F: Diamond{F: imm}}}, true},
		{Not{F: Diamond{F: Box{F: imm}}}, true},          // upper(◇□p) = EF∘EG, both exact
		{Not{F: Diamond{F: Box{F: Box{F: imm}}}}, false}, // EG needs an immediate body
		{And{Box{F: imm}, Diamond{F: imm2}}, true},
		{Or{Box{F: imm}, imm2}, true},
		{Or{Box{F: imm}, Diamond{F: imm2}}, false}, // two sequence-dependent disjuncts
		{Implies{If: imm, Then: Box{F: imm2}}, true},
		{Implies{If: Box{F: imm}, Then: imm2}, true},                      // immediate Then; upper(□imm) is exact (EG)
		{Implies{If: Diamond{F: imm}, Then: imm2}, true},                  // immediate Then; upper(◇imm) is exact (EF)
		{Implies{If: Diamond{F: Box{F: imm}}, Then: imm2}, true},          // upper(◇□p) exact as above
		{Implies{If: Diamond{F: Box{F: Box{F: imm}}}, Then: imm2}, false}, // EG of a non-immediate body
		{Box{F: Implies{If: imm, Then: Box{F: imm2}}}, true},              // the paper's priority shape
		{Box{F: Implies{If: imm, Then: Diamond{F: imm2}}}, true},
		{ForAll{Var: "e", Ref: core.Ref("", "X"), Body: Box{F: imm}}, true},
		{Exists{Var: "e", Ref: core.Ref("", "X"), Body: Box{F: imm}}, false},
		{Exists{Var: "e", Ref: core.Ref("", "X"), Body: imm}, true}, // immediate overall
		{Not{F: ForAll{Var: "e", Ref: core.Ref("", "X"), Body: Box{F: imm}}}, false},
		// upper(∃x □p) = ∪ₓ upper(□p) is exact ("some sequence" commutes
		// with ∃x), so the negation is in the lower fragment.
		{Not{F: Exists{Var: "e", Ref: core.Ref("", "X"), Body: Box{F: imm}}}, true},
		{ExistsUnique{Var: "e", Ref: core.Ref("", "X"), Body: Box{F: imm}}, false},
		{Iff{A: Box{F: imm}, B: imm2}, false},
	}
	for _, tt := range tests {
		if got := SequenceInsensitive(tt.f); got != tt.want {
			t.Errorf("SequenceInsensitive(%s) = %v, want %v", tt.f, got, tt.want)
		}
	}
}

// randFragment builds a random formula inside the lattice engine's
// fragment, with enough shape diversity to exercise every rule: nested □,
// ◇ of immediate bodies, leads-to, negated temporals, guarded
// implications and quantified bodies.
func randFragment(rng *rand.Rand) Formula {
	imm := func() Formula { return randImmediate(rng) }
	var f Formula
	switch rng.Intn(10) {
	case 0:
		f = Box{F: imm()}
	case 1:
		f = Diamond{F: imm()}
	case 2:
		f = Box{F: Box{F: imm()}}
	case 3:
		f = Box{F: Diamond{F: imm()}}
	case 4:
		f = Not{F: Box{F: imm()}}
	case 5:
		f = Not{F: Diamond{F: imm()}}
	case 6:
		f = Box{F: Implies{If: imm(), Then: Box{F: imm()}}}
	case 7:
		f = Box{F: Implies{If: imm(), Then: Diamond{F: imm()}}}
	case 8:
		f = And{Box{F: imm()}, Diamond{F: imm()}}
	case 9:
		f = Or{Box{F: imm()}, imm()}
	}
	if rng.Intn(4) == 0 {
		f = ForAll{Var: "z", Ref: core.Ref("", "X"), Body: Box{F: Implies{If: Occurred{Var: "z"}, Then: f}}}
	}
	return f
}

// TestQuickLatticeRawVerdictAgreesWithBruteForce compares the lattice
// engine's raw verdict — not Holds, which masks a lattice bug on the
// failing side by delegating to the sequence engine — against brute-force
// sequence enumeration. 150 random (computation, formula) pairs exceed
// the issue's 100-computation floor.
func TestQuickLatticeRawVerdictAgreesWithBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(rng, 6)
		formula := randFragment(rng)
		if !SequenceInsensitive(formula) {
			t.Fatalf("randFragment produced a non-fragment formula: %s", formula)
		}
		got := latticeHolds(formula, c)
		want := bruteForce(formula, c)
		if got != want {
			t.Logf("disagreement on %s\n%s lattice=%v brute=%v", formula, c, got, want)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickEngineAgreement: Holds under auto, lattice and seq reports
// identical verdicts and identical counterexamples (violating history and
// sequence) on random computations, for fragment and non-fragment
// formulas alike.
func TestQuickEngineAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(rng, 6)
		var formula Formula
		if rng.Intn(4) == 0 {
			// Outside the fragment: all engines must fall back coherently.
			formula = Or{Box{F: randImmediate(rng)}, Diamond{F: randImmediate(rng)}}
		} else {
			formula = randFragment(rng)
		}
		cxAuto := Holds(formula, c, CheckOptions{Engine: EngineAuto})
		cxLat := Holds(formula, c, CheckOptions{Engine: EngineLattice})
		cxSeq := Holds(formula, c, CheckOptions{Engine: EngineSeq})
		if (cxAuto == nil) != (cxSeq == nil) || (cxLat == nil) != (cxSeq == nil) {
			t.Logf("verdict disagreement on %s: auto=%v lattice=%v seq=%v",
				formula, cxAuto == nil, cxLat == nil, cxSeq == nil)
			return false
		}
		if cxSeq == nil {
			return true
		}
		for _, cx := range []*Counterexample{cxAuto, cxLat} {
			if !cx.History.Equal(cxSeq.History) || len(cx.Seq) != len(cxSeq.Seq) {
				t.Logf("counterexample disagreement on %s", formula)
				return false
			}
			for i := range cx.Seq {
				if !cx.Seq[i].Equal(cxSeq.Seq[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestParseEngineRoundTrip(t *testing.T) {
	for _, e := range []Engine{EngineAuto, EngineSeq, EngineLattice} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if e, err := ParseEngine(""); err != nil || e != EngineAuto {
		t.Errorf("empty engine should default to auto, got %v, %v", e, err)
	}
	if _, err := ParseEngine("warp"); err == nil {
		t.Error("unknown engine should be rejected")
	}
	if got := Engine(99).String(); got != "engine(99)" {
		t.Errorf("out-of-range String = %q", got)
	}
}

// TestLatticeEngineBudgetsBypass: enumeration budgets and the LinearOnly
// ablation change the checked semantics, so the lattice engine must not
// engage under them — the option structs must behave exactly as before.
func TestLatticeEngineBudgetsBypass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := randomComp(rng, 6)
	formula := Box{F: Diamond{F: Occurred{Var: "e"}}}
	bound := ForAll{Var: "e", Ref: core.Ref("", "X"), Body: formula}
	for _, opts := range []CheckOptions{
		{Engine: EngineLattice, MaxSequences: 3},
		{Engine: EngineLattice, MaxHistories: 3},
		{Engine: EngineLattice, LinearOnly: true},
	} {
		seq := opts
		seq.Engine = EngineSeq
		got := Holds(bound, c, opts)
		want := Holds(bound, c, seq)
		if (got == nil) != (want == nil) {
			t.Errorf("budgeted check diverged between engines under %+v", opts)
		}
		if got != nil && want != nil && !reflect.DeepEqual(got.History, want.History) {
			t.Errorf("budgeted counterexample diverged under %+v", opts)
		}
	}
}
