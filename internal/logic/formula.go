// Package logic implements GEM restrictions: first-order formulae over GEM
// predicates (occurred, @, ⊳, ⇒ₑ, ⇒, parameter equality, thread
// membership), closed under boolean connectives and bounded quantifiers,
// extended with the temporal operators □ (henceforth) and ◇ (eventually)
// interpreted over valid history sequences as in Section 7 of the paper.
//
// Immediate assertions are evaluated against a history; temporal assertions
// against a position in a history sequence (S ⊨ □p iff every tail satisfies
// p; S ⊨ p for immediate p iff the first history does).
package logic

import (
	"fmt"
	"strings"

	"gem/internal/core"
	"gem/internal/history"
)

// Env is an evaluation environment: the computation, the current history
// (for immediate assertions), optionally the enclosing history sequence and
// position (for temporal operators), and variable bindings.
type Env struct {
	C    *core.Computation
	Seq  history.Sequence // nil when evaluating outside a sequence
	Idx  int              // position within Seq
	H    history.History  // current history
	vars map[string]core.EventID
	tids map[string]string // thread-variable bindings
}

// NewEnv returns an environment for evaluating immediate assertions at
// history h.
func NewEnv(h history.History) *Env {
	return &Env{C: h.Computation(), H: h}
}

// NewSeqEnv returns an environment positioned at s[idx].
func NewSeqEnv(s history.Sequence, idx int) *Env {
	return &Env{C: s[idx].Computation(), Seq: s, Idx: idx, H: s[idx]}
}

// Lookup returns the event bound to an event variable.
func (e *Env) Lookup(name string) (core.EventID, bool) {
	id, ok := e.vars[name]
	return id, ok
}

// bind returns a child environment with an additional event binding.
func (e *Env) bind(name string, id core.EventID) *Env {
	child := *e
	child.vars = make(map[string]core.EventID, len(e.vars)+1)
	for k, v := range e.vars {
		child.vars[k] = v
	}
	child.vars[name] = id
	return &child
}

// bindThread returns a child environment with an additional thread binding.
func (e *Env) bindThread(name, tid string) *Env {
	child := *e
	child.tids = make(map[string]string, len(e.tids)+1)
	for k, v := range e.tids {
		child.tids[k] = v
	}
	child.tids[name] = tid
	return &child
}

// at returns a sibling environment moved to position idx of the sequence.
func (e *Env) at(idx int) *Env {
	child := *e
	child.Idx = idx
	child.H = e.Seq[idx]
	return &child
}

// Bindings renders the current variable bindings for diagnostics.
func (e *Env) Bindings() string {
	if len(e.vars) == 0 && len(e.tids) == 0 {
		return ""
	}
	var parts []string
	for k, v := range e.vars {
		parts = append(parts, fmt.Sprintf("%s=%s", k, e.C.Event(v).Name()))
	}
	for k, v := range e.tids {
		parts = append(parts, fmt.Sprintf("%s=%s", k, v))
	}
	sortStrings(parts)
	return strings.Join(parts, ", ")
}

// Formula is a GEM restriction or sub-formula.
type Formula interface {
	Eval(env *Env) bool
	String() string
}

// mustEvent resolves an event variable, panicking on unbound names — an
// unbound variable is a bug in the restriction, not a runtime condition.
func mustEvent(env *Env, name string) core.EventID {
	id, ok := env.vars[name]
	if !ok {
		panic(fmt.Sprintf("logic: unbound event variable %q", name))
	}
	return id
}

func mustThread(env *Env, name string) string {
	tid, ok := env.tids[name]
	if !ok {
		panic(fmt.Sprintf("logic: unbound thread variable %q", name))
	}
	return tid
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
