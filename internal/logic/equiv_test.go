package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gem/internal/core"
	"gem/internal/history"
)

// These tests cross-validate the checker's exact reductions against
// brute-force enumeration of complete valid history sequences — the
// definitional semantics — on random small computations and random
// formulae of the reducible shapes.

// randomComp builds a random legal computation with up to maxN events
// over up to 3 elements.
func randomComp(rng *rand.Rand, maxN int) *core.Computation {
	n := 2 + rng.Intn(maxN-1)
	b := core.NewBuilder()
	ids := make([]core.EventID, n)
	for i := 0; i < n; i++ {
		elem := string(rune('A' + rng.Intn(3)))
		class := string(rune('X' + rng.Intn(2)))
		ids[i] = b.Event(elem, class, core.Params{"v": core.Int(int64(rng.Intn(3)))})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.25 {
				b.Enable(ids[i], ids[j])
			}
		}
	}
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}

// randImmediate builds a random quantified immediate formula.
func randImmediate(rng *rand.Rand) Formula {
	classes := []core.ClassRef{core.Ref("", "X"), core.Ref("", "Y"), core.Ref("A", "X")}
	atom := func(v string) Formula {
		switch rng.Intn(4) {
		case 0:
			return Occurred{Var: v}
		case 1:
			return New{Var: v}
		case 2:
			return Potential{Var: v}
		default:
			return ParamConst{X: v, P: "v", Op: OpLe, V: core.Int(int64(rng.Intn(3)))}
		}
	}
	body := atom("q")
	if rng.Intn(2) == 0 {
		body = Not{F: body}
	}
	if rng.Intn(2) == 0 {
		return ForAll{Var: "q", Ref: classes[rng.Intn(len(classes))], Body: body}
	}
	return Exists{Var: "q", Ref: classes[rng.Intn(len(classes))], Body: body}
}

// bruteForce decides the formula by enumerating every complete vhs.
func bruteForce(f Formula, c *core.Computation) bool {
	holds := true
	history.EnumerateComplete(c, 0, func(s history.Sequence) bool {
		if !f.Eval(NewSeqEnv(s, 0)) {
			holds = false
			return false
		}
		return true
	})
	return holds
}

// TestQuickBoxInvariantReductionExact: □p (immediate p) decided over
// histories equals brute force over sequences.
func TestQuickBoxInvariantReductionExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(rng, 6)
		formula := Box{F: randImmediate(rng)}
		got := Holds(formula, c, CheckOptions{}) == nil
		want := bruteForce(formula, c)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickPairReductionExact: □(A → □B) decided over history pairs
// equals brute force over sequences.
func TestQuickPairReductionExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(rng, 6)
		inner := Implies{If: randImmediate(rng), Then: Box{F: randImmediate(rng)}}
		formula := Box{F: inner}
		if !pairCheckable(inner, true) {
			return true // shape guard (always true here, but keep honest)
		}
		got := Holds(formula, c, CheckOptions{}) == nil
		want := bruteForce(formula, c)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestQuickPairReductionWithConjunction: richer pair-checkable bodies
// (conjunction/disjunction of immediate parts and positive boxes).
func TestQuickPairReductionWithConjunction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(rng, 5)
		body := Or{
			Not{F: randImmediate(rng)},
			And{Box{F: randImmediate(rng)}, randImmediate(rng)},
		}
		if !pairCheckable(body, true) {
			t.Fatalf("body should be pair-checkable")
		}
		formula := Box{F: body}
		got := Holds(formula, c, CheckOptions{}) == nil
		want := bruteForce(formula, c)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestQuickDiamondSequencesMatch: formulae with ◇ take the generic
// sequence path; sanity-check Holds against brute force there too.
func TestQuickDiamondSequencesMatch(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := randomComp(rng, 5)
		formula := Diamond{F: randImmediate(rng)}
		got := Holds(formula, c, CheckOptions{}) == nil
		want := bruteForce(formula, c)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPairCheckableShapes(t *testing.T) {
	imm := Occurred{Var: "e"}
	tests := []struct {
		f    Formula
		want bool
	}{
		{Box{F: imm}, true},
		{Diamond{F: imm}, false},
		{Implies{If: imm, Then: Box{F: imm}}, true},
		{Implies{If: Box{F: imm}, Then: imm}, false}, // box in negative position
		{Not{F: Box{F: imm}}, false},
		{Not{F: Not{F: Box{F: imm}}}, true},
		{And{imm, Box{F: imm}}, true},
		{Or{imm, Box{F: imm}}, true},
		{Iff{A: imm, B: imm}, true},
		{Iff{A: Box{F: imm}, B: imm}, false},
		{ForAll{Var: "x", Ref: core.Ref("", "X"), Body: Box{F: imm}}, true},
		{ExistsUnique{Var: "x", Ref: core.Ref("", "X"), Body: Box{F: imm}}, false},
		{Box{F: Box{F: imm}}, false}, // nested boxes are not immediate
	}
	for _, tt := range tests {
		if got := pairCheckable(tt.f, true); got != tt.want {
			t.Errorf("pairCheckable(%s) = %v, want %v", tt.f, got, tt.want)
		}
	}
}
