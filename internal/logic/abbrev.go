package logic

import (
	"fmt"
	"strings"

	"gem/internal/core"
)

// This file implements the paper's restriction abbreviations (Section
// 8.2): prerequisite, nondeterministic prerequisite, event FORK and JOIN.
// Each names a common computational pattern and expands to a first-order
// restriction over the enable relation.
//
// Note on occurred(): the paper writes occurred(e2) ⊃ … in these
// definitions. Because enable edges are structural and e1 ⊳ e2 implies
// e1 ⇒ e2, every history containing e2 also contains its enabler, so the
// expansions below are equivalent to the paper's forms while remaining
// purely structural (checkable once per computation).

// ExistsUniqueIn is ∃! quantification over the union of several event
// classes — needed by the nondeterministic prerequisite.
type ExistsUniqueIn struct {
	Var  string
	Refs []core.ClassRef
	Body Formula
}

// Eval implements Formula.
func (f ExistsUniqueIn) Eval(env *Env) bool {
	count := 0
	for _, id := range unionDomain(env, f.Refs) {
		if f.Body.Eval(env.bind(f.Var, id)) {
			count++
			if count > 1 {
				return false
			}
		}
	}
	return count == 1
}
func (f ExistsUniqueIn) String() string {
	return fmt.Sprintf("(EXISTS1 %s: {%s}) %s", f.Var, refList(f.Refs), f.Body)
}

// ForAllIn is universal quantification over the union of several event
// classes.
type ForAllIn struct {
	Var  string
	Refs []core.ClassRef
	Body Formula
}

// Eval implements Formula.
func (f ForAllIn) Eval(env *Env) bool {
	for _, id := range unionDomain(env, f.Refs) {
		if !f.Body.Eval(env.bind(f.Var, id)) {
			return false
		}
	}
	return true
}
func (f ForAllIn) String() string {
	return fmt.Sprintf("(FORALL %s: {%s}) %s", f.Var, refList(f.Refs), f.Body)
}

func unionDomain(env *Env, refs []core.ClassRef) []core.EventID {
	var out []core.EventID
	seen := make(map[core.EventID]bool)
	for _, ref := range refs {
		for _, id := range env.C.EventsOf(ref) {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

func refList(refs []core.ClassRef) string {
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.String()
	}
	return strings.Join(parts, ", ")
}

// Prereq builds the paper's E1 → E2: every E2 event is enabled by exactly
// one E1 event, and every E1 event enables at most one E2 event.
func Prereq(e1, e2 core.ClassRef) Formula {
	return And{
		ForAll{Var: "_e2", Ref: e2, Body: ExistsUnique{
			Var: "_e1", Ref: e1, Body: Enables{X: "_e1", Y: "_e2"},
		}},
		ForAll{Var: "_e1", Ref: e1, Body: AtMostOne{
			Var: "_e2", Ref: e2, Body: Enables{X: "_e1", Y: "_e2"},
		}},
	}
}

// PrereqChain builds E1 → E2 → … → En as a conjunction of pairwise
// prerequisites, the way the paper strings together sequential code.
func PrereqChain(refs ...core.ClassRef) Formula {
	var out And
	for i := 1; i < len(refs); i++ {
		out = append(out, Prereq(refs[i-1], refs[i]))
	}
	return out
}

// NDPrereq builds the paper's {E…} → E: every E event is enabled by
// exactly one event drawn from the class set, and each event of the set
// enables at most one E event.
func NDPrereq(set []core.ClassRef, e core.ClassRef) Formula {
	conj := And{
		ForAll{Var: "_e", Ref: e, Body: ExistsUniqueIn{
			Var: "_src", Refs: set, Body: Enables{X: "_src", Y: "_e"},
		}},
		ForAllIn{Var: "_src", Refs: set, Body: AtMostOne{
			Var: "_e", Ref: e, Body: Enables{X: "_src", Y: "_e"},
		}},
	}
	return conj
}

// Fork builds the paper's event FORK E → {E…}: E is a prerequisite of each
// class in the set.
func Fork(e core.ClassRef, set []core.ClassRef) Formula {
	var out And
	for _, target := range set {
		out = append(out, Prereq(e, target))
	}
	return out
}

// Join builds the paper's event JOIN {E…} → E: each class in the set is a
// prerequisite of E.
func Join(set []core.ClassRef, e core.ClassRef) Formula {
	var out And
	for _, src := range set {
		out = append(out, Prereq(src, e))
	}
	return out
}
