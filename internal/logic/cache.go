package logic

import "gem/internal/core"

// VerdictCache is a persistent restriction-verdict store consulted by
// Holds before evaluating and written behind on a miss. Implementations
// (internal/store) key entries by the formula's canonical content hash,
// the computation fingerprint, and the engine — restriction-granular, so
// editing one restriction of a spec invalidates only that restriction's
// entries. The interface lives here (and is satisfied structurally) so
// logic does not import the store.
//
// Contract: Lookup must return (verdict, true) only for an entry written
// by Store with the same key on a semantically identical evaluation —
// the returned counterexample must be either nil (the formula held) or a
// genuine falsifying witness for f on c (Counterexample.Verify).
// Implementations must be safe for concurrent use and must degrade any
// internal failure (missing, corrupt, truncated, version-skewed entry)
// to a miss, never a wrong verdict.
type VerdictCache interface {
	Lookup(f Formula, c *core.Computation, engine Engine) (*Counterexample, bool)
	Store(f Formula, c *core.Computation, engine Engine, cx *Counterexample)
}

// Cacheable reports whether the options describe an evaluation whose
// verdict may be served from (or written to) a persistent cache: the
// full GEM semantics, with no enumeration budgets and no LinearOnly
// ablation — those options change what is checked, so their verdicts
// must never alias the unbudgeted ones.
func (o CheckOptions) Cacheable() bool {
	return o.MaxSequences == 0 && o.MaxHistories == 0 && !o.LinearOnly
}
