package logic

import (
	"testing"

	"gem/internal/core"
	"gem/internal/history"
)

// chainComputation builds a sequential chain A -> B -> C, as the paper's
// sequential code example, with each class at its own element.
func chainComputation(t *testing.T, wire bool) *core.Computation {
	t.Helper()
	b := core.NewBuilder()
	a := b.Event("P", "A", nil)
	bb := b.Event("P", "B", nil)
	cc := b.Event("P", "C", nil)
	if wire {
		b.Enable(a, bb)
		b.Enable(bb, cc)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPrereqChainHolds(t *testing.T) {
	c := chainComputation(t, true)
	f := PrereqChain(core.Ref("P", "A"), core.Ref("P", "B"), core.Ref("P", "C"))
	if cx := Holds(f, c, CheckOptions{}); cx != nil {
		t.Errorf("wired chain should satisfy A -> B -> C: %v", cx.Error())
	}
}

func TestPrereqRefutesMissingEnabler(t *testing.T) {
	c := chainComputation(t, false) // element order only, no enables
	f := Prereq(core.Ref("P", "A"), core.Ref("P", "B"))
	if cx := Holds(f, c, CheckOptions{}); cx == nil {
		t.Error("element order alone does not satisfy a prerequisite")
	}
}

func TestPrereqRefutesDoubleEnable(t *testing.T) {
	// One Signal enabling two Releases violates "each Signal can enable
	// only one Release" (the paper's Monitor example).
	b := core.NewBuilder()
	sig := b.Event("Cond", "Signal", nil)
	r1 := b.Event("P1", "Release", nil)
	r2 := b.Event("P2", "Release", nil)
	b.Enable(sig, r1)
	b.Enable(sig, r2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := Prereq(core.Ref("", "Signal"), core.Ref("", "Release"))
	if cx := Holds(f, c, CheckOptions{}); cx == nil {
		t.Error("double enablement must violate the prerequisite")
	}
}

func TestPrereqRefutesTwoEnablers(t *testing.T) {
	b := core.NewBuilder()
	s1 := b.Event("C1", "Signal", nil)
	s2 := b.Event("C2", "Signal", nil)
	r := b.Event("P", "Release", nil)
	b.Enable(s1, r)
	b.Enable(s2, r)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := Prereq(core.Ref("", "Signal"), core.Ref("", "Release"))
	if cx := Holds(f, c, CheckOptions{}); cx == nil {
		t.Error("a Release with two Signal enablers must be refuted")
	}
}

func TestNDPrereq(t *testing.T) {
	// CSP-style: an End event enabled by exactly one of {Req?, Req!}.
	build := func(both bool) *core.Computation {
		b := core.NewBuilder()
		in := b.Event("In", "Req", nil)
		out := b.Event("Out", "Req", nil)
		end := b.Event("In", "End", nil)
		b.Enable(in, end)
		if both {
			b.Enable(out, end)
		}
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	set := []core.ClassRef{core.Ref("In", "Req"), core.Ref("Out", "Req")}
	f := NDPrereq(set, core.Ref("In", "End"))
	if cx := Holds(f, build(false), CheckOptions{}); cx != nil {
		t.Errorf("single nondeterministic enabler should hold: %v", cx.Error())
	}
	if cx := Holds(f, build(true), CheckOptions{}); cx == nil {
		t.Error("two enablers from the set must be refuted")
	}
}

func TestForkAndJoin(t *testing.T) {
	// Fork: A enables B and C. Join: B and C enable D.
	b := core.NewBuilder()
	a := b.Event("P", "A", nil)
	bb := b.Event("Q", "B", nil)
	cc := b.Event("R", "C", nil)
	d := b.Event("S", "D", nil)
	b.Enable(a, bb)
	b.Enable(a, cc)
	b.Enable(bb, d)
	b.Enable(cc, d)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fork := Fork(core.Ref("P", "A"), []core.ClassRef{core.Ref("Q", "B"), core.Ref("R", "C")})
	if cx := Holds(fork, c, CheckOptions{}); cx != nil {
		t.Errorf("fork should hold: %v", cx.Error())
	}
	join := Join([]core.ClassRef{core.Ref("Q", "B"), core.Ref("R", "C")}, core.Ref("S", "D"))
	if cx := Holds(join, c, CheckOptions{}); cx != nil {
		t.Errorf("join should hold: %v", cx.Error())
	}
	// A fork missing one branch fails.
	badFork := Fork(core.Ref("P", "A"), []core.ClassRef{core.Ref("Q", "B"), core.Ref("S", "D")})
	if cx := Holds(badFork, c, CheckOptions{}); cx == nil {
		t.Error("fork to D must fail: A does not enable D")
	}
}

func TestUnionQuantifierDedup(t *testing.T) {
	// Overlapping refs must not double-count an event.
	b := core.NewBuilder()
	x := b.Event("X", "E", nil)
	y := b.Event("Y", "F", nil)
	b.Enable(x, y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Refs "X.E" and ".E" both match event x.
	f := ExistsUniqueIn{
		Var:  "e",
		Refs: []core.ClassRef{core.Ref("X", "E"), core.Ref("", "E")},
		Body: Enables{X: "e", Y: "tgt"},
	}
	env := NewEnv(mustFull(t, c)).bind("tgt", y)
	if !f.Eval(env) {
		t.Error("overlapping class refs must be deduplicated")
	}
}

func TestAbbrevStrings(t *testing.T) {
	f := NDPrereq([]core.ClassRef{core.Ref("", "A"), core.Ref("", "B")}, core.Ref("", "C"))
	if s := f.String(); s == "" {
		t.Error("NDPrereq should render")
	}
	g := ForAllIn{Var: "x", Refs: []core.ClassRef{core.Ref("", "A")}, Body: TrueF{}}
	if s := g.String(); s == "" {
		t.Error("ForAllIn should render")
	}
}

func mustFull(t *testing.T, c *core.Computation) history.History {
	t.Helper()
	return history.Full(c)
}
