package logic

import "strings"

// Not negates a formula.
type Not struct{ F Formula }

// Eval implements Formula.
func (f Not) Eval(env *Env) bool { return !f.F.Eval(env) }
func (f Not) String() string     { return "~(" + f.F.String() + ")" }

// And is n-ary conjunction.
type And []Formula

// Eval implements Formula.
func (f And) Eval(env *Env) bool {
	for _, sub := range f {
		if !sub.Eval(env) {
			return false
		}
	}
	return true
}
func (f And) String() string { return joinFormulas(f, " & ") }

// Or is n-ary disjunction.
type Or []Formula

// Eval implements Formula.
func (f Or) Eval(env *Env) bool {
	for _, sub := range f {
		if sub.Eval(env) {
			return true
		}
	}
	return false
}
func (f Or) String() string { return joinFormulas(f, " | ") }

// Implies is material implication.
type Implies struct{ If, Then Formula }

// Eval implements Formula.
func (f Implies) Eval(env *Env) bool { return !f.If.Eval(env) || f.Then.Eval(env) }
func (f Implies) String() string {
	return "(" + f.If.String() + " -> " + f.Then.String() + ")"
}

// Iff is logical equivalence.
type Iff struct{ A, B Formula }

// Eval implements Formula.
func (f Iff) Eval(env *Env) bool { return f.A.Eval(env) == f.B.Eval(env) }
func (f Iff) String() string {
	return "(" + f.A.String() + " <-> " + f.B.String() + ")"
}

func joinFormulas(fs []Formula, sep string) string {
	if len(fs) == 0 {
		if sep == " & " {
			return "true"
		}
		return "false"
	}
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = f.String()
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Box is the temporal operator □ (henceforth): the body holds at every
// position from the current one onward in the enclosing history sequence.
// Outside a sequence (computation-level evaluation at a single history) it
// degenerates to the body at the current history.
type Box struct{ F Formula }

// Eval implements Formula.
func (f Box) Eval(env *Env) bool {
	if env.Seq == nil {
		return f.F.Eval(env)
	}
	for i := env.Idx; i < len(env.Seq); i++ {
		if !f.F.Eval(env.at(i)) {
			return false
		}
	}
	return true
}
func (f Box) String() string { return "[](" + f.F.String() + ")" }

// Diamond is the temporal operator ◇ (eventually): the body holds at some
// position from the current one onward.
type Diamond struct{ F Formula }

// Eval implements Formula.
func (f Diamond) Eval(env *Env) bool {
	if env.Seq == nil {
		return f.F.Eval(env)
	}
	for i := env.Idx; i < len(env.Seq); i++ {
		if f.F.Eval(env.at(i)) {
			return true
		}
	}
	return false
}
func (f Diamond) String() string { return "<>(" + f.F.String() + ")" }

// HasTemporal reports whether the formula contains a Box or Diamond
// operator anywhere; such formulae must be checked over history sequences
// rather than a single history.
func HasTemporal(f Formula) bool {
	switch g := f.(type) {
	case Box, Diamond:
		return true
	case Not:
		return HasTemporal(g.F)
	case And:
		for _, sub := range g {
			if HasTemporal(sub) {
				return true
			}
		}
	case Or:
		for _, sub := range g {
			if HasTemporal(sub) {
				return true
			}
		}
	case Implies:
		return HasTemporal(g.If) || HasTemporal(g.Then)
	case Iff:
		return HasTemporal(g.A) || HasTemporal(g.B)
	case ForAll:
		return HasTemporal(g.Body)
	case Exists:
		return HasTemporal(g.Body)
	case ExistsUnique:
		return HasTemporal(g.Body)
	case AtMostOne:
		return HasTemporal(g.Body)
	case ForAllThread:
		return HasTemporal(g.Body)
	case ExistsThread:
		return HasTemporal(g.Body)
	case ForAllIn:
		return HasTemporal(g.Body)
	case ExistsUniqueIn:
		return HasTemporal(g.Body)
	}
	return false
}

// HasHistoryPredicate reports whether the formula contains a predicate
// whose truth depends on the current history (occurred, new, potential,
// at). Formulae without these and without temporal operators are purely
// structural and may be evaluated once on the full computation.
func HasHistoryPredicate(f Formula) bool {
	switch g := f.(type) {
	case Occurred, New, Potential, AtControl, CountDiff, FIFOValues:
		return true
	case Box:
		return HasHistoryPredicate(g.F)
	case Diamond:
		return HasHistoryPredicate(g.F)
	case Not:
		return HasHistoryPredicate(g.F)
	case And:
		for _, sub := range g {
			if HasHistoryPredicate(sub) {
				return true
			}
		}
	case Or:
		for _, sub := range g {
			if HasHistoryPredicate(sub) {
				return true
			}
		}
	case Implies:
		return HasHistoryPredicate(g.If) || HasHistoryPredicate(g.Then)
	case Iff:
		return HasHistoryPredicate(g.A) || HasHistoryPredicate(g.B)
	case ForAll:
		return HasHistoryPredicate(g.Body)
	case Exists:
		return HasHistoryPredicate(g.Body)
	case ExistsUnique:
		return HasHistoryPredicate(g.Body)
	case AtMostOne:
		return HasHistoryPredicate(g.Body)
	case ForAllThread:
		return HasHistoryPredicate(g.Body)
	case ExistsThread:
		return HasHistoryPredicate(g.Body)
	case ForAllIn:
		return HasHistoryPredicate(g.Body)
	case ExistsUniqueIn:
		return HasHistoryPredicate(g.Body)
	}
	return false
}
