package logic

import (
	"fmt"
	"strings"

	"gem/internal/core"
)

// ThreadSep separates a thread type from its instance number in thread
// identifiers (e.g. "piRW#3" is instance 3 of thread type piRW).
const ThreadSep = "#"

// ThreadID builds the canonical thread-instance identifier for a thread
// type and instance number.
func ThreadID(threadType string, n int) string {
	return fmt.Sprintf("%s%s%d", threadType, ThreadSep, n)
}

// ThreadTypeOf returns the thread type of an instance identifier.
func ThreadTypeOf(tid string) string {
	if i := strings.LastIndex(tid, ThreadSep); i >= 0 {
		return tid[:i]
	}
	return tid
}

// classDomain returns the events of the computation matching the class
// reference. Quantifier domains are all events of the computation;
// occurrence in the current history is tested separately via Occurred, as
// in the paper's formulae.
func classDomain(env *Env, ref core.ClassRef) []core.EventID {
	return env.C.EventsOf(ref)
}

// threadDomain returns the distinct thread-instance identifiers of the
// given thread type present in the computation, in first-appearance order.
func threadDomain(env *Env, threadType string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, e := range env.C.Events() {
		for _, tid := range e.Threads {
			if !seen[tid] && ThreadTypeOf(tid) == threadType {
				seen[tid] = true
				out = append(out, tid)
			}
		}
	}
	return out
}

// ForAll is universal quantification of an event variable over an event
// class: (∀ v: Ref) Body.
type ForAll struct {
	Var  string
	Ref  core.ClassRef
	Body Formula
}

// Eval implements Formula.
func (f ForAll) Eval(env *Env) bool {
	for _, id := range classDomain(env, f.Ref) {
		if !f.Body.Eval(env.bind(f.Var, id)) {
			return false
		}
	}
	return true
}
func (f ForAll) String() string {
	return fmt.Sprintf("(FORALL %s: %s) %s", f.Var, f.Ref, f.Body)
}

// Exists is existential quantification over an event class.
type Exists struct {
	Var  string
	Ref  core.ClassRef
	Body Formula
}

// Eval implements Formula.
func (f Exists) Eval(env *Env) bool {
	for _, id := range classDomain(env, f.Ref) {
		if f.Body.Eval(env.bind(f.Var, id)) {
			return true
		}
	}
	return false
}
func (f Exists) String() string {
	return fmt.Sprintf("(EXISTS %s: %s) %s", f.Var, f.Ref, f.Body)
}

// ExistsUnique is the paper's ∃! quantifier: exactly one event of the
// class satisfies the body.
type ExistsUnique struct {
	Var  string
	Ref  core.ClassRef
	Body Formula
}

// Eval implements Formula.
func (f ExistsUnique) Eval(env *Env) bool {
	count := 0
	for _, id := range classDomain(env, f.Ref) {
		if f.Body.Eval(env.bind(f.Var, id)) {
			count++
			if count > 1 {
				return false
			}
		}
	}
	return count == 1
}
func (f ExistsUnique) String() string {
	return fmt.Sprintf("(EXISTS1 %s: %s) %s", f.Var, f.Ref, f.Body)
}

// AtMostOne is the paper's "∃ at most one" quantifier.
type AtMostOne struct {
	Var  string
	Ref  core.ClassRef
	Body Formula
}

// Eval implements Formula.
func (f AtMostOne) Eval(env *Env) bool {
	count := 0
	for _, id := range classDomain(env, f.Ref) {
		if f.Body.Eval(env.bind(f.Var, id)) {
			count++
			if count > 1 {
				return false
			}
		}
	}
	return true
}
func (f AtMostOne) String() string {
	return fmt.Sprintf("(ATMOST1 %s: %s) %s", f.Var, f.Ref, f.Body)
}

// ForAllThread quantifies a thread variable over all instances of a thread
// type, e.g. the paper's "for all πRW-i".
type ForAllThread struct {
	Var  string
	Type string
	Body Formula
}

// Eval implements Formula.
func (f ForAllThread) Eval(env *Env) bool {
	for _, tid := range threadDomain(env, f.Type) {
		if !f.Body.Eval(env.bindThread(f.Var, tid)) {
			return false
		}
	}
	return true
}
func (f ForAllThread) String() string {
	return fmt.Sprintf("(FORALLTHREAD %s: %s) %s", f.Var, f.Type, f.Body)
}

// ExistsThread quantifies a thread variable existentially.
type ExistsThread struct {
	Var  string
	Type string
	Body Formula
}

// Eval implements Formula.
func (f ExistsThread) Eval(env *Env) bool {
	for _, tid := range threadDomain(env, f.Type) {
		if f.Body.Eval(env.bindThread(f.Var, tid)) {
			return true
		}
	}
	return false
}
func (f ExistsThread) String() string {
	return fmt.Sprintf("(EXISTSTHREAD %s: %s) %s", f.Var, f.Type, f.Body)
}
