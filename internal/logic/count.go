package logic

import (
	"fmt"

	"gem/internal/core"
)

// CountDiff asserts bounds on the difference between the number of
// occurred events of class A and class B in the current history:
// Min ≤ #A − #B ≤ Max. Setting Unbounded for Max drops the upper bound.
// Wrapped in Box it expresses capacity invariants such as a bounded
// buffer's 0 ≤ #Deposit − #Fetch ≤ N.
type CountDiff struct {
	A, B core.ClassRef
	Min  int
	Max  int
	// NoMax drops the upper bound.
	NoMax bool
}

// Eval implements Formula.
func (f CountDiff) Eval(env *Env) bool {
	diff := countOccurred(env, f.A) - countOccurred(env, f.B)
	if diff < f.Min {
		return false
	}
	if !f.NoMax && diff > f.Max {
		return false
	}
	return true
}

func (f CountDiff) String() string {
	if f.NoMax {
		return fmt.Sprintf("%d <= #%s - #%s", f.Min, f.A, f.B)
	}
	return fmt.Sprintf("%d <= #%s - #%s <= %d", f.Min, f.A, f.B, f.Max)
}

func countOccurred(env *Env, ref core.ClassRef) int {
	n := 0
	for _, id := range env.C.EventsOf(ref) {
		if env.H.Has(id) {
			n++
		}
	}
	return n
}

// FIFOValues asserts that the k-th event of class B carries the same
// value as the k-th event of class A, comparing B's parameter PB against
// A's parameter PA, for every k with both events present. Events are
// numbered by their element order (both classes must each live at a
// single element). It expresses a bounded buffer's FIFO delivery: the
// k-th Fetch returns the k-th Deposit's item.
type FIFOValues struct {
	A  core.ClassRef
	PA string
	B  core.ClassRef
	PB string
}

// Eval implements Formula. Only events occurred in the current history
// participate; since the classes are element-ordered, the occurred events
// form a prefix of each numbering.
func (f FIFOValues) Eval(env *Env) bool {
	as := occurredOf(env, f.A)
	bs := occurredOf(env, f.B)
	for k := 0; k < len(bs); k++ {
		if k >= len(as) {
			return false // a B event with no matching A event
		}
		av := env.C.Event(as[k]).Params[f.PA]
		bv := env.C.Event(bs[k]).Params[f.PB]
		if av.IsZero() || bv.IsZero() || av != bv {
			return false
		}
	}
	return true
}

func (f FIFOValues) String() string {
	return fmt.Sprintf("fifo(%s.%s -> %s.%s)", f.A, f.PA, f.B, f.PB)
}

// occurredOf returns the occurred events of the class in element order
// (id order coincides with element order per element; classes are
// expected to be element-qualified).
func occurredOf(env *Env, ref core.ClassRef) []core.EventID {
	var out []core.EventID
	for _, id := range env.C.EventsOf(ref) {
		if env.H.Has(id) {
			out = append(out, id)
		}
	}
	return out
}
