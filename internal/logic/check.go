package logic

import (
	"context"
	"fmt"

	"gem/internal/core"
	"gem/internal/history"
	"gem/internal/obs"
)

// Counterexample describes where and why a restriction failed.
type Counterexample struct {
	Formula Formula
	History history.History   // the violating history (first history of the sequence tail for temporal failures)
	Seq     history.Sequence  // the violating sequence, when checked over sequences
	Comp    *core.Computation // the computation being checked
}

// Error renders the counterexample.
func (cx *Counterexample) Error() string {
	if cx == nil {
		return "<no counterexample>"
	}
	s := fmt.Sprintf("restriction violated: %s\n  at history %s", cx.Formula, cx.History)
	if cx.Seq != nil {
		s += fmt.Sprintf("\n  along sequence of %d histories", len(cx.Seq))
	}
	return s
}

// Verify re-checks the counterexample independently of the engine that
// produced it: the formula must evaluate to false on the reported
// witness (the sequence when present, the single history otherwise).
// Witnesses differ across engines — the sequence and lattice engines
// report complete valid history sequences, the invariant reduction a
// single history, the pair reduction a two-history fragment — but all of
// them must falsify the formula; the engine-agreement suites assert this
// in place of witness identity.
func (cx *Counterexample) Verify() error {
	if cx == nil {
		return nil
	}
	if cx.Seq == nil {
		if cx.Formula.Eval(NewEnv(cx.History)) {
			return fmt.Errorf("logic: counterexample history satisfies %s", cx.Formula)
		}
		return nil
	}
	if cx.Formula.Eval(NewSeqEnv(cx.Seq, 0)) {
		return fmt.Errorf("logic: counterexample sequence satisfies %s", cx.Formula)
	}
	return nil
}

// CheckOptions bound the cost of checking.
type CheckOptions struct {
	// MaxSequences caps the number of complete valid history sequences
	// examined for temporal formulae (0 = unlimited).
	MaxSequences int
	// MaxHistories caps the number of histories examined for history
	// (invariant) formulae (0 = unlimited).
	MaxHistories int
	// LinearOnly restricts sequence checking to step-size-one sequences
	// (linear extensions). Used by the E10 ablation; full GEM semantics
	// checks all valid history sequences.
	LinearOnly bool
	// Parallelism is the worker count used when independent checks are
	// fanned out: HoldsAll and HoldsEvery across formulas/computations,
	// legal.Check across restrictions, verify.CheckAll across
	// computations. 0 or 1 checks sequentially (exactly the historical
	// behavior); parallel runs report the same verdicts and the same
	// first (lowest-index) counterexample.
	Parallelism int
	// Engine selects the temporal evaluation strategy (auto, lattice or
	// seq). Every engine reports the same verdicts; counterexamples are
	// always genuine falsifying witnesses (Counterexample.Verify) but may
	// differ in shape across engines — the lattice engine extracts its
	// own violating sequence instead of re-running the sequence cascade.
	// The zero value is EngineAuto.
	Engine Engine
	// Ctx carries cancellation and the observability span context
	// through the engines: the parallel fan-outs (FirstFailure and the
	// streaming checkers) poll it and stop promptly once it is
	// cancelled, and spans opened under it nest in the emitted trace.
	// nil means context.Background(): never cancelled. Individual
	// formula evaluations are not interrupted mid-enumeration, so
	// cancellation latency is bounded by one unit of work.
	Ctx context.Context
	// Cache, when non-nil, is consulted before each top-level formula
	// evaluation and written behind on a miss (lookup-before-evaluate).
	// It is bypassed whenever the options are not Cacheable (enumeration
	// budgets or the LinearOnly ablation change the checked semantics),
	// and nothing is written after the context has been cancelled — a
	// truncated evaluation must never be persisted as a verdict.
	Cache VerdictCache
}

// Holds checks a restriction against a computation following GEM
// semantics:
//
//   - A formula containing temporal operators must hold on every complete
//     valid history sequence of the computation.
//   - A formula containing history predicates (occurred, new, potential,
//     at) but no temporal operators is an invariant: it must hold at every
//     history.
//   - A purely structural formula is evaluated once at the full history.
//
// It returns nil when the restriction holds, or a counterexample.
//
// With opts.Cache set (and the options Cacheable), the persistent store
// is consulted first and written behind on a miss; the cache is keyed at
// the whole-formula level, so the recursive And-split below always
// evaluates with the cache cleared.
func Holds(f Formula, c *core.Computation, opts CheckOptions) *Counterexample {
	if cache := opts.Cache; cache != nil {
		opts.Cache = nil
		if opts.Cacheable() {
			if cx, ok := cache.Lookup(f, c, opts.Engine); ok {
				return cx
			}
			cx := Holds(f, c, opts)
			// A cancelled context may have truncated the evaluation (the
			// engines poll it between units of work); a truncated "pass"
			// is not a verdict, so skip the write-behind entirely.
			if !Cancelled(Done(opts.Ctx)) {
				cache.Store(f, c, opts.Engine, cx)
			}
			return cx
		}
	}
	// Universal checking distributes over conjunction; checking conjuncts
	// separately lets each pick its cheapest sound strategy (notably the
	// □-invariant reduction below).
	if and, ok := f.(And); ok {
		for _, sub := range and {
			if cx := Holds(sub, c, opts); cx != nil {
				return cx
			}
		}
		return nil
	}
	switch {
	case HasTemporal(f):
		// The lattice fixpoint engine (latticeeval.go) bounds every
		// temporal formula over the history lattice instead of the
		// exponentially larger sequence set, decides most of them (pass
		// and fail alike, extracting its own violating sequence on
		// failure), and reports "inconclusive" for the rest. It is
		// bypassed under enumeration budgets and the LinearOnly ablation,
		// which change the checked semantics.
		useLattice := opts.Engine != EngineSeq && !opts.LinearOnly &&
			opts.MaxSequences == 0 && opts.MaxHistories == 0
		// A forced EngineLattice routes every temporal formula through
		// the fixpoint evaluator first; only an inconclusive outcome
		// (observable as the engine.lattice.fallback counter) delegates
		// to the sequence strategies.
		if useLattice && opts.Engine == EngineLattice {
			if cx, decided := latticeAttempt(opts.Ctx, f, c); decided {
				return cx
			}
			seq := opts
			seq.Engine = EngineSeq
			return Holds(f, c, seq)
		}
		// □p for immediate p is an invariant: it holds on every valid
		// history sequence iff p holds at every history (every history
		// occurs in some complete sequence, and every sequence member is
		// a history). Deciding it over histories avoids enumerating the
		// exponentially larger sequence set, exactly — and avoids the
		// lattice engine's step-DAG bitsets, so auto keeps it first.
		if box, ok := f.(Box); ok && !HasTemporal(box.F) {
			_, sp := obs.StartSpan(opts.Ctx, "engine.histories")
			cx := holdsOnHistories(box.F, c, opts.MaxHistories)
			sp.End()
			return cx
		}
		// EngineAuto: a decided lattice run (either verdict) settles the
		// check; only inconclusive bounds fall through to the strategies
		// below.
		if useLattice {
			if cx, decided := latticeAttempt(opts.Ctx, f, c); decided {
				return cx
			}
		}
		// □φ where φ's only temporal subformulas are positive □ of
		// immediate bodies (e.g. the paper's priority restriction
		// □(pending → □(served-ordering))) reduces exactly to a check
		// over pairs of histories h1 ⊑ h2: immediate parts of φ read h1,
		// inner □ bodies must hold at every h2 ⊇ h1. Every such pair
		// occurs in some complete valid history sequence and vice versa.
		if box, ok := f.(Box); ok && !opts.LinearOnly && pairCheckable(box.F, true) {
			_, sp := obs.StartSpan(opts.Ctx, "engine.pairs")
			cx := holdsOnHistoryPairs(box.F, c, opts.MaxHistories)
			sp.End()
			return cx
		}
		_, sp := obs.StartSpan(opts.Ctx, "engine.seq")
		cx := holdsOnSequences(f, c, opts)
		sp.End()
		return cx
	case HasHistoryPredicate(f):
		_, sp := obs.StartSpan(opts.Ctx, "engine.histories")
		cx := holdsOnHistories(f, c, opts.MaxHistories)
		sp.End()
		return cx
	default:
		env := NewEnv(history.Full(c))
		if !f.Eval(env) {
			return &Counterexample{Formula: f, History: env.H, Comp: c}
		}
		return nil
	}
}

// latticeAttempt runs the lattice fixpoint engine under an engine-stage
// span and records its outcome counters: engine.lattice.pass for a
// decided pass, engine.lattice.cex for a decided failure (the witness
// extraction also times itself under the nested engine.lattice.cex
// span), and engine.lattice.fallback for an inconclusive outcome — the
// only case that still delegates to another engine stage.
func latticeAttempt(ctx context.Context, f Formula, c *core.Computation) (*Counterexample, bool) {
	cctx, sp := obs.StartSpan(ctx, "engine.lattice")
	cx, decided := latticeDecide(cctx, f, c)
	sp.End()
	switch {
	case !decided:
		obs.Count("engine.lattice.fallback", 1)
	case cx == nil:
		obs.Count("engine.lattice.pass", 1)
	default:
		obs.Count("engine.lattice.cex", 1)
	}
	return cx, decided
}

// HoldsAtFull evaluates the formula at the complete history only,
// regardless of its shape. Useful for postcondition-style checks
// (functional correctness at termination).
func HoldsAtFull(f Formula, c *core.Computation) *Counterexample {
	env := NewEnv(history.Full(c))
	if !f.Eval(env) {
		return &Counterexample{Formula: f, History: env.H, Comp: c}
	}
	return nil
}

func holdsOnHistories(f Formula, c *core.Computation, limit int) *Counterexample {
	if limit > 0 {
		// A history budget bounds the cost of this one check; bypass the
		// shared lattice, which always enumerates fully.
		var cx *Counterexample
		history.Enumerate(c, limit, func(h history.History) bool {
			if !f.Eval(NewEnv(h)) {
				cx = &Counterexample{Formula: f, History: h, Comp: c}
				return false
			}
			return true
		})
		return cx
	}
	// The lattice is enumerated once per computation and shared across
	// every restriction checked against it (same enumeration order, so
	// the same counterexample is found).
	for _, h := range history.Shared(c).Histories() {
		if !f.Eval(NewEnv(h)) {
			return &Counterexample{Formula: f, History: h, Comp: c}
		}
	}
	return nil
}

func holdsOnSequences(f Formula, c *core.Computation, opts CheckOptions) *Counterexample {
	var cx *Counterexample
	examine := func(s history.Sequence) bool {
		if !f.Eval(NewSeqEnv(s, 0)) {
			cx = &Counterexample{Formula: f, History: s[0], Seq: s, Comp: c}
			return false
		}
		return true
	}
	if opts.LinearOnly {
		history.EnumerateLinear(c, opts.MaxSequences, examine)
	} else {
		history.EnumerateComplete(c, opts.MaxSequences, examine)
	}
	return cx
}

// pairCheckable reports whether the formula's temporal subformulas are
// exactly positive-polarity Box operators with immediate bodies, and no
// Diamond occurs. For such formulas □f is decidable over history pairs.
func pairCheckable(f Formula, positive bool) bool {
	switch g := f.(type) {
	case Box:
		return positive && !HasTemporal(g.F)
	case Diamond:
		return false
	case Not:
		return pairCheckable(g.F, !positive)
	case And:
		for _, sub := range g {
			if !pairCheckable(sub, positive) {
				return false
			}
		}
		return true
	case Or:
		for _, sub := range g {
			if !pairCheckable(sub, positive) {
				return false
			}
		}
		return true
	case Implies:
		return pairCheckable(g.If, !positive) && pairCheckable(g.Then, positive)
	case Iff:
		// Both polarities occur on both sides.
		return !HasTemporal(g.A) && !HasTemporal(g.B)
	case ForAll:
		return pairCheckable(g.Body, positive)
	case Exists:
		return pairCheckable(g.Body, positive)
	case ExistsUnique:
		return !HasTemporal(g.Body)
	case AtMostOne:
		return !HasTemporal(g.Body)
	case ForAllThread:
		return pairCheckable(g.Body, positive)
	case ExistsThread:
		return pairCheckable(g.Body, positive)
	case ForAllIn:
		return pairCheckable(g.Body, positive)
	case ExistsUniqueIn:
		return !HasTemporal(g.Body)
	default:
		return !HasTemporal(f)
	}
}

// holdsOnHistoryPairs decides □f over all valid history sequences by
// evaluating f on every pair h1 ⊑ h2, presented to the evaluator as the
// two-history sequence (h1, h2): immediate parts of f read h1, inner □
// bodies are required at both h1 and h2. Sound and complete for
// pairCheckable formulas.
func holdsOnHistoryPairs(f Formula, c *core.Computation, limit int) *Counterexample {
	if limit > 0 {
		var all []history.History
		history.Enumerate(c, limit, func(h history.History) bool {
			all = append(all, h)
			return true
		})
		for _, h1 := range all {
			for _, h2 := range all {
				if !h1.Set().SubsetOf(h2.Set()) {
					continue
				}
				seq := history.Sequence{h1, h2}
				if !f.Eval(NewSeqEnv(seq, 0)) {
					return &Counterexample{Formula: Box{F: f}, History: h1, Seq: seq, Comp: c}
				}
			}
		}
		return nil
	}
	// The ⊑ pair relation is memoized on the computation alongside the
	// lattice itself; Pairs visits pairs in the order the nested loop
	// above would, so the counterexample is identical.
	var cx *Counterexample
	history.Shared(c).Pairs(func(h1, h2 history.History) bool {
		seq := history.Sequence{h1, h2}
		if !f.Eval(NewSeqEnv(seq, 0)) {
			cx = &Counterexample{Formula: Box{F: f}, History: h1, Seq: seq, Comp: c}
			return false
		}
		return true
	})
	return cx
}
