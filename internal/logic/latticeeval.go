package logic

import (
	"context"
	"fmt"

	"gem/internal/core"
	"gem/internal/history"
	"gem/internal/obs"
	"gem/internal/order"
)

// This file implements the lattice fixpoint evaluation engine for temporal
// restrictions. GEM semantics quantifies a temporal restriction over all
// complete valid history sequences, and the sequence engine checks that
// literally — exponentially many sequences, each re-evaluating the formula
// at every position. But the histories of a computation form a finite
// lattice (history.Lattice), complete sequences are exactly the maximal
// paths of its vhs step DAG (Lattice.Steps), and this codebase's temporal
// operators are forward-only: the truth of a formula at a sequence
// position depends only on the suffix from that position. Truth over the
// sequence set can therefore be bounded — and for a large fragment decided
// — per (subformula, history) pair: O(|lattice| × |f|) instead of
// O(#sequences × length × |f|).
//
// The evaluator computes two satisfaction bitsets per subformula, indexed
// by the lattice's histories:
//
//	lower(f)[h] — f certainly holds at h in EVERY complete sequence
//	    through h (a sound under-approximation of "all")
//	upper(f)[h] — f possibly holds at h in SOME complete sequence
//	    through h (a sound over-approximation of "some")
//
// Every formula shape has sound bound rules, so the evaluator covers the
// full restriction language; alongside the bounds it tracks a per-node
// exactness pair (lowExact, upExact) recording whether each bound is not
// merely sound but equal to the true satisfaction set. Rules, with their
// exactness arguments:
//
//	lower(□f)[h] = ∀ h' ⊒ h: lower(f)[h']      (exact iff lower(f) is: a
//	    failing position (τ,k) at h' splices onto any ∅→h→h' prefix,
//	    and forward-only evaluation preserves f's value on the shared
//	    suffix)
//	upper(◇f)[h] = ∃ h' ⊒ h: upper(f)[h']      (exact dually)
//	lower(◇f)[h] = AF over the step DAG: every maximal step path from
//	    h hits an f-history — sound for any f, exact only when f is
//	    immediate (history-determined)
//	upper(□f)[h] = EG over the step DAG: some maximal step path from h
//	    stays inside f-histories — sound always, exact for immediate f
//	lower(¬f) = ¬upper(f), upper(¬f) = ¬lower(f)  (exactness swaps)
//	lower(∧) = ∩ lowers (exact); upper(∨) = ∪ uppers (exact)
//	lower(∨) = ∪ lowers and upper(∧) = ∩ uppers — sound always, exact
//	    only when at most one operand is non-immediate (two
//	    sequence-dependent disjuncts can cover all sequences without
//	    either covering them alone)
//	∀/∀-in/∀-thread distribute like ∧, ∃/∃-thread like ∨, over their
//	    (history-independent) binding domains: lower(∃xφ) = ∪ₓ lower(φₓ)
//	    is a sound lower bound for any body (a certain witness in every
//	    sequence certainly witnesses ∃), exact when the body is exact
//	    and at most one binding exists
//	∃!/at-most-one combine per-binding bounds pairwise: e.g.
//	    lower(∃!xφ) = ∪ₓ (lower(φₓ) ∩ ⋂_{y≠x} ¬upper(φᵧ)) — x certainly
//	    holds while every other binding certainly fails. Sound always,
//	    inexact beyond one binding.
//
// The verdict at the empty history ∅ (where every complete sequence
// starts) uses the bounds from both sides:
//
//	lower(F)[∅]              → PASS  (sound without any exactness)
//	¬upper(F)[∅]             → FAIL  (every sequence violates F — any
//	                                  maximal step path is a witness)
//	lowExact ∧ ¬lower(F)[∅]  → FAIL  (extract a violating path by
//	                                  structural recursion, see refute)
//	otherwise                → inconclusive; Holds falls back to the
//	                                  sequence strategies (observable as
//	                                  the engine.lattice.fallback counter)
//
// On the failure sides the engine extracts a concrete complete valid
// history sequence violating F by walking the step DAG — through the
// complement of the relevant bound sets — and re-verifies it with one
// ordinary sequence evaluation before reporting it, so a reported witness
// is always genuine even if a bound rule were wrong. The sequence engine
// is thereby reduced to a test oracle: agreement suites compare verdicts
// and witness validity, not witness identity.
//
// The □/◇ reachability and fixpoint passes run in one sweep over
// Lattice.EvalOrder (decreasing history size), since every step successor
// is a strict superset. Scratch bitsets are pooled on the evaluator (the
// delta-pool pattern of Sequence.Validate): every node returns its two
// bitsets to the free list once the parent has folded them in, so an
// evaluation allocates O(formula depth) bitsets, not O(formula size).

// Engine selects the evaluation strategy Holds uses for temporal
// restrictions.
type Engine int

const (
	// EngineAuto picks the cheapest sound strategy per formula: the
	// □-invariant reduction, then the lattice engine whenever its bounds
	// decide the formula (which they do for the entire language on the
	// failure-by-upper side and for the exact fragment on both sides),
	// then the history-pair reduction, then sequence enumeration. The
	// default.
	EngineAuto Engine = iota
	// EngineSeq forces the sequence-based strategies (invariant and pair
	// reductions plus enumeration) — the engine's historical behavior,
	// kept as the agreement-test oracle.
	EngineSeq
	// EngineLattice forces the lattice fixpoint evaluator for every
	// temporal formula, including counterexample extraction on failure;
	// it falls back to the sequence engine only when the bounds are
	// inconclusive (recorded on the engine.lattice.fallback counter).
	EngineLattice
)

// String implements flag.Value-style rendering.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineSeq:
		return "seq"
	case EngineLattice:
		return "lattice"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "seq":
		return EngineSeq, nil
	case "lattice":
		return EngineLattice, nil
	default:
		return EngineAuto, fmt.Errorf("logic: unknown engine %q (want auto, lattice or seq)", s)
	}
}

// SequenceInsensitive reports whether the formula's truth over all
// complete valid history sequences is determined by the history lattice
// alone — i.e. the lattice engine's lower bound is exact for it, so its
// verdict (pass and fail alike) provably equals the sequence
// enumerator's. It is a thin syntactic wrapper over the same per-node
// exactness rules the evaluator applies; the evaluator itself can decide
// strictly more (data-dependent single-binding quantifiers, and definite
// failures via the upper bound on any shape), so a false answer here does
// not mean the engine will fall back — it means the fallback is possible.
func SequenceInsensitive(f Formula) bool { return exactLower(f) }

// immediate reports that the formula reads only the current history.
func immediate(f Formula) bool { return !HasTemporal(f) }

// exactLower reports that the engine's lower rules are exact for f,
// judged syntactically (binding domains unknown, so quantifiers are
// treated as multi-binding). The evaluator recomputes the same analysis
// per node with domain sizes in hand.
func exactLower(f Formula) bool {
	if immediate(f) {
		return true
	}
	switch g := f.(type) {
	case Box:
		return exactLower(g.F)
	case Diamond:
		return immediate(g.F)
	case Not:
		return exactUpper(g.F)
	case And:
		for _, sub := range g {
			if !exactLower(sub) {
				return false
			}
		}
		return true
	case Or:
		nonImm := 0
		for _, sub := range g {
			if !exactLower(sub) {
				return false
			}
			if !immediate(sub) {
				nonImm++
			}
		}
		return nonImm <= 1
	case Implies:
		return exactUpper(g.If) && exactLower(g.Then) &&
			(immediate(g.If) || immediate(g.Then))
	case ForAll:
		return exactLower(g.Body)
	case ForAllThread:
		return exactLower(g.Body)
	case ForAllIn:
		return exactLower(g.Body)
	case Exists, ExistsThread:
		// lower(∃x φ) = ∪ₓ lower(φₓ) requires one binding to witness φ in
		// every sequence, but different sequences may use different
		// witnesses: not exact for non-immediate bodies over multi-binding
		// domains (immediate ones were accepted above; the evaluator also
		// accepts domains of ≤ 1 binding).
		return false
	default:
		// Iff, ExistsUnique, AtMostOne, ExistsUniqueIn mix polarities or
		// count across bindings: beyond their immediate forms (handled
		// above) the evaluator bounds them soundly but inexactly.
		return false
	}
}

// exactUpper reports that the engine's upper rules are exact for f,
// judged syntactically like exactLower.
func exactUpper(f Formula) bool {
	if immediate(f) {
		return true
	}
	switch g := f.(type) {
	case Box:
		return immediate(g.F)
	case Diamond:
		return exactUpper(g.F)
	case Not:
		return exactLower(g.F)
	case Or:
		for _, sub := range g {
			if !exactUpper(sub) {
				return false
			}
		}
		return true
	case And:
		nonImm := 0
		for _, sub := range g {
			if !exactUpper(sub) {
				return false
			}
			if !immediate(sub) {
				nonImm++
			}
		}
		return nonImm <= 1
	case Implies:
		return exactLower(g.If) && exactUpper(g.Then)
	case Exists:
		return exactUpper(g.Body)
	case ExistsThread:
		return exactUpper(g.Body)
	case ForAll:
		return false // ∩ over several non-immediate bindings is not exact
	case ForAllThread:
		return false
	case ForAllIn:
		return false
	default:
		return false
	}
}

// approx is one node's evaluation result: sound lower/upper satisfaction
// sets plus whether each bound is exact. The bitsets are owned by the
// node and returned to the evaluator pool by the consuming parent.
type approx struct {
	low, up  order.Bitset
	lowExact bool
	upExact  bool
}

// latticeDecide runs the lattice engine on f over c's history lattice.
// It returns (nil, true) when f certainly holds on every complete valid
// history sequence, (cx, true) with a verified violating sequence when f
// certainly fails, and (nil, false) when the bounds are inconclusive —
// the caller then falls back to the sequence strategies. ctx only carries
// the observability span for counterexample extraction.
func latticeDecide(ctx context.Context, f Formula, c *core.Computation) (*Counterexample, bool) {
	ev := newLatticeEval(c)
	env := &Env{C: c}
	root := ev.eval(f, env)
	e := ev.empty
	var path []int32
	switch {
	case root.low.Has(e):
		// lower is a sound under-approximation of "holds in every
		// sequence": pass, regardless of exactness.
		return nil, true
	case !root.up.Has(e):
		// upper soundly over-approximates "holds in some sequence", so an
		// empty upper at ∅ means every complete sequence violates f: any
		// maximal step path is a counterexample.
		path = ev.anyPathFrom(int32(e))
	case root.lowExact:
		// The lower bound is exact and excludes ∅: some complete sequence
		// violates f, and the exactness certificates let refute walk the
		// step DAG to one.
		path = ev.refute(f, int32(e), env)
	default:
		return nil, false
	}
	_, sp := obs.StartSpan(ctx, "engine.lattice.cex")
	seq := ev.sequence(path)
	satisfied := f.Eval(NewSeqEnv(seq, 0))
	sp.End()
	if satisfied {
		// Defensive re-verification: the extracted path falsifies f by
		// construction, so reaching here indicates an engine bug. Report
		// inconclusive (→ sequence fallback) rather than a bogus witness.
		obs.Count("engine.lattice.cex.rejected", 1)
		return nil, false
	}
	return &Counterexample{Formula: f, History: seq[0], Seq: seq, Comp: c}, true
}

// latticeEval evaluates subformulas to per-history satisfaction bitsets.
type latticeEval struct {
	c     *core.Computation
	hs    []history.History
	steps [][]int32
	order []int32
	empty int            // lattice index of the empty history
	free  []order.Bitset // scratch pool, sized len(hs) each
}

func newLatticeEval(c *core.Computation) *latticeEval {
	lat := history.Shared(c)
	ev := &latticeEval{
		c:     c,
		hs:    lat.Histories(),
		steps: lat.Steps(),
		order: lat.EvalOrder(),
		empty: -1,
	}
	for i, h := range ev.hs {
		if h.Len() == 0 {
			ev.empty = i
			break
		}
	}
	if ev.empty < 0 {
		// A computation always has the empty history; not reaching it
		// means the lattice is corrupt.
		panic("logic: history lattice has no empty history")
	}
	return ev
}

// get hands out an empty scratch bitset, reusing a pooled one when
// available. Evaluation is single-goroutine per call, so no locking.
func (ev *latticeEval) get() order.Bitset {
	if n := len(ev.free); n > 0 {
		b := ev.free[n-1]
		ev.free = ev.free[:n-1]
		b.Reset()
		return b
	}
	return order.NewBitset(len(ev.hs))
}

// put returns scratch bitsets to the pool.
func (ev *latticeEval) put(bs ...order.Bitset) { ev.free = append(ev.free, bs...) }

// release returns a consumed child result's bitsets to the pool.
func (ev *latticeEval) release(a approx) { ev.put(a.low, a.up) }

// eval computes sound lower/upper bounds (and their exactness) for f
// under env. The returned bitsets come from the pool; the caller owns
// them and must release them (directly or by folding them into its own
// result).
func (ev *latticeEval) eval(f Formula, env *Env) approx {
	if immediate(f) {
		low := ev.pointwise(f, env)
		up := ev.get()
		up.CopyFrom(low)
		return approx{low: low, up: up, lowExact: true, upExact: true}
	}
	switch g := f.(type) {
	case Box:
		a := ev.eval(g.F, env)
		return approx{
			low:      ev.allSuccessors(a.low),
			up:       ev.invariantly(a.up),
			lowExact: a.lowExact,
			upExact:  immediate(g.F),
		}
	case Diamond:
		a := ev.eval(g.F, env)
		return approx{
			low:      ev.inevitably(a.low),
			up:       ev.someSuccessor(a.up),
			lowExact: immediate(g.F),
			upExact:  a.upExact,
		}
	case Not:
		a := ev.eval(g.F, env)
		a.low.FlipAll()
		a.up.FlipAll()
		return approx{low: a.up, up: a.low, lowExact: a.upExact, upExact: a.lowExact}
	case And:
		return ev.evalJunction(g, env, true)
	case Or:
		return ev.evalJunction(g, env, false)
	case Implies:
		return ev.evalImplies(g.If, g.Then, env)
	case Iff:
		return ev.eval(desugarIff(g), env)
	case ForAll, ForAllIn, ForAllThread:
		body, envs := quantEnvs(env, f)
		return ev.evalQuant(body, envs, true)
	case Exists, ExistsThread:
		body, envs := quantEnvs(env, f)
		return ev.evalQuant(body, envs, false)
	case ExistsUnique, ExistsUniqueIn:
		body, envs := quantEnvs(env, f)
		return ev.evalUnique(body, envs)
	case AtMostOne:
		body, envs := quantEnvs(env, f)
		return ev.evalAtMostOne(body, envs)
	default:
		panic(fmt.Sprintf("logic: lattice engine cannot bound %s", f))
	}
}

// desugarIff rewrites A ≡ B as (A → B) ∧ (B → A), whose bound rules are
// already defined. The implication rules make mixed immediate/temporal
// equivalences exact.
func desugarIff(g Iff) Formula {
	return And{Implies{If: g.A, Then: g.B}, Implies{If: g.B, Then: g.A}}
}

// evalJunction folds conjuncts (conj) or disjuncts (!conj). The inexact
// direction — lower of ∨, upper of ∧ — is exact only when at most one
// operand is sequence-dependent.
func (ev *latticeEval) evalJunction(subs []Formula, env *Env, conj bool) approx {
	low, up := ev.get(), ev.get()
	if conj {
		low.Fill()
		up.Fill()
	}
	allLow, allUp := true, true
	nonImm := 0
	for _, sub := range subs {
		a := ev.eval(sub, env)
		if conj {
			low.AndWith(a.low)
			up.AndWith(a.up)
		} else {
			low.OrWith(a.low)
			up.OrWith(a.up)
		}
		allLow = allLow && a.lowExact
		allUp = allUp && a.upExact
		if !immediate(sub) {
			nonImm++
		}
		ev.release(a)
	}
	if conj {
		return approx{low: low, up: up, lowExact: allLow, upExact: allUp && nonImm <= 1}
	}
	return approx{low: low, up: up, lowExact: allLow && nonImm <= 1, upExact: allUp}
}

// evalImplies computes A → B as ¬A ∨ B without materializing the
// disjunction: low = ¬up(A) ∪ low(B), up = ¬low(A) ∪ up(B).
func (ev *latticeEval) evalImplies(ifF, thenF Formula, env *Env) approx {
	a := ev.eval(ifF, env)
	b := ev.eval(thenF, env)
	a.up.FlipAll()
	a.up.OrWith(b.low)
	a.low.FlipAll()
	a.low.OrWith(b.up)
	out := approx{
		low:      a.up,
		up:       a.low,
		lowExact: a.upExact && b.lowExact && (immediate(ifF) || immediate(thenF)),
		upExact:  a.lowExact && b.upExact,
	}
	ev.release(b)
	return out
}

// quantEnvs materializes a quantifier node's bound environments and
// returns its body. Binding domains are history-independent, so the
// evaluator distributes over them like finite junctions.
func quantEnvs(env *Env, f Formula) (Formula, []*Env) {
	var envs []*Env
	switch g := f.(type) {
	case ForAll:
		for _, id := range classDomain(env, g.Ref) {
			envs = append(envs, env.bind(g.Var, id))
		}
		return g.Body, envs
	case Exists:
		for _, id := range classDomain(env, g.Ref) {
			envs = append(envs, env.bind(g.Var, id))
		}
		return g.Body, envs
	case ExistsUnique:
		for _, id := range classDomain(env, g.Ref) {
			envs = append(envs, env.bind(g.Var, id))
		}
		return g.Body, envs
	case AtMostOne:
		for _, id := range classDomain(env, g.Ref) {
			envs = append(envs, env.bind(g.Var, id))
		}
		return g.Body, envs
	case ForAllIn:
		for _, id := range unionDomain(env, g.Refs) {
			envs = append(envs, env.bind(g.Var, id))
		}
		return g.Body, envs
	case ExistsUniqueIn:
		for _, id := range unionDomain(env, g.Refs) {
			envs = append(envs, env.bind(g.Var, id))
		}
		return g.Body, envs
	case ForAllThread:
		for _, tid := range threadDomain(env, g.Type) {
			envs = append(envs, env.bindThread(g.Var, tid))
		}
		return g.Body, envs
	case ExistsThread:
		for _, tid := range threadDomain(env, g.Type) {
			envs = append(envs, env.bindThread(g.Var, tid))
		}
		return g.Body, envs
	default:
		panic(fmt.Sprintf("logic: not a quantifier: %s", f))
	}
}

// evalQuant folds a quantifier's bound bodies like a junction. The body
// is sequence-dependent here (immediate quantified formulas are handled
// pointwise), so the inexact direction becomes exact only for domains of
// at most one binding.
func (ev *latticeEval) evalQuant(body Formula, envs []*Env, conj bool) approx {
	low, up := ev.get(), ev.get()
	if conj {
		low.Fill()
		up.Fill()
	}
	allLow, allUp := true, true
	for _, be := range envs {
		a := ev.eval(body, be)
		if conj {
			low.AndWith(a.low)
			up.AndWith(a.up)
		} else {
			low.OrWith(a.low)
			up.OrWith(a.up)
		}
		allLow = allLow && a.lowExact
		allUp = allUp && a.upExact
		ev.release(a)
	}
	single := len(envs) <= 1
	if conj {
		return approx{low: low, up: up, lowExact: allLow, upExact: allUp && single}
	}
	return approx{low: low, up: up, lowExact: allLow && single, upExact: allUp}
}

// evalUnique bounds ∃! by pairing per-binding bounds: the formula
// certainly holds where some binding certainly holds and every other
// binding certainly fails, and possibly holds where some binding possibly
// holds while every other possibly fails.
func (ev *latticeEval) evalUnique(body Formula, envs []*Env) approx {
	n := len(envs)
	if n == 0 {
		// ∃! over an empty domain is false everywhere, exactly.
		return approx{low: ev.get(), up: ev.get(), lowExact: true, upExact: true}
	}
	as := make([]approx, n)
	for i, be := range envs {
		as[i] = ev.eval(body, be)
	}
	if n == 1 {
		return as[0] // ∃! of a single candidate is just its body
	}
	low, up, tmp := ev.get(), ev.get(), ev.get()
	for x := range as {
		tmp.CopyFrom(as[x].low)
		for y := range as {
			if y != x {
				tmp.AndNotWith(as[y].up)
			}
		}
		low.OrWith(tmp)
		tmp.CopyFrom(as[x].up)
		for y := range as {
			if y != x {
				tmp.AndNotWith(as[y].low)
			}
		}
		up.OrWith(tmp)
	}
	ev.put(tmp)
	for _, a := range as {
		ev.release(a)
	}
	// Different sequences can realize uniqueness through different
	// bindings, so neither bound is exact beyond one binding.
	return approx{low: low, up: up}
}

// evalAtMostOne bounds the counting quantifier: it certainly holds where
// no two bindings can both hold in any sequence, and possibly holds
// except where two bindings certainly hold together.
func (ev *latticeEval) evalAtMostOne(body Formula, envs []*Env) approx {
	n := len(envs)
	if n <= 1 {
		// At most one of ≤1 candidates holds trivially, everywhere.
		low, up := ev.get(), ev.get()
		low.Fill()
		up.Fill()
		return approx{low: low, up: up, lowExact: true, upExact: true}
	}
	as := make([]approx, n)
	for i, be := range envs {
		as[i] = ev.eval(body, be)
	}
	low, tmp := ev.get(), ev.get()
	low.Fill()
	for x := 0; x < n; x++ {
		for y := x + 1; y < n; y++ {
			tmp.CopyFrom(as[x].up)
			tmp.AndWith(as[y].up)
			low.AndNotWith(tmp)
		}
	}
	once, twice := ev.get(), ev.get()
	for _, a := range as {
		tmp.CopyFrom(a.low)
		tmp.AndWith(once)
		twice.OrWith(tmp)
		once.OrWith(a.low)
	}
	twice.FlipAll()
	ev.put(tmp, once)
	for _, a := range as {
		ev.release(a)
	}
	return approx{low: low, up: twice}
}

// pointwise evaluates an immediate formula at every lattice history.
// Purely structural formulas have one verdict for the whole computation,
// so they are evaluated once.
func (ev *latticeEval) pointwise(f Formula, env *Env) order.Bitset {
	out := ev.get()
	saveH := env.H
	defer func() { env.H = saveH }()
	if !HasHistoryPredicate(f) {
		env.H = ev.hs[0]
		if f.Eval(env) {
			out.Fill()
		}
		return out
	}
	for i, h := range ev.hs {
		env.H = h
		if f.Eval(env) {
			out.Set(i)
		}
	}
	return out
}

// allSuccessors computes AG: the histories all of whose supersets
// (including themselves) lie in body. One sweep in decreasing-size order
// suffices, since step reachability is exactly the strict-superset
// relation.
func (ev *latticeEval) allSuccessors(body order.Bitset) order.Bitset {
	out := body // body bitsets are owned per-node; reuse in place
	for _, i := range ev.order {
		if !out.Has(int(i)) {
			continue
		}
		for _, j := range ev.steps[i] {
			if !out.Has(int(j)) {
				out.Clear(int(i))
				break
			}
		}
	}
	return out
}

// someSuccessor computes EF: the histories with some superset (including
// themselves) in body.
func (ev *latticeEval) someSuccessor(body order.Bitset) order.Bitset {
	out := body
	for _, i := range ev.order {
		if out.Has(int(i)) {
			continue
		}
		for _, j := range ev.steps[i] {
			if out.Has(int(j)) {
				out.Set(int(i))
				break
			}
		}
	}
	return out
}

// inevitably computes AF over the step DAG: every maximal step path from
// the history (equivalently, every complete sequence suffix) eventually
// visits body. The full history is the DAG's sink, so paths end there.
func (ev *latticeEval) inevitably(body order.Bitset) order.Bitset {
	out := body
	for _, i := range ev.order {
		if out.Has(int(i)) || len(ev.steps[i]) == 0 {
			continue
		}
		all := true
		for _, j := range ev.steps[i] {
			if !out.Has(int(j)) {
				all = false
				break
			}
		}
		if all {
			out.Set(int(i))
		}
	}
	return out
}

// invariantly computes EG over the step DAG: some maximal step path from
// the history stays inside body throughout.
func (ev *latticeEval) invariantly(body order.Bitset) order.Bitset {
	out := body
	for _, i := range ev.order {
		if !out.Has(int(i)) || len(ev.steps[i]) == 0 {
			continue
		}
		any := false
		for _, j := range ev.steps[i] {
			if out.Has(int(j)) {
				any = true
				break
			}
		}
		if !any {
			out.Clear(int(i))
		}
	}
	return out
}

// --- Counterexample extraction ------------------------------------------
//
// refute and witness walk the step DAG guided by the bound sets: refute
// returns a maximal step path from h on which f is false at position 0,
// witness one on which f is true. Their preconditions mirror the
// exactness rules — refute(f, h) requires lowExact(f) and h ∉ lower(f),
// witness(f, h) requires upExact(f) and h ∈ upper(f) — and every case
// below recurses only into children whose precondition its own exactness
// rule guarantees. Sub-bounds are recomputed on the recursion path, so
// extraction costs O(|f| · depth) lattice sweeps — still tiny next to
// sequence enumeration, and paid only on failing checks.

// refute returns a maximal step path from h (inclusive) on which f is
// false at position 0.
func (ev *latticeEval) refute(f Formula, h int32, env *Env) []int32 {
	if immediate(f) {
		// f is false at h regardless of the path taken.
		return ev.anyPathFrom(h)
	}
	switch g := f.(type) {
	case Box:
		// Some reachable h' has the body certainly failing; route there,
		// then make the body fail.
		a := ev.eval(g.F, env)
		a.low.FlipAll()
		prefix := ev.pathToward(h, a.low)
		ev.release(a)
		hh := prefix[len(prefix)-1]
		return append(prefix[:len(prefix)-1], ev.refute(g.F, hh, env)...)
	case Diamond:
		// lowExact(◇g) ⇒ g immediate. Walk a maximal path avoiding the AF
		// fixpoint of g's histories: no position on it satisfies g.
		a := ev.eval(g.F, env)
		af := ev.inevitably(a.low)
		path := ev.pathAvoiding(h, af)
		ev.put(af, a.up)
		return path
	case Not:
		return ev.witness(g.F, h, env)
	case And:
		for _, sub := range g {
			a := ev.eval(sub, env)
			failed := !a.low.Has(int(h))
			ev.release(a)
			if failed {
				return ev.refute(sub, h, env)
			}
		}
		panic(fmt.Sprintf("logic: no refutable conjunct of %s", f))
	case Or:
		// Every disjunct has h outside its (exact) lower bound and at most
		// one is sequence-dependent: refuting that one yields a path on
		// which the immediate disjuncts are false at h as well.
		for _, sub := range g {
			if !immediate(sub) {
				return ev.refute(sub, h, env)
			}
		}
		return ev.anyPathFrom(h)
	case Implies:
		// h ∈ upper(If) and h ∉ lower(Then), with one side immediate.
		if immediate(g.If) {
			return ev.refute(g.Then, h, env)
		}
		return ev.witness(g.If, h, env)
	case Iff:
		return ev.refute(desugarIff(g), h, env)
	case ForAll, ForAllIn, ForAllThread:
		body, envs := quantEnvs(env, f)
		for _, be := range envs {
			a := ev.eval(body, be)
			failed := !a.low.Has(int(h))
			ev.release(a)
			if failed {
				return ev.refute(body, h, be)
			}
		}
		panic(fmt.Sprintf("logic: no refutable binding of %s", f))
	case Exists, ExistsThread:
		body, envs := quantEnvs(env, f)
		switch len(envs) {
		case 0:
			return ev.anyPathFrom(h) // false on every path
		case 1:
			return ev.refute(body, h, envs[0])
		}
		panic(fmt.Sprintf("logic: refuting multi-binding %s outside the exact fragment", f))
	case ExistsUnique, ExistsUniqueIn:
		body, envs := quantEnvs(env, f)
		switch len(envs) {
		case 0:
			return ev.anyPathFrom(h) // false on every path
		case 1:
			return ev.refute(body, h, envs[0])
		}
		panic(fmt.Sprintf("logic: refuting multi-binding %s outside the exact fragment", f))
	default:
		panic(fmt.Sprintf("logic: cannot refute %s", f))
	}
}

// witness returns a maximal step path from h (inclusive) on which f is
// true at position 0.
func (ev *latticeEval) witness(f Formula, h int32, env *Env) []int32 {
	if immediate(f) {
		return ev.anyPathFrom(h)
	}
	switch g := f.(type) {
	case Box:
		// upExact(□g) ⇒ g immediate. Walk inside the EG fixpoint: every
		// position on the path satisfies g.
		a := ev.eval(g.F, env)
		eg := ev.invariantly(a.up)
		path := ev.pathInside(h, eg)
		ev.put(eg, a.low)
		return path
	case Diamond:
		// Route to a history where the body possibly holds, then make it
		// hold there.
		a := ev.eval(g.F, env)
		prefix := ev.pathToward(h, a.up)
		ev.release(a)
		hh := prefix[len(prefix)-1]
		return append(prefix[:len(prefix)-1], ev.witness(g.F, hh, env)...)
	case Not:
		return ev.refute(g.F, h, env)
	case And:
		// h is inside every conjunct's (exact) upper bound and at most one
		// conjunct is sequence-dependent: witnessing it satisfies the
		// immediate ones for free.
		for _, sub := range g {
			if !immediate(sub) {
				return ev.witness(sub, h, env)
			}
		}
		return ev.anyPathFrom(h)
	case Or:
		for _, sub := range g {
			a := ev.eval(sub, env)
			ok := a.up.Has(int(h))
			ev.release(a)
			if ok {
				return ev.witness(sub, h, env)
			}
		}
		panic(fmt.Sprintf("logic: no witnessable disjunct of %s", f))
	case Implies:
		// Satisfy ¬If when it certainly fails at h, otherwise satisfy Then.
		a := ev.eval(g.If, env)
		refutable := !a.low.Has(int(h))
		ev.release(a)
		if refutable {
			return ev.refute(g.If, h, env)
		}
		return ev.witness(g.Then, h, env)
	case Iff:
		return ev.witness(desugarIff(g), h, env)
	case Exists, ExistsThread:
		body, envs := quantEnvs(env, f)
		for _, be := range envs {
			a := ev.eval(body, be)
			ok := a.up.Has(int(h))
			ev.release(a)
			if ok {
				return ev.witness(body, h, be)
			}
		}
		panic(fmt.Sprintf("logic: no witnessable binding of %s", f))
	case ForAll, ForAllIn, ForAllThread:
		body, envs := quantEnvs(env, f)
		switch len(envs) {
		case 0:
			return ev.anyPathFrom(h) // vacuously true on every path
		case 1:
			return ev.witness(body, h, envs[0])
		}
		panic(fmt.Sprintf("logic: witnessing multi-binding %s outside the exact fragment", f))
	case ExistsUnique, ExistsUniqueIn:
		body, envs := quantEnvs(env, f)
		if len(envs) == 1 {
			return ev.witness(body, h, envs[0])
		}
		panic(fmt.Sprintf("logic: witnessing multi-binding %s outside the exact fragment", f))
	case AtMostOne:
		_, envs := quantEnvs(env, f)
		if len(envs) <= 1 {
			return ev.anyPathFrom(h) // trivially true on every path
		}
		panic(fmt.Sprintf("logic: witnessing multi-binding %s outside the exact fragment", f))
	default:
		panic(fmt.Sprintf("logic: cannot witness %s", f))
	}
}

// anyPathFrom returns the canonical maximal step path from h: always the
// first listed successor. Maximal step paths end at the full history, the
// DAG's unique sink.
func (ev *latticeEval) anyPathFrom(h int32) []int32 {
	path := []int32{h}
	for len(ev.steps[h]) > 0 {
		h = ev.steps[h][0]
		path = append(path, h)
	}
	return path
}

// pathToward returns a shortest step path from h to some member of
// target (h itself counts). Callers guarantee reachability through the
// EF/AG bound sets.
func (ev *latticeEval) pathToward(h int32, target order.Bitset) []int32 {
	if target.Has(int(h)) {
		return []int32{h}
	}
	parent := make([]int32, len(ev.hs))
	for i := range parent {
		parent[i] = -1
	}
	parent[h] = h
	queue := []int32{h}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, j := range ev.steps[i] {
			if parent[j] >= 0 {
				continue
			}
			parent[j] = i
			if target.Has(int(j)) {
				var rev []int32
				for k := j; k != h; k = parent[k] {
					rev = append(rev, k)
				}
				rev = append(rev, h)
				for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
					rev[l], rev[r] = rev[r], rev[l]
				}
				return rev
			}
			queue = append(queue, j)
		}
	}
	panic("logic: lattice extraction target unreachable")
}

// pathAvoiding returns a maximal step path from h with every node outside
// the AF fixpoint set af. Precondition h ∉ af; then every non-sink node
// outside af has a successor outside af (else AF would have added it).
func (ev *latticeEval) pathAvoiding(h int32, af order.Bitset) []int32 {
	path := []int32{h}
	for len(ev.steps[h]) > 0 {
		next := int32(-1)
		for _, j := range ev.steps[h] {
			if !af.Has(int(j)) {
				next = j
				break
			}
		}
		if next < 0 {
			panic("logic: AF-avoiding path has no continuation")
		}
		h = next
		path = append(path, h)
	}
	return path
}

// pathInside returns a maximal step path from h staying inside the EG
// fixpoint set eg. Precondition h ∈ eg; then every non-sink node inside
// eg keeps a successor inside eg (else EG would have removed it).
func (ev *latticeEval) pathInside(h int32, eg order.Bitset) []int32 {
	path := []int32{h}
	for len(ev.steps[h]) > 0 {
		next := int32(-1)
		for _, j := range ev.steps[h] {
			if eg.Has(int(j)) {
				next = j
				break
			}
		}
		if next < 0 {
			panic("logic: EG path has no continuation")
		}
		h = next
		path = append(path, h)
	}
	return path
}

// sequence materializes a step path as a history sequence.
func (ev *latticeEval) sequence(path []int32) history.Sequence {
	s := make(history.Sequence, len(path))
	for i, idx := range path {
		s[i] = ev.hs[idx]
	}
	return s
}
