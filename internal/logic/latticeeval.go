package logic

import (
	"fmt"

	"gem/internal/core"
	"gem/internal/history"
	"gem/internal/order"
)

// This file implements the lattice fixpoint evaluation engine for temporal
// restrictions. GEM semantics quantifies a temporal restriction over all
// complete valid history sequences, and the sequence engine checks that
// literally — exponentially many sequences, each re-evaluating the formula
// at every position. But the histories of a computation form a finite
// lattice (history.Lattice), complete sequences are exactly the maximal
// paths of its vhs step DAG (Lattice.Steps), and this codebase's temporal
// operators are forward-only: the truth of a formula at a sequence
// position depends only on the suffix from that position. For a large
// fragment of the restriction language, truth is therefore a function of
// the *history* alone and can be computed once per (subformula, history)
// pair — O(|lattice| × |f|) instead of O(#sequences × length × |f|).
//
// The evaluator computes two satisfaction bitsets per subformula, indexed
// by the lattice's histories:
//
//	lower(f)[h] — f holds at h in EVERY complete sequence through h
//	upper(f)[h] — f holds at h in SOME complete sequence through h
//
// The restriction holds iff lower(F) contains the empty history (every
// complete sequence starts there). Rules, with their exactness arguments:
//
//	lower(□f)[h] = ∀ h' ⊒ h: lower(f)[h']      (exact for any f: a
//	    failing position (τ,k) at h' splices onto any ∅→h→h' prefix,
//	    and forward-only evaluation preserves f's value on the shared
//	    suffix)
//	upper(◇f)[h] = ∃ h' ⊒ h: upper(f)[h']      (exact dually)
//	lower(◇f)[h] = AF over the step DAG: every maximal step path from
//	    h hits an f-history — exact only when f is immediate (history-
//	    determined), which the fragment analyzer guarantees
//	upper(□f)[h] = EG over the step DAG: some maximal step path from h
//	    stays inside f-histories — immediate f only, as above
//	lower(¬f) = ¬upper(f), upper(¬f) = ¬lower(f)
//	lower(∧) = ∩ lowers (exact); upper(∨) = ∪ uppers (exact)
//	lower(∨) = ∪ lowers and upper(∧) = ∩ uppers — exact only when at
//	    most one operand is non-immediate (two sequence-dependent
//	    disjuncts can cover all sequences without either covering them
//	    alone)
//	quantifiers distribute like ∧/∨ over their (history-independent)
//	    binding domains
//
// The □/◇ reachability and fixpoint passes run in one sweep over
// Lattice.EvalOrder (decreasing history size), since every step successor
// is a strict superset.
//
// SequenceInsensitive is the conservative fragment analyzer: it accepts a
// formula only when every rule applied by lower(f) is exact, so the
// engine's verdict provably equals the sequence enumerator's. Holds
// routes fragment formulas here and falls back to the exact sequence
// engine otherwise — and also on failure, so counterexamples are always
// produced by (and identical to) the sequence engine's search.

// Engine selects the evaluation strategy Holds uses for temporal
// restrictions.
type Engine int

const (
	// EngineAuto picks the cheapest sound strategy per formula: the
	// □-invariant reduction, then the lattice engine for
	// sequence-insensitive formulas, then the history-pair reduction,
	// then sequence enumeration. The default.
	EngineAuto Engine = iota
	// EngineSeq forces the sequence-based strategies (invariant and pair
	// reductions plus enumeration) — the engine's historical behavior.
	EngineSeq
	// EngineLattice forces the lattice fixpoint evaluator for every
	// formula in its fragment, falling back to the sequence engine only
	// outside it.
	EngineLattice
)

// String implements flag.Value-style rendering.
func (e Engine) String() string {
	switch e {
	case EngineAuto:
		return "auto"
	case EngineSeq:
		return "seq"
	case EngineLattice:
		return "lattice"
	default:
		return fmt.Sprintf("engine(%d)", int(e))
	}
}

// ParseEngine parses an -engine flag value.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "auto", "":
		return EngineAuto, nil
	case "seq":
		return EngineSeq, nil
	case "lattice":
		return EngineLattice, nil
	default:
		return EngineAuto, fmt.Errorf("logic: unknown engine %q (want auto, lattice or seq)", s)
	}
}

// SequenceInsensitive reports whether the formula's truth over all
// complete valid history sequences is determined by the history lattice
// alone — i.e. the lattice engine's lower(f) is exact for it. The
// analysis is purely syntactic and conservative: a false answer only
// costs the lattice shortcut, never soundness.
func SequenceInsensitive(f Formula) bool { return exactLower(f) }

// immediate reports that the formula reads only the current history.
func immediate(f Formula) bool { return !HasTemporal(f) }

// exactLower reports that the engine's lower rules are exact for f.
func exactLower(f Formula) bool {
	if immediate(f) {
		return true
	}
	switch g := f.(type) {
	case Box:
		return exactLower(g.F)
	case Diamond:
		return immediate(g.F)
	case Not:
		return exactUpper(g.F)
	case And:
		for _, sub := range g {
			if !exactLower(sub) {
				return false
			}
		}
		return true
	case Or:
		nonImm := 0
		for _, sub := range g {
			if !exactLower(sub) {
				return false
			}
			if !immediate(sub) {
				nonImm++
			}
		}
		return nonImm <= 1
	case Implies:
		return exactUpper(g.If) && exactLower(g.Then) &&
			(immediate(g.If) || immediate(g.Then))
	case ForAll:
		return exactLower(g.Body)
	case ForAllThread:
		return exactLower(g.Body)
	case ForAllIn:
		return exactLower(g.Body)
	case Exists, ExistsThread:
		// lower(∃x φ) = ∪ₓ lower(φₓ) requires one binding to witness φ in
		// every sequence, but different sequences may use different
		// witnesses: not exact for non-immediate bodies (immediate ones
		// were accepted above).
		return false
	default:
		// Iff, ExistsUnique, AtMostOne, ExistsUniqueIn mix polarities or
		// count across bindings: only their immediate forms (handled
		// above) are in the fragment.
		return false
	}
}

// exactUpper reports that the engine's upper rules are exact for f.
func exactUpper(f Formula) bool {
	if immediate(f) {
		return true
	}
	switch g := f.(type) {
	case Box:
		return immediate(g.F)
	case Diamond:
		return exactUpper(g.F)
	case Not:
		return exactLower(g.F)
	case Or:
		for _, sub := range g {
			if !exactUpper(sub) {
				return false
			}
		}
		return true
	case And:
		nonImm := 0
		for _, sub := range g {
			if !exactUpper(sub) {
				return false
			}
			if !immediate(sub) {
				nonImm++
			}
		}
		return nonImm <= 1
	case Implies:
		return exactLower(g.If) && exactUpper(g.Then)
	case Exists:
		return exactUpper(g.Body)
	case ExistsThread:
		return exactUpper(g.Body)
	case ForAll:
		return false // ∩ over several non-immediate bindings is not exact
	case ForAllThread:
		return false
	case ForAllIn:
		return false
	default:
		return false
	}
}

// latticeHolds decides whether f holds on every complete valid history
// sequence of c by fixpoint evaluation over the shared history lattice.
// It must only be called with SequenceInsensitive(f); the verdict then
// equals the sequence enumerator's.
func latticeHolds(f Formula, c *core.Computation) bool {
	lat := history.Shared(c)
	ev := &latticeEval{
		c:     c,
		hs:    lat.Histories(),
		steps: lat.Steps(),
		order: lat.EvalOrder(),
	}
	low := ev.lower(f, &Env{C: c})
	for i, h := range ev.hs {
		if h.Len() == 0 {
			return low.Has(i)
		}
	}
	// A computation always has the empty history; not reaching it means
	// the lattice is corrupt.
	panic("logic: history lattice has no empty history")
}

// latticeEval evaluates subformulas to per-history satisfaction bitsets.
type latticeEval struct {
	c     *core.Computation
	hs    []history.History
	steps [][]int32
	order []int32
}

// lower returns the set of history indices h with lower(f)[h].
func (ev *latticeEval) lower(f Formula, env *Env) order.Bitset {
	if immediate(f) {
		return ev.pointwise(f, env)
	}
	switch g := f.(type) {
	case Box:
		return ev.allSuccessors(ev.lower(g.F, env))
	case Diamond:
		return ev.inevitably(ev.lower(g.F, env))
	case Not:
		return ev.complement(ev.upper(g.F, env))
	case And:
		acc := order.NewBitset(len(ev.hs))
		acc.Fill()
		for _, sub := range g {
			acc.AndWith(ev.lower(sub, env))
		}
		return acc
	case Or:
		acc := order.NewBitset(len(ev.hs))
		for _, sub := range g {
			acc.OrWith(ev.lower(sub, env))
		}
		return acc
	case Implies:
		out := ev.complement(ev.upper(g.If, env))
		out.OrWith(ev.lower(g.Then, env))
		return out
	case ForAll:
		acc := order.NewBitset(len(ev.hs))
		acc.Fill()
		for _, id := range classDomain(env, g.Ref) {
			acc.AndWith(ev.lower(g.Body, env.bind(g.Var, id)))
		}
		return acc
	case ForAllIn:
		acc := order.NewBitset(len(ev.hs))
		acc.Fill()
		for _, id := range unionDomain(env, g.Refs) {
			acc.AndWith(ev.lower(g.Body, env.bind(g.Var, id)))
		}
		return acc
	case ForAllThread:
		acc := order.NewBitset(len(ev.hs))
		acc.Fill()
		for _, tid := range threadDomain(env, g.Type) {
			acc.AndWith(ev.lower(g.Body, env.bindThread(g.Var, tid)))
		}
		return acc
	default:
		// Non-immediate Exists-family formulas are outside the lower
		// fragment (see exactLower); immediate ones never reach the
		// switch.
		panic(fmt.Sprintf("logic: lattice engine called outside its fragment on %s", f))
	}
}

// upper returns the set of history indices h with upper(f)[h].
func (ev *latticeEval) upper(f Formula, env *Env) order.Bitset {
	if immediate(f) {
		return ev.pointwise(f, env)
	}
	switch g := f.(type) {
	case Box:
		return ev.invariantly(ev.upper(g.F, env))
	case Diamond:
		return ev.someSuccessor(ev.upper(g.F, env))
	case Not:
		return ev.complement(ev.lower(g.F, env))
	case And:
		acc := order.NewBitset(len(ev.hs))
		acc.Fill()
		for _, sub := range g {
			acc.AndWith(ev.upper(sub, env))
		}
		return acc
	case Or:
		acc := order.NewBitset(len(ev.hs))
		for _, sub := range g {
			acc.OrWith(ev.upper(sub, env))
		}
		return acc
	case Implies:
		out := ev.complement(ev.lower(g.If, env))
		out.OrWith(ev.upper(g.Then, env))
		return out
	case Exists:
		acc := order.NewBitset(len(ev.hs))
		for _, id := range classDomain(env, g.Ref) {
			acc.OrWith(ev.upper(g.Body, env.bind(g.Var, id)))
		}
		return acc
	case ExistsThread:
		acc := order.NewBitset(len(ev.hs))
		for _, tid := range threadDomain(env, g.Type) {
			acc.OrWith(ev.upper(g.Body, env.bindThread(g.Var, tid)))
		}
		return acc
	default:
		panic(fmt.Sprintf("logic: lattice engine called outside its fragment on %s", f))
	}
}

// pointwise evaluates an immediate formula at every lattice history.
// Purely structural formulas have one verdict for the whole computation,
// so they are evaluated once.
func (ev *latticeEval) pointwise(f Formula, env *Env) order.Bitset {
	out := order.NewBitset(len(ev.hs))
	saveH := env.H
	defer func() { env.H = saveH }()
	if !HasHistoryPredicate(f) {
		env.H = ev.hs[0]
		if f.Eval(env) {
			out.Fill()
		}
		return out
	}
	for i, h := range ev.hs {
		env.H = h
		if f.Eval(env) {
			out.Set(i)
		}
	}
	return out
}

// complement returns the indices not in x (fresh set; x is not modified).
func (ev *latticeEval) complement(x order.Bitset) order.Bitset {
	out := order.NewBitset(len(ev.hs))
	out.Fill()
	out.AndNotWith(x)
	return out
}

// allSuccessors computes AG: the histories all of whose supersets
// (including themselves) lie in body. One sweep in decreasing-size order
// suffices, since step reachability is exactly the strict-superset
// relation.
func (ev *latticeEval) allSuccessors(body order.Bitset) order.Bitset {
	out := body // body bitsets are owned per-node; reuse in place
	for _, i := range ev.order {
		if !out.Has(int(i)) {
			continue
		}
		for _, j := range ev.steps[i] {
			if !out.Has(int(j)) {
				out.Clear(int(i))
				break
			}
		}
	}
	return out
}

// someSuccessor computes EF: the histories with some superset (including
// themselves) in body.
func (ev *latticeEval) someSuccessor(body order.Bitset) order.Bitset {
	out := body
	for _, i := range ev.order {
		if out.Has(int(i)) {
			continue
		}
		for _, j := range ev.steps[i] {
			if out.Has(int(j)) {
				out.Set(int(i))
				break
			}
		}
	}
	return out
}

// inevitably computes AF over the step DAG: every maximal step path from
// the history (equivalently, every complete sequence suffix) eventually
// visits body. The full history is the DAG's sink, so paths end there.
func (ev *latticeEval) inevitably(body order.Bitset) order.Bitset {
	out := body
	for _, i := range ev.order {
		if out.Has(int(i)) || len(ev.steps[i]) == 0 {
			continue
		}
		all := true
		for _, j := range ev.steps[i] {
			if !out.Has(int(j)) {
				all = false
				break
			}
		}
		if all {
			out.Set(int(i))
		}
	}
	return out
}

// invariantly computes EG over the step DAG: some maximal step path from
// the history stays inside body throughout.
func (ev *latticeEval) invariantly(body order.Bitset) order.Bitset {
	out := body
	for _, i := range ev.order {
		if !out.Has(int(i)) || len(ev.steps[i]) == 0 {
			continue
		}
		any := false
		for _, j := range ev.steps[i] {
			if out.Has(int(j)) {
				any = true
				break
			}
		}
		if !any {
			out.Clear(int(i))
		}
	}
	return out
}
