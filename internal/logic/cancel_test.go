package logic

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestFirstFailureCancelledBeforeStart: an already-cancelled context
// evaluates no units at all, sequentially or in parallel.
func TestFirstFailureCancelledBeforeStart(t *testing.T) {
	withProcs(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		var calls atomic.Int64
		idx, res := FirstFailure(ctx, 10_000, par, func(i int) (int, bool) {
			calls.Add(1)
			return i, true
		})
		if idx != -1 || res != 0 {
			t.Errorf("par %d: cancelled FirstFailure = (%d, %d), want (-1, 0)", par, idx, res)
		}
		if got := calls.Load(); got != 0 {
			t.Errorf("par %d: cancelled run still evaluated %d units", par, got)
		}
	}
}

// TestFirstFailureCancelPromptness: cancelling mid-run stops the pool
// within the documented bound — at most FailureChunk further checks per
// worker after the cancellation is observable.
func TestFirstFailureCancelPromptness(t *testing.T) {
	withProcs(t, 4)
	const n = 1 << 20 // far more units than any worker should touch
	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var after atomic.Int64
		var cancelled atomic.Bool
		const cancelAt = 100
		idx, _ := FirstFailure(ctx, n, par, func(i int) (int, bool) {
			if cancelled.Load() {
				after.Add(1)
			}
			if i == cancelAt {
				cancelled.Store(true)
				cancel()
			}
			return 0, true
		})
		cancel()
		if idx != -1 {
			t.Errorf("par %d: no unit fails, got index %d", par, idx)
		}
		bound := int64(Workers(par, n) * FailureChunk)
		if got := after.Load(); got > bound {
			t.Errorf("par %d: %d checks ran after cancellation, bound is %d", par, got, bound)
		}
	}
}

// TestFirstFailureCancelKeepsBestFailure: a failure recorded before the
// cancellation is still reported, and it is a genuine failing unit — a
// cancelled run returns partial results, not fabricated ones.
func TestFirstFailureCancelKeepsBestFailure(t *testing.T) {
	withProcs(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const failAt = 5
	idx, res := FirstFailure(ctx, 1<<20, 4, func(i int) (string, bool) {
		if i == failAt {
			cancel() // cancel as soon as the failure is found
			return "boom", false
		}
		return "", true
	})
	if idx != failAt || res != "boom" {
		t.Errorf("cancelled-after-failure FirstFailure = (%d, %q), want (%d, %q)", idx, res, failAt, "boom")
	}
	if ctx.Err() == nil {
		t.Error("context should report cancellation")
	}
}

// TestFirstFailureCancelNoGoroutineLeak: a cancelled parallel run leaves
// no workers behind. FirstFailure joins its pool before returning, so
// after a settling period the goroutine count is back to the baseline.
func TestFirstFailureCancelNoGoroutineLeak(t *testing.T) {
	withProcs(t, 4)
	baseline := runtime.NumGoroutine()
	for trial := 0; trial < 20; trial++ {
		ctx, cancel := context.WithCancel(context.Background())
		FirstFailure(ctx, 1<<20, 4, func(i int) (int, bool) {
			if i == 50 {
				cancel()
			}
			return 0, true
		})
		cancel()
	}
	// The pools are joined synchronously; allow the runtime a moment to
	// retire exited goroutines before comparing counts.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHoldsAllCancelled: the restriction fan-out built on FirstFailure
// inherits the cancellation semantics — an already-cancelled context
// reports no counterexample and the caller distinguishes "gave up" from
// "all hold" via ctx.Err().
func TestHoldsAllCancelled(t *testing.T) {
	withProcs(t, 4)
	c, _ := diamondComp(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	fs := []Formula{TrueF{}, FalseF{}, TrueF{}}
	for _, par := range []int{1, 4} {
		idx, cx := HoldsAll(fs, c, CheckOptions{Parallelism: par, Ctx: ctx})
		if idx != -1 || cx != nil {
			t.Errorf("par %d: cancelled HoldsAll = (%d, %v), want (-1, nil)", par, idx, cx)
		}
	}
	// Sanity: the same check without cancellation finds the failure at
	// the same index for every parallelism.
	for _, par := range []int{1, 4} {
		idx, cx := HoldsAll(fs, c, CheckOptions{Parallelism: par})
		if idx != 1 || cx == nil {
			t.Errorf("par %d: HoldsAll = (%d, %v), want (1, cx)", par, idx, cx)
		}
	}
}
