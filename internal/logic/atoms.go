package logic

import (
	"fmt"

	"gem/internal/core"
)

// TrueF is the formula that always holds.
type TrueF struct{}

// Eval implements Formula.
func (TrueF) Eval(*Env) bool { return true }
func (TrueF) String() string { return "true" }

// FalseF is the formula that never holds.
type FalseF struct{}

// Eval implements Formula.
func (FalseF) Eval(*Env) bool { return false }
func (FalseF) String() string { return "false" }

// Occurred asserts that the event bound to Var has occurred in the current
// history.
type Occurred struct{ Var string }

// Eval implements Formula.
func (f Occurred) Eval(env *Env) bool { return env.H.Has(mustEvent(env, f.Var)) }
func (f Occurred) String() string     { return fmt.Sprintf("occurred(%s)", f.Var) }

// AtElement asserts e @ EL: the event occurs at the named element.
type AtElement struct {
	Var     string
	Element string
}

// Eval implements Formula.
func (f AtElement) Eval(env *Env) bool {
	return env.C.Event(mustEvent(env, f.Var)).Element == f.Element
}
func (f AtElement) String() string { return fmt.Sprintf("%s @ %s", f.Var, f.Element) }

// InClass asserts that the bound event belongs to the referenced event
// class.
type InClass struct {
	Var string
	Ref core.ClassRef
}

// Eval implements Formula.
func (f InClass) Eval(env *Env) bool {
	return f.Ref.Matches(env.C.Event(mustEvent(env, f.Var)))
}
func (f InClass) String() string { return fmt.Sprintf("%s : %s", f.Var, f.Ref) }

// Enables asserts X ⊳ Y (direct enablement). Both events must have
// occurred for the relation to be observable within a history; outside a
// history context the structural relation is used.
type Enables struct{ X, Y string }

// Eval implements Formula.
func (f Enables) Eval(env *Env) bool {
	return env.C.EnablesDirect(mustEvent(env, f.X), mustEvent(env, f.Y))
}
func (f Enables) String() string { return fmt.Sprintf("%s |> %s", f.X, f.Y) }

// ElemOrdered asserts X ⇒ₑ Y (element order).
type ElemOrdered struct{ X, Y string }

// Eval implements Formula.
func (f ElemOrdered) Eval(env *Env) bool {
	return env.C.ElemBefore(mustEvent(env, f.X), mustEvent(env, f.Y))
}
func (f ElemOrdered) String() string { return fmt.Sprintf("%s =>el %s", f.X, f.Y) }

// Precedes asserts X ⇒ Y (temporal order).
type Precedes struct{ X, Y string }

// Eval implements Formula.
func (f Precedes) Eval(env *Env) bool {
	return env.C.Temporal(mustEvent(env, f.X), mustEvent(env, f.Y))
}
func (f Precedes) String() string { return fmt.Sprintf("%s => %s", f.X, f.Y) }

// ConcurrentWith asserts that X and Y are potentially concurrent.
type ConcurrentWith struct{ X, Y string }

// Eval implements Formula.
func (f ConcurrentWith) Eval(env *Env) bool {
	return env.C.Concurrent(mustEvent(env, f.X), mustEvent(env, f.Y))
}
func (f ConcurrentWith) String() string { return fmt.Sprintf("%s || %s", f.X, f.Y) }

// SameEvent asserts X = Y.
type SameEvent struct{ X, Y string }

// Eval implements Formula.
func (f SameEvent) Eval(env *Env) bool {
	return mustEvent(env, f.X) == mustEvent(env, f.Y)
}
func (f SameEvent) String() string { return fmt.Sprintf("%s = %s", f.X, f.Y) }

// CmpOp is a comparison operator for parameter values.
type CmpOp int

// Comparison operators.
const (
	OpEq CmpOp = iota + 1
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

func (op CmpOp) String() string {
	switch op {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	default:
		return "?"
	}
}

func (op CmpOp) apply(a, b core.Value) bool {
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpLt:
		return a.Less(b)
	case OpLe:
		return a == b || a.Less(b)
	case OpGt:
		return b.Less(a)
	case OpGe:
		return a == b || b.Less(a)
	default:
		return false
	}
}

// ParamCmp compares parameter P of event X against parameter Q of event Y,
// e.g. the paper's send.par1 = receive.par2. A missing parameter fails the
// comparison.
type ParamCmp struct {
	X, P string
	Op   CmpOp
	Y, Q string
}

// Eval implements Formula.
func (f ParamCmp) Eval(env *Env) bool {
	a := env.C.Event(mustEvent(env, f.X)).Params[f.P]
	b := env.C.Event(mustEvent(env, f.Y)).Params[f.Q]
	if a.IsZero() || b.IsZero() {
		return false
	}
	return f.Op.apply(a, b)
}
func (f ParamCmp) String() string {
	return fmt.Sprintf("%s.%s %s %s.%s", f.X, f.P, f.Op, f.Y, f.Q)
}

// ParamConst compares parameter P of event X against a constant.
type ParamConst struct {
	X, P string
	Op   CmpOp
	V    core.Value
}

// Eval implements Formula.
func (f ParamConst) Eval(env *Env) bool {
	a := env.C.Event(mustEvent(env, f.X)).Params[f.P]
	if a.IsZero() {
		return false
	}
	return f.Op.apply(a, f.V)
}
func (f ParamConst) String() string {
	return fmt.Sprintf("%s.%s %s %s", f.X, f.P, f.Op, f.V)
}

// New asserts the paper's new(e): e occurred and nothing has observably
// followed it in the current history.
type New struct{ Var string }

// Eval implements Formula.
func (f New) Eval(env *Env) bool { return env.H.New(mustEvent(env, f.Var)) }
func (f New) String() string     { return fmt.Sprintf("new(%s)", f.Var) }

// Potential asserts that the event could legally extend the current
// history (all temporal predecessors occurred; the event itself has not).
type Potential struct{ Var string }

// Eval implements Formula.
func (f Potential) Eval(env *Env) bool { return env.H.Potential(mustEvent(env, f.Var)) }
func (f Potential) String() string     { return fmt.Sprintf("potential(%s)", f.Var) }

// AtControl asserts the paper's "e at E2": e occurred and has not enabled
// an event of the referenced class within the current history.
type AtControl struct {
	Var string
	Ref core.ClassRef
}

// Eval implements Formula.
func (f AtControl) Eval(env *Env) bool {
	return env.H.At(mustEvent(env, f.Var), f.Ref)
}
func (f AtControl) String() string { return fmt.Sprintf("%s at %s", f.Var, f.Ref) }

// OnThread asserts that event X is labelled with the thread instance bound
// to thread variable T.
type OnThread struct {
	X string
	T string
}

// Eval implements Formula.
func (f OnThread) Eval(env *Env) bool {
	return env.C.Event(mustEvent(env, f.X)).HasThread(mustThread(env, f.T))
}
func (f OnThread) String() string { return fmt.Sprintf("%s in %s", f.X, f.T) }

// ThreadsDistinct asserts that two bound thread variables denote different
// thread instances.
type ThreadsDistinct struct{ T1, T2 string }

// Eval implements Formula.
func (f ThreadsDistinct) Eval(env *Env) bool {
	return mustThread(env, f.T1) != mustThread(env, f.T2)
}
func (f ThreadsDistinct) String() string { return fmt.Sprintf("%s != %s", f.T1, f.T2) }
