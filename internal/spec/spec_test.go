package spec

import (
	"strings"
	"testing"

	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/thread"
)

func sampleSpec(t *testing.T) *Spec {
	t.Helper()
	s := New("sample")
	varDecl, err := VariableType().Instantiate("Var")
	if err != nil {
		t.Fatal(err)
	}
	s.AddElement(varDecl)
	s.AddElement(&ElementDecl{
		Name: "control",
		Events: []EventClassDecl{
			{Name: "ReqRead"},
			{Name: "StartRead"},
		},
	})
	s.AddGroup(&GroupDecl{Name: "db", Members: []string{"Var", "control"}})
	s.AddRestriction("global-true", logic.TrueF{})
	s.AddThread(thread.Type{Name: "pi", Path: []core.ClassRef{
		core.Ref("control", "ReqRead"), core.Ref("control", "StartRead"),
	}})
	return s
}

func TestSpecAccessors(t *testing.T) {
	s := sampleSpec(t)
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if _, ok := s.Element("Var"); !ok {
		t.Error("Var should be declared")
	}
	if _, ok := s.Element("nope"); ok {
		t.Error("nope should not be declared")
	}
	if _, ok := s.Group("db"); !ok {
		t.Error("db group should be declared")
	}
	if got := s.ElementNames(); len(got) != 2 || got[0] != "Var" {
		t.Errorf("ElementNames = %v", got)
	}
	if got := s.GroupNames(); len(got) != 1 || got[0] != "db" {
		t.Errorf("GroupNames = %v", got)
	}
	if got := s.Threads(); len(got) != 1 || got[0].Name != "pi" {
		t.Errorf("Threads = %v", got)
	}
	d, _ := s.Element("Var")
	if _, ok := d.EventDecl("Assign"); !ok {
		t.Error("Assign should be declared at Var")
	}
	if _, ok := d.EventDecl("Nope"); ok {
		t.Error("Nope should not be declared")
	}
	ec, _ := d.EventDecl("Assign")
	if !ec.HasParam("newval") || ec.HasParam("zz") {
		t.Error("HasParam wrong")
	}
}

func TestSpecRestrictionsCollection(t *testing.T) {
	s := sampleSpec(t)
	rs := s.Restrictions()
	// global-true + Var.reads-last-assign.
	if len(rs) != 2 {
		t.Fatalf("Restrictions = %d entries, want 2", len(rs))
	}
	owners := map[string]bool{}
	for _, r := range rs {
		owners[r.Owner] = true
	}
	if !owners["sample"] || !owners["Var"] {
		t.Errorf("owners = %v", owners)
	}
}

func TestSpecUniverse(t *testing.T) {
	s := sampleSpec(t)
	u, err := s.Universe()
	if err != nil {
		t.Fatal(err)
	}
	if !u.HasElement("Var") || !u.HasGroup("db") {
		t.Error("universe missing declarations")
	}
	if !u.Access("Var", "control") {
		t.Error("group siblings must access each other")
	}
}

func TestSpecValidateErrors(t *testing.T) {
	t.Run("duplicate event class", func(t *testing.T) {
		s := New("bad")
		s.AddElement(&ElementDecl{Name: "E", Events: []EventClassDecl{{Name: "A"}, {Name: "A"}}})
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "twice") {
			t.Errorf("want duplicate-class error, got %v", err)
		}
	})
	t.Run("unknown group member", func(t *testing.T) {
		s := New("bad")
		s.AddGroup(&GroupDecl{Name: "G", Members: []string{"ghost"}})
		if err := s.Validate(); err == nil {
			t.Error("want unknown-member error")
		}
	})
	t.Run("thread references unknown element", func(t *testing.T) {
		s := New("bad")
		s.AddThread(thread.Type{Name: "pi", Path: []core.ClassRef{core.Ref("ghost", "X")}})
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown element") {
			t.Errorf("want unknown-element error, got %v", err)
		}
	})
	t.Run("thread references unknown class", func(t *testing.T) {
		s := New("bad")
		s.AddElement(&ElementDecl{Name: "E", Events: []EventClassDecl{{Name: "A"}}})
		s.AddThread(thread.Type{Name: "pi", Path: []core.ClassRef{core.Ref("E", "Z")}})
		if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "unknown class") {
			t.Errorf("want unknown-class error, got %v", err)
		}
	})
	t.Run("unqualified thread refs allowed", func(t *testing.T) {
		s := New("ok")
		s.AddThread(thread.Type{Name: "pi", Path: []core.ClassRef{core.Ref("", "Read")}})
		if err := s.Validate(); err != nil {
			t.Errorf("unqualified refs should validate: %v", err)
		}
	})
}

func TestVariableTypeInstantiation(t *testing.T) {
	d, err := VariableType().Instantiate("Counter")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "Counter" || d.TypeName != "Variable" {
		t.Errorf("decl = %+v", d)
	}
	if len(d.Events) != 2 || len(d.Restrictions) != 1 {
		t.Errorf("events=%d restrictions=%d", len(d.Events), len(d.Restrictions))
	}
	if d.Restrictions[0].Name != "Counter.reads-last-assign" {
		t.Errorf("restriction name = %s", d.Restrictions[0].Name)
	}

	// The restriction must actually reference the instance's element.
	b := core.NewBuilder()
	b.Event("Counter", "Assign", core.Params{"newval": core.Int(5)})
	b.Event("Counter", "Getval", core.Params{"oldval": core.Int(9)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cx := logic.Holds(d.Restrictions[0].F, c, logic.CheckOptions{}); cx == nil {
		t.Error("stale read at the instance element must be refuted")
	}
}

func TestTypedVariableRefinement(t *testing.T) {
	tv := TypedVariableType()
	d, err := tv.Instantiate("Var", "INTEGER")
	if err != nil {
		t.Fatal(err)
	}
	if d.Events[0].Params[0].Type != "INTEGER" {
		t.Errorf("parameter type not substituted: %+v", d.Events[0].Params)
	}
	if _, err := tv.Instantiate("Var"); err == nil {
		t.Error("arity mismatch must be rejected")
	}
}

func TestElementTypeRefine(t *testing.T) {
	base := VariableType()
	refined := base.Refine("LoggedVariable",
		[]EventClassDecl{{Name: "Log"}},
		func(name string, _ map[string]string) []Restriction {
			return []Restriction{{Name: name + ".extra", F: logic.TrueF{}}}
		})
	d, err := refined.Instantiate("LV")
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Events) != 3 {
		t.Errorf("refined events = %d, want 3", len(d.Events))
	}
	if len(d.Restrictions) != 2 {
		t.Errorf("refined restrictions = %d, want 2 (base + extra)", len(d.Restrictions))
	}
	if d.TypeName != "LoggedVariable" {
		t.Errorf("TypeName = %s", d.TypeName)
	}
}

func TestGroupTypeInstantiate(t *testing.T) {
	gt := GroupType{
		Name:    "Monitor",
		Members: []string{"lock", "entry"},
		Ports:   []PortTemplate{{Element: "lock", Class: "Req"}},
		Restrictions: func(name string, _ map[string]string) []Restriction {
			return []Restriction{{Name: name + ".r", F: logic.TrueF{}}}
		},
	}
	inst, err := gt.Instantiate("rw")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Decl.Name != "rw" || inst.Decl.TypeName != "Monitor" {
		t.Errorf("group decl = %+v", inst.Decl)
	}
	if got := inst.MemberNames["lock"]; got != "rw.lock" {
		t.Errorf("member name = %s, want rw.lock", got)
	}
	if len(inst.Decl.Ports) != 1 || inst.Decl.Ports[0].Element != "rw.lock" {
		t.Errorf("ports = %v", inst.Decl.Ports)
	}
	if len(inst.Decl.Restrictions) != 1 {
		t.Errorf("restrictions = %d", len(inst.Decl.Restrictions))
	}
}

func TestGroupTypePortMustReferenceMember(t *testing.T) {
	gt := GroupType{
		Name:    "Bad",
		Members: []string{"a"},
		Ports:   []PortTemplate{{Element: "ghost", Class: "X"}},
	}
	if _, err := gt.Instantiate("g"); err == nil {
		t.Error("port referencing a non-member must fail")
	}
}

func TestGroupTypeCustomMemberName(t *testing.T) {
	gt := GroupType{
		Name:       "Flat",
		Members:    []string{"shared"},
		MemberName: func(_, member string) string { return member },
	}
	inst, err := gt.Instantiate("g1")
	if err != nil {
		t.Fatal(err)
	}
	if inst.Decl.Members[0] != "shared" {
		t.Errorf("custom member naming ignored: %v", inst.Decl.Members)
	}
}

func TestGetvalNeedsAssign(t *testing.T) {
	b := core.NewBuilder()
	b.Event("V", "Getval", core.Params{"oldval": core.Int(0)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cx := logic.Holds(GetvalNeedsAssign("V"), c, logic.CheckOptions{}); cx == nil {
		t.Error("Getval without a prior Assign must be refuted")
	}
}
