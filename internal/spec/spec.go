// Package spec implements GEM specifications: element and group
// declarations with their event classes and explicit restrictions, thread
// types, and the GEM type-description facility (element/group types with
// parameters and refinement). A Spec is the IR the legality checker and
// the verification machinery consume; the gemlang package parses the
// paper's concrete syntax into this IR.
package spec

import (
	"fmt"
	"sort"

	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/thread"
)

// ParamDecl declares a named, typed event parameter, e.g. newval:INTEGER.
// Types are uninterpreted names; the legality checker only checks
// presence, not a type system (the paper's types are descriptive).
type ParamDecl struct {
	Name string
	Type string
}

// EventClassDecl declares an event class of an element.
type EventClassDecl struct {
	Name   string
	Params []ParamDecl
}

// HasParam reports whether the class declares the named parameter.
func (d EventClassDecl) HasParam(name string) bool {
	for _, p := range d.Params {
		if p.Name == name {
			return true
		}
	}
	return false
}

// Restriction is a named logic formula attached to an element, group, or
// the specification as a whole.
type Restriction struct {
	Name string
	F    logic.Formula
}

// ElementDecl declares one element: its event classes and restrictions.
type ElementDecl struct {
	Name         string
	TypeName     string // element type it was instantiated from, if any
	Events       []EventClassDecl
	Restrictions []Restriction
}

// EventDecl returns the declaration of the named event class, if any.
func (d *ElementDecl) EventDecl(class string) (EventClassDecl, bool) {
	for _, ec := range d.Events {
		if ec.Name == class {
			return ec, true
		}
	}
	return EventClassDecl{}, false
}

// GroupDecl declares one group: its members (element or group names),
// ports, and restrictions.
type GroupDecl struct {
	Name         string
	TypeName     string
	Members      []string
	Ports        []core.Port
	Restrictions []Restriction
}

// Spec is a complete GEM specification.
type Spec struct {
	Name     string
	elements map[string]*ElementDecl
	groups   map[string]*GroupDecl
	global   []Restriction
	threads  []thread.Type
}

// New returns an empty specification.
func New(name string) *Spec {
	return &Spec{
		Name:     name,
		elements: make(map[string]*ElementDecl),
		groups:   make(map[string]*GroupDecl),
	}
}

// AddElement adds an element declaration, replacing any previous one of
// the same name.
func (s *Spec) AddElement(d *ElementDecl) { s.elements[d.Name] = d }

// AddGroup adds a group declaration.
func (s *Spec) AddGroup(d *GroupDecl) { s.groups[d.Name] = d }

// AddRestriction attaches a specification-level restriction.
func (s *Spec) AddRestriction(name string, f logic.Formula) {
	s.global = append(s.global, Restriction{Name: name, F: f})
}

// AddThread declares a thread type (or an alternative path of an existing
// one).
func (s *Spec) AddThread(t thread.Type) { s.threads = append(s.threads, t) }

// Element returns the named element declaration.
func (s *Spec) Element(name string) (*ElementDecl, bool) {
	d, ok := s.elements[name]
	return d, ok
}

// Group returns the named group declaration.
func (s *Spec) Group(name string) (*GroupDecl, bool) {
	d, ok := s.groups[name]
	return d, ok
}

// ElementNames returns the declared element names, sorted.
func (s *Spec) ElementNames() []string {
	out := make([]string, 0, len(s.elements))
	for n := range s.elements {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// GroupNames returns the declared group names, sorted.
func (s *Spec) GroupNames() []string {
	out := make([]string, 0, len(s.groups))
	for n := range s.groups {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Threads returns the declared thread types.
func (s *Spec) Threads() []thread.Type { return s.threads }

// ClassPairs returns every declared (element, event-class) pair as a
// fully qualified class reference, sorted by element then class. This is
// the node set of the deep analyzer's abstract enable graph.
func (s *Spec) ClassPairs() []core.ClassRef {
	var out []core.ClassRef
	for _, name := range s.ElementNames() {
		d := s.elements[name]
		for _, ec := range d.Events {
			out = append(out, core.Ref(name, ec.Name))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Element != out[j].Element {
			return out[i].Element < out[j].Element
		}
		return out[i].Class < out[j].Class
	})
	return out
}

// Restrictions returns all restrictions — global, element-level, and
// group-level — each tagged with its owner, in deterministic order.
func (s *Spec) Restrictions() []OwnedRestriction {
	var out []OwnedRestriction
	for _, r := range s.global {
		out = append(out, OwnedRestriction{Owner: s.Name, Restriction: r})
	}
	for _, name := range s.ElementNames() {
		for _, r := range s.elements[name].Restrictions {
			out = append(out, OwnedRestriction{Owner: name, Restriction: r})
		}
	}
	for _, name := range s.GroupNames() {
		for _, r := range s.groups[name].Restrictions {
			out = append(out, OwnedRestriction{Owner: name, Restriction: r})
		}
	}
	return out
}

// OwnedRestriction is a restriction together with the element/group/spec
// that declared it.
type OwnedRestriction struct {
	Owner string
	Restriction
}

// Universe builds the group/element universe for access checking.
func (s *Spec) Universe() (*core.Universe, error) {
	u := core.NewUniverse()
	for name := range s.elements {
		u.AddElement(name)
	}
	for name, g := range s.groups {
		u.AddGroup(name, g.Members...)
		for _, p := range g.Ports {
			u.AddPort(name, p.Element, p.Class)
		}
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

// Validate checks internal consistency: group members reference declared
// names, event classes are uniquely named per element, thread paths
// reference declared classes.
func (s *Spec) Validate() error {
	for name, d := range s.elements {
		seen := make(map[string]bool)
		for _, ec := range d.Events {
			if seen[ec.Name] {
				return fmt.Errorf("spec: element %s declares event class %s twice", name, ec.Name)
			}
			seen[ec.Name] = true
		}
	}
	if _, err := s.Universe(); err != nil {
		return err
	}
	for _, tt := range s.threads {
		for _, ref := range tt.Path {
			if ref.Element == "" {
				continue // unqualified refs are checked per computation
			}
			d, ok := s.elements[ref.Element]
			if !ok {
				return fmt.Errorf("spec: thread %s references unknown element %s", tt.Name, ref.Element)
			}
			if ref.Class != "" {
				if _, ok := d.EventDecl(ref.Class); !ok {
					return fmt.Errorf("spec: thread %s references unknown class %s.%s", tt.Name, ref.Element, ref.Class)
				}
			}
		}
	}
	return nil
}
