package spec

import (
	"gem/internal/core"
	"gem/internal/logic"
)

// This file provides the paper's stock element types, ready to
// instantiate: the generic Variable (Section 8.2) and its typed
// refinement (Section 6).

// VariableType returns the paper's Variable element type: Assign/Getval
// event classes plus the restriction that a Getval yields the value last
// assigned (and that some Assign precedes any Getval).
func VariableType() ElementType {
	return ElementType{
		Name: "Variable",
		Events: []EventClassDecl{
			{Name: "Assign", Params: []ParamDecl{{Name: "newval", Type: "VALUE"}}},
			{Name: "Getval", Params: []ParamDecl{{Name: "oldval", Type: "VALUE"}}},
		},
		Restrictions: func(name string, _ map[string]string) []Restriction {
			return []Restriction{{
				Name: name + ".reads-last-assign",
				F:    ReadsLastAssign(name),
			}}
		},
	}
}

// TypedVariableType returns the paper's TypedVariable(t) refinement of
// Variable: same structure, with the parameter type recorded as t.
func TypedVariableType() ElementType {
	base := VariableType()
	t := base
	t.Name = "TypedVariable"
	t.Params = []string{"t"}
	t.Events = []EventClassDecl{
		{Name: "Assign", Params: []ParamDecl{{Name: "newval", Type: "t"}}},
		{Name: "Getval", Params: []ParamDecl{{Name: "oldval", Type: "t"}}},
	}
	return t
}

// ReadsLastAssign builds the paper's Variable restriction for the named
// element: for every Assign a and Getval g at the element with a before g
// in the element order and no intervening Assign, a.newval = g.oldval.
func ReadsLastAssign(element string) logic.Formula {
	assign := core.Ref(element, "Assign")
	getval := core.Ref(element, "Getval")
	noIntervening := logic.Not{F: logic.Exists{
		Var: "_a2", Ref: assign,
		Body: logic.And{
			logic.ElemOrdered{X: "_a", Y: "_a2"},
			logic.ElemOrdered{X: "_a2", Y: "_g"},
		},
	}}
	return logic.ForAll{
		Var: "_a", Ref: assign,
		Body: logic.ForAll{
			Var: "_g", Ref: getval,
			Body: logic.Implies{
				If:   logic.And{logic.ElemOrdered{X: "_a", Y: "_g"}, noIntervening},
				Then: logic.ParamCmp{X: "_a", P: "newval", Op: logic.OpEq, Y: "_g", Q: "oldval"},
			},
		},
	}
}

// GetvalNeedsAssign builds the companion restriction that every Getval is
// preceded by at least one Assign (so reads are never undefined).
func GetvalNeedsAssign(element string) logic.Formula {
	return logic.ForAll{
		Var: "_g", Ref: core.Ref(element, "Getval"),
		Body: logic.Exists{
			Var: "_a", Ref: core.Ref(element, "Assign"),
			Body: logic.ElemOrdered{X: "_a", Y: "_g"},
		},
	}
}

func portOf(element, class string) core.Port {
	return core.Port{Element: element, Class: class}
}

// AdminElementDecl declares the dynamic group-structure admin element
// (core.AdminElement) with its AddMember/RemoveMember event classes. Add
// it to a specification to permit dynamic group changes in computations.
func AdminElementDecl() *ElementDecl {
	params := []ParamDecl{{Name: "group", Type: "NAME"}, {Name: "member", Type: "NAME"}}
	return &ElementDecl{
		Name: core.AdminElement,
		Events: []EventClassDecl{
			{Name: core.AddMemberClass, Params: params},
			{Name: core.RemoveMemberClass, Params: params},
		},
	}
}
