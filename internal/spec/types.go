package spec

import "fmt"

// This file implements the GEM type-description facility (Section 6 of the
// paper) at the IR level. The paper gives types pure text-substitution
// semantics; the gemlang parser implements exactly that for the concrete
// syntax. Programmatic specifications use the equivalent mechanism below:
// a type holds a template and instantiation stamps out a declaration,
// applying the instance name and arguments through a restriction factory.

// RestrictionFactory builds the restrictions of a type instance. It
// receives the instance's element (or group) name and the type arguments,
// so formulas can reference the instance's own event classes.
type RestrictionFactory func(instanceName string, args map[string]string) []Restriction

// ElementType is a reusable element description.
type ElementType struct {
	Name         string
	Params       []string // formal parameter names, e.g. "t" in TypedVariable(t:TYPE)
	Events       []EventClassDecl
	Restrictions RestrictionFactory
}

// Instantiate stamps out an element declaration named instanceName. Args
// are matched positionally against the type's formal parameters; a
// mismatch is an error.
func (t ElementType) Instantiate(instanceName string, args ...string) (*ElementDecl, error) {
	bound, err := bindArgs(t.Name, t.Params, args)
	if err != nil {
		return nil, err
	}
	d := &ElementDecl{
		Name:     instanceName,
		TypeName: t.Name,
		Events:   cloneEvents(t.Events, bound),
	}
	if t.Restrictions != nil {
		d.Restrictions = t.Restrictions(instanceName, bound)
	}
	return d, nil
}

// Refine produces a new element type derived from t: extra event classes
// are appended and extra restrictions are conjoined — the paper's
// "/ADD …" refinement. The refined type keeps t's formal parameters.
func (t ElementType) Refine(name string, extraEvents []EventClassDecl, extra RestrictionFactory) ElementType {
	base := t.Restrictions
	return ElementType{
		Name:   name,
		Params: t.Params,
		Events: append(append([]EventClassDecl(nil), t.Events...), extraEvents...),
		Restrictions: func(instanceName string, args map[string]string) []Restriction {
			var out []Restriction
			if base != nil {
				out = append(out, base(instanceName, args)...)
			}
			if extra != nil {
				out = append(out, extra(instanceName, args)...)
			}
			return out
		},
	}
}

// GroupType is a reusable group description. Members is a template of
// member names; MakeMembers may rewrite them per instance (e.g. prefixing
// the instance name for nested scoping).
type GroupType struct {
	Name         string
	Params       []string
	Members      []string
	Ports        []PortTemplate
	Restrictions RestrictionFactory
	// MemberName maps a template member name to the instance's member
	// name. Defaults to "<instance>.<member>" which gives each instance
	// its own copies of its members.
	MemberName func(instanceName, member string) string
}

// PortTemplate is a port declaration within a group type; Element refers
// to a template member name.
type PortTemplate struct {
	Element string
	Class   string
}

// GroupInstance is the result of instantiating a group type: the group
// declaration plus the instance-specific member names (so the caller can
// instantiate member element types under those names).
type GroupInstance struct {
	Decl *GroupDecl
	// MemberNames maps each template member to its per-instance name.
	MemberNames map[string]string
}

// Instantiate stamps out a group instance.
func (t GroupType) Instantiate(instanceName string, args ...string) (*GroupInstance, error) {
	bound, err := bindArgs(t.Name, t.Params, args)
	if err != nil {
		return nil, err
	}
	nameOf := t.MemberName
	if nameOf == nil {
		nameOf = func(inst, member string) string { return inst + "." + member }
	}
	inst := &GroupInstance{
		Decl:        &GroupDecl{Name: instanceName, TypeName: t.Name},
		MemberNames: make(map[string]string, len(t.Members)),
	}
	for _, m := range t.Members {
		name := nameOf(instanceName, substitute(m, bound))
		inst.MemberNames[m] = name
		inst.Decl.Members = append(inst.Decl.Members, name)
	}
	for _, p := range t.Ports {
		elem, ok := inst.MemberNames[p.Element]
		if !ok {
			return nil, fmt.Errorf("spec: group type %s port references non-member %s", t.Name, p.Element)
		}
		inst.Decl.Ports = append(inst.Decl.Ports, portOf(elem, p.Class))
	}
	if t.Restrictions != nil {
		inst.Decl.Restrictions = t.Restrictions(instanceName, bound)
	}
	return inst, nil
}

func bindArgs(typeName string, params, args []string) (map[string]string, error) {
	if len(args) != len(params) {
		return nil, fmt.Errorf("spec: type %s expects %d arguments, got %d", typeName, len(params), len(args))
	}
	bound := make(map[string]string, len(params))
	for i, p := range params {
		bound[p] = args[i]
	}
	return bound, nil
}

// substitute applies the paper's text-substitution semantics to a single
// identifier: if the identifier is a formal parameter, it is replaced by
// the argument.
func substitute(ident string, bound map[string]string) string {
	if v, ok := bound[ident]; ok {
		return v
	}
	return ident
}

func cloneEvents(events []EventClassDecl, bound map[string]string) []EventClassDecl {
	out := make([]EventClassDecl, len(events))
	for i, ec := range events {
		params := make([]ParamDecl, len(ec.Params))
		for j, p := range ec.Params {
			params[j] = ParamDecl{Name: p.Name, Type: substitute(p.Type, bound)}
		}
		out[i] = EventClassDecl{Name: ec.Name, Params: params}
	}
	return out
}
