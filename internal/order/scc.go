package order

// SCC returns the strongly connected components of the graph (which,
// despite the type's name, may be cyclic — DAG is the repo's adjacency
// representation). Components are returned with vertices sorted
// ascending, ordered by their smallest vertex, so the output is
// deterministic regardless of edge insertion order. Every vertex appears
// in exactly one component; vertices on no cycle form singletons.
//
// The implementation is an iterative Tarjan (explicit stacks, no
// recursion), so it is safe on the large wait-for graphs the deep
// analyzer builds for specifications with many element/class pairs.
func (d *DAG) SCC() [][]int {
	const unvisited = -1
	index := make([]int, d.n)
	low := make([]int, d.n)
	onStack := make([]bool, d.n)
	for v := range index {
		index[v] = unvisited
	}
	var stack []int
	next := 0
	var comps [][]int

	type frame struct {
		v  int
		ei int // next adjacency index to explore
	}
	for root := 0; root < d.n; root++ {
		if index[root] != unvisited {
			continue
		}
		work := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.ei < len(d.adj[f.v]) {
				w := d.adj[f.v][f.ei]
				f.ei++
				if index[w] == unvisited {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					work = append(work, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			// f.v is fully explored: pop it, propagate its lowlink, and
			// emit a component if it is a root.
			v := f.v
			work = work[:len(work)-1]
			if len(work) > 0 && low[v] < low[work[len(work)-1].v] {
				low[work[len(work)-1].v] = low[v]
			}
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				// Tarjan pops in reverse discovery order; sort for a
				// canonical presentation.
				for i, j := 0, len(comp)-1; i < j; i, j = i+1, j-1 {
					comp[i], comp[j] = comp[j], comp[i]
				}
				insertSorted(comp)
				comps = append(comps, comp)
			}
		}
	}
	// Tarjan emits components in reverse topological order; present them
	// by smallest member instead (stable across edge orderings).
	for i := 0; i < len(comps); i++ {
		for j := i + 1; j < len(comps); j++ {
			if comps[j][0] < comps[i][0] {
				comps[i], comps[j] = comps[j], comps[i]
			}
		}
	}
	return comps
}

// insertSorted sorts a small int slice in place (components are tiny;
// insertion sort avoids an import for the hot empty/singleton cases).
func insertSorted(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
