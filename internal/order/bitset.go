// Package order provides partial-order machinery used throughout the GEM
// toolkit: compact bitsets over event indices, DAG reachability (transitive
// closure), topological sorting, and enumeration of linear extensions and
// antichains. These are the computational substrate for GEM's temporal
// order, histories, and valid history sequences.
package order

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Bitset is a fixed-capacity set of small non-negative integers. The zero
// value is an empty set of capacity zero; use NewBitset to size it.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// NewBitset returns an empty set able to hold values in [0, n).
func NewBitset(n int) Bitset {
	if n < 0 {
		n = 0
	}
	return Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// Cap reports the capacity the set was created with.
func (b Bitset) Cap() int { return b.n }

// Set adds i to the set. It panics if i is out of range, since that always
// indicates a logic error in the caller.
func (b Bitset) Set(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("order: Bitset.Set(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear removes i from the set.
func (b Bitset) Clear(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("order: Bitset.Clear(%d) out of range [0,%d)", i, b.n))
	}
	b.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports whether i is in the set. Out-of-range values are never
// members.
func (b Bitset) Has(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	return b.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of members.
func (b Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Empty reports whether the set has no members.
func (b Bitset) Empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (b Bitset) Clone() Bitset {
	out := Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// OrWith adds every member of other to b. The sets must have equal capacity.
func (b Bitset) OrWith(other Bitset) {
	b.mustMatch(other)
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// AndWith removes from b every value not in other.
func (b Bitset) AndWith(other Bitset) {
	b.mustMatch(other)
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// AndNotWith removes from b every member of other.
func (b Bitset) AndNotWith(other Bitset) {
	b.mustMatch(other)
	for i := range b.words {
		b.words[i] &^= other.words[i]
	}
}

// CopyFrom overwrites b's members with other's. The sets must have equal
// capacity. Unlike Clone it reuses b's storage, so hot loops can keep one
// scratch set instead of allocating per iteration.
func (b Bitset) CopyFrom(other Bitset) {
	b.mustMatch(other)
	copy(b.words, other.words)
}

// Reset removes every member, reusing the storage.
func (b Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Fill adds every value in [0, Cap()) to the set. Bits beyond the
// capacity stay clear so Count and ForEach remain exact.
func (b Bitset) Fill() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if tail := b.n % wordBits; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] = (1 << uint(tail)) - 1
	}
}

// FlipAll replaces the set with its complement over [0, Cap()), reusing
// the storage. Bits beyond the capacity stay clear, like Fill.
func (b Bitset) FlipAll() {
	for i := range b.words {
		b.words[i] = ^b.words[i]
	}
	if tail := b.n % wordBits; tail != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << uint(tail)) - 1
	}
}

// Equal reports whether the two sets have the same members.
func (b Bitset) Equal(other Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != other.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every member of b is a member of other.
func (b Bitset) SubsetOf(other Bitset) bool {
	b.mustMatch(other)
	for i := range b.words {
		if b.words[i]&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether b and other share at least one member.
func (b Bitset) Intersects(other Bitset) bool {
	b.mustMatch(other)
	for i := range b.words {
		if b.words[i]&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every member in increasing order. If fn returns
// false, iteration stops early.
func (b Bitset) ForEach(fn func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the members in increasing order.
func (b Bitset) Members() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// Key returns a string usable as a map key identifying the set contents.
func (b Bitset) Key() string {
	var sb strings.Builder
	sb.Grow(len(b.words) * 8)
	for _, w := range b.words {
		for shift := 0; shift < wordBits; shift += 8 {
			sb.WriteByte(byte(w >> uint(shift)))
		}
	}
	return sb.String()
}

// String renders the set as {a, b, c}.
func (b Bitset) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	b.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d", i)
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

// IsClique reports whether every pair of distinct members of set is
// related under the symmetric relation rows, where rows[v] is the set of
// partners of v. Empty and singleton sets are cliques. In GEM terms, with
// rows the per-event concurrency rows of a computation, it decides in
// O(|set| × words) whether a step's delta is pairwise potentially
// concurrent — replacing the O(|delta|²) member-pair loop.
func IsClique(rows []Bitset, set Bitset) bool {
	clique := true
	set.ForEach(func(v int) bool {
		row := rows[v]
		for i, w := range set.words {
			rem := w &^ row.words[i]
			if i == v/wordBits {
				rem &^= 1 << (uint(v) % wordBits)
			}
			if rem != 0 {
				clique = false
				return false
			}
		}
		return true
	})
	return clique
}

func (b Bitset) mustMatch(other Bitset) {
	if b.n != other.n {
		panic(fmt.Sprintf("order: bitset capacity mismatch %d != %d", b.n, other.n))
	}
}
