package order

import (
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// diamond builds the paper's Section 7 example: e1 enables e2 and e3, each
// of which enables e4 (vertex i = event e(i+1)).
func diamond() *DAG {
	d := NewDAG(4)
	d.AddEdge(0, 1)
	d.AddEdge(0, 2)
	d.AddEdge(1, 3)
	d.AddEdge(2, 3)
	return d
}

func TestTopoSortDiamond(t *testing.T) {
	topo, err := diamond().TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range topo {
		pos[v] = i
	}
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violated by topo order %v", e, topo)
		}
	}
}

func TestTopoSortCycle(t *testing.T) {
	d := NewDAG(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(2, 0)
	if _, err := d.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Errorf("want ErrCycle, got %v", err)
	}
	if _, err := d.TransitiveClosure(); !errors.Is(err, ErrCycle) {
		t.Errorf("closure: want ErrCycle, got %v", err)
	}
}

func TestSelfLoopIsCycle(t *testing.T) {
	d := NewDAG(2)
	d.AddEdge(0, 0)
	if _, err := d.TopoSort(); !errors.Is(err, ErrCycle) {
		t.Errorf("self loop: want ErrCycle, got %v", err)
	}
}

func TestDuplicateEdgeIgnored(t *testing.T) {
	d := NewDAG(2)
	d.AddEdge(0, 1)
	d.AddEdge(0, 1)
	if got := len(d.Successors(0)); got != 1 {
		t.Errorf("duplicate edge stored: %d successors", got)
	}
}

func TestTransitiveClosureDiamond(t *testing.T) {
	reach, err := diamond().TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{
		{1, 2, 3}, // from e1
		{3},       // from e2
		{3},       // from e3
		{},        // from e4
	}
	for v, members := range want {
		got := reach[v].Members()
		if len(members) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, members) {
			t.Errorf("reach[%d] = %v, want %v", v, got, members)
		}
	}
}

func TestInvert(t *testing.T) {
	reach, err := diamond().TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	preds := Invert(reach)
	if got, want := preds[3].Members(), []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("preds[3] = %v, want %v", got, want)
	}
	if !preds[0].Empty() {
		t.Errorf("preds[0] = %v, want empty", preds[0].Members())
	}
}

func TestLinearExtensionsDiamond(t *testing.T) {
	reach, err := diamond().TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	var exts [][]int
	n := LinearExtensions(reach, 0, func(ext []int) bool {
		cp := make([]int, len(ext))
		copy(cp, ext)
		exts = append(exts, cp)
		return true
	})
	// The diamond has exactly two linear extensions.
	if n != 2 || len(exts) != 2 {
		t.Fatalf("got %d extensions, want 2", n)
	}
	sort.Slice(exts, func(i, j int) bool { return exts[i][1] < exts[j][1] })
	if !reflect.DeepEqual(exts[0], []int{0, 1, 2, 3}) || !reflect.DeepEqual(exts[1], []int{0, 2, 1, 3}) {
		t.Errorf("extensions = %v", exts)
	}
}

func TestLinearExtensionsLimit(t *testing.T) {
	// Antichain of 5 vertices: 5! = 120 extensions; limit caps it.
	reach := make([]Bitset, 5)
	for i := range reach {
		reach[i] = NewBitset(5)
	}
	n := LinearExtensions(reach, 7, func([]int) bool { return true })
	if n != 7 {
		t.Errorf("limited enumeration produced %d, want 7", n)
	}
	n = LinearExtensions(reach, 0, func([]int) bool { return true })
	if n != 120 {
		t.Errorf("full enumeration produced %d, want 120", n)
	}
}

func TestLinearExtensionsEarlyStop(t *testing.T) {
	reach := make([]Bitset, 4)
	for i := range reach {
		reach[i] = NewBitset(4)
	}
	calls := 0
	LinearExtensions(reach, 0, func([]int) bool {
		calls++
		return calls < 3
	})
	if calls != 3 {
		t.Errorf("early stop after %d calls, want 3", calls)
	}
}

func TestAntichainsDiamond(t *testing.T) {
	reach, err := diamond().TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	cmp := func(u, v int) bool { return reach[u].Has(v) || reach[v].Has(u) }
	var chains [][]int
	Antichains([]int{0, 1, 2, 3}, cmp, func(chain []int) bool {
		cp := make([]int, len(chain))
		copy(cp, chain)
		chains = append(chains, cp)
		return true
	})
	// Non-empty antichains of the diamond: {0},{1},{2},{3},{1,2}.
	if len(chains) != 5 {
		t.Fatalf("got %d antichains (%v), want 5", len(chains), chains)
	}
	found := false
	for _, ch := range chains {
		if reflect.DeepEqual(ch, []int{1, 2}) {
			found = true
		}
	}
	if !found {
		t.Error("antichain {1,2} (the concurrent pair e2,e3) not found")
	}
}

func TestCoveringEdges(t *testing.T) {
	// Chain 0->1->2 plus redundant transitive edge 0->2.
	d := NewDAG(3)
	d.AddEdge(0, 1)
	d.AddEdge(1, 2)
	d.AddEdge(0, 2)
	reach, err := d.TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	cov := CoveringEdges(reach)
	want := [][2]int{{0, 1}, {1, 2}}
	if !reflect.DeepEqual(cov, want) {
		t.Errorf("covering edges = %v, want %v", cov, want)
	}
}

// randomDAG builds a DAG by only adding forward edges in a random vertex
// permutation, guaranteeing acyclicity.
func randomDAG(rng *rand.Rand, n int, p float64) *DAG {
	perm := rng.Perm(n)
	d := NewDAG(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				d.AddEdge(perm[i], perm[j])
			}
		}
	}
	return d
}

// Property: the transitive closure is transitive and irreflexive — the GEM
// legality requirement on the temporal order.
func TestQuickClosureIsStrictPartialOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		d := randomDAG(rng, n, 0.3)
		reach, err := d.TransitiveClosure()
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			if reach[u].Has(u) {
				return false // not irreflexive
			}
			ok := true
			reach[u].ForEach(func(v int) bool {
				if !reach[v].SubsetOf(reach[u]) {
					ok = false
					return false
				}
				return true
			})
			if !ok {
				return false // not transitive
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every linear extension respects the partial order.
func TestQuickLinearExtensionsRespectOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		d := randomDAG(rng, n, 0.4)
		reach, err := d.TransitiveClosure()
		if err != nil {
			return false
		}
		ok := true
		LinearExtensions(reach, 50, func(ext []int) bool {
			pos := make([]int, n)
			for i, v := range ext {
				pos[v] = i
			}
			for u := 0; u < n; u++ {
				reach[u].ForEach(func(v int) bool {
					if pos[u] >= pos[v] {
						ok = false
						return false
					}
					return true
				})
			}
			return ok
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReachesDFSMatchesClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		d := randomDAG(rng, n, 0.3)
		reach, err := d.TransitiveClosure()
		if err != nil {
			return false
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if d.ReachesDFS(u, v) != reach[u].Has(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestReachesDFSSelf(t *testing.T) {
	d := NewDAG(2)
	d.AddEdge(0, 1)
	if d.ReachesDFS(0, 0) {
		t.Error("strict reachability excludes the vertex itself")
	}
}
