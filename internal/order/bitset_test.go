package order

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if !b.Empty() {
		t.Fatal("new bitset should be empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 128, 129} {
		b.Set(i)
		if !b.Has(i) {
			t.Errorf("Has(%d) = false after Set", i)
		}
	}
	if got := b.Count(); got != 7 {
		t.Errorf("Count = %d, want 7", got)
	}
	b.Clear(64)
	if b.Has(64) {
		t.Error("Has(64) = true after Clear")
	}
	if got := b.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	want := []int{0, 1, 63, 65, 128, 129}
	if got := b.Members(); !reflect.DeepEqual(got, want) {
		t.Errorf("Members = %v, want %v", got, want)
	}
}

func TestBitsetOutOfRange(t *testing.T) {
	b := NewBitset(10)
	if b.Has(-1) || b.Has(10) || b.Has(100) {
		t.Error("out-of-range Has should be false")
	}
	assertPanics(t, func() { b.Set(10) })
	assertPanics(t, func() { b.Set(-1) })
	assertPanics(t, func() { b.Clear(10) })
}

func TestBitsetZeroCapacity(t *testing.T) {
	b := NewBitset(0)
	if !b.Empty() || b.Count() != 0 {
		t.Error("zero-capacity bitset should be empty")
	}
	neg := NewBitset(-5)
	if neg.Cap() != 0 {
		t.Errorf("negative capacity clamped: Cap = %d, want 0", neg.Cap())
	}
}

func TestBitsetSetOps(t *testing.T) {
	a := NewBitset(100)
	b := NewBitset(100)
	for _, i := range []int{1, 5, 70} {
		a.Set(i)
	}
	for _, i := range []int{5, 70, 99} {
		b.Set(i)
	}

	or := a.Clone()
	or.OrWith(b)
	if got, want := or.Members(), []int{1, 5, 70, 99}; !reflect.DeepEqual(got, want) {
		t.Errorf("Or = %v, want %v", got, want)
	}

	and := a.Clone()
	and.AndWith(b)
	if got, want := and.Members(), []int{5, 70}; !reflect.DeepEqual(got, want) {
		t.Errorf("And = %v, want %v", got, want)
	}

	diff := a.Clone()
	diff.AndNotWith(b)
	if got, want := diff.Members(), []int{1}; !reflect.DeepEqual(got, want) {
		t.Errorf("AndNot = %v, want %v", got, want)
	}

	if !and.SubsetOf(a) || !and.SubsetOf(b) {
		t.Error("intersection should be subset of both operands")
	}
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	empty := NewBitset(100)
	if empty.Intersects(a) {
		t.Error("empty set intersects nothing")
	}
}

func TestBitsetEqualAndKey(t *testing.T) {
	a := NewBitset(70)
	b := NewBitset(70)
	a.Set(3)
	b.Set(3)
	if !a.Equal(b) || a.Key() != b.Key() {
		t.Error("equal sets must have equal keys")
	}
	b.Set(69)
	if a.Equal(b) || a.Key() == b.Key() {
		t.Error("unequal sets must differ")
	}
	c := NewBitset(71)
	c.Set(3)
	if a.Equal(c) {
		t.Error("different capacities are never Equal")
	}
}

func TestBitsetCloneIndependence(t *testing.T) {
	a := NewBitset(10)
	a.Set(2)
	b := a.Clone()
	b.Set(3)
	if a.Has(3) {
		t.Error("Clone must be independent")
	}
}

func TestBitsetForEachEarlyStop(t *testing.T) {
	b := NewBitset(100)
	for i := 0; i < 100; i += 2 {
		b.Set(i)
	}
	var seen []int
	b.ForEach(func(i int) bool {
		seen = append(seen, i)
		return len(seen) < 3
	})
	if got, want := seen, []int{0, 2, 4}; !reflect.DeepEqual(got, want) {
		t.Errorf("early stop saw %v, want %v", got, want)
	}
}

func TestBitsetString(t *testing.T) {
	b := NewBitset(10)
	if got := b.String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	b.Set(1)
	b.Set(7)
	if got := b.String(); got != "{1, 7}" {
		t.Errorf("String = %q, want {1, 7}", got)
	}
}

func TestBitsetCapacityMismatchPanics(t *testing.T) {
	a := NewBitset(10)
	b := NewBitset(11)
	assertPanics(t, func() { a.OrWith(b) })
	assertPanics(t, func() { a.AndWith(b) })
	assertPanics(t, func() { a.AndNotWith(b) })
	assertPanics(t, func() { a.SubsetOf(b) })
	assertPanics(t, func() { a.Intersects(b) })
}

// Property: membership after a random sequence of Set/Clear matches a
// reference map implementation.
func TestBitsetQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		const n = 200
		rng := rand.New(rand.NewSource(seed))
		b := NewBitset(n)
		ref := make(map[int]bool)
		for _, op := range ops {
			i := int(op) % n
			if rng.Intn(2) == 0 {
				b.Set(i)
				ref[i] = true
			} else {
				b.Clear(i)
				delete(ref, i)
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < n; i++ {
			if b.Has(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: De Morgan-ish identity |A∪B| = |A| + |B| - |A∩B|.
func TestBitsetQuickInclusionExclusion(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		const n = 300
		a := NewBitset(n)
		b := NewBitset(n)
		for _, x := range xs {
			a.Set(int(x) % n)
		}
		for _, y := range ys {
			b.Set(int(y) % n)
		}
		union := a.Clone()
		union.OrWith(b)
		inter := a.Clone()
		inter.AndWith(b)
		return union.Count() == a.Count()+b.Count()-inter.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsetCopyFromResetFill(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		a := NewBitset(n)
		a.Fill()
		if a.Count() != n {
			t.Fatalf("Fill: Count = %d, want %d (n=%d)", a.Count(), n, n)
		}
		a.ForEach(func(i int) bool {
			if i < 0 || i >= n {
				t.Fatalf("Fill set out-of-range bit %d (n=%d)", i, n)
			}
			return true
		})
		b := NewBitset(n)
		if n > 0 {
			b.Set(n / 2)
		}
		a.CopyFrom(b)
		if !a.Equal(b) {
			t.Fatalf("CopyFrom: %s != %s", a, b)
		}
		a.Reset()
		if !a.Empty() {
			t.Fatalf("Reset left members: %s", a)
		}
		// CopyFrom reuses storage: mutating the copy must not touch the
		// source.
		if n > 0 {
			a.CopyFrom(b)
			a.Clear(n / 2)
			if !b.Has(n / 2) {
				t.Fatal("CopyFrom aliased the source set")
			}
		}
	}
	assertPanics(t, func() { NewBitset(5).CopyFrom(NewBitset(6)) })
}

// TestIsCliqueBruteForce cross-checks IsClique against the pairwise
// member loop it replaces, over random symmetric relations.
func TestIsCliqueBruteForce(t *testing.T) {
	f := func(edges []uint16, members []uint8) bool {
		const n = 70
		rows := make([]Bitset, n)
		for i := range rows {
			rows[i] = NewBitset(n)
		}
		for _, e := range edges {
			u, v := int(e)%n, int(e/uint16(n))%n
			if u != v {
				rows[u].Set(v)
				rows[v].Set(u)
			}
		}
		set := NewBitset(n)
		for _, m := range members {
			set.Set(int(m) % n)
		}
		ms := set.Members()
		want := true
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				if !rows[ms[i]].Has(ms[j]) {
					want = false
				}
			}
		}
		return IsClique(rows, set) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func assertPanics(t *testing.T, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fn()
}
