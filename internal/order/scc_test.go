package order

import (
	"reflect"
	"testing"
)

func TestSCC(t *testing.T) {
	tests := []struct {
		name  string
		n     int
		edges [][2]int
		want  [][]int
	}{
		{"empty", 0, nil, nil},
		{"singletons", 3, nil, [][]int{{0}, {1}, {2}}},
		{"chain", 3, [][2]int{{0, 1}, {1, 2}}, [][]int{{0}, {1}, {2}}},
		{"two-cycle", 2, [][2]int{{0, 1}, {1, 0}}, [][]int{{0, 1}}},
		{"self-loop", 2, [][2]int{{0, 0}}, [][]int{{0}, {1}}},
		{
			"mixed", 6,
			[][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}},
			[][]int{{0, 1, 2}, {3, 4, 5}},
		},
		{
			"nested-entry", 4,
			[][2]int{{3, 0}, {0, 1}, {1, 0}, {1, 2}},
			[][]int{{0, 1}, {2}, {3}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := NewDAG(tt.n)
			for _, e := range tt.edges {
				d.AddEdge(e[0], e[1])
			}
			got := d.SCC()
			if !reflect.DeepEqual(got, tt.want) {
				t.Fatalf("SCC() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSCCDeterministicAcrossEdgeOrder(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {4, 2}, {3, 4}, {4, 3}}
	d1 := NewDAG(5)
	for _, e := range edges {
		d1.AddEdge(e[0], e[1])
	}
	d2 := NewDAG(5)
	for i := len(edges) - 1; i >= 0; i-- {
		d2.AddEdge(edges[i][0], edges[i][1])
	}
	if got1, got2 := d1.SCC(), d2.SCC(); !reflect.DeepEqual(got1, got2) {
		t.Fatalf("SCC depends on edge insertion order: %v vs %v", got1, got2)
	}
}
