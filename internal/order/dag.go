package order

import (
	"errors"
	"fmt"
)

// ErrCycle is returned when a supposed DAG contains a cycle. In GEM terms a
// cycle means the temporal order would not be irreflexive, so the
// computation is illegal.
var ErrCycle = errors.New("order: graph contains a cycle")

// DAG is a directed graph over vertices 0..n-1 expected to be acyclic.
// Edges are stored as adjacency lists.
type DAG struct {
	n   int
	adj [][]int
}

// NewDAG creates a graph with n vertices and no edges.
func NewDAG(n int) *DAG {
	return &DAG{n: n, adj: make([][]int, n)}
}

// N returns the number of vertices.
func (d *DAG) N() int { return d.n }

// AddEdge adds a directed edge from u to v. Duplicate edges are ignored.
func (d *DAG) AddEdge(u, v int) {
	if u < 0 || u >= d.n || v < 0 || v >= d.n {
		panic(fmt.Sprintf("order: AddEdge(%d,%d) out of range [0,%d)", u, v, d.n))
	}
	for _, w := range d.adj[u] {
		if w == v {
			return
		}
	}
	d.adj[u] = append(d.adj[u], v)
}

// Successors returns the direct successors of u. The returned slice must
// not be modified.
func (d *DAG) Successors(u int) []int { return d.adj[u] }

// TopoSort returns a topological ordering of the vertices, or ErrCycle.
func (d *DAG) TopoSort() ([]int, error) {
	indeg := make([]int, d.n)
	for _, succs := range d.adj {
		for _, v := range succs {
			indeg[v]++
		}
	}
	queue := make([]int, 0, d.n)
	for v := 0; v < d.n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	out := make([]int, 0, d.n)
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		for _, w := range d.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, w)
			}
		}
	}
	if len(out) != d.n {
		return nil, ErrCycle
	}
	return out, nil
}

// TransitiveClosure returns reach, where reach[v] is the set of vertices
// strictly reachable from v (v itself is excluded unless v lies on a cycle,
// in which case ErrCycle is returned). Computed in reverse topological
// order so each vertex's reach set is the union of its successors' sets.
func (d *DAG) TransitiveClosure() ([]Bitset, error) {
	topo, err := d.TopoSort()
	if err != nil {
		return nil, err
	}
	reach := make([]Bitset, d.n)
	for i := len(topo) - 1; i >= 0; i-- {
		v := topo[i]
		r := NewBitset(d.n)
		for _, w := range d.adj[v] {
			r.Set(w)
			r.OrWith(reach[w])
		}
		reach[v] = r
	}
	return reach, nil
}

// Invert returns preds, where preds[v] is the set of vertices that reach v,
// given the forward reach sets.
func Invert(reach []Bitset) []Bitset {
	n := len(reach)
	preds := make([]Bitset, n)
	for v := 0; v < n; v++ {
		preds[v] = NewBitset(n)
	}
	for u := 0; u < n; u++ {
		reach[u].ForEach(func(v int) bool {
			preds[v].Set(u)
			return true
		})
	}
	return preds
}

// LinearExtensions enumerates every linear extension of the partial order
// whose strict reachability is reach, invoking fn with each complete
// ordering. The callback's slice is reused between invocations; copy it if
// retained. If fn returns false or limit (>0) extensions have been
// produced, enumeration stops. Returns the number of extensions produced.
func LinearExtensions(reach []Bitset, limit int, fn func(ext []int) bool) int {
	n := len(reach)
	preds := Invert(reach)
	placed := NewBitset(n)
	ext := make([]int, 0, n)
	count := 0
	var rec func() bool
	rec = func() bool {
		if len(ext) == n {
			count++
			if !fn(ext) {
				return false
			}
			return limit <= 0 || count < limit
		}
		for v := 0; v < n; v++ {
			if placed.Has(v) {
				continue
			}
			if !preds[v].SubsetOf(placed) {
				continue
			}
			placed.Set(v)
			ext = append(ext, v)
			ok := rec()
			ext = ext[:len(ext)-1]
			placed.Clear(v)
			if !ok {
				return false
			}
		}
		return true
	}
	rec()
	return count
}

// Antichains enumerates every non-empty antichain (set of pairwise
// incomparable vertices) among the candidate set, given the symmetric
// comparability test cmp(u,v) (true when u and v are ordered either way).
// fn receives each antichain as a reused slice. Enumeration stops early if
// fn returns false. Returns the number produced.
func Antichains(candidates []int, cmp func(u, v int) bool, fn func(chain []int) bool) int {
	var cur []int
	count := 0
	var rec func(start int) bool
	rec = func(start int) bool {
		for idx := start; idx < len(candidates); idx++ {
			v := candidates[idx]
			compatible := true
			for _, u := range cur {
				if cmp(u, v) {
					compatible = false
					break
				}
			}
			if !compatible {
				continue
			}
			cur = append(cur, v)
			count++
			if !fn(cur) {
				return false
			}
			if !rec(idx + 1) {
				return false
			}
			cur = cur[:len(cur)-1]
		}
		return true
	}
	rec(0)
	return count
}

// CoveringEdges returns the covering (immediate, transitively reduced)
// relation of the strict partial order given by reach: u covers v when
// u -> v and there is no w with u -> w -> v.
func CoveringEdges(reach []Bitset) [][2]int {
	n := len(reach)
	var out [][2]int
	for u := 0; u < n; u++ {
		reach[u].ForEach(func(v int) bool {
			immediate := true
			reach[u].ForEach(func(w int) bool {
				if w != v && reach[w].Has(v) {
					immediate = false
					return false
				}
				return true
			})
			if immediate {
				out = append(out, [2]int{u, v})
			}
			return true
		})
	}
	return out
}

// ReachesDFS reports whether v is strictly reachable from u by on-demand
// depth-first search, without materializing the transitive closure. It
// exists as the baseline for the closure-representation ablation: the
// GEM temporal order is queried many times per event pair (legality,
// histories, every restriction), which is why Computation precomputes
// bitset reachability instead.
func (d *DAG) ReachesDFS(u, v int) bool {
	if u == v {
		return false
	}
	seen := make([]bool, d.n)
	stack := []int{u}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range d.adj[x] {
			if w == v {
				return true
			}
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return false
}
