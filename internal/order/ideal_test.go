package order

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIdealsDiamond(t *testing.T) {
	reach, err := diamond().TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	var ideals []string
	n := Ideals(reach, 0, func(ideal Bitset) bool {
		ideals = append(ideals, ideal.String())
		return true
	})
	// The paper (Section 7) lists histories α0..α4 plus the empty prefix:
	// {}, {e1}, {e1,e2}, {e1,e3}, {e1,e2,e3}, {e1,e2,e3,e4}.
	if n != 6 {
		t.Fatalf("diamond has %d ideals (%v), want 6", n, ideals)
	}
	wantSet := map[string]bool{
		"{}": true, "{0}": true, "{0, 1}": true,
		"{0, 2}": true, "{0, 1, 2}": true, "{0, 1, 2, 3}": true,
	}
	for _, s := range ideals {
		if !wantSet[s] {
			t.Errorf("unexpected ideal %s", s)
		}
	}
}

func TestIdealsLimitAndEarlyStop(t *testing.T) {
	reach := make([]Bitset, 6)
	for i := range reach {
		reach[i] = NewBitset(6)
	}
	// Empty order: 2^6 = 64 ideals.
	if n := Ideals(reach, 0, func(Bitset) bool { return true }); n != 64 {
		t.Errorf("got %d ideals, want 64", n)
	}
	if n := Ideals(reach, 10, func(Bitset) bool { return true }); n != 10 {
		t.Errorf("limit: got %d ideals, want 10", n)
	}
	calls := 0
	Ideals(reach, 0, func(Bitset) bool { calls++; return calls < 5 })
	if calls != 5 {
		t.Errorf("early stop after %d calls, want 5", calls)
	}
}

func TestMinimalOutside(t *testing.T) {
	reach, err := diamond().TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	preds := Invert(reach)
	h := NewBitset(4)
	h.Set(0)
	got := MinimalOutside(reach, preds, h)
	if !reflect.DeepEqual(got, []int{1, 2}) {
		t.Errorf("after {e1}, extendable = %v, want [1 2]", got)
	}
	full := NewBitset(4)
	for i := 0; i < 4; i++ {
		full.Set(i)
	}
	if got := MinimalOutside(reach, preds, full); got != nil {
		t.Errorf("full history should have no extensions, got %v", got)
	}
}

func TestDownClosureAndIsIdeal(t *testing.T) {
	reach, err := diamond().TransitiveClosure()
	if err != nil {
		t.Fatal(err)
	}
	preds := Invert(reach)
	s := NewBitset(4)
	s.Set(3) // e4 alone is not prefix-closed
	if IsIdeal(preds, s) {
		t.Error("{e4} should not be an ideal")
	}
	closed := DownClosure(preds, s)
	if got := closed.Members(); !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("closure of {e4} = %v, want all", got)
	}
	if !IsIdeal(preds, closed) {
		t.Error("down closure must be an ideal")
	}
}

// Property: every enumerated ideal is downward closed, and the count equals
// a brute-force count over all subsets (small n).
func TestQuickIdealsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		d := randomDAG(rng, n, 0.4)
		reach, err := d.TransitiveClosure()
		if err != nil {
			return false
		}
		preds := Invert(reach)
		allClosed := true
		got := Ideals(reach, 0, func(ideal Bitset) bool {
			if !IsIdeal(preds, ideal) {
				allClosed = false
				return false
			}
			return true
		})
		if !allClosed {
			return false
		}
		// Brute force over all 2^n subsets.
		want := 0
		for mask := 0; mask < 1<<n; mask++ {
			s := NewBitset(n)
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					s.Set(v)
				}
			}
			if IsIdeal(preds, s) {
				want++
			}
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
