package order

// Ideals enumerates every order ideal (downward-closed subset, including
// the empty set) of the strict partial order whose reachability sets are
// reach. In GEM terms these are exactly the histories of a computation.
// fn receives each ideal as a Bitset that is reused between calls; clone it
// if retained. Enumeration stops early if fn returns false or after limit
// ideals when limit > 0. Returns the number of ideals produced.
//
// The enumeration walks the lattice of ideals by repeatedly adding minimal
// elements of the complement, deduplicating via a visited set, so each
// ideal is produced exactly once.
func Ideals(reach []Bitset, limit int, fn func(ideal Bitset) bool) int {
	return IdealsPre(reach, Invert(reach), limit, fn)
}

// IdealsPre is Ideals with the predecessor sets supplied by the caller,
// avoiding the Invert when they are already at hand (core.Computation
// keeps both directions).
func IdealsPre(reach, preds []Bitset, limit int, fn func(ideal Bitset) bool) int {
	n := len(reach)
	seen := make(map[string]bool)
	count := 0
	stop := false

	var rec func(cur Bitset)
	rec = func(cur Bitset) {
		if stop {
			return
		}
		key := cur.Key()
		if seen[key] {
			return
		}
		seen[key] = true
		count++
		if !fn(cur) || (limit > 0 && count >= limit) {
			stop = true
			return
		}
		for v := 0; v < n; v++ {
			if cur.Has(v) || !preds[v].SubsetOf(cur) {
				continue
			}
			next := cur.Clone()
			next.Set(v)
			rec(next)
			if stop {
				return
			}
		}
	}
	rec(NewBitset(n))
	return count
}

// MinimalOutside returns the elements not in cur all of whose predecessors
// are in cur — i.e. the events that could individually extend the ideal.
func MinimalOutside(reach []Bitset, preds []Bitset, cur Bitset) []int {
	return MinimalOutsideAppend(reach, preds, cur, nil)
}

// MinimalOutsideAppend is MinimalOutside appending into buf, so hot
// enumeration loops can reuse one buffer per recursion depth instead of
// allocating a fresh slice per visited ideal.
func MinimalOutsideAppend(reach []Bitset, preds []Bitset, cur Bitset, buf []int) []int {
	n := len(reach)
	for v := 0; v < n; v++ {
		if !cur.Has(v) && preds[v].SubsetOf(cur) {
			buf = append(buf, v)
		}
	}
	return buf
}

// DownClosure returns the downward closure of the given set under the
// partial order (the set plus all predecessors of its members).
func DownClosure(preds []Bitset, set Bitset) Bitset {
	out := set.Clone()
	set.ForEach(func(v int) bool {
		out.OrWith(preds[v])
		return true
	})
	return out
}

// IsIdeal reports whether the set is downward closed under the partial
// order described by preds.
func IsIdeal(preds []Bitset, set Bitset) bool {
	ok := true
	set.ForEach(func(v int) bool {
		if !preds[v].SubsetOf(set) {
			ok = false
			return false
		}
		return true
	})
	return ok
}
