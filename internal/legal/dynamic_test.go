package legal

import (
	"testing"

	"gem/internal/core"
	"gem/internal/spec"
)

// dynSpec declares a protected group with a joiner element outside it,
// plus the dynamic admin element.
func dynSpec(t *testing.T) *spec.Spec {
	t.Helper()
	s := spec.New("dynamic")
	s.AddElement(&spec.ElementDecl{Name: "inner", Events: []spec.EventClassDecl{{Name: "Use"}}})
	s.AddElement(&spec.ElementDecl{Name: "joiner", Events: []spec.EventClassDecl{{Name: "Act"}}})
	s.AddElement(spec.AdminElementDecl())
	s.AddGroup(&spec.GroupDecl{Name: "G", Members: []string{"inner"}})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func addMember(b *core.Builder, group, member string) core.EventID {
	return b.Event(core.AdminElement, core.AddMemberClass,
		core.Params{"group": core.Str(group), "member": core.Str(member)})
}

func removeMember(b *core.Builder, group, member string) core.EventID {
	return b.Event(core.AdminElement, core.RemoveMemberClass,
		core.Params{"group": core.Str(group), "member": core.Str(member)})
}

// TestDynamicJoinEnablesAccess: the joiner may enable events inside the
// group only after (in its causal past) it has been added to the group.
func TestDynamicJoinEnablesAccess(t *testing.T) {
	s := dynSpec(t)

	// Legal: join first, then enable.
	b := core.NewBuilder()
	join := addMember(b, "G", "joiner")
	act := b.Event("joiner", "Act", nil)
	use := b.Event("inner", "Use", nil)
	b.Enable(join, act)
	b.Enable(act, use)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if res := Check(s, c, Options{}); !res.Legal() {
		t.Fatalf("post-join access must be legal: %v", res.Error())
	}

	// Illegal: enable before joining.
	b2 := core.NewBuilder()
	act2 := b2.Event("joiner", "Act", nil)
	use2 := b2.Event("inner", "Use", nil)
	b2.Enable(act2, use2)
	join2 := addMember(b2, "G", "joiner")
	b2.Enable(use2, join2) // join strictly after the illegal enable
	c2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := Check(s, c2, Options{})
	if res.Legal() {
		t.Fatal("pre-join access must be illegal")
	}
	if res.Violations[0].Kind != IllegalEnable {
		t.Errorf("violation = %v", res.Violations[0])
	}
}

// TestDynamicLeaveRevokesAccess: after being removed, the joiner loses
// access again.
func TestDynamicLeaveRevokesAccess(t *testing.T) {
	s := dynSpec(t)
	b := core.NewBuilder()
	join := addMember(b, "G", "joiner")
	leave := removeMember(b, "G", "joiner")
	act := b.Event("joiner", "Act", nil)
	use := b.Event("inner", "Use", nil)
	b.Enable(join, leave)
	b.Enable(leave, act)
	b.Enable(act, use)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := Check(s, c, Options{})
	if res.Legal() {
		t.Fatal("access after removal must be illegal")
	}
}

// TestDynamicConcurrentChangeInvisible: a group change concurrent with
// the enabling event does not authorize it.
func TestDynamicConcurrentChangeInvisible(t *testing.T) {
	s := dynSpec(t)
	b := core.NewBuilder()
	addMember(b, "G", "joiner") // concurrent with the action below
	act := b.Event("joiner", "Act", nil)
	use := b.Event("inner", "Use", nil)
	b.Enable(act, use)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if res := Check(s, c, Options{}); res.Legal() {
		t.Fatal("a concurrent join must not authorize the enable")
	}
}

// TestStaticComputationsUnaffected: computations without admin events use
// the static structure (fast path).
func TestStaticComputationsUnaffected(t *testing.T) {
	s := dynSpec(t)
	b := core.NewBuilder()
	b.Event("inner", "Use", nil)
	b.Event("joiner", "Act", nil)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if res := Check(s, c, Options{}); !res.Legal() {
		t.Fatalf("static computation must be legal: %v", res.Error())
	}
}
