package legal_test

import (
	"math/rand"
	"testing"

	"gem/internal/analyze"
	"gem/internal/core"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/problems/rw"
	"gem/internal/spec"
	"gem/internal/thread"
)

// fastPathVariants are the option sets whose verdicts and violation sets
// must all coincide with the plain dynamic check: the guard fast-path
// alone, combined with the prelint short-circuit, and under both the
// sequence and lattice temporal engines.
func fastPathVariants() []struct {
	name string
	opts legal.Options
} {
	return []struct {
		name string
		opts legal.Options
	}{
		{"fastpath", legal.Options{FastPath: true}},
		{"fastpath+prelint", legal.Options{FastPath: true, Prelint: true}},
		{"fastpath/seq", legal.Options{FastPath: true, Check: logic.CheckOptions{Engine: logic.EngineSeq}}},
		{"fastpath/lattice", legal.Options{FastPath: true, Check: logic.CheckOptions{Engine: logic.EngineLattice}}},
	}
}

// checkFastPathAgreement asserts the guard fast-path is verdict-preserving:
// every variant produces the plain check's verdict and failing-restriction
// set exactly.
func checkFastPathAgreement(t *testing.T, name string, s *spec.Spec, c *core.Computation) legal.Result {
	t.Helper()
	plain := legal.Check(s, c, legal.Options{})
	pk := violationKeys(plain)
	for _, v := range fastPathVariants() {
		got := legal.Check(s, c, v.opts)
		if plain.Legal() != got.Legal() {
			t.Fatalf("%s/%s: fast path changed the verdict: plain legal=%v, got legal=%v",
				name, v.name, plain.Legal(), got.Legal())
		}
		gk := violationKeys(got)
		if len(pk) != len(gk) {
			t.Fatalf("%s/%s: fast path changed the violation set:\nplain: %v\ngot:   %v", name, v.name, pk, gk)
		}
		for i := range pk {
			if pk[i] != gk[i] {
				t.Fatalf("%s/%s: fast path changed the violation set:\nplain: %v\ngot:   %v", name, v.name, pk, gk)
			}
		}
	}
	return plain
}

func buildRW(t *testing.T) (*spec.Spec, *core.Computation) {
	t.Helper()
	s, err := rw.ProblemSpec([]string{"u1", "w1"}, false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := rw.BuildComputation(s, []rw.Transaction{
		{User: "u1", Write: false, After: -1},
		{User: "w1", Write: true, Value: 7, After: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

// TestFastPathAgreesOnShippedSpecs: on the shipped problem specs (which
// must stay legal) every fast-path variant reproduces the plain verdict.
func TestFastPathAgreesOnShippedSpecs(t *testing.T) {
	s, c := buildBoundedBuf(t)
	if res := checkFastPathAgreement(t, "boundedbuf", s, c); !res.Legal() {
		t.Fatalf("boundedbuf judged illegal: %v", res.Violations)
	}
	s, c = buildRW(t)
	if res := checkFastPathAgreement(t, "rw", s, c); !res.Legal() {
		t.Fatalf("rw judged illegal: %v", res.Violations)
	}
}

// TestFastPathFiresOnEmptyComputation guards against the agreement tests
// being vacuously true: on the empty computation every emptiness guard
// holds, so the analyzer must supply at least one decisive, holding guard
// for the shipped specs — i.e. the fast path actually skips enumerations.
func TestFastPathFiresOnEmptyComputation(t *testing.T) {
	s, _ := buildBoundedBuf(t)
	c, err := core.NewBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	res := analyze.ForSpec(s)
	for _, r := range s.Restrictions() {
		if g, ok := res.GuardFor(r.Owner, r.Name); ok && g.Decisive() && g.HoldsOn(c) {
			fired++
		}
	}
	if fired == 0 {
		t.Fatal("no decisive guard holds on the empty computation; fast path never fires")
	}
	checkFastPathAgreement(t, "boundedbuf-empty", s, c)
}

// randomComputation builds a small random computation over the spec's
// declared class pairs (with an occasional phantom undeclared class),
// forward-only random enable edges (acyclic by construction), and the
// spec's thread labelling applied.
func randomComputation(t *testing.T, s *spec.Spec, rng *rand.Rand) *core.Computation {
	t.Helper()
	pairs := s.ClassPairs()
	b := core.NewBuilder()
	n := 3 + rng.Intn(6)
	ids := make([]core.EventID, 0, n)
	for i := 0; i < n; i++ {
		el, cl := "phantom", "Ev"
		if rng.Intn(10) != 0 {
			p := pairs[rng.Intn(len(pairs))]
			el, cl = p.Element, p.Class
		}
		ids = append(ids, b.Event(el, cl, nil))
	}
	for i := 1; i < len(ids); i++ {
		for j := 0; j < i; j++ {
			if rng.Intn(3) == 0 {
				b.Enable(ids[j], ids[i])
			}
		}
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	thread.Apply(c, s.Threads()...)
	return c
}

// TestFastPathAgreesOnRandomComputations: the acceptance property — over
// ≥100 randomized computations per shipped problem spec, fast path on and
// off yield identical verdicts and violation sets (most of these are
// illegal in varied ways, exercising guards that fire and guards that
// don't).
func TestFastPathAgreesOnRandomComputations(t *testing.T) {
	sBuf, _ := buildBoundedBuf(t)
	sRW, _ := buildRW(t)
	rng := rand.New(rand.NewSource(20260806))
	for _, tc := range []struct {
		name string
		s    *spec.Spec
	}{{"boundedbuf", sBuf}, {"rw", sRW}} {
		for i := 0; i < 60; i++ {
			c := randomComputation(t, tc.s, rng)
			checkFastPathAgreement(t, tc.name, tc.s, c)
		}
	}
}
