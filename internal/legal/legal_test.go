package legal

import (
	"strings"
	"testing"

	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/spec"
	"gem/internal/thread"
)

// bufferSpec declares a tiny producer/consumer specification: a Variable
// element "slot" inside a group "buffer" with port Assign, plus a consumer
// element outside.
func bufferSpec(t *testing.T) *spec.Spec {
	t.Helper()
	s := spec.New("buffer-spec")
	slot, err := spec.VariableType().Instantiate("slot")
	if err != nil {
		t.Fatal(err)
	}
	s.AddElement(slot)
	s.AddElement(&spec.ElementDecl{
		Name:   "producer",
		Events: []spec.EventClassDecl{{Name: "Produce", Params: []spec.ParamDecl{{Name: "v", Type: "INTEGER"}}}},
	})
	s.AddElement(&spec.ElementDecl{
		Name:   "consumer",
		Events: []spec.EventClassDecl{{Name: "Consume", Params: []spec.ParamDecl{{Name: "v", Type: "INTEGER"}}}},
	})
	s.AddGroup(&spec.GroupDecl{Name: "buffer", Members: []string{"slot"}})
	s.AddGroup(&spec.GroupDecl{
		Name:    "world",
		Members: []string{"buffer", "producer", "consumer"},
	})
	// Producers may only reach the slot through the Assign port.
	if g, ok := s.Group("buffer"); ok {
		g.Ports = []core.Port{{Element: "slot", Class: "Assign"}, {Element: "slot", Class: "Getval"}}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

func legalComputation(t *testing.T) *core.Computation {
	t.Helper()
	b := core.NewBuilder()
	p := b.Event("producer", "Produce", core.Params{"v": core.Int(7)})
	a := b.Event("slot", "Assign", core.Params{"newval": core.Int(7)})
	g := b.Event("slot", "Getval", core.Params{"oldval": core.Int(7)})
	cons := b.Event("consumer", "Consume", core.Params{"v": core.Int(7)})
	b.Enable(p, a)
	b.Enable(a, g)
	b.Enable(g, cons)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLegalComputationPasses(t *testing.T) {
	s := bufferSpec(t)
	c := legalComputation(t)
	res := Check(s, c, Options{})
	if !res.Legal() {
		t.Fatalf("expected legal, got: %v", res.Error())
	}
	if res.Error() != nil {
		t.Error("Error should be nil when legal")
	}
}

func TestUndeclaredElement(t *testing.T) {
	s := bufferSpec(t)
	b := core.NewBuilder()
	b.Event("ghost", "X", nil)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := Check(s, c, Options{})
	if res.Legal() || res.Violations[0].Kind != UndeclaredElement {
		t.Errorf("want undeclared-element violation, got %v", res.Violations)
	}
}

func TestUndeclaredClass(t *testing.T) {
	s := bufferSpec(t)
	b := core.NewBuilder()
	b.Event("slot", "Mystery", nil)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := Check(s, c, Options{})
	if res.Legal() || res.Violations[0].Kind != UndeclaredClass {
		t.Errorf("want undeclared-class violation, got %v", res.Violations)
	}
}

func TestUndeclaredParam(t *testing.T) {
	s := bufferSpec(t)
	b := core.NewBuilder()
	b.Event("slot", "Assign", core.Params{"newval": core.Int(1), "sneaky": core.Int(2)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := Check(s, c, Options{SkipRestrictions: true})
	if res.Legal() || res.Violations[0].Kind != UndeclaredParam {
		t.Errorf("want undeclared-param violation, got %v", res.Violations)
	}
}

func TestIllegalEnableThroughGroupWall(t *testing.T) {
	s := bufferSpec(t)
	// Remove the ports: now producer cannot reach the slot at all.
	if g, ok := s.Group("buffer"); ok {
		g.Ports = nil
	}
	c := legalComputation(t)
	res := Check(s, c, Options{SkipRestrictions: true})
	if res.Legal() {
		t.Fatal("enable through a portless group wall must be illegal")
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == IllegalEnable && strings.Contains(v.Message, "producer") {
			found = true
		}
	}
	if !found {
		t.Errorf("want illegal-enable from producer, got %v", res.Violations)
	}
}

func TestRestrictionViolationReported(t *testing.T) {
	s := bufferSpec(t)
	// Stale read: Getval returns 9 after Assign(7).
	b := core.NewBuilder()
	a := b.Event("slot", "Assign", core.Params{"newval": core.Int(7)})
	g := b.Event("slot", "Getval", core.Params{"oldval": core.Int(9)})
	b.Enable(a, g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := Check(s, c, Options{})
	if res.Legal() {
		t.Fatal("stale read must be illegal")
	}
	v := res.Violations[0]
	if v.Kind != RestrictionViolation || v.Owner != "slot" || v.Cx == nil {
		t.Errorf("violation = %+v", v)
	}
	if !strings.Contains(v.String(), "reads-last-assign") {
		t.Errorf("violation string = %s", v.String())
	}
}

// TestRestrictionViolationWitnessVerifies: whichever engine finds a
// restriction violation, the attached counterexample must independently
// falsify the restriction formula — lattice-extracted witnesses are held
// to the same standard as enumerated ones.
func TestRestrictionViolationWitnessVerifies(t *testing.T) {
	s := bufferSpec(t)
	b := core.NewBuilder()
	a := b.Event("slot", "Assign", core.Params{"newval": core.Int(7)})
	g := b.Event("slot", "Getval", core.Params{"oldval": core.Int(9)})
	b.Enable(a, g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []logic.Engine{logic.EngineAuto, logic.EngineSeq, logic.EngineLattice} {
		res := Check(s, c, Options{Check: logic.CheckOptions{Engine: engine}})
		if res.Legal() {
			t.Fatalf("engine %s misses the stale read", engine)
		}
		for _, v := range res.Violations {
			if v.Kind != RestrictionViolation {
				continue
			}
			if err := v.Cx.Verify(); err != nil {
				t.Errorf("engine %s reported a bogus witness for %s: %v", engine, v.Restriction, err)
			}
		}
	}
}

func TestSkipRestrictions(t *testing.T) {
	s := bufferSpec(t)
	b := core.NewBuilder()
	a := b.Event("slot", "Assign", core.Params{"newval": core.Int(7)})
	g := b.Event("slot", "Getval", core.Params{"oldval": core.Int(9)})
	b.Enable(a, g)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := Check(s, c, Options{SkipRestrictions: true})
	if !res.Legal() {
		t.Errorf("structural check should pass: %v", res.Error())
	}
}

func TestMaxViolations(t *testing.T) {
	s := bufferSpec(t)
	b := core.NewBuilder()
	b.Event("ghost1", "X", nil)
	b.Event("ghost2", "X", nil)
	b.Event("ghost3", "X", nil)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := Check(s, c, Options{MaxViolations: 2})
	if len(res.Violations) != 2 {
		t.Errorf("got %d violations, want 2 (capped)", len(res.Violations))
	}
}

func TestThreadViolationDetected(t *testing.T) {
	s := bufferSpec(t)
	s.AddThread(thread.Type{Name: "pi", Path: []core.ClassRef{
		core.Ref("producer", "Produce"), core.Ref("slot", "Assign"),
	}})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	c := legalComputation(t)
	// Not labelled at all -> thread violation.
	res := Check(s, c, Options{SkipRestrictions: true})
	if res.Legal() || res.Violations[0].Kind != ThreadViolation {
		t.Errorf("want thread violation, got %v", res.Violations)
	}
	// After labelling, the check passes.
	c2 := legalComputation(t)
	thread.Apply(c2, s.Threads()...)
	res2 := Check(s, c2, Options{SkipRestrictions: true})
	if !res2.Legal() {
		t.Errorf("labelled computation should pass: %v", res2.Error())
	}
}

func TestViolationKindStrings(t *testing.T) {
	kinds := []ViolationKind{
		UndeclaredElement, UndeclaredClass, UndeclaredParam,
		IllegalEnable, ThreadViolation, RestrictionViolation, ViolationKind(99),
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("kind %d has empty string", k)
		}
	}
	if ViolationKind(99).String() != "unknown" {
		t.Error("unknown kind should render as unknown")
	}
}

func TestResultErrorMessage(t *testing.T) {
	res := Result{Violations: []Violation{
		{Kind: IllegalEnable, Message: "m1"},
		{Kind: UndeclaredClass, Message: "m2"},
	}}
	err := res.Error()
	if err == nil || !strings.Contains(err.Error(), "2 violation") {
		t.Errorf("Error = %v", err)
	}
}
