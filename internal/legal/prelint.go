package legal

import (
	"fmt"

	"gem/internal/core"
	"gem/internal/lint"
	"gem/internal/spec"
)

// prelintViolations runs the static analyzer over the specification
// (memoized per Spec) and, for each restriction lint proved statically
// unsatisfiable (a prerequisite cycle or an access-forbidden required
// edge), applies the cheap activation test to the computation: an event
// of the constraint's target class with no matching source enabler is a
// witness that the restriction's exactly-one-enabler conjunct fails, so
// the exponential history enumeration for that restriction can be
// skipped with the verdict it would have produced. Restrictions without
// a witness fall through to the dynamic check (nil entry), so the
// pre-pass never changes a verdict — it only reaches it faster.
func prelintViolations(s *spec.Spec, c *core.Computation, rs []spec.OwnedRestriction) []*Violation {
	doomed := lint.ForSpec(s).Doomed()
	if len(doomed) == 0 {
		return nil
	}
	out := make([]*Violation, len(rs))
	for _, ec := range doomed {
		for i, r := range rs {
			if r.Owner != ec.Owner || r.Name != ec.Restriction {
				continue
			}
			if out[i] == nil {
				if ev := ec.MissingEnabler(c); ev != nil {
					out[i] = &Violation{
						Kind:        RestrictionViolation,
						Restriction: r.Name,
						Owner:       r.Owner,
						Message: fmt.Sprintf("statically unsatisfiable (%s): event %s has no enabling %s event",
							ec.Code, ev.Name(), ec.String()),
					}
				}
			}
			break
		}
	}
	return out
}
