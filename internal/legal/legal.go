// Package legal implements the GEM legality check (Section 3 of the
// paper): a computation C is legal with respect to a specification σ when
// it satisfies σ's implicit legality restrictions — every event occurs at
// a declared element, belongs to a declared event class, carries declared
// parameters; enable edges respect the group access and port rules; the
// temporal order is a strict partial order (guaranteed by construction of
// core.Computation); thread labels follow the declared thread paths — and
// every explicit restriction of σ.
package legal

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/obs"
	"gem/internal/spec"
	"gem/internal/thread"
)

// ViolationKind classifies legality violations.
type ViolationKind int

// The violation kinds.
const (
	UndeclaredElement ViolationKind = iota + 1
	UndeclaredClass
	UndeclaredParam
	IllegalEnable
	ThreadViolation
	RestrictionViolation
)

func (k ViolationKind) String() string {
	switch k {
	case UndeclaredElement:
		return "undeclared-element"
	case UndeclaredClass:
		return "undeclared-class"
	case UndeclaredParam:
		return "undeclared-parameter"
	case IllegalEnable:
		return "illegal-enable"
	case ThreadViolation:
		return "thread-violation"
	case RestrictionViolation:
		return "restriction-violation"
	default:
		return "unknown"
	}
}

// Violation describes one way a computation fails to be legal.
type Violation struct {
	Kind    ViolationKind
	Message string
	// Restriction names the failed restriction and Owner its declaring
	// element/group for RestrictionViolation.
	Restriction string
	Owner       string
	// Cx carries the failing witness for RestrictionViolation. Its shape
	// depends on which engine found it — the lattice engine extracts a
	// complete valid history sequence from the lattice, the sequence
	// cascade reports the first failure in enumeration order, and the
	// history-pair reduction reports a two-history fragment — but every
	// witness falsifies the restriction (logic.Counterexample.Verify).
	Cx *logic.Counterexample
}

func (v Violation) String() string {
	s := fmt.Sprintf("[%s] %s", v.Kind, v.Message)
	if v.Restriction != "" {
		s += fmt.Sprintf(" (restriction %s of %s)", v.Restriction, v.Owner)
	}
	return s
}

// Result is the outcome of a legality check.
type Result struct {
	Violations []Violation
}

// Legal reports whether no violations were found.
func (r Result) Legal() bool { return len(r.Violations) == 0 }

// Error returns nil when legal, or an error summarizing the violations.
func (r Result) Error() error {
	if r.Legal() {
		return nil
	}
	msgs := make([]string, len(r.Violations))
	for i, v := range r.Violations {
		msgs[i] = v.String()
	}
	return fmt.Errorf("legal: %d violation(s):\n  %s", len(r.Violations), strings.Join(msgs, "\n  "))
}

// Options configures the check.
type Options struct {
	Check logic.CheckOptions
	// SkipRestrictions limits the check to structural legality (event
	// declarations, enable edges, threads).
	SkipRestrictions bool
	// MaxViolations stops after this many violations (0 = collect all).
	MaxViolations int
	// Prelint runs the gemlint static analyzer over the specification (a
	// memoized, computation-independent pass) and short-circuits the
	// restrictions it proved statically unsatisfiable whenever the
	// computation activates them, skipping their history enumeration.
	// The verdict and the set of failing restrictions are exactly the
	// dynamic check's; only the violation messages differ.
	Prelint bool
	// FastPath consults the deep analyzer's per-restriction emptiness
	// guards (analyze.ForSpec, memoized): a restriction whose guard holds
	// on the computation — the classes and thread types that could
	// falsify it are absent — is statically satisfied, so its history
	// enumeration is skipped with the verdict preserved exactly. The dual
	// of Prelint: Prelint short-circuits restrictions proven to fail,
	// FastPath ones proven to hold.
	FastPath bool
	// Guards, when non-nil and FastPath is set, persists the fast-path
	// guard vector across processes: a hit skips re-deriving the guards
	// and re-evaluating them on the computation. Entries are keyed by
	// spec hash and computation fingerprint (internal/store satisfies
	// this structurally), so they are exactly as valid as a fresh
	// fastPathHolds run; a miss, a corrupt entry, or a length mismatch
	// falls back to computing and writing behind.
	Guards GuardCache
}

// GuardCache persists per-restriction fast-path guard vectors (the
// []bool fastPathHolds computes). LookupGuards returns the cached vector
// and whether it was found; a found nil vector is meaningful ("no guard
// fires for this spec/computation") and is distinct from a miss.
// Implementations must be safe for concurrent use and must degrade
// internal failures to a miss.
type GuardCache interface {
	LookupGuards(s *spec.Spec, c *core.Computation) ([]bool, bool)
	StoreGuards(s *spec.Spec, c *core.Computation, hold []bool)
}

// Check verifies that the computation is legal with respect to the
// specification.
func Check(s *spec.Spec, c *core.Computation, opts Options) Result {
	var res Result
	add := func(v Violation) bool {
		res.Violations = append(res.Violations, v)
		return opts.MaxViolations == 0 || len(res.Violations) < opts.MaxViolations
	}

	if !checkEvents(s, c, add) {
		return res
	}
	if !checkEnables(s, c, add) {
		return res
	}
	if len(s.Threads()) > 0 {
		if err := thread.Validate(c, s.Threads()...); err != nil {
			if !add(Violation{Kind: ThreadViolation, Message: err.Error()}) {
				return res
			}
		}
	}
	if opts.SkipRestrictions {
		return res
	}
	rs := s.Restrictions()
	var pre []*Violation
	if opts.Prelint {
		pre = prelintViolations(s, c, rs)
	}
	var hold []bool
	if opts.FastPath {
		cached := false
		if opts.Guards != nil {
			if g, ok := opts.Guards.LookupGuards(s, c); ok && (g == nil || len(g) == len(rs)) {
				hold, cached = g, true
			}
		}
		if !cached {
			hold = fastPathHolds(s, c, rs)
			if opts.Guards != nil {
				opts.Guards.StoreGuards(s, c, hold)
			}
		}
		if obs.Enabled() {
			for _, h := range hold {
				if h {
					obs.Count("fastpath.hits", 1)
				}
			}
		}
	}
	for i, cx := range restrictionCounterexamples(s, c, opts, pre, hold) {
		if pre != nil && pre[i] != nil {
			obs.Count("prelint.shortcircuit", 1)
			if !add(*pre[i]) {
				return res
			}
			continue
		}
		if cx != nil {
			v := Violation{
				Kind:        RestrictionViolation,
				Message:     cx.Error(),
				Restriction: rs[i].Name,
				Owner:       rs[i].Owner,
				Cx:          cx,
			}
			if !add(v) {
				return res
			}
		}
	}
	return res
}

// restrictionCounterexamples checks every explicit restriction against
// the computation, in parallel when opts.Check.Parallelism > 1. Results
// are indexed by restriction, so violations are always collected in
// declaration order — a parallel check reports the same violations, in
// the same order, with the same first-failure restriction index as the
// sequential one. All restrictions share the computation's memoized
// history lattice, which is enumerated at most once. Restrictions with a
// non-nil pre entry were already refuted by the lint pre-pass and are
// not evaluated (they count against the violation budget in order, like
// a found violation); restrictions with a true hold entry were proved to
// hold by the fast-path guard and are not evaluated either (their result
// stays nil, exactly the verdict the enumeration would reach).
func restrictionCounterexamples(s *spec.Spec, c *core.Computation, opts Options, pre []*Violation, hold []bool) []*logic.Counterexample {
	rs := s.Restrictions()
	cxs := make([]*logic.Counterexample, len(rs))
	skip := func(i int) bool { return pre != nil && pre[i] != nil }
	holds := func(i int) bool { return hold != nil && hold[i] }
	// eval runs one restriction under its own span, so the trace and the
	// per-restriction stats table attribute each engine stage's time to
	// the restriction shape that incurred it. The name is only built when
	// the collector is on, keeping the disabled path allocation-free.
	eval := func(i int, inner logic.CheckOptions) *logic.Counterexample {
		name := ""
		if obs.Enabled() {
			name = "restriction " + rs[i].Owner + "/" + rs[i].Name
		}
		ctx, sp := obs.StartSpan(inner.Ctx, name)
		inner.Ctx = ctx
		cx := logic.Holds(rs[i].F, c, inner)
		sp.End()
		return cx
	}
	// Cancellation leaves the remaining entries nil — indistinguishable
	// from "holds" in the returned slice, so callers that must tell the
	// difference consult ctx.Err(), as with every partial result here.
	done := logic.Done(opts.Check.Ctx)
	w := logic.Workers(opts.Check.Parallelism, len(rs))
	if w <= 1 {
		// Sequential path: stop at the violation budget like the historical
		// code did (later restrictions are simply never evaluated).
		budget := opts.MaxViolations
		found := 0
		for i := range rs {
			if logic.Cancelled(done) {
				break
			}
			if !skip(i) && !holds(i) {
				cxs[i] = eval(i, opts.Check)
			}
			if cxs[i] != nil || skip(i) {
				found++
				if budget > 0 && found >= budget {
					break
				}
			}
		}
		return cxs
	}
	inner := opts.Check
	inner.Parallelism = 1
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if logic.Cancelled(done) {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= len(rs) {
					return
				}
				if skip(i) || holds(i) {
					continue
				}
				cxs[i] = eval(i, inner)
			}
		}()
	}
	wg.Wait()
	return cxs
}

func checkEvents(s *spec.Spec, c *core.Computation, add func(Violation) bool) bool {
	for _, e := range c.Events() {
		d, ok := s.Element(e.Element)
		if !ok {
			if !add(Violation{
				Kind:    UndeclaredElement,
				Message: fmt.Sprintf("event %s occurs at undeclared element %s", e.Name(), e.Element),
			}) {
				return false
			}
			continue
		}
		ec, ok := d.EventDecl(e.Class)
		if !ok {
			if !add(Violation{
				Kind:    UndeclaredClass,
				Message: fmt.Sprintf("event %s has undeclared class %s at element %s", e.Name(), e.Class, e.Element),
			}) {
				return false
			}
			continue
		}
		for p := range e.Params {
			if !ec.HasParam(p) {
				if !add(Violation{
					Kind:    UndeclaredParam,
					Message: fmt.Sprintf("event %s carries undeclared parameter %s", e.Name(), p),
				}) {
					return false
				}
			}
		}
	}
	return true
}

func checkEnables(s *spec.Spec, c *core.Computation, add func(Violation) bool) bool {
	static, err := s.Universe()
	if err != nil {
		return add(Violation{Kind: IllegalEnable, Message: "invalid group structure: " + err.Error()})
	}
	dynamic := core.HasDynamicChanges(c)
	for _, e := range c.Events() {
		u := static
		if dynamic {
			// Dynamic group structure: the edge is judged by the group
			// structure in the source event's causal past (the paper's
			// footnote: structure changes are themselves events).
			u, err = core.UniverseAt(static, c, e.ID)
			if err != nil {
				return add(Violation{Kind: IllegalEnable, Message: err.Error()})
			}
		}
		for _, succ := range c.Enabled(e.ID) {
			tgt := c.Event(succ)
			if !u.MayEnable(e.Element, tgt.Element, tgt.Class) {
				if !add(Violation{
					Kind: IllegalEnable,
					Message: fmt.Sprintf("%s may not enable %s: no access from %s to %s",
						e.Name(), tgt.Name(), e.Element, tgt.Element),
				}) {
					return false
				}
			}
		}
	}
	return true
}
