package legal_test

import (
	"fmt"
	"sort"
	"testing"

	"gem/internal/core"
	"gem/internal/legal"
	"gem/internal/lint"
	"gem/internal/logic"
	"gem/internal/problems/boundedbuf"
	"gem/internal/problems/rw"
	"gem/internal/spec"
)

// violationKeys projects a result onto the (kind, owner, restriction)
// triples that identify which checks failed, ignoring messages (the
// prelint short-circuit is allowed to word violations differently).
func violationKeys(r legal.Result) []string {
	keys := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		keys = append(keys, fmt.Sprintf("%d/%s/%s", v.Kind, v.Owner, v.Restriction))
	}
	sort.Strings(keys)
	return keys
}

// checkAgreement runs the legality check with and without the lint
// pre-pass and asserts the verdict and the set of failing restrictions
// are identical.
func checkAgreement(t *testing.T, name string, s *spec.Spec, c *core.Computation) legal.Result {
	t.Helper()
	plain := legal.Check(s, c, legal.Options{})
	pre := legal.Check(s, c, legal.Options{Prelint: true})
	if plain.Legal() != pre.Legal() {
		t.Fatalf("%s: prelint changed the verdict: plain legal=%v, prelint legal=%v",
			name, plain.Legal(), pre.Legal())
	}
	pk, ck := violationKeys(plain), violationKeys(pre)
	if len(pk) != len(ck) {
		t.Fatalf("%s: prelint changed the violation set:\nplain:   %v\nprelint: %v", name, pk, ck)
	}
	for i := range pk {
		if pk[i] != ck[i] {
			t.Fatalf("%s: prelint changed the violation set:\nplain:   %v\nprelint: %v", name, pk, ck)
		}
	}
	return plain
}

func buildBoundedBuf(t *testing.T) (*spec.Spec, *core.Computation) {
	t.Helper()
	w := boundedbuf.Workload{Producers: 1, Consumers: 1, ItemsPerProducer: 2, Capacity: 2}
	s, err := boundedbuf.ProblemSpec(w)
	if err != nil {
		t.Fatal(err)
	}
	c, err := boundedbuf.BuildComputation(s, w)
	if err != nil {
		t.Fatal(err)
	}
	return s, c
}

// TestPrelintAgreesOnCleanSpecs: the pre-pass is a no-op on the shipped
// specs (zero lint errors), so verdicts trivially agree and stay legal.
func TestPrelintAgreesOnCleanSpecs(t *testing.T) {
	s, c := buildBoundedBuf(t)
	res := checkAgreement(t, "boundedbuf", s, c)
	if !res.Legal() {
		t.Fatalf("clean boundedbuf spec judged illegal: %v", res.Violations)
	}
}

// TestPrelintAgreesOnPrereqCycleMutant: adding the reverse prerequisite
// Fetch -> Deposit alongside Deposit -> Fetch makes both classes
// statically doomed (GEM004). The pre-pass must short-circuit exactly
// the restrictions the dynamic evaluation would fail.
func TestPrelintAgreesOnPrereqCycleMutant(t *testing.T) {
	s, c := buildBoundedBuf(t)
	s.AddRestriction("mutant-fetch-first",
		logic.Prereq(core.Ref(boundedbuf.BufferElement, "Fetch"), core.Ref(boundedbuf.BufferElement, "Deposit")))
	s.AddRestriction("mutant-deposit-first",
		logic.Prereq(core.Ref(boundedbuf.BufferElement, "Deposit"), core.Ref(boundedbuf.BufferElement, "Fetch")))

	lres := lint.Analyze(s)
	if len(lres.Doomed()) == 0 {
		t.Fatal("cycle mutant: lint marked no constraint doomed (GEM004 missed)")
	}

	res := checkAgreement(t, "cycle-mutant", s, c)
	// Satellite (d): a lint error on the mutant implies the dynamic
	// legality check also fails.
	if res.Legal() {
		t.Fatal("cycle mutant lints with errors but the dynamic check passed")
	}
}

// TestPrelintAgreesOnAccessMutant: requiring a user event to directly
// enable an event inside the db group's non-port member violates the
// Section 4 access relation (GEM005); the dynamic check fails the same
// restriction because no such enable edge can exist in the computation.
func TestPrelintAgreesOnAccessMutant(t *testing.T) {
	s, err := rw.ProblemSpec([]string{"u1", "w1"}, false)
	if err != nil {
		t.Fatal(err)
	}
	s.AddRestriction("mutant-direct-read",
		logic.Prereq(core.Ref("u1", "Read"), core.Ref("db.data", "Getval")))
	c, err := rw.BuildComputation(s, []rw.Transaction{
		{User: "u1", Write: false, After: -1},
		{User: "w1", Write: true, Value: 7, After: 0},
	})
	if err != nil {
		t.Fatal(err)
	}

	lres := lint.Analyze(s)
	var sawAccess bool
	for _, d := range lres.Errors() {
		if d.Code == lint.CodeAccessForbidden {
			sawAccess = true
		}
	}
	if !sawAccess {
		t.Fatal("access mutant: lint reported no GEM005 error")
	}

	res := checkAgreement(t, "access-mutant", s, c)
	if res.Legal() {
		t.Fatal("access mutant lints with errors but the dynamic check passed")
	}
}

// TestPrelintAgreesOnDanglingMutant: a restriction quantifying over an
// undeclared element is a lint error (GEM001) but passes dynamically
// (its domain is empty), so the pre-pass must NOT short-circuit it —
// doing so would flip a legal verdict to illegal.
func TestPrelintAgreesOnDanglingMutant(t *testing.T) {
	s, c := buildBoundedBuf(t)
	s.AddRestriction("mutant-phantom",
		logic.ForAll{Var: "x", Ref: core.Ref("phantom", "Ev"), Body: logic.Occurred{Var: "x"}})

	lres := lint.Analyze(s)
	if len(lres.Errors()) == 0 {
		t.Fatal("dangling mutant: lint reported no error")
	}

	res := checkAgreement(t, "dangling-mutant", s, c)
	if !res.Legal() {
		t.Fatalf("dangling mutant passes dynamically but was judged illegal: %v", res.Violations)
	}
}
