package legal

import (
	"gem/internal/analyze"
	"gem/internal/core"
	"gem/internal/spec"
)

// fastPathHolds runs the deep analyzer over the specification (memoized
// per Spec) and evaluates each restriction's emptiness guard against the
// computation. A true entry means the restriction is statically
// satisfied on this computation — every class and thread type whose
// events could falsify it is absent — so its enumeration is skipped with
// the verdict preserved (the guard calculus in internal/analyze is sound
// for arbitrary computations, legal or not). Returns nil when no guard
// fires, so callers pay nothing downstream.
func fastPathHolds(s *spec.Spec, c *core.Computation, rs []spec.OwnedRestriction) []bool {
	res := analyze.ForSpec(s)
	var out []bool
	for i, r := range rs {
		g, ok := res.GuardFor(r.Owner, r.Name)
		if !ok || !g.Decisive() || !g.HoldsOn(c) {
			continue
		}
		if out == nil {
			out = make([]bool, len(rs))
		}
		out[i] = true
	}
	return out
}
