// Package obs is the check pipeline's observability layer: lightweight
// spans and counters in the style of dd-trace-go's tracer/statsd split,
// recorded into a process-global collector that the CLIs flush as a
// Chrome trace-event file (-trace, viewable in chrome://tracing or
// Perfetto) and a deterministic stats table (-stats).
//
// The collector is disabled by default. Every entry point then reduces
// to a single atomic load and performs no allocation, so the engines
// stay instrumented permanently without taxing production runs: the
// disabled-path cost of a span is one branch, and benchmark deltas
// (scripts/bench.sh asserts BenchmarkE4MonitorRW/j1 against the
// previous record) keep that claim honest.
//
// Span parentage travels through context.Context, the same channel the
// engines use for cancellation (logic.CheckOptions.Ctx): a stage that
// opens a span passes the derived context down, and child spans land on
// the parent's trace track. Enable must not be called concurrently with
// recording; the CLIs enable once before the pipeline starts.
package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRec is one completed span.
type SpanRec struct {
	// Name identifies the stage ("gemlang.parse", "engine.lattice",
	// "engine.lattice.cex" for counterexample extraction from the
	// history lattice, "restriction buf/cap", …). Stats aggregate by
	// name.
	Name string
	// Parent is the enclosing span's name, "" for roots. The stats table
	// uses it for the per-restriction-per-engine breakdown.
	Parent string
	// Tid is the trace track: concurrent root spans get distinct tracks
	// (recycled when a root ends), children inherit the parent's, so the
	// Chrome trace viewer nests spans correctly.
	Tid int32
	// Start is the offset from the collector epoch; Dur the wall time.
	Start time.Duration
	Dur   time.Duration
}

var enabled atomic.Bool

var col struct {
	mu       sync.Mutex
	epoch    time.Time
	spans    []SpanRec
	counters map[string]int64
	gauges   map[string]int64
	freeTids []int32
	nextTid  int32
}

// Enabled reports whether the collector is recording. Call sites that
// must build a span name (string concatenation allocates) guard on it;
// plain StartSpan/Count calls need not.
func Enabled() bool { return enabled.Load() }

// Enable clears the collector and starts recording. It must not race
// with in-flight recording: enable before the pipeline starts.
func Enable() {
	col.mu.Lock()
	col.epoch = time.Now()
	col.spans = nil
	col.counters = make(map[string]int64)
	col.gauges = make(map[string]int64)
	col.freeTids = nil
	col.nextTid = 0
	col.mu.Unlock()
	enabled.Store(true)
}

// Disable stops recording. Data collected so far stays readable through
// Snapshot/WriteTrace/WriteStats.
func Disable() { enabled.Store(false) }

// Span is a handle for one in-flight timed section. The zero Span —
// what StartSpan returns while the collector is disabled — is inert:
// End on it is a no-op.
type Span struct {
	name   string
	parent string
	tid    int32
	start  time.Duration
	on     bool
	root   bool
}

type ctxKey struct{}

type ctxSpan struct {
	name string
	tid  int32
}

// StartSpan opens a span as a child of the span carried by ctx (if any)
// and returns a context carrying the new span for further nesting. With
// the collector disabled it returns ctx unchanged and the zero Span —
// no allocation. ctx may be nil (treated as context.Background()).
func StartSpan(ctx context.Context, name string) (context.Context, Span) {
	if !enabled.Load() {
		return ctx, Span{}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sp := Span{name: name, on: true}
	if parent, ok := ctx.Value(ctxKey{}).(ctxSpan); ok {
		sp.tid = parent.tid
		sp.parent = parent.name
	} else {
		sp.tid = acquireTid()
		sp.root = true
	}
	sp.start = time.Since(col.epoch)
	return context.WithValue(ctx, ctxKey{}, ctxSpan{name: name, tid: sp.tid}), sp
}

// End closes the span and records it. Ending a zero Span does nothing;
// a span started while enabled is recorded even if recording was
// disabled in between, so trace files stay balanced.
func (s Span) End() {
	if !s.on {
		return
	}
	end := time.Since(col.epoch)
	col.mu.Lock()
	col.spans = append(col.spans, SpanRec{
		Name: s.name, Parent: s.parent, Tid: s.tid, Start: s.start, Dur: end - s.start,
	})
	if s.root {
		col.freeTids = append(col.freeTids, s.tid)
	}
	col.mu.Unlock()
}

// acquireTid hands out a trace track: a recycled one if a root span has
// finished, a fresh one otherwise, so the number of tracks equals the
// peak number of concurrently open roots (≈ the worker count), not the
// total span count.
func acquireTid() int32 {
	col.mu.Lock()
	defer col.mu.Unlock()
	if n := len(col.freeTids); n > 0 {
		t := col.freeTids[n-1]
		col.freeTids = col.freeTids[:n-1]
		return t
	}
	col.nextTid++
	return col.nextTid
}

// Count adds delta to the named counter (total histories enumerated,
// prelint short-circuits, …). No-op when disabled.
func Count(name string, delta int64) {
	if !enabled.Load() {
		return
	}
	col.mu.Lock()
	col.counters[name] += delta
	col.mu.Unlock()
}

// SetMax raises the named gauge to v when v is larger — a high-water
// mark, e.g. the largest history lattice built. No-op when disabled.
func SetMax(name string, v int64) {
	if !enabled.Load() {
		return
	}
	col.mu.Lock()
	if cur, ok := col.gauges[name]; !ok || v > cur {
		col.gauges[name] = v
	}
	col.mu.Unlock()
}

// Profile is an immutable snapshot of everything recorded since Enable.
type Profile struct {
	Spans    []SpanRec
	Counters map[string]int64
	Gauges   map[string]int64
}

// Snapshot copies the collector state. Safe to call while recording is
// still in progress (an interrupted run snapshots what it has).
func Snapshot() *Profile {
	col.mu.Lock()
	defer col.mu.Unlock()
	p := &Profile{
		Spans:    append([]SpanRec(nil), col.spans...),
		Counters: make(map[string]int64, len(col.counters)),
		Gauges:   make(map[string]int64, len(col.gauges)),
	}
	for k, v := range col.counters {
		p.Counters[k] = v
	}
	for k, v := range col.gauges {
		p.Gauges[k] = v
	}
	return p
}
