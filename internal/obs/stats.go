package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// spanAgg accumulates one stats row.
type spanAgg struct {
	key   string
	count int64
	total time.Duration
	max   time.Duration
}

// WriteStats renders the current snapshot as a plain-text table: span
// totals aggregated by name, the per-restriction × engine-stage
// breakdown the tuning workflow reads first, and every counter and
// gauge. Rows are sorted by name (within the restriction table, by
// descending total then name), so two runs of a deterministic pipeline
// differ only in the measured times.
func WriteStats(w io.Writer) error {
	return writeStats(w, Snapshot())
}

func writeStats(w io.Writer, p *Profile) error {
	byName := map[string]*spanAgg{}
	byStage := map[string]*spanAgg{}
	for _, s := range p.Spans {
		add(byName, s.Name, s.Dur)
		// The per-restriction engine table pairs each engine-stage span
		// with its enclosing restriction (or property) span.
		if strings.HasPrefix(s.Name, "engine.") && s.Parent != "" {
			add(byStage, s.Parent+"\x00"+s.Name, s.Dur)
		}
	}

	if _, err := fmt.Fprintf(w, "== spans ==\n%-44s %8s %12s %12s %12s\n",
		"SPAN", "COUNT", "TOTAL", "MEAN", "MAX"); err != nil {
		return err
	}
	for _, a := range sortedAggs(byName, false) {
		mean := time.Duration(int64(a.total) / a.count)
		if _, err := fmt.Fprintf(w, "%-44s %8d %12s %12s %12s\n",
			a.key, a.count, round(a.total), round(mean), round(a.max)); err != nil {
			return err
		}
	}

	if len(byStage) > 0 {
		if _, err := fmt.Fprintf(w, "\n== per-restriction engine time ==\n%-44s %-18s %8s %12s\n",
			"RESTRICTION", "ENGINE", "COUNT", "TOTAL"); err != nil {
			return err
		}
		for _, a := range sortedAggs(byStage, true) {
			owner, stage, _ := strings.Cut(a.key, "\x00")
			if _, err := fmt.Fprintf(w, "%-44s %-18s %8d %12s\n",
				owner, stage, a.count, round(a.total)); err != nil {
				return err
			}
		}
	}

	if len(p.Counters) > 0 || len(p.Gauges) > 0 {
		if _, err := fmt.Fprintf(w, "\n== counters ==\n"); err != nil {
			return err
		}
		for _, name := range sortedKeys(p.Counters) {
			if _, err := fmt.Fprintf(w, "%-44s %12d\n", name, p.Counters[name]); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(p.Gauges) {
			if _, err := fmt.Fprintf(w, "%-44s %12d (max)\n", name, p.Gauges[name]); err != nil {
				return err
			}
		}
	}
	return nil
}

func add(m map[string]*spanAgg, key string, d time.Duration) {
	a := m[key]
	if a == nil {
		a = &spanAgg{key: key}
		m[key] = a
	}
	a.count++
	a.total += d
	if d > a.max {
		a.max = d
	}
}

// sortedAggs orders rows by name, or — for the hot-spot table — by
// descending total (ties by name) so the most expensive restriction
// shapes lead.
func sortedAggs(m map[string]*spanAgg, byTotal bool) []*spanAgg {
	out := make([]*spanAgg, 0, len(m))
	for _, a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if byTotal && out[i].total != out[j].total {
			return out[i].total > out[j].total
		}
		return out[i].key < out[j].key
	})
	return out
}

// round trims durations to three significant time units worth of
// precision so table columns stay narrow.
func round(d time.Duration) time.Duration {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond)
	case d >= time.Millisecond:
		return d.Round(time.Microsecond)
	default:
		return d
	}
}
