package obs

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsInert(t *testing.T) {
	Disable()
	ctx, sp := StartSpan(context.Background(), "x")
	if sp != (Span{}) {
		t.Error("disabled StartSpan must return the zero Span")
	}
	sp.End() // must not panic or record
	Count("c", 1)
	SetMax("g", 7)
	_ = ctx
	Enable()
	defer Disable()
	if p := Snapshot(); len(p.Spans) != 0 || len(p.Counters) != 0 || len(p.Gauges) != 0 {
		t.Errorf("disabled-phase activity leaked into the snapshot: %+v", p)
	}
}

// TestDisabledAllocationFree pins the tentpole claim: with the
// collector off, spans and counters allocate nothing.
func TestDisabledAllocationFree(t *testing.T) {
	Disable()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		c, sp := StartSpan(ctx, "hot")
		Count("n", 1)
		SetMax("m", 3)
		sp.End()
		_ = c
	})
	if allocs != 0 {
		t.Fatalf("disabled instrumentation allocates %v per op, want 0", allocs)
	}
}

func TestSpanNestingAndCounters(t *testing.T) {
	Enable()
	defer Disable()
	ctx, root := StartSpan(nil, "root")
	ctx2, child := StartSpan(ctx, "child")
	_, grand := StartSpan(ctx2, "grand")
	grand.End()
	child.End()
	root.End()
	Count("hits", 2)
	Count("hits", 3)
	SetMax("size", 10)
	SetMax("size", 4)

	p := Snapshot()
	if len(p.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(p.Spans))
	}
	byName := map[string]SpanRec{}
	for _, s := range p.Spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != "root" || byName["grand"].Parent != "child" {
		t.Errorf("parent chain wrong: %+v", p.Spans)
	}
	if byName["child"].Tid != byName["root"].Tid || byName["grand"].Tid != byName["root"].Tid {
		t.Errorf("children must inherit the root track: %+v", p.Spans)
	}
	if p.Counters["hits"] != 5 {
		t.Errorf("counter hits = %d, want 5", p.Counters["hits"])
	}
	if p.Gauges["size"] != 10 {
		t.Errorf("gauge size = %d, want 10 (high-water mark)", p.Gauges["size"])
	}
}

// TestTidRecycling checks concurrent roots get distinct tracks and that
// finished tracks are reused, keeping the trace readable.
func TestTidRecycling(t *testing.T) {
	Enable()
	defer Disable()
	_, a := StartSpan(nil, "a")
	_, b := StartSpan(nil, "b")
	if a.tid == b.tid {
		t.Fatal("concurrent roots must get distinct tids")
	}
	b.End()
	_, c := StartSpan(nil, "c")
	if c.tid != b.tid {
		t.Errorf("tid %d not recycled (got %d)", b.tid, c.tid)
	}
	c.End()
	a.End()
}

func TestConcurrentRecording(t *testing.T) {
	Enable()
	defer Disable()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				ctx, sp := StartSpan(nil, "work")
				_, inner := StartSpan(ctx, "engine.seq")
				Count("ops", 1)
				inner.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	p := Snapshot()
	if got := p.Counters["ops"]; got != 800 {
		t.Errorf("ops = %d, want 800", got)
	}
	if len(p.Spans) != 1600 {
		t.Errorf("spans = %d, want 1600", len(p.Spans))
	}
}

func TestWriteTraceWellFormed(t *testing.T) {
	Enable()
	defer Disable()
	ctx, sp := StartSpan(nil, "restriction buf/cap")
	_, eng := StartSpan(ctx, "engine.lattice")
	time.Sleep(time.Millisecond)
	eng.End()
	sp.End()
	Count("lattice.histories", 12)

	var sb strings.Builder
	if err := WriteTrace(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var spans, counters int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("span event lacks dur: %v", ev)
			}
		case "C":
			counters++
		}
	}
	if spans != 2 || counters != 1 {
		t.Errorf("got %d spans / %d counters, want 2 / 1", spans, counters)
	}
}

func TestWriteStatsDeterministicShape(t *testing.T) {
	Enable()
	defer Disable()
	for _, name := range []string{"restriction b/r2", "restriction a/r1"} {
		ctx, sp := StartSpan(nil, name)
		_, eng := StartSpan(ctx, "engine.seq")
		eng.End()
		sp.End()
	}
	Count("fastpath.hits", 3)
	SetMax("lattice.max_histories", 42)

	var one strings.Builder
	if err := WriteStats(&one); err != nil {
		t.Fatal(err)
	}
	out := one.String()
	for _, want := range []string{
		"== spans ==", "== per-restriction engine time ==", "== counters ==",
		"restriction a/r1", "engine.seq", "fastpath.hits", "lattice.max_histories",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats output missing %q:\n%s", want, out)
		}
	}
	// Name-sorted span table: a/r1 before b/r2.
	if strings.Index(out, "restriction a/r1") > strings.Index(out, "restriction b/r2") {
		t.Errorf("span rows not sorted by name:\n%s", out)
	}
}
