package obs

import "io"

// Flush writes whatever the CLI's -trace/-stats flags requested: a
// non-empty tracePath writes the Chrome trace file, stats writes the
// table to w (the CLIs pass stderr, keeping stdout for results). It is
// the single deferred exit hook of every command, so an interrupted run
// still flushes the partial trace it collected.
func Flush(tracePath string, stats bool, w io.Writer) error {
	if err := WriteTraceFile(tracePath); err != nil {
		return err
	}
	if stats {
		return WriteStats(w)
	}
	return nil
}
