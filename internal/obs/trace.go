package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// traceEvent is one entry of the Chrome trace-event format (the JSON
// object flavor with a top-level traceEvents array), the subset both
// chrome://tracing and Perfetto load: complete ("X") duration events
// for spans, counter ("C") events for counters and gauges, and one
// process-name metadata ("M") record.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since the collector epoch
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

const tracePid = 1

// WriteTrace renders the current snapshot as a Chrome trace-event JSON
// document. Spans are sorted by start time (ties by track then name),
// so the output is stable for a deterministic pipeline.
func WriteTrace(w io.Writer) error {
	return writeTrace(w, Snapshot())
}

// WriteTraceFile writes the trace to path, creating or truncating it.
// An empty path is a no-op, so CLIs can call it unconditionally.
func WriteTraceFile(path string) (err error) {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("obs: %w", cerr)
		}
	}()
	return WriteTrace(f)
}

func writeTrace(w io.Writer, p *Profile) error {
	spans := append([]SpanRec(nil), p.Spans...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		if spans[i].Tid != spans[j].Tid {
			return spans[i].Tid < spans[j].Tid
		}
		return spans[i].Name < spans[j].Name
	})
	events := make([]traceEvent, 0, len(spans)+len(p.Counters)+len(p.Gauges)+1)
	events = append(events, traceEvent{
		Name: "process_name", Ph: "M", Pid: tracePid,
		Args: map[string]any{"name": "gem"},
	})
	var lastEnd float64
	for _, s := range spans {
		dur := float64(s.Dur.Nanoseconds()) / 1e3
		ev := traceEvent{
			Name: s.Name, Ph: "X",
			Ts:  float64(s.Start.Nanoseconds()) / 1e3,
			Dur: &dur, Pid: tracePid, Tid: s.Tid,
		}
		if s.Parent != "" {
			ev.Args = map[string]any{"parent": s.Parent}
		}
		if end := ev.Ts + dur; end > lastEnd {
			lastEnd = end
		}
		events = append(events, ev)
	}
	// Counters and gauges become single counter samples stamped at the
	// end of the run, in sorted name order.
	for _, name := range sortedKeys(p.Counters) {
		events = append(events, traceEvent{
			Name: name, Ph: "C", Ts: lastEnd, Pid: tracePid,
			Args: map[string]any{"value": p.Counters[name]},
		})
	}
	for _, name := range sortedKeys(p.Gauges) {
		events = append(events, traceEvent{
			Name: name, Ph: "C", Ts: lastEnd, Pid: tracePid,
			Args: map[string]any{"value": p.Gauges[name]},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
