package history

import (
	"fmt"
	"strings"

	"gem/internal/core"
	"gem/internal/obs"
	"gem/internal/order"
)

// Sequence is a (candidate) valid history sequence: α0 ⊑ α1 ⊑ ….
type Sequence []History

// Validate checks the two vhs conditions from the paper: the sequence is
// monotonically increasing, and any two events first occurring in the same
// history are potentially concurrent. The concurrency condition is decided
// by a clique test of the step's delta against the computation's memoized
// per-event concurrency rows, with the delta held in a pooled scratch set;
// only on failure is the pairwise loop replayed to name the offending
// events.
func (s Sequence) Validate() error {
	if len(s) < 2 {
		return nil
	}
	c := s[1].Computation()
	rows := c.Concurrency()
	delta := getScratch(c.NumEvents())
	defer putScratch(delta)
	for i := 1; i < len(s); i++ {
		if !s[i-1].PrefixOf(s[i]) {
			return fmt.Errorf("history: step %d is not monotone", i)
		}
		delta.CopyFrom(s[i].Set())
		delta.AndNotWith(s[i-1].Set())
		if !order.IsClique(rows, *delta) {
			members := delta.Members()
			for a := 0; a < len(members); a++ {
				for b := a + 1; b < len(members); b++ {
					ea, eb := core.EventID(members[a]), core.EventID(members[b])
					if !c.Concurrent(ea, eb) {
						return fmt.Errorf("history: step %d adds ordered events %s and %s simultaneously",
							i, c.Event(ea).Name(), c.Event(eb).Name())
					}
				}
			}
		}
	}
	return nil
}

// IsValid reports whether the sequence is a valid history sequence.
func (s Sequence) IsValid() bool { return s.Validate() == nil }

// Tail returns the suffix s[i:]. Per the paper's tail-closure property, a
// tail of a vhs is a vhs.
func (s Sequence) Tail(i int) Sequence { return s[i:] }

// IsComplete reports whether the sequence starts at the empty history and
// ends at the full computation — i.e. it describes an entire execution.
func (s Sequence) IsComplete() bool {
	if len(s) == 0 {
		return false
	}
	return s[0].Len() == 0 && s[len(s)-1].IsFull()
}

// String renders the sequence.
func (s Sequence) String() string {
	var sb strings.Builder
	for i, h := range s {
		if i > 0 {
			sb.WriteString(" ⊑ ")
		}
		sb.WriteString(h.String())
	}
	return sb.String()
}

// EnumerateComplete enumerates every maximal valid history sequence of c:
// strictly increasing sequences from the empty history to the full
// computation, where each step adds a non-empty antichain of pairwise
// concurrent events whose predecessors are already present. fn receives
// each complete sequence; the slice and its histories are owned by the
// callback (they are freshly allocated per sequence). Enumeration stops
// early when fn returns false or, when limit > 0, after limit sequences.
// Returns the number produced.
func EnumerateComplete(c *core.Computation, limit int, fn func(s Sequence) bool) int {
	n := c.NumEvents()
	count := 0
	stop := false
	reach, preds := c.Reach(), c.Preds()
	cmp := func(u, v int) bool {
		return c.Temporal(core.EventID(u), core.EventID(v)) || c.Temporal(core.EventID(v), core.EventID(u))
	}
	// Frontier buffers are reused per recursion depth; only the history
	// sets themselves are freshly allocated, since emitted sequences own
	// them.
	var frontiers [][]int

	var rec func(cur order.Bitset, seq []order.Bitset, depth int)
	rec = func(cur order.Bitset, seq []order.Bitset, depth int) {
		if stop {
			return
		}
		if cur.Count() == n {
			count++
			out := make(Sequence, len(seq))
			for i, s := range seq {
				out[i] = History{c: c, set: s}
			}
			if !fn(out) || (limit > 0 && count >= limit) {
				stop = true
			}
			return
		}
		if depth >= len(frontiers) {
			frontiers = append(frontiers, nil)
		}
		frontier := order.MinimalOutsideAppend(reach, preds, cur, frontiers[depth][:0])
		frontiers[depth] = frontier
		order.Antichains(frontier, cmp, func(chain []int) bool {
			next := cur.Clone()
			for _, v := range chain {
				next.Set(v)
			}
			rec(next, append(seq, next), depth+1)
			return !stop
		})
	}
	empty := order.NewBitset(n)
	rec(empty, []order.Bitset{empty}, 0)
	obs.Count("sequences.enumerated", int64(count))
	return count
}

// EnumerateLinear enumerates only the step-size-one complete sequences —
// the linear extensions of the temporal order, viewed as history
// sequences. This is the interleaving semantics many other models use; GEM
// admits the larger vhs set (simultaneous concurrent steps). Used by the
// E10 ablation.
func EnumerateLinear(c *core.Computation, limit int, fn func(s Sequence) bool) int {
	n := c.NumEvents()
	count := order.LinearExtensions(c.Reach(), limit, func(ext []int) bool {
		seq := make(Sequence, 0, n+1)
		set := order.NewBitset(n)
		seq = append(seq, History{c: c, set: set.Clone()})
		for _, v := range ext {
			set.Set(v)
			seq = append(seq, History{c: c, set: set.Clone()})
		}
		return fn(seq)
	})
	obs.Count("sequences.enumerated", int64(count))
	return count
}

// CountComplete returns the number of maximal valid history sequences.
func CountComplete(c *core.Computation) int {
	return EnumerateComplete(c, 0, func(Sequence) bool { return true })
}
