package history

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestPaperVHS reproduces the Section 7 valid-history-sequence enumeration
// (experiment E2): the diamond computation has exactly three maximal vhs —
// α0,α1,α3,α4 / α0,α2,α3,α4 / α0,α3,α4 (each preceded here by the empty
// history).
func TestPaperVHS(t *testing.T) {
	c, _ := diamond(t)
	var seqs []Sequence
	n := EnumerateComplete(c, 0, func(s Sequence) bool {
		seqs = append(seqs, s)
		return true
	})
	if n != 3 || len(seqs) != 3 {
		t.Fatalf("found %d maximal vhs, want 3", n)
	}
	// Collect signature strings: sizes of each history.
	sigs := make(map[string]bool)
	for _, s := range seqs {
		if err := s.Validate(); err != nil {
			t.Errorf("enumerated sequence invalid: %v", err)
		}
		if !s.IsComplete() {
			t.Error("sequence should run from empty to full")
		}
		sig := ""
		for _, h := range s {
			sig += string(rune('0' + h.Len()))
		}
		sigs[sig] = true
	}
	// 0,1,2,3,4 twice (via e2 first or e3 first) collapses to one
	// signature; 0,1,3,4 is the simultaneous step.
	if !sigs["01234"] || !sigs["0134"] {
		t.Errorf("sequence shapes = %v, want 01234 and 0134", sigs)
	}
}

func TestVHSValidateRejectsNonMonotone(t *testing.T) {
	c, ids := diamond(t)
	s := Sequence{FromEvents(c, ids[1]), FromEvents(c, ids[0])}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "monotone") {
		t.Errorf("want monotonicity error, got %v", err)
	}
}

func TestVHSValidateRejectsOrderedSimultaneousStep(t *testing.T) {
	c, ids := diamond(t)
	// Jump from {} to {e1, e2}: e1 ⇒ e2, so they cannot first occur in the
	// same history.
	s := Sequence{Empty(c), FromEvents(c, ids[1])}
	if err := s.Validate(); err == nil || !strings.Contains(err.Error(), "ordered") {
		t.Errorf("want concurrency violation, got %v", err)
	}
}

func TestVHSAcceptsConcurrentStep(t *testing.T) {
	c, ids := diamond(t)
	// {e1} -> {e1, e2, e3}: e2 and e3 are concurrent, legal simultaneous
	// occurrence ("at the same time" in the paper).
	h13, err := FromEvents(c, ids[0]).Extend(ids[1], ids[2])
	if err != nil {
		t.Fatal(err)
	}
	s := Sequence{Empty(c), FromEvents(c, ids[0]), h13}
	if err := s.Validate(); err != nil {
		t.Errorf("concurrent simultaneous step should be valid: %v", err)
	}
	if !s.IsValid() {
		t.Error("IsValid disagrees with Validate")
	}
}

// TestVHSTailClosure verifies the paper's tail-closure property on all
// enumerated sequences: every tail of a vhs is a vhs.
func TestVHSTailClosure(t *testing.T) {
	c, _ := diamond(t)
	EnumerateComplete(c, 0, func(s Sequence) bool {
		for i := range s {
			if err := s.Tail(i).Validate(); err != nil {
				t.Errorf("tail %d of %v invalid: %v", i, s, err)
			}
		}
		return true
	})
}

func TestVHSIsComplete(t *testing.T) {
	c, ids := diamond(t)
	if (Sequence{}).IsComplete() {
		t.Error("empty sequence is not complete")
	}
	if (Sequence{Empty(c)}).IsComplete() {
		t.Error("sequence not reaching full computation is not complete")
	}
	if (Sequence{Full(c)}).IsComplete() {
		t.Error("sequence not starting empty is not complete")
	}
	_ = ids
}

func TestEnumerateLinear(t *testing.T) {
	c, _ := diamond(t)
	n := EnumerateLinear(c, 0, func(s Sequence) bool {
		if err := s.Validate(); err != nil {
			t.Errorf("linear sequence invalid: %v", err)
		}
		if len(s) != c.NumEvents()+1 {
			t.Errorf("linear sequence length %d, want %d", len(s), c.NumEvents()+1)
		}
		return true
	})
	// The diamond has 2 linear extensions but 3 vhs: linear semantics miss
	// the simultaneous step — the E10 ablation's point.
	if n != 2 {
		t.Errorf("linear sequences = %d, want 2", n)
	}
	if got := CountComplete(c); got != 3 {
		t.Errorf("complete vhs = %d, want 3", got)
	}
}

func TestEnumerateCompleteLimit(t *testing.T) {
	c, _ := diamond(t)
	if n := EnumerateComplete(c, 2, func(Sequence) bool { return true }); n != 2 {
		t.Errorf("limited enumeration produced %d, want 2", n)
	}
	calls := 0
	EnumerateComplete(c, 0, func(Sequence) bool { calls++; return false })
	if calls != 1 {
		t.Errorf("early stop after %d calls, want 1", calls)
	}
}

// Property: every enumerated complete sequence validates, is complete, and
// linear-extension count ≤ vhs count (linear sequences are a subset).
func TestQuickVHSProperties(t *testing.T) {
	f := func(seed int64) bool {
		c := randomComputation(seed, 6)
		ok := true
		vhsCount := EnumerateComplete(c, 500, func(s Sequence) bool {
			if s.Validate() != nil || !s.IsComplete() {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return false
		}
		linCount := EnumerateLinear(c, 500, func(Sequence) bool { return true })
		if vhsCount < 500 && linCount < 500 && linCount > vhsCount {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
