package history

import (
	"testing"

	"gem/internal/core"
)

func codecComp(t *testing.T) *core.Computation {
	t.Helper()
	b := core.NewBuilder()
	a := b.Event("e", "A", nil)
	c := b.Event("e", "B", nil)
	d := b.Event("f", "C", nil)
	b.Enable(a, d)
	_ = c
	comp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// Encode → Hydrate must round-trip the exact enumeration: same count,
// same sets, same order — a hydrated lattice is indistinguishable from
// an enumerated one, without counting as a build.
func TestLatticeCodecRoundTrip(t *testing.T) {
	src := codecComp(t)
	lat := Shared(src)
	want := lat.Histories()
	data := lat.Encode()
	if data == nil {
		t.Fatal("Encode returned nil after enumeration")
	}

	dst := codecComp(t)
	builds := LatticeBuilds()
	warm := Shared(dst)
	if warm.Enumerated() {
		t.Fatal("fresh lattice claims to be enumerated")
	}
	if err := warm.Hydrate(data); err != nil {
		t.Fatal(err)
	}
	if LatticeBuilds() != builds {
		t.Error("hydration counted as a lattice build")
	}
	got := warm.Histories()
	if LatticeBuilds() != builds {
		t.Error("Histories re-enumerated a hydrated lattice")
	}
	if len(got) != len(want) {
		t.Fatalf("hydrated %d histories, want %d", len(got), len(want))
	}
	for i := range got {
		if !got[i].Set().Equal(want[i].Set()) {
			t.Fatalf("history %d differs: %s vs %s", i, got[i], want[i])
		}
		if got[i].Computation() != dst {
			t.Fatalf("history %d not bound to the hydrating computation", i)
		}
	}
	// Derived structures work off the hydrated enumeration.
	if len(warm.Steps()) != len(Shared(src).Steps()) {
		t.Error("Steps disagrees after hydration")
	}
}

// Anything malformed must decode to an error and leave the lattice
// ready to enumerate normally.
func TestLatticeHydrateRejectsCorrupt(t *testing.T) {
	src := codecComp(t)
	lat := Shared(src)
	n := len(lat.Histories())
	good := lat.Encode()

	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("XLAT"), good[4:]...),
		"bad version":    append([]byte("GLAT\xff"), good[5:]...),
		"truncated":      good[:len(good)-1],
		"trailing bytes": append(append([]byte{}, good...), 0),
	}
	// Wrong event count: an artifact for a different computation shape.
	other := core.NewBuilder()
	other.Event("e", "A", nil)
	oc, err := other.Build()
	if err != nil {
		t.Fatal(err)
	}
	ol := Shared(oc)
	ol.Histories()
	cases["wrong computation"] = ol.Encode()

	for name, data := range cases {
		fresh := Shared(codecComp(t))
		if err := fresh.Hydrate(data); err == nil {
			t.Errorf("%s: Hydrate accepted malformed payload", name)
		}
		if fresh.Enumerated() {
			t.Errorf("%s: failed hydration left the lattice marked enumerated", name)
		}
		if len(fresh.Histories()) != n {
			t.Errorf("%s: enumeration after failed hydration broken", name)
		}
	}

	// Hydrate after enumeration is a no-op, even with garbage.
	done := Shared(codecComp(t))
	done.Histories()
	if err := done.Hydrate([]byte("garbage")); err != nil {
		t.Errorf("Hydrate on an enumerated lattice returned %v, want nil no-op", err)
	}
}
