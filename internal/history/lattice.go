package history

import (
	"sync"
	"sync/atomic"

	"gem/internal/core"
	"gem/internal/obs"
	"gem/internal/order"
)

// Lattice is the memoized history lattice of a computation: the full
// enumeration of its histories, plus the ⊑ (prefix) relation between
// them, computed at most once and shared by every restriction checked
// against the computation. A computation's event set and temporal order
// are immutable, so the lattice never changes; before this cache existed
// every checked formula re-ran the exponential ideal enumeration.
type Lattice struct {
	c *core.Computation

	histOnce  sync.Once
	histories []History
	built     atomic.Bool // set once histories is populated (enumerated or hydrated)

	pairsOnce sync.Once
	sups      [][]int32 // sups[i] = ascending indices j with histories[i] ⊑ histories[j]

	stepsOnce sync.Once
	steps     [][]int32 // steps[i] = ascending indices j one vhs step above histories[i]

	orderOnce sync.Once
	evalOrder []int32 // history indices by decreasing size
}

// latticeBuilds counts raw lattice enumerations, so tests can assert the
// lattice is enumerated at most once per computation.
var latticeBuilds atomic.Int64

// LatticeBuilds returns the number of raw history-lattice enumerations
// performed through Shared since process start.
func LatticeBuilds() int64 { return latticeBuilds.Load() }

// Shared returns the computation's lattice cache, creating the (empty)
// cache on first use. Enumeration itself is deferred to the first call
// of Histories or Pairs. Safe for concurrent use.
func Shared(c *core.Computation) *Lattice {
	return c.Derived("history.lattice", func() any { return &Lattice{c: c} }).(*Lattice)
}

// Histories returns every history of the computation, in the same
// deterministic order Enumerate produces. The slice and its histories
// are shared: callers must not modify them.
func (l *Lattice) Histories() []History {
	l.histOnce.Do(func() {
		latticeBuilds.Add(1)
		_, sp := obs.StartSpan(nil, "lattice.build")
		order.IdealsPre(l.c.Reach(), l.c.Preds(), 0, func(ideal order.Bitset) bool {
			// Ideals never mutates an emitted set, so it is safe to retain.
			l.histories = append(l.histories, History{c: l.c, set: ideal})
			return true
		})
		sp.End()
		obs.Count("lattice.builds", 1)
		obs.Count("lattice.histories", int64(len(l.histories)))
		obs.SetMax("lattice.max_histories", int64(len(l.histories)))
		l.built.Store(true)
	})
	return l.histories
}

// Enumerated reports whether the history enumeration has been populated
// — by Histories itself or by Hydrate. The persistent store uses it to
// persist lattices only after they have actually been built, and to
// skip re-persisting hydrated ones.
func (l *Lattice) Enumerated() bool { return l.built.Load() }

// Pairs calls fn with every ordered pair h1 ⊑ h2 of histories (including
// h1 = h2), in the same nested enumeration order a direct double loop
// over Histories would visit, stopping early if fn returns false. The
// subset relation is computed once and memoized.
func (l *Lattice) Pairs(fn func(h1, h2 History) bool) {
	hs := l.Histories()
	l.pairsOnce.Do(func() {
		l.sups = make([][]int32, len(hs))
		for i, h1 := range hs {
			for j, h2 := range hs {
				if h1.set.SubsetOf(h2.set) {
					l.sups[i] = append(l.sups[i], int32(j))
				}
			}
		}
	})
	for i := range hs {
		for _, j := range l.sups[i] {
			if !fn(hs[i], hs[j]) {
				return
			}
		}
	}
}

// Steps returns the valid-history-sequence step relation of the lattice:
// steps[i] lists (ascending) the indices j such that histories[j] extends
// histories[i] by one vhs step — a non-empty, pairwise potentially
// concurrent set of events. (Predecessor-closure of the added events is
// automatic between ideals: an added event's predecessors cannot be among
// the pairwise concurrent additions, so they lie in histories[i].)
// Complete valid history sequences are exactly the maximal paths of this
// DAG from the empty history to the full computation. Memoized; the
// returned slices must not be modified.
func (l *Lattice) Steps() [][]int32 {
	l.stepsOnce.Do(func() {
		hs := l.Histories()
		rows := l.c.Concurrency()
		delta := order.NewBitset(l.c.NumEvents())
		l.steps = make([][]int32, len(hs))
		for i, h1 := range hs {
			for j, h2 := range hs {
				if i == j || !h1.set.SubsetOf(h2.set) {
					continue
				}
				delta.CopyFrom(h2.set)
				delta.AndNotWith(h1.set)
				if order.IsClique(rows, delta) {
					l.steps[i] = append(l.steps[i], int32(j))
				}
			}
		}
	})
	return l.steps
}

// EvalOrder returns the history indices ordered by decreasing history
// size (ties in first-enumerated order). Every strict superset of
// histories[i] — in particular every Steps successor — appears before i,
// so a single pass in this order reaches the fixpoint of any
// successor-determined recurrence (the lattice evaluation engine's □/◇
// rules). Memoized; the returned slice must not be modified.
func (l *Lattice) EvalOrder() []int32 {
	l.orderOnce.Do(func() {
		hs := l.Histories()
		n := l.c.NumEvents()
		// Counting sort by size, largest bucket first, stable within.
		buckets := make([][]int32, n+1)
		for i, h := range hs {
			sz := h.Len()
			buckets[sz] = append(buckets[sz], int32(i))
		}
		l.evalOrder = make([]int32, 0, len(hs))
		for sz := n; sz >= 0; sz-- {
			l.evalOrder = append(l.evalOrder, buckets[sz]...)
		}
	})
	return l.evalOrder
}
