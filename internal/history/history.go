// Package history implements GEM histories and valid history sequences
// (Section 7 of the paper). A history is a prefix of a computation: a
// subset of its events closed under temporal predecessors. A valid history
// sequence (vhs) is a monotonically increasing sequence of histories in
// which all events first occurring in the same history are pairwise
// potentially concurrent.
package history

import (
	"fmt"
	"strings"

	"gem/internal/core"
	"gem/internal/obs"
	"gem/internal/order"
)

// History is a prefix of a computation, represented as a set of event ids.
type History struct {
	c   *core.Computation
	set order.Bitset
}

// Empty returns the empty history of c.
func Empty(c *core.Computation) History {
	return History{c: c, set: order.NewBitset(c.NumEvents())}
}

// Full returns the complete computation as a history.
func Full(c *core.Computation) History {
	return History{c: c, set: c.FullHistory()}
}

// FromSet wraps an event set as a history of c, reporting an error if the
// set is not prefix-closed (all temporal predecessors of each member must
// be members).
func FromSet(c *core.Computation, set order.Bitset) (History, error) {
	if !order.IsIdeal(c.Preds(), set) {
		return History{}, fmt.Errorf("history: set %s is not prefix-closed", set)
	}
	return History{c: c, set: set.Clone()}, nil
}

// FromEvents builds a history from the down-closure of the given events.
func FromEvents(c *core.Computation, ids ...core.EventID) History {
	seed := order.NewBitset(c.NumEvents())
	for _, id := range ids {
		seed.Set(int(id))
	}
	return History{c: c, set: order.DownClosure(c.Preds(), seed)}
}

// Computation returns the computation this history is a prefix of.
func (h History) Computation() *core.Computation { return h.c }

// Set returns the underlying event set. It must not be modified.
func (h History) Set() order.Bitset { return h.set }

// Has reports whether the event occurred in this history.
func (h History) Has(id core.EventID) bool { return h.set.Has(int(id)) }

// Len returns the number of events in the history.
func (h History) Len() int { return h.set.Count() }

// IsFull reports whether the history is the complete computation.
func (h History) IsFull() bool { return h.set.Count() == h.c.NumEvents() }

// Equal reports whether two histories contain the same events.
func (h History) Equal(other History) bool { return h.set.Equal(other.set) }

// PrefixOf reports h ⊑ other.
func (h History) PrefixOf(other History) bool { return h.set.SubsetOf(other.set) }

// Extend returns a new history with the additional events included. It
// reports an error if the result would not be prefix-closed.
func (h History) Extend(ids ...core.EventID) (History, error) {
	next := h.set.Clone()
	for _, id := range ids {
		next.Set(int(id))
	}
	if !order.IsIdeal(h.c.Preds(), next) {
		return History{}, fmt.Errorf("history: extension by %v is not prefix-closed", ids)
	}
	return History{c: h.c, set: next}, nil
}

// New implements the paper's new(e): e occurred and no event has observably
// followed it — there is no e' in the history with e ⇒ e'.
func (h History) New(id core.EventID) bool {
	if !h.Has(id) {
		return false
	}
	return !h.c.Reach()[int(id)].Intersects(h.set)
}

// Potential reports whether e could legally extend this history: e has not
// occurred, but every temporal predecessor of e has.
func (h History) Potential(id core.EventID) bool {
	if h.Has(id) {
		return false
	}
	return h.c.Preds()[int(id)].SubsetOf(h.set)
}

// At implements the paper's intermediate-control-point predicate
// "e at E2": e occurred and has not enabled any event of class E2 within
// this history.
func (h History) At(id core.EventID, class core.ClassRef) bool {
	if !h.Has(id) {
		return false
	}
	for _, succ := range h.c.Enabled(id) {
		if h.Has(succ) && class.Matches(h.c.Event(succ)) {
			return false
		}
	}
	return true
}

// Frontier returns the events that could individually extend the history
// (the minimal events of the complement), in id order.
func (h History) Frontier() []core.EventID {
	mins := order.MinimalOutside(h.c.Reach(), h.c.Preds(), h.set)
	out := make([]core.EventID, len(mins))
	for i, v := range mins {
		out[i] = core.EventID(v)
	}
	return out
}

// String renders the history as the set of event names.
func (h History) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	h.set.ForEach(func(i int) bool {
		if !first {
			sb.WriteString(", ")
		}
		first = false
		sb.WriteString(h.c.Event(core.EventID(i)).Name())
		return true
	})
	sb.WriteByte('}')
	return sb.String()
}

// Enumerate calls fn with every history of c (every prefix-closed subset,
// including the empty one). Stops early if fn returns false or, when
// limit > 0, after limit histories. Returns the number produced. The
// History passed to fn owns its set; callers must not modify it but may
// retain it.
func Enumerate(c *core.Computation, limit int, fn func(h History) bool) int {
	n := order.IdealsPre(c.Reach(), c.Preds(), limit, func(ideal order.Bitset) bool {
		return fn(History{c: c, set: ideal})
	})
	obs.Count("histories.enumerated", int64(n))
	return n
}

// Count returns the total number of histories of c.
func Count(c *core.Computation) int {
	return Enumerate(c, 0, func(History) bool { return true })
}
