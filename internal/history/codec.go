package history

// This file implements lattice serialization for the persistent store:
// a versioned binary encoding of a computation's full history
// enumeration, in enumeration order, so a warm process can seed the
// shared lattice without re-running the exponential ideal enumeration.
// The format is self-describing (magic + version + event count);
// anything malformed, truncated, or version-skewed decodes to an error
// — the store treats that as a cache miss, never a wrong lattice.

import (
	"encoding/binary"
	"errors"
	"fmt"

	"gem/internal/obs"
	"gem/internal/order"
)

// latticeMagic and LatticeFormatVersion identify the artifact encoding.
// Bump the version whenever the byte layout or the enumeration order of
// order.IdealsPre changes: the version participates in the store key, so
// old artifacts become unreachable instead of mis-decoded.
const (
	latticeMagic         = "GLAT"
	LatticeFormatVersion = 1
)

// Encode serializes the enumerated history lattice. It returns nil when
// the lattice has not been enumerated yet (there is nothing worth
// persisting — encoding would force the exponential build the caller is
// trying to avoid).
//
// Layout: "GLAT" | version byte | uvarint numEvents | uvarint
// numHistories | per history: uvarint size, then the member event ids
// delta-encoded as uvarints (first member +1, successive gaps).
func (l *Lattice) Encode() []byte {
	if !l.Enumerated() {
		return nil
	}
	var buf [binary.MaxVarintLen64]byte
	out := append([]byte(latticeMagic), LatticeFormatVersion)
	putUvarint := func(v uint64) {
		n := binary.PutUvarint(buf[:], v)
		out = append(out, buf[:n]...)
	}
	putUvarint(uint64(l.c.NumEvents()))
	putUvarint(uint64(len(l.histories)))
	for _, h := range l.histories {
		members := h.set.Members()
		putUvarint(uint64(len(members)))
		prev := -1
		for _, m := range members {
			putUvarint(uint64(m - prev))
			prev = m
		}
	}
	return out
}

// Hydrate installs a previously encoded enumeration into an
// un-enumerated lattice, so Histories (and everything derived from it:
// Pairs, Steps, EvalOrder) serves the persisted enumeration instead of
// rebuilding it. Validation is strict — wrong magic or version, a
// truncated payload, out-of-range or non-increasing members, an event
// count that does not match the computation, trailing bytes, or any set
// that is not prefix-closed under this computation's temporal order all
// return an error and leave the lattice untouched, ready to enumerate
// normally. A hydration does not count as a lattice build
// (LatticeBuilds), which is exactly the point.
//
// If the lattice was already enumerated, Hydrate is a no-op.
func (l *Lattice) Hydrate(data []byte) error {
	if l.Enumerated() {
		return nil
	}
	decoded, err := decodeLatticeHistories(l.c.NumEvents(), l.c.Preds(), data)
	if err != nil {
		return err
	}
	installed := false
	l.histOnce.Do(func() {
		for i := range decoded {
			decoded[i].c = l.c
		}
		l.histories = decoded
		l.built.Store(true)
		installed = true
	})
	if installed {
		obs.Count("lattice.hydrated", 1)
		obs.Count("lattice.histories", int64(len(l.histories)))
		obs.SetMax("lattice.max_histories", int64(len(l.histories)))
	}
	return nil
}

var errLatticeCorrupt = errors.New("history: malformed lattice artifact")

// decodeLatticeHistories parses and validates the payload against a
// computation with numEvents events and the given predecessor sets. The
// returned histories have their computation pointer unset; Hydrate fills
// it in.
func decodeLatticeHistories(numEvents int, preds []order.Bitset, data []byte) ([]History, error) {
	if len(data) < len(latticeMagic)+1 || string(data[:len(latticeMagic)]) != latticeMagic {
		return nil, errLatticeCorrupt
	}
	if data[len(latticeMagic)] != LatticeFormatVersion {
		return nil, fmt.Errorf("history: lattice artifact version %d, want %d", data[len(latticeMagic)], LatticeFormatVersion)
	}
	rest := data[len(latticeMagic)+1:]
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	n, ok := next()
	if !ok || int(n) != numEvents {
		return nil, errLatticeCorrupt
	}
	count, ok := next()
	if !ok {
		return nil, errLatticeCorrupt
	}
	// Each history costs at least one byte (its size varint), so a count
	// exceeding the remaining bytes is corrupt — checked before any
	// allocation so fuzzed headers cannot demand huge slices.
	if count > uint64(len(rest))+1 {
		return nil, errLatticeCorrupt
	}
	histories := make([]History, 0, count)
	for i := uint64(0); i < count; i++ {
		size, ok := next()
		if !ok || size > uint64(numEvents) {
			return nil, errLatticeCorrupt
		}
		set := order.NewBitset(numEvents)
		prev := -1
		for j := uint64(0); j < size; j++ {
			gap, ok := next()
			if !ok || gap == 0 || gap > uint64(numEvents) {
				return nil, errLatticeCorrupt
			}
			m := prev + int(gap)
			if m >= numEvents {
				return nil, errLatticeCorrupt
			}
			set.Set(m)
			prev = m
		}
		if !order.IsIdeal(preds, set) {
			return nil, errLatticeCorrupt
		}
		histories = append(histories, History{set: set})
	}
	if len(rest) != 0 {
		return nil, errLatticeCorrupt
	}
	return histories, nil
}
