package history

import (
	"sync"

	"gem/internal/order"
)

// scratchPool recycles event-capacity bitsets used as per-step delta
// scratch by Validate and the enumeration paths. Checking fans out across
// goroutines (one sequence per worker), so a sync.Pool gives each worker
// its own scratch set without a per-call allocation. Entries sized for a
// different computation are simply dropped.
var scratchPool sync.Pool

func getScratch(n int) *order.Bitset {
	if v := scratchPool.Get(); v != nil {
		if b := v.(*order.Bitset); b.Cap() == n {
			b.Reset()
			return b
		}
	}
	b := order.NewBitset(n)
	return &b
}

func putScratch(b *order.Bitset) { scratchPool.Put(b) }
