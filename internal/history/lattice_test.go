package history

import (
	"testing"
)

// TestLatticeBuildOnce: repeated Histories/Pairs calls on one computation
// perform exactly one raw ideal enumeration.
func TestLatticeBuildOnce(t *testing.T) {
	c, _ := diamond(t)
	before := LatticeBuilds()
	l := Shared(c)
	for i := 0; i < 3; i++ {
		if got := len(l.Histories()); got != 6 {
			t.Fatalf("Histories len = %d, want 6", got)
		}
		n := 0
		l.Pairs(func(h1, h2 History) bool {
			if !h1.Set().SubsetOf(h2.Set()) {
				t.Fatalf("Pairs emitted non-pair %s ⋢ %s", h1, h2)
			}
			n++
			return true
		})
		if n == 0 {
			t.Fatal("Pairs visited nothing")
		}
	}
	if Shared(c) != l {
		t.Error("Shared returned a different lattice for the same computation")
	}
	if d := LatticeBuilds() - before; d != 1 {
		t.Errorf("lattice built %d times, want exactly 1", d)
	}
}

// TestLatticeMatchesEnumerate: the cached lattice lists the histories in
// exactly the order the raw enumeration produces, so cache-backed checks
// find the same (first) counterexample as uncached ones.
func TestLatticeMatchesEnumerate(t *testing.T) {
	c, _ := diamond(t)
	var raw []string
	Enumerate(c, 0, func(h History) bool {
		raw = append(raw, h.Set().String())
		return true
	})
	cached := Shared(c).Histories()
	if len(cached) != len(raw) {
		t.Fatalf("cached %d histories, raw %d", len(cached), len(raw))
	}
	for i, h := range cached {
		if h.Set().String() != raw[i] {
			t.Errorf("history %d: cached %s, raw %s", i, h.Set().String(), raw[i])
		}
	}
}

// TestLatticePairsOrder: Pairs visits exactly the pairs the direct nested
// loop over Histories visits, in the same order.
func TestLatticePairsOrder(t *testing.T) {
	c, _ := diamond(t)
	l := Shared(c)
	hs := l.Histories()
	var want [][2]string
	for _, h1 := range hs {
		for _, h2 := range hs {
			if h1.Set().SubsetOf(h2.Set()) {
				want = append(want, [2]string{h1.Set().String(), h2.Set().String()})
			}
		}
	}
	var got [][2]string
	l.Pairs(func(h1, h2 History) bool {
		got = append(got, [2]string{h1.Set().String(), h2.Set().String()})
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Pairs visited %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pair %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestLatticePairsEarlyStop: a false return stops the iteration.
func TestLatticePairsEarlyStop(t *testing.T) {
	c, _ := diamond(t)
	n := 0
	Shared(c).Pairs(func(h1, h2 History) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("visited %d pairs after early stop, want 3", n)
	}
}
