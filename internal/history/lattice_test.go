package history

import (
	"testing"
	"testing/quick"

	"gem/internal/core"
)

// TestLatticeBuildOnce: repeated Histories/Pairs calls on one computation
// perform exactly one raw ideal enumeration.
func TestLatticeBuildOnce(t *testing.T) {
	c, _ := diamond(t)
	before := LatticeBuilds()
	l := Shared(c)
	for i := 0; i < 3; i++ {
		if got := len(l.Histories()); got != 6 {
			t.Fatalf("Histories len = %d, want 6", got)
		}
		n := 0
		l.Pairs(func(h1, h2 History) bool {
			if !h1.Set().SubsetOf(h2.Set()) {
				t.Fatalf("Pairs emitted non-pair %s ⋢ %s", h1, h2)
			}
			n++
			return true
		})
		if n == 0 {
			t.Fatal("Pairs visited nothing")
		}
	}
	if Shared(c) != l {
		t.Error("Shared returned a different lattice for the same computation")
	}
	if d := LatticeBuilds() - before; d != 1 {
		t.Errorf("lattice built %d times, want exactly 1", d)
	}
}

// TestLatticeMatchesEnumerate: the cached lattice lists the histories in
// exactly the order the raw enumeration produces, so cache-backed checks
// find the same (first) counterexample as uncached ones.
func TestLatticeMatchesEnumerate(t *testing.T) {
	c, _ := diamond(t)
	var raw []string
	Enumerate(c, 0, func(h History) bool {
		raw = append(raw, h.Set().String())
		return true
	})
	cached := Shared(c).Histories()
	if len(cached) != len(raw) {
		t.Fatalf("cached %d histories, raw %d", len(cached), len(raw))
	}
	for i, h := range cached {
		if h.Set().String() != raw[i] {
			t.Errorf("history %d: cached %s, raw %s", i, h.Set().String(), raw[i])
		}
	}
}

// TestLatticePairsOrder: Pairs visits exactly the pairs the direct nested
// loop over Histories visits, in the same order.
func TestLatticePairsOrder(t *testing.T) {
	c, _ := diamond(t)
	l := Shared(c)
	hs := l.Histories()
	var want [][2]string
	for _, h1 := range hs {
		for _, h2 := range hs {
			if h1.Set().SubsetOf(h2.Set()) {
				want = append(want, [2]string{h1.Set().String(), h2.Set().String()})
			}
		}
	}
	var got [][2]string
	l.Pairs(func(h1, h2 History) bool {
		got = append(got, [2]string{h1.Set().String(), h2.Set().String()})
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Pairs visited %d pairs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("pair %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestLatticePairsEarlyStop: a false return stops the iteration.
func TestLatticePairsEarlyStop(t *testing.T) {
	c, _ := diamond(t)
	n := 0
	Shared(c).Pairs(func(h1, h2 History) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("visited %d pairs after early stop, want 3", n)
	}
}

// Property: the histories visited by EnumerateComplete and the lattice
// enumeration agree exactly — every history of some complete vhs is a
// lattice history, and every lattice history occurs in some complete vhs.
// This is the consistency contract between the sequence enumerator and
// the lattice evaluation engine built on Histories/Steps.
func TestQuickEnumerateCompleteMatchesLattice(t *testing.T) {
	if err := quickCheckSeeds(t, 40, func(seed int64) bool {
		c := randomComputation(seed, 6)
		inSeqs := make(map[string]bool)
		EnumerateComplete(c, 0, func(s Sequence) bool {
			for _, h := range s {
				inSeqs[h.Set().Key()] = true
			}
			return true
		})
		hs := Shared(c).Histories()
		if len(inSeqs) != len(hs) {
			return false
		}
		for _, h := range hs {
			if !inSeqs[h.Set().Key()] {
				return false
			}
		}
		return true
	}); err != nil {
		t.Error(err)
	}
}

// Property: Steps agrees with a brute-force pairwise definition — j is a
// step successor of i exactly when histories[j] strictly extends
// histories[i] by a pairwise potentially concurrent set — and EvalOrder
// is a permutation that lists every step successor before its source.
func TestQuickStepsAndEvalOrder(t *testing.T) {
	if err := quickCheckSeeds(t, 40, func(seed int64) bool {
		c := randomComputation(seed, 6)
		lat := Shared(c)
		hs := lat.Histories()
		steps := lat.Steps()
		for i, h1 := range hs {
			got := make(map[int32]bool, len(steps[i]))
			for _, j := range steps[i] {
				got[j] = true
			}
			for j, h2 := range hs {
				want := i != j && h1.Set().SubsetOf(h2.Set())
				if want {
					delta := h2.Set().Clone()
					delta.AndNotWith(h1.Set())
					ms := delta.Members()
					for a := 0; a < len(ms) && want; a++ {
						for b := a + 1; b < len(ms); b++ {
							if !c.Concurrent(core.EventID(ms[a]), core.EventID(ms[b])) {
								want = false
								break
							}
						}
					}
				}
				if got[int32(j)] != want {
					return false
				}
			}
		}
		pos := make([]int, len(hs))
		seen := make([]bool, len(hs))
		for p, i := range lat.EvalOrder() {
			if seen[i] {
				return false
			}
			seen[i] = true
			pos[i] = p
		}
		for _, ok := range seen {
			if !ok {
				return false
			}
		}
		for i := range hs {
			for _, j := range steps[i] {
				if pos[j] >= pos[i] {
					return false
				}
			}
		}
		return true
	}); err != nil {
		t.Error(err)
	}
}

// quickCheckSeeds runs a seed-indexed property under testing/quick.
func quickCheckSeeds(t *testing.T, max int, f func(seed int64) bool) error {
	t.Helper()
	return quick.Check(f, &quick.Config{MaxCount: max})
}
