package history

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"gem/internal/core"
	"gem/internal/order"
)

// diamond builds the paper's Section 7 computation: e1 ⊳ e2, e1 ⊳ e3,
// e2 ⊳ e4, e3 ⊳ e4, each event at its own element.
func diamond(t *testing.T) (*core.Computation, [4]core.EventID) {
	t.Helper()
	b := core.NewBuilder()
	var ids [4]core.EventID
	for i := 0; i < 4; i++ {
		ids[i] = b.Event("EL"+string(rune('1'+i)), "E", nil)
	}
	b.Enable(ids[0], ids[1])
	b.Enable(ids[0], ids[2])
	b.Enable(ids[1], ids[3])
	b.Enable(ids[2], ids[3])
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, ids
}

// TestPaperHistories reproduces the Section 7 enumeration (experiment E2):
// the histories are exactly α0={e1}, α1={e1,e2}, α2={e1,e3},
// α3={e1,e2,e3}, α4={e1,e2,e3,e4}, plus the empty prefix.
func TestPaperHistories(t *testing.T) {
	c, ids := diamond(t)
	var got []string
	n := Enumerate(c, 0, func(h History) bool {
		got = append(got, h.Set().String())
		return true
	})
	if n != 6 {
		t.Fatalf("found %d histories (%v), want 6", n, got)
	}
	want := map[string]bool{
		"{}": true, "{0}": true, "{0, 1}": true,
		"{0, 2}": true, "{0, 1, 2}": true, "{0, 1, 2, 3}": true,
	}
	for _, s := range got {
		if !want[s] {
			t.Errorf("unexpected history %s", s)
		}
	}
	if Count(c) != 6 {
		t.Error("Count disagrees with Enumerate")
	}
	_ = ids
}

func TestHistoryConstructionAndPredicates(t *testing.T) {
	c, ids := diamond(t)
	e1, e2, e3, e4 := ids[0], ids[1], ids[2], ids[3]

	empty := Empty(c)
	if empty.Len() != 0 || empty.IsFull() {
		t.Error("empty history wrong")
	}
	full := Full(c)
	if !full.IsFull() || full.Len() != 4 {
		t.Error("full history wrong")
	}

	h := FromEvents(c, e2) // down-closure: {e1, e2}
	if !h.Has(e1) || !h.Has(e2) || h.Has(e3) || h.Len() != 2 {
		t.Errorf("FromEvents closure = %v", h.Set().Members())
	}

	// new(e2) in {e1,e2}: nothing followed e2 yet.
	if !h.New(e2) {
		t.Error("e2 should be new in {e1,e2}")
	}
	// new(e1) is false: e2 followed it.
	if h.New(e1) {
		t.Error("e1 is not new once e2 occurred")
	}
	// new of an event not in the history is false.
	if h.New(e4) {
		t.Error("unoccurred events are never new")
	}

	// potential(e3): predecessors {e1} ⊆ h, e3 ∉ h.
	if !h.Potential(e3) {
		t.Error("e3 should be potential in {e1,e2}")
	}
	// potential(e4): predecessor e3 missing.
	if h.Potential(e4) {
		t.Error("e4 must not be potential before e3")
	}
	// potential of an occurred event is false.
	if h.Potential(e2) {
		t.Error("occurred events are not potential")
	}
}

func TestHistoryAtControlPoint(t *testing.T) {
	c, ids := diamond(t)
	e1, e2 := ids[0], ids[1]
	classE := core.Ref("EL2", "E")

	h1 := FromEvents(c, e1) // {e1}: e1 has not enabled EL2.E yet
	if !h1.At(e1, classE) {
		t.Error("e1 at EL2.E should hold in {e1}")
	}
	h2 := FromEvents(c, e2) // {e1, e2}: e1 has enabled e2
	if h2.At(e1, classE) {
		t.Error("e1 at EL2.E must fail once e2 occurred")
	}
	if h1.At(e2, classE) {
		t.Error("at is false for events that have not occurred")
	}
}

func TestFromSetRejectsNonPrefix(t *testing.T) {
	c, ids := diamond(t)
	bad := order.NewBitset(c.NumEvents())
	bad.Set(int(ids[3])) // e4 without its predecessors
	if _, err := FromSet(c, bad); err == nil {
		t.Fatal("non-prefix-closed set must be rejected")
	}
	good := order.NewBitset(c.NumEvents())
	good.Set(int(ids[0]))
	h, err := FromSet(c, good)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Has(ids[0]) || h.Len() != 1 {
		t.Error("FromSet result wrong")
	}
}

func TestExtend(t *testing.T) {
	c, ids := diamond(t)
	h := FromEvents(c, ids[0])
	h2, err := h.Extend(ids[1])
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Has(ids[1]) || h2.Len() != 2 {
		t.Error("Extend failed")
	}
	if h.Has(ids[1]) {
		t.Error("Extend must not mutate the receiver")
	}
	if _, err := h.Extend(ids[3]); err == nil {
		t.Error("extending past missing predecessors must fail")
	}
}

func TestPrefixAndEqual(t *testing.T) {
	c, ids := diamond(t)
	h1 := FromEvents(c, ids[0])
	h2 := FromEvents(c, ids[1])
	if !h1.PrefixOf(h2) || h2.PrefixOf(h1) {
		t.Error("prefix relation wrong")
	}
	if !h1.Equal(FromEvents(c, ids[0])) || h1.Equal(h2) {
		t.Error("equality wrong")
	}
}

func TestFrontier(t *testing.T) {
	c, ids := diamond(t)
	h := FromEvents(c, ids[0])
	if got := h.Frontier(); !reflect.DeepEqual(got, []core.EventID{ids[1], ids[2]}) {
		t.Errorf("Frontier({e1}) = %v", got)
	}
	if got := Full(c).Frontier(); len(got) != 0 {
		t.Errorf("full history has frontier %v", got)
	}
}

func TestHistoryString(t *testing.T) {
	c, ids := diamond(t)
	h := FromEvents(c, ids[0])
	if got := h.String(); !strings.Contains(got, "EL1.E^0") {
		t.Errorf("String = %q", got)
	}
	if got := Empty(c).String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
}

// Property: every enumerated history is prefix-closed, and for every
// history, every frontier event is Potential and extending by it yields a
// history.
func TestQuickHistoriesArePrefixClosed(t *testing.T) {
	f := func(seed int64) bool {
		c := randomComputation(seed, 7)
		ok := true
		Enumerate(c, 200, func(h History) bool {
			if !order.IsIdeal(c.Preds(), h.Set()) {
				ok = false
				return false
			}
			for _, id := range h.Frontier() {
				if !h.Potential(id) {
					ok = false
					return false
				}
				if _, err := h.Extend(id); err != nil {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomComputation builds a random legal computation with n events spread
// over up to 3 elements and forward-only enable edges.
func randomComputation(seed int64, maxN int) *core.Computation {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + rng.Intn(maxN-1)
	b := core.NewBuilder()
	ids := make([]core.EventID, n)
	for i := 0; i < n; i++ {
		ids[i] = b.Event("EL"+string(rune('A'+rng.Intn(3))), "E", nil)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.25 {
				b.Enable(ids[i], ids[j])
			}
		}
	}
	c, err := b.Build()
	if err != nil {
		panic(err)
	}
	return c
}
