package boundedbuf

import (
	"fmt"

	"gem/internal/ada"
	"gem/internal/csp"
	"gem/internal/monitor"
)

// MonitorName / BufferTask name the guarding component in each solution.
const (
	MonitorName = "buf"
	BufferTask  = "B"
)

// NewMonitorProgram builds the classic monitor bounded buffer: a circular
// store of Capacity cells inside the monitor, deposit waiting on notfull,
// fetch on notempty, values returned through the entry result.
func NewMonitorProgram(w Workload) *monitor.Program {
	n := w.Capacity
	vars := []string{"count", "wpos", "rpos", "tmp"}
	for k := 0; k < n; k++ {
		vars = append(vars, fmt.Sprintf("s%d", k))
	}
	// IF-chains selecting the cell indexed by wpos / rpos.
	storeChain := make([]monitor.Stmt, 0, n)
	loadChain := make([]monitor.Stmt, 0, n)
	for k := 0; k < n; k++ {
		cell := fmt.Sprintf("s%d", k)
		storeChain = append(storeChain, monitor.If{
			Cond: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("wpos"), R: monitor.IntLit(int64(k))},
			Then: []monitor.Stmt{monitor.Assign{Var: cell, E: monitor.VarRef("v")}},
		})
		loadChain = append(loadChain, monitor.If{
			Cond: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("rpos"), R: monitor.IntLit(int64(k))},
			Then: []monitor.Stmt{monitor.Assign{Var: "tmp", E: monitor.VarRef(cell)}},
		})
	}
	bump := func(pos string) []monitor.Stmt {
		return []monitor.Stmt{
			monitor.Assign{Var: pos, E: monitor.Bin{Op: monitor.OpAdd, L: monitor.VarRef(pos), R: monitor.IntLit(1)}},
			monitor.If{
				Cond: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef(pos), R: monitor.IntLit(int64(n))},
				Then: []monitor.Stmt{monitor.Assign{Var: pos, E: monitor.IntLit(0)}},
			},
		}
	}
	depositBody := []monitor.Stmt{
		monitor.If{
			Cond: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("count"), R: monitor.IntLit(int64(n))},
			Then: []monitor.Stmt{monitor.Wait{Cond: "notfull"}},
		},
	}
	depositBody = append(depositBody, storeChain...)
	depositBody = append(depositBody, bump("wpos")...)
	depositBody = append(depositBody,
		monitor.Assign{Var: "count", E: monitor.Bin{Op: monitor.OpAdd, L: monitor.VarRef("count"), R: monitor.IntLit(1)}},
		monitor.Signal{Cond: "notempty"},
	)
	fetchBody := []monitor.Stmt{
		monitor.If{
			Cond: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("count"), R: monitor.IntLit(0)},
			Then: []monitor.Stmt{monitor.Wait{Cond: "notempty"}},
		},
	}
	fetchBody = append(fetchBody, loadChain...)
	fetchBody = append(fetchBody, bump("rpos")...)
	fetchBody = append(fetchBody,
		monitor.Assign{Var: "count", E: monitor.Bin{Op: monitor.OpSub, L: monitor.VarRef("count"), R: monitor.IntLit(1)}},
		monitor.Signal{Cond: "notfull"},
	)
	mon := &monitor.Monitor{
		Name:  MonitorName,
		Vars:  vars,
		Conds: []string{"notfull", "notempty"},
		Entries: []monitor.Entry{
			{Name: "deposit", Args: []string{"v"}, Body: depositBody},
			{Name: "fetch", Body: fetchBody, Result: monitor.VarRef("tmp")},
		},
	}
	prog := &monitor.Program{Monitor: mon}
	for i := 1; i <= w.Producers; i++ {
		var body []monitor.ProcStmt
		for k := 1; k <= w.ItemsPerProducer; k++ {
			body = append(body, monitor.Call{Entry: "deposit", Args: []int64{ItemValue(i, k)}})
		}
		prog.Processes = append(prog.Processes, monitor.Process{Name: ProducerName(i), Body: body})
	}
	for j := 1; j <= w.Consumers; j++ {
		var body []monitor.ProcStmt
		for k := 0; k < w.ItemsPerConsumer(); k++ {
			body = append(body, monitor.Call{Entry: "fetch"})
		}
		prog.Processes = append(prog.Processes, monitor.Process{Name: ConsumerName(j), Body: body})
	}
	return prog
}

// NewCSPProgram builds the CSP bounded buffer: a buffer process holding
// Capacity cells, accepting a producer's send when not full and offering
// the head cell to a consumer when not empty (one guarded branch per
// cell index and partner).
func NewCSPProgram(w Workload) *csp.Program {
	n := w.Capacity
	prog := &csp.Program{}
	for i := 1; i <= w.Producers; i++ {
		var body []csp.Stmt
		for k := 1; k <= w.ItemsPerProducer; k++ {
			body = append(body, csp.Send{To: BufferTask, E: csp.IntLit(ItemValue(i, k))})
		}
		prog.Processes = append(prog.Processes, csp.Process{Name: ProducerName(i), Body: body})
	}
	for j := 1; j <= w.Consumers; j++ {
		var body []csp.Stmt
		for k := 0; k < w.ItemsPerConsumer(); k++ {
			body = append(body, csp.Recv{From: BufferTask, Var: "x"})
		}
		prog.Processes = append(prog.Processes, csp.Process{
			Name: ConsumerName(j), Vars: []string{"x"}, Body: body,
		})
	}
	vars := []string{"count", "wpos", "rpos"}
	for k := 0; k < n; k++ {
		vars = append(vars, fmt.Sprintf("s%d", k))
	}
	var branches []csp.Branch
	for k := 0; k < n; k++ {
		cell := fmt.Sprintf("s%d", k)
		next := int64((k + 1) % n)
		for i := 1; i <= w.Producers; i++ {
			branches = append(branches, csp.Branch{
				// not full and writing into cell k
				Guard: guardAnd(
					csp.Bin{Op: csp.OpLt, L: csp.VarRef("count"), R: csp.IntLit(int64(n))},
					csp.Bin{Op: csp.OpEq, L: csp.VarRef("wpos"), R: csp.IntLit(int64(k))},
				),
				Comm: csp.Recv{From: ProducerName(i), Var: cell},
				Body: []csp.Stmt{
					csp.Assign{Var: "wpos", E: csp.IntLit(next)},
					csp.Assign{Var: "count", E: csp.Bin{Op: csp.OpAdd, L: csp.VarRef("count"), R: csp.IntLit(1)}},
				},
			})
		}
		for j := 1; j <= w.Consumers; j++ {
			branches = append(branches, csp.Branch{
				Guard: guardAnd(
					csp.Bin{Op: csp.OpGt, L: csp.VarRef("count"), R: csp.IntLit(0)},
					csp.Bin{Op: csp.OpEq, L: csp.VarRef("rpos"), R: csp.IntLit(int64(k))},
				),
				Comm: csp.Send{To: ConsumerName(j), E: csp.VarRef(cell)},
				Body: []csp.Stmt{
					csp.Assign{Var: "rpos", E: csp.IntLit(next)},
					csp.Assign{Var: "count", E: csp.Bin{Op: csp.OpSub, L: csp.VarRef("count"), R: csp.IntLit(1)}},
				},
			})
		}
	}
	prog.Processes = append(prog.Processes, csp.Process{
		Name: BufferTask,
		Vars: vars,
		Body: []csp.Stmt{csp.Repeat{N: 2 * w.TotalItems(), Body: []csp.Stmt{csp.Alt{Branches: branches}}}},
	})
	return prog
}

// guardAnd conjoins two 0/1 guards (both non-negative: product via
// addition-equals-2 idiom avoided; use a*b-free encoding: g1+g2=2).
func guardAnd(a, b csp.Expr) csp.Expr {
	return csp.Bin{Op: csp.OpEq, L: csp.Bin{Op: csp.OpAdd, L: a, R: b}, R: csp.IntLit(2)}
}

// NewAdaProgram builds the ADA bounded buffer: a buffer task with Put/Get
// entries served by a guarded selective wait over cell indices.
func NewAdaProgram(w Workload) *ada.Program {
	n := w.Capacity
	prog := &ada.Program{}
	for i := 1; i <= w.Producers; i++ {
		var body []ada.Stmt
		for k := 1; k <= w.ItemsPerProducer; k++ {
			body = append(body, ada.EntryCall{Task: BufferTask, Entry: "Put", Arg: ada.IntLit(ItemValue(i, k))})
		}
		prog.Tasks = append(prog.Tasks, ada.Task{Name: ProducerName(i), Body: body})
	}
	for j := 1; j <= w.Consumers; j++ {
		var body []ada.Stmt
		for k := 0; k < w.ItemsPerConsumer(); k++ {
			body = append(body, ada.EntryCall{Task: BufferTask, Entry: "Get"})
		}
		prog.Tasks = append(prog.Tasks, ada.Task{Name: ConsumerName(j), Body: body})
	}
	vars := []string{"count", "wpos", "rpos"}
	for k := 0; k < n; k++ {
		vars = append(vars, fmt.Sprintf("s%d", k))
	}
	var alts []ada.SelectAlt
	for k := 0; k < n; k++ {
		cell := fmt.Sprintf("s%d", k)
		next := int64((k + 1) % n)
		alts = append(alts,
			ada.SelectAlt{
				Guard: adaGuardAnd(
					ada.Bin{Op: ada.OpLt, L: ada.VarRef("count"), R: ada.IntLit(int64(n))},
					ada.Bin{Op: ada.OpEq, L: ada.VarRef("wpos"), R: ada.IntLit(int64(k))},
				),
				Accept: ada.Accept{Entry: "Put", Param: "v", Body: []ada.Stmt{
					ada.Assign{Var: cell, E: ada.VarRef("v")},
					ada.Assign{Var: "wpos", E: ada.IntLit(next)},
					ada.Assign{Var: "count", E: ada.Bin{Op: ada.OpAdd, L: ada.VarRef("count"), R: ada.IntLit(1)}},
				}},
			},
			ada.SelectAlt{
				Guard: adaGuardAnd(
					ada.Bin{Op: ada.OpGt, L: ada.VarRef("count"), R: ada.IntLit(0)},
					ada.Bin{Op: ada.OpEq, L: ada.VarRef("rpos"), R: ada.IntLit(int64(k))},
				),
				Accept: ada.Accept{Entry: "Get", Body: []ada.Stmt{
					ada.Reply{E: ada.VarRef(cell)},
					ada.Assign{Var: "rpos", E: ada.IntLit(next)},
					ada.Assign{Var: "count", E: ada.Bin{Op: ada.OpSub, L: ada.VarRef("count"), R: ada.IntLit(1)}},
				}},
			},
		)
	}
	prog.Tasks = append(prog.Tasks, ada.Task{
		Name:    BufferTask,
		Entries: []string{"Put", "Get"},
		Vars:    vars,
		Body:    []ada.Stmt{ada.Repeat{N: 2 * w.TotalItems(), Body: []ada.Stmt{ada.Select{Alts: alts}}}},
	})
	return prog
}

func adaGuardAnd(a, b ada.Expr) ada.Expr {
	return ada.Bin{Op: ada.OpEq, L: ada.Bin{Op: ada.OpAdd, L: a, R: b}, R: ada.IntLit(2)}
}
