// Package boundedbuf implements the Bounded Buffer problem from the
// paper's catalogue (Section 11): producers deposit items into a
// capacity-N FIFO buffer, consumers fetch them. It provides the GEM
// problem specification (chains, capacity invariant, FIFO value
// delivery), Monitor, CSP, and ADA solutions, and the correspondences for
// the Section 9 sat methodology.
package boundedbuf

import (
	"fmt"
	"strings"

	"gem/internal/core"
	"gem/internal/gemlang"
	"gem/internal/spec"
	"gem/internal/thread"
)

// BufferElement is the problem-level buffer element.
const BufferElement = "buffer"

// Workload configures a buffer scenario.
type Workload struct {
	Producers int
	Consumers int
	// Items each producer deposits; total items must be divisible by the
	// number of consumers, each of which fetches its share.
	ItemsPerProducer int
	Capacity         int
}

// ProducerName returns producer i's process name (1-based).
func ProducerName(i int) string { return fmt.Sprintf("p%d", i) }

// ConsumerName returns consumer j's process name (1-based).
func ConsumerName(j int) string { return fmt.Sprintf("c%d", j) }

// ItemValue returns the distinct value producer i deposits as its k-th
// item (both 1-based).
func ItemValue(i, k int) int64 { return int64(10*i + k) }

// TotalItems returns the number of items moved through the buffer.
func (w Workload) TotalItems() int { return w.Producers * w.ItemsPerProducer }

// ItemsPerConsumer returns each consumer's share.
func (w Workload) ItemsPerConsumer() int { return w.TotalItems() / w.Consumers }

// Validate checks the workload is well-formed.
func (w Workload) Validate() error {
	if w.Producers < 1 || w.Consumers < 1 || w.ItemsPerProducer < 1 || w.Capacity < 1 {
		return fmt.Errorf("boundedbuf: workload fields must be positive: %+v", w)
	}
	if w.TotalItems()%w.Consumers != 0 {
		return fmt.Errorf("boundedbuf: %d items do not divide among %d consumers", w.TotalItems(), w.Consumers)
	}
	return nil
}

// ProblemSpec builds the GEM problem specification:
//
//   - Each Deposit is caused by exactly one Produce and vice versa; each
//     Consume is the outcome of exactly one Fetch.
//   - Produced values ride unchanged into the buffer and out to the
//     consumer.
//   - Capacity: at every history, 0 ≤ #Deposit − #Fetch ≤ N (the paper's
//     One-Slot Buffer is the N=1 case).
//   - FIFO: the k-th Fetch yields the k-th Deposit's item.
func ProblemSpec(w Workload) (*spec.Spec, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	var sb strings.Builder
	sb.WriteString("SPEC BoundedBuffer\n")
	fmt.Fprintf(&sb, `
ELEMENT %s
  EVENTS
    Deposit(item: VALUE)
    Fetch(item: VALUE)
END
GROUP buf MEMBERS(%s) PORTS(%s.Deposit, %s.Fetch) END
`, BufferElement, BufferElement, BufferElement, BufferElement)
	var produces []string
	for i := 1; i <= w.Producers; i++ {
		fmt.Fprintf(&sb, "ELEMENT %s EVENTS Produce(item: VALUE) END\n", ProducerName(i))
		produces = append(produces, ProducerName(i)+".Produce")
	}
	for j := 1; j <= w.Consumers; j++ {
		fmt.Fprintf(&sb, "ELEMENT %s EVENTS Consume(item: VALUE) END\n", ConsumerName(j))
	}
	fmt.Fprintf(&sb, "THREAD piDep = (Produce :: %s.Deposit)\n", BufferElement)
	fmt.Fprintf(&sb, "THREAD piFet = (%s.Fetch :: Consume)\n", BufferElement)
	fmt.Fprintf(&sb, `
RESTRICTION "deposits-caused-by-produces": NDPREREQ({%s} -> %s.Deposit) ;
RESTRICTION "produce-value":
  (FORALL p: Produce, d: %s.Deposit) p |> d -> p.item = d.item ;
RESTRICTION "fetch-value":
  (FORALL f: %s.Fetch, c: Consume) f |> c -> f.item = c.item ;
`, strings.Join(produces, ", "), BufferElement, BufferElement, BufferElement)
	for j := 1; j <= w.Consumers; j++ {
		fmt.Fprintf(&sb, "RESTRICTION \"%s-consumes\": PREREQ(%s.Fetch -> %s.Consume) ;\n",
			ConsumerName(j), BufferElement, ConsumerName(j))
	}
	// The capacity and FIFO restrictions, in the concrete syntax (the
	// counting forms COUNT and FIFO extend the paper's abbreviation set).
	fmt.Fprintf(&sb, `
RESTRICTION "capacity": [] COUNT(%s.Deposit - %s.Fetch IN 0 .. %d) ;
RESTRICTION "fifo": FIFO(%s.Deposit.item -> %s.Fetch.item) ;
`, BufferElement, BufferElement, w.Capacity, BufferElement, BufferElement)
	s, err := gemlang.Parse(sb.String())
	if err != nil {
		return nil, fmt.Errorf("boundedbuf: problem spec does not parse: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("boundedbuf: problem spec invalid: %w", err)
	}
	return s, nil
}

// BuildComputation constructs a problem-level computation in which the
// given item values flow through the buffer FIFO, deposits and fetches
// interleaved as tightly as the capacity allows (used to exercise the
// problem spec directly, experiment E6).
func BuildComputation(s *spec.Spec, w Workload) (*core.Computation, error) {
	b := core.NewBuilder()
	type pending struct {
		val int64
		dep core.EventID
	}
	var queue []pending
	fetched := 0
	consumer := 0
	fetchOne := func() {
		it := queue[0]
		queue = queue[1:]
		f := b.Event(BufferElement, "Fetch", core.Params{"item": core.Int(it.val)})
		b.Enable(it.dep, f)
		cons := b.Event(ConsumerName(consumer+1), "Consume", core.Params{"item": core.Int(it.val)})
		b.Enable(f, cons)
		fetched++
		if fetched%w.ItemsPerConsumer() == 0 {
			consumer++
		}
	}
	for i := 1; i <= w.Producers; i++ {
		for k := 1; k <= w.ItemsPerProducer; k++ {
			if len(queue) == w.Capacity {
				fetchOne()
			}
			val := ItemValue(i, k)
			p := b.Event(ProducerName(i), "Produce", core.Params{"item": core.Int(val)})
			d := b.Event(BufferElement, "Deposit", core.Params{"item": core.Int(val)})
			b.Enable(p, d)
			queue = append(queue, pending{val: val, dep: d})
		}
	}
	for len(queue) > 0 {
		fetchOne()
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	thread.Apply(c, s.Threads()...)
	return c, nil
}
