package boundedbuf

import (
	"fmt"
	"gem/internal/core"
	"gem/internal/csp"
	"gem/internal/verify"
)

// Correspondences for the sat methodology (experiment E7, buffer
// columns): program events → problem events.

// MonitorCorrespondence maps the monitor solution. The commit points are
// the stores inside the monitor, not the entry Ends: with Hoare signal
// semantics a signalled process completes its entry before the signaller
// finishes its own, so entry Ends can be reordered across the
// capacity-changing updates. A deposit commits at the cell store
// (s<k> := v, which carries the item), a fetch at the tmp load
// (tmp := s<k>) — both ordered correctly with respect to the count
// guards.
func MonitorCorrespondence(capacity int) verify.Correspondence {
	rules := []verify.Rule{
		{Match: core.Ref("", "Call"), Where: core.Params{"entry": core.Str("deposit")},
			Element: "%s", Class: "Produce", KeyParam: "@element", Chain: "produce", Stage: 0,
			CopyParams: map[string]string{"item": "v"}},
	}
	for k := 0; k < capacity; k++ {
		rules = append(rules, verify.Rule{
			Match:   core.Ref(fmt.Sprintf("%s.s%d", MonitorName, k), "Assign"),
			Where:   core.Params{"entry": core.Str("deposit")},
			Element: BufferElement, Class: "Deposit", KeyParam: "proc", Chain: "produce", Stage: 1,
			CopyParams: map[string]string{"item": "newval"}})
	}
	rules = append(rules,
		verify.Rule{Match: core.Ref(MonitorName+".tmp", "Assign"), Where: core.Params{"entry": core.Str("fetch")},
			Element: BufferElement, Class: "Fetch", KeyParam: "proc", Chain: "consume", Stage: 0,
			CopyParams: map[string]string{"item": "newval"}},
		verify.Rule{Match: core.Ref("", "Return"), Where: core.Params{"entry": core.Str("fetch")},
			Element: "%s", Class: "Consume", KeyParam: "@element", Chain: "consume", Stage: 1,
			CopyParams: map[string]string{"item": "result"}},
	)
	return verify.Correspondence{Rules: rules}
}

// CSPCorrespondence maps the CSP solution: a deposit is the buffer's
// acceptance of a producer's send; a fetch is the buffer's send to a
// consumer.
func CSPCorrespondence(w Workload) verify.Correspondence {
	var rules []verify.Rule
	for i := 1; i <= w.Producers; i++ {
		name := ProducerName(i)
		rules = append(rules,
			verify.Rule{Match: core.Ref(csp.OutElement(name, BufferTask), "Req"),
				Element: "%s", Class: "Produce", KeyParam: "proc", Chain: "produce", Stage: 0,
				CopyParams: map[string]string{"item": "v"}},
			verify.Rule{Match: core.Ref(csp.InpElement(BufferTask, name), "End"),
				Element: BufferElement, Class: "Deposit", KeyParam: "partner", Chain: "produce", Stage: 1,
				CopyParams: map[string]string{"item": "v"}},
		)
	}
	for j := 1; j <= w.Consumers; j++ {
		name := ConsumerName(j)
		rules = append(rules,
			verify.Rule{Match: core.Ref(csp.OutElement(BufferTask, name), "Req"),
				Element: BufferElement, Class: "Fetch", KeyParam: "partner", Chain: "consume", Stage: 0,
				CopyParams: map[string]string{"item": "v"}},
			verify.Rule{Match: core.Ref(csp.InpElement(name, BufferTask), "End"),
				Element: "%s", Class: "Consume", KeyParam: "proc", Chain: "consume", Stage: 1,
				CopyParams: map[string]string{"item": "v"}},
		)
	}
	return verify.Correspondence{Rules: rules}
}

// AdaCorrespondence maps the ADA solution: a deposit is the acceptance of
// Put (the AcceptStart carries the argument; the guard has already
// checked capacity), a fetch completes at Get's AcceptEnd (which carries
// the replied value).
func AdaCorrespondence() verify.Correspondence {
	return verify.Correspondence{Rules: []verify.Rule{
		{Match: core.Ref("", "Call"), Where: core.Params{"entry": core.Str("Put")},
			Element: "%s", Class: "Produce", KeyParam: "@element", Chain: "produce", Stage: 0,
			CopyParams: map[string]string{"item": "v"}},
		{Match: core.Ref(BufferTask+".Put", "AcceptStart"),
			Element: BufferElement, Class: "Deposit", KeyParam: "caller", Chain: "produce", Stage: 1,
			CopyParams: map[string]string{"item": "v"}},
		{Match: core.Ref(BufferTask+".Get", "AcceptEnd"),
			Element: BufferElement, Class: "Fetch", KeyParam: "caller", Chain: "consume", Stage: 0,
			CopyParams: map[string]string{"item": "result"}},
		{Match: core.Ref("", "Return"), Where: core.Params{"entry": core.Str("Get")},
			Element: "%s", Class: "Consume", KeyParam: "@element", Chain: "consume", Stage: 1,
			CopyParams: map[string]string{"item": "result"}},
	}}
}
