package boundedbuf

import (
	"strings"
	"testing"

	"gem/internal/ada"
	"gem/internal/core"
	"gem/internal/csp"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/monitor"
	"gem/internal/verify"
)

func stdWorkload() Workload {
	return Workload{Producers: 2, Consumers: 1, ItemsPerProducer: 1, Capacity: 1}
}

func deepWorkload() Workload {
	return Workload{Producers: 1, Consumers: 1, ItemsPerProducer: 3, Capacity: 2}
}

// --- E6: the problem specification itself ------------------------------

func TestProblemSpecAcceptsFIFOComputation(t *testing.T) {
	for _, w := range []Workload{stdWorkload(), deepWorkload(), {Producers: 2, Consumers: 2, ItemsPerProducer: 2, Capacity: 2}} {
		s, err := ProblemSpec(w)
		if err != nil {
			t.Fatal(err)
		}
		c, err := BuildComputation(s, w)
		if err != nil {
			t.Fatal(err)
		}
		res := legal.Check(s, c, legal.Options{})
		if !res.Legal() {
			t.Fatalf("FIFO computation must be legal for %+v: %v\n%s", w, res.Error(), c)
		}
	}
}

func TestProblemSpecRefutesOverflow(t *testing.T) {
	w := stdWorkload() // capacity 1
	s, err := ProblemSpec(w)
	if err != nil {
		t.Fatal(err)
	}
	// Two deposits before any fetch: #Deposit - #Fetch reaches 2 > 1.
	b := core.NewBuilder()
	for i := 1; i <= 2; i++ {
		p := b.Event(ProducerName(i), "Produce", core.Params{"item": core.Int(ItemValue(i, 1))})
		d := b.Event(BufferElement, "Deposit", core.Params{"item": core.Int(ItemValue(i, 1))})
		b.Enable(p, d)
	}
	for i := 1; i <= 2; i++ {
		f := b.Event(BufferElement, "Fetch", core.Params{"item": core.Int(ItemValue(i, 1))})
		cons := b.Event(ConsumerName(1), "Consume", core.Params{"item": core.Int(ItemValue(i, 1))})
		b.Enable(f, cons)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := legal.Check(s, c, legal.Options{})
	if res.Legal() {
		t.Fatal("overflowing the one-slot buffer must be illegal")
	}
	found := false
	for _, v := range res.Violations {
		if v.Restriction == "capacity" {
			found = true
		}
	}
	if !found {
		t.Errorf("want capacity violation, got %v", res.Violations)
	}
}

func TestProblemSpecRefutesReordering(t *testing.T) {
	w := stdWorkload()
	s, err := ProblemSpec(w)
	if err != nil {
		t.Fatal(err)
	}
	// Deposit 11 then 21, but fetch 21 first: FIFO violated.
	b := core.NewBuilder()
	p1 := b.Event(ProducerName(1), "Produce", core.Params{"item": core.Int(11)})
	d1 := b.Event(BufferElement, "Deposit", core.Params{"item": core.Int(11)})
	b.Enable(p1, d1)
	f1 := b.Event(BufferElement, "Fetch", core.Params{"item": core.Int(21)})
	c1 := b.Event(ConsumerName(1), "Consume", core.Params{"item": core.Int(21)})
	b.Enable(f1, c1)
	p2 := b.Event(ProducerName(2), "Produce", core.Params{"item": core.Int(21)})
	d2 := b.Event(BufferElement, "Deposit", core.Params{"item": core.Int(21)})
	b.Enable(p2, d2)
	f2 := b.Event(BufferElement, "Fetch", core.Params{"item": core.Int(11)})
	c2 := b.Event(ConsumerName(1), "Consume", core.Params{"item": core.Int(11)})
	b.Enable(f2, c2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := legal.Check(s, c, legal.Options{})
	if res.Legal() {
		t.Fatal("out-of-order delivery must be illegal")
	}
	found := false
	for _, v := range res.Violations {
		if v.Restriction == "fifo" {
			found = true
		}
	}
	if !found {
		t.Errorf("want fifo violation, got %v", res.Violations)
	}
}

func TestWorkloadValidation(t *testing.T) {
	bad := Workload{Producers: 3, Consumers: 2, ItemsPerProducer: 1, Capacity: 1}
	if _, err := ProblemSpec(bad); err == nil || !strings.Contains(err.Error(), "divide") {
		t.Errorf("indivisible workload must be rejected: %v", err)
	}
	if _, err := ProblemSpec(Workload{}); err == nil {
		t.Error("zero workload must be rejected")
	}
}

// --- E7: sat across the three languages --------------------------------

func TestSatMonitor(t *testing.T) {
	for _, w := range []Workload{stdWorkload(), deepWorkload()} {
		problem, err := ProblemSpec(w)
		if err != nil {
			t.Fatal(err)
		}
		prog := NewMonitorProgram(w)
		runs, truncated, err := monitor.Explore(prog, monitor.ExploreOptions{MaxRuns: 60000})
		if err != nil {
			t.Fatal(err)
		}
		if truncated || len(runs) == 0 {
			t.Fatalf("exploration: %d runs, truncated=%v", len(runs), truncated)
		}
		corr := MonitorCorrespondence(w.Capacity)
		for i, r := range runs {
			if r.Deadlock {
				t.Fatalf("monitor run %d deadlocked:\n%s", i, r.Comp)
			}
			res := verify.Check(problem, r.Comp, corr, logic.CheckOptions{})
			if !res.Sat() {
				t.Fatalf("monitor run %d fails sat (%+v): %v\n%s", i, w, res.Error(), r.Comp)
			}
		}
		t.Logf("workload %+v: verified %d monitor computations", w, len(runs))
	}
}

func TestSatCSP(t *testing.T) {
	for _, w := range []Workload{stdWorkload(), deepWorkload()} {
		problem, err := ProblemSpec(w)
		if err != nil {
			t.Fatal(err)
		}
		prog := NewCSPProgram(w)
		runs, truncated, err := csp.Explore(prog, csp.ExploreOptions{MaxRuns: 60000})
		if err != nil {
			t.Fatal(err)
		}
		if truncated || len(runs) == 0 {
			t.Fatalf("exploration: %d runs, truncated=%v", len(runs), truncated)
		}
		corr := CSPCorrespondence(w)
		for i, r := range runs {
			if r.Deadlock {
				t.Fatalf("csp run %d deadlocked:\n%s", i, r.Comp)
			}
			res := verify.Check(problem, r.Comp, corr, logic.CheckOptions{})
			if !res.Sat() {
				t.Fatalf("csp run %d fails sat (%+v): %v\n%s", i, w, res.Error(), r.Comp)
			}
		}
		t.Logf("workload %+v: verified %d CSP computations", w, len(runs))
	}
}

func TestSatAda(t *testing.T) {
	for _, w := range []Workload{stdWorkload(), deepWorkload()} {
		problem, err := ProblemSpec(w)
		if err != nil {
			t.Fatal(err)
		}
		prog := NewAdaProgram(w)
		runs, truncated, err := ada.Explore(prog, ada.ExploreOptions{MaxRuns: 60000})
		if err != nil {
			t.Fatal(err)
		}
		if truncated || len(runs) == 0 {
			t.Fatalf("exploration: %d runs, truncated=%v", len(runs), truncated)
		}
		corr := AdaCorrespondence()
		for i, r := range runs {
			if r.Deadlock {
				t.Fatalf("ada run %d deadlocked:\n%s", i, r.Comp)
			}
			res := verify.Check(problem, r.Comp, corr, logic.CheckOptions{})
			if !res.Sat() {
				t.Fatalf("ada run %d fails sat (%+v): %v\n%s", i, w, res.Error(), r.Comp)
			}
		}
		t.Logf("workload %+v: verified %d ADA computations", w, len(runs))
	}
}

// TestSatRefutesUnguardedMonitor: removing the deposit full-check makes
// the monitor violate the capacity restriction — failure injection for
// the sat pipeline.
func TestSatRefutesUnguardedMonitor(t *testing.T) {
	w := Workload{Producers: 2, Consumers: 1, ItemsPerProducer: 1, Capacity: 1}
	problem, err := ProblemSpec(w)
	if err != nil {
		t.Fatal(err)
	}
	prog := NewMonitorProgram(w)
	// Mutate: drop the "wait while full" guard (the first statement).
	for i, e := range prog.Monitor.Entries {
		if e.Name == "deposit" {
			prog.Monitor.Entries[i].Body = e.Body[1:]
		}
	}
	runs, _, err := monitor.Explore(prog, monitor.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		t.Fatal(err)
	}
	corr := MonitorCorrespondence(w.Capacity)
	refuted := false
	for _, r := range runs {
		if r.Deadlock {
			continue
		}
		res := verify.Check(problem, r.Comp, corr, logic.CheckOptions{})
		if !res.Sat() {
			refuted = true
		}
	}
	if !refuted {
		t.Fatal("unguarded deposit must be refuted by the capacity restriction")
	}
}

// TestMonitorProgramLegality ties the generated computations back to the
// Monitor primitive spec (E5).
func TestMonitorProgramLegality(t *testing.T) {
	w := stdWorkload()
	prog := NewMonitorProgram(w)
	s := monitor.Spec(prog)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	runs, _, err := monitor.Explore(prog, monitor.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		res := legal.Check(s, r.Comp, legal.Options{})
		if !res.Legal() {
			t.Fatalf("monitor buffer computation illegal: %v", res.Error())
		}
	}
}

func TestItemValueDistinct(t *testing.T) {
	seen := make(map[int64]bool)
	for i := 1; i <= 3; i++ {
		for k := 1; k <= 5; k++ {
			v := ItemValue(i, k)
			if seen[v] {
				t.Fatalf("duplicate item value %d", v)
			}
			seen[v] = true
		}
	}
}
