// Package life implements the paper's second distributed application: an
// asynchronous, distributed version of Conway's Game of Life. Each cell
// is a process holding its own state; after computing generation g it
// sends the new state to its neighbours and waits until it has received
// all their generation-g states before computing g+1. No global clock or
// barrier exists — cells may run generations apart — yet the computed
// board sequence equals the synchronous reference on every schedule
// (functional correctness, which the paper reports proving).
//
// Event model:
//
//	cell.<x>.<y>            Compute(gen, alive)
//	lchan.<x1>.<y1>.<x2>.<y2>  Send(gen, alive), Recv(gen, alive)
package life

import (
	"fmt"
	"math/rand"
	"strings"

	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/spec"
)

// Board is a rectangular Life board; true = alive. Boards do not wrap
// (cells outside are dead).
type Board [][]bool

// NewBoard builds a dead board of the given size.
func NewBoard(w, h int) Board {
	b := make(Board, h)
	for y := range b {
		b[y] = make([]bool, w)
	}
	return b
}

// Width and Height report dimensions.
func (b Board) Width() int  { return len(b[0]) }
func (b Board) Height() int { return len(b) }

// Clone copies the board.
func (b Board) Clone() Board {
	out := make(Board, len(b))
	for y := range b {
		out[y] = append([]bool(nil), b[y]...)
	}
	return out
}

// Equal compares two boards.
func (b Board) Equal(o Board) bool {
	if len(b) != len(o) {
		return false
	}
	for y := range b {
		if len(b[y]) != len(o[y]) {
			return false
		}
		for x := range b[y] {
			if b[y][x] != o[y][x] {
				return false
			}
		}
	}
	return true
}

// String renders the board with # for live cells.
func (b Board) String() string {
	var sb strings.Builder
	for _, row := range b {
		for _, alive := range row {
			if alive {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// neighbours of (x, y) within the board (8-neighbourhood, no wrap).
func neighbours(b Board, x, y int) [][2]int {
	var out [][2]int
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			nx, ny := x+dx, y+dy
			if nx >= 0 && nx < b.Width() && ny >= 0 && ny < b.Height() {
				out = append(out, [2]int{nx, ny})
			}
		}
	}
	return out
}

// SyncStep computes one synchronous generation — the reference
// implementation the asynchronous version is verified against.
func SyncStep(b Board) Board {
	next := NewBoard(b.Width(), b.Height())
	for y := 0; y < b.Height(); y++ {
		for x := 0; x < b.Width(); x++ {
			live := 0
			for _, n := range neighbours(b, x, y) {
				if b[n[1]][n[0]] {
					live++
				}
			}
			if b[y][x] {
				next[y][x] = live == 2 || live == 3
			} else {
				next[y][x] = live == 3
			}
		}
	}
	return next
}

// SyncRun computes g synchronous generations.
func SyncRun(b Board, g int) Board {
	for i := 0; i < g; i++ {
		b = SyncStep(b)
	}
	return b
}

// CellElement names the element of cell (x, y).
func CellElement(x, y int) string { return fmt.Sprintf("cell.%d.%d", x, y) }

// ChanElement names the channel element from one cell to another.
func ChanElement(x1, y1, x2, y2 int) string {
	return fmt.Sprintf("lchan.%d.%d.%d.%d", x1, y1, x2, y2)
}

// Run is one asynchronous execution.
type Run struct {
	Comp  *core.Computation
	Final Board
}

// cellState is the per-cell simulator state.
type cellState struct {
	alive bool
	gen   int
	// inbox[g] = number of neighbour states of generation g received.
	received map[int]int
	// neighbour liveness counts per generation.
	liveCount map[int]int
	lastEv    int
}

type message struct {
	from, to [2]int
	gen      int
	alive    bool
	sendEv   int
}

// AsyncRun executes the asynchronous algorithm for g generations under a
// seeded random schedule, recording the GEM computation. The schedule
// chooses arbitrarily among ready cells and deliverable messages, so
// cells drift generations apart; per-channel delivery stays FIFO (each
// neighbour link is an element).
func AsyncRun(start Board, gens int, seed int64) (Run, error) {
	return asyncRun(start, gens, seed, true)
}

// asyncRunStale is the failure-injection mutant: a cell computes one
// neighbour report early, breaking the generation barrier.
func asyncRunStale(start Board, gens int, seed int64) (Run, error) {
	return asyncRun(start, gens, seed, false)
}

func asyncRun(start Board, gens int, seed int64, barrier bool) (Run, error) {
	rng := rand.New(rand.NewSource(seed))
	w, h := start.Width(), start.Height()
	cells := make(map[[2]int]*cellState, w*h)
	var inflight []message

	b := core.NewBuilder()
	emit := func(cell *cellState, elem, class string, params core.Params, extra ...core.EventID) core.EventID {
		id := b.Event(elem, class, params)
		if cell != nil && cell.lastEv >= 0 {
			b.Enable(core.EventID(cell.lastEv), id)
		}
		for _, e := range extra {
			b.Enable(e, id)
		}
		if cell != nil {
			cell.lastEv = int(id)
		}
		return id
	}

	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			cells[[2]int{x, y}] = &cellState{
				alive:     start[y][x],
				received:  make(map[int]int),
				liveCount: make(map[int]int),
				lastEv:    -1,
			}
		}
	}
	// Generation 0: every cell announces its initial state.
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pos := [2]int{x, y}
			cell := cells[pos]
			emit(cell, CellElement(x, y), "Compute", core.Params{
				"gen": core.Int(0), "alive": core.Bool(cell.alive),
			})
			for _, n := range neighbours(start, x, y) {
				send := emit(cell, ChanElement(x, y, n[0], n[1]), "Send", core.Params{
					"gen": core.Int(0), "alive": core.Bool(cell.alive),
				})
				inflight = append(inflight, message{from: pos, to: n, gen: 0, alive: cell.alive, sendEv: int(send)})
			}
		}
	}

	for {
		// Ready cells: all neighbour states of the current generation
		// received, and more generations to go.
		// Deterministic cell order keeps runs reproducible per seed (map
		// iteration order would not be).
		var ready [][2]int
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				pos := [2]int{x, y}
				cell := cells[pos]
				need := len(neighbours(start, x, y))
				if !barrier && need > 0 {
					need-- // mutant: compute one report early
				}
				if cell.gen < gens && cell.received[cell.gen] >= need {
					ready = append(ready, pos)
				}
			}
		}
		if len(ready) == 0 && len(inflight) == 0 {
			break
		}
		// Choose among: delivering any inflight message, or stepping any
		// ready cell.
		choice := rng.Intn(len(ready) + len(inflight))
		if choice < len(ready) {
			pos := ready[choice]
			cell := cells[pos]
			live := cell.liveCount[cell.gen]
			if cell.alive {
				cell.alive = live == 2 || live == 3
			} else {
				cell.alive = live == 3
			}
			cell.gen++
			emit(cell, CellElement(pos[0], pos[1]), "Compute", core.Params{
				"gen": core.Int(int64(cell.gen)), "alive": core.Bool(cell.alive),
			})
			if cell.gen < gens {
				for _, n := range neighbours(start, pos[0], pos[1]) {
					send := emit(cell, ChanElement(pos[0], pos[1], n[0], n[1]), "Send", core.Params{
						"gen": core.Int(int64(cell.gen)), "alive": core.Bool(cell.alive),
					})
					inflight = append(inflight, message{from: pos, to: n, gen: cell.gen, alive: cell.alive, sendEv: int(send)})
				}
			}
			continue
		}
		// Deliver a message. FIFO per channel: deliver the earliest
		// inflight message of the chosen channel.
		mi := choice - len(ready)
		ch := inflight[mi]
		for i := 0; i < mi; i++ {
			if inflight[i].from == ch.from && inflight[i].to == ch.to {
				ch = inflight[i]
				mi = i
				break
			}
		}
		inflight = append(inflight[:mi], inflight[mi+1:]...)
		cell := cells[ch.to]
		emit(cell, ChanElement(ch.from[0], ch.from[1], ch.to[0], ch.to[1]), "Recv", core.Params{
			"gen": core.Int(int64(ch.gen)), "alive": core.Bool(ch.alive),
		}, core.EventID(ch.sendEv))
		cell.received[ch.gen]++
		if ch.alive {
			cell.liveCount[ch.gen]++
		}
	}

	comp, err := b.Build()
	if err != nil {
		return Run{}, err
	}
	final := NewBoard(w, h)
	for pos, cell := range cells {
		if cell.gen != gens {
			return Run{}, fmt.Errorf("life: cell %v stopped at generation %d of %d", pos, cell.gen, gens)
		}
		final[pos[1]][pos[0]] = cell.alive
	}
	return Run{Comp: comp, Final: final}, nil
}

// Spec builds the GEM specification: cell and channel elements with
// message-integrity and generation-ordering restrictions.
func Spec(b Board) *spec.Spec {
	s := spec.New("life")
	genParams := []spec.ParamDecl{{Name: "gen", Type: "INTEGER"}, {Name: "alive", Type: "BOOLEAN"}}
	for y := 0; y < b.Height(); y++ {
		for x := 0; x < b.Width(); x++ {
			s.AddElement(&spec.ElementDecl{
				Name:   CellElement(x, y),
				Events: []spec.EventClassDecl{{Name: "Compute", Params: genParams}},
				Restrictions: []spec.Restriction{{
					Name: CellElement(x, y) + ".generations-ascend",
					F:    generationsAscend(CellElement(x, y)),
				}},
			})
			for _, n := range neighbours(b, x, y) {
				elem := ChanElement(x, y, n[0], n[1])
				s.AddElement(&spec.ElementDecl{
					Name:   elem,
					Events: []spec.EventClassDecl{{Name: "Send", Params: genParams}, {Name: "Recv", Params: genParams}},
					Restrictions: []spec.Restriction{{
						Name: elem + ".integrity",
						F:    channelIntegrity(elem),
					}},
				})
			}
		}
	}
	return s
}

func generationsAscend(elem string) logic.Formula {
	return logic.ForAll{Var: "_a", Ref: core.Ref(elem, "Compute"),
		Body: logic.ForAll{Var: "_b", Ref: core.Ref(elem, "Compute"),
			Body: logic.Implies{
				If:   logic.ElemOrdered{X: "_a", Y: "_b"},
				Then: logic.ParamCmp{X: "_a", P: "gen", Op: logic.OpLt, Y: "_b", Q: "gen"},
			},
		},
	}
}

func channelIntegrity(elem string) logic.Formula {
	return logic.And{
		logic.Prereq(core.Ref(elem, "Send"), core.Ref(elem, "Recv")),
		logic.ForAll{Var: "_s", Ref: core.Ref(elem, "Send"),
			Body: logic.ForAll{Var: "_r", Ref: core.Ref(elem, "Recv"),
				Body: logic.Implies{
					If: logic.Enables{X: "_s", Y: "_r"},
					Then: logic.And{
						logic.ParamCmp{X: "_s", P: "gen", Op: logic.OpEq, Y: "_r", Q: "gen"},
						logic.ParamCmp{X: "_s", P: "alive", Op: logic.OpEq, Y: "_r", Q: "alive"},
					},
				},
			},
		},
	}
}

// GenerationCausality builds the restriction that a cell's generation-g
// computation (g ≥ 1) temporally follows every neighbour's generation
// g−1 computation — the asynchronous barrier, event-order style.
func GenerationCausality(b Board, gens int) logic.Formula {
	var out logic.And
	for y := 0; y < b.Height(); y++ {
		for x := 0; x < b.Width(); x++ {
			for _, n := range neighbours(b, x, y) {
				for g := 1; g <= gens; g++ {
					out = append(out, logic.ForAll{
						Var: "_c", Ref: core.Ref(CellElement(x, y), "Compute"),
						Body: logic.Implies{
							If: logic.ParamConst{X: "_c", P: "gen", Op: logic.OpEq, V: core.Int(int64(g))},
							Then: logic.Exists{
								Var: "_n", Ref: core.Ref(CellElement(n[0], n[1]), "Compute"),
								Body: logic.And{
									logic.ParamConst{X: "_n", P: "gen", Op: logic.OpEq, V: core.Int(int64(g - 1))},
									logic.Precedes{X: "_n", Y: "_c"},
								},
							},
						},
					})
				}
			}
		}
	}
	return out
}
