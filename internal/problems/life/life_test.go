package life

import (
	"testing"

	"gem/internal/core"
	"gem/internal/legal"
	"gem/internal/logic"
)

// blinker is the classic period-2 oscillator on a 5x5 board.
func blinker() Board {
	b := NewBoard(5, 5)
	b[2][1], b[2][2], b[2][3] = true, true, true
	return b
}

// glider on a 5x5 board.
func glider() Board {
	b := NewBoard(5, 5)
	b[0][1] = true
	b[1][2] = true
	b[2][0], b[2][1], b[2][2] = true, true, true
	return b
}

func TestSyncBlinkerOscillates(t *testing.T) {
	b := blinker()
	b1 := SyncStep(b)
	// Vertical after one step.
	want := NewBoard(5, 5)
	want[1][2], want[2][2], want[3][2] = true, true, true
	if !b1.Equal(want) {
		t.Fatalf("blinker step wrong:\n%s", b1)
	}
	if !SyncStep(b1).Equal(b) {
		t.Fatal("blinker must have period 2")
	}
}

func TestSyncRules(t *testing.T) {
	// Lone cell dies; 2x2 block is stable.
	lone := NewBoard(3, 3)
	lone[1][1] = true
	if got := SyncStep(lone); got[1][1] {
		t.Error("lone cell must die of underpopulation")
	}
	block := NewBoard(4, 4)
	block[1][1], block[1][2], block[2][1], block[2][2] = true, true, true, true
	if !SyncStep(block).Equal(block) {
		t.Error("block must be a still life")
	}
}

// TestAsyncEqualsSyncAcrossSchedules is the paper's functional
// correctness claim (experiment E8): the asynchronous distributed run
// matches the synchronous reference on every schedule sampled.
func TestAsyncEqualsSyncAcrossSchedules(t *testing.T) {
	boards := map[string]Board{"blinker": blinker(), "glider": glider()}
	for name, start := range boards {
		for _, gens := range []int{1, 2, 3} {
			want := SyncRun(start.Clone(), gens)
			for seed := int64(0); seed < 12; seed++ {
				run, err := AsyncRun(start.Clone(), gens, seed)
				if err != nil {
					t.Fatalf("%s gens=%d seed=%d: %v", name, gens, seed, err)
				}
				if !run.Final.Equal(want) {
					t.Fatalf("%s gens=%d seed=%d diverged:\nasync:\n%ssync:\n%s",
						name, gens, seed, run.Final, want)
				}
			}
		}
	}
}

func TestAsyncComputationLegality(t *testing.T) {
	start := blinker()
	s := Spec(start)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	run, err := AsyncRun(start, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	res := legal.Check(s, run.Comp, legal.Options{})
	if !res.Legal() {
		t.Fatalf("async computation illegal: %v", res.Error())
	}
}

func TestGenerationCausality(t *testing.T) {
	start := NewBoard(3, 3)
	start[1][1], start[0][1], start[2][1] = true, true, true
	gens := 2
	run, err := AsyncRun(start, gens, 7)
	if err != nil {
		t.Fatal(err)
	}
	f := GenerationCausality(start, gens)
	if cx := logic.HoldsAtFull(f, run.Comp); cx != nil {
		t.Fatalf("generation causality violated: %v", cx.Error())
	}
}

func TestAsyncCellsDriftButStayCausal(t *testing.T) {
	// Find a schedule where two cells are momentarily more than one
	// generation apart in the event order — demonstrating the absence of
	// a global barrier — while the result still matches.
	start := blinker()
	gens := 3
	drifted := false
	for seed := int64(0); seed < 30 && !drifted; seed++ {
		run, err := AsyncRun(start.Clone(), gens, seed)
		if err != nil {
			t.Fatal(err)
		}
		// Look for a Compute(g) event concurrent with a Compute(g-2) of
		// another cell: possible only without a global barrier.
		var events []core.EventID
		for _, e := range run.Comp.Events() {
			if e.Class == "Compute" {
				events = append(events, e.ID)
			}
		}
		for _, a := range events {
			for _, b := range events {
				ga := run.Comp.Event(a).Params["gen"].I
				gb := run.Comp.Event(b).Params["gen"].I
				if ga >= gb+2 && run.Comp.Concurrent(a, b) {
					drifted = true
				}
			}
		}
	}
	if !drifted {
		t.Error("expected some schedule with cells >1 generation apart")
	}
}

// TestStaleStateMutantDetected injects the classic asynchronous-Life bug:
// a cell computes with whatever neighbour states have arrived (ignoring
// the generation barrier). The result diverges from the reference on
// some schedule, and the GenerationCausality restriction refutes it.
func TestStaleStateMutantDetected(t *testing.T) {
	start := blinker()
	gens := 2
	want := SyncRun(start.Clone(), gens)
	divergedOrRefuted := false
	for seed := int64(0); seed < 20; seed++ {
		run, err := asyncRunStale(start.Clone(), gens, seed)
		if err != nil {
			continue
		}
		if !run.Final.Equal(want) {
			divergedOrRefuted = true
			break
		}
		if cx := logic.HoldsAtFull(GenerationCausality(start, gens), run.Comp); cx != nil {
			divergedOrRefuted = true
			break
		}
	}
	if !divergedOrRefuted {
		t.Fatal("the stale-state mutant must be detected")
	}
}

func TestBoardHelpers(t *testing.T) {
	b := NewBoard(3, 2)
	if b.Width() != 3 || b.Height() != 2 {
		t.Fatal("dimensions wrong")
	}
	b[0][0] = true
	c := b.Clone()
	c[0][0] = false
	if !b[0][0] {
		t.Error("Clone must not alias")
	}
	if b.Equal(c) {
		t.Error("Equal must detect difference")
	}
	if b.Equal(NewBoard(2, 2)) {
		t.Error("Equal must detect size difference")
	}
	if s := b.String(); s != "#..\n...\n" {
		t.Errorf("String = %q", s)
	}
}
