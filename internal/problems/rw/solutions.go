package rw

import (
	"fmt"

	"gem/internal/ada"
	"gem/internal/csp"
)

// This file provides the CSP and ADA solutions of the (readers-priority)
// Readers/Writers problem: a controller process/task grants reads while
// no write is in progress and writes only when nothing is active, with
// pending requests held at the controller — CSP via guarded input
// acceptance, ADA via guarded selective wait. In both, a request becomes
// visible only when granted (the synchronous grant IS the service), so
// the paper's priority restriction holds vacuously: two requests are
// never simultaneously pending at the control. Mutual exclusion and
// functional correctness are the substantive properties.

// Request codes on the client→controller channels.
const (
	msgStartRead  = 1
	msgEndRead    = 2
	msgStartWrite = 3
	msgEndWrite   = 4
)

// ControllerName is the CSP/ADA control process name.
const ControllerName = "ctrl"

// NewCSPProgram builds the CSP Readers/Writers solution for the workload.
// Reader r: ctrl!SR, read the data, ctrl!ER. Writer w: ctrl!SW, write,
// ctrl!EW. The controller accepts SR only when not writing, SW only when
// idle; per-client progress counters stand in for message kinds on the
// single channel per client.
func NewCSPProgram(w Workload) *csp.Program {
	prog := &csp.Program{}
	var clients []string
	for i := 1; i <= w.Readers; i++ {
		name := fmt.Sprintf("r%d", i)
		clients = append(clients, name)
		prog.Processes = append(prog.Processes, csp.Process{
			Name: name,
			Body: []csp.Stmt{
				csp.Send{To: ControllerName, E: csp.IntLit(msgStartRead)},
				csp.Op{Element: DataElement, Class: "Getval"},
				csp.Send{To: ControllerName, E: csp.IntLit(msgEndRead)},
			},
		})
	}
	for j := 1; j <= w.Writers; j++ {
		name := fmt.Sprintf("w%d", j)
		clients = append(clients, name)
		prog.Processes = append(prog.Processes, csp.Process{
			Name: name,
			Body: []csp.Stmt{
				csp.Send{To: ControllerName, E: csp.IntLit(msgStartWrite)},
				csp.Op{Element: DataElement, Class: "Assign",
					Params: map[string]csp.Expr{"newval": csp.IntLit(int64(100 + j))}},
				csp.Send{To: ControllerName, E: csp.IntLit(msgEndWrite)},
			},
		})
	}

	// Controller state: readers count, writing flag, and per-client
	// message counters (got_<c>: 0 = expecting start, 1 = expecting end).
	vars := []string{"readers", "writing"}
	for _, c := range clients {
		vars = append(vars, "got_"+c)
	}
	var branches []csp.Branch
	for i := 1; i <= w.Readers; i++ {
		name := fmt.Sprintf("r%d", i)
		got := csp.VarRef("got_" + name)
		branches = append(branches,
			csp.Branch{ // StartRead: no write in progress
				Guard: csp.Bin{Op: csp.OpEq,
					L: csp.Bin{Op: csp.OpAdd, L: got, R: csp.VarRef("writing")}, R: csp.IntLit(0)},
				Comm: csp.Recv{From: name, Var: "m"},
				Body: []csp.Stmt{
					csp.Assign{Var: "readers", E: csp.Bin{Op: csp.OpAdd, L: csp.VarRef("readers"), R: csp.IntLit(1)}},
					csp.Assign{Var: "got_" + name, E: csp.IntLit(1)},
				},
			},
			csp.Branch{ // EndRead
				Guard: csp.Bin{Op: csp.OpEq, L: got, R: csp.IntLit(1)},
				Comm:  csp.Recv{From: name, Var: "m"},
				Body: []csp.Stmt{
					csp.Assign{Var: "readers", E: csp.Bin{Op: csp.OpSub, L: csp.VarRef("readers"), R: csp.IntLit(1)}},
					csp.Assign{Var: "got_" + name, E: csp.IntLit(2)},
				},
			},
		)
	}
	for j := 1; j <= w.Writers; j++ {
		name := fmt.Sprintf("w%d", j)
		got := csp.VarRef("got_" + name)
		branches = append(branches,
			csp.Branch{ // StartWrite: first message, nothing active
				// got, readers, and writing are all non-negative, so the
				// zero sum means got=0 ∧ readers=0 ∧ writing=0.
				Guard: csp.Bin{Op: csp.OpEq,
					L: csp.Bin{Op: csp.OpAdd, L: got,
						R: csp.Bin{Op: csp.OpAdd, L: csp.VarRef("readers"), R: csp.VarRef("writing")}},
					R: csp.IntLit(0)},
				Comm: csp.Recv{From: name, Var: "m"},
				Body: []csp.Stmt{
					csp.Assign{Var: "writing", E: csp.IntLit(1)},
					csp.Assign{Var: "got_" + name, E: csp.IntLit(1)},
				},
			},
			csp.Branch{ // EndWrite
				Guard: csp.Bin{Op: csp.OpEq, L: got, R: csp.IntLit(1)},
				Comm:  csp.Recv{From: name, Var: "m"},
				Body: []csp.Stmt{
					csp.Assign{Var: "writing", E: csp.IntLit(0)},
					csp.Assign{Var: "got_" + name, E: csp.IntLit(2)},
				},
			},
		)
	}
	totalMsgs := 2 * (w.Readers + w.Writers)
	prog.Processes = append(prog.Processes, csp.Process{
		Name: ControllerName,
		Vars: append(vars, "m"),
		Body: []csp.Stmt{
			csp.Repeat{N: totalMsgs, Body: []csp.Stmt{csp.Alt{Branches: branches}}},
		},
	})
	return prog
}

// NewAdaProgram builds the ADA Readers/Writers solution: a controller
// task with StartRead/EndRead/StartWrite/EndWrite entries served by a
// guarded selective wait.
func NewAdaProgram(w Workload) *ada.Program {
	prog := &ada.Program{}
	total := 0
	for i := 1; i <= w.Readers; i++ {
		name := fmt.Sprintf("r%d", i)
		prog.Tasks = append(prog.Tasks, ada.Task{
			Name: name,
			Body: []ada.Stmt{
				ada.EntryCall{Task: ControllerName, Entry: "StartRead"},
				ada.Op{Element: DataElement, Class: "Getval"},
				ada.EntryCall{Task: ControllerName, Entry: "EndRead"},
			},
		})
		total += 2
	}
	for j := 1; j <= w.Writers; j++ {
		name := fmt.Sprintf("w%d", j)
		prog.Tasks = append(prog.Tasks, ada.Task{
			Name: name,
			Body: []ada.Stmt{
				ada.EntryCall{Task: ControllerName, Entry: "StartWrite"},
				ada.Op{Element: DataElement, Class: "Assign",
					Params: map[string]ada.Expr{"newval": ada.IntLit(int64(100 + j))}},
				ada.EntryCall{Task: ControllerName, Entry: "EndWrite"},
			},
		})
		total += 2
	}
	inc := func(v string, by int64) ada.Stmt {
		return ada.Assign{Var: v, E: ada.Bin{Op: ada.OpAdd, L: ada.VarRef(v), R: ada.IntLit(by)}}
	}
	sel := ada.Select{Alts: []ada.SelectAlt{
		{
			Guard:  ada.Bin{Op: ada.OpEq, L: ada.VarRef("writing"), R: ada.IntLit(0)},
			Accept: ada.Accept{Entry: "StartRead", Body: []ada.Stmt{inc("readers", 1)}},
		},
		{
			Accept: ada.Accept{Entry: "EndRead", Body: []ada.Stmt{inc("readers", -1)}},
		},
		{
			Guard: ada.Bin{Op: ada.OpEq,
				L: ada.Bin{Op: ada.OpAdd, L: ada.VarRef("readers"), R: ada.VarRef("writing")},
				R: ada.IntLit(0)},
			Accept: ada.Accept{Entry: "StartWrite", Body: []ada.Stmt{ada.Assign{Var: "writing", E: ada.IntLit(1)}}},
		},
		{
			Accept: ada.Accept{Entry: "EndWrite", Body: []ada.Stmt{ada.Assign{Var: "writing", E: ada.IntLit(0)}}},
		},
	}}
	prog.Tasks = append(prog.Tasks, ada.Task{
		Name:    ControllerName,
		Entries: []string{"StartRead", "EndRead", "StartWrite", "EndWrite"},
		Vars:    []string{"readers", "writing"},
		Body:    []ada.Stmt{ada.Repeat{N: total, Body: []ada.Stmt{sel}}},
	})
	return prog
}
