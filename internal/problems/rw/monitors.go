// Package rw implements the Readers/Writers problem as treated by the
// paper: the Section 8 GEM problem specification (users, RWControl,
// database, πRW threads, mutual-exclusion and priority restrictions), the
// Section 9 ReadersWriters monitor verbatim, and four further versions —
// the paper reports specifying five versions of the problem — together
// with the program-level correctness properties used to verify them.
package rw

import (
	"fmt"

	"gem/internal/monitor"
)

// Variant selects one of the five Readers/Writers solutions.
type Variant int

// The five versions of the Readers/Writers problem (Section 11 of the
// paper reports five).
const (
	// ReadersPriority is the paper's Section 9 monitor, verbatim:
	// readernum is positive while reading, negative while writing; a
	// pending read is serviced before any pending write.
	ReadersPriority Variant = iota + 1
	// WritersPriority makes pending writers exclude new readers.
	WritersPriority
	// MutexOnly serializes every operation — readers do not share.
	MutexOnly
	// WeakPriority lets readers share but guarantees no priority either
	// way (end-of-write prefers writers; readers are not blocked by
	// pending writers).
	WeakPriority
	// SerialReadersPriority gives readers priority but serializes reads.
	SerialReadersPriority
)

// String names the variant.
func (v Variant) String() string {
	switch v {
	case ReadersPriority:
		return "readers-priority"
	case WritersPriority:
		return "writers-priority"
	case MutexOnly:
		return "mutex-only"
	case WeakPriority:
		return "weak-priority"
	case SerialReadersPriority:
		return "serial-readers-priority"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Variants lists all five versions.
func Variants() []Variant {
	return []Variant{ReadersPriority, WritersPriority, MutexOnly, WeakPriority, SerialReadersPriority}
}

// MonitorName is the monitor instance name used by all variants.
const MonitorName = "rw"

// DataElement is the external shared element guarded by the monitor (the
// paper: "the data itself must be located outside of the monitor").
const DataElement = "db.data"

// NewMonitor builds the monitor for a variant.
func NewMonitor(v Variant) *monitor.Monitor {
	switch v {
	case ReadersPriority:
		return readersPriorityMonitor()
	case WritersPriority:
		return writersPriorityMonitor()
	case MutexOnly:
		return mutexOnlyMonitor()
	case WeakPriority:
		return weakPriorityMonitor()
	case SerialReadersPriority:
		return serialReadersPriorityMonitor()
	default:
		panic(fmt.Sprintf("rw: unknown variant %d", int(v)))
	}
}

// readersPriorityMonitor is the paper's ReadersWriters monitor,
// transliterated statement for statement.
func readersPriorityMonitor() *monitor.Monitor {
	return &monitor.Monitor{
		Name:  MonitorName,
		Vars:  []string{"readernum"},
		Conds: []string{"readqueue", "writequeue"},
		Entries: []monitor.Entry{
			{
				Name: "StartRead",
				Body: []monitor.Stmt{
					monitor.If{
						Cond: monitor.Bin{Op: monitor.OpLt, L: monitor.VarRef("readernum"), R: monitor.IntLit(0)},
						Then: []monitor.Stmt{monitor.Wait{Cond: "readqueue"}},
					},
					monitor.Assign{Var: "readernum", E: monitor.Bin{Op: monitor.OpAdd, L: monitor.VarRef("readernum"), R: monitor.IntLit(1)}},
					monitor.Signal{Cond: "readqueue"},
				},
			},
			{
				Name: "EndRead",
				Body: []monitor.Stmt{
					monitor.Assign{Var: "readernum", E: monitor.Bin{Op: monitor.OpSub, L: monitor.VarRef("readernum"), R: monitor.IntLit(1)}},
					monitor.If{
						Cond: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("readernum"), R: monitor.IntLit(0)},
						Then: []monitor.Stmt{monitor.Signal{Cond: "writequeue"}},
					},
				},
			},
			{
				Name: "StartWrite",
				Body: []monitor.Stmt{
					monitor.If{
						Cond: monitor.Bin{Op: monitor.OpNe, L: monitor.VarRef("readernum"), R: monitor.IntLit(0)},
						Then: []monitor.Stmt{monitor.Wait{Cond: "writequeue"}},
					},
					monitor.Assign{Var: "readernum", E: monitor.IntLit(-1)},
				},
			},
			{
				Name: "EndWrite",
				Body: []monitor.Stmt{
					monitor.Assign{Var: "readernum", E: monitor.IntLit(0)},
					monitor.If{
						Cond: monitor.QueueNonEmpty{Cond: "readqueue"},
						Then: []monitor.Stmt{monitor.Signal{Cond: "readqueue"}},
						Else: []monitor.Stmt{monitor.Signal{Cond: "writequeue"}},
					},
				},
			},
		},
		Init: []monitor.Stmt{
			monitor.Assign{Var: "readernum", E: monitor.IntLit(0)},
		},
	}
}

// writersPriorityMonitor blocks new readers while a writer waits or
// writes; end-of-write prefers waiting writers.
func writersPriorityMonitor() *monitor.Monitor {
	return &monitor.Monitor{
		Name:  MonitorName,
		Vars:  []string{"readernum", "waitingwriters", "writing"},
		Conds: []string{"readqueue", "writequeue"},
		Entries: []monitor.Entry{
			{
				Name: "StartRead",
				Body: []monitor.Stmt{
					monitor.If{
						Cond: monitor.Bin{Op: monitor.OpOr,
							L: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("writing"), R: monitor.IntLit(1)},
							R: monitor.Bin{Op: monitor.OpGt, L: monitor.VarRef("waitingwriters"), R: monitor.IntLit(0)}},
						Then: []monitor.Stmt{monitor.Wait{Cond: "readqueue"}},
					},
					monitor.Assign{Var: "readernum", E: monitor.Bin{Op: monitor.OpAdd, L: monitor.VarRef("readernum"), R: monitor.IntLit(1)}},
					monitor.If{
						Cond: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("waitingwriters"), R: monitor.IntLit(0)},
						Then: []monitor.Stmt{monitor.Signal{Cond: "readqueue"}},
					},
				},
			},
			{
				Name: "EndRead",
				Body: []monitor.Stmt{
					monitor.Assign{Var: "readernum", E: monitor.Bin{Op: monitor.OpSub, L: monitor.VarRef("readernum"), R: monitor.IntLit(1)}},
					monitor.If{
						Cond: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("readernum"), R: monitor.IntLit(0)},
						Then: []monitor.Stmt{monitor.Signal{Cond: "writequeue"}},
					},
				},
			},
			{
				Name: "StartWrite",
				Body: []monitor.Stmt{
					monitor.If{
						Cond: monitor.Bin{Op: monitor.OpOr,
							L: monitor.Bin{Op: monitor.OpGt, L: monitor.VarRef("readernum"), R: monitor.IntLit(0)},
							R: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("writing"), R: monitor.IntLit(1)}},
						Then: []monitor.Stmt{
							monitor.Assign{Var: "waitingwriters", E: monitor.Bin{Op: monitor.OpAdd, L: monitor.VarRef("waitingwriters"), R: monitor.IntLit(1)}},
							monitor.Wait{Cond: "writequeue"},
							monitor.Assign{Var: "waitingwriters", E: monitor.Bin{Op: monitor.OpSub, L: monitor.VarRef("waitingwriters"), R: monitor.IntLit(1)}},
						},
					},
					monitor.Assign{Var: "writing", E: monitor.IntLit(1)},
				},
			},
			{
				Name: "EndWrite",
				Body: []monitor.Stmt{
					monitor.Assign{Var: "writing", E: monitor.IntLit(0)},
					monitor.If{
						Cond: monitor.QueueNonEmpty{Cond: "writequeue"},
						Then: []monitor.Stmt{monitor.Signal{Cond: "writequeue"}},
						Else: []monitor.Stmt{monitor.Signal{Cond: "readqueue"}},
					},
				},
			},
		},
	}
}

// mutexOnlyMonitor serializes every operation through one busy flag.
func mutexOnlyMonitor() *monitor.Monitor {
	lock := func() []monitor.Stmt {
		return []monitor.Stmt{
			monitor.If{
				Cond: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("busy"), R: monitor.IntLit(1)},
				Then: []monitor.Stmt{monitor.Wait{Cond: "q"}},
			},
			monitor.Assign{Var: "busy", E: monitor.IntLit(1)},
		}
	}
	unlock := func() []monitor.Stmt {
		return []monitor.Stmt{
			monitor.Assign{Var: "busy", E: monitor.IntLit(0)},
			monitor.Signal{Cond: "q"},
		}
	}
	return &monitor.Monitor{
		Name:  MonitorName,
		Vars:  []string{"busy"},
		Conds: []string{"q"},
		Entries: []monitor.Entry{
			{Name: "StartRead", Body: lock()},
			{Name: "EndRead", Body: unlock()},
			{Name: "StartWrite", Body: lock()},
			{Name: "EndWrite", Body: unlock()},
		},
	}
}

// weakPriorityMonitor: readers share and ignore pending writers (like the
// paper's monitor), but end-of-write prefers pending writers — so neither
// priority discipline holds.
func weakPriorityMonitor() *monitor.Monitor {
	m := readersPriorityMonitor()
	for i, e := range m.Entries {
		if e.Name == "EndWrite" {
			m.Entries[i].Body = []monitor.Stmt{
				monitor.Assign{Var: "readernum", E: monitor.IntLit(0)},
				monitor.If{
					Cond: monitor.QueueNonEmpty{Cond: "writequeue"},
					Then: []monitor.Stmt{monitor.Signal{Cond: "writequeue"}},
					Else: []monitor.Stmt{monitor.Signal{Cond: "readqueue"}},
				},
			}
		}
	}
	return m
}

// serialReadersPriorityMonitor: reads are exclusive too, but pending
// reads still beat pending writes (end-of-write prefers the readqueue and
// end-of-read releases the next reader first).
func serialReadersPriorityMonitor() *monitor.Monitor {
	return &monitor.Monitor{
		Name:  MonitorName,
		Vars:  []string{"busy"},
		Conds: []string{"readqueue", "writequeue"},
		Entries: []monitor.Entry{
			{
				Name: "StartRead",
				Body: []monitor.Stmt{
					monitor.If{
						Cond: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("busy"), R: monitor.IntLit(1)},
						Then: []monitor.Stmt{monitor.Wait{Cond: "readqueue"}},
					},
					monitor.Assign{Var: "busy", E: monitor.IntLit(1)},
				},
			},
			{
				Name: "EndRead",
				Body: []monitor.Stmt{
					monitor.Assign{Var: "busy", E: monitor.IntLit(0)},
					monitor.If{
						Cond: monitor.QueueNonEmpty{Cond: "readqueue"},
						Then: []monitor.Stmt{monitor.Signal{Cond: "readqueue"}},
						Else: []monitor.Stmt{monitor.Signal{Cond: "writequeue"}},
					},
				},
			},
			{
				Name: "StartWrite",
				Body: []monitor.Stmt{
					monitor.If{
						Cond: monitor.Bin{Op: monitor.OpEq, L: monitor.VarRef("busy"), R: monitor.IntLit(1)},
						Then: []monitor.Stmt{monitor.Wait{Cond: "writequeue"}},
					},
					monitor.Assign{Var: "busy", E: monitor.IntLit(1)},
				},
			},
			{
				Name: "EndWrite",
				Body: []monitor.Stmt{
					monitor.Assign{Var: "busy", E: monitor.IntLit(0)},
					monitor.If{
						Cond: monitor.QueueNonEmpty{Cond: "readqueue"},
						Then: []monitor.Stmt{monitor.Signal{Cond: "readqueue"}},
						Else: []monitor.Stmt{monitor.Signal{Cond: "writequeue"}},
					},
				},
			},
		},
	}
}

// Workload configures the client processes of a Readers/Writers program.
type Workload struct {
	Readers int
	Writers int
}

// NewProgram builds a monitor program for the variant with the given
// workload. Reader i is process "r<i>": StartRead, a Getval at the shared
// data element, EndRead. Writer j is "w<j>": StartWrite, an Assign of the
// distinct value 100+j, EndWrite.
func NewProgram(v Variant, w Workload) *monitor.Program {
	prog := &monitor.Program{Monitor: NewMonitor(v)}
	for i := 1; i <= w.Readers; i++ {
		prog.Processes = append(prog.Processes, monitor.Process{
			Name: fmt.Sprintf("r%d", i),
			Body: []monitor.ProcStmt{
				monitor.Call{Entry: "StartRead"},
				monitor.Op{Element: DataElement, Class: "Getval"},
				monitor.Call{Entry: "EndRead"},
			},
		})
	}
	for j := 1; j <= w.Writers; j++ {
		prog.Processes = append(prog.Processes, monitor.Process{
			Name: fmt.Sprintf("w%d", j),
			Body: []monitor.ProcStmt{
				monitor.Call{Entry: "StartWrite"},
				monitor.Op{Element: DataElement, Class: "Assign", Params: map[string]int64{"newval": int64(100 + j)}},
				monitor.Call{Entry: "EndWrite"},
			},
		})
	}
	return prog
}
