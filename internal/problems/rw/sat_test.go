package rw

import (
	"fmt"
	"testing"

	"gem/internal/ada"
	"gem/internal/core"
	"gem/internal/csp"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/verify"
)

// These tests run the paper's Section 9 "sat" methodology end to end
// (experiment E7, Readers/Writers column): every computation of each
// solution, projected onto its significant objects, must be legal with
// respect to the Section 8 problem specification.

func clientNames(w Workload) []string {
	var out []string
	for i := 1; i <= w.Readers; i++ {
		out = append(out, fmt.Sprintf("r%d", i))
	}
	for j := 1; j <= w.Writers; j++ {
		out = append(out, fmt.Sprintf("w%d", j))
	}
	return out
}

func TestSatMonitorReadersPriority(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sat check is slow; skipped in -short mode")
	}
	w := Workload{Readers: 2, Writers: 1}
	problem, err := ProblemSpec(clientNames(w), true)
	if err != nil {
		t.Fatal(err)
	}
	runs := exploreVariant(t, ReadersPriority, w)
	corr := MonitorCorrespondence()
	for i, r := range runs {
		res := verify.Check(problem, r.Comp, corr, logic.CheckOptions{})
		if !res.Sat() {
			t.Fatalf("run %d fails sat: %v\nprogram:\n%s\nprojection:\n%s",
				i, res.Error(), r.Comp, projString(res))
		}
	}
	t.Logf("verified %d computations against the readers-priority problem spec", len(runs))
}

func projString(res verify.Result) string {
	if res.Projection == nil {
		return "<none>"
	}
	return res.Projection.Comp.String()
}

// TestSatRefutesWritersPriorityMonitor: the writers-priority monitor must
// FAIL the readers-priority problem spec on some computation, and pass
// the priority-free spec on all — the sat method distinguishes the
// variants.
func TestSatRefutesWritersPriorityMonitor(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sat check is slow; skipped in -short mode")
	}
	w := Workload{Readers: 2, Writers: 1}
	withPriority, err := ProblemSpec(clientNames(w), true)
	if err != nil {
		t.Fatal(err)
	}
	noPriority, err := ProblemSpec(clientNames(w), false)
	if err != nil {
		t.Fatal(err)
	}
	runs := exploreVariant(t, WritersPriority, w)
	corr := MonitorCorrespondence()
	failed := false
	for _, r := range runs {
		res := verify.Check(withPriority, r.Comp, corr, logic.CheckOptions{})
		if !res.Sat() {
			failed = true
		}
		res2 := verify.Check(noPriority, r.Comp, corr, logic.CheckOptions{})
		if !res2.Sat() {
			t.Fatalf("writers-priority monitor must satisfy the priority-free spec: %v", res2.Error())
		}
	}
	if !failed {
		t.Error("writers-priority monitor must be refuted by the readers-priority spec")
	}
}

func TestSatCSP(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sat check is slow; skipped in -short mode")
	}
	w := Workload{Readers: 2, Writers: 1}
	problem, err := ProblemSpec(clientNames(w), true)
	if err != nil {
		t.Fatal(err)
	}
	prog := NewCSPProgram(w)
	runs, truncated, err := csp.Explore(prog, csp.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if truncated || len(runs) == 0 {
		t.Fatalf("csp exploration: %d runs, truncated=%v", len(runs), truncated)
	}
	corr := CSPCorrespondence(w)
	for i, r := range runs {
		if r.Deadlock {
			t.Fatalf("csp run %d deadlocked:\n%s", i, r.Comp)
		}
		res := verify.Check(problem, r.Comp, corr, logic.CheckOptions{})
		if !res.Sat() {
			t.Fatalf("csp run %d fails sat: %v\n%s", i, res.Error(), r.Comp)
		}
	}
	t.Logf("verified %d CSP computations", len(runs))
}

func TestSatAda(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive sat check is slow; skipped in -short mode")
	}
	w := Workload{Readers: 2, Writers: 1}
	problem, err := ProblemSpec(clientNames(w), true)
	if err != nil {
		t.Fatal(err)
	}
	prog := NewAdaProgram(w)
	runs, truncated, err := ada.Explore(prog, ada.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if truncated || len(runs) == 0 {
		t.Fatalf("ada exploration: %d runs, truncated=%v", len(runs), truncated)
	}
	corr := AdaCorrespondence()
	for i, r := range runs {
		if r.Deadlock {
			t.Fatalf("ada run %d deadlocked:\n%s", i, r.Comp)
		}
		res := verify.Check(problem, r.Comp, corr, logic.CheckOptions{})
		if !res.Sat() {
			t.Fatalf("ada run %d fails sat: %v\n%s", i, res.Error(), r.Comp)
		}
	}
	t.Logf("verified %d ADA computations", len(runs))
}

// TestCSPSolutionSatisfiesCSPSpec double-checks the generated CSP
// computations against the CSP primitive's own spec (legality of the
// substrate, E5 tie-in).
func TestCSPSolutionMutualExclusionOnData(t *testing.T) {
	w := Workload{Readers: 2, Writers: 1}
	prog := NewCSPProgram(w)
	runs, _, err := csp.Explore(prog, csp.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		t.Fatal(err)
	}
	// Every Getval must see 0 or the writer's value — never a torn state.
	for _, r := range runs {
		for _, id := range r.Comp.EventsOf(core.Ref(DataElement, "Getval")) {
			got := r.Comp.Event(id).Params["oldval"]
			if got != core.Int(0) && got != core.Int(101) {
				t.Fatalf("impossible read %v", got)
			}
		}
	}
}

// TestCSPAndAdaSolutionsSatisfyPrimitiveSpecs closes the E5 loop on the
// real solutions: every generated computation of the CSP and ADA
// controllers is legal with respect to its primitive's own GEM spec
// (including group access through the shared data element).
func TestCSPAndAdaSolutionsSatisfyPrimitiveSpecs(t *testing.T) {
	w := Workload{Readers: 2, Writers: 1}

	cspProg := NewCSPProgram(w)
	cspSpec := csp.Spec(cspProg)
	if err := cspSpec.Validate(); err != nil {
		t.Fatal(err)
	}
	cspRuns, _, err := csp.Explore(cspProg, csp.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range cspRuns {
		if res := legal.Check(cspSpec, r.Comp, legal.Options{}); !res.Legal() {
			t.Fatalf("csp run %d violates the CSP spec: %v", i, res.Error())
		}
	}

	adaProg := NewAdaProgram(w)
	adaSpec := ada.Spec(adaProg)
	if err := adaSpec.Validate(); err != nil {
		t.Fatal(err)
	}
	adaRuns, _, err := ada.Explore(adaProg, ada.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range adaRuns {
		if res := legal.Check(adaSpec, r.Comp, legal.Options{}); !res.Legal() {
			t.Fatalf("ada run %d violates the ADA spec: %v", i, res.Error())
		}
	}
}
