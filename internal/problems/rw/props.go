package rw

import (
	"gem/internal/core"
	"gem/internal/logic"
)

// Program-level correctness properties, stated over the monitor-generated
// computations. The paper's correspondences map problem events to program
// events; here a read is requested at Begin(StartRead), granted at
// End(StartRead), and released at Begin(EndRead) — uniform across all
// five monitor variants. All properties are structural (they constrain
// the temporal order between specific events), so they are decided once
// per computation; the equivalence with the paper's history-based
// statements is spelled out below.

func beginRef(entry string) core.ClassRef { return core.Ref(MonitorName+"."+entry, "Begin") }
func endRef(entry string) core.ClassRef   { return core.Ref(MonitorName+"."+entry, "End") }

func sameProc(x, y string) logic.Formula {
	return logic.ParamCmp{X: x, P: "proc", Op: logic.OpEq, Y: y, Q: "proc"}
}

func diffProc(x, y string) logic.Formula {
	return logic.ParamCmp{X: x, P: "proc", Op: logic.OpNe, Y: y, Q: "proc"}
}

// MutualExclusion builds the "writers exclude others" property: a
// reader's active interval [End(StartRead), Begin(EndRead)] never
// overlaps a writer's [End(StartWrite), Begin(EndWrite)], and two
// writers' intervals never overlap. For interval events that are totally
// ordered (monitor-internal events always are), non-overlap is exactly
// "er ⇒ sw ∨ ew ⇒ sr".
func MutualExclusionProp() logic.Formula {
	readerWriter := logic.ForAll{Var: "sr", Ref: endRef("StartRead"),
		Body: logic.ForAll{Var: "er", Ref: beginRef("EndRead"),
			Body: logic.ForAll{Var: "sw", Ref: endRef("StartWrite"),
				Body: logic.ForAll{Var: "ew", Ref: beginRef("EndWrite"),
					Body: logic.Implies{
						If:   logic.And{sameProc("sr", "er"), sameProc("sw", "ew")},
						Then: logic.Or{logic.Precedes{X: "er", Y: "sw"}, logic.Precedes{X: "ew", Y: "sr"}},
					},
				},
			},
		},
	}
	writerWriter := logic.ForAll{Var: "sw1", Ref: endRef("StartWrite"),
		Body: logic.ForAll{Var: "ew1", Ref: beginRef("EndWrite"),
			Body: logic.ForAll{Var: "sw2", Ref: endRef("StartWrite"),
				Body: logic.ForAll{Var: "ew2", Ref: beginRef("EndWrite"),
					Body: logic.Implies{
						If: logic.And{
							sameProc("sw1", "ew1"), sameProc("sw2", "ew2"), diffProc("sw1", "sw2"),
						},
						Then: logic.Or{logic.Precedes{X: "ew1", Y: "sw2"}, logic.Precedes{X: "ew2", Y: "sw1"}},
					},
				},
			},
		},
	}
	return logic.And{readerWriter, writerWriter}
}

// ReadersPriority builds the paper's readers-priority property. The
// paper states it over histories: if a read request and a write request
// are pending at the same time, the read is serviced first. A read is
// pending on [Begin(StartRead), End(StartRead)); both requests are
// pending in some common history iff ¬(sr ⇒ bw) ∧ ¬(sw ⇒ br) (the
// down-closure of the two Begins contains neither End); from such a
// history "□(occurred(sw) ⊃ occurred(sr))" holds on every valid history
// sequence iff sr ⇒ sw. The formula below is exactly that reduction.
func ReadersPriorityProp() logic.Formula {
	return logic.ForAll{Var: "br", Ref: beginRef("StartRead"),
		Body: logic.ForAll{Var: "sr", Ref: endRef("StartRead"),
			Body: logic.ForAll{Var: "bw", Ref: beginRef("StartWrite"),
				Body: logic.ForAll{Var: "sw", Ref: endRef("StartWrite"),
					Body: logic.Implies{
						If: logic.And{
							sameProc("br", "sr"), sameProc("bw", "sw"),
							logic.Not{F: logic.Precedes{X: "sr", Y: "bw"}},
							logic.Not{F: logic.Precedes{X: "sw", Y: "br"}},
						},
						Then: logic.Precedes{X: "sr", Y: "sw"},
					},
				},
			},
		},
	}
}

// WritersPriority is the symmetric property: a pending write is serviced
// before any read pending at the same time.
func WritersPriorityProp() logic.Formula {
	return logic.ForAll{Var: "br", Ref: beginRef("StartRead"),
		Body: logic.ForAll{Var: "sr", Ref: endRef("StartRead"),
			Body: logic.ForAll{Var: "bw", Ref: beginRef("StartWrite"),
				Body: logic.ForAll{Var: "sw", Ref: endRef("StartWrite"),
					Body: logic.Implies{
						If: logic.And{
							sameProc("br", "sr"), sameProc("bw", "sw"),
							logic.Not{F: logic.Precedes{X: "sr", Y: "bw"}},
							logic.Not{F: logic.Precedes{X: "sw", Y: "br"}},
						},
						Then: logic.Precedes{X: "sw", Y: "sr"},
					},
				},
			},
		},
	}
}

// ReadsOverlap holds of a computation in which two readers are active
// concurrently — the reader-sharing capability that distinguishes the
// sharing variants from the serializing ones. (Checked per computation;
// a variant "allows sharing" when some legal computation satisfies it.)
func ReadsOverlap() logic.Formula {
	return logic.Exists{Var: "sr1", Ref: endRef("StartRead"),
		Body: logic.Exists{Var: "er1", Ref: beginRef("EndRead"),
			Body: logic.Exists{Var: "sr2", Ref: endRef("StartRead"),
				Body: logic.Exists{Var: "er2", Ref: beginRef("EndRead"),
					Body: logic.And{
						sameProc("sr1", "er1"), sameProc("sr2", "er2"), diffProc("sr1", "sr2"),
						logic.Not{F: logic.Precedes{X: "er1", Y: "sr2"}},
						logic.Not{F: logic.Precedes{X: "er2", Y: "sr1"}},
					},
				},
			},
		},
	}
}

// Expected reports which properties each variant must satisfy (on every
// legal computation) and whether reader sharing must be reachable (on
// some computation).
type Expected struct {
	MutualExclusion bool
	ReadersPriority bool
	WritersPriority bool
	AllowsSharing   bool
}

// ExpectedFor returns the ground truth for a variant.
func ExpectedFor(v Variant) Expected {
	switch v {
	case ReadersPriority:
		return Expected{MutualExclusion: true, ReadersPriority: true, AllowsSharing: true}
	case WritersPriority:
		return Expected{MutualExclusion: true, WritersPriority: true, AllowsSharing: true}
	case MutexOnly:
		return Expected{MutualExclusion: true}
	case WeakPriority:
		return Expected{MutualExclusion: true, AllowsSharing: true}
	case SerialReadersPriority:
		return Expected{MutualExclusion: true, ReadersPriority: true}
	default:
		return Expected{}
	}
}
