package rw

import (
	"fmt"

	"gem/internal/core"
	"gem/internal/csp"
	"gem/internal/verify"
)

// Correspondences for the paper's Section 9 sat methodology: they map the
// significant program events of each solution to the problem events of
// the Section 8 specification. The monitor mapping is the paper's own
// correspondence table (ReqRead ↔ entry StartRead begin, StartRead ↔ the
// readernum update — here the entry's End, which is the same control
// point — etc.).

// MonitorCorrespondence maps the monitor solution's events to the
// problem's.
func MonitorCorrespondence() verify.Correspondence {
	mon := MonitorName
	return verify.Correspondence{Rules: []verify.Rule{
		// read chain
		{Match: core.Ref("", "Call"), Where: core.Params{"entry": core.Str("StartRead")},
			Element: "%s", Class: "Read", KeyParam: "@element", Chain: "read", Stage: 0},
		{Match: core.Ref(mon+".StartRead", "Begin"),
			Element: "db.control", Class: "ReqRead", KeyParam: "proc", Chain: "read", Stage: 1},
		{Match: core.Ref(mon+".StartRead", "End"),
			Element: "db.control", Class: "StartRead", KeyParam: "proc", Chain: "read", Stage: 2},
		{Match: core.Ref(DataElement, "Getval"),
			Element: "db.data", Class: "Getval", KeyParam: "proc", Chain: "read", Stage: 3,
			CopyParams: map[string]string{"oldval": "oldval"}},
		{Match: core.Ref(mon+".EndRead", "Begin"),
			Element: "db.control", Class: "EndRead", KeyParam: "proc", Chain: "read", Stage: 4},
		{Match: core.Ref("", "Return"), Where: core.Params{"entry": core.Str("EndRead")},
			Element: "%s", Class: "FinishRead", KeyParam: "@element", Chain: "read", Stage: 5},
		// write chain
		{Match: core.Ref("", "Call"), Where: core.Params{"entry": core.Str("StartWrite")},
			Element: "%s", Class: "Write", KeyParam: "@element", Chain: "write", Stage: 0},
		{Match: core.Ref(mon+".StartWrite", "Begin"),
			Element: "db.control", Class: "ReqWrite", KeyParam: "proc", Chain: "write", Stage: 1},
		{Match: core.Ref(mon+".StartWrite", "End"),
			Element: "db.control", Class: "StartWrite", KeyParam: "proc", Chain: "write", Stage: 2},
		{Match: core.Ref(DataElement, "Assign"),
			Element: "db.data", Class: "Assign", KeyParam: "proc", Chain: "write", Stage: 3,
			CopyParams: map[string]string{"newval": "newval"}},
		{Match: core.Ref(mon+".EndWrite", "Begin"),
			Element: "db.control", Class: "EndWrite", KeyParam: "proc", Chain: "write", Stage: 4},
		{Match: core.Ref("", "Return"), Where: core.Params{"entry": core.Str("EndWrite")},
			Element: "%s", Class: "FinishWrite", KeyParam: "@element", Chain: "write", Stage: 5},
	}}
}

// CSPCorrespondence maps the CSP solution's events (synchronous message
// exchanges with the controller) to the problem's. The simultaneity of
// CSP exchange leaves some adjacent significant events unordered; those
// stages are Relaxed (the projection linearizes consistently).
func CSPCorrespondence(w Workload) verify.Correspondence {
	var rules []verify.Rule
	for i := 1; i <= w.Readers; i++ {
		name := fmt.Sprintf("r%d", i)
		outE := csp.OutElement(name, ControllerName)
		inpE := csp.InpElement(ControllerName, name)
		rules = append(rules,
			verify.Rule{Match: core.Ref(outE, "Req"), Where: core.Params{"v": core.Int(msgStartRead)},
				Element: "%s", Class: "Read", KeyParam: "proc", Chain: "read", Stage: 0},
			verify.Rule{Match: core.Ref(inpE, "Req"), Where: core.Params{"v": core.Int(msgStartRead)},
				Element: "db.control", Class: "ReqRead", KeyParam: "partner", Chain: "read", Stage: 1, Relaxed: true},
			verify.Rule{Match: core.Ref(inpE, "End"), Where: core.Params{"v": core.Int(msgStartRead)},
				Element: "db.control", Class: "StartRead", KeyParam: "partner", Chain: "read", Stage: 2},
			verify.Rule{Match: core.Ref(DataElement, "Getval"), Where: core.Params{"proc": core.Str(name)},
				Element: "db.data", Class: "Getval", KeyParam: "proc", Chain: "read", Stage: 3, Relaxed: true,
				CopyParams: map[string]string{"oldval": "oldval"}},
			verify.Rule{Match: core.Ref(inpE, "End"), Where: core.Params{"v": core.Int(msgEndRead)},
				Element: "db.control", Class: "EndRead", KeyParam: "partner", Chain: "read", Stage: 4},
			verify.Rule{Match: core.Ref(outE, "End"), Where: core.Params{"v": core.Int(msgEndRead)},
				Element: "%s", Class: "FinishRead", KeyParam: "proc", Chain: "read", Stage: 5, Relaxed: true},
		)
	}
	for j := 1; j <= w.Writers; j++ {
		name := fmt.Sprintf("w%d", j)
		outE := csp.OutElement(name, ControllerName)
		inpE := csp.InpElement(ControllerName, name)
		rules = append(rules,
			verify.Rule{Match: core.Ref(outE, "Req"), Where: core.Params{"v": core.Int(msgStartWrite)},
				Element: "%s", Class: "Write", KeyParam: "proc", Chain: "write", Stage: 0},
			verify.Rule{Match: core.Ref(inpE, "Req"), Where: core.Params{"v": core.Int(msgStartWrite)},
				Element: "db.control", Class: "ReqWrite", KeyParam: "partner", Chain: "write", Stage: 1, Relaxed: true},
			verify.Rule{Match: core.Ref(inpE, "End"), Where: core.Params{"v": core.Int(msgStartWrite)},
				Element: "db.control", Class: "StartWrite", KeyParam: "partner", Chain: "write", Stage: 2},
			verify.Rule{Match: core.Ref(DataElement, "Assign"), Where: core.Params{"proc": core.Str(name)},
				Element: "db.data", Class: "Assign", KeyParam: "proc", Chain: "write", Stage: 3, Relaxed: true,
				CopyParams: map[string]string{"newval": "newval"}},
			verify.Rule{Match: core.Ref(inpE, "End"), Where: core.Params{"v": core.Int(msgEndWrite)},
				Element: "db.control", Class: "EndWrite", KeyParam: "partner", Chain: "write", Stage: 4},
			verify.Rule{Match: core.Ref(outE, "End"), Where: core.Params{"v": core.Int(msgEndWrite)},
				Element: "%s", Class: "FinishWrite", KeyParam: "proc", Chain: "write", Stage: 5, Relaxed: true},
		)
	}
	return verify.Correspondence{Rules: rules}
}

// AdaCorrespondence maps the ADA solution's rendezvous events to the
// problem's.
func AdaCorrespondence() verify.Correspondence {
	ctrl := ControllerName
	return verify.Correspondence{Rules: []verify.Rule{
		// read chain
		{Match: core.Ref("", "Call"), Where: core.Params{"entry": core.Str("StartRead")},
			Element: "%s", Class: "Read", KeyParam: "@element", Chain: "read", Stage: 0},
		{Match: core.Ref(ctrl+".StartRead", "AcceptStart"),
			Element: "db.control", Class: "ReqRead", KeyParam: "caller", Chain: "read", Stage: 1},
		{Match: core.Ref(ctrl+".StartRead", "AcceptEnd"),
			Element: "db.control", Class: "StartRead", KeyParam: "caller", Chain: "read", Stage: 2},
		{Match: core.Ref(DataElement, "Getval"),
			Element: "db.data", Class: "Getval", KeyParam: "proc", Chain: "read", Stage: 3,
			CopyParams: map[string]string{"oldval": "oldval"}},
		{Match: core.Ref(ctrl+".EndRead", "AcceptStart"),
			Element: "db.control", Class: "EndRead", KeyParam: "caller", Chain: "read", Stage: 4},
		{Match: core.Ref("", "Return"), Where: core.Params{"entry": core.Str("EndRead")},
			Element: "%s", Class: "FinishRead", KeyParam: "@element", Chain: "read", Stage: 5},
		// write chain
		{Match: core.Ref("", "Call"), Where: core.Params{"entry": core.Str("StartWrite")},
			Element: "%s", Class: "Write", KeyParam: "@element", Chain: "write", Stage: 0},
		{Match: core.Ref(ctrl+".StartWrite", "AcceptStart"),
			Element: "db.control", Class: "ReqWrite", KeyParam: "caller", Chain: "write", Stage: 1},
		{Match: core.Ref(ctrl+".StartWrite", "AcceptEnd"),
			Element: "db.control", Class: "StartWrite", KeyParam: "caller", Chain: "write", Stage: 2},
		{Match: core.Ref(DataElement, "Assign"),
			Element: "db.data", Class: "Assign", KeyParam: "proc", Chain: "write", Stage: 3,
			CopyParams: map[string]string{"newval": "newval"}},
		{Match: core.Ref(ctrl+".EndWrite", "AcceptStart"),
			Element: "db.control", Class: "EndWrite", KeyParam: "caller", Chain: "write", Stage: 4},
		{Match: core.Ref("", "Return"), Where: core.Params{"entry": core.Str("EndWrite")},
			Element: "%s", Class: "FinishWrite", KeyParam: "@element", Chain: "write", Stage: 5},
	}}
}
