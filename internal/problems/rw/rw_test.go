package rw

import (
	"sort"
	"strings"
	"testing"

	"gem/internal/core"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/monitor"
	"gem/internal/thread"
)

// --- E3: the Section 8 problem specification ---------------------------

func TestProblemSpecParses(t *testing.T) {
	s, err := ProblemSpec([]string{"u1", "u2"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Element("db.control"); !ok {
		t.Error("db.control missing")
	}
	if _, ok := s.Element("db.data"); !ok {
		t.Error("db.data missing")
	}
	if _, ok := s.Element("u1"); !ok {
		t.Error("u1 missing")
	}
	if got := len(s.Threads()); got != 2 {
		t.Errorf("piRW alternatives = %d, want 2", got)
	}
	if _, ok := s.Group("db"); !ok {
		t.Error("db group missing")
	}
}

func TestSerializedComputationLegal(t *testing.T) {
	s, err := ProblemSpec([]string{"u1", "u2"}, true)
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildComputation(s, []Transaction{
		{User: "u1", Write: true, Value: 7},
		{User: "u2"},
		{User: "u1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := legal.Check(s, c, legal.Options{})
	if !res.Legal() {
		t.Fatalf("serialized write-read-read computation must be legal: %v", res.Error())
	}
}

func TestProblemSpecRefutesMutualExclusionViolation(t *testing.T) {
	s, err := ProblemSpec([]string{"u1", "u2"}, false)
	if err != nil {
		t.Fatal(err)
	}
	// Reader starts, writer starts before reader ends: StartRead, then
	// StartWrite with no intervening EndRead — a history with both active
	// exists.
	b := core.NewBuilder()
	r := b.Event("u1", "Read", nil)
	rq := b.Event("db.control", "ReqRead", nil)
	st := b.Event("db.control", "StartRead", nil)
	w := b.Event("u2", "Write", core.Params{"info": core.Int(5)})
	wq := b.Event("db.control", "ReqWrite", core.Params{"info": core.Int(5)})
	sw := b.Event("db.control", "StartWrite", core.Params{"info": core.Int(5)})
	as := b.Event("db.data", "Assign", core.Params{"newval": core.Int(5)})
	ew := b.Event("db.control", "EndWrite", nil)
	fw := b.Event("u2", "FinishWrite", nil)
	gv := b.Event("db.data", "Getval", core.Params{"oldval": core.Int(5)})
	er := b.Event("db.control", "EndRead", core.Params{"info": core.Int(5)})
	fr := b.Event("u1", "FinishRead", core.Params{"info": core.Int(5)})
	chain(b, r, rq, st, gv, er, fr)
	chain(b, w, wq, sw, as, ew, fw)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	thread.Apply(c, s.Threads()...)
	res := legal.Check(s, c, legal.Options{})
	if res.Legal() {
		t.Fatal("overlapping read and write must violate mutual exclusion")
	}
	found := false
	for _, v := range res.Violations {
		if v.Restriction == "writers-exclude-readers" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected writers-exclude-readers violation, got %v", res.Violations)
	}
}

func TestProblemSpecRefutesPriorityViolation(t *testing.T) {
	s, err := ProblemSpec([]string{"u1", "u2"}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Both requests pending, then the write is serviced first: ReqRead,
	// ReqWrite, StartWrite, ..., StartRead — violates readers priority.
	b := core.NewBuilder()
	r := b.Event("u1", "Read", nil)
	rq := b.Event("db.control", "ReqRead", nil)
	w := b.Event("u2", "Write", core.Params{"info": core.Int(5)})
	wq := b.Event("db.control", "ReqWrite", core.Params{"info": core.Int(5)})
	sw := b.Event("db.control", "StartWrite", core.Params{"info": core.Int(5)})
	as := b.Event("db.data", "Assign", core.Params{"newval": core.Int(5)})
	ew := b.Event("db.control", "EndWrite", nil)
	fw := b.Event("u2", "FinishWrite", nil)
	st := b.Event("db.control", "StartRead", nil)
	gv := b.Event("db.data", "Getval", core.Params{"oldval": core.Int(5)})
	er := b.Event("db.control", "EndRead", core.Params{"info": core.Int(5)})
	fr := b.Event("u1", "FinishRead", core.Params{"info": core.Int(5)})
	chain(b, r, rq, st, gv, er, fr)
	chain(b, w, wq, sw, as, ew, fw)
	// Force the writer's start after the read request in the temporal
	// order (both pending simultaneously at the history {r, rq, w, wq}).
	b.Enable(rq, sw)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	thread.Apply(c, s.Threads()...)
	res := legal.Check(s, c, legal.Options{})
	if res.Legal() {
		t.Fatal("write serviced before a pending read must violate readers priority")
	}
	found := false
	for _, v := range res.Violations {
		if v.Restriction == "readers-priority" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected readers-priority violation, got %v", res.Violations)
	}
	// Without the priority restriction the same computation is legal.
	s2, err := ProblemSpec([]string{"u1", "u2"}, false)
	if err != nil {
		t.Fatal(err)
	}
	res2 := legal.Check(s2, c, legal.Options{})
	if !res2.Legal() {
		t.Errorf("without priority the computation should be legal: %v", res2.Error())
	}
}

func TestProblemSpecRefutesStaleRead(t *testing.T) {
	s, err := ProblemSpec([]string{"u1", "u2"}, false)
	if err != nil {
		t.Fatal(err)
	}
	c, err := BuildComputation(s, []Transaction{
		{User: "u1", Write: true, Value: 7},
		{User: "u2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the read: report a value that was never the last assign.
	for _, id := range c.EventsOf(core.Ref("db.data", "Getval")) {
		c.Event(id).Params["oldval"] = core.Int(999)
	}
	res := legal.Check(s, c, legal.Options{})
	if res.Legal() {
		t.Fatal("stale read must violate the Variable restriction")
	}
}

// --- E4: the five monitor variants ------------------------------------

// exploreVariant runs the workload exhaustively and returns the runs.
func exploreVariant(t *testing.T, v Variant, w Workload) []monitor.Run {
	t.Helper()
	prog := NewProgram(v, w)
	runs, truncated, err := monitor.Explore(prog, monitor.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Fatalf("%v workload %+v truncated", v, w)
	}
	if len(runs) == 0 {
		t.Fatalf("%v produced no runs", v)
	}
	return runs
}

// TestVariantMatrix checks every variant against the property matrix
// (experiment E4 plus the cross-variant distinctions): mutual exclusion
// always; readers/writers priority as expected; deadlock freedom; and
// reader sharing reachability.
func TestVariantMatrix(t *testing.T) {
	workloads := []Workload{
		{Readers: 2, Writers: 1},
		{Readers: 1, Writers: 2},
	}
	for _, v := range Variants() {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			exp := ExpectedFor(v)
			me := MutualExclusionProp()
			rp := ReadersPriorityProp()
			wp := WritersPriorityProp()
			sharing := false
			rpHolds, wpHolds := true, true
			for _, w := range workloads {
				for _, r := range exploreVariant(t, v, w) {
					if r.Deadlock {
						t.Fatalf("%v deadlocked:\n%s", v, r.Comp)
					}
					if cx := logic.Holds(me, r.Comp, logic.CheckOptions{}); cx != nil {
						t.Fatalf("%v violates mutual exclusion:\n%s", v, r.Comp)
					}
					if cx := logic.Holds(rp, r.Comp, logic.CheckOptions{}); cx != nil {
						rpHolds = false
					}
					if cx := logic.Holds(wp, r.Comp, logic.CheckOptions{}); cx != nil {
						wpHolds = false
					}
					if logic.HoldsAtFull(ReadsOverlap(), r.Comp) == nil {
						sharing = true
					}
				}
			}
			if rpHolds != exp.ReadersPriority {
				t.Errorf("%v: readers-priority = %v, want %v", v, rpHolds, exp.ReadersPriority)
			}
			if wpHolds != exp.WritersPriority {
				t.Errorf("%v: writers-priority = %v, want %v", v, wpHolds, exp.WritersPriority)
			}
			if sharing != exp.AllowsSharing {
				t.Errorf("%v: reader sharing reachable = %v, want %v", v, sharing, exp.AllowsSharing)
			}
		})
	}
}

// TestPaperMonitorLegality: every computation of the paper's monitor
// satisfies the Monitor-primitive spec (E5 tie-in on the real program).
func TestPaperMonitorLegality(t *testing.T) {
	prog := NewProgram(ReadersPriority, Workload{Readers: 2, Writers: 1})
	s := monitor.Spec(prog)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	runs := exploreVariant(t, ReadersPriority, Workload{Readers: 2, Writers: 1})
	for _, r := range runs {
		res := legal.Check(s, r.Comp, legal.Options{})
		if !res.Legal() {
			t.Fatalf("monitor computation illegal: %v\n%s", res.Error(), r.Comp)
		}
	}
}

// TestReadsSeeLastWrite: functional correctness of the data element — a
// Getval always reports the most recent Assign in the element order
// (checked by the Variable restriction embedded in the program spec).
func TestReadsSeeLastWrite(t *testing.T) {
	prog := NewProgram(ReadersPriority, Workload{Readers: 1, Writers: 2})
	s := monitor.Spec(prog)
	runs := exploreVariant(t, ReadersPriority, Workload{Readers: 1, Writers: 2})
	for _, r := range runs {
		res := legal.Check(s, r.Comp, legal.Options{})
		if !res.Legal() {
			t.Fatalf("run violates program spec: %v", res.Error())
		}
		// Every Getval must report 0, 101, or 102.
		for _, id := range r.Comp.EventsOf(core.Ref(DataElement, "Getval")) {
			got := r.Comp.Event(id).Params["oldval"]
			if got != core.Int(0) && got != core.Int(101) && got != core.Int(102) {
				t.Errorf("read saw impossible value %v", got)
			}
		}
	}
}

func TestVariantStrings(t *testing.T) {
	for _, v := range Variants() {
		if v.String() == "" {
			t.Errorf("variant %d has no name", v)
		}
	}
	if Variant(99).String() != "variant(99)" {
		t.Error("unknown variant rendering wrong")
	}
}

func TestNewMonitorUnknownVariantPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown variant should panic")
		}
	}()
	NewMonitor(Variant(99))
}

// TestBrokenSignalCausesDeadlock: the paper reports proving "lack of
// deadlock"; here the converse — dropping the EndRead signal leaves a
// waiting writer stuck forever, and the exhaustive exploration exposes
// the deadlocked computation.
func TestBrokenSignalCausesDeadlock(t *testing.T) {
	prog := NewProgram(ReadersPriority, Workload{Readers: 1, Writers: 1})
	for i, e := range prog.Monitor.Entries {
		if e.Name == "EndRead" {
			// Drop the "IF readernum = 0 THEN SIGNAL(writequeue)" step.
			prog.Monitor.Entries[i].Body = e.Body[:1]
		}
	}
	runs, _, err := monitor.Explore(prog, monitor.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	deadlocked := 0
	for _, r := range runs {
		if r.Deadlock {
			deadlocked++
		}
	}
	if deadlocked == 0 {
		t.Fatal("dropping the signal must produce a deadlocked schedule")
	}
	t.Logf("%d of %d schedules deadlock without the signal", deadlocked, len(runs))
}

// TestIntactMonitorDeadlockFree is the positive side: the paper's monitor
// never deadlocks on any explored schedule.
func TestIntactMonitorDeadlockFree(t *testing.T) {
	for _, w := range []Workload{{Readers: 2, Writers: 1}, {Readers: 1, Writers: 2}} {
		runs, _, err := monitor.Explore(NewProgram(ReadersPriority, w), monitor.ExploreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range runs {
			if r.Deadlock {
				t.Fatalf("unexpected deadlock under %+v:\n%s", w, r.Comp)
			}
		}
	}
}

// TestExplorationReductionOnRW validates the simulator's partial-order
// reduction on the paper's monitor itself: reduced and unreduced
// explorations of a 1R+1W workload yield the same computations.
func TestExplorationReductionOnRW(t *testing.T) {
	prog := NewProgram(ReadersPriority, Workload{Readers: 1, Writers: 1})
	collect := func(noReduction bool) map[string]bool {
		runs, truncated, err := monitor.Explore(prog, monitor.ExploreOptions{
			NoReduction: noReduction, MaxRuns: 60000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if truncated {
			t.Fatal("truncated")
		}
		out := make(map[string]bool, len(runs))
		for _, r := range runs {
			var lines []string
			for _, e := range r.Comp.Events() {
				lines = append(lines, e.String())
				for _, succ := range r.Comp.Enabled(e.ID) {
					lines = append(lines, e.String()+">"+r.Comp.Event(succ).String())
				}
			}
			sort.Strings(lines)
			out[strings.Join(lines, "\n")] = true
		}
		return out
	}
	reduced := collect(false)
	full := collect(true)
	if len(reduced) != len(full) {
		t.Fatalf("reduced %d vs unreduced %d computations", len(reduced), len(full))
	}
	for k := range full {
		if !reduced[k] {
			t.Fatal("computation missing from reduced exploration")
		}
	}
	t.Logf("%d computations in both explorations", len(reduced))
}
