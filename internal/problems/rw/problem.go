package rw

import (
	"fmt"
	"strings"

	"gem/internal/core"
	"gem/internal/gemlang"
	"gem/internal/logic"
	"gem/internal/spec"
	"gem/internal/thread"
)

// This file builds the paper's Section 8 GEM problem specification of the
// Readers/Writers problem: User and RWControl element types, the database
// group, the πRW thread, the operation chains, the mutual-exclusion
// restriction, and (for the readers-priority version) the priority
// restriction — stated, as in the paper, with thread quantifiers and the
// temporal operator □ over valid history sequences.
//
// The paper's data[loc:1..N] array is specialised to a single location
// (loc plays no role in the synchronization properties being verified).

// problemSource renders the structural part of the problem spec in the
// gemlang concrete syntax for the named users.
func problemSource(users []string) string {
	var sb strings.Builder
	sb.WriteString(`SPEC RWProblem

ELEMENT TYPE User
  EVENTS
    Read
    FinishRead(info: VALUE)
    Write(info: VALUE)
    FinishWrite
END

ELEMENT db.control
  EVENTS
    ReqRead
    StartRead
    EndRead(info: VALUE)
    ReqWrite(info: VALUE)
    StartWrite(info: VALUE)
    EndWrite
END

ELEMENT db.data : Variable

GROUP db MEMBERS(db.control, db.data)
  PORTS(db.control.ReqRead, db.control.ReqWrite)
END

THREAD piRW = (Read :: db.control.ReqRead :: db.control.StartRead ::
               db.data.Getval :: db.control.EndRead :: FinishRead)
THREAD piRW = (Write :: db.control.ReqWrite :: db.control.StartWrite ::
               db.data.Assign :: db.control.EndWrite :: FinishWrite)
`)
	for _, u := range users {
		fmt.Fprintf(&sb, "ELEMENT %s : User\n", u)
	}
	// Operation chains (paper's restrictions 1 and 2): each step of a
	// transaction is the unique prerequisite of the next.
	var reads, writes []string
	for _, u := range users {
		reads = append(reads, u+".Read")
		writes = append(writes, u+".Write")
	}
	fmt.Fprintf(&sb, `
RESTRICTION "read-requests": NDPREREQ({%s} -> db.control.ReqRead) ;
RESTRICTION "write-requests": NDPREREQ({%s} -> db.control.ReqWrite) ;
RESTRICTION "read-chain":
  PREREQ(db.control.ReqRead -> db.control.StartRead -> db.data.Getval -> db.control.EndRead) ;
RESTRICTION "write-chain":
  PREREQ(db.control.ReqWrite -> db.control.StartWrite -> db.data.Assign -> db.control.EndWrite) ;
`, strings.Join(reads, ", "), strings.Join(writes, ", "))
	for _, u := range users {
		fmt.Fprintf(&sb, "RESTRICTION \"%s-finishes\": PREREQ(db.control.EndRead -> %s.FinishRead) & PREREQ(db.control.EndWrite -> %s.FinishWrite) ;\n", u, u, u)
	}
	return sb.String()
}

// Variable element type in gemlang, prepended so "ELEMENT db.data :
// Variable" resolves.
const variableTypeSource = `
ELEMENT TYPE Variable
  EVENTS
    Assign(newval: VALUE)
    Getval(oldval: VALUE)
  RESTRICTIONS
    "reads-last-assign":
      (FORALL assign: Assign, getval: Getval)
        (assign ~> getval &
         ~((EXISTS assign2: Assign) (assign ~> assign2 & assign2 ~> getval)))
        -> assign.newval = getval.oldval ;
END
`

// The paper's Section 8.3 mutual-exclusion restriction, split into its
// two clauses: writers exclude readers, and writers exclude writers.
// Each is an invariant over histories with thread quantifiers.
const writersExcludeReadersSource = `
  (FORALLTHREAD ti: piRW, tj: piRW)
    distinct(ti, tj) ->
    ~( ((EXISTS sr: db.control.StartRead) (sr in ti & occurred(sr)
         & ~((EXISTS er: db.control.EndRead) (er in ti & occurred(er)))))
     & ((EXISTS sw: db.control.StartWrite) (sw in tj & occurred(sw)
         & ~((EXISTS ew: db.control.EndWrite) (ew in tj & occurred(ew))))) )
`

const writersExcludeWritersSource = `
  (FORALLTHREAD ti: piRW, tj: piRW)
    distinct(ti, tj) ->
    ~( ((EXISTS s1: db.control.StartWrite) (s1 in ti & occurred(s1)
         & ~((EXISTS e1: db.control.EndWrite) (e1 in ti & occurred(e1)))))
     & ((EXISTS s2: db.control.StartWrite) (s2 in tj & occurred(s2)
         & ~((EXISTS e2: db.control.EndWrite) (e2 in tj & occurred(e2))))) )
`

// readersPrioritySource is the paper's readers-priority restriction: if a
// read request and a write request are pending at the same time, the read
// must be serviced before the write. "Pending" is the paper's
// intermediate-control-point 'reqread at StartRead'.
const readersPrioritySource = `
  [] (FORALLTHREAD ti: piRW, tj: piRW)
     ( ((EXISTS rr: db.control.ReqRead) (rr in ti & rr at db.control.StartRead))
     & ((EXISTS rw: db.control.ReqWrite) (rw in tj & rw at db.control.StartWrite)) )
     -> [] ( ((EXISTS sw: db.control.StartWrite) (sw in tj & occurred(sw)))
             -> ((EXISTS sr: db.control.StartRead) (sr in ti & occurred(sr))) )
`

// ProblemSpec builds the Section 8 problem specification for the named
// users. When withPriority is true, the readers-priority restriction is
// included (the paper's Reader's Priority version); the mutual-exclusion
// restriction is always included.
func ProblemSpec(users []string, withPriority bool) (*spec.Spec, error) {
	src := variableTypeSource + problemSource(users)
	s, err := gemlang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("rw: problem spec does not parse: %w", err)
	}
	wer, err := gemlang.ParseFormula(writersExcludeReadersSource)
	if err != nil {
		return nil, fmt.Errorf("rw: writers-exclude-readers formula: %w", err)
	}
	weww, err := gemlang.ParseFormula(writersExcludeWritersSource)
	if err != nil {
		return nil, fmt.Errorf("rw: writers-exclude-writers formula: %w", err)
	}
	// The paper's invariants hold at every history: wrap in □.
	s.AddRestriction("writers-exclude-readers", logic.Box{F: wer})
	s.AddRestriction("writers-exclude-writers", logic.Box{F: weww})
	if withPriority {
		rp, err := gemlang.ParseFormula(readersPrioritySource)
		if err != nil {
			return nil, fmt.Errorf("rw: readers-priority formula: %w", err)
		}
		s.AddRestriction("readers-priority", rp)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("rw: problem spec invalid: %w", err)
	}
	return s, nil
}

// Transaction describes one user operation for building problem-level
// computations.
type Transaction struct {
	User  string // user element name
	Write bool   // read or write
	Value int64
	// After, when >= 0, forces this transaction's Start to come after the
	// After-th transaction's End (index into the slice) — used to model
	// serialization decisions made by a solution.
	After int
}

// BuildComputation constructs a problem-level computation realizing the
// given transactions, serialized in slice order at the control element
// (the GEM events of Section 8, fully chained, with πRW threads applied).
// It is used to exercise the problem spec directly (experiment E3).
func BuildComputation(s *spec.Spec, txs []Transaction) (*core.Computation, error) {
	b := core.NewBuilder()
	value := int64(0) // current database value
	for _, tx := range txs {
		user := tx.User
		if tx.Write {
			w := b.Event(user, "Write", core.Params{"info": core.Int(tx.Value)})
			rq := b.Event("db.control", "ReqWrite", core.Params{"info": core.Int(tx.Value)})
			st := b.Event("db.control", "StartWrite", core.Params{"info": core.Int(tx.Value)})
			as := b.Event("db.data", "Assign", core.Params{"newval": core.Int(tx.Value)})
			en := b.Event("db.control", "EndWrite", nil)
			fi := b.Event(user, "FinishWrite", nil)
			chain(b, w, rq, st, as, en, fi)
			value = tx.Value
		} else {
			r := b.Event(user, "Read", nil)
			rq := b.Event("db.control", "ReqRead", nil)
			st := b.Event("db.control", "StartRead", nil)
			gv := b.Event("db.data", "Getval", core.Params{"oldval": core.Int(value)})
			en := b.Event("db.control", "EndRead", core.Params{"info": core.Int(value)})
			fi := b.Event(user, "FinishRead", core.Params{"info": core.Int(value)})
			chain(b, r, rq, st, gv, en, fi)
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	thread.Apply(c, s.Threads()...)
	return c, nil
}

func chain(b *core.Builder, ids ...core.EventID) {
	for i := 1; i < len(ids); i++ {
		b.Enable(ids[i-1], ids[i])
	}
}
