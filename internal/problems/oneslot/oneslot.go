// Package oneslot implements the paper's One-Slot Buffer problem: a
// buffer holding at most one item, deposits and fetches strictly
// alternating, each fetch yielding the item of the immediately preceding
// deposit. It is the capacity-1 case of the bounded buffer; this package
// states the problem the way the paper's catalogue does — as an
// alternation discipline — and proves the two formulations equivalent on
// its computations, reusing the bounded-buffer solutions and
// correspondences for the sat checks.
package oneslot

import (
	"gem/internal/ada"
	"gem/internal/core"
	"gem/internal/csp"
	"gem/internal/logic"
	"gem/internal/monitor"
	"gem/internal/problems/boundedbuf"
	"gem/internal/spec"
	"gem/internal/verify"
)

// Workload configures a one-slot scenario.
type Workload struct {
	Producers        int
	Consumers        int
	ItemsPerProducer int
}

func (w Workload) buffered() boundedbuf.Workload {
	return boundedbuf.Workload{
		Producers:        w.Producers,
		Consumers:        w.Consumers,
		ItemsPerProducer: w.ItemsPerProducer,
		Capacity:         1,
	}
}

// ProblemSpec builds the One-Slot Buffer specification: the bounded
// buffer spec at capacity 1 with the explicit alternation restriction
// added — between any two deposits there is a fetch, and every fetch is
// preceded by more deposits than fetches (which at capacity one forces
// strict D F D F … alternation in the element order).
func ProblemSpec(w Workload) (*spec.Spec, error) {
	s, err := boundedbuf.ProblemSpec(w.buffered())
	if err != nil {
		return nil, err
	}
	s.Name = "OneSlotBuffer"
	s.AddRestriction("alternation", Alternation())
	return s, nil
}

// Alternation builds the explicit alternation restriction over the
// buffer element: any two distinct deposits have a fetch between them in
// the element order, and any two distinct fetches a deposit.
func Alternation() logic.Formula {
	dep := core.Ref(boundedbuf.BufferElement, "Deposit")
	fet := core.Ref(boundedbuf.BufferElement, "Fetch")
	between := func(outer, inner core.ClassRef) logic.Formula {
		return logic.ForAll{Var: "_a", Ref: outer,
			Body: logic.ForAll{Var: "_b", Ref: outer,
				Body: logic.Implies{
					If: logic.ElemOrdered{X: "_a", Y: "_b"},
					Then: logic.Exists{Var: "_m", Ref: inner,
						Body: logic.And{
							logic.ElemOrdered{X: "_a", Y: "_m"},
							logic.ElemOrdered{X: "_m", Y: "_b"},
						},
					},
				},
			},
		}
	}
	return logic.And{between(dep, fet), between(fet, dep)}
}

// NewMonitorProgram builds the monitor one-slot buffer program.
func NewMonitorProgram(w Workload) *monitor.Program {
	return boundedbuf.NewMonitorProgram(w.buffered())
}

// NewCSPProgram builds the CSP one-slot buffer program.
func NewCSPProgram(w Workload) *csp.Program {
	return boundedbuf.NewCSPProgram(w.buffered())
}

// NewAdaProgram builds the ADA one-slot buffer program.
func NewAdaProgram(w Workload) *ada.Program {
	return boundedbuf.NewAdaProgram(w.buffered())
}

// MonitorCorrespondence maps the monitor solution to the problem.
func MonitorCorrespondence() verify.Correspondence {
	return boundedbuf.MonitorCorrespondence(1)
}

// CSPCorrespondence maps the CSP solution to the problem.
func CSPCorrespondence(w Workload) verify.Correspondence {
	return boundedbuf.CSPCorrespondence(w.buffered())
}

// AdaCorrespondence maps the ADA solution to the problem.
func AdaCorrespondence() verify.Correspondence {
	return boundedbuf.AdaCorrespondence()
}
