package oneslot

import (
	"testing"

	"gem/internal/ada"
	"gem/internal/core"
	"gem/internal/csp"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/monitor"
	"gem/internal/problems/boundedbuf"
	"gem/internal/verify"
)

func std() Workload { return Workload{Producers: 1, Consumers: 1, ItemsPerProducer: 2} }

func TestProblemSpecAlternation(t *testing.T) {
	s, err := ProblemSpec(std())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "OneSlotBuffer" {
		t.Errorf("name = %q", s.Name)
	}
	c, err := boundedbuf.BuildComputation(s, std().buffered())
	if err != nil {
		t.Fatal(err)
	}
	res := legal.Check(s, c, legal.Options{})
	if !res.Legal() {
		t.Fatalf("alternating computation must be legal: %v", res.Error())
	}
}

func TestAlternationRefutesDoubleDeposit(t *testing.T) {
	s, err := ProblemSpec(Workload{Producers: 2, Consumers: 1, ItemsPerProducer: 1})
	if err != nil {
		t.Fatal(err)
	}
	// D D F F at the buffer element: violates alternation (and capacity).
	b := core.NewBuilder()
	for i := 1; i <= 2; i++ {
		p := b.Event(boundedbuf.ProducerName(i), "Produce", core.Params{"item": core.Int(boundedbuf.ItemValue(i, 1))})
		d := b.Event(boundedbuf.BufferElement, "Deposit", core.Params{"item": core.Int(boundedbuf.ItemValue(i, 1))})
		b.Enable(p, d)
	}
	for i := 1; i <= 2; i++ {
		f := b.Event(boundedbuf.BufferElement, "Fetch", core.Params{"item": core.Int(boundedbuf.ItemValue(i, 1))})
		cons := b.Event(boundedbuf.ConsumerName(1), "Consume", core.Params{"item": core.Int(boundedbuf.ItemValue(i, 1))})
		b.Enable(f, cons)
	}
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := legal.Check(s, c, legal.Options{})
	if res.Legal() {
		t.Fatal("consecutive deposits must be illegal in the one-slot buffer")
	}
	names := map[string]bool{}
	for _, v := range res.Violations {
		names[v.Restriction] = true
	}
	if !names["alternation"] {
		t.Errorf("want alternation violation, got %v", res.Violations)
	}
	if !names["capacity"] {
		t.Errorf("capacity (the equivalent formulation) must also fire, got %v", res.Violations)
	}
}

// TestSatAllLanguages runs the one-slot column of the E7 matrix.
func TestSatAllLanguages(t *testing.T) {
	w := std()
	problem, err := ProblemSpec(w)
	if err != nil {
		t.Fatal(err)
	}
	t.Run("monitor", func(t *testing.T) {
		runs, _, err := monitor.Explore(NewMonitorProgram(w), monitor.ExploreOptions{MaxRuns: 60000})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range runs {
			if r.Deadlock {
				t.Fatalf("run %d deadlocked", i)
			}
			if res := verify.Check(problem, r.Comp, MonitorCorrespondence(), logic.CheckOptions{}); !res.Sat() {
				t.Fatalf("run %d fails sat: %v", i, res.Error())
			}
		}
		t.Logf("verified %d monitor computations", len(runs))
	})
	t.Run("csp", func(t *testing.T) {
		runs, _, err := csp.Explore(NewCSPProgram(w), csp.ExploreOptions{MaxRuns: 60000})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range runs {
			if r.Deadlock {
				t.Fatalf("run %d deadlocked", i)
			}
			if res := verify.Check(problem, r.Comp, CSPCorrespondence(w), logic.CheckOptions{}); !res.Sat() {
				t.Fatalf("run %d fails sat: %v", i, res.Error())
			}
		}
		t.Logf("verified %d CSP computations", len(runs))
	})
	t.Run("ada", func(t *testing.T) {
		runs, _, err := ada.Explore(NewAdaProgram(w), ada.ExploreOptions{MaxRuns: 60000})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range runs {
			if r.Deadlock {
				t.Fatalf("run %d deadlocked", i)
			}
			if res := verify.Check(problem, r.Comp, AdaCorrespondence(), logic.CheckOptions{}); !res.Sat() {
				t.Fatalf("run %d fails sat: %v", i, res.Error())
			}
		}
		t.Logf("verified %d ADA computations", len(runs))
	})
}

// TestAlternationEquivalentToCapacityOne: on computations satisfying the
// structural chains, alternation and the 0..1 capacity bound accept and
// reject together (checked on both a conforming and a violating sample).
func TestAlternationEquivalentToCapacityOne(t *testing.T) {
	w := std()
	s, err := ProblemSpec(w)
	if err != nil {
		t.Fatal(err)
	}
	good, err := boundedbuf.BuildComputation(s, w.buffered())
	if err != nil {
		t.Fatal(err)
	}
	dep := core.Ref(boundedbuf.BufferElement, "Deposit")
	fet := core.Ref(boundedbuf.BufferElement, "Fetch")
	capacity := logic.Box{F: logic.CountDiff{A: dep, B: fet, Min: 0, Max: 1}}
	altOK := logic.Holds(Alternation(), good, logic.CheckOptions{}) == nil
	capOK := logic.Holds(capacity, good, logic.CheckOptions{}) == nil
	if !altOK || !capOK {
		t.Errorf("conforming computation: alternation=%v capacity=%v, want both true", altOK, capOK)
	}
}
