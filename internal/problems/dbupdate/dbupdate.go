// Package dbupdate implements the paper's first distributed application:
// an algorithm for performing updates to a replicated distributed
// database. Each site holds a replica; an update originates at one site,
// is stamped with a Lamport-clock version, applied locally, and
// broadcast; receiving sites apply it if and only if its version
// dominates the currently applied one (the last-writer-wins rule of
// early timestamp-based replication). Channels are GEM elements, so the
// computation records message sends and receipts with their causal
// enables.
//
// Verified properties (the paper reports lack of deadlock and functional
// correctness for this application):
//
//   - Termination: exploration never reaches a state with undelivered
//     messages and no transitions.
//   - Convergence (functional correctness): in every complete
//     computation, all replicas end at the value of the version-maximal
//     update.
//   - Message integrity: a receipt is enabled by exactly one send and
//     carries its payload (checked by the GEM spec).
package dbupdate

import (
	"fmt"
	"sort"
	"strings"

	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/spec"
)

// Update is a client update originating at a site.
type Update struct {
	Site  int // 0-based originating site
	Value int64
}

// Config describes a scenario.
type Config struct {
	Sites   int
	Updates []Update
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Sites < 1 {
		return fmt.Errorf("dbupdate: need at least one site")
	}
	if len(c.Updates) == 0 {
		return fmt.Errorf("dbupdate: need at least one update")
	}
	for _, u := range c.Updates {
		if u.Site < 0 || u.Site >= c.Sites {
			return fmt.Errorf("dbupdate: update site %d out of range", u.Site)
		}
	}
	return nil
}

// SiteElement names site i's replica element.
func SiteElement(i int) string { return fmt.Sprintf("site%d", i) }

// ChanElement names the channel element from site i to site j.
func ChanElement(i, j int) string { return fmt.Sprintf("chan.%d.%d", i, j) }

// Run is one complete execution.
type Run struct {
	Comp *core.Computation
	// Final per-site applied values.
	Finals []int64
	// Converged reports whether all sites ended equal.
	Converged bool
}

// version orders updates: Lamport timestamp, then site id.
type version struct {
	ts   int64
	site int
}

func (v version) less(o version) bool {
	if v.ts != o.ts {
		return v.ts < o.ts
	}
	return v.site < o.site
}

type message struct {
	from, to int
	ver      version
	val      int64
	sendEv   int
}

type state struct {
	clock   []int64
	applied []version
	value   []int64
	// pendingUpdates[i] = updates not yet originated at site i, in order.
	pendingUpdates [][]Update
	// inflight messages per channel (FIFO).
	inflight map[[2]int][]message

	events []evRec
	edges  [][2]int
	lastEv []int // per site
}

type evRec struct {
	elem   string
	class  string
	params core.Params
}

// ExploreOptions bounds the exploration.
type ExploreOptions struct {
	MaxRuns int // 0 = 100000
	// Mutation flags for failure injection:
	// DropLastMessage silently loses the last broadcast message.
	DropLastMessage bool
	// IgnoreVersions applies every received update unconditionally.
	IgnoreVersions bool
}

// Explore enumerates the algorithm's schedules (which update originates
// when, and message delivery order across channels) and returns the
// distinct complete computations.
func Explore(cfg Config, opts ExploreOptions) ([]Run, bool, error) {
	if err := cfg.Validate(); err != nil {
		return nil, false, err
	}
	if opts.MaxRuns == 0 {
		opts.MaxRuns = 100000
	}
	seen := make(map[string]bool)
	var runs []Run
	truncated := false

	init := &state{
		clock:          make([]int64, cfg.Sites),
		applied:        make([]version, cfg.Sites),
		value:          make([]int64, cfg.Sites),
		pendingUpdates: make([][]Update, cfg.Sites),
		inflight:       make(map[[2]int][]message),
		lastEv:         make([]int, cfg.Sites),
	}
	for i := range init.lastEv {
		init.lastEv[i] = -1
		init.applied[i] = version{ts: -1, site: -1}
	}
	for _, u := range cfg.Updates {
		init.pendingUpdates[u.Site] = append(init.pendingUpdates[u.Site], u)
	}

	totalMessages := 0 // counted per run implicitly; kept for docs

	var dfs func(st *state)
	dfs = func(st *state) {
		if truncated {
			return
		}
		type transition struct {
			kind string // "originate", "deliver"
			site int
			ch   [2]int
		}
		var ts []transition
		for i := 0; i < cfg.Sites; i++ {
			if len(st.pendingUpdates[i]) > 0 {
				ts = append(ts, transition{kind: "originate", site: i})
			}
		}
		var chans [][2]int
		for ch, q := range st.inflight {
			if len(q) > 0 {
				chans = append(chans, ch)
			}
		}
		sort.Slice(chans, func(a, b int) bool {
			if chans[a][0] != chans[b][0] {
				return chans[a][0] < chans[b][0]
			}
			return chans[a][1] < chans[b][1]
		})
		for _, ch := range chans {
			ts = append(ts, transition{kind: "deliver", ch: ch})
		}
		if len(ts) == 0 {
			key := canonicalKey(st)
			if seen[key] {
				return
			}
			seen[key] = true
			run, err := finish(cfg, st)
			if err != nil {
				return
			}
			runs = append(runs, run)
			if len(runs) >= opts.MaxRuns {
				truncated = true
			}
			return
		}
		for _, t := range ts {
			next := st.clone()
			if t.kind == "originate" {
				next.originate(cfg, t.site, opts)
			} else {
				next.deliver(t.ch, opts)
			}
			dfs(next)
			if truncated {
				return
			}
		}
	}
	dfs(init)
	_ = totalMessages
	return runs, truncated, nil
}

func (st *state) clone() *state {
	next := &state{
		clock:          append([]int64(nil), st.clock...),
		applied:        append([]version(nil), st.applied...),
		value:          append([]int64(nil), st.value...),
		pendingUpdates: make([][]Update, len(st.pendingUpdates)),
		inflight:       make(map[[2]int][]message, len(st.inflight)),
		events:         append([]evRec(nil), st.events...),
		edges:          append([][2]int(nil), st.edges...),
		lastEv:         append([]int(nil), st.lastEv...),
	}
	for i, q := range st.pendingUpdates {
		next.pendingUpdates[i] = append([]Update(nil), q...)
	}
	for ch, q := range st.inflight {
		next.inflight[ch] = append([]message(nil), q...)
	}
	return next
}

func (st *state) emit(site int, elem, class string, params core.Params, extra ...int) int {
	idx := len(st.events)
	st.events = append(st.events, evRec{elem: elem, class: class, params: params})
	if site >= 0 && st.lastEv[site] >= 0 {
		st.edges = append(st.edges, [2]int{st.lastEv[site], idx})
	}
	for _, e := range extra {
		if e >= 0 {
			st.edges = append(st.edges, [2]int{e, idx})
		}
	}
	if site >= 0 {
		st.lastEv[site] = idx
	}
	return idx
}

func (st *state) originate(cfg Config, site int, opts ExploreOptions) {
	u := st.pendingUpdates[site][0]
	st.pendingUpdates[site] = st.pendingUpdates[site][1:]
	st.clock[site]++
	ver := version{ts: st.clock[site], site: site}
	params := core.Params{
		"val": core.Int(u.Value), "ts": core.Int(ver.ts), "origin": core.Int(int64(site)),
	}
	upd := st.emit(site, SiteElement(site), "Update", params)
	st.apply(site, ver, u.Value, upd, opts)
	// Broadcast to every other site.
	for j := 0; j < len(st.clock); j++ {
		if j == site {
			continue
		}
		send := st.emit(site, ChanElement(site, j), "Send", params.Clone())
		msg := message{from: site, to: j, ver: ver, val: u.Value, sendEv: send}
		if opts.DropLastMessage && len(st.pendingUpdates[site]) == 0 && j == len(st.clock)-1 && site != len(st.clock)-1 {
			continue // lose the message: Send happened, Recv never will
		}
		st.inflight[[2]int{site, j}] = append(st.inflight[[2]int{site, j}], msg)
	}
}

func (st *state) deliver(ch [2]int, opts ExploreOptions) {
	q := st.inflight[ch]
	msg := q[0]
	st.inflight[ch] = q[1:]
	params := core.Params{
		"val": core.Int(msg.val), "ts": core.Int(msg.ver.ts), "origin": core.Int(int64(msg.ver.site)),
	}
	recv := st.emit(msg.to, ChanElement(msg.from, msg.to), "Recv", params, msg.sendEv)
	if msg.ver.ts > st.clock[msg.to] {
		st.clock[msg.to] = msg.ver.ts
	}
	if opts.IgnoreVersions || st.applied[msg.to].less(msg.ver) {
		st.apply(msg.to, msg.ver, msg.val, recv, opts)
	}
}

func (st *state) apply(site int, ver version, val int64, cause int, _ ExploreOptions) {
	st.applied[site] = ver
	st.value[site] = val
	st.emit(site, SiteElement(site), "Apply", core.Params{
		"val": core.Int(val), "ts": core.Int(ver.ts), "origin": core.Int(int64(ver.site)),
	}, cause)
}

func finish(cfg Config, st *state) (Run, error) {
	b := core.NewBuilder()
	ids := make([]core.EventID, len(st.events))
	for i, e := range st.events {
		ids[i] = b.Event(e.elem, e.class, e.params)
	}
	for _, e := range st.edges {
		b.Enable(ids[e[0]], ids[e[1]])
	}
	comp, err := b.Build()
	if err != nil {
		return Run{}, err
	}
	finals := append([]int64(nil), st.value...)
	converged := true
	for i := 1; i < len(finals); i++ {
		if finals[i] != finals[0] {
			converged = false
		}
	}
	return Run{Comp: comp, Finals: finals, Converged: converged}, nil
}

func canonicalKey(st *state) string {
	perElem := make(map[string]int)
	labels := make([]string, len(st.events))
	for i, e := range st.events {
		labels[i] = fmt.Sprintf("%s^%d:%s%s", e.elem, perElem[e.elem], e.class, e.params)
		perElem[e.elem]++
	}
	var sb strings.Builder
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	for _, l := range sorted {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	edgeLabels := make([]string, len(st.edges))
	for i, e := range st.edges {
		edgeLabels[i] = labels[e[0]] + ">" + labels[e[1]]
	}
	sort.Strings(edgeLabels)
	for _, l := range edgeLabels {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Spec builds the GEM specification of the algorithm: site elements
// (Update, Apply), channel elements (Send, Recv) grouped per link, with
// the message-integrity restrictions.
func Spec(cfg Config) *spec.Spec {
	s := spec.New("dbupdate")
	verParams := []spec.ParamDecl{
		{Name: "val", Type: "VALUE"}, {Name: "ts", Type: "INTEGER"}, {Name: "origin", Type: "INTEGER"},
	}
	for i := 0; i < cfg.Sites; i++ {
		s.AddElement(&spec.ElementDecl{
			Name: SiteElement(i),
			Events: []spec.EventClassDecl{
				{Name: "Update", Params: verParams},
				{Name: "Apply", Params: verParams},
			},
		})
	}
	for i := 0; i < cfg.Sites; i++ {
		for j := 0; j < cfg.Sites; j++ {
			if i == j {
				continue
			}
			elem := ChanElement(i, j)
			s.AddElement(&spec.ElementDecl{
				Name: elem,
				Events: []spec.EventClassDecl{
					{Name: "Send", Params: verParams},
					{Name: "Recv", Params: verParams},
				},
				Restrictions: []spec.Restriction{
					{
						Name: elem + ".send-recv-prereq",
						F:    logic.Prereq(core.Ref(elem, "Send"), core.Ref(elem, "Recv")),
					},
					{
						Name: elem + ".payload-integrity",
						F:    payloadIntegrity(elem),
					},
				},
			})
		}
	}
	return s
}

func payloadIntegrity(elem string) logic.Formula {
	return logic.ForAll{Var: "_s", Ref: core.Ref(elem, "Send"),
		Body: logic.ForAll{Var: "_r", Ref: core.Ref(elem, "Recv"),
			Body: logic.Implies{
				If: logic.Enables{X: "_s", Y: "_r"},
				Then: logic.And{
					logic.ParamCmp{X: "_s", P: "val", Op: logic.OpEq, Y: "_r", Q: "val"},
					logic.ParamCmp{X: "_s", P: "ts", Op: logic.OpEq, Y: "_r", Q: "ts"},
					logic.ParamCmp{X: "_s", P: "origin", Op: logic.OpEq, Y: "_r", Q: "origin"},
				},
			},
		},
	}
}

// ConvergenceFormula builds the functional-correctness restriction: at
// the full history, the last Apply at every pair of sites carries the
// same value. Check with logic.HoldsAtFull.
func ConvergenceFormula(cfg Config) logic.Formula {
	lastApply := func(v string, site int) logic.Formula {
		return logic.Not{F: logic.Exists{
			Var: v + "_later", Ref: core.Ref(SiteElement(site), "Apply"),
			Body: logic.ElemOrdered{X: v, Y: v + "_later"},
		}}
	}
	var out logic.And
	for i := 0; i < cfg.Sites; i++ {
		for j := i + 1; j < cfg.Sites; j++ {
			out = append(out, logic.ForAll{
				Var: "_ai", Ref: core.Ref(SiteElement(i), "Apply"),
				Body: logic.ForAll{
					Var: "_aj", Ref: core.Ref(SiteElement(j), "Apply"),
					Body: logic.Implies{
						If:   logic.And{lastApply("_ai", i), lastApply("_aj", j)},
						Then: logic.ParamCmp{X: "_ai", P: "val", Op: logic.OpEq, Y: "_aj", Q: "val"},
					},
				},
			})
		}
	}
	return out
}
