package dbupdate

import (
	"testing"

	"gem/internal/core"
	"gem/internal/legal"
	"gem/internal/logic"
)

func stdConfig() Config {
	return Config{Sites: 3, Updates: []Update{{Site: 0, Value: 7}, {Site: 1, Value: 9}}}
}

func TestConvergenceAcrossAllSchedules(t *testing.T) {
	cfg := stdConfig()
	runs, truncated, err := Explore(cfg, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if truncated || len(runs) == 0 {
		t.Fatalf("exploration: %d runs, truncated=%v", len(runs), truncated)
	}
	conv := ConvergenceFormula(cfg)
	for i, r := range runs {
		if !r.Converged {
			t.Fatalf("run %d diverged: finals=%v\n%s", i, r.Finals, r.Comp)
		}
		if cx := logic.HoldsAtFull(conv, r.Comp); cx != nil {
			t.Fatalf("run %d fails the convergence restriction: %v", i, cx.Error())
		}
	}
	t.Logf("all %d schedules converge", len(runs))
}

func TestRunsAreLegal(t *testing.T) {
	cfg := stdConfig()
	s := Spec(cfg)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	runs, _, err := Explore(cfg, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range runs {
		res := legal.Check(s, r.Comp, legal.Options{})
		if !res.Legal() {
			t.Fatalf("run %d illegal: %v", i, res.Error())
		}
	}
}

func TestAllUpdatesReachAllSites(t *testing.T) {
	cfg := stdConfig()
	runs, _, err := Explore(cfg, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		// Every site must apply or at least receive every remote update:
		// per channel, exactly one Send and one Recv per update.
		for i := 0; i < cfg.Sites; i++ {
			for j := 0; j < cfg.Sites; j++ {
				if i == j {
					continue
				}
				sends := r.Comp.EventsOf(core.Ref(ChanElement(i, j), "Send"))
				recvs := r.Comp.EventsOf(core.Ref(ChanElement(i, j), "Recv"))
				if len(sends) != len(recvs) {
					t.Fatalf("channel %d->%d: %d sends, %d recvs", i, j, len(sends), len(recvs))
				}
			}
		}
	}
}

func TestLostMessageCausesDivergence(t *testing.T) {
	cfg := stdConfig()
	runs, _, err := Explore(cfg, ExploreOptions{DropLastMessage: true})
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for _, r := range runs {
		// A site that never hears of the winning update either disagrees
		// on its last Apply (formula violation) or has applied nothing at
		// all; the Converged flag covers both.
		if !r.Converged {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("a lost broadcast must cause divergence on some schedule")
	}
}

func TestIgnoringVersionsCausesDivergence(t *testing.T) {
	// Without the version check, two concurrent updates may be applied in
	// different orders at different sites.
	cfg := Config{Sites: 2, Updates: []Update{{Site: 0, Value: 7}, {Site: 1, Value: 9}}}
	runs, _, err := Explore(cfg, ExploreOptions{IgnoreVersions: true})
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for _, r := range runs {
		if !r.Converged {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("blind application must diverge on some schedule")
	}
}

func TestWinnerIsVersionMaximal(t *testing.T) {
	// With site 1's clock racing ahead via receipt of site 0's update,
	// later updates get higher timestamps; the final value must carry the
	// maximal (ts, origin) version on every site's last Apply.
	cfg := stdConfig()
	runs, _, err := Explore(cfg, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		// Find the global maximal applied version across sites' Applies.
		var maxTS, maxOrigin, maxVal int64 = -1, -1, 0
		for i := 0; i < cfg.Sites; i++ {
			for _, id := range r.Comp.EventsOf(core.Ref(SiteElement(i), "Apply")) {
				e := r.Comp.Event(id)
				ts, origin := e.Params["ts"].I, e.Params["origin"].I
				if ts > maxTS || (ts == maxTS && origin > maxOrigin) {
					maxTS, maxOrigin, maxVal = ts, origin, e.Params["val"].I
				}
			}
		}
		for i, v := range r.Finals {
			if v != maxVal {
				t.Fatalf("site %d final %d, want version-maximal %d", i, v, maxVal)
			}
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, _, err := Explore(Config{}, ExploreOptions{}); err == nil {
		t.Error("empty config must be rejected")
	}
	if _, _, err := Explore(Config{Sites: 1}, ExploreOptions{}); err == nil {
		t.Error("no updates must be rejected")
	}
	if _, _, err := Explore(Config{Sites: 1, Updates: []Update{{Site: 5}}}, ExploreOptions{}); err == nil {
		t.Error("out-of-range site must be rejected")
	}
}

func TestSingleSiteTrivial(t *testing.T) {
	cfg := Config{Sites: 1, Updates: []Update{{Site: 0, Value: 3}}}
	runs, _, err := Explore(cfg, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].Finals[0] != 3 || !runs[0].Converged {
		t.Fatalf("single-site run wrong: %+v", runs)
	}
}
