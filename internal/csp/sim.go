package csp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"gem/internal/core"
)

// Run is one complete (or deadlocked) execution rendered as a GEM
// computation.
type Run struct {
	Comp      *core.Computation
	FinalVars map[string]map[string]int64 // per process
	Deadlock  bool
}

// ExploreOptions bounds the exploration.
type ExploreOptions struct {
	MaxRuns  int // cap on distinct runs (0 = 100000)
	MaxSteps int // per-run step cap (0 = 10000)
	// Ctx cancels the exploration: the DFS polls it at every node, and a
	// cancelled context aborts the walk with ctx.Err() after at most one
	// further run. nil means never cancelled.
	Ctx context.Context
}

// Explore exhaustively enumerates the program's executions and returns
// the distinct GEM computations (distinct as partial orders). The bool
// reports truncation by MaxRuns. It is the collect-all form of
// ExploreStream.
func Explore(p *Program, opts ExploreOptions) ([]Run, bool, error) {
	var runs []Run
	truncated, err := ExploreStream(p, opts, func(r Run) bool {
		runs = append(runs, r)
		return true
	})
	if err != nil {
		return nil, false, err
	}
	return runs, truncated, nil
}

// ExploreStream enumerates the distinct runs like Explore but hands each
// one to yield as soon as it completes, in deterministic DFS order, so
// checkers can consume runs while exploration is still in progress. If
// yield returns false the exploration stops early with truncated ==
// false and a nil error.
func ExploreStream(p *Program, opts ExploreOptions, yield func(Run) bool) (bool, error) {
	if opts.MaxRuns == 0 {
		opts.MaxRuns = 100000
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 10000
	}
	seen := make(map[string]bool)
	emitted := 0
	truncated := false
	stopped := false
	var exploreErr error
	var done <-chan struct{}
	if opts.Ctx != nil {
		done = opts.Ctx.Done()
	}

	var dfs func(m *machine)
	dfs = func(m *machine) {
		if truncated || stopped || exploreErr != nil {
			return
		}
		select {
		case <-done:
			exploreErr = opts.Ctx.Err()
			return
		default:
		}
		if m.steps > opts.MaxSteps {
			exploreErr = fmt.Errorf("csp: run exceeded %d steps", opts.MaxSteps)
			return
		}
		for {
			if m.steps > opts.MaxSteps {
				exploreErr = fmt.Errorf("csp: run exceeded %d steps", opts.MaxSteps)
				return
			}
			eager, _ := m.transitions()
			if eager == nil {
				break
			}
			if err := m.apply(*eager); err != nil {
				exploreErr = err
				return
			}
		}
		_, ts := m.transitions()
		if len(ts) == 0 {
			key := m.canonicalKey()
			if seen[key] {
				return
			}
			seen[key] = true
			run, err := m.finish()
			if err != nil {
				exploreErr = err
				return
			}
			emitted++
			if !yield(run) {
				stopped = true
				return
			}
			if emitted >= opts.MaxRuns {
				truncated = true
			}
			return
		}
		for _, t := range ts {
			next := m.clone()
			if err := next.apply(t); err != nil {
				exploreErr = err
				return
			}
			dfs(next)
			if truncated || stopped || exploreErr != nil {
				return
			}
		}
	}
	m, err := newMachine(p)
	if err != nil {
		return false, err
	}
	dfs(m)
	if exploreErr != nil {
		return false, exploreErr
	}
	return truncated, nil
}

type frame struct {
	block []Stmt
	idx   int
}

type procState struct {
	vars   map[string]int64
	frames []frame
	lastEv int
}

type evRec struct {
	elem   string
	class  string
	params core.Params
}

type machine struct {
	prog   *Program
	procs  []procState
	byName map[string]int

	events []evRec
	edges  [][2]int
	steps  int
	// ext holds the cells of external shared elements accessed via
	// Op{Element: …}.
	ext map[string]int64
}

func newMachine(p *Program) (*machine, error) {
	m := &machine{
		prog:   p,
		procs:  make([]procState, len(p.Processes)),
		byName: make(map[string]int, len(p.Processes)),
		ext:    make(map[string]int64),
	}
	for i, proc := range p.Processes {
		if _, dup := m.byName[proc.Name]; dup {
			return nil, fmt.Errorf("csp: duplicate process name %q", proc.Name)
		}
		m.byName[proc.Name] = i
		vars := make(map[string]int64, len(proc.Vars))
		for _, v := range proc.Vars {
			vars[v] = 0
		}
		m.procs[i] = procState{
			vars:   vars,
			frames: []frame{{block: proc.Body}},
			lastEv: -1,
		}
	}
	for _, proc := range p.Processes {
		if err := m.validateStmts(proc.Name, proc.Body); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// validateStmts checks that every communication names a declared process.
func (m *machine) validateStmts(procName string, body []Stmt) error {
	for _, st := range body {
		switch s := st.(type) {
		case Send:
			if _, ok := m.byName[s.To]; !ok {
				return fmt.Errorf("csp: process %s sends to unknown process %q", procName, s.To)
			}
		case Recv:
			if _, ok := m.byName[s.From]; !ok {
				return fmt.Errorf("csp: process %s receives from unknown process %q", procName, s.From)
			}
		case Alt:
			for _, br := range s.Branches {
				if br.Comm != nil {
					if err := m.validateStmts(procName, []Stmt{br.Comm}); err != nil {
						return err
					}
				}
				if err := m.validateStmts(procName, br.Body); err != nil {
					return err
				}
			}
		case Repeat:
			if err := m.validateStmts(procName, s.Body); err != nil {
				return err
			}
		}
	}
	return nil
}

func (m *machine) clone() *machine {
	next := &machine{
		prog:   m.prog,
		procs:  make([]procState, len(m.procs)),
		byName: m.byName,
		events: append([]evRec(nil), m.events...),
		edges:  append([][2]int(nil), m.edges...),
		steps:  m.steps,
		ext:    make(map[string]int64, len(m.ext)),
	}
	for k, v := range m.ext {
		next.ext[k] = v
	}
	for i, p := range m.procs {
		cp := procState{
			vars:   make(map[string]int64, len(p.vars)),
			frames: make([]frame, len(p.frames)),
			lastEv: p.lastEv,
		}
		for k, v := range p.vars {
			cp.vars[k] = v
		}
		copy(cp.frames, p.frames)
		next.procs[i] = cp
	}
	return next
}

func (m *machine) emit(proc int, elem, class string, params core.Params, extra ...int) int {
	idx := len(m.events)
	m.events = append(m.events, evRec{elem: elem, class: class, params: params})
	if proc >= 0 && m.procs[proc].lastEv >= 0 {
		m.edges = append(m.edges, [2]int{m.procs[proc].lastEv, idx})
	}
	for _, e := range extra {
		if e >= 0 {
			m.edges = append(m.edges, [2]int{e, idx})
		}
	}
	if proc >= 0 {
		m.procs[proc].lastEv = idx
	}
	return idx
}

// offer is a pending communication a process is ready to perform.
type offer struct {
	proc    int
	send    bool
	partner int
	value   int64  // for sends
	recvVar string // for receives
	// selecting this offer commits the process to this continuation:
	branchBody []Stmt // non-nil when the offer comes from an Alt branch
	isAlt      bool
}

// transition is either a local step or a matched communication.
type transition struct {
	kind string // "local", "comm", "altlocal"
	proc int
	out  offer // for comm: the sender side
	inp  offer // for comm: the receiver side
	// altlocal: selecting a pure-boolean Alt branch
	branchBody []Stmt
}

// currentStmt returns the process's next statement without consuming it.
func (m *machine) currentStmt(proc int) (Stmt, bool) {
	p := &m.procs[proc]
	for len(p.frames) > 0 {
		top := &p.frames[len(p.frames)-1]
		if top.idx < len(top.block) {
			return top.block[top.idx], true
		}
		p.frames = p.frames[:len(p.frames)-1]
	}
	return nil, false
}

// consumeStmt advances past the current statement.
func (m *machine) consumeStmt(proc int) {
	top := &m.procs[proc].frames[len(m.procs[proc].frames)-1]
	top.idx++
}

// transitions partitions schedulable steps for partial-order reduction:
// assignments, process-local ops, and Repeat unrolling commute with every
// other enabled transition (their events, if any, occur at the process's
// own element), so one of them may run eagerly without branching. The
// branching choices are communications, alternative selections, and
// operations at shared external elements.
func (m *machine) transitions() (eager *transition, branches []transition) {
	var ts []transition
	var offers []offer
	for i := range m.procs {
		st, ok := m.currentStmt(i)
		if !ok {
			continue
		}
		switch s := st.(type) {
		case Assign, Repeat:
			return &transition{kind: "local", proc: i}, nil
		case Op:
			if s.Element == "" {
				return &transition{kind: "local", proc: i}, nil
			}
			ts = append(ts, transition{kind: "local", proc: i})
		case Send:
			if q, ok := m.byName[s.To]; ok {
				offers = append(offers, offer{
					proc: i, send: true, partner: q,
					value: s.E.eval(m.procs[i].vars),
				})
			}
		case Recv:
			if q, ok := m.byName[s.From]; ok {
				offers = append(offers, offer{proc: i, send: false, partner: q, recvVar: s.Var})
			}
		case Alt:
			for _, br := range s.Branches {
				if br.Guard != nil && br.Guard.eval(m.procs[i].vars) == 0 {
					continue
				}
				switch comm := br.Comm.(type) {
				case nil:
					ts = append(ts, transition{kind: "altlocal", proc: i, branchBody: br.Body})
				case Send:
					if q, ok := m.byName[comm.To]; ok {
						offers = append(offers, offer{
							proc: i, send: true, partner: q,
							value:      comm.E.eval(m.procs[i].vars),
							branchBody: br.Body, isAlt: true,
						})
					}
				case Recv:
					if q, ok := m.byName[comm.From]; ok {
						offers = append(offers, offer{
							proc: i, send: false, partner: q,
							recvVar:    comm.Var,
							branchBody: br.Body, isAlt: true,
						})
					}
				}
			}
		}
	}
	// Match complementary offers.
	for _, o1 := range offers {
		if !o1.send {
			continue
		}
		for _, o2 := range offers {
			if o2.send || o2.proc != o1.partner || o2.partner != o1.proc {
				continue
			}
			ts = append(ts, transition{kind: "comm", out: o1, inp: o2})
		}
	}
	return nil, ts
}

func (m *machine) apply(t transition) error {
	m.steps++
	switch t.kind {
	case "local":
		return m.stepLocal(t.proc)
	case "altlocal":
		m.consumeStmt(t.proc)
		p := &m.procs[t.proc]
		if len(t.branchBody) > 0 {
			p.frames = append(p.frames, frame{block: t.branchBody})
		}
		return nil
	case "comm":
		return m.stepComm(t.out, t.inp)
	default:
		return fmt.Errorf("csp: unknown transition %q", t.kind)
	}
}

func (m *machine) stepLocal(proc int) error {
	st, _ := m.currentStmt(proc)
	m.consumeStmt(proc)
	p := &m.procs[proc]
	switch s := st.(type) {
	case Assign:
		p.vars[s.Var] = s.E.eval(p.vars)
	case Op:
		params := make(core.Params, len(s.Params)+2)
		for k, e := range s.Params {
			params[k] = core.Int(e.eval(p.vars))
		}
		elem := m.prog.Processes[proc].Name
		if s.Element != "" {
			elem = s.Element
			params["proc"] = core.Str(m.prog.Processes[proc].Name)
			switch s.Class {
			case "Assign":
				if v, ok := params["newval"]; ok {
					m.ext[s.Element] = v.I
				}
			case "Getval":
				params["oldval"] = core.Int(m.ext[s.Element])
			}
		}
		m.emit(proc, elem, s.Class, params)
	case Repeat:
		for k := 0; k < s.N; k++ {
			p.frames = append(p.frames, frame{block: s.Body})
		}
	default:
		return fmt.Errorf("csp: statement %T is not a local step", st)
	}
	return nil
}

func (m *machine) stepComm(out, inp offer) error {
	sender, receiver := out.proc, inp.proc
	pName := m.prog.Processes[sender].Name
	qName := m.prog.Processes[receiver].Name

	m.consumeStmt(sender)
	m.consumeStmt(receiver)

	ident := func() core.Params {
		return core.Params{"v": core.Int(out.value), "proc": core.Str(pName), "partner": core.Str(qName)}
	}
	identR := func() core.Params {
		return core.Params{"v": core.Int(out.value), "proc": core.Str(qName), "partner": core.Str(pName)}
	}
	outReq := m.emit(sender, OutElement(pName, qName), "Req", ident())
	inpReq := m.emit(receiver, InpElement(qName, pName), "Req", identR())
	// Simultaneity: each End enabled by both requests.
	m.emit(sender, OutElement(pName, qName), "End", ident(), inpReq)
	m.emit(receiver, InpElement(qName, pName), "End", identR(), outReq)

	if inp.recvVar != "" {
		m.procs[receiver].vars[inp.recvVar] = out.value
	}
	if out.isAlt && len(out.branchBody) > 0 {
		m.procs[sender].frames = append(m.procs[sender].frames, frame{block: out.branchBody})
	}
	if inp.isAlt && len(inp.branchBody) > 0 {
		m.procs[receiver].frames = append(m.procs[receiver].frames, frame{block: inp.branchBody})
	}
	return nil
}

func (m *machine) finish() (Run, error) {
	deadlock := false
	finals := make(map[string]map[string]int64, len(m.procs))
	for i := range m.procs {
		if _, unfinished := m.currentStmt(i); unfinished {
			deadlock = true
		}
		vars := make(map[string]int64, len(m.procs[i].vars))
		for k, v := range m.procs[i].vars {
			vars[k] = v
		}
		finals[m.prog.Processes[i].Name] = vars
	}
	b := core.NewBuilder()
	ids := make([]core.EventID, len(m.events))
	for i, e := range m.events {
		ids[i] = b.Event(e.elem, e.class, e.params)
	}
	for _, e := range m.edges {
		b.Enable(ids[e[0]], ids[e[1]])
	}
	comp, err := b.Build()
	if err != nil {
		return Run{}, fmt.Errorf("csp: generated computation invalid: %w", err)
	}
	return Run{Comp: comp, FinalVars: finals, Deadlock: deadlock}, nil
}

func (m *machine) canonicalKey() string {
	perElem := make(map[string]int)
	labels := make([]string, len(m.events))
	for i, e := range m.events {
		labels[i] = fmt.Sprintf("%s^%d:%s%s", e.elem, perElem[e.elem], e.class, e.params)
		perElem[e.elem]++
	}
	var sb strings.Builder
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	for _, l := range sorted {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	edgeLabels := make([]string, len(m.edges))
	for i, e := range m.edges {
		edgeLabels[i] = labels[e[0]] + ">" + labels[e[1]]
	}
	sort.Strings(edgeLabels)
	for _, l := range edgeLabels {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}
