package csp

import (
	"testing"

	"gem/internal/core"
	"gem/internal/legal"
)

// pingProgram: P sends 42 to Q; Q receives and emits a Got event.
func pingProgram() *Program {
	return &Program{Processes: []Process{
		{Name: "P", Body: []Stmt{Send{To: "Q", E: IntLit(42)}}},
		{Name: "Q", Vars: []string{"x"}, Body: []Stmt{
			Recv{From: "P", Var: "x"},
			Op{Class: "Got", Params: map[string]Expr{"v": VarRef("x")}},
		}},
	}}
}

func TestPingCommunication(t *testing.T) {
	runs, truncated, err := Explore(pingProgram(), ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if truncated || len(runs) != 1 {
		t.Fatalf("got %d runs (truncated=%v), want 1", len(runs), truncated)
	}
	r := runs[0]
	if r.Deadlock {
		t.Fatal("ping must not deadlock")
	}
	if r.FinalVars["Q"]["x"] != 42 {
		t.Errorf("Q.x = %d, want 42", r.FinalVars["Q"]["x"])
	}
	c := r.Comp
	// 4 communication events + 1 local op.
	if c.NumEvents() != 5 {
		t.Fatalf("got %d events:\n%s", c.NumEvents(), c)
	}
	outReq := c.EventsOf(core.Ref(OutElement("P", "Q"), "Req"))
	inpReq := c.EventsOf(core.Ref(InpElement("Q", "P"), "Req"))
	outEnd := c.EventsOf(core.Ref(OutElement("P", "Q"), "End"))
	inpEnd := c.EventsOf(core.Ref(InpElement("Q", "P"), "End"))
	if len(outReq) != 1 || len(inpReq) != 1 || len(outEnd) != 1 || len(inpEnd) != 1 {
		t.Fatalf("communication events missing:\n%s", c)
	}
	// The paper's simultaneity: inp.req |> out.end <-> out.req |> inp.end.
	if !c.EnablesDirect(inpReq[0], outEnd[0]) || !c.EnablesDirect(outReq[0], inpEnd[0]) {
		t.Error("cross enables missing")
	}
	// Requests of the two processes are concurrent (no observable order).
	if !c.Concurrent(outReq[0], inpReq[0]) {
		t.Error("requests should be concurrent")
	}
	// The received value rides on inp.End.
	if got := c.Event(inpEnd[0]).Params["v"]; got != core.Int(42) {
		t.Errorf("inp.End v = %v", got)
	}
	got := c.EventsOf(core.Ref("Q", "Got"))
	if len(got) != 1 || c.Event(got[0]).Params["v"] != core.Int(42) {
		t.Errorf("Got event wrong:\n%s", c)
	}
}

// TestCSPSpecLegality checks generated computations against the CSP
// primitive spec (experiment E5, CSP leg).
func TestCSPSpecLegality(t *testing.T) {
	prog := pingProgram()
	s := Spec(prog)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		res := legal.Check(s, r.Comp, legal.Options{})
		if !res.Legal() {
			t.Fatalf("generated computation violates CSP spec: %v\n%s", res.Error(), r.Comp)
		}
	}
}

func TestDeadlockBothSend(t *testing.T) {
	prog := &Program{Processes: []Process{
		{Name: "P", Body: []Stmt{Send{To: "Q", E: IntLit(1)}}},
		{Name: "Q", Body: []Stmt{Send{To: "P", E: IntLit(2)}}},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || !runs[0].Deadlock {
		t.Fatalf("two senders must deadlock, got %+v", runs)
	}
}

func TestAltSelectsReadyBranch(t *testing.T) {
	// R alternates over inputs from P and Q; both offer. Two selection
	// orders exist; both complete. With Repeat(2), R consumes both.
	prog := &Program{Processes: []Process{
		{Name: "P", Body: []Stmt{Send{To: "R", E: IntLit(1)}}},
		{Name: "Q", Body: []Stmt{Send{To: "R", E: IntLit(2)}}},
		{Name: "R", Vars: []string{"x", "sum"}, Body: []Stmt{
			Repeat{N: 2, Body: []Stmt{
				Alt{Branches: []Branch{
					{Comm: Recv{From: "P", Var: "x"},
						Body: []Stmt{Assign{Var: "sum", E: Bin{Op: OpAdd, L: VarRef("sum"), R: VarRef("x")}}}},
					{Comm: Recv{From: "Q", Var: "x"},
						Body: []Stmt{Assign{Var: "sum", E: Bin{Op: OpAdd, L: VarRef("sum"), R: VarRef("x")}}}},
				}},
			}},
		}},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) == 0 {
		t.Fatal("no runs")
	}
	for _, r := range runs {
		if r.Deadlock {
			t.Error("alt program must not deadlock")
		}
		if r.FinalVars["R"]["sum"] != 3 {
			t.Errorf("R.sum = %d, want 3", r.FinalVars["R"]["sum"])
		}
	}
}

func TestAltBooleanGuards(t *testing.T) {
	prog := &Program{Processes: []Process{
		{Name: "P", Vars: []string{"x"}, Body: []Stmt{
			Assign{Var: "x", E: IntLit(5)},
			Alt{Branches: []Branch{
				{Guard: Bin{Op: OpGt, L: VarRef("x"), R: IntLit(3)},
					Body: []Stmt{Op{Class: "Big"}}},
				{Guard: Bin{Op: OpLe, L: VarRef("x"), R: IntLit(3)},
					Body: []Stmt{Op{Class: "Small"}}},
			}},
		}},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs", len(runs))
	}
	if len(runs[0].Comp.EventsOf(core.Ref("P", "Big"))) != 1 {
		t.Error("guarded branch Big must be taken")
	}
	if len(runs[0].Comp.EventsOf(core.Ref("P", "Small"))) != 0 {
		t.Error("false-guarded branch must not be taken")
	}
}

func TestAltAllGuardsFalseDeadlocks(t *testing.T) {
	prog := &Program{Processes: []Process{
		{Name: "P", Vars: []string{"x"}, Body: []Stmt{
			Alt{Branches: []Branch{
				{Guard: Bin{Op: OpGt, L: VarRef("x"), R: IntLit(0)}, Body: []Stmt{Op{Class: "Never"}}},
			}},
		}},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || !runs[0].Deadlock {
		t.Fatal("alt with no ready branch must deadlock")
	}
}

func TestRepeatUnrolls(t *testing.T) {
	prog := &Program{Processes: []Process{
		{Name: "P", Vars: []string{"i"}, Body: []Stmt{
			Repeat{N: 3, Body: []Stmt{
				Assign{Var: "i", E: Bin{Op: OpAdd, L: VarRef("i"), R: IntLit(1)}},
				Op{Class: "Tick", Params: map[string]Expr{"i": VarRef("i")}},
			}},
		}},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs", len(runs))
	}
	ticks := runs[0].Comp.EventsOf(core.Ref("P", "Tick"))
	if len(ticks) != 3 {
		t.Fatalf("got %d ticks, want 3", len(ticks))
	}
	if runs[0].FinalVars["P"]["i"] != 3 {
		t.Errorf("i = %d", runs[0].FinalVars["P"]["i"])
	}
	// Tick params must be 1, 2, 3 in element order.
	for k, id := range ticks {
		if got := runs[0].Comp.Event(id).Params["i"]; got != core.Int(int64(k+1)) {
			t.Errorf("tick %d param = %v", k, got)
		}
	}
}

func TestUnknownPartnerRejected(t *testing.T) {
	prog := &Program{Processes: []Process{
		{Name: "P", Body: []Stmt{Send{To: "Ghost", E: IntLit(1)}}},
	}}
	if _, _, err := Explore(prog, ExploreOptions{}); err == nil {
		t.Fatal("unknown partner must be rejected")
	}
	prog2 := &Program{Processes: []Process{
		{Name: "P", Body: []Stmt{Recv{From: "Ghost", Var: "x"}}},
	}}
	if _, _, err := Explore(prog2, ExploreOptions{}); err == nil {
		t.Fatal("unknown sender must be rejected")
	}
}

func TestDuplicateProcessNameRejected(t *testing.T) {
	prog := &Program{Processes: []Process{{Name: "P"}, {Name: "P"}}}
	if _, _, err := Explore(prog, ExploreOptions{}); err == nil {
		t.Fatal("duplicate names must be rejected")
	}
}

func TestValueCorruptionDetectedBySpec(t *testing.T) {
	// Hand-build a computation violating value transfer and check the
	// spec refutes it (failure injection for the CSP substrate).
	prog := pingProgram()
	s := Spec(prog)
	b := core.NewBuilder()
	or := b.Event(OutElement("P", "Q"), "Req", core.Params{"v": core.Int(42)})
	ir := b.Event(InpElement("Q", "P"), "Req", nil)
	oe := b.Event(OutElement("P", "Q"), "End", nil)
	ie := b.Event(InpElement("Q", "P"), "End", core.Params{"v": core.Int(7)}) // corrupted
	b.Enable(or, oe)
	b.Enable(ir, oe)
	b.Enable(or, ie)
	b.Enable(ir, ie)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := legal.Check(s, c, legal.Options{})
	if res.Legal() {
		t.Fatal("corrupted message value must be illegal")
	}
}

func TestMissingCrossEnableDetectedBySpec(t *testing.T) {
	prog := pingProgram()
	s := Spec(prog)
	b := core.NewBuilder()
	or := b.Event(OutElement("P", "Q"), "Req", core.Params{"v": core.Int(42)})
	ir := b.Event(InpElement("Q", "P"), "Req", nil)
	oe := b.Event(OutElement("P", "Q"), "End", nil)
	ie := b.Event(InpElement("Q", "P"), "End", core.Params{"v": core.Int(42)})
	b.Enable(or, oe) // missing ir |> oe: simultaneity broken
	b.Enable(or, ie)
	b.Enable(ir, ie)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := legal.Check(s, c, legal.Options{})
	if res.Legal() {
		t.Fatal("broken simultaneity must be illegal")
	}
}

func TestExprEvalAndErrors(t *testing.T) {
	vars := map[string]int64{"x": 4}
	if got := (Bin{Op: OpSub, L: VarRef("x"), R: IntLit(1)}).eval(vars); got != 3 {
		t.Errorf("eval = %d", got)
	}
	ops := []struct {
		op   BinOp
		want int64
	}{
		{OpEq, 0}, {OpNe, 1}, {OpLt, 1}, {OpLe, 1}, {OpGt, 0}, {OpGe, 0},
	}
	for _, tt := range ops {
		if got := (Bin{Op: tt.op, L: IntLit(1), R: IntLit(2)}).eval(vars); got != tt.want {
			t.Errorf("op %d = %d, want %d", tt.op, got, tt.want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("undefined variable should panic")
		}
	}()
	VarRef("ghost").eval(vars)
}

func TestExternalSharedElement(t *testing.T) {
	// Writer assigns an external cell; a message to the reader orders the
	// subsequent read after the write.
	prog := &Program{Processes: []Process{
		{Name: "W", Body: []Stmt{
			Op{Element: "shared", Class: "Assign", Params: map[string]Expr{"newval": IntLit(9)}},
			Send{To: "R", E: IntLit(1)},
		}},
		{Name: "R", Vars: []string{"x"}, Body: []Stmt{
			Recv{From: "W", Var: "x"},
			Op{Element: "shared", Class: "Getval"},
		}},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := Spec(prog)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Deadlock {
			t.Fatal("must complete")
		}
		res := legal.Check(s, r.Comp, legal.Options{})
		if !res.Legal() {
			t.Fatalf("external-element run illegal: %v", res.Error())
		}
		gets := r.Comp.EventsOf(core.Ref("shared", "Getval"))
		if got := r.Comp.Event(gets[0]).Params["oldval"]; got != core.Int(9) {
			t.Errorf("read %v, want 9", got)
		}
	}
}

func TestCSPExprStrings(t *testing.T) {
	if IntLit(3).String() != "3" || VarRef("v").String() != "v" {
		t.Error("expr String wrong")
	}
	if (Bin{Op: OpAdd, L: IntLit(1), R: IntLit(2)}).String() == "" {
		t.Error("Bin String empty")
	}
}
