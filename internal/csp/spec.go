package csp

import (
	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/spec"
)

// Spec builds the GEM specification of a CSP program: one element per
// process (local events), input/output elements per communicating pair,
// per-process groups overlapping with channel groups (the paper's Section
// 4 sketch of processes linked by a channel group), and the CSP
// primitive's restrictions:
//
//  1. Simultaneity of I/O exchange (the paper's restriction): each
//     out.End is enabled by exactly one inp.Req and vice versa, so
//     inp.req ⊳ out.end ⟺ out.req ⊳ inp.end.
//  2. Each End is the outcome of its own Req (same-element prerequisite).
//  3. Message-value transfer: if out.Req enables inp.End, their values
//     are equal.
func Spec(p *Program) *spec.Spec {
	s := spec.New("csp-program")
	pairs := communicationPairs(p)

	for _, proc := range p.Processes {
		s.AddElement(&spec.ElementDecl{Name: proc.Name, Events: opClasses(proc)})
	}

	procGroups := make(map[string][]string, len(p.Processes))
	for _, proc := range p.Processes {
		procGroups[proc.Name] = []string{proc.Name}
	}

	commParams := []spec.ParamDecl{
		{Name: "v", Type: "INTEGER"},
		{Name: "proc", Type: "NAME"},
		{Name: "partner", Type: "NAME"},
	}
	for _, pair := range pairs {
		sender, receiver := pair[0], pair[1]
		outElem := OutElement(sender, receiver)
		inpElem := InpElement(receiver, sender)
		s.AddElement(&spec.ElementDecl{
			Name: outElem,
			Events: []spec.EventClassDecl{
				{Name: "Req", Params: commParams},
				{Name: "End", Params: commParams},
			},
		})
		s.AddElement(&spec.ElementDecl{
			Name: inpElem,
			Events: []spec.EventClassDecl{
				{Name: "Req", Params: commParams},
				{Name: "End", Params: commParams},
			},
		})
		procGroups[sender] = append(procGroups[sender], outElem)
		procGroups[receiver] = append(procGroups[receiver], inpElem)

		// The channel group makes the two endpoint elements mutually
		// accessible, modelling the paper's "G3 as a message channel".
		chanGroup := &spec.GroupDecl{
			Name:    "chan." + sender + "." + receiver,
			Members: []string{outElem, inpElem},
		}
		outReq := core.Ref(outElem, "Req")
		outEnd := core.Ref(outElem, "End")
		inpReq := core.Ref(inpElem, "Req")
		inpEnd := core.Ref(inpElem, "End")
		chanGroup.Restrictions = []spec.Restriction{
			{Name: chanGroup.Name + ".simultaneity-out", F: logic.Prereq(inpReq, outEnd)},
			{Name: chanGroup.Name + ".simultaneity-inp", F: logic.Prereq(outReq, inpEnd)},
			{Name: chanGroup.Name + ".own-req-out", F: logic.Prereq(outReq, outEnd)},
			{Name: chanGroup.Name + ".own-req-inp", F: logic.Prereq(inpReq, inpEnd)},
			{Name: chanGroup.Name + ".value-transfer", F: valueTransfer(outReq, inpEnd)},
		}
		s.AddGroup(chanGroup)
	}

	// External shared elements join the proc group of every process that
	// accesses them (overlapping groups, as in the paper's Section 4
	// example), so a process's flow may pass through the shared element
	// and back into its own communication endpoints.
	for _, proc := range p.Processes {
		for _, elem := range externalElementsOf(proc.Body) {
			procGroups[proc.Name] = append(procGroups[proc.Name], elem)
		}
	}
	for name, members := range procGroups {
		s.AddGroup(&spec.GroupDecl{Name: "proc." + name, Members: members})
	}
	addExternalElements(s, p)
	return s
}

// externalElementsOf lists the distinct external elements a body touches.
func externalElementsOf(body []Stmt) []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case Op:
				if s.Element != "" && !seen[s.Element] {
					seen[s.Element] = true
					out = append(out, s.Element)
				}
			case Alt:
				for _, br := range s.Branches {
					walk(br.Body)
				}
			case Repeat:
				walk(s.Body)
			}
		}
	}
	walk(body)
	return out
}

// addExternalElements declares the shared elements accessed via
// Op{Element: …} with Variable-style classes, plus the reads-last-assign
// restriction when both Assign and Getval appear.
func addExternalElements(s *spec.Spec, p *Program) {
	classes := make(map[string]map[string]map[string]bool)
	var order []string
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			switch op := st.(type) {
			case Op:
				if op.Element == "" {
					continue
				}
				if classes[op.Element] == nil {
					classes[op.Element] = make(map[string]map[string]bool)
					order = append(order, op.Element)
				}
				if classes[op.Element][op.Class] == nil {
					classes[op.Element][op.Class] = make(map[string]bool)
				}
				for prm := range op.Params {
					classes[op.Element][op.Class][prm] = true
				}
				classes[op.Element][op.Class]["proc"] = true
				if op.Class == "Getval" {
					classes[op.Element][op.Class]["oldval"] = true
				}
			case Alt:
				for _, br := range op.Branches {
					walk(br.Body)
				}
			case Repeat:
				walk(op.Body)
			}
		}
	}
	for _, proc := range p.Processes {
		walk(proc.Body)
	}
	for _, elem := range order {
		decl := &spec.ElementDecl{Name: elem}
		var classNames []string
		for c := range classes[elem] {
			classNames = append(classNames, c)
		}
		sortStrings(classNames)
		for _, c := range classNames {
			var paramNames []string
			for prm := range classes[elem][c] {
				paramNames = append(paramNames, prm)
			}
			sortStrings(paramNames)
			ec := spec.EventClassDecl{Name: c}
			for _, prm := range paramNames {
				typ := "INTEGER"
				if prm == "proc" {
					typ = "NAME"
				}
				ec.Params = append(ec.Params, spec.ParamDecl{Name: prm, Type: typ})
			}
			decl.Events = append(decl.Events, ec)
		}
		if _, hasA := classes[elem]["Assign"]; hasA {
			if _, hasG := classes[elem]["Getval"]; hasG {
				decl.Restrictions = append(decl.Restrictions, spec.Restriction{
					Name: elem + ".reads-last-assign",
					F:    spec.ReadsLastAssign(elem),
				})
			}
		}
		s.AddElement(decl)
	}
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// valueTransfer: if an out.Req enables an inp.End, the transmitted values
// agree — the paper's send/receive parameter-equality restriction.
func valueTransfer(outReq, inpEnd core.ClassRef) logic.Formula {
	return logic.ForAll{
		Var: "_or", Ref: outReq,
		Body: logic.ForAll{
			Var: "_ie", Ref: inpEnd,
			Body: logic.Implies{
				If:   logic.Enables{X: "_or", Y: "_ie"},
				Then: logic.ParamCmp{X: "_or", P: "v", Op: logic.OpEq, Y: "_ie", Q: "v"},
			},
		},
	}
}

// communicationPairs returns the (sender, receiver) process-name pairs
// that appear in the program, in first-appearance order.
func communicationPairs(p *Program) [][2]string {
	var out [][2]string
	seen := make(map[[2]string]bool)
	add := func(sender, receiver string) {
		pair := [2]string{sender, receiver}
		if !seen[pair] {
			seen[pair] = true
			out = append(out, pair)
		}
	}
	var walk func(proc string, body []Stmt)
	walk = func(proc string, body []Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case Send:
				add(proc, s.To)
			case Recv:
				add(s.From, proc)
			case Alt:
				for _, br := range s.Branches {
					if br.Comm != nil {
						walk(proc, []Stmt{br.Comm})
					}
					walk(proc, br.Body)
				}
			case Repeat:
				walk(proc, s.Body)
			}
		}
	}
	for _, proc := range p.Processes {
		walk(proc.Name, proc.Body)
	}
	return out
}

// opClasses collects the local Op classes of a process.
func opClasses(proc Process) []spec.EventClassDecl {
	seen := make(map[string]map[string]bool)
	var order []string
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case Op:
				if s.Element != "" {
					continue // external ops are declared on their own elements
				}
				if seen[s.Class] == nil {
					seen[s.Class] = make(map[string]bool)
					order = append(order, s.Class)
				}
				for p := range s.Params {
					seen[s.Class][p] = true
				}
			case Alt:
				for _, br := range s.Branches {
					walk(br.Body)
				}
			case Repeat:
				walk(s.Body)
			}
		}
	}
	walk(proc.Body)
	var out []spec.EventClassDecl
	for _, class := range order {
		var names []string
		for p := range seen[class] {
			names = append(names, p)
		}
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
		var params []spec.ParamDecl
		for _, p := range names {
			params = append(params, spec.ParamDecl{Name: p, Type: "INTEGER"})
		}
		out = append(out, spec.EventClassDecl{Name: class, Params: params})
	}
	return out
}
