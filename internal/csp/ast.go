// Package csp implements Hoare's Communicating Sequential Processes as
// described by the paper's GEM treatment (Section 8.2): processes
// communicating by synchronous message exchange, with guarded
// alternatives. It provides a mini-language, an exhaustive-interleaving
// simulator emitting GEM computations, and the GEM specification of the
// CSP primitive, including the paper's simultaneity-of-I/O-exchange
// restriction.
//
// Event model (following the paper's input/output element sketch):
//
//	<P>.out.<Q>   Req(v), End      — P's output commands naming Q
//	<P>.inp.<Q>   Req, End(v)      — P's input commands naming Q
//	<P>           local Op events
//
// One communication P!v / Q?x emits four events: P.out.Q.Req(v) and
// Q.inp.P.Req (each enabled by its process's control flow), then
// P.out.Q.End and Q.inp.P.End(v), each enabled by BOTH requests — so
// inp.Req ⊳ out.End ⟺ out.Req ⊳ inp.End, the paper's simultaneity
// restriction, holds by construction and is checked by the spec.
package csp

import "fmt"

// Expr is an integer expression over process-local variables.
type Expr interface {
	eval(vars map[string]int64) int64
	String() string
}

// IntLit is an integer literal.
type IntLit int64

func (e IntLit) eval(map[string]int64) int64 { return int64(e) }
func (e IntLit) String() string              { return fmt.Sprintf("%d", int64(e)) }

// VarRef reads a process-local variable.
type VarRef string

func (e VarRef) eval(vars map[string]int64) int64 {
	v, ok := vars[string(e)]
	if !ok {
		panic(fmt.Sprintf("csp: undefined variable %q", string(e)))
	}
	return v
}
func (e VarRef) String() string { return string(e) }

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

func (e Bin) eval(vars map[string]int64) int64 {
	l, r := e.L.eval(vars), e.R.eval(vars)
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch e.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpEq:
		return b2i(l == r)
	case OpNe:
		return b2i(l != r)
	case OpLt:
		return b2i(l < r)
	case OpLe:
		return b2i(l <= r)
	case OpGt:
		return b2i(l > r)
	case OpGe:
		return b2i(l >= r)
	default:
		panic(fmt.Sprintf("csp: unknown operator %d", e.Op))
	}
}
func (e Bin) String() string { return fmt.Sprintf("(%s op%d %s)", e.L, e.Op, e.R) }

// Stmt is a process statement.
type Stmt interface{ cspStmt() }

// Send is the output command "To ! E".
type Send struct {
	To string
	E  Expr
}

// Recv is the input command "From ? Var".
type Recv struct {
	From string
	Var  string
}

// Assign updates a process-local variable (no event emitted; CSP local
// state is private).
type Assign struct {
	Var string
	E   Expr
}

// Op emits a local event of the given class, with integer parameters
// evaluated in the local state. With Element == "" the event occurs at
// the process element. With Element set it occurs at that external
// shared element, with shared-variable semantics for the Assign (stores
// "newval") and Getval (reports the cell as "oldval") classes — the data
// a CSP controller guards.
type Op struct {
	Class   string
	Params  map[string]Expr
	Element string
}

// Alt is the guarded alternative: exactly one branch with a true boolean
// guard and a ready communication is selected (nondeterministically).
type Alt struct {
	Branches []Branch
}

// Branch is one guarded command of an alternative. Guard may be nil
// (true); Comm may be a Send or Recv, or nil for a purely boolean guard.
type Branch struct {
	Guard Expr
	Comm  Stmt // Send or Recv, or nil
	Body  []Stmt
}

// Repeat unrolls its body N times (bounded loops keep exploration
// finite).
type Repeat struct {
	N    int
	Body []Stmt
}

func (Send) cspStmt()   {}
func (Recv) cspStmt()   {}
func (Assign) cspStmt() {}
func (Op) cspStmt()     {}
func (Alt) cspStmt()    {}
func (Repeat) cspStmt() {}

// Process is one sequential CSP process.
type Process struct {
	Name string
	Vars []string // local integer variables, zero-initialized
	Body []Stmt
}

// Program is a set of communicating processes.
type Program struct {
	Processes []Process
}

// OutElement names P's output element toward Q.
func OutElement(p, q string) string { return p + ".out." + q }

// InpElement names P's input element from Q.
func InpElement(p, q string) string { return p + ".inp." + q }
