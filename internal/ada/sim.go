package ada

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"gem/internal/core"
)

// Run is one complete (or deadlocked) execution rendered as a GEM
// computation.
type Run struct {
	Comp      *core.Computation
	FinalVars map[string]map[string]int64
	Deadlock  bool
}

// ExploreOptions bounds the exploration.
type ExploreOptions struct {
	MaxRuns  int // 0 = 100000
	MaxSteps int // 0 = 10000
	// Ctx cancels the exploration: the DFS polls it at every node, and a
	// cancelled context aborts the walk with ctx.Err() after at most one
	// further run. nil means never cancelled.
	Ctx context.Context
}

// Explore exhaustively enumerates interleavings and returns distinct GEM
// computations. The bool reports truncation by MaxRuns. It is the
// collect-all form of ExploreStream.
func Explore(p *Program, opts ExploreOptions) ([]Run, bool, error) {
	var runs []Run
	truncated, err := ExploreStream(p, opts, func(r Run) bool {
		runs = append(runs, r)
		return true
	})
	if err != nil {
		return nil, false, err
	}
	return runs, truncated, nil
}

// ExploreStream enumerates the distinct runs like Explore but hands each
// one to yield as soon as it completes, in deterministic DFS order, so
// checkers can consume runs while exploration is still in progress. If
// yield returns false the exploration stops early with truncated ==
// false and a nil error.
func ExploreStream(p *Program, opts ExploreOptions, yield func(Run) bool) (bool, error) {
	if opts.MaxRuns == 0 {
		opts.MaxRuns = 100000
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 10000
	}
	seen := make(map[string]bool)
	emitted := 0
	truncated := false
	stopped := false
	var exploreErr error
	var done <-chan struct{}
	if opts.Ctx != nil {
		done = opts.Ctx.Done()
	}

	var dfs func(m *machine)
	dfs = func(m *machine) {
		if truncated || stopped || exploreErr != nil {
			return
		}
		select {
		case <-done:
			exploreErr = opts.Ctx.Err()
			return
		default:
		}
		if m.steps > opts.MaxSteps {
			exploreErr = fmt.Errorf("ada: run exceeded %d steps", opts.MaxSteps)
			return
		}
		for {
			if m.steps > opts.MaxSteps {
				exploreErr = fmt.Errorf("ada: run exceeded %d steps", opts.MaxSteps)
				return
			}
			eager, _ := m.transitions()
			if eager == nil {
				break
			}
			if err := m.apply(*eager); err != nil {
				exploreErr = err
				return
			}
		}
		_, ts := m.transitions()
		if len(ts) == 0 {
			key := m.canonicalKey()
			if seen[key] {
				return
			}
			seen[key] = true
			run, err := m.finish()
			if err != nil {
				exploreErr = err
				return
			}
			emitted++
			if !yield(run) {
				stopped = true
				return
			}
			if emitted >= opts.MaxRuns {
				truncated = true
			}
			return
		}
		for _, t := range ts {
			next := m.clone()
			if err := next.apply(t); err != nil {
				exploreErr = err
				return
			}
			dfs(next)
			if truncated || stopped || exploreErr != nil {
				return
			}
		}
	}
	m, err := newMachine(p)
	if err != nil {
		return false, err
	}
	dfs(m)
	if exploreErr != nil {
		return false, exploreErr
	}
	return truncated, nil
}

type frame struct {
	block []Stmt
	idx   int
}

// endAccept is the internal sentinel closing a rendezvous.
type endAccept struct{}

func (endAccept) adaStmt() {}

// rendezvous tracks an in-progress accept.
type rendezvous struct {
	caller    int
	entry     string
	result    int64
	hasResult bool
}

type taskState struct {
	vars    map[string]int64
	args    map[string]int64 // innermost accept parameter binding
	frames  []frame
	rendezv []rendezvous
	blocked bool // waiting for a rendezvous to complete (caller side)
	lastEv  int
}

type caller struct {
	task   int
	arg    int64
	hasArg bool
	callEv int
}

type evRec struct {
	elem   string
	class  string
	params core.Params
}

type machine struct {
	prog   *Program
	tasks  []taskState
	byName map[string]int
	// queues[task][entry] = FIFO of callers
	queues []map[string][]caller

	events []evRec
	edges  [][2]int
	steps  int
	// ext holds the cells of external shared elements accessed via
	// Op{Element: …}.
	ext map[string]int64
}

func newMachine(p *Program) (*machine, error) {
	m := &machine{
		prog:   p,
		tasks:  make([]taskState, len(p.Tasks)),
		byName: make(map[string]int, len(p.Tasks)),
		queues: make([]map[string][]caller, len(p.Tasks)),
		ext:    make(map[string]int64),
	}
	for i, t := range p.Tasks {
		if _, dup := m.byName[t.Name]; dup {
			return nil, fmt.Errorf("ada: duplicate task name %q", t.Name)
		}
		m.byName[t.Name] = i
	}
	for i, t := range p.Tasks {
		vars := make(map[string]int64, len(t.Vars))
		for _, v := range t.Vars {
			vars[v] = 0
		}
		m.tasks[i] = taskState{
			vars:   vars,
			frames: []frame{{block: t.Body}},
			lastEv: -1,
		}
		m.queues[i] = make(map[string][]caller)
		if err := m.validate(t.Name, t.Body); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func (m *machine) validate(taskName string, body []Stmt) error {
	for _, st := range body {
		switch s := st.(type) {
		case EntryCall:
			ti, ok := m.byName[s.Task]
			if !ok {
				return fmt.Errorf("ada: task %s calls unknown task %q", taskName, s.Task)
			}
			if !hasEntry(m.prog.Tasks[ti], s.Entry) {
				return fmt.Errorf("ada: task %s calls unknown entry %s.%s", taskName, s.Task, s.Entry)
			}
		case Accept:
			if !hasEntry(m.prog.Tasks[m.byName[taskName]], s.Entry) {
				return fmt.Errorf("ada: task %s accepts undeclared entry %q", taskName, s.Entry)
			}
			if err := m.validate(taskName, s.Body); err != nil {
				return err
			}
		case Select:
			for _, alt := range s.Alts {
				if err := m.validate(taskName, []Stmt{alt.Accept}); err != nil {
					return err
				}
			}
			if err := m.validate(taskName, s.Else); err != nil {
				return err
			}
		case Repeat:
			if err := m.validate(taskName, s.Body); err != nil {
				return err
			}
		}
	}
	return nil
}

func hasEntry(t Task, entry string) bool {
	for _, e := range t.Entries {
		if e == entry {
			return true
		}
	}
	return false
}

func (m *machine) clone() *machine {
	next := &machine{
		prog:   m.prog,
		tasks:  make([]taskState, len(m.tasks)),
		byName: m.byName,
		queues: make([]map[string][]caller, len(m.queues)),
		events: append([]evRec(nil), m.events...),
		edges:  append([][2]int(nil), m.edges...),
		steps:  m.steps,
		ext:    make(map[string]int64, len(m.ext)),
	}
	for k, v := range m.ext {
		next.ext[k] = v
	}
	for i, t := range m.tasks {
		cp := taskState{
			vars:    make(map[string]int64, len(t.vars)),
			frames:  make([]frame, len(t.frames)),
			rendezv: append([]rendezvous(nil), t.rendezv...),
			blocked: t.blocked,
			lastEv:  t.lastEv,
		}
		for k, v := range t.vars {
			cp.vars[k] = v
		}
		if t.args != nil {
			cp.args = make(map[string]int64, len(t.args))
			for k, v := range t.args {
				cp.args[k] = v
			}
		}
		copy(cp.frames, t.frames)
		next.tasks[i] = cp
	}
	for i, q := range m.queues {
		nq := make(map[string][]caller, len(q))
		for e, cs := range q {
			nq[e] = append([]caller(nil), cs...)
		}
		next.queues[i] = nq
	}
	return next
}

func (m *machine) emit(task int, elem, class string, params core.Params, extra ...int) int {
	idx := len(m.events)
	m.events = append(m.events, evRec{elem: elem, class: class, params: params})
	if task >= 0 && m.tasks[task].lastEv >= 0 {
		m.edges = append(m.edges, [2]int{m.tasks[task].lastEv, idx})
	}
	for _, e := range extra {
		if e >= 0 {
			m.edges = append(m.edges, [2]int{e, idx})
		}
	}
	if task >= 0 {
		m.tasks[task].lastEv = idx
	}
	return idx
}

func (m *machine) currentStmt(task int) (Stmt, bool) {
	t := &m.tasks[task]
	for len(t.frames) > 0 {
		top := &t.frames[len(t.frames)-1]
		if top.idx < len(top.block) {
			return top.block[top.idx], true
		}
		t.frames = t.frames[:len(t.frames)-1]
	}
	return nil, false
}

func (m *machine) consumeStmt(task int) {
	top := &m.tasks[task].frames[len(m.tasks[task].frames)-1]
	top.idx++
}

type transition struct {
	kind   string // "step", "accept", "selectaccept", "selectelse"
	task   int
	accept Accept
}

// transitions partitions schedulable steps for partial-order reduction.
// Task-internal steps (assignments to own variables, local ops, replies,
// loop unrolling, rendezvous completion) commute with every other enabled
// transition, so one may run eagerly without branching. Entry calls and
// accepts branch: ADA entry queues are FIFO, so call arrival order is
// semantically significant, as are accept/select choices and operations
// at shared external elements.
func (m *machine) transitions() (eager *transition, branches []transition) {
	var ts []transition
	for i := range m.tasks {
		t := &m.tasks[i]
		if t.blocked {
			continue
		}
		st, ok := m.currentStmt(i)
		if !ok {
			continue
		}
		switch s := st.(type) {
		case Assign, Reply, Repeat, endAccept:
			return &transition{kind: "step", task: i}, nil
		case Op:
			if s.Element == "" {
				return &transition{kind: "step", task: i}, nil
			}
			ts = append(ts, transition{kind: "step", task: i})
		case EntryCall:
			ts = append(ts, transition{kind: "step", task: i})
		case Accept:
			if len(m.queues[i][s.Entry]) > 0 {
				ts = append(ts, transition{kind: "accept", task: i, accept: s})
			}
		case Select:
			env := &evalEnv{vars: t.vars, args: t.args}
			ready := false
			for _, alt := range s.Alts {
				if alt.Guard != nil && alt.Guard.eval(env) == 0 {
					continue
				}
				if len(m.queues[i][alt.Accept.Entry]) > 0 {
					ts = append(ts, transition{kind: "selectaccept", task: i, accept: alt.Accept})
					ready = true
				}
			}
			if !ready && s.Else != nil {
				ts = append(ts, transition{kind: "selectelse", task: i})
			}
		}
	}
	return nil, ts
}

func (m *machine) apply(t transition) error {
	m.steps++
	switch t.kind {
	case "accept", "selectaccept":
		return m.beginRendezvous(t.task, t.accept)
	case "selectelse":
		st, _ := m.currentStmt(t.task)
		sel := st.(Select)
		m.consumeStmt(t.task)
		if len(sel.Else) > 0 {
			m.tasks[t.task].frames = append(m.tasks[t.task].frames, frame{block: sel.Else})
		}
		return nil
	default:
		return m.step(t.task)
	}
}

func (m *machine) beginRendezvous(task int, acc Accept) error {
	m.consumeStmt(task)
	q := m.queues[task][acc.Entry]
	cl := q[0]
	m.queues[task][acc.Entry] = q[1:]

	t := &m.tasks[task]
	params := core.Params{"caller": core.Str(m.prog.Tasks[cl.task].Name)}
	if cl.hasArg {
		params["v"] = core.Int(cl.arg)
	}
	m.emit(task, EntryElement(m.prog.Tasks[task].Name, acc.Entry), "AcceptStart", params, cl.callEv)
	t.rendezv = append(t.rendezv, rendezvous{caller: cl.task, entry: acc.Entry})
	if acc.Param != "" {
		if t.args == nil {
			t.args = make(map[string]int64)
		}
		t.args[acc.Param] = cl.arg
	}
	body := append(append([]Stmt(nil), acc.Body...), endAccept{})
	t.frames = append(t.frames, frame{block: body})
	return nil
}

func (m *machine) step(task int) error {
	st, _ := m.currentStmt(task)
	m.consumeStmt(task)
	t := &m.tasks[task]
	env := &evalEnv{vars: t.vars, args: t.args}
	taskName := m.prog.Tasks[task].Name
	switch s := st.(type) {
	case Assign:
		t.vars[s.Var] = s.E.eval(env)
		m.emit(task, VarElement(taskName, s.Var), "Assign",
			core.Params{"newval": core.Int(t.vars[s.Var])})
	case Op:
		params := make(core.Params, len(s.Params)+2)
		for k, e := range s.Params {
			params[k] = core.Int(e.eval(env))
		}
		elem := taskName
		if s.Element != "" {
			elem = s.Element
			params["proc"] = core.Str(taskName)
			switch s.Class {
			case "Assign":
				if v, ok := params["newval"]; ok {
					m.ext[s.Element] = v.I
				}
			case "Getval":
				params["oldval"] = core.Int(m.ext[s.Element])
			}
		}
		m.emit(task, elem, s.Class, params)
	case Reply:
		if len(t.rendezv) == 0 {
			return fmt.Errorf("ada: Reply outside a rendezvous in task %s", taskName)
		}
		r := &t.rendezv[len(t.rendezv)-1]
		r.result = s.E.eval(env)
		r.hasResult = true
	case EntryCall:
		callee := m.byName[s.Task]
		params := core.Params{"task": core.Str(s.Task), "entry": core.Str(s.Entry)}
		cl := caller{task: task}
		if s.Arg != nil {
			cl.arg = s.Arg.eval(env)
			cl.hasArg = true
			params["v"] = core.Int(cl.arg)
		}
		cl.callEv = m.emit(task, taskName, "Call", params)
		m.queues[callee][s.Entry] = append(m.queues[callee][s.Entry], cl)
		t.blocked = true
	case Repeat:
		for k := 0; k < s.N; k++ {
			t.frames = append(t.frames, frame{block: s.Body})
		}
	case endAccept:
		r := t.rendezv[len(t.rendezv)-1]
		t.rendezv = t.rendezv[:len(t.rendezv)-1]
		endParams := core.Params{"caller": core.Str(m.prog.Tasks[r.caller].Name)}
		if r.hasResult {
			endParams["result"] = core.Int(r.result)
		}
		end := m.emit(task, EntryElement(taskName, r.entry), "AcceptEnd", endParams)
		retParams := core.Params{"entry": core.Str(r.entry)}
		if r.hasResult {
			retParams["result"] = core.Int(r.result)
		}
		m.emit(r.caller, m.prog.Tasks[r.caller].Name, "Return", retParams, end)
		m.tasks[r.caller].blocked = false
		if len(t.rendezv) == 0 {
			t.args = nil
		}
	default:
		return fmt.Errorf("ada: statement %T not supported as a step", st)
	}
	return nil
}

func (m *machine) finish() (Run, error) {
	deadlock := false
	finals := make(map[string]map[string]int64, len(m.tasks))
	for i := range m.tasks {
		_, unfinished := m.currentStmt(i)
		if unfinished || m.tasks[i].blocked {
			deadlock = true
		}
		vars := make(map[string]int64, len(m.tasks[i].vars))
		for k, v := range m.tasks[i].vars {
			vars[k] = v
		}
		finals[m.prog.Tasks[i].Name] = vars
	}
	b := core.NewBuilder()
	ids := make([]core.EventID, len(m.events))
	for i, e := range m.events {
		ids[i] = b.Event(e.elem, e.class, e.params)
	}
	for _, e := range m.edges {
		b.Enable(ids[e[0]], ids[e[1]])
	}
	comp, err := b.Build()
	if err != nil {
		return Run{}, fmt.Errorf("ada: generated computation invalid: %w", err)
	}
	return Run{Comp: comp, FinalVars: finals, Deadlock: deadlock}, nil
}

func (m *machine) canonicalKey() string {
	perElem := make(map[string]int)
	labels := make([]string, len(m.events))
	for i, e := range m.events {
		labels[i] = fmt.Sprintf("%s^%d:%s%s", e.elem, perElem[e.elem], e.class, e.params)
		perElem[e.elem]++
	}
	var sb strings.Builder
	sorted := append([]string(nil), labels...)
	sort.Strings(sorted)
	for _, l := range sorted {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	edgeLabels := make([]string, len(m.edges))
	for i, e := range m.edges {
		edgeLabels[i] = labels[e[0]] + ">" + labels[e[1]]
	}
	sort.Strings(edgeLabels)
	for _, l := range edgeLabels {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}
