package ada

import (
	"testing"

	"gem/internal/core"
	"gem/internal/legal"
)

// serverProgram: a server task accepting Put(v) and storing it; a client
// calling Put(42).
func serverProgram() *Program {
	return &Program{Tasks: []Task{
		{
			Name:    "server",
			Entries: []string{"Put"},
			Vars:    []string{"stored"},
			Body: []Stmt{
				Accept{Entry: "Put", Param: "v", Body: []Stmt{
					Assign{Var: "stored", E: VarRef("v")},
				}},
			},
		},
		{
			Name: "client",
			Body: []Stmt{
				EntryCall{Task: "server", Entry: "Put", Arg: IntLit(42)},
				Op{Class: "Done"},
			},
		},
	}}
}

func TestRendezvousBasics(t *testing.T) {
	runs, truncated, err := Explore(serverProgram(), ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if truncated || len(runs) != 1 {
		t.Fatalf("got %d runs (truncated=%v), want 1", len(runs), truncated)
	}
	r := runs[0]
	if r.Deadlock {
		t.Fatal("rendezvous must complete")
	}
	if r.FinalVars["server"]["stored"] != 42 {
		t.Errorf("stored = %d, want 42", r.FinalVars["server"]["stored"])
	}
	c := r.Comp
	call := c.EventsOf(core.Ref("client", "Call"))
	start := c.EventsOf(core.Ref(EntryElement("server", "Put"), "AcceptStart"))
	end := c.EventsOf(core.Ref(EntryElement("server", "Put"), "AcceptEnd"))
	ret := c.EventsOf(core.Ref("client", "Return"))
	done := c.EventsOf(core.Ref("client", "Done"))
	if len(call) != 1 || len(start) != 1 || len(end) != 1 || len(ret) != 1 || len(done) != 1 {
		t.Fatalf("events missing:\n%s", c)
	}
	// Extended rendezvous ordering: Call => AcceptStart => body =>
	// AcceptEnd => Return => Done.
	if !c.EnablesDirect(call[0], start[0]) {
		t.Error("Call must enable AcceptStart")
	}
	if !c.Temporal(start[0], end[0]) || !c.Temporal(end[0], ret[0]) || !c.Temporal(ret[0], done[0]) {
		t.Error("rendezvous ordering broken")
	}
	// Argument rides on both Call and AcceptStart.
	if c.Event(call[0]).Params["v"] != core.Int(42) || c.Event(start[0]).Params["v"] != core.Int(42) {
		t.Error("argument transfer broken")
	}
}

// TestAdaSpecLegality: generated computations satisfy the ADA primitive
// spec (experiment E5, ADA leg).
func TestAdaSpecLegality(t *testing.T) {
	prog := serverProgram()
	s := Spec(prog)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		res := legal.Check(s, r.Comp, legal.Options{})
		if !res.Legal() {
			t.Fatalf("generated computation violates ADA spec: %v\n%s", res.Error(), r.Comp)
		}
	}
}

func TestReplyCarriesResult(t *testing.T) {
	prog := &Program{Tasks: []Task{
		{
			Name:    "oracle",
			Entries: []string{"Ask"},
			Body: []Stmt{
				Accept{Entry: "Ask", Param: "q", Body: []Stmt{
					Reply{E: Bin{Op: OpAdd, L: VarRef("q"), R: IntLit(1)}},
				}},
			},
		},
		{
			Name: "asker",
			Body: []Stmt{EntryCall{Task: "oracle", Entry: "Ask", Arg: IntLit(6)}},
		},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ret := runs[0].Comp.EventsOf(core.Ref("asker", "Return"))
	if got := runs[0].Comp.Event(ret[0]).Params["result"]; got != core.Int(7) {
		t.Errorf("result = %v, want 7", got)
	}
}

func TestSelectTakesReadyAlternative(t *testing.T) {
	// Server selects between Get and Put; only a Put caller exists.
	prog := &Program{Tasks: []Task{
		{
			Name:    "server",
			Entries: []string{"Put", "Get"},
			Vars:    []string{"x"},
			Body: []Stmt{
				Select{Alts: []SelectAlt{
					{Accept: Accept{Entry: "Put", Param: "v", Body: []Stmt{Assign{Var: "x", E: VarRef("v")}}}},
					{Accept: Accept{Entry: "Get", Body: []Stmt{Reply{E: VarRef("x")}}}},
				}},
			},
		},
		{
			Name: "writer",
			Body: []Stmt{EntryCall{Task: "server", Entry: "Put", Arg: IntLit(9)}},
		},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 {
		t.Fatalf("got %d runs", len(runs))
	}
	if runs[0].Deadlock {
		t.Fatal("select must take the ready Put")
	}
	if runs[0].FinalVars["server"]["x"] != 9 {
		t.Errorf("x = %d", runs[0].FinalVars["server"]["x"])
	}
}

func TestSelectGuards(t *testing.T) {
	// Guard closes the Put alternative; only else is available.
	prog := &Program{Tasks: []Task{
		{
			Name:    "server",
			Entries: []string{"Put"},
			Vars:    []string{"full"},
			Body: []Stmt{
				Assign{Var: "full", E: IntLit(1)},
				Select{
					Alts: []SelectAlt{
						{Guard: Bin{Op: OpEq, L: VarRef("full"), R: IntLit(0)},
							Accept: Accept{Entry: "Put"}},
					},
					Else: []Stmt{Op{Class: "Refused"}},
				},
			},
		},
		{
			Name: "writer",
			Body: []Stmt{Op{Class: "Idle"}},
		},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if len(r.Comp.EventsOf(core.Ref("server", "Refused"))) != 1 {
			t.Error("closed guard must fall through to else")
		}
	}
}

func TestSelectElseOnlyWhenNothingReady(t *testing.T) {
	// A caller is queued before the select runs in some schedules; in
	// those, the accept must win over else.
	prog := &Program{Tasks: []Task{
		{
			Name:    "server",
			Entries: []string{"Ping"},
			Body: []Stmt{
				Op{Class: "Prep"},
				Select{
					Alts: []SelectAlt{{Accept: Accept{Entry: "Ping"}}},
					Else: []Stmt{Op{Class: "NoCaller"}},
				},
			},
		},
		{
			Name: "caller",
			Body: []Stmt{EntryCall{Task: "server", Entry: "Ping"}},
		},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	accepted, refused := 0, 0
	for _, r := range runs {
		if len(r.Comp.EventsOf(core.Ref(EntryElement("server", "Ping"), "AcceptStart"))) == 1 {
			accepted++
		}
		if len(r.Comp.EventsOf(core.Ref("server", "NoCaller"))) == 1 {
			refused++
			if !r.Deadlock {
				t.Error("else-branch leaves the caller blocked forever: deadlock")
			}
		}
	}
	if accepted == 0 || refused == 0 {
		t.Errorf("expected both outcomes, got accepted=%d refused=%d", accepted, refused)
	}
}

func TestTwoCallersFIFO(t *testing.T) {
	prog := &Program{Tasks: []Task{
		{
			Name:    "server",
			Entries: []string{"Put"},
			Vars:    []string{"last"},
			Body: []Stmt{
				Repeat{N: 2, Body: []Stmt{
					Accept{Entry: "Put", Param: "v", Body: []Stmt{Assign{Var: "last", E: VarRef("v")}}},
				}},
			},
		},
		{Name: "a", Body: []Stmt{EntryCall{Task: "server", Entry: "Put", Arg: IntLit(1)}}},
		{Name: "b", Body: []Stmt{EntryCall{Task: "server", Entry: "Put", Arg: IntLit(2)}}},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Deadlock {
			t.Error("both callers must be served")
		}
		if last := r.FinalVars["server"]["last"]; last != 1 && last != 2 {
			t.Errorf("last = %d", last)
		}
	}
	if len(runs) != 2 {
		t.Errorf("got %d runs, want 2 (two arrival orders)", len(runs))
	}
}

func TestDeadlockNoAccept(t *testing.T) {
	prog := &Program{Tasks: []Task{
		{Name: "server", Entries: []string{"Ping"}, Body: []Stmt{Op{Class: "Busy"}}},
		{Name: "caller", Body: []Stmt{EntryCall{Task: "server", Entry: "Ping"}}},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || !runs[0].Deadlock {
		t.Fatal("unserved caller must deadlock")
	}
}

func TestValidationErrors(t *testing.T) {
	bad1 := &Program{Tasks: []Task{
		{Name: "a", Body: []Stmt{EntryCall{Task: "ghost", Entry: "X"}}},
	}}
	if _, _, err := Explore(bad1, ExploreOptions{}); err == nil {
		t.Error("unknown task must be rejected")
	}
	bad2 := &Program{Tasks: []Task{
		{Name: "a", Entries: []string{"X"}, Body: nil},
		{Name: "b", Body: []Stmt{EntryCall{Task: "a", Entry: "Y"}}},
	}}
	if _, _, err := Explore(bad2, ExploreOptions{}); err == nil {
		t.Error("unknown entry must be rejected")
	}
	bad3 := &Program{Tasks: []Task{
		{Name: "a", Body: []Stmt{Accept{Entry: "Undeclared"}}},
	}}
	if _, _, err := Explore(bad3, ExploreOptions{}); err == nil {
		t.Error("undeclared accept entry must be rejected")
	}
	bad4 := &Program{Tasks: []Task{{Name: "x"}, {Name: "x"}}}
	if _, _, err := Explore(bad4, ExploreOptions{}); err == nil {
		t.Error("duplicate task names must be rejected")
	}
	bad5 := &Program{Tasks: []Task{
		{Name: "a", Body: []Stmt{Reply{E: IntLit(1)}}},
	}}
	if _, _, err := Explore(bad5, ExploreOptions{}); err == nil {
		t.Error("Reply outside rendezvous must be rejected")
	}
}

func TestNestedAccept(t *testing.T) {
	// Rendezvous within rendezvous: server accepts Outer, and during it
	// accepts Inner from a second client.
	prog := &Program{Tasks: []Task{
		{
			Name:    "server",
			Entries: []string{"Outer", "Inner"},
			Vars:    []string{"sum"},
			Body: []Stmt{
				Accept{Entry: "Outer", Param: "a", Body: []Stmt{
					Accept{Entry: "Inner", Param: "b", Body: []Stmt{
						Assign{Var: "sum", E: Bin{Op: OpAdd, L: VarRef("a"), R: VarRef("b")}},
					}},
				}},
			},
		},
		{Name: "c1", Body: []Stmt{EntryCall{Task: "server", Entry: "Outer", Arg: IntLit(10)}}},
		{Name: "c2", Body: []Stmt{EntryCall{Task: "server", Entry: "Inner", Arg: IntLit(5)}}},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Deadlock {
			t.Fatal("nested rendezvous must complete")
		}
		if r.FinalVars["server"]["sum"] != 15 {
			t.Errorf("sum = %d, want 15", r.FinalVars["server"]["sum"])
		}
	}
}

func TestSpecRefutesForgedAccept(t *testing.T) {
	// An AcceptStart with no enabling Call violates the prerequisite.
	prog := serverProgram()
	s := Spec(prog)
	b := core.NewBuilder()
	b.Event(EntryElement("server", "Put"), "AcceptStart", core.Params{"v": core.Int(1)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := legal.Check(s, c, legal.Options{})
	if res.Legal() {
		t.Fatal("AcceptStart without a Call must be illegal")
	}
}

func TestSpecRefutesCorruptedArgument(t *testing.T) {
	prog := serverProgram()
	s := Spec(prog)
	b := core.NewBuilder()
	call := b.Event("client", "Call", core.Params{
		"task": core.Str("server"), "entry": core.Str("Put"), "v": core.Int(42),
	})
	acc := b.Event(EntryElement("server", "Put"), "AcceptStart", core.Params{"v": core.Int(7)})
	b.Enable(call, acc)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	res := legal.Check(s, c, legal.Options{})
	if res.Legal() {
		t.Fatal("corrupted rendezvous argument must be illegal")
	}
}

func TestExternalSharedElement(t *testing.T) {
	// A writer task assigns an external cell; a reader task reads it
	// after a rendezvous that orders the two accesses.
	prog := &Program{Tasks: []Task{
		{
			Name:    "writer",
			Entries: []string{"Done"},
			Body: []Stmt{
				Op{Element: "shared", Class: "Assign", Params: map[string]Expr{"newval": IntLit(5)}},
				Accept{Entry: "Done"},
			},
		},
		{
			Name: "reader",
			Body: []Stmt{
				EntryCall{Task: "writer", Entry: "Done"},
				Op{Element: "shared", Class: "Getval"},
			},
		},
	}}
	runs, _, err := Explore(prog, ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := Spec(prog)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.Deadlock {
			t.Fatal("must complete")
		}
		res := legal.Check(s, r.Comp, legal.Options{})
		if !res.Legal() {
			t.Fatalf("external-element run illegal: %v", res.Error())
		}
		gets := r.Comp.EventsOf(core.Ref("shared", "Getval"))
		if len(gets) != 1 {
			t.Fatalf("gets = %d", len(gets))
		}
		if got := r.Comp.Event(gets[0]).Params["oldval"]; got != core.Int(5) {
			t.Errorf("read %v, want 5 (ordered by the rendezvous)", got)
		}
	}
}

func TestAdaExprCoverage(t *testing.T) {
	env := &evalEnv{vars: map[string]int64{"x": 3}, args: map[string]int64{"y": 1}}
	tests := []struct {
		e    Expr
		want int64
	}{
		{Bin{Op: OpAdd, L: VarRef("x"), R: VarRef("y")}, 4},
		{Bin{Op: OpSub, L: VarRef("x"), R: IntLit(1)}, 2},
		{Bin{Op: OpEq, L: IntLit(1), R: IntLit(1)}, 1},
		{Bin{Op: OpNe, L: IntLit(1), R: IntLit(1)}, 0},
		{Bin{Op: OpLt, L: IntLit(1), R: IntLit(2)}, 1},
		{Bin{Op: OpLe, L: IntLit(2), R: IntLit(2)}, 1},
		{Bin{Op: OpGt, L: IntLit(3), R: IntLit(2)}, 1},
		{Bin{Op: OpGe, L: IntLit(1), R: IntLit(2)}, 0},
	}
	for _, tt := range tests {
		if got := tt.e.eval(env); got != tt.want {
			t.Errorf("%s = %d, want %d", tt.e, got, tt.want)
		}
	}
	if IntLit(7).String() != "7" || VarRef("x").String() != "x" {
		t.Error("expr String wrong")
	}
	if (Bin{Op: OpAdd, L: IntLit(1), R: IntLit(2)}).String() == "" {
		t.Error("Bin String empty")
	}
	defer func() {
		if recover() == nil {
			t.Error("undefined name should panic")
		}
	}()
	VarRef("ghost").eval(env)
}
