package ada

import (
	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/spec"
)

// Spec builds the GEM specification of an ADA program: a group per task
// (task element, entry elements, variable elements) with entry
// AcceptStart as ports, plus the rendezvous restrictions:
//
//  1. Every AcceptStart is enabled by exactly one Call, and each Call
//     starts at most one rendezvous (prerequisite).
//  2. AcceptStart/AcceptEnd alternate at each entry element (rendezvous
//     intervals do not overlap per entry).
//  3. The caller's argument is transferred faithfully: if a Call enables
//     an AcceptStart and carries v, the AcceptStart carries the same v.
func Spec(p *Program) *spec.Spec {
	s := spec.New("ada-program")
	for _, t := range p.Tasks {
		classes := []spec.EventClassDecl{
			{Name: "Call", Params: []spec.ParamDecl{
				{Name: "task", Type: "NAME"}, {Name: "entry", Type: "NAME"}, {Name: "v", Type: "INTEGER"},
			}},
			{Name: "Return", Params: []spec.ParamDecl{
				{Name: "entry", Type: "NAME"}, {Name: "result", Type: "INTEGER"},
			}},
		}
		classes = append(classes, opClasses(t)...)
		s.AddElement(&spec.ElementDecl{Name: t.Name, Events: classes})

		// The task group encloses the task element, its entries, and its
		// variables. AcceptStart ports admit entry calls from outside;
		// the Return port lets a completing rendezvous in another task
		// resume this task.
		members := []string{t.Name}
		ports := []core.Port{{Element: t.Name, Class: "Return"}}
		for _, e := range t.Entries {
			elem := EntryElement(t.Name, e)
			decl := &spec.ElementDecl{
				Name: elem,
				Events: []spec.EventClassDecl{
					{Name: "AcceptStart", Params: []spec.ParamDecl{
						{Name: "v", Type: "INTEGER"}, {Name: "caller", Type: "NAME"},
					}},
					{Name: "AcceptEnd", Params: []spec.ParamDecl{
						{Name: "caller", Type: "NAME"}, {Name: "result", Type: "INTEGER"},
					}},
				},
				Restrictions: []spec.Restriction{
					{
						Name: elem + ".call-accept-prereq",
						F:    logic.Prereq(core.Ref("", "Call"), core.Ref(elem, "AcceptStart")),
					},
					{
						Name: elem + ".arg-transfer",
						F:    argTransfer(elem),
					},
				},
			}
			s.AddElement(decl)
			members = append(members, elem)
			ports = append(ports, core.Port{Element: elem, Class: "AcceptStart"})
		}
		for _, v := range t.Vars {
			s.AddElement(&spec.ElementDecl{
				Name: VarElement(t.Name, v),
				Events: []spec.EventClassDecl{
					{Name: "Assign", Params: []spec.ParamDecl{{Name: "newval", Type: "INTEGER"}}},
				},
			})
			members = append(members, VarElement(t.Name, v))
		}
		// External shared elements the task touches join its group
		// (overlapping groups), so the task's flow may pass through them
		// and back into its entries and variables.
		members = append(members, externalElementsOf(t.Body)...)
		s.AddGroup(&spec.GroupDecl{
			Name:    "task." + t.Name,
			Members: members,
			Ports:   ports,
		})
	}
	addExternalElements(s, p)
	return s
}

// externalElementsOf lists the distinct external elements a body touches.
func externalElementsOf(body []Stmt) []string {
	seen := make(map[string]bool)
	var out []string
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case Op:
				if s.Element != "" && !seen[s.Element] {
					seen[s.Element] = true
					out = append(out, s.Element)
				}
			case Accept:
				walk(s.Body)
			case Select:
				for _, alt := range s.Alts {
					walk(alt.Accept.Body)
				}
				walk(s.Else)
			case Repeat:
				walk(s.Body)
			}
		}
	}
	walk(body)
	return out
}

// addExternalElements declares the shared elements accessed via
// Op{Element: …} with Variable-style classes, plus the reads-last-assign
// restriction when both Assign and Getval appear.
func addExternalElements(s *spec.Spec, p *Program) {
	classes := make(map[string]map[string]map[string]bool)
	var order []string
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			switch op := st.(type) {
			case Op:
				if op.Element == "" {
					continue
				}
				if classes[op.Element] == nil {
					classes[op.Element] = make(map[string]map[string]bool)
					order = append(order, op.Element)
				}
				if classes[op.Element][op.Class] == nil {
					classes[op.Element][op.Class] = make(map[string]bool)
				}
				for prm := range op.Params {
					classes[op.Element][op.Class][prm] = true
				}
				classes[op.Element][op.Class]["proc"] = true
				if op.Class == "Getval" {
					classes[op.Element][op.Class]["oldval"] = true
				}
			case Accept:
				walk(op.Body)
			case Select:
				for _, alt := range op.Alts {
					walk(alt.Accept.Body)
				}
				walk(op.Else)
			case Repeat:
				walk(op.Body)
			}
		}
	}
	for _, t := range p.Tasks {
		walk(t.Body)
	}
	for _, elem := range order {
		decl := &spec.ElementDecl{Name: elem}
		var classNames []string
		for c := range classes[elem] {
			classNames = append(classNames, c)
		}
		sortStrings(classNames)
		for _, c := range classNames {
			var paramNames []string
			for prm := range classes[elem][c] {
				paramNames = append(paramNames, prm)
			}
			sortStrings(paramNames)
			ec := spec.EventClassDecl{Name: c}
			for _, prm := range paramNames {
				typ := "INTEGER"
				if prm == "proc" {
					typ = "NAME"
				}
				ec.Params = append(ec.Params, spec.ParamDecl{Name: prm, Type: typ})
			}
			decl.Events = append(decl.Events, ec)
		}
		if _, hasA := classes[elem]["Assign"]; hasA {
			if _, hasG := classes[elem]["Getval"]; hasG {
				decl.Restrictions = append(decl.Restrictions, spec.Restriction{
					Name: elem + ".reads-last-assign",
					F:    spec.ReadsLastAssign(elem),
				})
			}
		}
		s.AddElement(decl)
	}
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// argTransfer: a Call carrying v enabling an AcceptStart implies the
// AcceptStart carries the same v (parameterless calls are exempt: the
// comparison is guarded on the Call having a v).
func argTransfer(entryElem string) logic.Formula {
	return logic.ForAll{
		Var: "_call", Ref: core.Ref("", "Call"),
		Body: logic.ForAll{
			Var: "_acc", Ref: core.Ref(entryElem, "AcceptStart"),
			Body: logic.Implies{
				If: logic.And{
					logic.Enables{X: "_call", Y: "_acc"},
					// Guard: the call carries an argument.
					paramPresent("_call", "v"),
				},
				Then: logic.ParamCmp{X: "_call", P: "v", Op: logic.OpEq, Y: "_acc", Q: "v"},
			},
		},
	}
}

// paramPresent tests parameter presence via self-equality (missing
// parameters fail every comparison, including with themselves).
func paramPresent(v, p string) logic.Formula {
	return logic.ParamCmp{X: v, P: p, Op: logic.OpEq, Y: v, Q: p}
}

func opClasses(t Task) []spec.EventClassDecl {
	seen := make(map[string]map[string]bool)
	var order []string
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, st := range body {
			switch s := st.(type) {
			case Op:
				if s.Element != "" {
					continue
				}
				if seen[s.Class] == nil {
					seen[s.Class] = make(map[string]bool)
					order = append(order, s.Class)
				}
				for p := range s.Params {
					seen[s.Class][p] = true
				}
			case Accept:
				walk(s.Body)
			case Select:
				for _, alt := range s.Alts {
					walk(alt.Accept.Body)
				}
				walk(s.Else)
			case Repeat:
				walk(s.Body)
			}
		}
	}
	walk(t.Body)
	var out []spec.EventClassDecl
	for _, class := range order {
		var names []string
		for p := range seen[class] {
			names = append(names, p)
		}
		for i := 1; i < len(names); i++ {
			for j := i; j > 0 && names[j] < names[j-1]; j-- {
				names[j], names[j-1] = names[j-1], names[j]
			}
		}
		var params []spec.ParamDecl
		for _, p := range names {
			params = append(params, spec.ParamDecl{Name: p, Type: "INTEGER"})
		}
		out = append(out, spec.EventClassDecl{Name: class, Params: params})
	}
	return out
}
