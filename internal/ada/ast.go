// Package ada implements the ADA tasking primitive described by the
// paper: tasks communicating by rendezvous (entry call / accept), with
// selective wait. It provides a mini-language, an exhaustive-interleaving
// simulator emitting GEM computations, and the GEM specification of the
// rendezvous.
//
// Event model:
//
//	<task>                 Call(task, entry, v), Return(entry, result),
//	                       local Op events
//	<task>.<entry>         AcceptStart(v), AcceptEnd — rendezvous interval
//	<task>.<var>           Assign(newval)
//
// A rendezvous emits: caller's Call ⊳ callee's AcceptStart, the accept
// body's events, then AcceptEnd ⊳ caller's Return. The caller is blocked
// for the whole interval — ADA's extended rendezvous.
package ada

import "fmt"

// Expr is an integer expression over task variables and accept formal
// parameters.
type Expr interface {
	eval(env *evalEnv) int64
	String() string
}

type evalEnv struct {
	vars map[string]int64
	args map[string]int64
}

// IntLit is an integer literal.
type IntLit int64

func (e IntLit) eval(*evalEnv) int64 { return int64(e) }
func (e IntLit) String() string      { return fmt.Sprintf("%d", int64(e)) }

// VarRef reads an accept parameter or task variable (parameters shadow
// variables).
type VarRef string

func (e VarRef) eval(env *evalEnv) int64 {
	if v, ok := env.args[string(e)]; ok {
		return v
	}
	if v, ok := env.vars[string(e)]; ok {
		return v
	}
	panic(fmt.Sprintf("ada: undefined name %q", string(e)))
}
func (e VarRef) String() string { return string(e) }

// BinOp is a binary operator.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota + 1
	OpSub
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

// Bin applies a binary operator.
type Bin struct {
	Op   BinOp
	L, R Expr
}

func (e Bin) eval(env *evalEnv) int64 {
	l, r := e.L.eval(env), e.R.eval(env)
	b2i := func(b bool) int64 {
		if b {
			return 1
		}
		return 0
	}
	switch e.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpEq:
		return b2i(l == r)
	case OpNe:
		return b2i(l != r)
	case OpLt:
		return b2i(l < r)
	case OpLe:
		return b2i(l <= r)
	case OpGt:
		return b2i(l > r)
	case OpGe:
		return b2i(l >= r)
	default:
		panic(fmt.Sprintf("ada: unknown operator %d", e.Op))
	}
}
func (e Bin) String() string { return fmt.Sprintf("(%s op%d %s)", e.L, e.Op, e.R) }

// Stmt is a task statement.
type Stmt interface{ adaStmt() }

// Assign updates a task variable, emitting an Assign event at the
// variable's element.
type Assign struct {
	Var string
	E   Expr
}

// Op emits a local event. With Element == "" the event occurs at the
// task element. With Element set it occurs at that external shared
// element, with shared-variable semantics for the Assign (stores
// "newval") and Getval (reports the cell as "oldval") classes.
type Op struct {
	Class   string
	Params  map[string]Expr
	Element string
}

// EntryCall calls Task.Entry with an optional integer argument.
type EntryCall struct {
	Task  string
	Entry string
	Arg   Expr // may be nil
}

// Accept waits for a caller on the entry and executes the body during the
// rendezvous. Param names the formal parameter bound to the caller's
// argument ("" for parameterless entries).
type Accept struct {
	Entry string
	Param string
	Body  []Stmt
}

// Reply sets the result returned to the current rendezvous caller (an
// out-parameter; carried on the caller's Return event).
type Reply struct{ E Expr }

// Select is ADA's selective wait over accept alternatives, with an
// optional else-part taken when no alternative is ready.
type Select struct {
	Alts []SelectAlt
	Else []Stmt // nil: no else part (select blocks)
}

// SelectAlt is one "when Guard => accept …" alternative.
type SelectAlt struct {
	Guard  Expr // nil = open
	Accept Accept
}

// Repeat unrolls its body N times.
type Repeat struct {
	N    int
	Body []Stmt
}

func (Assign) adaStmt()    {}
func (Op) adaStmt()        {}
func (EntryCall) adaStmt() {}
func (Accept) adaStmt()    {}
func (Reply) adaStmt()     {}
func (Select) adaStmt()    {}
func (Repeat) adaStmt()    {}

// Task is one ADA task.
type Task struct {
	Name    string
	Entries []string // declared entry names
	Vars    []string // integer variables, zero-initialized
	Body    []Stmt
}

// Program is a set of tasks.
type Program struct {
	Tasks []Task
}

// EntryElement names the element of a task entry.
func EntryElement(task, entry string) string { return task + "." + entry }

// VarElement names the element of a task variable.
func VarElement(task, v string) string { return task + "." + v }
