package profiling

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func TestEmptyPathsAreNoOps(t *testing.T) {
	stop, err := StartCPU("")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if err := WriteHeap(""); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesAreWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPU(cpu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = make([]byte, 1024)
	}
	stop()
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile missing or empty: %v", err)
	}

	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeap(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile missing or empty: %v", err)
	}
}

func TestUnwritablePathErrors(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing", "p.pprof")
	if _, err := StartCPU(bad); err == nil {
		t.Error("StartCPU should fail on an unwritable path")
	}
	if err := WriteHeap(bad); err == nil {
		t.Error("WriteHeap should fail on an unwritable path")
	}

	if os.Getuid() != 0 {
		// A read-only directory only rejects non-root writers; root
		// (and CI containers running as root) bypasses the mode bits.
		rodir := filepath.Join(t.TempDir(), "ro")
		if err := os.Mkdir(rodir, 0o500); err != nil {
			t.Fatal(err)
		}
		if err := WriteHeap(filepath.Join(rodir, "p.pprof")); err == nil {
			t.Error("WriteHeap should fail in a read-only directory")
		}
	}
}

// TestWriteHeapReportsCloseFailure is the regression test for the
// swallowed-close-error bug: WriteHeap used to `defer f.Close()`,
// discarding the close error. That error is the only failure channel
// for a whole class of faults, because the runtime's heap-profile
// writer discards write errors internally — pprof.WriteHeapProfile to
// /dev/full (every write fails with ENOSPC) returns nil. A profile
// "written" to an already-closed file must therefore report the close
// failure instead of success.
func TestWriteHeapReportsCloseFailure(t *testing.T) {
	f, err := os.Create(filepath.Join(t.TempDir(), "heap.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := writeHeapTo(f); err == nil {
		t.Error("writeHeapTo on a closed file reported success for a profile that was never stored")
	}
}

// TestWriteHeapSwallowedWriteError documents why the close error above
// matters: the runtime reports no error even when every write fails.
// If this ever starts failing, the runtime began propagating write
// errors and the close-error path has a second line of defense.
func TestWriteHeapSwallowedWriteError(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("/dev/full is linux-only")
	}
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skipf("no /dev/full: %v", err)
	}
	if err := WriteHeap("/dev/full"); err != nil {
		t.Logf("runtime now propagates heap-profile write errors: %v", err)
	}
}
