package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEmptyPathsAreNoOps(t *testing.T) {
	stop, err := StartCPU("")
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if err := WriteHeap(""); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesAreWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	stop, err := StartCPU(cpu)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		_ = make([]byte, 1024)
	}
	stop()
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Errorf("cpu profile missing or empty: %v", err)
	}

	heap := filepath.Join(dir, "heap.pprof")
	if err := WriteHeap(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Errorf("heap profile missing or empty: %v", err)
	}
}

func TestUnwritablePathErrors(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing", "p.pprof")
	if _, err := StartCPU(bad); err == nil {
		t.Error("StartCPU should fail on an unwritable path")
	}
	if err := WriteHeap(bad); err == nil {
		t.Error("WriteHeap should fail on an unwritable path")
	}
}
