// Package profiling wires the standard pprof profilers into the gem
// CLIs: both gemcheck and gemverify expose -cpuprofile and -memprofile
// flags whose handling (file creation, profile start/stop ordering, a
// GC before the heap snapshot) is identical, so it lives here once.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns the stop
// function that must run before the process exits (a deferred call in
// the command's run function, not main, so os.Exit cannot skip it).
// An empty path is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap records an allocation profile to path after forcing a
// collection, so the snapshot reflects live retention rather than
// garbage awaiting the next GC cycle. An empty path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
