// Package profiling wires the standard pprof profilers into the gem
// CLIs: both gemcheck and gemverify expose -cpuprofile and -memprofile
// flags whose handling (file creation, profile start/stop ordering, a
// GC before the heap snapshot) is identical, so it lives here once.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins a CPU profile written to path and returns the stop
// function that must run before the process exits (a deferred call in
// the command's run function, not main, so os.Exit cannot skip it).
// An empty path is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap records an allocation profile to path after forcing a
// collection, so the snapshot reflects live retention rather than
// garbage awaiting the next GC cycle. An empty path is a no-op. A
// failed Close is reported too: the profile data may still be buffered
// in the kernel or the file table when the write itself succeeds, and a
// silently truncated profile is worse than no profile.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return writeHeapTo(f)
}

// writeHeapTo snapshots the heap into f and closes it. The close error
// is load-bearing: the runtime's profile writer swallows write errors
// internally (its gzip stream discards them), so a full disk or a bad
// descriptor is often only reported by close — the old `defer f.Close()`
// turned a truncated profile into a silent success.
func writeHeapTo(f *os.File) (err error) {
	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("profiling: %w", cerr)
		}
	}()
	runtime.GC()
	if perr := pprof.WriteHeapProfile(f); perr != nil {
		return fmt.Errorf("profiling: %w", perr)
	}
	return nil
}
