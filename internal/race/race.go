// Package race is the static data-race pass over gofront-extracted
// models. The paper's central object — a computation as a partial order
// whose incomparable events may overlap in time — is exactly the
// may-happen-in-parallel relation a race detector needs: two operations
// race when they are incomparable in the extracted order, conflict on
// the same object, and no lock separates them. The pass reuses the same
// concurrency-row machinery (core.Computation.Concurrency, bitset
// reachability over the enable-edge DAG) the lattice engine uses, so
// every channel pairing, WaitGroup join, and lock region gofront
// derives automatically orders accesses and suppresses false reports.
//
// Three codes come out of it:
//
//	GEM018  write/write or read/write access pair: may-happen-in-parallel,
//	        at least one write, and no common lock held in write mode
//	GEM019  channel close concurrent with a send on the same channel
//	GEM020  WaitGroup.Add concurrent with Wait on the same WaitGroup
//
// Soundness with respect to the model is by construction: only pairs
// the computation reports Concurrent are ever considered, so no
// reported pair is ordered by the extracted partial order.
package race

import (
	"fmt"
	"strings"

	"gem/internal/gofront"
	"gem/internal/lint"
	"gem/internal/obs"
)

// Pair is one reported racy operation pair: two indices into the
// model's Ops, A < B in extraction order.
type Pair struct {
	Code lint.Code
	A, B int
}

// objGroup collects the per-object operation indices the detector
// pairs up, in first-seen order.
type objGroup struct {
	accesses []int // OpRead/OpWrite
	sends    []int
	closes   []int
	adds     []int
	waits    []int
}

// Pairs computes the racy pairs of one model, in deterministic
// (extraction-order) sequence.
func Pairs(m *gofront.Model) []Pair {
	_, sp := obs.StartSpan(nil, "race.collect")
	groups := make(map[string]*objGroup)
	var order []string
	group := func(op int) *objGroup {
		id, ok := m.ObjIDOf(op)
		if !ok {
			return nil
		}
		g := groups[id]
		if g == nil {
			g = &objGroup{}
			groups[id] = g
			order = append(order, id)
		}
		return g
	}
	for i, op := range m.Ops {
		g := group(i)
		if g == nil {
			continue
		}
		switch op.Kind {
		case gofront.OpRead, gofront.OpWrite:
			g.accesses = append(g.accesses, i)
		case gofront.OpSend:
			g.sends = append(g.sends, i)
		case gofront.OpClose:
			g.closes = append(g.closes, i)
		case gofront.OpAdd:
			g.adds = append(g.adds, i)
		case gofront.OpWait:
			g.waits = append(g.waits, i)
		}
	}
	sp.End()

	_, sp = obs.StartSpan(nil, "race.mhp")
	defer sp.End()
	rows := m.Comp.Concurrency()
	mhp := func(i, j int) bool {
		return rows[int(m.EventOf[i])].Has(int(m.EventOf[j]))
	}
	var pairs []Pair
	for _, id := range order {
		g := groups[id]
		// GEM018: conflicting data accesses, deduplicated to one report
		// per unordered goroutine pair (the first qualifying access pair
		// in extraction order is the witness).
		seen := make(map[[2]int]bool)
		for ai := 0; ai < len(g.accesses); ai++ {
			for bi := ai + 1; bi < len(g.accesses); bi++ {
				a, b := g.accesses[ai], g.accesses[bi]
				if m.Ops[a].Kind != gofront.OpWrite && m.Ops[b].Kind != gofront.OpWrite {
					continue
				}
				if !mhp(a, b) || lockExcluded(m, a, b) {
					continue
				}
				gp := [2]int{m.Ops[a].G, m.Ops[b].G}
				if gp[0] > gp[1] {
					gp[0], gp[1] = gp[1], gp[0]
				}
				if seen[gp] {
					continue
				}
				seen[gp] = true
				pairs = append(pairs, Pair{Code: lint.CodeDataRace, A: a, B: b})
			}
		}
		// GEM019: a close racing a send on the same channel.
		for _, c := range g.closes {
			for _, s := range g.sends {
				if mhp(c, s) {
					a, b := c, s
					if a > b {
						a, b = b, a
					}
					pairs = append(pairs, Pair{Code: lint.CodeCloseRace, A: a, B: b})
				}
			}
		}
		// GEM020: an Add racing a Wait on the same WaitGroup.
		for _, ad := range g.adds {
			for _, w := range g.waits {
				if mhp(ad, w) {
					a, b := ad, w
					if a > b {
						a, b = b, a
					}
					pairs = append(pairs, Pair{Code: lint.CodeAddWaitRace, A: a, B: b})
				}
			}
		}
	}
	obs.Count("race.pairs", int64(len(pairs)))
	return pairs
}

// lockExcluded reports whether a common lock separates two accesses: a
// mutex both locksets contain, held in write mode by at least one side.
// Two reader acquisitions of the same RWMutex do not exclude each other.
func lockExcluded(m *gofront.Model, a, b int) bool {
	for _, la := range m.Ops[a].Locks {
		for _, lb := range m.Ops[b].Locks {
			if !m.SameObj(la, lb) {
				continue
			}
			if m.Ops[la].Kind == gofront.OpLock || m.Ops[lb].Kind == gofront.OpLock {
				return true
			}
		}
	}
	return false
}

// Check runs the pass on one model and renders its findings as
// diagnostics, each carrying both access positions, the goroutine spawn
// chains, and the lockset witness.
func Check(m *gofront.Model) []lint.FileDiagnostic {
	pairs := Pairs(m)
	_, sp := obs.StartSpan(nil, "race.report")
	defer sp.End()
	var diags []lint.FileDiagnostic
	for _, p := range pairs {
		var msg string
		switch p.Code {
		case lint.CodeDataRace:
			msg = fmt.Sprintf("data race on %s: %s may happen in parallel with %s and no common lock orders them",
				m.ObjNameOf(p.A), describe(m, p.A), describe(m, p.B))
		case lint.CodeCloseRace:
			msg = fmt.Sprintf("racy close of channel %s: %s may happen in parallel with %s",
				m.ObjNameOf(p.A), describe(m, p.A), describe(m, p.B))
		case lint.CodeAddWaitRace:
			msg = fmt.Sprintf("%s.Add may run concurrently with its Wait: %s may happen in parallel with %s",
				m.ObjNameOf(p.A), describe(m, p.A), describe(m, p.B))
		}
		info, _ := lint.Info(p.Code)
		pos := m.Ops[p.A].Pos
		diags = append(diags, lint.FileDiagnostic{
			File: pos.Filename,
			Diagnostic: lint.Diagnostic{
				Code:     p.Code,
				Severity: info.Severity,
				Subject:  "goroutine " + m.Gors[m.Ops[p.A].G].Name,
				Message:  msg,
				Pos:      lint.Pos{Line: pos.Line, Col: pos.Column},
			},
		})
	}
	return diags
}

// describe renders one side of a pair: kind, position, the spawn chain
// of the goroutine running it, and its lockset (empty locksets — the
// race witness — render as "{}").
func describe(m *gofront.Model, op int) string {
	o := m.Ops[op]
	return fmt.Sprintf("the %s at %d:%d on %s holding %s",
		o.Kind, o.Pos.Line, o.Pos.Column, spawnChain(m, o.G), lockset(m, op))
}

// spawnChain renders the chain of go statements leading to a goroutine
// ("main -> main.g1 (go at 5:2)").
func spawnChain(m *gofront.Model, g int) string {
	spawn := m.Gors[g].SpawnOp
	if spawn < 0 {
		return m.Gors[g].Name
	}
	pos := m.Ops[spawn].Pos
	return fmt.Sprintf("%s -> %s (go at %d:%d)",
		spawnChain(m, m.Ops[spawn].G), m.Gors[g].Name, pos.Line, pos.Column)
}

// lockset renders the locks held at an access: "{mu}", "{rw(read)}", or
// "{}" when the access runs unprotected.
func lockset(m *gofront.Model, op int) string {
	ls := m.Ops[op].Locks
	if len(ls) == 0 {
		return "{}"
	}
	var parts []string
	for _, l := range ls {
		name := m.ObjNameOf(l)
		if m.Ops[l].Kind == gofront.OpRLock {
			name += "(read)"
		}
		parts = append(parts, name)
	}
	return "{" + strings.Join(parts, ",") + "}"
}
