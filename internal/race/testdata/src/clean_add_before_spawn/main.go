// The canonical WaitGroup pattern: Add before the spawn, Done in the
// worker, Wait in main. The Done→Wait join edge orders the worker's
// write before main's read, and the Add is program-order-before the
// Wait — nothing races.
package main

import "sync"

var (
	wg    sync.WaitGroup
	total int
)

func main() {
	wg.Add(1)
	go func() {
		total = 1
		wg.Done()
	}()
	wg.Wait()
	_ = total
}
