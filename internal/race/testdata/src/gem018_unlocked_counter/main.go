// Classic unsynchronized counter: the spawned goroutine increments a
// package-level counter while main reads it, with no lock and no
// ordering between the two — a write/read data race.
package main

var counter int

func main() {
	go func() {
		counter++
	}()
	_ = counter
}
