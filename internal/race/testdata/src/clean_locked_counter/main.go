// Lookalike for gem018_unlocked_counter with the defect repaired: both
// the increment and the read hold the same mutex in write mode, so the
// accesses exclude each other even though they may interleave.
package main

import "sync"

var (
	mu      sync.Mutex
	counter int
)

func main() {
	go func() {
		mu.Lock()
		counter++
		mu.Unlock()
	}()
	mu.Lock()
	_ = counter
	mu.Unlock()
}
