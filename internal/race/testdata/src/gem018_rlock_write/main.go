// Reader locks don't exclude each other: both goroutines hold hits's
// RWMutex in read mode, but one of them writes — the shared reader
// acquisitions order nothing, so the write races the read.
package main

import "sync"

var (
	mu   sync.RWMutex
	hits int
)

func main() {
	go func() {
		mu.RLock()
		hits++
		mu.RUnlock()
	}()
	mu.RLock()
	_ = hits
	mu.RUnlock()
}
