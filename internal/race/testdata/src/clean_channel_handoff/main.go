// Publication via channel handoff: the write is ordered before the
// send, the send enables the receive, and the receive is ordered before
// the read — the accesses are comparable in the extracted partial
// order, so no race.
package main

var data int

func main() {
	ch := make(chan int)
	go func() {
		data = 42
		ch <- 1
	}()
	<-ch
	_ = data
}
