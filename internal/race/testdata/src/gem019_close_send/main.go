// The spawned goroutine's send has no ordering with main's close: if
// the close wins the race, the send panics on a closed channel.
package main

func main() {
	ch := make(chan int, 1)
	go func() {
		ch <- 1
	}()
	close(ch)
}
