// Lookalike for gem018_rlock_write with the defect repaired: the
// writer holds the RWMutex in write mode, the reader in read mode — a
// common lock with one side in write mode excludes the pair.
package main

import "sync"

var (
	mu   sync.RWMutex
	hits int
)

func main() {
	go func() {
		mu.Lock()
		hits++
		mu.Unlock()
	}()
	mu.RLock()
	_ = hits
	mu.RUnlock()
}
