// The worker registers itself with the WaitGroup after spawning its
// subtask: nothing orders that Add before main's Wait, so Wait can
// observe a zero counter and return while work is still being added.
package main

import "sync"

var wg sync.WaitGroup

func main() {
	go func() {
		go func() {
			wg.Done()
		}()
		wg.Add(1)
	}()
	wg.Wait()
}
