package race_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"gem/internal/gofront"
	"gem/internal/race"
)

// genProgram renders a random but always-compilable concurrent Go
// program: a handful of goroutines whose bodies mix shared-variable
// reads/writes, mutex and RWMutex regions, channel operations, and
// WaitGroup calls. The sync objects and the data variables are
// package-level, so every access survives the sharing filter and the
// generated models exercise the whole access/lockset/MHP pipeline.
func genProgram(rng *rand.Rand) string {
	stmts := []string{
		"a++",
		"b = a",
		"c = a + b",
		"_ = c",
		"a = c",
		"mu.Lock()",
		"mu.Unlock()",
		"rw.RLock()",
		"rw.RUnlock()",
		"rw.Lock()",
		"rw.Unlock()",
		"ch <- 1",
		"<-ch",
		"close(ch)",
		"wg.Add(1)",
		"wg.Done()",
		"wg.Wait()",
	}
	var sb strings.Builder
	sb.WriteString("package main\n\nimport \"sync\"\n\n")
	sb.WriteString("var a, b, c int\nvar mu sync.Mutex\nvar rw sync.RWMutex\nvar wg sync.WaitGroup\n\n")
	sb.WriteString("func main() {\n")
	fmt.Fprintf(&sb, "\tch := make(chan int, %d)\n\t_ = ch\n", rng.Intn(3))
	body := func(depth int) {
		for i, n := 0, 1+rng.Intn(6); i < n; i++ {
			fmt.Fprintf(&sb, "%s%s\n", strings.Repeat("\t", depth), stmts[rng.Intn(len(stmts))])
		}
	}
	for g, n := 0, 1+rng.Intn(3); g < n; g++ {
		sb.WriteString("\tgo func() {\n")
		body(2)
		sb.WriteString("\t}()\n")
	}
	body(1)
	sb.WriteString("}\n")
	return sb.String()
}

// TestMHPSoundness is the property test behind the pass's central
// claim: over 100+ randomized extracted models, no reported pair is
// ordered in the model's partial order (may-happen-in-parallel is
// computed from the same enable-edge reachability the engines use), and
// the report sequence is deterministic run to run.
func TestMHPSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	models := 0
	for i := 0; i < 120; i++ {
		src := genProgram(rng)
		res, err := gofront.AnalyzeSource(fmt.Sprintf("gen%d.go", i), src)
		if err != nil {
			t.Fatalf("generated program %d failed to parse:\n%s\n%v", i, src, err)
		}
		if len(res.Pkg.TypeErrs) > 0 {
			t.Fatalf("generated program %d has type errors:\n%s\n%v", i, src, res.Pkg.TypeErrs)
		}
		for _, m := range res.Models {
			models++
			pairs := race.Pairs(m)
			for _, p := range pairs {
				a, b := m.EventOf[p.A], m.EventOf[p.B]
				if m.Comp.Temporal(a, b) || m.Comp.Temporal(b, a) {
					t.Errorf("program %d model %s: reported pair %s (%d,%d) is ordered:\n%s",
						i, m.Name, p.Code, p.A, p.B, src)
				}
				if p.A == p.B {
					t.Errorf("program %d model %s: degenerate pair at op %d", i, m.Name, p.A)
				}
			}
			if again := race.Pairs(m); !reflect.DeepEqual(pairs, again) {
				t.Errorf("program %d model %s: race pass is nondeterministic", i, m.Name)
			}
		}
	}
	if models < 100 {
		t.Fatalf("property test exercised only %d models, want 100+", models)
	}
}
