package race_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gem/internal/gofront"
	"gem/internal/lint"
	"gem/internal/race"
)

var update = flag.Bool("update", false, "rewrite golden files from current race-pass output")

// fixtureDirs returns the race fixture package directories.
func fixtureDirs(t *testing.T) []string {
	t.Helper()
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 8 {
		t.Fatalf("expected at least 8 fixture packages in testdata/src, found %d", len(dirs))
	}
	return dirs
}

// analyze runs the front end plus the race pass over one fixture,
// returning the race diagnostics (sorted) and the models.
func analyze(t *testing.T, dir string) ([]lint.FileDiagnostic, *gofront.Result) {
	t.Helper()
	res, err := gofront.AnalyzeDir(dir)
	if err != nil {
		t.Fatalf("analyze %s: %v", dir, err)
	}
	if len(res.Pkg.TypeErrs) > 0 {
		t.Fatalf("fixture %s has type errors: %v", dir, res.Pkg.TypeErrs)
	}
	// Race fixtures are synchronization-clean by design: the defect is in
	// the data accesses, not the wait structure, so the gofront codes must
	// stay silent on every one of them.
	if len(res.Diags) > 0 {
		t.Fatalf("fixture %s triggers gofront diagnostics (fixtures must isolate the race codes):\n%s",
			dir, renderDiags(res.Diags))
	}
	var diags []lint.FileDiagnostic
	for _, m := range res.Models {
		diags = append(diags, race.Check(m)...)
	}
	lint.SortFileDiagnostics(diags)
	return diags, res
}

func renderDiags(diags []lint.FileDiagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&sb, "%s:%s\n", d.File, d.Diagnostic)
	}
	return sb.String()
}

func renderDump(res *gofront.Result) string {
	var sb strings.Builder
	for _, m := range res.Models {
		gofront.DumpSpec(&sb, m)
	}
	return sb.String()
}

func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("mismatch for %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGolden runs the race pass over every fixture and compares the
// diagnostics and the extracted-model dump (which now carries the
// read/write events) against golden files. Defective fixtures
// (gemNNN_*) must surface exactly the code they are named for; clean_*
// lookalikes must be silent. Regenerate with:
// go test ./internal/race -run Golden -update
func TestGolden(t *testing.T) {
	for _, dir := range fixtureDirs(t) {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			diags, res := analyze(t, dir)
			got := renderDiags(diags)

			if strings.HasPrefix(name, "clean_") {
				if got != "" {
					t.Errorf("clean fixture %s produced diagnostics:\n%s", dir, got)
				}
			} else {
				wantCode := strings.ToUpper(name[:strings.Index(name, "_")])
				codes := make(map[string]bool)
				for _, d := range diags {
					codes[string(d.Code)] = true
				}
				if !codes[wantCode] || len(codes) != 1 {
					t.Errorf("fixture %s must surface exactly %s; diagnostics:\n%s", dir, wantCode, got)
				}
				// Every reported race must carry both positions and the
				// lockset witness in its message.
				for _, d := range diags {
					if !strings.Contains(d.Message, "holding {") {
						t.Errorf("diagnostic missing lockset witness: %s", d.Message)
					}
					if strings.Count(d.Message, " at ") < 2 {
						t.Errorf("diagnostic missing one of the two access positions: %s", d.Message)
					}
				}
			}

			checkGolden(t, filepath.Join("testdata", name+".golden"), got)
			checkGolden(t, filepath.Join("testdata", name+".dump.golden"), renderDump(res))
		})
	}
}
