package core

import "fmt"

// Dynamic group structure (the paper, Section 4 footnote: "groups may be
// created, deleted, or changed dynamically... changes to group structure
// are represented as events", and computations "grow monotonically, even
// in the presence of dynamic group structures").
//
// Convention: structural changes occur at the dedicated admin element
// (AdminElement) with event classes AddMember and RemoveMember, each
// carrying string parameters "group" and "member". Because all events at
// one element are totally ordered, the sequence of structural changes is
// unambiguous; the group structure in force for an enable edge e1 ⊳ e2 is
// the static structure amended by every change event in e1's temporal
// past (its causal history).

// AdminElement is the element at which dynamic group-structure changes
// occur.
const AdminElement = "groups.admin"

// Dynamic group-change event classes.
const (
	AddMemberClass    = "AddMember"
	RemoveMemberClass = "RemoveMember"
)

// Clone returns an independent copy of the universe (same elements,
// groups, ports).
func (u *Universe) Clone() *Universe {
	out := NewUniverse()
	for e := range u.elements {
		out.AddElement(e)
	}
	for name, g := range u.groups {
		if name == RootGroup {
			continue
		}
		out.AddGroup(name, g.members...)
		for _, p := range g.ports {
			out.AddPort(name, p.Element, p.Class)
		}
	}
	return out
}

// AddMember adds a direct member to a group (creating the group if
// needed).
func (u *Universe) AddMember(group, member string) {
	u.AddGroup(group, member)
}

// RemoveMember removes a direct member from a group. Removing a
// non-member is a no-op.
func (u *Universe) RemoveMember(group, member string) {
	g, ok := u.groups[group]
	if !ok {
		return
	}
	for i, m := range g.members {
		if m == member {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	parents := u.memberOf[member]
	for i, p := range parents {
		if p == group {
			u.memberOf[member] = append(parents[:i], parents[i+1:]...)
			break
		}
	}
	if len(u.memberOf[member]) == 0 {
		delete(u.memberOf, member)
	}
}

// ChangeEvent extracts the structural change described by a dynamic
// group event, or ok=false if the event is not one.
func ChangeEvent(e *Event) (group, member string, add, ok bool) {
	if e.Element != AdminElement {
		return "", "", false, false
	}
	switch e.Class {
	case AddMemberClass:
		add = true
	case RemoveMemberClass:
		add = false
	default:
		return "", "", false, false
	}
	g, gok := e.Params["group"]
	m, mok := e.Params["member"]
	if !gok || !mok || g.Kind != KindString || m.Kind != KindString {
		return "", "", false, false
	}
	return g.S, m.S, add, true
}

// UniverseAt returns the group structure in force at (i.e. just after)
// the causal past of the given event: the static universe amended by
// every change event that temporally precedes it. Change events
// concurrent with the event do not apply — an enabling is judged by what
// its source could observe.
func UniverseAt(static *Universe, c *Computation, at EventID) (*Universe, error) {
	changes := c.EventsOf(ClassRef{Element: AdminElement})
	u := static
	cloned := false
	for _, id := range changes {
		if !c.Temporal(id, at) {
			continue
		}
		group, member, add, ok := ChangeEvent(c.Event(id))
		if !ok {
			return nil, fmt.Errorf("core: malformed group-change event %s", c.Event(id).Name())
		}
		if !cloned {
			u = static.Clone()
			cloned = true
		}
		if add {
			u.AddMember(group, member)
		} else {
			u.RemoveMember(group, member)
		}
	}
	return u, nil
}

// HasDynamicChanges reports whether the computation contains any dynamic
// group-change events.
func HasDynamicChanges(c *Computation) bool {
	return len(c.EventsAt(AdminElement)) > 0
}
