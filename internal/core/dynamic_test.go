package core

import (
	"testing"
)

func TestUniverseClone(t *testing.T) {
	u := NewUniverse()
	u.AddElement("A")
	u.AddElement("B")
	u.AddGroup("G", "A")
	u.AddPort("G", "A", "Start")
	cp := u.Clone()
	cp.AddMember("G", "B")
	if u.Access("B", "A") {
		t.Error("Clone must be independent of the original")
	}
	if !cp.Access("B", "A") {
		t.Error("clone should reflect its own additions")
	}
	if len(cp.Ports("G")) != 1 {
		t.Error("ports must be cloned")
	}
}

func TestAddRemoveMember(t *testing.T) {
	u := NewUniverse()
	u.AddElement("A")
	u.AddElement("B")
	u.AddGroup("G", "A")
	if u.Access("B", "A") {
		t.Fatal("B must not reach inside G initially")
	}
	u.AddMember("G", "B")
	if !u.Access("B", "A") {
		t.Fatal("after joining G, B must access A")
	}
	u.RemoveMember("G", "B")
	if u.Access("B", "A") {
		t.Fatal("after leaving G, access is revoked")
	}
	// Removing a non-member or from an unknown group is a no-op.
	u.RemoveMember("G", "ghost")
	u.RemoveMember("nope", "B")
}

func TestChangeEvent(t *testing.T) {
	good := &Event{Element: AdminElement, Class: AddMemberClass,
		Params: Params{"group": Str("G"), "member": Str("A")}}
	g, m, add, ok := ChangeEvent(good)
	if !ok || g != "G" || m != "A" || !add {
		t.Errorf("ChangeEvent = (%q, %q, %v, %v)", g, m, add, ok)
	}
	rem := &Event{Element: AdminElement, Class: RemoveMemberClass,
		Params: Params{"group": Str("G"), "member": Str("A")}}
	if _, _, add, ok := ChangeEvent(rem); !ok || add {
		t.Error("remove event wrong")
	}
	if _, _, _, ok := ChangeEvent(&Event{Element: "other", Class: AddMemberClass}); ok {
		t.Error("non-admin element is not a change event")
	}
	if _, _, _, ok := ChangeEvent(&Event{Element: AdminElement, Class: "Other"}); ok {
		t.Error("unknown class is not a change event")
	}
	if _, _, _, ok := ChangeEvent(&Event{Element: AdminElement, Class: AddMemberClass,
		Params: Params{"group": Str("G")}}); ok {
		t.Error("missing member param must be rejected")
	}
}

func TestUniverseAt(t *testing.T) {
	static := NewUniverse()
	static.AddElement("inner")
	static.AddElement("joiner")
	static.AddElement(AdminElement)
	static.AddGroup("G", "inner")

	b := NewBuilder()
	before := b.Event("joiner", "Try", nil)
	addEv := b.Event(AdminElement, AddMemberClass,
		Params{"group": Str("G"), "member": Str("joiner")})
	after := b.Event("joiner", "Try", nil)
	b.Enable(before, addEv)
	b.Enable(addEv, after)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	uBefore, err := UniverseAt(static, c, before)
	if err != nil {
		t.Fatal(err)
	}
	if uBefore.Access("joiner", "inner") {
		t.Error("before the change, joiner must not access inner")
	}
	uAfter, err := UniverseAt(static, c, after)
	if err != nil {
		t.Fatal(err)
	}
	if !uAfter.Access("joiner", "inner") {
		t.Error("after the change, joiner must access inner")
	}
	// The static universe is untouched.
	if static.Access("joiner", "inner") {
		t.Error("UniverseAt must not mutate the static universe")
	}
	if !HasDynamicChanges(c) {
		t.Error("HasDynamicChanges should see the admin event")
	}
}

func TestUniverseAtMalformed(t *testing.T) {
	static := NewUniverse()
	static.AddElement(AdminElement)
	static.AddElement("x")
	b := NewBuilder()
	bad := b.Event(AdminElement, AddMemberClass, nil) // missing params
	tgt := b.Event("x", "E", nil)
	b.Enable(bad, tgt)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UniverseAt(static, c, tgt); err == nil {
		t.Error("malformed change event must be reported")
	}
}

func TestUniverseAtAppliesOnlyCausalPast(t *testing.T) {
	static := NewUniverse()
	static.AddElement("inner")
	static.AddElement("joiner")
	static.AddElement(AdminElement)
	static.AddGroup("G", "inner")

	b := NewBuilder()
	// Change event concurrent with the probe: must NOT apply.
	b.Event(AdminElement, AddMemberClass, Params{"group": Str("G"), "member": Str("joiner")})
	probe := b.Event("joiner", "Try", nil)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	u, err := UniverseAt(static, c, probe)
	if err != nil {
		t.Fatal(err)
	}
	if u.Access("joiner", "inner") {
		t.Error("a concurrent change must not be visible")
	}
}
