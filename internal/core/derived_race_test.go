package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func buildTwoEventComp(t *testing.T) *Computation {
	t.Helper()
	b := NewBuilder()
	a := b.Event("e", "A", nil)
	c := b.Event("e", "B", nil)
	b.Enable(a, c)
	comp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

// TestDerivedSingleBuild pins Derived's single-build semantics under
// concurrent callers (run under -race by scripts/ci.sh): for each key
// the build function runs exactly once, every caller observes the value
// that build returned, and no caller observes a partially built value.
// The slow build forces real overlap — all goroutines are in flight
// before the first build finishes.
func TestDerivedSingleBuild(t *testing.T) {
	comp := buildTwoEventComp(t)
	const (
		goroutines = 32
		keys       = 4
	)
	var builds [keys]atomic.Int64
	var start, done sync.WaitGroup
	results := make([][]any, keys)
	for k := range results {
		results[k] = make([]any, goroutines)
	}
	start.Add(goroutines * keys)
	done.Add(goroutines * keys)
	for k := 0; k < keys; k++ {
		k := k
		key := string(rune('a' + k))
		for g := 0; g < goroutines; g++ {
			g := g
			go func() {
				start.Done()
				start.Wait() // maximize overlap
				v := comp.Derived(key, func() any {
					builds[k].Add(1)
					time.Sleep(2 * time.Millisecond)
					return &struct{ key string }{key}
				})
				results[k][g] = v
				done.Done()
			}()
		}
	}
	done.Wait()
	for k := 0; k < keys; k++ {
		if n := builds[k].Load(); n != 1 {
			t.Errorf("key %d: build ran %d times, want exactly 1", k, n)
		}
		for g := 1; g < goroutines; g++ {
			if results[k][g] != results[k][0] {
				t.Errorf("key %d: caller %d observed a different value than caller 0", k, g)
			}
		}
	}
}

// A second computation must not share derived values with the first:
// the cache is per-computation, keyed only within it.
func TestDerivedPerComputation(t *testing.T) {
	c1 := buildTwoEventComp(t)
	c2 := buildTwoEventComp(t)
	v1 := c1.Derived("k", func() any { return new(int) })
	v2 := c2.Derived("k", func() any { return new(int) })
	if v1 == v2 {
		t.Error("two computations shared one derived value")
	}
}
