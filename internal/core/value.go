// Package core implements the GEM (Group Element Model) model of concurrent
// computation from Lansky & Owicki (1983): events, elements, groups, the
// enable relation, the element order, and the temporal order (the
// transitive closure of the former two, minus identity).
//
// A Computation is built incrementally with a Builder; Build derives and
// validates the temporal order. Group structure lives in a Universe, which
// answers the access/contained queries that constrain legal enable edges.
package core

import (
	"strconv"
	"strings"
)

// ValueKind discriminates the kinds of data that may ride on an event
// parameter.
type ValueKind int

// The supported parameter value kinds.
const (
	KindInt ValueKind = iota + 1
	KindString
	KindBool
)

// Value is an event parameter value. Values are comparable with == and
// usable as map keys.
type Value struct {
	Kind ValueKind
	I    int64
	S    string
	B    bool
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Str returns a string Value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns a boolean Value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// IsZero reports whether v is the zero Value (no kind).
func (v Value) IsZero() bool { return v.Kind == 0 }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindString:
		return strconv.Quote(v.S)
	case KindBool:
		return strconv.FormatBool(v.B)
	default:
		return "<none>"
	}
}

// Less imposes a total order on values of the same kind (ints by value,
// strings lexicographically, false < true). Cross-kind comparisons order by
// kind, which keeps sorting deterministic.
func (v Value) Less(other Value) bool {
	if v.Kind != other.Kind {
		return v.Kind < other.Kind
	}
	switch v.Kind {
	case KindInt:
		return v.I < other.I
	case KindString:
		return v.S < other.S
	case KindBool:
		return !v.B && other.B
	default:
		return false
	}
}

// Params is a set of named parameter values attached to an event.
type Params map[string]Value

// Clone returns an independent copy.
func (p Params) Clone() Params {
	if p == nil {
		return nil
	}
	out := make(Params, len(p))
	for k, v := range p {
		out[k] = v
	}
	return out
}

// String renders parameters deterministically for diagnostics.
func (p Params) String() string {
	if len(p) == 0 {
		return ""
	}
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var sb strings.Builder
	sb.WriteByte('(')
	for i, k := range keys {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(p[k].String())
	}
	sb.WriteByte(')')
	return sb.String()
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
