package core

import "testing"

func fpComp(t *testing.T, label func(*Builder, EventID)) *Computation {
	t.Helper()
	b := NewBuilder()
	a := b.Event("e", "A", Params{"n": Int(1), "s": Str("x")})
	c := b.Event("f", "B", nil)
	b.Enable(a, c)
	if label != nil {
		label(b, c)
	}
	comp, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return comp
}

func TestFingerprintStableAndDiscriminating(t *testing.T) {
	c1 := fpComp(t, nil)
	c2 := fpComp(t, nil)
	if Fingerprint(c1) != Fingerprint(c2) {
		t.Error("identical computations fingerprint differently")
	}
	if Fingerprint(c1) != Fingerprint(c1) {
		t.Error("fingerprint not memoized-stable")
	}
	// Different parameter value.
	b := NewBuilder()
	a := b.Event("e", "A", Params{"n": Int(2), "s": Str("x")})
	c := b.Event("f", "B", nil)
	b.Enable(a, c)
	c3, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(c1) == Fingerprint(c3) {
		t.Error("parameter edit kept the fingerprint")
	}
	// Different enable structure.
	b = NewBuilder()
	b.Event("e", "A", Params{"n": Int(1), "s": Str("x")})
	b.Event("f", "B", nil)
	c4, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(c1) == Fingerprint(c4) {
		t.Error("dropped enable edge kept the fingerprint")
	}
	// Thread labels are part of the fingerprint, in any labelling order.
	l1 := fpComp(t, func(b *Builder, id EventID) { b.Thread(id, "t1"); b.Thread(id, "t2") })
	l2 := fpComp(t, func(b *Builder, id EventID) { b.Thread(id, "t2"); b.Thread(id, "t1") })
	if Fingerprint(l1) != Fingerprint(l2) {
		t.Error("thread labelling order changed the fingerprint")
	}
	if Fingerprint(l1) == Fingerprint(c1) {
		t.Error("thread labels not covered by the fingerprint")
	}
}
