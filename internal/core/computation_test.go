package core

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// buildDiamond constructs the paper's Section 7 computation: four events at
// four distinct elements with e1 ⊳ e2, e1 ⊳ e3, e2 ⊳ e4, e3 ⊳ e4.
func buildDiamond(t *testing.T) (*Computation, [4]EventID) {
	t.Helper()
	b := NewBuilder()
	var ids [4]EventID
	for i := 0; i < 4; i++ {
		ids[i] = b.Event("EL"+string(rune('1'+i)), "E", nil)
	}
	b.Enable(ids[0], ids[1])
	b.Enable(ids[0], ids[2])
	b.Enable(ids[1], ids[3])
	b.Enable(ids[2], ids[3])
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, ids
}

func TestDiamondTemporalOrder(t *testing.T) {
	c, ids := buildDiamond(t)
	e1, e2, e3, e4 := ids[0], ids[1], ids[2], ids[3]

	if !c.Temporal(e1, e2) || !c.Temporal(e1, e3) || !c.Temporal(e1, e4) {
		t.Error("e1 must temporally precede e2, e3, e4")
	}
	if !c.Temporal(e2, e4) || !c.Temporal(e3, e4) {
		t.Error("e2 and e3 must precede e4")
	}
	if !c.Concurrent(e2, e3) {
		t.Error("e2 and e3 are potentially concurrent (no observable order)")
	}
	if c.Concurrent(e1, e4) {
		t.Error("e1 and e4 are ordered, not concurrent")
	}
	if c.Concurrent(e2, e2) {
		t.Error("an event is not concurrent with itself")
	}
}

func TestElementOrderForcesSequence(t *testing.T) {
	// Two causally-unconnected assignments at the same variable element
	// must still be temporally ordered — the paper's Var example.
	b := NewBuilder()
	a1 := b.Event("Var", "Assign", Params{"newval": Int(1)})
	a2 := b.Event("Var", "Assign", Params{"newval": Int(2)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !c.ElemBefore(a1, a2) {
		t.Error("a1 must precede a2 in the element order")
	}
	if c.ElemBefore(a2, a1) {
		t.Error("element order must be asymmetric")
	}
	if !c.Temporal(a1, a2) {
		t.Error("element order must imply temporal order")
	}
	if c.EnablesDirect(a1, a2) {
		t.Error("element order does not imply an enable edge")
	}
}

func TestElemBeforeDifferentElements(t *testing.T) {
	b := NewBuilder()
	x := b.Event("X", "E", nil)
	y := b.Event("Y", "E", nil)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.ElemBefore(x, y) || c.ElemBefore(y, x) {
		t.Error("events at different elements are never element-ordered")
	}
	if !c.Concurrent(x, y) {
		t.Error("unrelated events at distinct elements are concurrent")
	}
}

func TestBuildRejectsCycle(t *testing.T) {
	b := NewBuilder()
	x := b.Event("X", "E", nil)
	y := b.Event("Y", "E", nil)
	b.Enable(x, y)
	b.Enable(y, x)
	if _, err := b.Build(); err == nil {
		t.Fatal("cyclic enable relation must be rejected")
	}
}

func TestBuildRejectsSelfEnable(t *testing.T) {
	b := NewBuilder()
	x := b.Event("X", "E", nil)
	b.Enable(x, x)
	if _, err := b.Build(); err == nil {
		t.Fatal("self-enable must be rejected (enable is irreflexive)")
	}
}

func TestBuildRejectsEnableElementOrderCycle(t *testing.T) {
	// x1 =>el x2 at element X; enabling x2 |> x1 creates a temporal cycle.
	b := NewBuilder()
	x1 := b.Event("X", "E", nil)
	x2 := b.Event("X", "E", nil)
	b.Enable(x2, x1)
	if _, err := b.Build(); err == nil {
		t.Fatal("enable edge against element order must be rejected")
	}
}

func TestBuildRejectsUnknownEventInEdge(t *testing.T) {
	b := NewBuilder()
	x := b.Event("X", "E", nil)
	b.Enable(x, EventID(5))
	if _, err := b.Build(); err == nil {
		t.Fatal("dangling enable edge must be rejected")
	}
}

func TestEventAccessors(t *testing.T) {
	c, ids := buildDiamond(t)
	if c.NumEvents() != 4 {
		t.Fatalf("NumEvents = %d, want 4", c.NumEvents())
	}
	ev := c.Event(ids[0])
	if ev.Element != "EL1" || ev.Class != "E" || ev.Seq != 0 {
		t.Errorf("unexpected event %+v", ev)
	}
	if got := c.EventsAt("EL1"); len(got) != 1 || got[0] != ids[0] {
		t.Errorf("EventsAt(EL1) = %v", got)
	}
	if got := c.Elements(); !reflect.DeepEqual(got, []string{"EL1", "EL2", "EL3", "EL4"}) {
		t.Errorf("Elements = %v", got)
	}
	if got := c.EventsOf(Ref("", "E")); len(got) != 4 {
		t.Errorf("EventsOf(any E) = %v, want 4 ids", got)
	}
	if got := c.EventsOf(Ref("EL2", "E")); len(got) != 1 || got[0] != ids[1] {
		t.Errorf("EventsOf(EL2.E) = %v", got)
	}
	if got := c.EventsOf(Ref("EL2", "Nope")); got != nil {
		t.Errorf("EventsOf(no match) = %v, want nil", got)
	}
}

func TestEnablersAndEnabled(t *testing.T) {
	c, ids := buildDiamond(t)
	if got := c.Enablers(ids[3]); !reflect.DeepEqual(got, []EventID{ids[1], ids[2]}) {
		t.Errorf("Enablers(e4) = %v", got)
	}
	if got := c.Enabled(ids[0]); !reflect.DeepEqual(got, []EventID{ids[1], ids[2]}) {
		t.Errorf("Enabled(e1) = %v", got)
	}
	if got := c.Enablers(ids[0]); got != nil {
		t.Errorf("Enablers(e1) = %v, want none", got)
	}
}

func TestDuplicateEnableEdgeDeduped(t *testing.T) {
	b := NewBuilder()
	x := b.Event("X", "E", nil)
	y := b.Event("Y", "E", nil)
	b.Enable(x, y)
	b.Enable(x, y)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Enabled(x)); got != 1 {
		t.Errorf("duplicate enable stored %d times", got)
	}
}

func TestThreadsOnEvents(t *testing.T) {
	b := NewBuilder()
	x := b.Event("X", "E", nil)
	b.Thread(x, "pi-1")
	b.Thread(x, "pi-1") // duplicate ignored
	b.Thread(x, "pi-2")
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ev := c.Event(x)
	if !ev.HasThread("pi-1") || !ev.HasThread("pi-2") || ev.HasThread("pi-3") {
		t.Errorf("thread labels wrong: %v", ev.Threads)
	}
	if len(ev.Threads) != 2 {
		t.Errorf("duplicate thread label stored: %v", ev.Threads)
	}
}

func TestEventNameNotation(t *testing.T) {
	b := NewBuilder()
	b.Event("Var", "Assign", nil)
	a2 := b.Event("Var", "Assign", Params{"newval": Int(3)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Event(a2).Name(); got != "Var.Assign^1" {
		t.Errorf("Name = %q, want Var.Assign^1", got)
	}
	if got := c.Event(a2).String(); got != "Var.Assign^1(newval=3)" {
		t.Errorf("String = %q", got)
	}
}

func TestClassRefMatching(t *testing.T) {
	e := &Event{Element: "db.control", Class: "StartRead"}
	tests := []struct {
		ref  ClassRef
		want bool
	}{
		{Ref("db.control", "StartRead"), true},
		{Ref("", "StartRead"), true},
		{Ref("db.control", ""), true},
		{Ref("other", "StartRead"), false},
		{Ref("db.control", "EndRead"), false},
	}
	for _, tt := range tests {
		if got := tt.ref.Matches(e); got != tt.want {
			t.Errorf("%v.Matches = %v, want %v", tt.ref, got, tt.want)
		}
	}
	if got := Ref("", "X").String(); got != "X" {
		t.Errorf("unqualified String = %q", got)
	}
	if got := Ref("EL", "X").String(); got != "EL.X" {
		t.Errorf("qualified String = %q", got)
	}
}

func TestComputationString(t *testing.T) {
	c, _ := buildDiamond(t)
	s := c.String()
	if !strings.Contains(s, "4 events") || !strings.Contains(s, "EL1.E^0") {
		t.Errorf("String output missing content:\n%s", s)
	}
}

// Property: for random DAG computations, the temporal order is exactly the
// transitive closure of enable ∪ element order, checked against a
// Floyd-Warshall reference.
func TestQuickTemporalOrderMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		nelem := 1 + rng.Intn(3)
		b := NewBuilder()
		ids := make([]EventID, n)
		elemOf := make([]int, n)
		for i := 0; i < n; i++ {
			el := rng.Intn(nelem)
			elemOf[i] = el
			ids[i] = b.Event("EL"+string(rune('A'+el)), "E", nil)
		}
		// Forward-only enable edges keep the graph acyclic (element order
		// also runs forward in creation order).
		direct := make([][]bool, n)
		for i := range direct {
			direct[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					b.Enable(ids[i], ids[j])
					direct[i][j] = true
				}
			}
		}
		// Element order edges (consecutive same-element events).
		last := make(map[int]int)
		for i := 0; i < n; i++ {
			if prev, ok := last[elemOf[i]]; ok {
				direct[prev][i] = true
			}
			last[elemOf[i]] = i
		}
		c, err := b.Build()
		if err != nil {
			return false
		}
		// Floyd-Warshall closure.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if direct[i][k] && direct[k][j] {
						direct[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if c.Temporal(ids[i], ids[j]) != direct[i][j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestQuickConcurrencyRowsMatchConcurrent cross-checks the memoized
// per-event concurrency rows against the pairwise Concurrent predicate on
// random computations, and verifies the rows are built exactly once.
func TestQuickConcurrencyRowsMatchConcurrent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(9)
		b := NewBuilder()
		ids := make([]EventID, n)
		for i := 0; i < n; i++ {
			ids[i] = b.Event("EL"+string(rune('A'+rng.Intn(3))), "E", nil)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					b.Enable(ids[i], ids[j])
				}
			}
		}
		c, err := b.Build()
		if err != nil {
			return false
		}
		rows := c.Concurrency()
		if len(rows) != n {
			return false
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rows[i].Has(j) != c.Concurrent(ids[i], ids[j]) {
					return false
				}
			}
		}
		// Memoized: the same slice comes back on a second call.
		again := c.Concurrency()
		return &again[0] == &rows[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
