package core

import (
	"fmt"
	"sort"
)

// Port designates an event class of a member element as an "access hole"
// into a group: events outside the group may enable port events even
// though they cannot reach the group's interior.
type Port struct {
	Element string // element the port events occur at
	Class   string // event class designated as the port
}

// Universe holds the element and group structure of a specification: which
// elements exist, how they are clustered into groups, and which event
// classes are ports of which groups. It answers the paper's access and
// contained queries, which constrain legal enable edges.
//
// Per the paper (Section 4, footnote 4), all elements and groups are
// implicitly enclosed in a single surrounding root group.
type Universe struct {
	elements map[string]bool
	groups   map[string]*groupNode
	// memberOf[x] = groups that directly contain x (element or group name).
	memberOf map[string][]string
}

type groupNode struct {
	name    string
	members []string // element or group names (direct members)
	ports   []Port
}

// RootGroup is the name of the implicit group enclosing everything.
const RootGroup = "⊤"

// NewUniverse returns an empty universe containing only the implicit root
// group.
func NewUniverse() *Universe {
	u := &Universe{
		elements: make(map[string]bool),
		groups:   make(map[string]*groupNode),
		memberOf: make(map[string][]string),
	}
	u.groups[RootGroup] = &groupNode{name: RootGroup}
	return u
}

// AddElement declares an element. Elements not explicitly placed in a
// group become direct members of the root group.
func (u *Universe) AddElement(name string) {
	u.elements[name] = true
}

// HasElement reports whether the element is declared.
func (u *Universe) HasElement(name string) bool { return u.elements[name] }

// ElementNames returns all declared element names, sorted.
func (u *Universe) ElementNames() []string {
	out := make([]string, 0, len(u.elements))
	for e := range u.elements {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// AddGroup declares a group with the given direct members (element or group
// names). Members may be declared before or after the group itself;
// Validate checks referential integrity.
func (u *Universe) AddGroup(name string, members ...string) {
	g, ok := u.groups[name]
	if !ok {
		g = &groupNode{name: name}
		u.groups[name] = g
	}
	for _, m := range members {
		g.members = append(g.members, m)
		u.memberOf[m] = append(u.memberOf[m], name)
	}
}

// AddPort designates (element, class) as a port of the named group.
func (u *Universe) AddPort(group, element, class string) {
	g, ok := u.groups[group]
	if !ok {
		g = &groupNode{name: group}
		u.groups[group] = g
	}
	g.ports = append(g.ports, Port{Element: element, Class: class})
}

// HasGroup reports whether the group is declared (the root group always
// is).
func (u *Universe) HasGroup(name string) bool {
	_, ok := u.groups[name]
	return ok
}

// GroupNames returns all declared group names (excluding the root), sorted.
func (u *Universe) GroupNames() []string {
	out := make([]string, 0, len(u.groups))
	for g := range u.groups {
		if g != RootGroup {
			out = append(out, g)
		}
	}
	sort.Strings(out)
	return out
}

// Members returns the direct members of a group.
func (u *Universe) Members(group string) []string {
	if g, ok := u.groups[group]; ok {
		return g.members
	}
	return nil
}

// Ports returns the ports of a group.
func (u *Universe) Ports(group string) []Port {
	if g, ok := u.groups[group]; ok {
		return g.ports
	}
	return nil
}

// Validate checks referential integrity: every group member names a
// declared element or group, port elements are members (directly or
// transitively) of their group, and group containment is acyclic.
func (u *Universe) Validate() error {
	// Groups are visited in sorted name order so the first error — and
	// the group a containment cycle is reported through — is the same on
	// every run; downstream tools promise byte-identical diagnostics.
	names := make([]string, 0, len(u.groups))
	for name := range u.groups {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		g := u.groups[name]
		for _, m := range g.members {
			if !u.elements[m] && u.groups[m] == nil {
				return fmt.Errorf("core: group %s member %s is not a declared element or group", name, m)
			}
		}
		for _, p := range g.ports {
			if !u.elements[p.Element] {
				return fmt.Errorf("core: group %s port element %s is not declared", name, p.Element)
			}
			if name != RootGroup && !u.Contained(p.Element, name) {
				return fmt.Errorf("core: group %s port element %s is not contained in the group", name, p.Element)
			}
		}
	}
	// Acyclic containment: DFS from each group.
	state := make(map[string]int) // 0 unseen, 1 active, 2 done
	var visit func(g string) error
	visit = func(g string) error {
		switch state[g] {
		case 1:
			return fmt.Errorf("core: group containment cycle through %s", g)
		case 2:
			return nil
		}
		state[g] = 1
		if node := u.groups[g]; node != nil {
			for _, m := range node.members {
				if u.groups[m] != nil {
					if err := visit(m); err != nil {
						return err
					}
				}
			}
		}
		state[g] = 2
		return nil
	}
	for _, name := range names {
		if err := visit(name); err != nil {
			return err
		}
	}
	return nil
}

// directMember reports y ∈ G (direct membership), treating the implicit
// root group as containing every element and group that has no explicit
// parent.
func (u *Universe) directMember(y, g string) bool {
	if g == RootGroup {
		if len(u.memberOf[y]) == 0 {
			return true
		}
		return false
	}
	node, ok := u.groups[g]
	if !ok {
		return false
	}
	for _, m := range node.members {
		if m == y {
			return true
		}
	}
	return false
}

// Contained implements the paper's contained(X, G): X ∈ G or there is a
// group G' with X ∈ G' and contained(G', G).
func (u *Universe) Contained(x, g string) bool {
	return u.contained(x, g, make(map[string]bool))
}

func (u *Universe) contained(x, g string, seen map[string]bool) bool {
	if seen[x] {
		return false
	}
	seen[x] = true
	if u.directMember(x, g) {
		return true
	}
	for _, parent := range u.memberOf[x] {
		if u.contained(parent, g, seen) {
			return true
		}
	}
	// Everything is contained in the root group.
	if g == RootGroup {
		return true
	}
	return false
}

// Access implements the paper's access(X, Y): there exists a group G with
// Y ∈ G and contained(X, G). Intuitively, Y is visible from X when Y is a
// sibling in some group enclosing X, or global to X.
func (u *Universe) Access(x, y string) bool {
	// Candidate groups: those of which y is a direct member, plus the root
	// when y has no explicit parent.
	for _, g := range u.memberOf[y] {
		if u.Contained(x, g) {
			return true
		}
	}
	if len(u.memberOf[y]) == 0 {
		// y is a direct member of the root group; everything is contained
		// in the root.
		return true
	}
	return false
}

// MayEnable reports whether an event at element src, enabling an event of
// the given class at element dst, is legal under the group structure:
// access(src, dst), or the target class is a port of some group G with
// access(src, G).
func (u *Universe) MayEnable(src, dst, dstClass string) bool {
	if u.Access(src, dst) {
		return true
	}
	for name, g := range u.groups {
		for _, p := range g.ports {
			if p.Element == dst && (p.Class == dstClass || p.Class == "") && u.Access(src, name) {
				return true
			}
		}
	}
	return false
}
