package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
)

// Fingerprint returns a stable content hash of the computation: the
// SHA-256 of its events (element, class, occurrence index, parameters,
// thread labels) and direct enable edges. Two computations built from
// the same events and edges fingerprint identically across processes,
// which makes the fingerprint the computation half of every persistent
// store key; anything derivable from the computation (its temporal
// order, histories, lattice, verdicts) is covered by it.
//
// The fingerprint is memoized via Derived on first call, so callers must
// only request it after the computation has reached its final observable
// state — in particular after thread.Apply has labelled its events. All
// cache-consulting paths satisfy this: they run strictly after
// projection and thread labelling.
func Fingerprint(c *Computation) string {
	return c.Derived("core.fingerprint", func() any {
		h := sha256.New()
		var buf [binary.MaxVarintLen64]byte
		writeUint := func(v uint64) {
			n := binary.PutUvarint(buf[:], v)
			h.Write(buf[:n])
		}
		writeInt := func(v int64) {
			n := binary.PutVarint(buf[:], v)
			h.Write(buf[:n])
		}
		writeStr := func(s string) {
			writeUint(uint64(len(s)))
			h.Write([]byte(s))
		}
		writeUint(uint64(len(c.events)))
		for _, e := range c.events {
			writeStr(e.Element)
			writeStr(e.Class)
			writeUint(uint64(e.Seq))
			names := make([]string, 0, len(e.Params))
			for name := range e.Params {
				names = append(names, name)
			}
			sort.Strings(names)
			writeUint(uint64(len(names)))
			for _, name := range names {
				v := e.Params[name]
				writeStr(name)
				writeUint(uint64(v.Kind))
				switch v.Kind {
				case KindInt:
					writeInt(v.I)
				case KindString:
					writeStr(v.S)
				case KindBool:
					if v.B {
						writeUint(1)
					} else {
						writeUint(0)
					}
				}
			}
			// Thread labels are sorted so the fingerprint does not depend
			// on labelling order, only on the label set.
			tids := append([]string(nil), e.Threads...)
			sort.Strings(tids)
			writeUint(uint64(len(tids)))
			for _, tid := range tids {
				writeStr(tid)
			}
		}
		for _, targets := range c.enables {
			writeUint(uint64(len(targets)))
			for _, t := range targets {
				writeUint(uint64(t))
			}
		}
		return hex.EncodeToString(h.Sum(nil))
	}).(string)
}
