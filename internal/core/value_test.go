package core

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndString(t *testing.T) {
	tests := []struct {
		give Value
		want string
	}{
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Str("hi"), `"hi"`},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Value{}, "<none>"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("String(%#v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestValueIsZero(t *testing.T) {
	if !(Value{}).IsZero() {
		t.Error("zero Value should be IsZero")
	}
	if Int(0).IsZero() || Str("").IsZero() || Bool(false).IsZero() {
		t.Error("typed zero values are not IsZero")
	}
}

func TestValueEquality(t *testing.T) {
	if Int(1) != Int(1) || Str("a") != Str("a") || Bool(true) != Bool(true) {
		t.Error("same-kind same-value must compare equal")
	}
	if Int(1) == Int(2) || Int(0) == Bool(false) || Str("") == (Value{}) {
		t.Error("distinct values must compare unequal")
	}
}

func TestValueLess(t *testing.T) {
	tests := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(2), true},
		{Int(2), Int(1), false},
		{Int(1), Int(1), false},
		{Str("a"), Str("b"), true},
		{Bool(false), Bool(true), true},
		{Bool(true), Bool(false), false},
		{Int(99), Str(""), true}, // cross-kind: by kind
	}
	for _, tt := range tests {
		if got := tt.a.Less(tt.b); got != tt.want {
			t.Errorf("(%v).Less(%v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

// Property: Less is a strict weak ordering on ints (irreflexive,
// asymmetric, transitive on sampled triples).
func TestValueLessQuick(t *testing.T) {
	f := func(a, b, c int64) bool {
		va, vb, vc := Int(a), Int(b), Int(c)
		if va.Less(va) {
			return false
		}
		if va.Less(vb) && vb.Less(va) {
			return false
		}
		if va.Less(vb) && vb.Less(vc) && !va.Less(vc) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParamsCloneIndependent(t *testing.T) {
	p := Params{"x": Int(1)}
	q := p.Clone()
	q["x"] = Int(2)
	if p["x"] != Int(1) {
		t.Error("Clone must not alias")
	}
	var nilP Params
	if nilP.Clone() != nil {
		t.Error("nil Params clones to nil")
	}
}

func TestParamsStringDeterministic(t *testing.T) {
	p := Params{"b": Int(2), "a": Int(1), "c": Str("x")}
	want := `(a=1, b=2, c="x")`
	for i := 0; i < 10; i++ {
		if got := p.String(); got != want {
			t.Fatalf("Params.String = %q, want %q", got, want)
		}
	}
	if got := (Params{}).String(); got != "" {
		t.Errorf("empty Params.String = %q, want empty", got)
	}
}
