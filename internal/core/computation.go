package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gem/internal/order"
)

// Computation is a GEM computation: a finite set of events together with
// the enable relation, the element order (events at one element are totally
// ordered by their Seq), and the derived temporal order — the transitive
// closure of enable ∪ element-order, which Build verifies is irreflexive.
type Computation struct {
	events  []*Event
	byElem  map[string][]EventID // events per element, ordered by Seq
	enables [][]EventID          // direct enable edges, adjacency by source

	reach []order.Bitset // strict temporal reachability (temporal order)
	preds []order.Bitset // inverse of reach

	derivedMu sync.Mutex
	derived   map[string]any
}

// Derived returns the derived datum cached under key, building it with
// build on first request. A computation is immutable once built, so
// derived data (e.g. its history lattice) is computed at most once and
// shared by every checker that needs it; the cache lives and dies with
// the computation.
//
// Contract: safe for concurrent use, and build runs at most once per
// key — ever. The per-computation mutex is held across the build, so
// concurrent callers for the same key block until the single build
// finishes and then all observe the identical value; no caller ever
// runs a duplicate build whose result is discarded. The same mutex
// serializes builds for different keys on one computation, so build
// must be a pure function of the (immutable) computation: it must not
// call Derived on the same computation, and it must not block on work
// that does. TestDerivedSingleBuild pins this contract under -race.
func (c *Computation) Derived(key string, build func() any) any {
	c.derivedMu.Lock()
	defer c.derivedMu.Unlock()
	if v, ok := c.derived[key]; ok {
		return v
	}
	if c.derived == nil {
		c.derived = make(map[string]any)
	}
	v := build()
	c.derived[key] = v
	return v
}

// NumEvents returns the number of events.
func (c *Computation) NumEvents() int { return len(c.events) }

// Event returns the event with the given id.
func (c *Computation) Event(id EventID) *Event { return c.events[int(id)] }

// Events returns all events in id order. The slice must not be modified.
func (c *Computation) Events() []*Event { return c.events }

// EventsAt returns the events at the named element in element order.
func (c *Computation) EventsAt(element string) []EventID { return c.byElem[element] }

// Elements returns the names of all elements with at least one event,
// sorted.
func (c *Computation) Elements() []string {
	out := make([]string, 0, len(c.byElem))
	for name := range c.byElem {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// EventsOf returns the ids of events matching the class reference, in id
// order.
func (c *Computation) EventsOf(ref ClassRef) []EventID {
	var out []EventID
	for _, e := range c.events {
		if ref.Matches(e) {
			out = append(out, e.ID)
		}
	}
	return out
}

// EnablesDirect reports whether a directly enables b (a ⊳ b).
func (c *Computation) EnablesDirect(a, b EventID) bool {
	for _, t := range c.enables[int(a)] {
		if t == b {
			return true
		}
	}
	return false
}

// Enabled returns the direct enable successors of a. The slice must not be
// modified.
func (c *Computation) Enabled(a EventID) []EventID { return c.enables[int(a)] }

// Enablers returns the ids of events that directly enable b.
func (c *Computation) Enablers(b EventID) []EventID {
	var out []EventID
	for src, targets := range c.enables {
		for _, t := range targets {
			if t == b {
				out = append(out, EventID(src))
			}
		}
	}
	return out
}

// ElemBefore reports whether a precedes b in the element order (same
// element, lower occurrence index).
func (c *Computation) ElemBefore(a, b EventID) bool {
	ea, eb := c.events[int(a)], c.events[int(b)]
	return ea.Element == eb.Element && ea.Seq < eb.Seq
}

// Temporal reports whether a strictly precedes b in the temporal order
// (a ⇒ b).
func (c *Computation) Temporal(a, b EventID) bool {
	return c.reach[int(a)].Has(int(b))
}

// Concurrent reports whether a and b are potentially concurrent: distinct
// and unordered by the temporal order.
func (c *Computation) Concurrent(a, b EventID) bool {
	return a != b && !c.Temporal(a, b) && !c.Temporal(b, a)
}

// Concurrency returns per-event concurrency rows: row e has bit f set
// iff e and f are potentially concurrent (distinct and temporally
// unordered). Memoized on the computation; the returned slice and sets
// must not be modified. Together with order.IsClique it decides whether
// an event set is pairwise concurrent in O(|set| × words) instead of
// O(|set|²) Temporal queries.
func (c *Computation) Concurrency() []order.Bitset {
	return c.Derived("core.concurrency", func() any {
		n := len(c.events)
		rows := make([]order.Bitset, n)
		for e := 0; e < n; e++ {
			row := order.NewBitset(n)
			row.Fill()
			row.Clear(e)
			row.AndNotWith(c.reach[e])
			row.AndNotWith(c.preds[e])
			rows[e] = row
		}
		return rows
	}).([]order.Bitset)
}

// Reach returns the strict temporal reachability sets (indexable by event
// id). The returned slice and sets must not be modified.
func (c *Computation) Reach() []order.Bitset { return c.reach }

// Preds returns the strict temporal predecessor sets. The returned slice
// and sets must not be modified.
func (c *Computation) Preds() []order.Bitset { return c.preds }

// FullHistory returns the set of all event ids (the complete computation as
// a history).
func (c *Computation) FullHistory() order.Bitset {
	h := order.NewBitset(len(c.events))
	for i := range c.events {
		h.Set(i)
	}
	return h
}

// String renders a summary of the computation for diagnostics.
func (c *Computation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "computation: %d events\n", len(c.events))
	for _, e := range c.events {
		fmt.Fprintf(&sb, "  [%d] %s", e.ID, e)
		if len(c.enables[int(e.ID)]) > 0 {
			sb.WriteString(" |>")
			for _, t := range c.enables[int(e.ID)] {
				fmt.Fprintf(&sb, " %d", t)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Builder assembles a Computation. Events are appended per element in
// element order; enable edges may reference any previously created events.
type Builder struct {
	events  []*Event
	byElem  map[string][]EventID
	enables [][2]EventID
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{byElem: make(map[string][]EventID)}
}

// Event appends a new event at the named element with the given class and
// parameters, returning its id. Successive events at the same element are
// ordered by creation order (their Seq is the per-element occurrence
// index).
func (b *Builder) Event(element, class string, params Params) EventID {
	id := EventID(len(b.events))
	ev := &Event{
		ID:      id,
		Element: element,
		Class:   class,
		Seq:     len(b.byElem[element]),
		Params:  params.Clone(),
	}
	b.events = append(b.events, ev)
	b.byElem[element] = append(b.byElem[element], id)
	return id
}

// Enable records src ⊳ dst (src directly enables dst).
func (b *Builder) Enable(src, dst EventID) {
	b.enables = append(b.enables, [2]EventID{src, dst})
}

// Thread labels the event with a thread-instance identifier.
func (b *Builder) Thread(id EventID, tid string) {
	ev := b.events[int(id)]
	if !ev.HasThread(tid) {
		ev.Threads = append(ev.Threads, tid)
	}
}

// NumEvents returns the number of events created so far.
func (b *Builder) NumEvents() int { return len(b.events) }

// Build derives the temporal order and validates that it is a strict
// partial order (irreflexive ⇔ the combined graph is acyclic). On success
// the builder should not be reused.
func (b *Builder) Build() (*Computation, error) {
	n := len(b.events)
	dag := order.NewDAG(n)
	adj := make([][]EventID, n)
	for _, e := range b.enables {
		src, dst := int(e[0]), int(e[1])
		if src < 0 || src >= n || dst < 0 || dst >= n {
			return nil, fmt.Errorf("core: enable edge (%d,%d) references unknown event", src, dst)
		}
		if src == dst {
			return nil, fmt.Errorf("core: event %d cannot enable itself", src)
		}
		dag.AddEdge(src, dst)
		if !containsID(adj[src], e[1]) {
			adj[src] = append(adj[src], e[1])
		}
	}
	// Element order: consecutive events at the same element.
	for _, ids := range b.byElem {
		for i := 1; i < len(ids); i++ {
			dag.AddEdge(int(ids[i-1]), int(ids[i]))
		}
	}
	reach, err := dag.TransitiveClosure()
	if err != nil {
		return nil, fmt.Errorf("core: temporal order is not irreflexive: %w", err)
	}
	return &Computation{
		events:  b.events,
		byElem:  b.byElem,
		enables: adj,
		reach:   reach,
		preds:   order.Invert(reach),
	}, nil
}

func containsID(xs []EventID, x EventID) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
