package core

import (
	"strings"
	"testing"
)

// paperUniverse builds the Section 4 example:
//
//	ELEMENTS EL1..EL6
//	G1 = GROUP(EL2, EL3)
//	G2 = GROUP(EL4, EL5)
//	G3 = GROUP(EL3, EL4)
//	G4 = GROUP(EL1)
//
// EL6 belongs to no group (hence is global to everything).
func paperUniverse(t *testing.T) *Universe {
	t.Helper()
	u := NewUniverse()
	for _, e := range []string{"EL1", "EL2", "EL3", "EL4", "EL5", "EL6"} {
		u.AddElement(e)
	}
	u.AddGroup("G1", "EL2", "EL3")
	u.AddGroup("G2", "EL4", "EL5")
	u.AddGroup("G3", "EL3", "EL4")
	u.AddGroup("G4", "EL1")
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	return u
}

// TestPaperAccessTable reproduces the paper's Section 4 allowed-enable
// table exactly (experiment E1).
func TestPaperAccessTable(t *testing.T) {
	u := paperUniverse(t)
	want := map[string][]string{
		"EL1": {"EL1", "EL6"},
		"EL2": {"EL2", "EL3", "EL6"},
		"EL3": {"EL2", "EL3", "EL4", "EL6"},
		"EL4": {"EL3", "EL4", "EL5", "EL6"},
		"EL5": {"EL4", "EL5", "EL6"},
		"EL6": {"EL6"},
	}
	elems := []string{"EL1", "EL2", "EL3", "EL4", "EL5", "EL6"}
	for _, src := range elems {
		allowed := make(map[string]bool)
		for _, dst := range want[src] {
			allowed[dst] = true
		}
		for _, dst := range elems {
			got := u.Access(src, dst)
			if got != allowed[dst] {
				t.Errorf("access(%s, %s) = %v, want %v", src, dst, got, allowed[dst])
			}
			// With no ports declared, MayEnable coincides with Access.
			if u.MayEnable(src, dst, "E") != got {
				t.Errorf("MayEnable(%s, %s) disagrees with Access", src, dst)
			}
		}
	}
}

func TestAccessGroupTargets(t *testing.T) {
	u := paperUniverse(t)
	// EL2 is contained in G1, so it can access G1 itself (G1 is a member of
	// the root group... G1 has no parent, so it is global).
	if !u.Access("EL2", "G1") {
		t.Error("EL2 should access its own (global) group G1")
	}
	// G1 has no parent, so it is global to everything.
	if !u.Access("EL5", "G1") {
		t.Error("top-level groups are global")
	}
}

func TestPortsOpenAccessHoles(t *testing.T) {
	// The paper's data-abstraction example: Abstraction =
	// GROUP(Datum, Oper) with PORTS(Oper.Start). Outside events may enable
	// only Oper.Start, not Datum events or other Oper classes.
	u := NewUniverse()
	for _, e := range []string{"Datum", "Oper", "Client"} {
		u.AddElement(e)
	}
	u.AddGroup("Abstraction", "Datum", "Oper")
	u.AddPort("Abstraction", "Oper", "Start")
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}

	if u.Access("Client", "Datum") {
		t.Error("Client must not access Datum inside the group")
	}
	if u.MayEnable("Client", "Datum", "Write") {
		t.Error("Client must not enable Datum events")
	}
	if !u.MayEnable("Client", "Oper", "Start") {
		t.Error("Client must be able to enable the port class Oper.Start")
	}
	if u.MayEnable("Client", "Oper", "Finish") {
		t.Error("non-port classes at the port element stay protected")
	}
	// Members inside the group retain full mutual access.
	if !u.MayEnable("Datum", "Oper", "Finish") {
		t.Error("group-internal access must be unrestricted")
	}
}

func TestPortWildcardClass(t *testing.T) {
	u := NewUniverse()
	u.AddElement("In")
	u.AddElement("Out")
	u.AddGroup("Box", "In")
	u.AddPort("Box", "In", "") // any class at In is a port
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if !u.MayEnable("Out", "In", "Whatever") {
		t.Error("wildcard port should admit any class")
	}
}

func TestNestedGroups(t *testing.T) {
	// Outer contains Inner contains EL; Sibling is outside Outer.
	u := NewUniverse()
	for _, e := range []string{"EL", "Peer", "Sibling"} {
		u.AddElement(e)
	}
	u.AddGroup("Inner", "EL")
	u.AddGroup("Outer", "Inner", "Peer")
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}

	if !u.Contained("EL", "Inner") || !u.Contained("EL", "Outer") {
		t.Error("containment must be transitive")
	}
	if u.Contained("Peer", "Inner") {
		t.Error("Peer is not in Inner")
	}
	if !u.Contained("EL", RootGroup) {
		t.Error("everything is contained in the root group")
	}
	// EL can access Peer: Peer ∈ Outer and EL is contained in Outer.
	if !u.Access("EL", "Peer") {
		t.Error("inner element should access outer-group siblings")
	}
	// Peer cannot access EL: EL ∈ Inner only, and Peer is not in Inner.
	if u.Access("Peer", "EL") {
		t.Error("outer element must not reach inside a nested group")
	}
	// Sibling (global, no group) cannot access EL, but EL accesses Sibling.
	if u.Access("Sibling", "EL") {
		t.Error("global element must not reach inside groups")
	}
	if !u.Access("EL", "Sibling") {
		t.Error("ungrouped elements are global, accessible to all")
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("unknown member", func(t *testing.T) {
		u := NewUniverse()
		u.AddGroup("G", "Ghost")
		if err := u.Validate(); err == nil || !strings.Contains(err.Error(), "Ghost") {
			t.Errorf("want unknown-member error, got %v", err)
		}
	})
	t.Run("port element undeclared", func(t *testing.T) {
		u := NewUniverse()
		u.AddGroup("G")
		u.AddPort("G", "Ghost", "Start")
		if err := u.Validate(); err == nil {
			t.Error("want undeclared-port-element error")
		}
	})
	t.Run("port element outside group", func(t *testing.T) {
		u := NewUniverse()
		u.AddElement("A")
		u.AddElement("B")
		u.AddGroup("G", "A")
		u.AddPort("G", "B", "Start")
		if err := u.Validate(); err == nil {
			t.Error("want port-not-contained error")
		}
	})
	t.Run("containment cycle", func(t *testing.T) {
		u := NewUniverse()
		u.AddGroup("G1", "G2")
		u.AddGroup("G2", "G1")
		if err := u.Validate(); err == nil || !strings.Contains(err.Error(), "cycle") {
			t.Errorf("want cycle error, got %v", err)
		}
	})
}

func TestUniverseAccessors(t *testing.T) {
	u := paperUniverse(t)
	if !u.HasElement("EL1") || u.HasElement("EL9") {
		t.Error("HasElement wrong")
	}
	if !u.HasGroup("G1") || u.HasGroup("G9") {
		t.Error("HasGroup wrong")
	}
	if got := len(u.ElementNames()); got != 6 {
		t.Errorf("ElementNames count = %d", got)
	}
	if got := len(u.GroupNames()); got != 4 {
		t.Errorf("GroupNames count = %d (root must be excluded)", got)
	}
	if got := u.Members("G1"); len(got) != 2 {
		t.Errorf("Members(G1) = %v", got)
	}
	if got := u.Members("nope"); got != nil {
		t.Errorf("Members of unknown group = %v", got)
	}
	if got := u.Ports("G1"); got != nil {
		t.Errorf("Ports(G1) = %v, want none", got)
	}
}

// TestOverlappingGroups exercises the paper's claim that groups may
// overlap: EL3 belongs to both G1 and G3 and mediates between them.
func TestOverlappingGroups(t *testing.T) {
	u := paperUniverse(t)
	// EL3 accesses members of both of its groups.
	if !u.Access("EL3", "EL2") || !u.Access("EL3", "EL4") {
		t.Error("overlap member must access both groups' members")
	}
	// But EL2 (only in G1) cannot reach EL4 (only in G2/G3).
	if u.Access("EL2", "EL4") {
		t.Error("non-overlapping members must stay separated")
	}
}
