package core

import "fmt"

// EventID identifies an event within one Computation. IDs are dense,
// starting at 0, in builder insertion order.
type EventID int

// NoEvent is the sentinel for "no event".
const NoEvent EventID = -1

// Event is a unique atomic occurrence within a computation. Per the paper,
// every event belongs to exactly one element, carries data parameters, and
// may be labelled with thread identifiers.
type Event struct {
	ID      EventID
	Element string   // name of the element the event occurs at
	Class   string   // event class name within that element (e.g. "Assign")
	Seq     int      // occurrence index at its element (0-based); fixes the element order
	Params  Params   // data parameters
	Threads []string // thread-instance identifiers labelling this event
}

// Name renders the paper's Element.Class^i notation.
func (e *Event) Name() string {
	return fmt.Sprintf("%s.%s^%d", e.Element, e.Class, e.Seq)
}

// String renders the event with its parameters.
func (e *Event) String() string {
	return e.Name() + e.Params.String()
}

// HasThread reports whether the event is labelled with the given thread
// instance identifier.
func (e *Event) HasThread(tid string) bool {
	for _, t := range e.Threads {
		if t == tid {
			return true
		}
	}
	return false
}

// ClassRef names an event class, optionally qualified by the element it
// occurs at: "db.control.StartRead" is {Element: "db.control", Class:
// "StartRead"}; an unqualified reference {Element: "", Class: "Assign"}
// matches Assign events at any element.
type ClassRef struct {
	Element string
	Class   string
}

// Ref builds a ClassRef; pass "" for element to match any element.
func Ref(element, class string) ClassRef { return ClassRef{Element: element, Class: class} }

// Matches reports whether the event belongs to the referenced class.
func (r ClassRef) Matches(e *Event) bool {
	if r.Class != "" && r.Class != e.Class {
		return false
	}
	return r.Element == "" || r.Element == e.Element
}

// String renders the reference.
func (r ClassRef) String() string {
	if r.Element == "" {
		return r.Class
	}
	return r.Element + "." + r.Class
}
