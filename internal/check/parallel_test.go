package check

import (
	"runtime"
	"testing"

	"gem/internal/history"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/thread"
	"gem/internal/verify"
)

// withProcs raises GOMAXPROCS so the parallel engine actually fans out
// even on a single-core host.
func withProcs(t *testing.T, n int) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(prev) })
}

// TestMatrixParallelDeterminism: every readers-writers and bounded-buffer
// cell reports the same verdict and run count with the sequential engine
// and with the streaming parallel engine (S3).
func TestMatrixParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive matrix cells are slow; skipped in -short mode")
	}
	withProcs(t, 4)
	for _, s := range Matrix() {
		if s.Problem != "readers-writers" && s.Problem != "bounded-buffer" {
			continue
		}
		s := s
		t.Run(s.Problem+"/"+string(s.Language), func(t *testing.T) {
			seq := s.Run(Options{Parallelism: 1})
			par := s.Run(Options{Parallelism: 4})
			if seq.Verified != par.Verified {
				t.Fatalf("verdicts differ: sequential %v (%v), parallel %v (%v)",
					seq.Verified, seq.Err, par.Verified, par.Err)
			}
			if !seq.Verified {
				t.Fatalf("cell unexpectedly failing: %v", seq.Err)
			}
			if seq.Runs != par.Runs {
				t.Errorf("run counts differ: sequential %d, parallel %d", seq.Runs, par.Runs)
			}
		})
	}
}

// TestRefutationParallelDeterminism: the failing mutants are refuted at
// the same (lowest) computation index, with the same error, at any
// parallelism (S3).
func TestRefutationParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("mutant explorations are slow; skipped in -short mode")
	}
	withProcs(t, 4)
	for _, r := range Refutations() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			problem, comps, corr, err := r.Build()
			if err != nil {
				t.Fatal(err)
			}
			seqIdx, seqRes := verify.CheckAll(problem, comps, corr, logic.CheckOptions{Parallelism: 1})
			if seqIdx < 0 {
				t.Fatal("mutant not refuted sequentially")
			}
			for trial := 0; trial < 3; trial++ {
				parIdx, parRes := verify.CheckAll(problem, comps, corr, logic.CheckOptions{Parallelism: 4})
				if parIdx != seqIdx {
					t.Fatalf("first-failure index differs: sequential %d, parallel %d", seqIdx, parIdx)
				}
				if seqRes.Error().Error() != parRes.Error().Error() {
					t.Fatalf("counterexamples differ:\nsequential: %v\nparallel:   %v",
						seqRes.Error(), parRes.Error())
				}
			}
		})
	}
}

// TestLegalParallelDeterminism: legal.Check fans restrictions out to a
// pool; the violation list must be identical to the sequential one, and
// one legality check must enumerate the history lattice at most once
// even though several restrictions consult it.
func TestLegalParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("mutant exploration is slow; skipped in -short mode")
	}
	withProcs(t, 4)
	r := Refutations()[0] // writers-priority monitor vs readers-priority spec
	problem, comps, corr, err := r.Build()
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := verify.CheckAll(problem, comps, corr, logic.CheckOptions{})
	if idx < 0 {
		t.Fatal("mutant not refuted")
	}
	check := func(par int) []string {
		// Project afresh so each check starts with a cold lattice cache.
		proj, err := verify.Project(comps[idx], corr)
		if err != nil {
			t.Fatal(err)
		}
		thread.Apply(proj.Comp, problem.Threads()...)
		before := history.LatticeBuilds()
		res := legal.Check(problem, proj.Comp, legal.Options{Check: logic.CheckOptions{Parallelism: par}})
		if d := history.LatticeBuilds() - before; d > 1 {
			t.Errorf("par %d: lattice enumerated %d times in one legality check, want at most 1", par, d)
		}
		var out []string
		for _, v := range res.Violations {
			out = append(out, v.String())
		}
		return out
	}
	seq := check(1)
	if len(seq) == 0 {
		t.Fatal("expected violations on the refuted computation")
	}
	par := check(4)
	if len(seq) != len(par) {
		t.Fatalf("violation counts differ: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Errorf("violation %d differs:\nsequential: %s\nparallel:   %s", i, seq[i], par[i])
		}
	}
}
