package check

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"gem/internal/logic"
	"gem/internal/verify"
)

// Spec-level counter-verification of the lattice fixpoint engine: every
// shipped problem specification, checked over its exhaustively explored
// solutions and over the failing mutants, must report identical verdicts
// under the sequence and lattice engines, and every engine's
// counterexample must independently falsify its restriction. Witness
// identity is NOT required: the lattice engine extracts its own failing
// sequence from the history lattice, while seq reports the first one in
// enumeration order.

// TestMatrixEngineAgreement runs all nine matrix cells under the seq,
// lattice and auto engines and requires the same verdict and run count
// from each.
func TestMatrixEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive matrix cells are slow; skipped in -short mode")
	}
	for _, s := range Matrix() {
		s := s
		t.Run(s.Problem+"/"+string(s.Language), func(t *testing.T) {
			seq := s.Run(Options{Parallelism: 1, Engine: logic.EngineSeq})
			if !seq.Verified {
				t.Fatalf("cell unexpectedly failing under seq engine: %v", seq.Err)
			}
			for _, engine := range []logic.Engine{logic.EngineLattice, logic.EngineAuto} {
				cell := s.Run(Options{Parallelism: 1, Engine: engine})
				if cell.Verified != seq.Verified {
					t.Errorf("engine %s verdict %v, seq %v (%v)", engine, cell.Verified, seq.Verified, cell.Err)
				}
				if cell.Runs != seq.Runs {
					t.Errorf("engine %s checked %d runs, seq %d", engine, cell.Runs, seq.Runs)
				}
			}
		})
	}
}

// TestRefutationEngineAgreement: the failing mutants are refuted at the
// same computation index, blaming the same restrictions, under every
// engine — and each engine's counterexample is genuine: its witness
// falsifies the restriction formula (Counterexample.Verify).
func TestRefutationEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("mutant explorations are slow; skipped in -short mode")
	}
	for _, r := range Refutations() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			problem, comps, corr, err := r.Build()
			if err != nil {
				t.Fatal(err)
			}
			seqIdx, seqRes := verify.CheckAll(problem, comps, corr, logic.CheckOptions{Engine: logic.EngineSeq})
			if seqIdx < 0 {
				t.Fatal("mutant not refuted under seq engine")
			}
			for _, engine := range []logic.Engine{logic.EngineSeq, logic.EngineLattice, logic.EngineAuto} {
				idx, res := verify.CheckAll(problem, comps, corr, logic.CheckOptions{Engine: engine})
				if idx != seqIdx {
					t.Fatalf("engine %s refutes at index %d, seq at %d", engine, idx, seqIdx)
				}
				if got, want := blamed(res), blamed(seqRes); got != want {
					t.Errorf("engine %s blames %q, seq blames %q", engine, got, want)
				}
				for _, v := range res.Legality.Violations {
					if err := v.Cx.Verify(); err != nil {
						t.Errorf("engine %s reported a bogus counterexample for %s: %v",
							engine, v.Restriction, err)
					}
				}
			}
		})
	}
}

// blamed renders the restriction-level blame of a refutation — which
// restrictions of which owners failed — without the witness text, which
// legitimately differs across engines.
func blamed(res verify.Result) string {
	var parts []string
	for _, v := range res.Legality.Violations {
		parts = append(parts, fmt.Sprintf("%s:%s/%s", v.Kind, v.Owner, v.Restriction))
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
