package check

import (
	"testing"

	"gem/internal/logic"
	"gem/internal/verify"
)

// Spec-level counter-verification of the lattice fixpoint engine: every
// shipped problem specification, checked over its exhaustively explored
// solutions and over the failing mutants, must report identical verdicts
// and identical counterexamples under the sequence and lattice engines.

// TestMatrixEngineAgreement runs all nine matrix cells under the seq,
// lattice and auto engines and requires the same verdict and run count
// from each.
func TestMatrixEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive matrix cells are slow; skipped in -short mode")
	}
	for _, s := range Matrix() {
		s := s
		t.Run(s.Problem+"/"+string(s.Language), func(t *testing.T) {
			seq := s.Run(Options{Parallelism: 1, Engine: logic.EngineSeq})
			if !seq.Verified {
				t.Fatalf("cell unexpectedly failing under seq engine: %v", seq.Err)
			}
			for _, engine := range []logic.Engine{logic.EngineLattice, logic.EngineAuto} {
				cell := s.Run(Options{Parallelism: 1, Engine: engine})
				if cell.Verified != seq.Verified {
					t.Errorf("engine %s verdict %v, seq %v (%v)", engine, cell.Verified, seq.Verified, cell.Err)
				}
				if cell.Runs != seq.Runs {
					t.Errorf("engine %s checked %d runs, seq %d", engine, cell.Runs, seq.Runs)
				}
			}
		})
	}
}

// TestRefutationEngineAgreement: the failing mutants are refuted at the
// same computation index with the same rendered counterexample under
// every engine.
func TestRefutationEngineAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("mutant explorations are slow; skipped in -short mode")
	}
	for _, r := range Refutations() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			problem, comps, corr, err := r.Build()
			if err != nil {
				t.Fatal(err)
			}
			seqIdx, seqRes := verify.CheckAll(problem, comps, corr, logic.CheckOptions{Engine: logic.EngineSeq})
			if seqIdx < 0 {
				t.Fatal("mutant not refuted under seq engine")
			}
			for _, engine := range []logic.Engine{logic.EngineLattice, logic.EngineAuto} {
				idx, res := verify.CheckAll(problem, comps, corr, logic.CheckOptions{Engine: engine})
				if idx != seqIdx {
					t.Fatalf("engine %s refutes at index %d, seq at %d", engine, idx, seqIdx)
				}
				if res.Error().Error() != seqRes.Error().Error() {
					t.Errorf("counterexamples differ under %s:\nseq:     %v\nengine:  %v",
						engine, seqRes.Error(), res.Error())
				}
			}
		})
	}
}
