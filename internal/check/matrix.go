// Package check assembles the paper's verification case studies into
// runnable scenarios: the full language × problem matrix of Section 11
// (Monitor, CSP, and ADA solutions to the One-Slot Buffer, the Bounded
// Buffer, and the Reader's-Priority Readers/Writers problem), each
// verified with the Section 9 sat methodology over an exhaustive
// exploration. cmd/gemverify prints the matrix; the benchmark harness
// reuses the same scenarios.
package check

import (
	"fmt"
	"io"
	"time"

	"gem/internal/ada"
	"gem/internal/core"
	"gem/internal/csp"
	"gem/internal/logic"
	"gem/internal/monitor"
	"gem/internal/problems/boundedbuf"
	"gem/internal/problems/oneslot"
	"gem/internal/problems/rw"
	"gem/internal/spec"
	"gem/internal/verify"
)

// Language names a concurrency primitive.
type Language string

// The three language primitives the paper describes.
const (
	Monitor Language = "monitor"
	CSP     Language = "csp"
	Ada     Language = "ada"
)

// Languages lists all three.
func Languages() []Language { return []Language{Monitor, CSP, Ada} }

// Scenario is one cell of the verification matrix: explore every
// computation of a solution and check it against its problem spec.
type Scenario struct {
	Problem  string
	Language Language
	// Build returns the problem spec, the explored computations, and the
	// correspondence.
	Build func() (*spec.Spec, []*core.Computation, verify.Correspondence, error)
}

// Cell is the outcome of running one scenario.
type Cell struct {
	Scenario Scenario
	Runs     int
	Verified bool
	Err      error
	Elapsed  time.Duration
}

// Run executes the scenario.
func (s Scenario) Run() Cell {
	start := time.Now()
	problem, comps, corr, err := s.Build()
	if err != nil {
		return Cell{Scenario: s, Err: err, Elapsed: time.Since(start)}
	}
	idx, res := verify.CheckAll(problem, comps, corr, logic.CheckOptions{})
	cell := Cell{Scenario: s, Runs: len(comps), Elapsed: time.Since(start)}
	if idx >= 0 {
		cell.Err = fmt.Errorf("computation %d: %w", idx, res.Error())
		return cell
	}
	cell.Verified = true
	return cell
}

// Matrix returns the nine scenarios of the paper's Section 11 claim.
func Matrix() []Scenario {
	var out []Scenario
	for _, lang := range Languages() {
		out = append(out, oneslotScenario(lang), boundedbufScenario(lang), rwScenario(lang))
	}
	return out
}

func exploreMonitor(p *monitor.Program) ([]*core.Computation, error) {
	runs, truncated, err := monitor.Explore(p, monitor.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		return nil, err
	}
	if truncated {
		return nil, fmt.Errorf("check: monitor exploration truncated")
	}
	var comps []*core.Computation
	for i, r := range runs {
		if r.Deadlock {
			return nil, fmt.Errorf("check: monitor run %d deadlocked", i)
		}
		comps = append(comps, r.Comp)
	}
	return comps, nil
}

func exploreCSP(p *csp.Program) ([]*core.Computation, error) {
	runs, truncated, err := csp.Explore(p, csp.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		return nil, err
	}
	if truncated {
		return nil, fmt.Errorf("check: csp exploration truncated")
	}
	var comps []*core.Computation
	for i, r := range runs {
		if r.Deadlock {
			return nil, fmt.Errorf("check: csp run %d deadlocked", i)
		}
		comps = append(comps, r.Comp)
	}
	return comps, nil
}

func exploreAda(p *ada.Program) ([]*core.Computation, error) {
	runs, truncated, err := ada.Explore(p, ada.ExploreOptions{MaxRuns: 60000})
	if err != nil {
		return nil, err
	}
	if truncated {
		return nil, fmt.Errorf("check: ada exploration truncated")
	}
	var comps []*core.Computation
	for i, r := range runs {
		if r.Deadlock {
			return nil, fmt.Errorf("check: ada run %d deadlocked", i)
		}
		comps = append(comps, r.Comp)
	}
	return comps, nil
}

func oneslotScenario(lang Language) Scenario {
	w := oneslot.Workload{Producers: 1, Consumers: 1, ItemsPerProducer: 2}
	return Scenario{Problem: "one-slot-buffer", Language: lang,
		Build: func() (*spec.Spec, []*core.Computation, verify.Correspondence, error) {
			problem, err := oneslot.ProblemSpec(w)
			if err != nil {
				return nil, nil, verify.Correspondence{}, err
			}
			switch lang {
			case Monitor:
				comps, err := exploreMonitor(oneslot.NewMonitorProgram(w))
				return problem, comps, oneslot.MonitorCorrespondence(), err
			case CSP:
				comps, err := exploreCSP(oneslot.NewCSPProgram(w))
				return problem, comps, oneslot.CSPCorrespondence(w), err
			default:
				comps, err := exploreAda(oneslot.NewAdaProgram(w))
				return problem, comps, oneslot.AdaCorrespondence(), err
			}
		}}
}

func boundedbufScenario(lang Language) Scenario {
	w := boundedbuf.Workload{Producers: 2, Consumers: 1, ItemsPerProducer: 1, Capacity: 2}
	return Scenario{Problem: "bounded-buffer", Language: lang,
		Build: func() (*spec.Spec, []*core.Computation, verify.Correspondence, error) {
			problem, err := boundedbuf.ProblemSpec(w)
			if err != nil {
				return nil, nil, verify.Correspondence{}, err
			}
			switch lang {
			case Monitor:
				comps, err := exploreMonitor(boundedbuf.NewMonitorProgram(w))
				return problem, comps, boundedbuf.MonitorCorrespondence(w.Capacity), err
			case CSP:
				comps, err := exploreCSP(boundedbuf.NewCSPProgram(w))
				return problem, comps, boundedbuf.CSPCorrespondence(w), err
			default:
				comps, err := exploreAda(boundedbuf.NewAdaProgram(w))
				return problem, comps, boundedbuf.AdaCorrespondence(), err
			}
		}}
}

func rwScenario(lang Language) Scenario {
	w := rw.Workload{Readers: 2, Writers: 1}
	clients := []string{"r1", "r2", "w1"}
	return Scenario{Problem: "readers-writers", Language: lang,
		Build: func() (*spec.Spec, []*core.Computation, verify.Correspondence, error) {
			problem, err := rw.ProblemSpec(clients, true)
			if err != nil {
				return nil, nil, verify.Correspondence{}, err
			}
			switch lang {
			case Monitor:
				comps, err := exploreMonitor(rw.NewProgram(rw.ReadersPriority, w))
				return problem, comps, rw.MonitorCorrespondence(), err
			case CSP:
				comps, err := exploreCSP(rw.NewCSPProgram(w))
				return problem, comps, rw.CSPCorrespondence(w), err
			default:
				comps, err := exploreAda(rw.NewAdaProgram(w))
				return problem, comps, rw.AdaCorrespondence(), err
			}
		}}
}

// RunMatrix executes every scenario and prints a table; it returns an
// error if any cell fails.
func RunMatrix(w io.Writer) error {
	fmt.Fprintf(w, "%-18s %-9s %9s %9s  %s\n", "PROBLEM", "LANGUAGE", "RUNS", "TIME", "RESULT")
	var firstErr error
	for _, s := range Matrix() {
		cell := s.Run()
		result := "verified"
		if !cell.Verified {
			result = "FAILED: " + cell.Err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("%s/%s: %w", s.Problem, s.Language, cell.Err)
			}
		}
		fmt.Fprintf(w, "%-18s %-9s %9d %9s  %s\n",
			s.Problem, s.Language, cell.Runs, cell.Elapsed.Round(time.Millisecond), result)
	}
	return firstErr
}

// Refutation is a deliberately wrong solution paired with the problem
// spec that must reject it — the negative side of the verification
// matrix.
type Refutation struct {
	Name string
	// Build returns the problem spec, computations, and correspondence;
	// at least one computation must fail the sat check.
	Build func() (*spec.Spec, []*core.Computation, verify.Correspondence, error)
}

// Refutations returns the matrix's negative controls.
func Refutations() []Refutation {
	return []Refutation{
		{
			Name: "writers-priority-monitor vs readers-priority-spec",
			Build: func() (*spec.Spec, []*core.Computation, verify.Correspondence, error) {
				w := rw.Workload{Readers: 2, Writers: 1}
				problem, err := rw.ProblemSpec([]string{"r1", "r2", "w1"}, true)
				if err != nil {
					return nil, nil, verify.Correspondence{}, err
				}
				comps, err := exploreMonitor(rw.NewProgram(rw.WritersPriority, w))
				return problem, comps, rw.MonitorCorrespondence(), err
			},
		},
		{
			Name: "unguarded-deposit vs capacity-spec",
			Build: func() (*spec.Spec, []*core.Computation, verify.Correspondence, error) {
				w := boundedbuf.Workload{Producers: 2, Consumers: 1, ItemsPerProducer: 1, Capacity: 1}
				problem, err := boundedbuf.ProblemSpec(w)
				if err != nil {
					return nil, nil, verify.Correspondence{}, err
				}
				prog := boundedbuf.NewMonitorProgram(w)
				for i, e := range prog.Monitor.Entries {
					if e.Name == "deposit" {
						prog.Monitor.Entries[i].Body = e.Body[1:] // drop the full-check
					}
				}
				// The mutant can deadlock on some schedules (consumer done
				// before the overflowing deposit); keep the non-deadlocked
				// computations, which exhibit the overflow.
				runs, _, err := monitor.Explore(prog, monitor.ExploreOptions{MaxRuns: 60000})
				if err != nil {
					return nil, nil, verify.Correspondence{}, err
				}
				var comps []*core.Computation
				for _, r := range runs {
					if !r.Deadlock {
						comps = append(comps, r.Comp)
					}
				}
				return problem, comps, boundedbuf.MonitorCorrespondence(w.Capacity), nil
			},
		},
	}
}

// RunRefutations executes the negative controls: each must be refuted on
// at least one computation.
func RunRefutations(w io.Writer) error {
	var firstErr error
	for _, r := range Refutations() {
		problem, comps, corr, err := r.Build()
		if err != nil {
			fmt.Fprintf(w, "%-55s ERROR: %v\n", r.Name, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		idx, _ := verify.CheckAll(problem, comps, corr, logic.CheckOptions{})
		if idx < 0 {
			fmt.Fprintf(w, "%-55s NOT refuted (%d computations) — matrix broken\n", r.Name, len(comps))
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: expected a refutation", r.Name)
			}
			continue
		}
		fmt.Fprintf(w, "%-55s refuted as expected (computation %d of %d)\n", r.Name, idx, len(comps))
	}
	return firstErr
}
