// Package check assembles the paper's verification case studies into
// runnable scenarios: the full language × problem matrix of Section 11
// (Monitor, CSP, and ADA solutions to the One-Slot Buffer, the Bounded
// Buffer, and the Reader's-Priority Readers/Writers problem), each
// verified with the Section 9 sat methodology over an exhaustive
// exploration. cmd/gemverify prints the matrix; the benchmark harness
// reuses the same scenarios.
package check

import (
	"context"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"gem/internal/ada"
	"gem/internal/core"
	"gem/internal/csp"
	"gem/internal/logic"
	"gem/internal/monitor"
	"gem/internal/obs"
	"gem/internal/problems/boundedbuf"
	"gem/internal/problems/oneslot"
	"gem/internal/problems/rw"
	"gem/internal/spec"
	"gem/internal/verify"
)

// Options configures how scenarios are executed.
type Options struct {
	// Parallelism is the checking worker count. With a value > 1 each
	// scenario streams computations out of the simulator into a pool of
	// sat-check workers (exploration overlaps checking); 0 or 1 runs the
	// historical sequential pipeline: materialize every run, then check
	// them one at a time. Verdicts and first-failure indices are
	// identical either way.
	Parallelism int
	// Engine selects the temporal evaluation engine (auto, lattice or
	// seq) for every sat check. All engines report the same verdicts
	// and counterexamples; the zero value is logic.EngineAuto.
	Engine logic.Engine
	// Ctx carries cancellation (and the span context) into exploration
	// and checking: a cancelled context stops the simulator and the
	// check workers promptly, and the scenario reports an interrupted
	// cell instead of a verdict. nil means never cancelled.
	Ctx context.Context
	// Cache, when non-nil, is the persistent result store threaded into
	// every sat check: restriction verdicts, fast-path guard vectors,
	// and (when the value also implements verify.SatCache) whole-check
	// sat records are looked up before evaluating and written behind on
	// a miss. Verdicts are identical with and without it.
	Cache logic.VerdictCache
}

// streamBatch is how many computations the streaming producer groups
// per channel send; see verify.CheckStream for why batches beat
// per-item sends.
const streamBatch = 16

func firstOpt(opts []Options) Options {
	if len(opts) > 0 {
		return opts[0]
	}
	return Options{}
}

// Language names a concurrency primitive.
type Language string

// The three language primitives the paper describes.
const (
	Monitor Language = "monitor"
	CSP     Language = "csp"
	Ada     Language = "ada"
)

// Languages lists all three.
func Languages() []Language { return []Language{Monitor, CSP, Ada} }

// Scenario is one cell of the verification matrix: explore every
// computation of a solution and check it against its problem spec.
type Scenario struct {
	Problem  string
	Language Language
	// Setup returns the problem spec and the correspondence.
	Setup func() (*spec.Spec, verify.Correspondence, error)
	// Stream explores the solution, yielding each computation in the
	// deterministic exploration order; it reports truncation. Deadlocked
	// runs surface as errors.
	Stream func(yield func(*core.Computation) bool) (bool, error)
}

// Cell is the outcome of running one scenario.
type Cell struct {
	Scenario Scenario
	Runs     int
	Verified bool
	Err      error
	Elapsed  time.Duration
}

// Run executes the scenario. With Options.Parallelism > 1 the simulator
// streams runs through a channel into a pool of sat-check workers;
// otherwise runs are materialized and checked sequentially, exactly as
// the original engine did.
func (s Scenario) Run(opts ...Options) Cell {
	opt := firstOpt(opts)
	start := time.Now()
	name := ""
	if obs.Enabled() {
		name = "scenario " + s.Problem + "/" + string(s.Language)
	}
	ctx, sp := obs.StartSpan(opt.Ctx, name)
	defer sp.End()
	done := logic.Done(ctx)
	// interrupted wraps the cell when the context was cancelled mid-run:
	// whatever verdict the partial work reached is not a verdict on the
	// scenario.
	interrupted := func(cell Cell) Cell {
		if logic.Cancelled(done) && cell.Err == nil {
			cell.Verified = false
			cell.Err = fmt.Errorf("check: %s/%s interrupted: %w", s.Problem, s.Language, opt.Ctx.Err())
		}
		return cell
	}
	problem, corr, err := s.Setup()
	if err != nil {
		return Cell{Scenario: s, Err: err, Elapsed: time.Since(start)}
	}
	if logic.Workers(opt.Parallelism, 2) <= 1 {
		var comps []*core.Computation
		truncated, err := s.Stream(func(c *core.Computation) bool {
			comps = append(comps, c)
			return !logic.Cancelled(done)
		})
		if err == nil && truncated && !logic.Cancelled(done) {
			err = fmt.Errorf("check: %s exploration truncated", s.Language)
		}
		if err != nil {
			return Cell{Scenario: s, Err: err, Elapsed: time.Since(start)}
		}
		idx, res := verify.CheckAll(problem, comps, corr, logic.CheckOptions{Engine: opt.Engine, Ctx: ctx, Cache: opt.Cache})
		cell := Cell{Scenario: s, Runs: len(comps), Elapsed: time.Since(start)}
		if idx >= 0 {
			cell.Err = fmt.Errorf("computation %d: %w", idx, res.Error())
			return cell
		}
		cell.Verified = true
		return interrupted(cell)
	}

	// Parallel pipeline: the producer goroutine explores while the
	// checking pool consumes, with computations grouped into batches so
	// channel synchronization is off the per-run hot path. A failure
	// stops the producer early; runs below the failing index are still
	// checked, so the verdict and first-failure index match the
	// sequential pipeline's.
	ch := make(chan []verify.Indexed, 4*opt.Parallelism)
	var stopFlag atomic.Bool
	var produced int
	var prodTrunc bool
	var prodErr error
	go func() {
		defer close(ch)
		batch := make([]verify.Indexed, 0, streamBatch)
		trunc, err := s.Stream(func(c *core.Computation) bool {
			if stopFlag.Load() || logic.Cancelled(done) {
				return false
			}
			batch = append(batch, verify.Indexed{Index: produced, Comp: c})
			produced++
			if len(batch) == streamBatch {
				ch <- batch
				batch = make([]verify.Indexed, 0, streamBatch)
			}
			return true
		})
		if len(batch) > 0 {
			ch <- batch
		}
		prodTrunc, prodErr = trunc, err
	}()
	idx, res := verify.CheckStream(problem, ch, func() { stopFlag.Store(true) },
		corr, logic.CheckOptions{Parallelism: opt.Parallelism, Engine: opt.Engine, Ctx: ctx, Cache: opt.Cache})
	cell := Cell{Scenario: s, Runs: produced, Elapsed: time.Since(start)}
	switch {
	case idx >= 0:
		cell.Err = fmt.Errorf("computation %d: %w", idx, res.Error())
	case prodErr != nil:
		cell.Err = prodErr
	case prodTrunc && !logic.Cancelled(done):
		cell.Err = fmt.Errorf("check: %s exploration truncated", s.Language)
	default:
		cell.Verified = true
	}
	return interrupted(cell)
}

// Matrix returns the nine scenarios of the paper's Section 11 claim.
func Matrix() []Scenario {
	var out []Scenario
	for _, lang := range Languages() {
		out = append(out, oneslotScenario(lang), boundedbufScenario(lang), rwScenario(lang))
	}
	return out
}

func exploreMonitor(p *monitor.Program) ([]*core.Computation, error) {
	var comps []*core.Computation
	truncated, err := streamMonitor(p)(func(c *core.Computation) bool {
		comps = append(comps, c)
		return true
	})
	if err != nil {
		return nil, err
	}
	if truncated {
		return nil, fmt.Errorf("check: monitor exploration truncated")
	}
	return comps, nil
}

// streamMonitor adapts monitor.ExploreStream to the scenario streaming
// shape, rejecting deadlocked runs.
func streamMonitor(p *monitor.Program) func(yield func(*core.Computation) bool) (bool, error) {
	return func(yield func(*core.Computation) bool) (bool, error) {
		i := 0
		var deadlock error
		trunc, err := monitor.ExploreStream(p, monitor.ExploreOptions{MaxRuns: 60000}, func(r monitor.Run) bool {
			if r.Deadlock {
				deadlock = fmt.Errorf("check: monitor run %d deadlocked", i)
				return false
			}
			i++
			return yield(r.Comp)
		})
		if err == nil {
			err = deadlock
		}
		return trunc, err
	}
}

func streamCSP(p *csp.Program) func(yield func(*core.Computation) bool) (bool, error) {
	return func(yield func(*core.Computation) bool) (bool, error) {
		i := 0
		var deadlock error
		trunc, err := csp.ExploreStream(p, csp.ExploreOptions{MaxRuns: 60000}, func(r csp.Run) bool {
			if r.Deadlock {
				deadlock = fmt.Errorf("check: csp run %d deadlocked", i)
				return false
			}
			i++
			return yield(r.Comp)
		})
		if err == nil {
			err = deadlock
		}
		return trunc, err
	}
}

func streamAda(p *ada.Program) func(yield func(*core.Computation) bool) (bool, error) {
	return func(yield func(*core.Computation) bool) (bool, error) {
		i := 0
		var deadlock error
		trunc, err := ada.ExploreStream(p, ada.ExploreOptions{MaxRuns: 60000}, func(r ada.Run) bool {
			if r.Deadlock {
				deadlock = fmt.Errorf("check: ada run %d deadlocked", i)
				return false
			}
			i++
			return yield(r.Comp)
		})
		if err == nil {
			err = deadlock
		}
		return trunc, err
	}
}

func oneslotScenario(lang Language) Scenario {
	w := oneslot.Workload{Producers: 1, Consumers: 1, ItemsPerProducer: 2}
	s := Scenario{Problem: "one-slot-buffer", Language: lang}
	switch lang {
	case Monitor:
		s.Stream = streamMonitor(oneslot.NewMonitorProgram(w))
		s.Setup = func() (*spec.Spec, verify.Correspondence, error) {
			problem, err := oneslot.ProblemSpec(w)
			return problem, oneslot.MonitorCorrespondence(), err
		}
	case CSP:
		s.Stream = streamCSP(oneslot.NewCSPProgram(w))
		s.Setup = func() (*spec.Spec, verify.Correspondence, error) {
			problem, err := oneslot.ProblemSpec(w)
			return problem, oneslot.CSPCorrespondence(w), err
		}
	default:
		s.Stream = streamAda(oneslot.NewAdaProgram(w))
		s.Setup = func() (*spec.Spec, verify.Correspondence, error) {
			problem, err := oneslot.ProblemSpec(w)
			return problem, oneslot.AdaCorrespondence(), err
		}
	}
	return s
}

func boundedbufScenario(lang Language) Scenario {
	w := boundedbuf.Workload{Producers: 2, Consumers: 1, ItemsPerProducer: 1, Capacity: 2}
	s := Scenario{Problem: "bounded-buffer", Language: lang}
	switch lang {
	case Monitor:
		s.Stream = streamMonitor(boundedbuf.NewMonitorProgram(w))
		s.Setup = func() (*spec.Spec, verify.Correspondence, error) {
			problem, err := boundedbuf.ProblemSpec(w)
			return problem, boundedbuf.MonitorCorrespondence(w.Capacity), err
		}
	case CSP:
		s.Stream = streamCSP(boundedbuf.NewCSPProgram(w))
		s.Setup = func() (*spec.Spec, verify.Correspondence, error) {
			problem, err := boundedbuf.ProblemSpec(w)
			return problem, boundedbuf.CSPCorrespondence(w), err
		}
	default:
		s.Stream = streamAda(boundedbuf.NewAdaProgram(w))
		s.Setup = func() (*spec.Spec, verify.Correspondence, error) {
			problem, err := boundedbuf.ProblemSpec(w)
			return problem, boundedbuf.AdaCorrespondence(), err
		}
	}
	return s
}

func rwScenario(lang Language) Scenario {
	w := rw.Workload{Readers: 2, Writers: 1}
	clients := []string{"r1", "r2", "w1"}
	s := Scenario{Problem: "readers-writers", Language: lang}
	setup := func(corr verify.Correspondence) func() (*spec.Spec, verify.Correspondence, error) {
		return func() (*spec.Spec, verify.Correspondence, error) {
			problem, err := rw.ProblemSpec(clients, true)
			return problem, corr, err
		}
	}
	switch lang {
	case Monitor:
		s.Stream = streamMonitor(rw.NewProgram(rw.ReadersPriority, w))
		s.Setup = setup(rw.MonitorCorrespondence())
	case CSP:
		s.Stream = streamCSP(rw.NewCSPProgram(w))
		s.Setup = setup(rw.CSPCorrespondence(w))
	default:
		s.Stream = streamAda(rw.NewAdaProgram(w))
		s.Setup = setup(rw.AdaCorrespondence())
	}
	return s
}

// RunMatrix executes every scenario and prints a table; it returns an
// error if any cell fails. Pass Options{Parallelism: n} to use the
// parallel streaming engine.
func RunMatrix(w io.Writer, opts ...Options) error {
	_, err := RunMatrixCells(w, opts...)
	return err
}

// RunMatrixCells is RunMatrix returning the executed cells as well, in
// matrix order, so front ends (gemverify -sarif) can render the outcomes
// in other formats. An interrupted matrix returns the cells that ran.
func RunMatrixCells(w io.Writer, opts ...Options) ([]Cell, error) {
	opt := firstOpt(opts)
	done := logic.Done(opt.Ctx)
	fmt.Fprintf(w, "%-18s %-9s %9s %9s  %s\n", "PROBLEM", "LANGUAGE", "RUNS", "TIME", "RESULT")
	var cells []Cell
	var firstErr error
	for _, s := range Matrix() {
		if logic.Cancelled(done) {
			if firstErr == nil {
				firstErr = fmt.Errorf("check: matrix interrupted: %w", opt.Ctx.Err())
			}
			break
		}
		cell := s.Run(opt)
		cells = append(cells, cell)
		result := "verified"
		if !cell.Verified {
			result = "FAILED: " + cell.Err.Error()
			if firstErr == nil {
				firstErr = fmt.Errorf("%s/%s: %w", s.Problem, s.Language, cell.Err)
			}
		}
		fmt.Fprintf(w, "%-18s %-9s %9d %9s  %s\n",
			s.Problem, s.Language, cell.Runs, cell.Elapsed.Round(time.Millisecond), result)
	}
	return cells, firstErr
}

// Refutation is a deliberately wrong solution paired with the problem
// spec that must reject it — the negative side of the verification
// matrix.
type Refutation struct {
	Name string
	// Build returns the problem spec, computations, and correspondence;
	// at least one computation must fail the sat check.
	Build func() (*spec.Spec, []*core.Computation, verify.Correspondence, error)
}

// Refutations returns the matrix's negative controls.
func Refutations() []Refutation {
	return []Refutation{
		{
			Name: "writers-priority-monitor vs readers-priority-spec",
			Build: func() (*spec.Spec, []*core.Computation, verify.Correspondence, error) {
				w := rw.Workload{Readers: 2, Writers: 1}
				problem, err := rw.ProblemSpec([]string{"r1", "r2", "w1"}, true)
				if err != nil {
					return nil, nil, verify.Correspondence{}, err
				}
				comps, err := exploreMonitor(rw.NewProgram(rw.WritersPriority, w))
				return problem, comps, rw.MonitorCorrespondence(), err
			},
		},
		{
			Name: "unguarded-deposit vs capacity-spec",
			Build: func() (*spec.Spec, []*core.Computation, verify.Correspondence, error) {
				w := boundedbuf.Workload{Producers: 2, Consumers: 1, ItemsPerProducer: 1, Capacity: 1}
				problem, err := boundedbuf.ProblemSpec(w)
				if err != nil {
					return nil, nil, verify.Correspondence{}, err
				}
				prog := boundedbuf.NewMonitorProgram(w)
				for i, e := range prog.Monitor.Entries {
					if e.Name == "deposit" {
						prog.Monitor.Entries[i].Body = e.Body[1:] // drop the full-check
					}
				}
				// The mutant can deadlock on some schedules (consumer done
				// before the overflowing deposit); keep the non-deadlocked
				// computations, which exhibit the overflow.
				runs, _, err := monitor.Explore(prog, monitor.ExploreOptions{MaxRuns: 60000})
				if err != nil {
					return nil, nil, verify.Correspondence{}, err
				}
				var comps []*core.Computation
				for _, r := range runs {
					if !r.Deadlock {
						comps = append(comps, r.Comp)
					}
				}
				return problem, comps, boundedbuf.MonitorCorrespondence(w.Capacity), nil
			},
		},
	}
}

// RunRefutations executes the negative controls: each must be refuted on
// at least one computation. Parallel runs report the same (lowest)
// refuting computation index as sequential ones.
func RunRefutations(w io.Writer, opts ...Options) error {
	opt := firstOpt(opts)
	done := logic.Done(opt.Ctx)
	var firstErr error
	for _, r := range Refutations() {
		if logic.Cancelled(done) {
			if firstErr == nil {
				firstErr = fmt.Errorf("check: refutations interrupted: %w", opt.Ctx.Err())
			}
			break
		}
		problem, comps, corr, err := r.Build()
		if err != nil {
			fmt.Fprintf(w, "%-55s ERROR: %v\n", r.Name, err)
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		idx, _ := verify.CheckAll(problem, comps, corr,
			logic.CheckOptions{Parallelism: opt.Parallelism, Engine: opt.Engine, Ctx: opt.Ctx, Cache: opt.Cache})
		if idx < 0 {
			fmt.Fprintf(w, "%-55s NOT refuted (%d computations) — matrix broken\n", r.Name, len(comps))
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: expected a refutation", r.Name)
			}
			continue
		}
		fmt.Fprintf(w, "%-55s refuted as expected (computation %d of %d)\n", r.Name, idx, len(comps))
	}
	return firstErr
}
