package check

import (
	"bytes"
	"strings"
	"testing"
)

// TestMatrixAllVerified runs the full Section 11 matrix: three languages
// × three problems, all verified (experiment E7).
func TestMatrixAllVerified(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow; skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := RunMatrix(&buf); err != nil {
		t.Fatalf("matrix failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	t.Logf("\n%s", out)
	if got := strings.Count(out, "verified"); got != 9 {
		t.Errorf("verified cells = %d, want 9:\n%s", got, out)
	}
	for _, problem := range []string{"one-slot-buffer", "bounded-buffer", "readers-writers"} {
		if !strings.Contains(out, problem) {
			t.Errorf("missing problem %s", problem)
		}
	}
	for _, lang := range Languages() {
		if !strings.Contains(out, string(lang)) {
			t.Errorf("missing language %s", lang)
		}
	}
}

func TestScenarioCells(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix is slow; skipped in -short mode")
	}
	for _, s := range Matrix() {
		s := s
		t.Run(s.Problem+"/"+string(s.Language), func(t *testing.T) {
			cell := s.Run()
			if !cell.Verified {
				t.Fatalf("cell failed: %v", cell.Err)
			}
			if cell.Runs == 0 {
				t.Error("no computations explored")
			}
		})
	}
}

// TestRefutationsAllRefuted: the negative controls must each be refuted.
func TestRefutationsAllRefuted(t *testing.T) {
	var buf bytes.Buffer
	if err := RunRefutations(&buf); err != nil {
		t.Fatalf("refutations: %v\n%s", err, buf.String())
	}
	t.Logf("\n%s", buf.String())
	if got := strings.Count(buf.String(), "refuted as expected"); got != 2 {
		t.Errorf("refuted controls = %d, want 2:\n%s", got, buf.String())
	}
}
