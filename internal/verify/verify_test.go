package verify

import (
	"strings"
	"testing"

	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/spec"
)

// tinyProblem: users ping a service; problem events Ping -> Served.
func tinyProblem(t *testing.T) *spec.Spec {
	t.Helper()
	s := spec.New("tiny")
	s.AddElement(&spec.ElementDecl{
		Name:   "u1",
		Events: []spec.EventClassDecl{{Name: "Ping", Params: []spec.ParamDecl{{Name: "v", Type: "INTEGER"}}}},
	})
	s.AddElement(&spec.ElementDecl{
		Name:   "svc",
		Events: []spec.EventClassDecl{{Name: "Served", Params: []spec.ParamDecl{{Name: "v", Type: "INTEGER"}}}},
		Restrictions: []spec.Restriction{{
			Name: "served-value",
			F: logic.ForAll{Var: "p", Ref: core.Ref("u1", "Ping"),
				Body: logic.ForAll{Var: "s", Ref: core.Ref("svc", "Served"),
					Body: logic.Implies{
						If:   logic.Enables{X: "p", Y: "s"},
						Then: logic.ParamCmp{X: "p", P: "v", Op: logic.OpEq, Y: "s", Q: "v"},
					},
				},
			},
		}},
	})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return s
}

// tinyProgram builds a program computation: process element "u1" emits
// Request(v) then later Done(v); an internal "noise" event sits between.
func tinyProgram(t *testing.T, v1, v2 int64) *core.Computation {
	t.Helper()
	b := core.NewBuilder()
	req := b.Event("u1", "Request", core.Params{"v": core.Int(v1), "proc": core.Str("u1")})
	noise := b.Event("internal", "Tick", nil)
	done := b.Event("worker", "Done", core.Params{"v": core.Int(v2), "proc": core.Str("u1")})
	b.Enable(req, noise)
	b.Enable(noise, done)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func tinyCorr() Correspondence {
	return Correspondence{Rules: []Rule{
		{Match: core.Ref("u1", "Request"), Element: "%s", Class: "Ping",
			KeyParam: "@element", Chain: "ping", Stage: 0,
			CopyParams: map[string]string{"v": "v"}},
		{Match: core.Ref("worker", "Done"), Element: "svc", Class: "Served",
			KeyParam: "proc", Chain: "ping", Stage: 1,
			CopyParams: map[string]string{"v": "v"}},
	}}
}

func TestProjectBasics(t *testing.T) {
	c := tinyProgram(t, 5, 5)
	proj, err := Project(c, tinyCorr())
	if err != nil {
		t.Fatal(err)
	}
	if proj.Comp.NumEvents() != 2 {
		t.Fatalf("projection has %d events, want 2 (noise dropped)", proj.Comp.NumEvents())
	}
	ping := proj.Comp.EventsOf(core.Ref("u1", "Ping"))
	served := proj.Comp.EventsOf(core.Ref("svc", "Served"))
	if len(ping) != 1 || len(served) != 1 {
		t.Fatalf("projected classes wrong:\n%s", proj.Comp)
	}
	if !proj.Comp.EnablesDirect(ping[0], served[0]) {
		t.Error("chain stages must be wired with an enable edge")
	}
	if proj.Comp.Event(ping[0]).Params["v"] != core.Int(5) {
		t.Error("CopyParams failed")
	}
	// Origin maps back to program events.
	if orig := proj.Origin[ping[0]]; c.Event(orig).Class != "Request" {
		t.Error("Origin mapping wrong")
	}
}

func TestCheckSatAndRefute(t *testing.T) {
	problem := tinyProblem(t)
	good := Check(problem, tinyProgram(t, 5, 5), tinyCorr(), logic.CheckOptions{})
	if !good.Sat() {
		t.Fatalf("faithful program must satisfy: %v", good.Error())
	}
	if good.Error() != nil {
		t.Error("Error must be nil on sat")
	}
	bad := Check(problem, tinyProgram(t, 5, 9), tinyCorr(), logic.CheckOptions{})
	if bad.Sat() {
		t.Fatal("value-corrupting program must be refuted")
	}
	if bad.Error() == nil {
		t.Error("Error must describe the refutation")
	}
}

func TestCheckAll(t *testing.T) {
	problem := tinyProblem(t)
	comps := []*core.Computation{
		tinyProgram(t, 1, 1),
		tinyProgram(t, 2, 9),
		tinyProgram(t, 3, 3),
	}
	idx, res := CheckAll(problem, comps, tinyCorr(), logic.CheckOptions{})
	if idx != 1 || res.Sat() {
		t.Fatalf("CheckAll = (%d, sat=%v), want failure at 1", idx, res.Sat())
	}
	idx, _ = CheckAll(problem, comps[:1], tinyCorr(), logic.CheckOptions{})
	if idx != -1 {
		t.Fatalf("all-pass CheckAll returned %d", idx)
	}
}

func TestProjectErrors(t *testing.T) {
	t.Run("no matches", func(t *testing.T) {
		c := tinyProgram(t, 1, 1)
		_, err := Project(c, Correspondence{Rules: []Rule{
			{Match: core.Ref("ghost", "X"), Element: "e", Class: "C"},
		}})
		if err == nil || !strings.Contains(err.Error(), "no significant events") {
			t.Errorf("want no-matches error, got %v", err)
		}
	})
	t.Run("missing key param", func(t *testing.T) {
		c := tinyProgram(t, 1, 1)
		_, err := Project(c, Correspondence{Rules: []Rule{
			{Match: core.Ref("u1", "Request"), Element: "e", Class: "C", KeyParam: "nope"},
		}})
		if err == nil || !strings.Contains(err.Error(), "key parameter") {
			t.Errorf("want key-param error, got %v", err)
		}
	})
	t.Run("concurrent events on one element", func(t *testing.T) {
		b := core.NewBuilder()
		b.Event("a", "X", nil)
		b.Event("b", "X", nil)
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		_, err = Project(c, Correspondence{Rules: []Rule{
			{Match: core.Ref("", "X"), Element: "merged", Class: "C"},
		}})
		if err == nil || !strings.Contains(err.Error(), "concurrent") {
			t.Errorf("want concurrency error, got %v", err)
		}
	})
	t.Run("stage order violation", func(t *testing.T) {
		b := core.NewBuilder()
		done := b.Event("worker", "Done", core.Params{"proc": core.Str("u1")})
		req := b.Event("u1", "Request", core.Params{"proc": core.Str("u1")})
		b.Enable(done, req) // reversed causality
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		_, err = Project(c, tinyCorr())
		if err == nil || !strings.Contains(err.Error(), "precedes stage") {
			t.Errorf("want stage-order error, got %v", err)
		}
	})
	t.Run("missing head stage", func(t *testing.T) {
		b := core.NewBuilder()
		b.Event("worker", "Done", core.Params{"proc": core.Str("u1")})
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		_, err = Project(c, tinyCorr())
		if err == nil || !strings.Contains(err.Error(), "stage") {
			t.Errorf("want stage-count error, got %v", err)
		}
	})
	t.Run("prefix transaction accepted", func(t *testing.T) {
		// A transaction still in flight (later stages absent) projects
		// fine — it is simply an incomplete chain.
		b := core.NewBuilder()
		b.Event("u1", "Request", core.Params{"proc": core.Str("u1")})
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		proj, err := Project(c, tinyCorr())
		if err != nil {
			t.Fatalf("prefix transaction should project: %v", err)
		}
		if proj.Comp.NumEvents() != 1 {
			t.Errorf("projection = %d events", proj.Comp.NumEvents())
		}
	})
}

func TestProjectRelaxedStage(t *testing.T) {
	// Two concurrent events in one chain: forbidden normally, allowed
	// with Relaxed (but never in inverse order).
	b := core.NewBuilder()
	b.Event("u1", "Request", core.Params{"proc": core.Str("u1")})
	b.Event("worker", "Done", core.Params{"proc": core.Str("u1")})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	corr := tinyCorr()
	if _, err := Project(c, corr); err == nil {
		t.Fatal("concurrent chain stages must be rejected without Relaxed")
	}
	corr.Rules[1].Relaxed = true
	proj, err := Project(c, corr)
	if err != nil {
		t.Fatalf("Relaxed should admit the concurrent pair: %v", err)
	}
	ping := proj.Comp.EventsOf(core.Ref("u1", "Ping"))
	served := proj.Comp.EventsOf(core.Ref("svc", "Served"))
	if !proj.Comp.EnablesDirect(ping[0], served[0]) {
		t.Error("relaxed stage still wires the chain edge")
	}
}

func TestProjectRepeatedTransactions(t *testing.T) {
	// One process runs the chain twice; occurrence pairing must produce
	// two transactions.
	b := core.NewBuilder()
	r1 := b.Event("u1", "Request", core.Params{"v": core.Int(1), "proc": core.Str("u1")})
	d1 := b.Event("worker", "Done", core.Params{"v": core.Int(1), "proc": core.Str("u1")})
	r2 := b.Event("u1", "Request", core.Params{"v": core.Int(2), "proc": core.Str("u1")})
	d2 := b.Event("worker", "Done", core.Params{"v": core.Int(2), "proc": core.Str("u1")})
	b.Enable(r1, d1)
	b.Enable(d1, r2)
	b.Enable(r2, d2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	proj, err := Project(c, tinyCorr())
	if err != nil {
		t.Fatal(err)
	}
	pings := proj.Comp.EventsOf(core.Ref("u1", "Ping"))
	serveds := proj.Comp.EventsOf(core.Ref("svc", "Served"))
	if len(pings) != 2 || len(serveds) != 2 {
		t.Fatalf("projection wrong:\n%s", proj.Comp)
	}
	if !proj.Comp.EnablesDirect(pings[0], serveds[0]) || !proj.Comp.EnablesDirect(pings[1], serveds[1]) {
		t.Error("occurrence pairing must wire tx k's stages together")
	}
	if proj.Comp.EnablesDirect(pings[0], serveds[1]) {
		t.Error("stages of different transactions must not be wired")
	}
}

func TestProjectElementTemplate(t *testing.T) {
	c := tinyProgram(t, 5, 5)
	corr := tinyCorr()
	proj, err := Project(c, corr)
	if err != nil {
		t.Fatal(err)
	}
	// %s in rule 0 expanded to the element name u1.
	if got := proj.Comp.Elements(); got[1] != "u1" {
		t.Errorf("elements = %v", got)
	}
}

func TestWhereFilter(t *testing.T) {
	b := core.NewBuilder()
	b.Event("u1", "Request", core.Params{"v": core.Int(1), "kind": core.Str("ping"), "proc": core.Str("u1")})
	b.Event("u1", "Request", core.Params{"v": core.Int(2), "kind": core.Str("other"), "proc": core.Str("u1")})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	corr := Correspondence{Rules: []Rule{
		{Match: core.Ref("u1", "Request"), Where: core.Params{"kind": core.Str("ping")},
			Element: "u1", Class: "Ping", Chain: "ping", Stage: 0},
	}}
	proj, err := Project(c, corr)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Comp.NumEvents() != 1 {
		t.Fatalf("Where filter failed: %d events", proj.Comp.NumEvents())
	}
}
