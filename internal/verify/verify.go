// Package verify implements the paper's Section 9 verification
// methodology: to prove that a program solves a problem, choose for each
// object of the problem specification P a corresponding significant
// object of the program specification PROG, then show that every legal
// PROG computation, observed only through its significant objects,
// behaves like a legal P computation.
//
// A Correspondence maps program event classes (optionally filtered on
// parameter values) to problem events, organised into per-transaction
// chains: each program event is assigned to a transaction (via a
// parameter such as the process name) and a stage within the problem's
// operation chain. Project builds the problem-level computation — events
// renamed, element order inherited from the program's temporal order,
// enable edges along each transaction's chain — and Check then runs the
// problem specification's legality check over it.
package verify

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"gem/internal/core"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/obs"
	"gem/internal/spec"
	"gem/internal/thread"
)

// Rule maps one program event class to a problem event.
type Rule struct {
	// Match selects program events by class.
	Match core.ClassRef
	// Where further filters on parameter values (all must match).
	Where core.Params
	// Element and Class name the problem event this program event
	// corresponds to. Element may contain the placeholder %s, replaced by
	// the transaction key (e.g. "u%s" for per-user elements).
	Element string
	Class   string
	// CopyParams maps problem parameter names to program parameter names
	// to carry data values through the projection.
	CopyParams map[string]string
	// KeyParam names the program parameter identifying the transaction
	// the event belongs to (e.g. "proc"). The special value "@element"
	// uses the program event's element name. Empty means the rule's
	// events form a single shared transaction "".
	KeyParam string
	// Chain and Stage place the problem event in its operation chain;
	// consecutive stages of one transaction are connected by enable
	// edges. Stage is 0-based and must be contiguous per transaction. A
	// process performing the chain repeatedly yields several transactions:
	// within one (chain, key), a stage that does not exceed its
	// predecessor starts a new transaction.
	Chain string
	Stage int
	// Relaxed permits the edge from the previous stage even when the
	// program leaves the two events unordered (CSP's simultaneous
	// exchange): the projection linearizes them, which is sound because
	// any order consistent with the observed partial order may be
	// exhibited. The inverse order is still rejected.
	Relaxed bool
}

// Correspondence is a complete mapping for one (program, problem) pair.
type Correspondence struct {
	Rules []Rule
}

// CanonicalKey renders the correspondence deterministically (map fields
// sorted by key), so equal correspondences — however their maps were
// built — produce equal strings. The persistent store folds it into the
// sat-record key: a sat verdict is a function of the problem spec, the
// program computation, the correspondence, and the engine.
func (corr Correspondence) CanonicalKey() string {
	var sb strings.Builder
	for _, r := range corr.Rules {
		fmt.Fprintf(&sb, "rule|%s|", r.Match)
		writeSortedParams(&sb, r.Where)
		fmt.Fprintf(&sb, "|%s|%s|", r.Element, r.Class)
		keys := make([]string, 0, len(r.CopyParams))
		for k := range r.CopyParams {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "%s=%s;", k, r.CopyParams[k])
		}
		fmt.Fprintf(&sb, "|%s|%s|%d|%t\n", r.KeyParam, r.Chain, r.Stage, r.Relaxed)
	}
	return sb.String()
}

func writeSortedParams(sb *strings.Builder, p core.Params) {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(sb, "%s=%s;", k, p[k])
	}
}

// SatCache persists successful sat checks: LookupSat reports whether a
// prior run recorded that this (problem, correspondence, computation,
// engine) combination satisfied the problem, and StoreSat records one.
// Only sat == true is ever stored — failures are recomputed so their
// counterexamples stay fresh — which makes a hit sufficient to return a
// passing Result without projecting at all. Implementations
// (internal/store) must be safe for concurrent use and degrade internal
// failures to a miss.
type SatCache interface {
	LookupSat(problem *spec.Spec, c *core.Computation, corrKey string, engine logic.Engine) bool
	StoreSat(problem *spec.Spec, c *core.Computation, corrKey string, engine logic.Engine)
}

// Projection is the result of projecting a program computation.
type Projection struct {
	Comp *core.Computation
	// Origin maps each projected event to the program event it renames.
	Origin map[core.EventID]core.EventID
}

// Project builds the problem-level view of a program computation. It
// reports an error if the projection is structurally incoherent: two
// events mapping to one problem element are concurrent in the program
// (the problem's element order would be unfounded), a transaction's
// stages are out of temporal order, or a stage is duplicated.
func Project(c *core.Computation, corr Correspondence) (*Projection, error) {
	type hit struct {
		prog  core.EventID
		rule  *Rule
		key   string
		elem  string
		class string
	}
	var hits []hit
	for _, e := range c.Events() {
		for i := range corr.Rules {
			r := &corr.Rules[i]
			if !r.Match.Matches(e) || !whereMatches(e, r.Where) {
				continue
			}
			key := ""
			switch r.KeyParam {
			case "":
			case "@element":
				key = e.Element
			default:
				v, ok := e.Params[r.KeyParam]
				if !ok || v.Kind != core.KindString {
					return nil, fmt.Errorf("verify: event %s lacks string key parameter %q", e.Name(), r.KeyParam)
				}
				key = v.S
			}
			elem, err := expandElement(r.Element, key)
			if err != nil {
				return nil, err
			}
			hits = append(hits, hit{prog: e.ID, rule: r, key: key, elem: elem, class: r.Class})
			break // first matching rule wins
		}
	}
	if len(hits) == 0 {
		return nil, fmt.Errorf("verify: no significant events matched")
	}

	// Sort hits by a linear extension of the program's temporal order
	// (stable by event id, which the simulators emit in causal order).
	sort.SliceStable(hits, func(i, j int) bool {
		if c.Temporal(hits[i].prog, hits[j].prog) {
			return true
		}
		if c.Temporal(hits[j].prog, hits[i].prog) {
			return false
		}
		return hits[i].prog < hits[j].prog
	})

	// Events at one problem element must be totally ordered in the
	// program: concurrent events cannot share an element.
	byElem := make(map[string][]hit)
	for _, h := range hits {
		byElem[h.elem] = append(byElem[h.elem], h)
	}
	for elem, hs := range byElem {
		for i := 1; i < len(hs); i++ {
			if c.Concurrent(hs[i-1].prog, hs[i].prog) {
				return nil, fmt.Errorf("verify: events %s and %s map to element %s but are concurrent",
					c.Event(hs[i-1].prog).Name(), c.Event(hs[i].prog).Name(), elem)
			}
		}
	}

	// Build the projected computation in the globally sorted order (which
	// fixes each problem element's order).
	b := core.NewBuilder()
	origin := make(map[core.EventID]core.EventID, len(hits))
	type stageEv struct {
		stage   int
		relaxed bool
		id      core.EventID
		prog    core.EventID
	}
	type txKey struct{ chain, key string }
	groups := make(map[txKey][]stageEv)
	var groupOrder []txKey
	for _, h := range hits {
		params := core.Params{}
		for problemParam, progParam := range h.rule.CopyParams {
			if v, ok := c.Event(h.prog).Params[progParam]; ok {
				params[problemParam] = v
			}
		}
		id := b.Event(h.elem, h.class, params)
		origin[id] = h.prog
		k := txKey{h.rule.Chain, h.key}
		if _, ok := groups[k]; !ok {
			groupOrder = append(groupOrder, k)
		}
		groups[k] = append(groups[k], stageEv{stage: h.rule.Stage, relaxed: h.rule.Relaxed, id: id, prog: h.prog})
	}

	// Within each (chain, key) group, the k-th transaction consists of
	// the k-th occurrence of each stage (occurrences are already in the
	// global linearization order, which respects element order — a
	// process repeating a chain produces its stages in order). Pairing by
	// occurrence index is robust to concurrency between the tail of one
	// transaction and the head of the next.
	for _, k := range groupOrder {
		byStage := make(map[int][]stageEv)
		maxStage := -1
		for _, ev := range groups[k] {
			byStage[ev.stage] = append(byStage[ev.stage], ev)
			if ev.stage > maxStage {
				maxStage = ev.stage
			}
		}
		// Stage occurrence counts may only shrink as stages advance:
		// transactions still in flight have completed a prefix of the
		// chain, but a later stage can never out-count an earlier one.
		for s := 1; s <= maxStage; s++ {
			if len(byStage[s]) > len(byStage[s-1]) {
				return nil, fmt.Errorf("verify: chain %q key %q has %d events at stage %d but %d at stage %d",
					k.chain, k.key, len(byStage[s-1]), s-1, len(byStage[s]), s)
			}
		}
		for n := 0; n < len(byStage[0]); n++ {
			for s := 1; s <= maxStage; s++ {
				if n >= len(byStage[s]) {
					break
				}
				prev, ev := byStage[s-1][n], byStage[s][n]
				if c.Temporal(ev.prog, prev.prog) {
					return nil, fmt.Errorf("verify: chain %q key %q tx %d: stage %d precedes stage %d in the program order",
						k.chain, k.key, n, s, s-1)
				}
				if !ev.relaxed && !c.Temporal(prev.prog, ev.prog) {
					return nil, fmt.Errorf("verify: chain %q key %q tx %d: stage %d does not follow stage %d in the program order (events %s, %s)",
						k.chain, k.key, n, s, s-1, c.Event(prev.prog).Name(), c.Event(ev.prog).Name())
				}
				b.Enable(prev.id, ev.id)
			}
		}
	}
	comp, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("verify: projected computation invalid: %w", err)
	}
	return &Projection{Comp: comp, Origin: origin}, nil
}

// Result reports the outcome of a sat check for one program computation.
type Result struct {
	Projection *Projection
	Legality   legal.Result
	// ProjectionErr is set when projection itself failed (which is
	// already a refutation of sat).
	ProjectionErr error
}

// Sat reports whether the check succeeded.
func (r Result) Sat() bool {
	return r.ProjectionErr == nil && r.Legality.Legal()
}

// Error describes the failure, or returns nil.
func (r Result) Error() error {
	if r.ProjectionErr != nil {
		return r.ProjectionErr
	}
	return r.Legality.Error()
}

// Check runs the paper's sat check for one program computation: project
// onto the significant objects, label the problem's threads, and check
// every restriction of the problem specification on the projection.
// Failing restrictions carry engine-produced counterexamples: under the
// default engine a failure is refuted inside the lattice fixpoint
// engine, with the witness sequence extracted from the history lattice
// rather than recomputed by sequence enumeration.
// With opts.Cache set to a store that also implements SatCache, a
// recorded sat for this exact (problem, correspondence, computation,
// engine) key short-circuits the whole check — no projection, no
// legality pass; the returned Result is the passing zero Result (nil
// Projection), which callers must treat as sat-only. On a miss the
// check runs normally — restriction verdicts flowing through
// opts.Cache, guard vectors through the GuardCache — and a passing,
// uncancelled result is written behind.
func Check(problem *spec.Spec, c *core.Computation, corr Correspondence, opts logic.CheckOptions) Result {
	obs.Count("sat.checks", 1)
	var sat SatCache
	var corrKey string
	if opts.Cache != nil && opts.Cacheable() {
		if s, ok := opts.Cache.(SatCache); ok {
			sat = s
			corrKey = corr.CanonicalKey()
			if sat.LookupSat(problem, c, corrKey, opts.Engine) {
				return Result{}
			}
		}
	}
	proj, err := Project(c, corr)
	if err != nil {
		return Result{ProjectionErr: err}
	}
	thread.Apply(proj.Comp, problem.Threads()...)
	// Static pre-passes, both verdict-preserving: Prelint short-circuits
	// restrictions the lint analyzer proved statically unsatisfiable;
	// FastPath skips enumeration for restrictions the deep analyzer's
	// emptiness guards prove to hold on this projection.
	lopts := legal.Options{Check: opts, Prelint: true, FastPath: true}
	if opts.Cache != nil {
		if g, ok := opts.Cache.(legal.GuardCache); ok && opts.Cacheable() {
			lopts.Guards = g
		}
	}
	res := legal.Check(problem, proj.Comp, lopts)
	r := Result{Projection: proj, Legality: res}
	// Write the sat record only for a genuine, complete pass: a
	// cancelled context can truncate legal.Check into an empty (passing-
	// looking) partial result, which must never be persisted.
	if sat != nil && r.Sat() && !logic.Cancelled(logic.Done(opts.Ctx)) {
		sat.StoreSat(problem, c, corrKey, opts.Engine)
	}
	return r
}

// CheckAll runs Check over a set of program computations (e.g. every run
// of an exhaustive exploration), returning the index and result of the
// first failure, or (-1, ok-result) if all satisfy the problem. With
// opts.Parallelism > 1 the computations are fanned out to a worker pool
// with deterministic first-failure semantics: the reported index and
// result are the ones the sequential run finds. Cancelling opts.Ctx
// stops the fan-out promptly with the best failure found so far (see
// logic.FirstFailure); callers distinguish "all sat" from "interrupted"
// via ctx.Err().
func CheckAll(problem *spec.Spec, comps []*core.Computation, corr Correspondence, opts logic.CheckOptions) (int, Result) {
	inner := opts
	inner.Parallelism = 1
	idx, res := logic.FirstFailure(opts.Ctx, len(comps), opts.Parallelism, func(i int) (Result, bool) {
		r := Check(problem, comps[i], corr, inner)
		return r, r.Sat()
	})
	if idx < 0 {
		return -1, Result{}
	}
	return idx, res
}

// Indexed pairs a computation with its position in the exploration
// order, for streaming checks.
type Indexed struct {
	Index int
	Comp  *core.Computation
}

// CheckStream runs the sat check over computations arriving on ch (e.g.
// streamed from a simulator while exploration is still in progress)
// using opts.Parallelism workers. The channel carries batches rather
// than single computations so one channel operation amortizes over
// several checks: per-item sends put a contended synchronization point
// between every pair of cheap sat checks, the same pathology chunked
// dispatch fixes in logic.FirstFailure. It drains the channel
// completely and returns the lowest failing index and its result, or
// (-1, ok-result) when every computation satisfies the problem. When a
// failure is found, stop (if non-nil) is called once to let the
// producer cut exploration short; computations with a lower index are
// still checked, so the verdict and first-failure index equal the
// sequential run's over the same stream prefix.
//
// Cancelling opts.Ctx also fires stop once and makes the workers drain
// the remaining batches without checking them (the producer may have
// batches in flight; abandoning the channel would wedge it). The best
// failure found before cancellation is still returned.
func CheckStream(problem *spec.Spec, ch <-chan []Indexed, stop func(), corr Correspondence, opts logic.CheckOptions) (int, Result) {
	inner := opts
	inner.Parallelism = 1
	w := logic.Workers(opts.Parallelism, 1<<30)
	done := logic.Done(opts.Ctx)
	var (
		mu      sync.Mutex
		bestIdx = -1
		bestRes Result
		stopped bool
		wg      sync.WaitGroup
	)
	halt := func() {
		mu.Lock()
		defer mu.Unlock()
		if !stopped && stop != nil {
			stopped = true
			stop()
		}
	}
	fail := func(i int, r Result) {
		mu.Lock()
		if bestIdx < 0 || i < bestIdx {
			bestIdx, bestRes = i, r
		}
		mu.Unlock()
		halt()
	}
	skip := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		return bestIdx >= 0 && i > bestIdx
	}
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for batch := range ch {
				if logic.Cancelled(done) {
					halt()
					continue // keep draining so the producer can finish
				}
				for _, item := range batch {
					if skip(item.Index) {
						continue
					}
					if r := Check(problem, item.Comp, corr, inner); !r.Sat() {
						fail(item.Index, r)
					}
				}
			}
		}()
	}
	wg.Wait()
	if bestIdx < 0 {
		return -1, Result{}
	}
	return bestIdx, bestRes
}

func whereMatches(e *core.Event, where core.Params) bool {
	for k, v := range where {
		if e.Params[k] != v {
			return false
		}
	}
	return true
}

// expandElement substitutes the transaction key into an element pattern.
// Only the %s placeholder is supported, at most once; any other format
// verb (or a trailing %) is rejected with a clear error instead of
// letting fmt.Sprintf mint element names like "u%!d(string=r1)".
func expandElement(pattern, key string) (string, error) {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] != '%' {
			continue
		}
		if i+1 >= len(pattern) {
			return "", fmt.Errorf("verify: element pattern %q ends with a bare %%", pattern)
		}
		if pattern[i+1] != 's' {
			return "", fmt.Errorf("verify: element pattern %q contains unsupported verb %%%c (only %%s is allowed)", pattern, pattern[i+1])
		}
		i++
	}
	if !strings.Contains(pattern, "%s") {
		return pattern, nil
	}
	if strings.Count(pattern, "%s") > 1 {
		return "", fmt.Errorf("verify: element pattern %q uses %%s more than once", pattern)
	}
	return strings.Replace(pattern, "%s", key, 1), nil
}
