package verify

import (
	"strings"
	"testing"
)

func TestExpandElement(t *testing.T) {
	tests := []struct {
		pattern, key string
		want         string
		errSubstr    string
	}{
		{"buffer", "r1", "buffer", ""},
		{"u%s", "r1", "ur1", ""},
		{"%s", "w1", "w1", ""},
		{"a%sb", "x", "axb", ""},
		{"u%s%s", "r1", "", "more than once"},
		{"u%d", "r1", "", "unsupported verb %d"},
		{"u%v", "r1", "", "unsupported verb %v"},
		{"u%", "r1", "", "bare %"},
		{"100%%", "r1", "", "unsupported verb %%"},
	}
	for _, tt := range tests {
		got, err := expandElement(tt.pattern, tt.key)
		if tt.errSubstr == "" {
			if err != nil {
				t.Errorf("expandElement(%q, %q): unexpected error %v", tt.pattern, tt.key, err)
			} else if got != tt.want {
				t.Errorf("expandElement(%q, %q) = %q, want %q", tt.pattern, tt.key, got, tt.want)
			}
			continue
		}
		if err == nil {
			t.Errorf("expandElement(%q, %q) = %q, want error containing %q", tt.pattern, tt.key, got, tt.errSubstr)
		} else if !strings.Contains(err.Error(), tt.errSubstr) {
			t.Errorf("expandElement(%q, %q) error = %v, want substring %q", tt.pattern, tt.key, err, tt.errSubstr)
		}
	}
}
