package analyze

import (
	"fmt"
	"strings"

	"gem/internal/core"
	"gem/internal/lint"
	"gem/internal/spec"
)

// pairGraph is the abstract enable graph the deep analyses run over. Its
// nodes are the declared (element, event-class) pairs; its edges are the
// EnableConstraints lint extracted from the restriction formulae, lowered
// onto the pairs and filtered through the Section 4 access relation. The
// graph abstracts every computation: an event of pair p can exist in a
// legal computation only if some chain of access-legal constraint edges
// grounds p in constraint-free pairs (producibility, a least fixpoint).
type pairGraph struct {
	s        *spec.Spec
	universe *core.Universe // nil when the group structure is invalid
	// dynamic is set when the spec declares the admin element: the group
	// structure may change mid-computation, so access-based pruning is
	// unsound and disabled.
	dynamic bool

	pairs []core.ClassRef
	idx   map[core.ClassRef]int

	cons       []loweredCon
	producible []bool
}

// loweredCon is one EnableConstraint resolved onto pair ids.
type loweredCon struct {
	ci      int // index into the lint Result's Constraints
	targets []int
	sources []int
	doomed  bool
	// mandatory marks constraints whose wait is forced: a single source
	// pair (PREREQ between uniquely resolved classes). Only mandatory
	// edges participate in the deadlock analysis — a choice set can be
	// satisfied off-cycle.
	mandatory bool
}

func buildPairGraph(s *spec.Spec, lr *lint.Result) *pairGraph {
	g := &pairGraph{s: s, idx: make(map[core.ClassRef]int)}
	g.universe, _ = s.Universe()
	if _, declared := s.Element(core.AdminElement); declared {
		g.dynamic = true
	}
	g.pairs = s.ClassPairs()
	for i, p := range g.pairs {
		g.idx[p] = i
	}
	for ci, c := range lr.Constraints {
		lc := loweredCon{ci: ci, targets: g.resolve(c.Target), doomed: c.Doomed}
		valid := len(lc.targets) > 0
		for _, src := range c.Sources {
			ids := g.resolve(src)
			if len(ids) == 0 {
				valid = false
			}
			lc.sources = append(lc.sources, ids...)
		}
		if !valid {
			// Dangling references: the defect is GEM001/GEM002 territory
			// and the constraint is vacuous, not part of the graph.
			continue
		}
		lc.sources = dedupInts(lc.sources)
		lc.mandatory = len(lc.sources) == 1
		g.cons = append(g.cons, lc)
	}
	g.computeProducibility()
	return g
}

// resolve returns the pair ids a class reference may denote, in pair
// order. Empty when the reference dangles.
func (g *pairGraph) resolve(ref core.ClassRef) []int {
	if ref.Element != "" && ref.Class != "" {
		if i, ok := g.idx[core.Ref(ref.Element, ref.Class)]; ok {
			return []int{i}
		}
		return nil
	}
	var out []int
	for i, p := range g.pairs {
		if ref.Element != "" && p.Element != ref.Element {
			continue
		}
		if ref.Class != "" && p.Class != ref.Class {
			continue
		}
		out = append(out, i)
	}
	return out
}

func dedupInts(xs []int) []int {
	seen := make(map[int]bool, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// edgeOK reports whether the access relation admits an enable edge from
// source pair s to target pair t. With dynamic group changes declared,
// every edge is assumed possible.
func (g *pairGraph) edgeOK(s, t int) bool {
	if g.dynamic || g.universe == nil {
		return true
	}
	return g.universe.MayEnable(g.pairs[s].Element, g.pairs[t].Element, g.pairs[t].Class)
}

// computeProducibility runs the least fixpoint: a pair with no
// constraint targeting it is producible outright (its events need no
// particular enabler); a constrained pair becomes producible when every
// constraint targeting it can draw on a producible source over an
// access-legal edge. Doomed constraints (GEM004/GEM005) never admit
// events of their targets, so their targets stay unproducible.
func (g *pairGraph) computeProducibility() {
	n := len(g.pairs)
	isTarget := make([]bool, n)
	for _, c := range g.cons {
		for _, t := range c.targets {
			isTarget[t] = true
		}
	}
	g.producible = make([]bool, n)
	for i := range g.producible {
		g.producible[i] = !isTarget[i]
	}
	for changed := true; changed; {
		changed = false
		for p := 0; p < n; p++ {
			if g.producible[p] || !isTarget[p] {
				continue
			}
			ok := true
			for _, c := range g.cons {
				if !targetsPair(c, p) {
					continue
				}
				if c.doomed {
					ok = false
					break
				}
				some := false
				for _, s := range c.sources {
					if g.producible[s] && g.edgeOK(s, p) {
						some = true
						break
					}
				}
				if !some {
					ok = false
					break
				}
			}
			if ok {
				g.producible[p] = true
				changed = true
			}
		}
	}
}

func targetsPair(c loweredCon, p int) bool {
	for _, t := range c.targets {
		if t == p {
			return true
		}
	}
	return false
}

// unproducible reports whether every pair the reference resolves to is
// statically unproducible — no legal computation contains an event
// matching the reference. False for dangling references (no pairs).
func (g *pairGraph) unproducible(ref core.ClassRef) bool {
	ids := g.resolve(ref)
	if len(ids) == 0 {
		return false
	}
	for _, id := range ids {
		if g.producible[id] {
			return false
		}
	}
	return true
}

// checkUnreachable reports GEM011 for every unproducible pair whose
// defect is transitive: no constraint targeting it is itself doomed
// (those are already GEM004/GEM005), yet producibility cannot ground it
// because its enablers are unproducible further up the chain.
//
// GEM011 deliberately does NOT doom the constraints involved: "no legal
// computation contains pair p" refutes the whole specification's
// satisfiability, not the individual restriction on an arbitrary
// (possibly illegal) computation — an event of p with a proper enabler
// satisfies the p-restriction even though the enabler is illegal. The
// verify fast-path therefore never consults producibility.
func (a *deepAnalysis) checkUnreachable(g *pairGraph, lr *lint.Result) {
	for p, prod := range g.producible {
		if prod {
			continue
		}
		anyDoomed := false
		first := -1
		for _, c := range g.cons {
			if !targetsPair(c, p) {
				continue
			}
			if c.doomed {
				anyDoomed = true
				break
			}
			if first < 0 || c.ci < first {
				first = c.ci
			}
		}
		if anyDoomed || first < 0 {
			continue
		}
		ec := lr.Constraints[first]
		a.errAt(a.restrictionPos(ec.Restriction), lint.CodeUnreachable,
			restrictionSubject(ec.Owner, ec.Restriction),
			"no legal enable chain can produce an event of %s: every required enabler in %s is itself unproducible",
			g.pairs[p], sourcesString(g, g.consTargeting(p)))
	}
}

// consTargeting returns the non-doomed lowered constraints targeting p.
func (g *pairGraph) consTargeting(p int) []loweredCon {
	var out []loweredCon
	for _, c := range g.cons {
		if targetsPair(c, p) && !c.doomed {
			out = append(out, c)
		}
	}
	return out
}

// sourcesString renders the union of source pairs of the constraints,
// for the GEM011 message.
func sourcesString(g *pairGraph, cons []loweredCon) string {
	var ids []int
	for _, c := range cons {
		ids = append(ids, c.sources...)
	}
	ids = dedupInts(ids)
	insertSortedInts(ids)
	refs := make([]core.ClassRef, len(ids))
	for i, id := range ids {
		refs[i] = g.pairs[id]
	}
	if len(refs) == 1 {
		return refs[0].String()
	}
	parts := make([]string, len(refs))
	for i, r := range refs {
		parts[i] = r.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func insertSortedInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func restrictionSubject(owner, name string) string {
	return fmt.Sprintf("restriction %q of %s", name, owner)
}
