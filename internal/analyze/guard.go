package analyze

import (
	"sort"
	"strings"

	"gem/internal/core"
	"gem/internal/logic"
)

// This file implements the emptiness-guard calculus: a syntactic analysis
// that, for a restriction formula f, finds sets of event classes and
// thread types ("guards") whose absence from a computation decides f
// outright — in every environment, at every history and sequence
// position. The soundness argument rests on one fact about the dynamic
// semantics: quantifier domains are computation-wide (logic.classDomain
// is env.C.EventsOf, logic.threadDomain scans event labels), so a ForAll
// over a class with no events is true and an Exists is false regardless
// of the body, in every env sharing that computation.
//
// The calculus is used twice:
//
//   - validGuards feeds the verify fast-path: when a computation is
//     empty on some valid guard, the restriction holds — enumeration can
//     be skipped with the verdict preserved exactly.
//   - falseGuards feeds GEM009: when every class of some false guard is
//     statically unproducible, the restriction is false on every legal
//     computation, so the specification admits none.

// maxGuardAlts caps the alternatives tracked per formula; the cross
// products below (And for valid, Or for false) are the only growth
// points. Dropping alternatives is sound — guards are sufficient
// conditions, never necessary ones.
const maxGuardAlts = 16

// guardSet is one emptiness condition: every listed class reference must
// have no events in the computation, and no event may carry a label of a
// listed thread type. The empty guardSet is the trivially-satisfied
// condition (the formula is a tautology, resp. unsatisfiable).
type guardSet struct {
	refs    []core.ClassRef
	threads []string
}

func (g guardSet) withRef(refs ...core.ClassRef) guardSet {
	out := guardSet{refs: append([]core.ClassRef(nil), refs...)}
	return out.normalize()
}

func (g guardSet) withThread(t string) guardSet {
	return guardSet{threads: []string{t}}
}

// normalize sorts and dedups, so structurally equal guards compare equal.
func (g guardSet) normalize() guardSet {
	sort.Slice(g.refs, func(i, j int) bool { return refLess(g.refs[i], g.refs[j]) })
	g.refs = dedupRefs(g.refs)
	sort.Strings(g.threads)
	g.threads = dedupStrings(g.threads)
	return g
}

func refLess(a, b core.ClassRef) bool {
	if a.Element != b.Element {
		return a.Element < b.Element
	}
	return a.Class < b.Class
}

func dedupRefs(rs []core.ClassRef) []core.ClassRef {
	out := rs[:0]
	for i, r := range rs {
		if i == 0 || r != rs[i-1] {
			out = append(out, r)
		}
	}
	return out
}

func dedupStrings(ss []string) []string {
	out := ss[:0]
	for i, s := range ss {
		if i == 0 || s != ss[i-1] {
			out = append(out, s)
		}
	}
	return out
}

// mergeGuards unions two emptiness conditions (both must hold).
func mergeGuards(a, b guardSet) guardSet {
	return guardSet{
		refs:    append(append([]core.ClassRef(nil), a.refs...), b.refs...),
		threads: append(append([]string(nil), a.threads...), b.threads...),
	}.normalize()
}

// crossGuards pairs every alternative of a with every alternative of b
// (conjunction of conditions), capped at maxGuardAlts.
func crossGuards(a, b []guardSet) []guardSet {
	var out []guardSet
	for _, ga := range a {
		for _, gb := range b {
			out = append(out, mergeGuards(ga, gb))
			if len(out) >= maxGuardAlts {
				return out
			}
		}
	}
	return out
}

// unionAlts concatenates alternative lists (disjunction of conditions),
// capped at maxGuardAlts.
func unionAlts(lists ...[]guardSet) []guardSet {
	var out []guardSet
	for _, l := range lists {
		for _, g := range l {
			out = append(out, g)
			if len(out) >= maxGuardAlts {
				return out
			}
		}
	}
	return out
}

// validGuards returns alternative guards, each sufficient for f to be
// TRUE in every environment over a computation empty on the guard. An
// empty result means the calculus cannot decide f by emptiness; a result
// containing the empty guardSet means f is a tautology.
func validGuards(f logic.Formula) []guardSet {
	switch g := f.(type) {
	case logic.TrueF:
		return []guardSet{{}}
	case logic.ForAll:
		return []guardSet{guardSet{}.withRef(g.Ref)}
	case logic.ForAllIn:
		return []guardSet{guardSet{}.withRef(g.Refs...)}
	case logic.AtMostOne:
		return []guardSet{guardSet{}.withRef(g.Ref)}
	case logic.ForAllThread:
		return []guardSet{guardSet{}.withThread(g.Type)}
	case logic.Not:
		return falseGuards(g.F)
	case logic.And:
		// Every conjunct must be decided true under one combined guard.
		alts := []guardSet{{}}
		for _, sub := range g {
			alts = crossGuards(alts, validGuards(sub))
			if len(alts) == 0 {
				return nil
			}
		}
		return alts
	case logic.Or:
		var lists [][]guardSet
		for _, sub := range g {
			lists = append(lists, validGuards(sub))
		}
		return unionAlts(lists...)
	case logic.Implies:
		return unionAlts(falseGuards(g.If), validGuards(g.Then))
	case logic.Iff:
		return unionAlts(
			crossGuards(validGuards(g.A), validGuards(g.B)),
			crossGuards(falseGuards(g.A), falseGuards(g.B)))
	case logic.Box:
		// □φ is true when φ holds at every position; a guard making φ
		// true in every env does exactly that.
		return validGuards(g.F)
	case logic.Diamond:
		// Sequences are non-empty, so always-true φ is eventually true.
		return validGuards(g.F)
	case logic.CountDiff:
		if g.Min <= 0 && (g.NoMax || g.Max >= 0) {
			return []guardSet{guardSet{}.withRef(g.A, g.B)}
		}
		return nil
	case logic.FIFOValues:
		// With no B events the pairing loop is empty and the check holds.
		return []guardSet{guardSet{}.withRef(g.B)}
	default:
		return nil
	}
}

// falseGuards returns alternative guards, each sufficient for f to be
// FALSE in every environment over a computation empty on the guard. A
// result containing the empty guardSet means f is unsatisfiable outright.
func falseGuards(f logic.Formula) []guardSet {
	switch g := f.(type) {
	case logic.FalseF:
		return []guardSet{{}}
	case logic.Exists:
		return []guardSet{guardSet{}.withRef(g.Ref)}
	case logic.ExistsUnique:
		return []guardSet{guardSet{}.withRef(g.Ref)}
	case logic.ExistsUniqueIn:
		return []guardSet{guardSet{}.withRef(g.Refs...)}
	case logic.ExistsThread:
		return []guardSet{guardSet{}.withThread(g.Type)}
	case logic.Not:
		return validGuards(g.F)
	case logic.And:
		var lists [][]guardSet
		for _, sub := range g {
			lists = append(lists, falseGuards(sub))
		}
		return unionAlts(lists...)
	case logic.Or:
		// Every disjunct must be decided false under one combined guard.
		alts := []guardSet{{}}
		for _, sub := range g {
			alts = crossGuards(alts, falseGuards(sub))
			if len(alts) == 0 {
				return nil
			}
		}
		return alts
	case logic.Implies:
		return crossGuards(validGuards(g.If), falseGuards(g.Then))
	case logic.Iff:
		return unionAlts(
			crossGuards(validGuards(g.A), falseGuards(g.B)),
			crossGuards(falseGuards(g.A), validGuards(g.B)))
	case logic.Box:
		// Always-false φ fails at the first position of every sequence.
		return falseGuards(g.F)
	case logic.Diamond:
		return falseGuards(g.F)
	case logic.CountDiff:
		if g.Min > 0 || (!g.NoMax && g.Max < 0) {
			return []guardSet{guardSet{}.withRef(g.A, g.B)}
		}
		return nil
	default:
		return nil
	}
}

// Guard is the statically computed fast-path condition for one
// restriction: when HoldsOn reports true for a computation, the
// restriction is satisfied on that computation and enumeration may be
// skipped with the verdict preserved.
type Guard struct {
	Owner string
	Name  string
	alts  []guardSet
}

// Decisive reports whether the guard has any alternative at all (an
// indecisive guard never fires).
func (g Guard) Decisive() bool { return len(g.alts) > 0 }

// HoldsOn reports whether some alternative guard is empty on the
// computation: all guarded classes have no events and no event carries a
// label of a guarded thread type.
func (g Guard) HoldsOn(c *core.Computation) bool {
	for _, alt := range g.alts {
		if alt.emptyOn(c) {
			return true
		}
	}
	return false
}

func (gs guardSet) emptyOn(c *core.Computation) bool {
	for _, ref := range gs.refs {
		if len(c.EventsOf(ref)) > 0 {
			return false
		}
	}
	if len(gs.threads) > 0 {
		for _, e := range c.Events() {
			for _, tid := range e.Threads {
				for _, t := range gs.threads {
					if logic.ThreadTypeOf(tid) == t {
						return false
					}
				}
			}
		}
	}
	return true
}

func (gs guardSet) String() string {
	parts := make([]string, 0, len(gs.refs)+len(gs.threads))
	for _, r := range gs.refs {
		parts = append(parts, r.String())
	}
	for _, t := range gs.threads {
		parts = append(parts, "thread "+t)
	}
	if len(parts) == 0 {
		return "{}"
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
