package analyze_test

import (
	"testing"

	"gem/internal/analyze"
	"gem/internal/problems/boundedbuf"
	"gem/internal/problems/rw"
)

// TestShippedSpecsDeepClean: the problem specs the repo verifies must
// produce no deep diagnostics — the analyzer must not cry wolf on the
// paper's own examples.
func TestShippedSpecsDeepClean(t *testing.T) {
	bufSpec, err := boundedbuf.ProblemSpec(boundedbuf.Workload{
		Producers: 2, Consumers: 2, ItemsPerProducer: 2, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	rwSpec, err := rw.ProblemSpec([]string{"u1", "u2", "w1"}, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		res  *analyze.Result
	}{
		{"boundedbuf", analyze.Analyze(bufSpec)},
		{"rw", analyze.Analyze(rwSpec)},
	} {
		if len(tc.res.Deep) != 0 {
			t.Errorf("%s: deep analyzer flagged a shipped spec: %v", tc.name, tc.res.Deep)
		}
	}
}

// TestForSpecMemoized: the fast path calls ForSpec once per computation;
// repeated calls must return the identical cached result.
func TestForSpecMemoized(t *testing.T) {
	s, err := boundedbuf.ProblemSpec(boundedbuf.Workload{
		Producers: 1, Consumers: 1, ItemsPerProducer: 1, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	if analyze.ForSpec(s) != analyze.ForSpec(s) {
		t.Error("ForSpec did not memoize the analysis result")
	}
}

// BenchmarkDeepAnalyze measures a full deep analysis of the bounded
// buffer problem spec (graph build, producibility fixpoint, deadlock
// SCC, redundancy scan, guard computation).
func BenchmarkDeepAnalyze(b *testing.B) {
	s, err := boundedbuf.ProblemSpec(boundedbuf.Workload{
		Producers: 2, Consumers: 2, ItemsPerProducer: 4, Capacity: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := analyze.Analyze(s); len(res.Deep) != 0 {
			b.Fatalf("unexpected deep diagnostics: %v", res.Deep)
		}
	}
}
