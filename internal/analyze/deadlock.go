package analyze

import (
	"sort"
	"strings"

	"gem/internal/lint"
	"gem/internal/order"
	"gem/internal/thread"
)

// The static deadlock analysis (GEM010) builds a wait-for graph over the
// (element, class) pairs and looks for cycles that mix the two kinds of
// mandatory waits GEM has:
//
//   - constraint waits: a PREREQ-shaped restriction with a uniquely
//     resolved single source forces every target event to wait for a
//     prior source event — edge target → source;
//   - thread waits: a thread path (c0 :: c1 :: …) forces each ci+1 event
//     on an instance to follow the instance's ci event — edge ci+1 → ci.
//
// A strongly connected component containing at least one edge of each
// kind is a circular wait no scheduler can break: the prerequisite
// demands an event from later in some thread before an earlier stage of
// another (or the same) chain can proceed — the paper's §4
// mutual-exclusion and priority examples gone wrong. Pure constraint
// cycles are GEM004's business and are not re-reported here; pure thread
// "cycles" (a path revisiting a class) are legitimate iteration.
type waitEdge struct {
	from, to int
	// ci is the constraint index for constraint edges, -1 for thread
	// edges; tt names the thread type for thread edges.
	ci int
	tt string
}

func (a *deepAnalysis) checkDeadlock(g *pairGraph, lr *lint.Result) {
	var edges []waitEdge
	for _, c := range g.cons {
		if c.doomed || !c.mandatory {
			continue
		}
		src := c.sources[0]
		for _, t := range c.targets {
			if t == src || !g.edgeOK(src, t) {
				continue
			}
			edges = append(edges, waitEdge{from: t, to: src, ci: c.ci, tt: ""})
		}
	}
	for _, name := range sortedTypeNames(a.s.Threads()) {
		for _, path := range thread.PathsByType(a.s.Threads())[name] {
			for i := 0; i+1 < len(path); i++ {
				from, to := g.resolve(path[i+1]), g.resolve(path[i])
				// Only uniquely resolved stages give a mandatory wait; an
				// ambiguous reference lets the instance advance via an
				// alternative pair.
				if len(from) != 1 || len(to) != 1 || from[0] == to[0] {
					continue
				}
				edges = append(edges, waitEdge{from: from[0], to: to[0], ci: -1, tt: name})
			}
		}
	}

	d := order.NewDAG(len(g.pairs))
	for _, e := range edges {
		d.AddEdge(e.from, e.to)
	}
	for _, comp := range d.SCC() {
		if len(comp) < 2 {
			continue
		}
		in := make(map[int]bool, len(comp))
		for _, v := range comp {
			in[v] = true
		}
		var inComp []waitEdge
		hasThread, hasCon := false, false
		for _, e := range edges {
			if in[e.from] && in[e.to] {
				inComp = append(inComp, e)
				if e.ci >= 0 {
					hasCon = true
				} else {
					hasThread = true
				}
			}
		}
		if !hasThread || !hasCon {
			continue
		}
		// Anchor the diagnostic at the first (lowest-index) restriction
		// participating in the cycle.
		firstCI := -1
		for _, e := range inComp {
			if e.ci >= 0 && (firstCI < 0 || e.ci < firstCI) {
				firstCI = e.ci
			}
		}
		ec := lr.Constraints[firstCI]
		a.warnAt(a.restrictionPos(ec.Restriction), lint.CodeDeadlock,
			restrictionSubject(ec.Owner, ec.Restriction),
			"possible static deadlock: %s", cycleDescription(g, lr, comp, inComp))
	}
}

// cycleDescription walks one concrete cycle inside the component and
// renders each wait, e.g.
//
//	a.Go waits for prior b.Go (restriction "r1" of x); b.Go follows
//	b.Req on thread piB; b.Req waits for prior a.Go (restriction "r2" of x)
func cycleDescription(g *pairGraph, lr *lint.Result, comp []int, edges []waitEdge) string {
	next := make(map[int]waitEdge, len(comp))
	// Deterministic successor choice: lowest target, thread edges tie-broken
	// by type name, constraint edges by index.
	for _, e := range edges {
		cur, ok := next[e.from]
		if !ok || e.to < cur.to || (e.to == cur.to && e.ci < cur.ci) {
			next[e.from] = e
		}
	}
	start := comp[0]
	var parts []string
	seen := map[int]bool{}
	for v := start; !seen[v]; {
		seen[v] = true
		e, ok := next[v]
		if !ok {
			break
		}
		if e.ci >= 0 {
			ec := lr.Constraints[e.ci]
			parts = append(parts, g.pairs[e.from].String()+" waits for prior "+
				g.pairs[e.to].String()+" ("+restrictionSubject(ec.Owner, ec.Restriction)+")")
		} else {
			parts = append(parts, g.pairs[e.from].String()+" follows "+
				g.pairs[e.to].String()+" on thread "+e.tt)
		}
		v = e.to
	}
	return strings.Join(parts, "; ")
}

func sortedTypeNames(types []thread.Type) []string {
	seen := make(map[string]bool)
	var out []string
	for _, tt := range types {
		if !seen[tt.Name] {
			seen[tt.Name] = true
			out = append(out, tt.Name)
		}
	}
	sort.Strings(out)
	return out
}
