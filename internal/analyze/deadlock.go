package analyze

import (
	"sort"

	"gem/internal/lint"
	"gem/internal/thread"
)

// The static deadlock analysis (GEM010) builds a wait-for graph over the
// (element, class) pairs and looks for cycles that mix the two kinds of
// mandatory waits GEM has:
//
//   - constraint waits: a PREREQ-shaped restriction with a uniquely
//     resolved single source forces every target event to wait for a
//     prior source event — edge target → source;
//   - thread waits: a thread path (c0 :: c1 :: …) forces each ci+1 event
//     on an instance to follow the instance's ci event — edge ci+1 → ci.
//
// A strongly connected component containing at least one edge of each
// kind is a circular wait no scheduler can break: the prerequisite
// demands an event from later in some thread before an earlier stage of
// another (or the same) chain can proceed — the paper's §4
// mutual-exclusion and priority examples gone wrong. Pure constraint
// cycles are GEM004's business and are not re-reported here; pure thread
// "cycles" (a path revisiting a class) are legitimate iteration.
//
// The graph itself is the shared WaitGraph (waitfor.go), which the Go
// front end (internal/gofront) reuses for its GEM014–GEM016 analyses.
const (
	waitKindConstraint = iota
	waitKindThread
)

func (a *deepAnalysis) checkDeadlock(g *pairGraph, lr *lint.Result) {
	wg := NewWaitGraph(len(g.pairs))
	for _, c := range g.cons {
		if c.doomed || !c.mandatory {
			continue
		}
		src := c.sources[0]
		for _, t := range c.targets {
			if t == src || !g.edgeOK(src, t) {
				continue
			}
			ec := lr.Constraints[c.ci]
			wg.AddEdge(WaitEdge{
				From: t, To: src, Kind: waitKindConstraint, Rank: c.ci,
				Label: g.pairs[t].String() + " waits for prior " + g.pairs[src].String() +
					" (" + restrictionSubject(ec.Owner, ec.Restriction) + ")",
			})
		}
	}
	for _, name := range sortedTypeNames(a.s.Threads()) {
		for _, path := range thread.PathsByType(a.s.Threads())[name] {
			for i := 0; i+1 < len(path); i++ {
				from, to := g.resolve(path[i+1]), g.resolve(path[i])
				// Only uniquely resolved stages give a mandatory wait; an
				// ambiguous reference lets the instance advance via an
				// alternative pair.
				if len(from) != 1 || len(to) != 1 || from[0] == to[0] {
					continue
				}
				wg.AddEdge(WaitEdge{
					From: from[0], To: to[0], Kind: waitKindThread, Rank: -1,
					Label: g.pairs[from[0]].String() + " follows " + g.pairs[to[0]].String() +
						" on thread " + name,
				})
			}
		}
	}

	for _, cycle := range wg.Cycles() {
		if !cycle.HasKind(waitKindThread) || !cycle.HasKind(waitKindConstraint) {
			continue
		}
		// Anchor the diagnostic at the first (lowest-index) restriction
		// participating in the cycle.
		firstCI := cycle.MinRankOfKind(waitKindConstraint)
		ec := lr.Constraints[firstCI]
		a.warnAt(a.restrictionPos(ec.Restriction), lint.CodeDeadlock,
			restrictionSubject(ec.Owner, ec.Restriction),
			"possible static deadlock: %s", cycle.Describe())
	}
}

func sortedTypeNames(types []thread.Type) []string {
	seen := make(map[string]bool)
	var out []string
	for _, tt := range types {
		if !seen[tt.Name] {
			seen[tt.Name] = true
			out = append(out, tt.Name)
		}
	}
	sort.Strings(out)
	return out
}
