// Package analyze implements gemlint's deep semantic analysis (the
// `-deep` mode): whole-specification reasoning over an abstract enable
// graph derived from the IR — elements, groups, ports, the Section 4
// access relation, and the EnableConstraints extracted from the Section
// 8.2 abbreviation shapes — plus a wait-for graph over the Section 8.3
// thread chains. Where package lint checks each restriction in
// isolation (GEM001–GEM008), this package checks their interactions:
//
//	GEM009  contradictory restriction set — the spec admits no legal
//	        computation at all, so every verification against it is
//	        vacuous (error);
//	GEM010  static deadlock — a circular mandatory wait among
//	        prerequisites threaded across chains (warning);
//	GEM011  unreachable event — a class no legal enable chain can
//	        produce, transitively, under the access relation (error);
//	GEM012  subsumed/redundant restriction (warning).
//
// The same run computes per-restriction emptiness Guards that the
// legality checker's fast path (legal.Options.FastPath) consults to skip
// enumeration on computations where a restriction is decided statically;
// the skip is verdict-preserving (see guard.go for the soundness
// argument).
package analyze

import (
	"fmt"
	"sync"

	"gem/internal/gemlang"
	"gem/internal/lint"
	"gem/internal/obs"
	"gem/internal/spec"
	"gem/internal/thread"
)

// Result is the outcome of one deep analysis.
type Result struct {
	// Lint is the underlying shallow analysis (GEM001–GEM008) the deep
	// passes build on.
	Lint *lint.Result
	// Deep holds the GEM009–GEM012 diagnostics, canonically sorted.
	Deep []lint.Diagnostic

	guards map[string]Guard // owner+"\x00"+name -> fast-path guard
}

// All returns the shallow and deep diagnostics merged in canonical
// order.
func (r *Result) All() []lint.Diagnostic {
	out := make([]lint.Diagnostic, 0, len(r.Lint.Diags)+len(r.Deep))
	out = append(out, r.Lint.Diags...)
	out = append(out, r.Deep...)
	lint.SortDiagnostics(out)
	return out
}

// Errors returns the error-severity diagnostics of All.
func (r *Result) Errors() []lint.Diagnostic { return r.bySeverity(lint.SeverityError) }

// Warnings returns the warning-severity diagnostics of All.
func (r *Result) Warnings() []lint.Diagnostic { return r.bySeverity(lint.SeverityWarning) }

func (r *Result) bySeverity(s lint.Severity) []lint.Diagnostic {
	var out []lint.Diagnostic
	for _, d := range r.All() {
		if d.Severity == s {
			out = append(out, d)
		}
	}
	return out
}

// GuardFor returns the fast-path guard computed for the named
// restriction.
func (r *Result) GuardFor(owner, name string) (Guard, bool) {
	g, ok := r.guards[owner+"\x00"+name]
	return g, ok
}

// Analyze runs the deep analysis over the specification IR. Diagnostics
// carry no positions; use AnalyzeSource for position-annotated output.
func Analyze(s *spec.Spec) *Result { return AnalyzeMarked(s, nil) }

// AnalyzeSource parses GEM source and deep-analyzes it, attaching source
// positions to the diagnostics.
func AnalyzeSource(src string) (*Result, error) {
	s, marks, err := gemlang.ParseWithPositions(src)
	if err != nil {
		return nil, err
	}
	return AnalyzeMarked(s, marks), nil
}

// AnalyzeMarked deep-analyzes an already-parsed specification with the
// given position map (which may be nil).
func AnalyzeMarked(s *spec.Spec, marks *gemlang.SourceMap) *Result {
	lr := lint.AnalyzeMarked(s, marks)
	_, sp := obs.StartSpan(nil, "analyze.deep")
	defer sp.End()
	a := &deepAnalysis{s: s, marks: marks, res: &Result{Lint: lr, guards: make(map[string]Guard)}}
	g := buildPairGraph(s, lr)
	a.checkUnreachable(g, lr)
	a.checkContradiction(g)
	a.checkDeadlock(g, lr)
	a.checkRedundant(lr)
	a.computeGuards()
	lint.SortDiagnostics(a.res.Deep)
	return a.res
}

var specCache sync.Map // *spec.Spec -> *Result

// ForSpec memoizes Analyze per Spec value; the legality checker's fast
// path calls it once per computation checked, so the analysis must be
// free after the first call.
func ForSpec(s *spec.Spec) *Result {
	if r, ok := specCache.Load(s); ok {
		return r.(*Result)
	}
	r := Analyze(s)
	specCache.Store(s, r)
	return r
}

// deepAnalysis carries the shared state of one AnalyzeMarked run.
type deepAnalysis struct {
	s     *spec.Spec
	marks *gemlang.SourceMap
	res   *Result
}

func (a *deepAnalysis) restrictionPos(name string) lint.Pos {
	return lint.PosOf(a.marks, "restriction", name)
}

func (a *deepAnalysis) errAt(pos lint.Pos, code lint.Code, subject, format string, args ...any) {
	a.add(lint.Diagnostic{Code: code, Severity: lint.SeverityError, Subject: subject,
		Message: fmt.Sprintf(format, args...), Pos: pos})
}

func (a *deepAnalysis) warnAt(pos lint.Pos, code lint.Code, subject, format string, args ...any) {
	a.add(lint.Diagnostic{Code: code, Severity: lint.SeverityWarning, Subject: subject,
		Message: fmt.Sprintf(format, args...), Pos: pos})
}

func (a *deepAnalysis) add(d lint.Diagnostic) {
	for _, prev := range a.res.Deep {
		if prev.Code == d.Code && prev.Subject == d.Subject && prev.Message == d.Message {
			return
		}
	}
	a.res.Deep = append(a.res.Deep, d)
}

// checkContradiction reports GEM009: a restriction that is false on
// every legal computation, because some emptiness guard falsifying it
// names only classes (and thread types) the producibility fixpoint
// proved no legal computation can contain. The specification then has no
// satisfying computation at all — every verification against it is
// vacuously "correct", which is worth an error, not a warning.
func (a *deepAnalysis) checkContradiction(g *pairGraph) {
	for _, r := range a.s.Restrictions() {
		for _, alt := range falseGuards(r.F) {
			if !a.guardUnsatisfiable(g, alt) {
				continue
			}
			msg := "statically unsatisfiable restriction set: the formula is false in every computation"
			if len(alt.refs) > 0 || len(alt.threads) > 0 {
				msg = fmt.Sprintf("statically unsatisfiable restriction set: requires %s, but no legal computation contains such events",
					alt.String())
			}
			a.errAt(a.restrictionPos(r.Name), lint.CodeContradiction,
				restrictionSubject(r.Owner, r.Name), "%s", msg)
			break
		}
	}
}

// guardUnsatisfiable reports whether the emptiness condition necessarily
// holds on every legal computation: each guarded class resolves only to
// unproducible pairs, and each guarded thread type is declared with
// every alternative path headed by an unproducible class (so no instance
// can ever start). Dangling references and undeclared thread types are
// excluded — their defects are GEM001/GEM002/GEM007 territory and they
// say nothing about legal computations.
func (a *deepAnalysis) guardUnsatisfiable(g *pairGraph, gs guardSet) bool {
	for _, ref := range gs.refs {
		if !g.unproducible(ref) {
			return false
		}
	}
	paths := thread.PathsByType(a.s.Threads())
	for _, t := range gs.threads {
		alts, declared := paths[t]
		if !declared {
			return false
		}
		for _, path := range alts {
			if !g.unproducible(path[0]) {
				return false
			}
		}
	}
	return true
}

// computeGuards derives the verify fast-path guard for every
// restriction.
func (a *deepAnalysis) computeGuards() {
	for _, r := range a.s.Restrictions() {
		g := Guard{Owner: r.Owner, Name: r.Name, alts: validGuards(r.F)}
		a.res.guards[r.Owner+"\x00"+r.Name] = g
	}
}
