package analyze

import (
	"reflect"
	"sort"
	"strings"

	"gem/internal/lint"
)

// The redundancy analysis (GEM012) flags restrictions another restriction
// already implies:
//
//  1. a formula structurally identical to an earlier restriction's
//     (reflect.DeepEqual over the IR — quantifier variable names included,
//     so only true duplicates match);
//  2. a prerequisite constraint whose (source set, target) duplicates one
//     an earlier restriction imposes.
//
// Duplicates are warnings: the spec's meaning is unchanged, but every
// copy costs a full enumeration pass per computation checked.
func (a *deepAnalysis) checkRedundant(lr *lint.Result) {
	rs := a.s.Restrictions()
	key := func(i int) string { return rs[i].Owner + "\x00" + rs[i].Name }
	// reportedPair dedupes (1) against (2): an identical formula already
	// explains why the extracted constraints coincide.
	reportedPair := make(map[string]bool)

	for j := range rs {
		for i := 0; i < j; i++ {
			if key(i) == key(j) {
				continue
			}
			if reflect.DeepEqual(rs[i].F, rs[j].F) {
				reportedPair[key(i)+"\x01"+key(j)] = true
				a.warnAt(a.restrictionPos(rs[j].Name), lint.CodeRedundant,
					restrictionSubject(rs[j].Owner, rs[j].Name),
					"redundant: identical to %s", restrictionSubject(rs[i].Owner, rs[i].Name))
				break
			}
		}
	}

	// Constraint-level subsumption. Constraints are grouped by their
	// canonical (sorted sources, target) shape; within a group the first
	// declaring restriction wins and later distinct ones are flagged once.
	type conOwner struct{ owner, name string }
	index := make(map[string]int) // restriction key -> index in rs
	for i := range rs {
		index[key(i)] = i
	}
	byShape := make(map[string][]conOwner)
	var shapes []string
	for _, c := range lr.Constraints {
		srcs := make([]string, len(c.Sources))
		for k, s := range c.Sources {
			srcs[k] = s.String()
		}
		sort.Strings(srcs)
		shape := strings.Join(srcs, ",") + ">" + c.Target.String()
		if _, ok := byShape[shape]; !ok {
			shapes = append(shapes, shape)
		}
		byShape[shape] = append(byShape[shape], conOwner{c.Owner, c.Restriction})
	}
	flagged := make(map[string]bool)
	for _, shape := range shapes {
		owners := byShape[shape]
		first := owners[0]
		for _, o := range owners[1:] {
			if o == first {
				continue // the same restriction repeating its own conjunct
			}
			ki := first.owner + "\x00" + first.name
			kj := o.owner + "\x00" + o.name
			if reportedPair[ki+"\x01"+kj] || reportedPair[kj+"\x01"+ki] || flagged[kj+shape] {
				continue
			}
			flagged[kj+shape] = true
			a.warnAt(a.restrictionPos(o.name), lint.CodeRedundant,
				restrictionSubject(o.owner, o.name),
				"redundant: prerequisite %s is already imposed by %s",
				shapeString(shape), restrictionSubject(first.owner, first.name))
		}
	}
}

// shapeString renders the canonical shape back in the arrow form users
// see elsewhere ("src -> target", "{s1, s2} -> target").
func shapeString(shape string) string {
	i := strings.LastIndex(shape, ">")
	srcs, target := shape[:i], shape[i+1:]
	if strings.Contains(srcs, ",") {
		srcs = "{" + strings.ReplaceAll(srcs, ",", ", ") + "}"
	}
	return srcs + " -> " + target
}
