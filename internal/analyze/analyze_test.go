package analyze

import (
	"strings"
	"testing"

	"gem/internal/core"
	"gem/internal/lint"
	"gem/internal/logic"
	"gem/internal/thread"
)

func refs(gs guardSet) string { return gs.String() }

// TestValidGuards exercises the emptiness-guard calculus on the formula
// shapes the restriction language produces: each case lists the guard
// alternatives under which the formula is statically TRUE.
func TestValidGuards(t *testing.T) {
	aGo := core.Ref("a", "Go")
	bGo := core.Ref("b", "Go")
	cases := []struct {
		name string
		f    logic.Formula
		want []string // String() of each alternative, any order; nil = not decisive
	}{
		{"true", logic.TrueF{}, []string{"{}"}},
		{"forall", logic.ForAll{Var: "x", Ref: aGo, Body: logic.FalseF{}}, []string{"{a.Go}"}},
		{"prereq", logic.Prereq(aGo, bGo), []string{"{a.Go, b.Go}"}},
		{"atmostone", logic.AtMostOne{Var: "x", Ref: aGo, Body: logic.TrueF{}}, []string{"{a.Go}"}},
		{"forallthread", logic.ForAllThread{Var: "t", Type: "pi", Body: logic.FalseF{}},
			[]string{"{thread pi}"}},
		{"not-exists", logic.Not{F: logic.Exists{Var: "x", Ref: aGo, Body: logic.TrueF{}}},
			[]string{"{a.Go}"}},
		{"and", logic.And{logic.Prereq(aGo, bGo), logic.Prereq(bGo, aGo)},
			[]string{"{a.Go, b.Go}"}},
		{"or", logic.Or{logic.Prereq(aGo, bGo), logic.Prereq(bGo, aGo)},
			[]string{"{a.Go, b.Go}", "{a.Go, b.Go}"}},
		{"implies", logic.Implies{
			If:   logic.Exists{Var: "x", Ref: aGo, Body: logic.TrueF{}},
			Then: logic.Prereq(aGo, bGo)},
			[]string{"{a.Go}", "{a.Go, b.Go}"}},
		{"box", logic.Box{F: logic.Prereq(aGo, bGo)}, []string{"{a.Go, b.Go}"}},
		{"countdiff-holds-empty", logic.CountDiff{A: aGo, B: bGo, Min: 0, Max: 2}, []string{"{a.Go, b.Go}"}},
		{"countdiff-min-pos", logic.CountDiff{A: aGo, B: bGo, Min: 1, NoMax: true}, nil},
		{"exists-not-decisive", logic.Exists{Var: "x", Ref: aGo, Body: logic.TrueF{}}, nil},
		{"occurred-not-decisive", logic.Occurred{Var: "x"}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := validGuards(tc.f)
			if len(got) != len(tc.want) {
				t.Fatalf("validGuards: got %d alternatives %v, want %d %v",
					len(got), renderAlts(got), len(tc.want), tc.want)
			}
			for _, w := range tc.want {
				if !containsAlt(got, w) {
					t.Errorf("validGuards missing alternative %q; got %v", w, renderAlts(got))
				}
			}
		})
	}
}

// TestFalseGuards: the dual — alternatives under which the formula is
// statically FALSE.
func TestFalseGuards(t *testing.T) {
	aGo := core.Ref("a", "Go")
	bGo := core.Ref("b", "Go")
	cases := []struct {
		name string
		f    logic.Formula
		want []string
	}{
		{"false", logic.FalseF{}, []string{"{}"}},
		{"exists", logic.Exists{Var: "x", Ref: aGo, Body: logic.TrueF{}}, []string{"{a.Go}"}},
		{"existsunique", logic.ExistsUnique{Var: "x", Ref: aGo, Body: logic.TrueF{}}, []string{"{a.Go}"}},
		{"existsthread", logic.ExistsThread{Var: "t", Type: "pi", Body: logic.TrueF{}},
			[]string{"{thread pi}"}},
		{"not-forall", logic.Not{F: logic.ForAll{Var: "x", Ref: aGo, Body: logic.FalseF{}}},
			[]string{"{a.Go}"}},
		{"or", logic.Or{
			logic.Exists{Var: "x", Ref: aGo, Body: logic.TrueF{}},
			logic.Exists{Var: "x", Ref: bGo, Body: logic.TrueF{}}},
			[]string{"{a.Go, b.Go}"}},
		{"countdiff-min-pos", logic.CountDiff{A: aGo, B: bGo, Min: 1, NoMax: true}, []string{"{a.Go, b.Go}"}},
		{"forall-not-refutable", logic.ForAll{Var: "x", Ref: aGo, Body: logic.FalseF{}}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := falseGuards(tc.f)
			if len(got) != len(tc.want) {
				t.Fatalf("falseGuards: got %d alternatives %v, want %d %v",
					len(got), renderAlts(got), len(tc.want), tc.want)
			}
			for _, w := range tc.want {
				if !containsAlt(got, w) {
					t.Errorf("falseGuards missing alternative %q; got %v", w, renderAlts(got))
				}
			}
		})
	}
}

func renderAlts(gs []guardSet) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = refs(g.normalize())
	}
	return out
}

func containsAlt(gs []guardSet, want string) bool {
	for _, g := range gs {
		if refs(g.normalize()) == want {
			return true
		}
	}
	return false
}

// TestGuardHoldsOn: a guard holds exactly when the computation is empty
// on every guarded class and thread type of some alternative.
func TestGuardHoldsOn(t *testing.T) {
	aGo := core.Ref("a", "Go")
	g := Guard{Owner: "a", Name: "r", alts: []guardSet{{refs: []core.ClassRef{aGo}}}}

	empty, err := core.NewBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HoldsOn(empty) {
		t.Error("guard on a.Go should hold on the empty computation")
	}

	b := core.NewBuilder()
	b.Event("a", "Go", nil)
	withEvent, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.HoldsOn(withEvent) {
		t.Error("guard on a.Go should not hold when an a.Go event exists")
	}

	tg := Guard{Owner: "a", Name: "r", alts: []guardSet{{threads: []string{"pi"}}}}
	if !tg.HoldsOn(withEvent) {
		t.Error("thread guard should hold with no pi-labelled events")
	}
	b2 := core.NewBuilder()
	id := b2.Event("a", "Go", nil)
	b2.Thread(id, thread.ID("pi", 1))
	labelled, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if tg.HoldsOn(labelled) {
		t.Error("thread guard should not hold once a pi instance exists")
	}
}

// deepSource runs the deep analyzer over inline GEM source and returns
// the deep diagnostics only.
func deepSource(t *testing.T, src string) []lint.Diagnostic {
	t.Helper()
	res, err := AnalyzeSource(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return res.Deep
}

func wantOneCode(t *testing.T, diags []lint.Diagnostic, code lint.Code, msgFragment string) {
	t.Helper()
	n := 0
	for _, d := range diags {
		if d.Code == code {
			n++
			if !strings.Contains(d.Message, msgFragment) {
				t.Errorf("%s message %q missing %q", code, d.Message, msgFragment)
			}
			if d.Pos.Line == 0 {
				t.Errorf("%s diagnostic has no source position", code)
			}
		}
	}
	if n != 1 {
		t.Errorf("want exactly one %s, got %d in %v", code, n, diags)
	}
}

func TestDeepCodesInline(t *testing.T) {
	t.Run("GEM009", func(t *testing.T) {
		diags := deepSource(t, `SPEC s
ELEMENT a
  EVENTS
    Go
END
ELEMENT b
  EVENTS
    Go
END
RESTRICTION "one": PREREQ(a.Go -> b.Go) ;
RESTRICTION "two": PREREQ(b.Go -> a.Go) ;
RESTRICTION "must": (EXISTS e: b.Go) occurred(e) ;
`)
		wantOneCode(t, diags, lint.CodeContradiction, "statically unsatisfiable")
	})
	t.Run("GEM010", func(t *testing.T) {
		diags := deepSource(t, `SPEC s
ELEMENT a
  EVENTS
    Req
    Go
END
ELEMENT b
  EVENTS
    Req
    Go
END
THREAD piA = (a.Req :: a.Go)
THREAD piB = (b.Req :: b.Go)
RESTRICTION "w1": PREREQ(b.Go -> a.Go) ;
RESTRICTION "w2": PREREQ(a.Go -> b.Req) ;
`)
		wantOneCode(t, diags, lint.CodeDeadlock, "possible static deadlock")
	})
	t.Run("GEM011", func(t *testing.T) {
		diags := deepSource(t, `SPEC s
ELEMENT outside
  EVENTS
    Poke
END
ELEMENT inner
  EVENTS
    Work
END
ELEMENT next
  EVENTS
    Act
END
GROUP box MEMBERS(inner) END
RESTRICTION "blocked": PREREQ(outside.Poke -> inner.Work) ;
RESTRICTION "chained": PREREQ(inner.Work -> next.Act) ;
`)
		wantOneCode(t, diags, lint.CodeUnreachable, "no legal enable chain")
	})
	t.Run("GEM012", func(t *testing.T) {
		diags := deepSource(t, `SPEC s
ELEMENT a
  EVENTS
    Go
END
ELEMENT b
  EVENTS
    Go
END
RESTRICTION "first": PREREQ(a.Go -> b.Go) ;
RESTRICTION "second": PREREQ(a.Go -> b.Go) ;
`)
		wantOneCode(t, diags, lint.CodeRedundant, "redundant")
	})
}
