package analyze

import (
	"strings"

	"gem/internal/order"
)

// This file holds the wait-for graph machinery behind GEM010 in a form
// other front ends can reuse. A WaitGraph is a directed graph of
// mandatory waits — an edge From → To reads "From cannot proceed until To
// has happened" — with caller-defined edge kinds. Circular waits are the
// strongly connected components with at least two vertices; callers
// classify them by the kinds of edges they contain (GEM010 demands a mix
// of constraint and thread waits, the Go front end a channel or
// WaitGroup wait closing a program-order chain) and render them with the
// deterministic cycle walk Describe provides.

// WaitEdge is one mandatory wait.
type WaitEdge struct {
	From, To int
	// Kind is a caller-defined edge classification; cycles are reported
	// or suppressed based on which kinds participate.
	Kind int
	// Rank breaks ties in the deterministic cycle walk: among edges out
	// of one vertex with the same To, the lowest Rank wins.
	Rank int
	// Label renders this wait inside a cycle description, e.g.
	// "a.Go waits for prior b.Go (restriction \"r1\" of x)".
	Label string
}

// WaitGraph is a set of mandatory waits over vertices 0..n-1.
type WaitGraph struct {
	n     int
	edges []WaitEdge
}

// NewWaitGraph returns an empty graph over n vertices.
func NewWaitGraph(n int) *WaitGraph { return &WaitGraph{n: n} }

// AddEdge records one wait. Out-of-range endpoints panic, mirroring
// order.DAG.
func (g *WaitGraph) AddEdge(e WaitEdge) { g.edges = append(g.edges, e) }

// WaitCycle is one circular wait: the vertices of a strongly connected
// component (sorted ascending) and every recorded edge internal to it.
type WaitCycle struct {
	Nodes []int
	Edges []WaitEdge
}

// HasKind reports whether any edge of the cycle has the given kind.
func (c *WaitCycle) HasKind(kind int) bool {
	for _, e := range c.Edges {
		if e.Kind == kind {
			return true
		}
	}
	return false
}

// MinRankOfKind returns the lowest Rank among edges of the given kind,
// or -1 when the cycle has none. GEM010 anchors its diagnostic at the
// lowest-index constraint this way.
func (c *WaitCycle) MinRankOfKind(kind int) int {
	best := -1
	for _, e := range c.Edges {
		if e.Kind == kind && (best < 0 || e.Rank < best) {
			best = e.Rank
		}
	}
	return best
}

// Walk returns one concrete cycle inside the component as an edge
// sequence, chosen deterministically: starting from the smallest vertex,
// each step follows the edge with the lowest (To, Rank). The walk stops
// when it would revisit a vertex, so the result is a simple path closing
// the cycle.
func (c *WaitCycle) Walk() []WaitEdge {
	next := make(map[int]WaitEdge, len(c.Nodes))
	for _, e := range c.Edges {
		cur, ok := next[e.From]
		if !ok || e.To < cur.To || (e.To == cur.To && e.Rank < cur.Rank) {
			next[e.From] = e
		}
	}
	var out []WaitEdge
	seen := map[int]bool{}
	for v := c.Nodes[0]; !seen[v]; {
		seen[v] = true
		e, ok := next[v]
		if !ok {
			break
		}
		out = append(out, e)
		v = e.To
	}
	return out
}

// Describe renders the deterministic walk as "label; label; …".
func (c *WaitCycle) Describe() string {
	var parts []string
	for _, e := range c.Walk() {
		parts = append(parts, e.Label)
	}
	return strings.Join(parts, "; ")
}

// Cycles returns every circular wait — the strongly connected components
// with at least two vertices — in deterministic order (by smallest
// vertex, the order order.DAG.SCC already guarantees). Self-loop edges
// alone do not form a component here; callers that need them (a wait
// that names itself) must detect them before adding the edge.
func (g *WaitGraph) Cycles() []WaitCycle {
	d := order.NewDAG(g.n)
	for _, e := range g.edges {
		d.AddEdge(e.From, e.To)
	}
	var out []WaitCycle
	for _, comp := range d.SCC() {
		if len(comp) < 2 {
			continue
		}
		in := make(map[int]bool, len(comp))
		for _, v := range comp {
			in[v] = true
		}
		c := WaitCycle{Nodes: comp}
		for _, e := range g.edges {
			if in[e.From] && in[e.To] {
				c.Edges = append(c.Edges, e)
			}
		}
		out = append(out, c)
	}
	return out
}
