package gemlang_test

import (
	"os"
	"path/filepath"
	"testing"

	"gem/internal/gemlang"
)

// FuzzParse drives the parser with arbitrary byte strings. The parser
// must either return a spec or an error — never panic and never recurse
// without bound (deeply nested formulas are cut off by maxFormulaDepth).
// Inputs that parse must also round-trip through the formatter.
func FuzzParse(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("..", "..", "examples", "specs", "*.gem"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range seeds {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	f.Add("SPEC s\nELEMENT a EVENTS Ping END\n")
	f.Add(`SPEC s ELEMENT a EVENTS P END RESTRICTION "r": (FORALL x: P) occurred(x) ;`)
	f.Add("SPEC s\nELEMENT a EVENTS P(v: INTEGER) END\nTHREAD t = (a.P)\n")
	f.Add("SPEC s RESTRICTION \"n\": ~~~~~((TRUE)) ;")

	f.Fuzz(func(t *testing.T, src string) {
		s, err := gemlang.Parse(src)
		if err != nil {
			return
		}
		// A successfully parsed spec must survive position-tracked
		// parsing and formatting without panicking.
		if _, _, err := gemlang.ParseWithPositions(src); err != nil {
			t.Fatalf("Parse accepted but ParseWithPositions rejected: %v", err)
		}
		_ = gemlang.Format(s)
	})
}
