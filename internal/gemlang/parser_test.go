package gemlang_test

import (
	"strings"
	"testing"

	"gem/internal/core"
	"gem/internal/gemlang"
	"gem/internal/legal"
)

// paperVariableSrc is the paper's Section 6/8.2 Variable description in
// gemlang concrete syntax.
const paperVariableSrc = `
SPEC variables

ELEMENT TYPE Variable
  EVENTS
    Assign(newval: VALUE)
    Getval(oldval: VALUE)
  RESTRICTIONS
    "reads-last-assign":
      (FORALL assign: Assign, getval: Getval)
        (assign ~> getval &
         ~((EXISTS assign2: Assign) (assign ~> assign2 & assign2 ~> getval)))
        -> assign.newval = getval.oldval ;
END

ELEMENT TYPE TypedVariable(t: TYPE) : Variable ADD
END

ELEMENT Var : TypedVariable(INTEGER)
ELEMENT Plain : Variable
`

func TestParsePaperVariable(t *testing.T) {
	s, err := gemlang.Parse(paperVariableSrc)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "variables" {
		t.Errorf("spec name = %q", s.Name)
	}
	v, ok := s.Element("Var")
	if !ok {
		t.Fatal("Var not declared")
	}
	if v.TypeName != "TypedVariable" {
		t.Errorf("Var.TypeName = %q", v.TypeName)
	}
	if len(v.Events) != 2 || v.Events[0].Name != "Assign" {
		t.Errorf("Var events = %+v", v.Events)
	}
	if len(v.Restrictions) != 1 || v.Restrictions[0].Name != "reads-last-assign" {
		t.Errorf("Var restrictions = %+v", v.Restrictions)
	}
	if _, ok := s.Element("Plain"); !ok {
		t.Error("Plain not declared")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// TestParsedVariableRestrictionSemantics checks that the parsed
// restriction actually enforces reads-last-assign on computations.
func TestParsedVariableRestrictionSemantics(t *testing.T) {
	s, err := gemlang.Parse(paperVariableSrc)
	if err != nil {
		t.Fatal(err)
	}
	build := func(stale bool) *core.Computation {
		b := core.NewBuilder()
		b.Event("Var", "Assign", core.Params{"newval": core.Int(1)})
		got := core.Int(1)
		if stale {
			got = core.Int(99)
		}
		b.Event("Var", "Getval", core.Params{"oldval": got})
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	if res := legal.Check(s, build(false), legal.Options{}); !res.Legal() {
		t.Errorf("faithful read should be legal: %v", res.Error())
	}
	if res := legal.Check(s, build(true), legal.Options{}); res.Legal() {
		t.Error("stale read must be illegal under the parsed spec")
	}
}

// TestParsePaperGroupExample parses the Section 4 group structure and
// checks the resulting access relation (E1 through the parser).
func TestParsePaperGroupExample(t *testing.T) {
	src := `
ELEMENT EL1 EVENTS E END
ELEMENT EL2 EVENTS E END
ELEMENT EL3 EVENTS E END
ELEMENT EL4 EVENTS E END
ELEMENT EL5 EVENTS E END
ELEMENT EL6 EVENTS E END
GROUP G1 MEMBERS(EL2, EL3) END
GROUP G2 MEMBERS(EL4, EL5) END
GROUP G3 MEMBERS(EL3, EL4) END
GROUP G4 MEMBERS(EL1) END
`
	s, err := gemlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	u, err := s.Universe()
	if err != nil {
		t.Fatal(err)
	}
	if !u.Access("EL3", "EL4") || u.Access("EL2", "EL4") {
		t.Error("parsed group structure gives wrong access relation")
	}
	if !u.Access("EL1", "EL6") || u.Access("EL6", "EL1") {
		t.Error("global element access wrong")
	}
}

func TestParseGroupWithPortsAndRestrictions(t *testing.T) {
	src := `
ELEMENT Datum EVENTS Write(v: VALUE) END
ELEMENT Oper EVENTS Start Finish END
GROUP Abstraction MEMBERS(Datum, Oper) PORTS(Oper.Start)
  RESTRICTIONS
    PREREQ(Oper.Start -> Oper.Finish) ;
END
`
	s, err := gemlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := s.Group("Abstraction")
	if !ok {
		t.Fatal("group missing")
	}
	if len(g.Ports) != 1 || g.Ports[0].Element != "Oper" || g.Ports[0].Class != "Start" {
		t.Errorf("ports = %+v", g.Ports)
	}
	if len(g.Restrictions) != 1 {
		t.Errorf("restrictions = %d", len(g.Restrictions))
	}
}

func TestParseGroupType(t *testing.T) {
	src := `
ELEMENT m1.lock EVENTS Req END
ELEMENT m1.cond EVENTS Wait END
GROUP TYPE Monitor
  MEMBERS(lock, cond)
  PORTS(lock.Req)
END
GROUP m1 : Monitor
`
	s, err := gemlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := s.Group("m1")
	if !ok {
		t.Fatal("m1 missing")
	}
	if len(g.Members) != 2 || g.Members[0] != "m1.lock" || g.Members[1] != "m1.cond" {
		t.Errorf("members = %v", g.Members)
	}
	if g.TypeName != "Monitor" {
		t.Errorf("TypeName = %q", g.TypeName)
	}
	if len(g.Ports) != 1 || g.Ports[0].Element != "m1.lock" {
		t.Errorf("ports = %+v", g.Ports)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestParseThreadDecl(t *testing.T) {
	src := `
ELEMENT u EVENTS Read FinishRead END
ELEMENT control EVENTS ReqRead StartRead END
THREAD piRW = (u.Read :: control.ReqRead :: control.StartRead :: u.FinishRead)
`
	s, err := gemlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ths := s.Threads()
	if len(ths) != 1 || ths[0].Name != "piRW" || len(ths[0].Path) != 4 {
		t.Fatalf("threads = %+v", ths)
	}
	if ths[0].Path[1] != core.Ref("control", "ReqRead") {
		t.Errorf("path[1] = %v", ths[0].Path[1])
	}
}

func TestParseTopLevelRestriction(t *testing.T) {
	src := `
ELEMENT X EVENTS A B END
RESTRICTION "a-before-b": (FORALL a: X.A, b: X.B) a => b ;
RESTRICTION TRUE ;
`
	s, err := gemlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rs := s.Restrictions()
	if len(rs) != 2 {
		t.Fatalf("restrictions = %d", len(rs))
	}
	if rs[0].Name != "a-before-b" {
		t.Errorf("restriction name = %q", rs[0].Name)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want string
	}{
		{"unknown top-level", "WHAT", "unexpected"},
		{"missing END", "ELEMENT X EVENTS A", `expected "END"`},
		{"unknown element type", "ELEMENT X : Ghost", "unknown element type"},
		{"unknown group type", "GROUP G : Ghost", "unknown group type"},
		{"arity mismatch", "ELEMENT TYPE T(a) END\nELEMENT X : T", "expects 1 argument"},
		{"missing semicolon", "ELEMENT X EVENTS A RESTRICTIONS TRUE END", `expected ";"`},
		{"bad port", "ELEMENT E EVENTS A END\nGROUP G MEMBERS(E) PORTS(E) END", "element.Class"},
		{"missing type END", "ELEMENT TYPE T EVENTS A", "missing END"},
		{"group needs members", "GROUP G PORTS(x.Y) END", `expected "MEMBERS"`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := gemlang.Parse(tt.src)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("Parse error = %v, want containing %q", err, tt.want)
			}
		})
	}
}

func TestParseErrorsCarryPositions(t *testing.T) {
	_, err := gemlang.Parse("ELEMENT X EVENTS A\nRESTRICTIONS")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "gemlang:") {
		t.Errorf("error should carry a position: %v", err)
	}
}

func TestElementTypeTextSubstitution(t *testing.T) {
	// The formal parameter t appears as a param type and must be replaced
	// by INTEGER; the event name must not be rewritten.
	src := `
ELEMENT TYPE Cell(t)
  EVENTS Put(v: t)
END
ELEMENT c1 : Cell(INTEGER)
`
	s, err := gemlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.Element("c1")
	if d.Events[0].Params[0].Type != "INTEGER" {
		t.Errorf("substituted param type = %q", d.Events[0].Params[0].Type)
	}
}

func TestGroupTypeMemberSelectorsNotSubstituted(t *testing.T) {
	// In "lock.Req", only the first component is a member reference; a
	// selector after a dot must stay untouched even if it collides with a
	// member name.
	src := `
ELEMENT g.lock EVENTS lock END
GROUP TYPE T MEMBERS(lock) PORTS(lock.lock) END
GROUP g : T
`
	s, err := gemlang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := s.Group("g")
	if g.Ports[0].Element != "g.lock" || g.Ports[0].Class != "lock" {
		t.Errorf("ports = %+v", g.Ports)
	}
}
