package gemlang

import (
	"strings"
	"testing"

	"gem/internal/core"
	"gem/internal/logic"
)

func mustParseFormula(t *testing.T, src string) logic.Formula {
	t.Helper()
	f, err := ParseFormula(src)
	if err != nil {
		t.Fatalf("ParseFormula(%q): %v", src, err)
	}
	return f
}

func TestParseFormulaShapes(t *testing.T) {
	tests := []struct {
		src  string
		want string // type rendering via String, checked by substring
	}{
		{"TRUE", "true"},
		{"FALSE", "false"},
		{"occurred(e)", "occurred(e)"},
		{"new(e)", "new(e)"},
		{"potential(e)", "potential(e)"},
		{"~TRUE", "~(true)"},
		{"TRUE & FALSE", "(true & false)"},
		{"TRUE | FALSE", "(true | false)"},
		{"TRUE -> FALSE", "(true -> false)"},
		{"TRUE <-> FALSE", "(true <-> true)"}, // structure only; see below
		{"[] TRUE", "[](true)"},
		{"<> occurred(e)", "<>(occurred(e))"},
		{"a |> b", "a |> b"},
		{"a ~> b", "a =>el b"},
		{"a => b", "a => b"},
		{"a || b", "a || b"},
		{"a = b", "a = b"},
		{"a != b", "~(a = b)"},
		{"x @ EL1", "x @ EL1"},
		{"x at StartRead", "x at StartRead"},
		{"x in t", "x in t"},
		{"distinct(t1, t2)", "t1 != t2"},
		{"x.v = y.w", "x.v = y.w"},
		{"x.v < 5", "x.v < 5"},
		{"5 < x.v", "x.v > 5"},
		{`x.s = "lit"`, `x.s = "lit"`},
	}
	for _, tt := range tests {
		f := mustParseFormula(t, tt.src)
		if tt.src == "TRUE <-> FALSE" {
			if _, ok := f.(logic.Iff); !ok {
				t.Errorf("%q parsed as %T, want Iff", tt.src, f)
			}
			continue
		}
		if got := f.String(); !strings.Contains(got, tt.want) {
			t.Errorf("ParseFormula(%q).String() = %q, want containing %q", tt.src, got, tt.want)
		}
	}
}

func TestParseFormulaPrecedence(t *testing.T) {
	// & binds tighter than |, | tighter than ->, -> right-assoc.
	f := mustParseFormula(t, "TRUE & FALSE | TRUE -> FALSE -> TRUE")
	imp, ok := f.(logic.Implies)
	if !ok {
		t.Fatalf("top = %T, want Implies", f)
	}
	if _, ok := imp.If.(logic.Or); !ok {
		t.Errorf("antecedent = %T, want Or", imp.If)
	}
	if _, ok := imp.Then.(logic.Implies); !ok {
		t.Errorf("consequent = %T, want Implies (right assoc)", imp.Then)
	}
}

func TestParseQuantifiers(t *testing.T) {
	f := mustParseFormula(t, "(FORALL x: control.StartRead, y: control.StartWrite) x => y")
	outer, ok := f.(logic.ForAll)
	if !ok {
		t.Fatalf("top = %T", f)
	}
	if outer.Var != "x" || outer.Ref != core.Ref("control", "StartRead") {
		t.Errorf("outer binder = %+v", outer)
	}
	inner, ok := outer.Body.(logic.ForAll)
	if !ok || inner.Var != "y" {
		t.Fatalf("inner = %+v", outer.Body)
	}

	g := mustParseFormula(t, "(EXISTS1 e: Assign) e |> x")
	if _, ok := g.(logic.ExistsUnique); !ok {
		t.Errorf("EXISTS1 = %T", g)
	}
	h := mustParseFormula(t, "(ATMOST1 e: Assign) e |> x")
	if _, ok := h.(logic.AtMostOne); !ok {
		t.Errorf("ATMOST1 = %T", h)
	}
	th := mustParseFormula(t, "(FORALLTHREAD t: piRW) (EXISTS e: StartRead) e in t")
	if _, ok := th.(logic.ForAllThread); !ok {
		t.Errorf("FORALLTHREAD = %T", th)
	}
	ex := mustParseFormula(t, "(EXISTSTHREAD t: piRW) TRUE")
	if _, ok := ex.(logic.ExistsThread); !ok {
		t.Errorf("EXISTSTHREAD = %T", ex)
	}
}

func TestQuantifierScopeMaximal(t *testing.T) {
	f := mustParseFormula(t, "(EXISTS e: A) occurred(e) & new(e)")
	ex, ok := f.(logic.Exists)
	if !ok {
		t.Fatalf("top = %T, want Exists (maximal scope)", f)
	}
	if _, ok := ex.Body.(logic.And); !ok {
		t.Errorf("body = %T, want And", ex.Body)
	}
}

func TestParseAbbreviations(t *testing.T) {
	f := mustParseFormula(t, "PREREQ(u.Read -> control.ReqRead -> control.StartRead)")
	if _, ok := f.(logic.And); !ok {
		t.Errorf("PREREQ = %T", f)
	}
	g := mustParseFormula(t, "NDPREREQ({inp.Req, out.Req} -> inp.End)")
	if _, ok := g.(logic.And); !ok {
		t.Errorf("NDPREREQ = %T", g)
	}
	h := mustParseFormula(t, "FORK(p.A -> {q.B, r.C})")
	if _, ok := h.(logic.And); !ok {
		t.Errorf("FORK = %T", h)
	}
	j := mustParseFormula(t, "JOIN({q.B, r.C} -> s.D)")
	if _, ok := j.(logic.And); !ok {
		t.Errorf("JOIN = %T", j)
	}
}

// TestParsedFormulaEvaluates round-trips a non-trivial formula through the
// parser and evaluates it on a real computation.
func TestParsedFormulaEvaluates(t *testing.T) {
	b := core.NewBuilder()
	s := b.Event("Sender", "Send", core.Params{"par1": core.Int(42)})
	r := b.Event("Receiver", "Receive", core.Params{"par2": core.Int(42)})
	b.Enable(s, r)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	f := mustParseFormula(t,
		"(FORALL send: Sender.Send, receive: Receiver.Receive) send |> receive -> send.par1 = receive.par2")
	if cx := logic.Holds(f, c, logic.CheckOptions{}); cx != nil {
		t.Errorf("parsed message-passing restriction should hold: %v", cx.Error())
	}
	g := mustParseFormula(t,
		"(FORALL send: Sender.Send, receive: Receiver.Receive) send |> receive -> send.par1 != receive.par2")
	if cx := logic.Holds(g, c, logic.CheckOptions{}); cx == nil {
		t.Error("negated restriction must fail")
	}
}

func TestParseFormulaErrors(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"", "expected formula"},
		{"occurred e", `expected "("`},
		{"(FORALL x A) TRUE", `expected ":"`},
		{"a @@ b", "expected identifier"},
		{"a = ", "expected term"},
		{"x.v END 3", "expected relational"},
		{"a < b", "events support only = and !="},
		{"3 = 4", "invalid comparison"},
		{"PREREQ(a.B)", "at least two"},
		{"NDPREREQ(a.B -> c.D)", `expected "{"`},
		{"TRUE TRUE", "after formula"},
		{"distinct(t1 t2)", `expected ","`},
	}
	for _, tt := range tests {
		_, err := ParseFormula(tt.src)
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("ParseFormula(%q) error = %v, want containing %q", tt.src, err, tt.want)
		}
	}
}

func TestParseFormulaTrailingSemicolonOK(t *testing.T) {
	if _, err := ParseFormula("TRUE ;"); err != nil {
		t.Errorf("trailing semicolon should be accepted: %v", err)
	}
}

func TestClassRefResolutionInElementBody(t *testing.T) {
	// Inside an element's RESTRICTIONS, unqualified Assign resolves to the
	// element itself.
	src := `
ELEMENT V
  EVENTS Assign(newval: VALUE)
  RESTRICTIONS
    (FORALL a: Assign) occurred(a) ;
END
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.Element("V")
	fa, ok := d.Restrictions[0].F.(logic.ForAll)
	if !ok {
		t.Fatalf("restriction = %T", d.Restrictions[0].F)
	}
	if fa.Ref != core.Ref("V", "Assign") {
		t.Errorf("ref = %v, want V.Assign", fa.Ref)
	}
}

func TestParseCountAndFIFO(t *testing.T) {
	f := mustParseFormula(t, "COUNT(buffer.Deposit - buffer.Fetch IN 0 .. 2)")
	cd, ok := f.(logic.CountDiff)
	if !ok {
		t.Fatalf("COUNT = %T", f)
	}
	if cd.A != core.Ref("buffer", "Deposit") || cd.B != core.Ref("buffer", "Fetch") ||
		cd.Min != 0 || cd.Max != 2 || cd.NoMax {
		t.Errorf("CountDiff = %+v", cd)
	}

	g := mustParseFormula(t, "COUNT(A - B IN -1 .. *)")
	cd2, ok := g.(logic.CountDiff)
	if !ok || !cd2.NoMax || cd2.Min != -1 {
		t.Errorf("unbounded COUNT = %+v (%T)", g, g)
	}

	h := mustParseFormula(t, "FIFO(buffer.Deposit.item -> buffer.Fetch.item)")
	fv, ok := h.(logic.FIFOValues)
	if !ok {
		t.Fatalf("FIFO = %T", h)
	}
	if fv.A != core.Ref("buffer", "Deposit") || fv.PA != "item" ||
		fv.B != core.Ref("buffer", "Fetch") || fv.PB != "item" {
		t.Errorf("FIFOValues = %+v", fv)
	}

	// Boxed COUNT is an invariant and must survive parsing inside [] too.
	j := mustParseFormula(t, "[] COUNT(buffer.Deposit - buffer.Fetch IN 0 .. 1)")
	if _, ok := j.(logic.Box); !ok {
		t.Errorf("[] COUNT = %T", j)
	}
}

func TestParseCountAndFIFOErrors(t *testing.T) {
	tests := []struct {
		src  string
		want string
	}{
		{"COUNT(A - B IN x .. 2)", "expected integer"},
		{"COUNT(A B IN 0 .. 2)", `expected "-"`},
		{"COUNT(A - B 0 .. 2)", `expected "IN"`},
		{"COUNT(A - B IN 0 2)", `expected ".."`},
		{"FIFO(item -> B.item)", "expected Class.param"},
		{"FIFO(A.item B.item)", `expected "->"`},
	}
	for _, tt := range tests {
		_, err := ParseFormula(tt.src)
		if err == nil || !strings.Contains(err.Error(), tt.want) {
			t.Errorf("ParseFormula(%q) error = %v, want containing %q", tt.src, err, tt.want)
		}
	}
}

func TestCountFIFOSemanticEvaluation(t *testing.T) {
	// Two deposits, one fetch, capacity 1: COUNT(0..1) violated at the
	// history with both deposits; FIFO holds.
	b := core.NewBuilder()
	b.Event("buffer", "Deposit", core.Params{"item": core.Int(11)})
	b.Event("buffer", "Fetch", core.Params{"item": core.Int(11)})
	b.Event("buffer", "Deposit", core.Params{"item": core.Int(12)})
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	capOK := mustParseFormula(t, "[] COUNT(buffer.Deposit - buffer.Fetch IN 0 .. 1)")
	if cx := logic.Holds(capOK, c, logic.CheckOptions{}); cx != nil {
		t.Errorf("alternating D F D respects capacity 1: %v", cx.Error())
	}
	fifo := mustParseFormula(t, "FIFO(buffer.Deposit.item -> buffer.Fetch.item)")
	if cx := logic.Holds(fifo, c, logic.CheckOptions{}); cx != nil {
		t.Errorf("FIFO should hold: %v", cx.Error())
	}
}
