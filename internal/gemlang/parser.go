package gemlang

import (
	"fmt"

	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/obs"
	"gem/internal/spec"
	"gem/internal/thread"
)

// Parse compiles GEM specification source text into the spec IR.
//
// Top-level declarations:
//
//	SPEC name
//	ELEMENT TYPE Name [(p1, p2)] [: Base[(args)] ADD] body END
//	ELEMENT Name : TypeName[(args)]
//	ELEMENT Name body END
//	GROUP TYPE Name [(params)] MEMBERS(m1, m2) [PORTS(m.Class, …)]
//	      [RESTRICTIONS …] END
//	GROUP Name : TypeName[(args)]
//	GROUP Name MEMBERS(e1, e2) [PORTS(…)] [RESTRICTIONS …] END
//	THREAD Name = (ClassRef :: ClassRef :: …)
//	RESTRICTION ["label":] formula ;
//
// Element bodies: [EVENTS eventDecl…] [RESTRICTIONS formula ; …].
func Parse(src string) (*spec.Spec, error) {
	_, sp := obs.StartSpan(nil, "parse")
	defer sp.End()
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:       toks,
		out:        spec.New("spec"),
		elemTypes:  make(map[string]*typeDef),
		groupTypes: make(map[string]*typeDef),
	}
	if err := p.parseSpec(); err != nil {
		return nil, err
	}
	return p.out, nil
}

// ParseFormula compiles a single restriction formula (no trailing
// semicolon required). Useful for tests and ad-hoc checking.
func ParseFormula(src string) (logic.Formula, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, out: spec.New("formula")}
	f, err := p.parseFormula("")
	if err != nil {
		return nil, err
	}
	if !p.peek().Is(";") && p.peek().Kind != TokEOF {
		return nil, p.errf("unexpected %s after formula", p.peek())
	}
	return f, nil
}

// typeDef stores a type's formal parameters and unparsed body tokens —
// the paper's text-substitution semantics made literal.
type typeDef struct {
	name   string
	params []string
	body   []Token
}

type parser struct {
	toks       []Token
	pos        int
	out        *spec.Spec
	elemTypes  map[string]*typeDef
	groupTypes map[string]*typeDef
	marks      *SourceMap // non-nil only for ParseWithPositions
	depth      int        // formula nesting depth (guards the recursion)
}

// maxFormulaDepth bounds formula nesting. Recursive-descent parsing uses
// the Go stack, so pathological inputs (fuzzing found kilobytes of "~"
// or "(") must be rejected, not crash the process.
const maxFormulaDepth = 512

func (p *parser) enterFormula() error {
	p.depth++
	if p.depth > maxFormulaDepth {
		return p.errf("formula nesting exceeds %d levels", maxFormulaDepth)
	}
	return nil
}

func (p *parser) peek() Token  { return p.toks[p.pos] }
func (p *parser) peek2() Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }
func (p *parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("gemlang:%d:%d: %s", t.Line, t.Col, fmt.Sprintf(format, args...))
}

func (p *parser) expect(text string) error {
	if !p.peek().Is(text) {
		return p.errf("expected %q, found %s", text, p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.peek().Kind != TokIdent {
		return "", p.errf("expected identifier, found %s", p.peek())
	}
	return p.next().Text, nil
}

func (p *parser) parseSpec() error {
	for p.peek().Kind != TokEOF {
		t := p.peek()
		switch {
		case t.Is("SPEC"):
			p.next()
			name, err := p.expectIdent()
			if err != nil {
				return err
			}
			p.out.Name = name
		case t.Is("ELEMENT"):
			if err := p.parseElementDecl(); err != nil {
				return err
			}
		case t.Is("GROUP"):
			if err := p.parseGroupDecl(); err != nil {
				return err
			}
		case t.Is("THREAD"):
			if err := p.parseThreadDecl(); err != nil {
				return err
			}
		case t.Is("RESTRICTION"):
			p.next()
			name := "restriction"
			if p.peek().Kind == TokString {
				name = p.next().Text
				if err := p.expect(":"); err != nil {
					return err
				}
			}
			f, err := p.parseFormula("")
			if err != nil {
				return err
			}
			if err := p.expect(";"); err != nil {
				return err
			}
			if p.marks != nil {
				p.marks.mark(p.marks.Restrictions, name, t)
			}
			p.out.AddRestriction(name, f)
		default:
			return p.errf("unexpected %s at top level", t)
		}
	}
	return nil
}

// --- elements -------------------------------------------------------------

func (p *parser) parseElementDecl() error {
	at := p.peek()
	p.next() // ELEMENT
	if p.peek().Is("TYPE") {
		p.next()
		return p.parseElementType()
	}
	name, err := p.parseDotted()
	if err != nil {
		return err
	}
	if p.marks != nil {
		p.marks.mark(p.marks.Elements, name, at)
	}
	if p.peek().Is(":") {
		p.next()
		return p.instantiateElementType(name)
	}
	decl, err := p.parseElementBody(name)
	if err != nil {
		return err
	}
	if err := p.expect("END"); err != nil {
		return err
	}
	p.out.AddElement(decl)
	return nil
}

func (p *parser) parseElementType() error {
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	params, err := p.parseFormalParams()
	if err != nil {
		return err
	}
	var body []Token
	// Refinement: ELEMENT TYPE New [(params)] : Base[(args)] ADD body END.
	if p.peek().Is(":") {
		p.next()
		_, baseBody, err := p.substitutedTypeBody(p.elemTypes, "element")
		if err != nil {
			return err
		}
		if err := p.expect("ADD"); err != nil {
			return err
		}
		body = append(body, baseBody...)
	}
	rest, err := p.captureUntilEND()
	if err != nil {
		return err
	}
	body = append(body, rest...)
	p.elemTypes[name] = &typeDef{name: name, params: params, body: body}
	return nil
}

// substitutedTypeBody parses "TypeName[(args)]" and returns the type's
// body tokens with formal parameters textually substituted by the
// arguments.
func (p *parser) substitutedTypeBody(table map[string]*typeDef, kind string) (string, []Token, error) {
	typeName, err := p.expectIdent()
	if err != nil {
		return "", nil, err
	}
	def, ok := table[typeName]
	if !ok {
		return "", nil, p.errf("unknown %s type %s", kind, typeName)
	}
	args, err := p.parseTypeArgs()
	if err != nil {
		return "", nil, err
	}
	if len(args) != len(def.params) {
		return "", nil, p.errf("%s type %s expects %d argument(s), got %d", kind, typeName, len(def.params), len(args))
	}
	subst := make(map[string][]Token, len(def.params))
	for i, formal := range def.params {
		subst[formal] = args[i]
	}
	return typeName, substituteTokens(def.body, subst), nil
}

func (p *parser) instantiateElementType(name string) error {
	typeName, body, err := p.substitutedTypeBody(p.elemTypes, "element")
	if err != nil {
		return err
	}
	sub := &parser{
		toks:       append(append([]Token(nil), body...), Token{Kind: TokEOF}),
		out:        p.out,
		elemTypes:  p.elemTypes,
		groupTypes: p.groupTypes,
		marks:      p.marks,
	}
	decl, err := sub.parseElementBody(name)
	if err != nil {
		return err
	}
	if sub.peek().Kind != TokEOF {
		return fmt.Errorf("gemlang: trailing tokens in element type body: %s", sub.peek())
	}
	decl.TypeName = typeName
	p.out.AddElement(decl)
	return nil
}

// parseElementBody parses [EVENTS …] [RESTRICTIONS …] for the named
// element. Unqualified class references inside the restrictions resolve
// to the element's own classes when declared there.
func (p *parser) parseElementBody(name string) (*spec.ElementDecl, error) {
	decl := &spec.ElementDecl{Name: name}
	if p.peek().Is("EVENTS") {
		p.next()
		for p.peek().Kind == TokIdent {
			ec, err := p.parseEventClassDecl()
			if err != nil {
				return nil, err
			}
			decl.Events = append(decl.Events, ec)
		}
	}
	if p.peek().Is("RESTRICTIONS") {
		p.next()
		n := 0
		for !p.peek().Is("END") && p.peek().Kind != TokEOF {
			at := p.peek()
			label := ""
			if p.peek().Kind == TokString {
				label = p.next().Text
				if err := p.expect(":"); err != nil {
					return nil, err
				}
			}
			f, err := p.parseFormula(name)
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			n++
			if label == "" {
				label = fmt.Sprintf("%s.restriction-%d", name, n)
			}
			if p.marks != nil {
				p.marks.mark(p.marks.Restrictions, label, at)
			}
			decl.Restrictions = append(decl.Restrictions, spec.Restriction{Name: label, F: f})
		}
	}
	return decl, nil
}

func (p *parser) parseEventClassDecl() (spec.EventClassDecl, error) {
	name, err := p.expectIdent()
	if err != nil {
		return spec.EventClassDecl{}, err
	}
	ec := spec.EventClassDecl{Name: name}
	if p.peek().Is("(") {
		p.next()
		for {
			pname, err := p.expectIdent()
			if err != nil {
				return ec, err
			}
			if err := p.expect(":"); err != nil {
				return ec, err
			}
			ptype, err := p.expectIdent()
			if err != nil {
				return ec, err
			}
			ec.Params = append(ec.Params, spec.ParamDecl{Name: pname, Type: ptype})
			if p.peek().Is(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return ec, err
		}
	}
	return ec, nil
}

// --- groups ---------------------------------------------------------------

func (p *parser) parseGroupDecl() error {
	at := p.peek()
	p.next() // GROUP
	if p.peek().Is("TYPE") {
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		params, err := p.parseFormalParams()
		if err != nil {
			return err
		}
		body, err := p.captureUntilEND()
		if err != nil {
			return err
		}
		p.groupTypes[name] = &typeDef{name: name, params: params, body: body}
		return nil
	}
	name, err := p.parseDotted()
	if err != nil {
		return err
	}
	if p.marks != nil {
		p.marks.mark(p.marks.Groups, name, at)
	}
	if p.peek().Is(":") {
		p.next()
		return p.instantiateGroupType(name)
	}
	decl, err := p.parseGroupBody(name, nil)
	if err != nil {
		return err
	}
	if err := p.expect("END"); err != nil {
		return err
	}
	p.out.AddGroup(decl)
	return nil
}

// instantiateGroupType stamps out a group instance: member identifiers in
// the type body are prefixed with "<instance>." so each instance gets its
// own member names, then the body is re-parsed.
func (p *parser) instantiateGroupType(name string) error {
	typeName, body, err := p.substitutedTypeBody(p.groupTypes, "group")
	if err != nil {
		return err
	}
	members := memberNamesOf(body)
	subst := make(map[string][]Token, len(members))
	for _, m := range members {
		subst[m] = []Token{
			{Kind: TokIdent, Text: name},
			{Kind: TokOp, Text: "."},
			{Kind: TokIdent, Text: m},
		}
	}
	body = substituteTokens(body, subst)
	sub := &parser{
		toks:       append(append([]Token(nil), body...), Token{Kind: TokEOF}),
		out:        p.out,
		elemTypes:  p.elemTypes,
		groupTypes: p.groupTypes,
		marks:      p.marks,
	}
	decl, err := sub.parseGroupBody(name, nil)
	if err != nil {
		return err
	}
	if sub.peek().Kind != TokEOF {
		return fmt.Errorf("gemlang: trailing tokens in group type body: %s", sub.peek())
	}
	decl.TypeName = typeName
	p.out.AddGroup(decl)
	return nil
}

// memberNamesOf scans a group type body for the MEMBERS(...) list.
func memberNamesOf(body []Token) []string {
	var out []string
	for i := 0; i < len(body); i++ {
		if !body[i].Is("MEMBERS") {
			continue
		}
		for j := i + 1; j < len(body); j++ {
			if body[j].Is(")") {
				return out
			}
			if body[j].Kind == TokIdent {
				// Only the first component of a dotted member counts.
				if j == i+2 || body[j-1].Is(",") || body[j-1].Is("(") {
					out = append(out, body[j].Text)
				}
			}
		}
	}
	return out
}

func (p *parser) parseGroupBody(name string, _ []string) (*spec.GroupDecl, error) {
	decl := &spec.GroupDecl{Name: name}
	if err := p.expect("MEMBERS"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	for {
		m, err := p.parseDotted()
		if err != nil {
			return nil, err
		}
		decl.Members = append(decl.Members, m)
		if p.peek().Is(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.peek().Is("PORTS") {
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		for {
			full, err := p.parseDotted()
			if err != nil {
				return nil, err
			}
			elem, class := splitRef(full)
			if elem == "" {
				return nil, p.errf("port %q must be element.Class", full)
			}
			decl.Ports = append(decl.Ports, core.Port{Element: elem, Class: class})
			if p.peek().Is(",") {
				p.next()
				continue
			}
			break
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	if p.peek().Is("RESTRICTIONS") {
		p.next()
		n := 0
		for !p.peek().Is("END") && p.peek().Kind != TokEOF {
			at := p.peek()
			label := ""
			if p.peek().Kind == TokString {
				label = p.next().Text
				if err := p.expect(":"); err != nil {
					return nil, err
				}
			}
			f, err := p.parseFormula("")
			if err != nil {
				return nil, err
			}
			if err := p.expect(";"); err != nil {
				return nil, err
			}
			n++
			if label == "" {
				label = fmt.Sprintf("%s.restriction-%d", name, n)
			}
			if p.marks != nil {
				p.marks.mark(p.marks.Restrictions, label, at)
			}
			decl.Restrictions = append(decl.Restrictions, spec.Restriction{Name: label, F: f})
		}
	}
	return decl, nil
}

// --- threads ----------------------------------------------------------

func (p *parser) parseThreadDecl() error {
	at := p.peek()
	p.next() // THREAD
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.marks != nil {
		p.marks.mark(p.marks.Threads, name, at)
	}
	if err := p.expect("="); err != nil {
		return err
	}
	if err := p.expect("("); err != nil {
		return err
	}
	var path []core.ClassRef
	for {
		ref, err := p.parseClassRef("")
		if err != nil {
			return err
		}
		path = append(path, ref)
		if p.peek().Is("::") {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return err
	}
	p.out.AddThread(thread.Type{Name: name, Path: path})
	return nil
}

// --- shared helpers ---------------------------------------------------

// parseFormalParams parses an optional "(p1, p2)" list of formal type
// parameters.
func (p *parser) parseFormalParams() ([]string, error) {
	if !p.peek().Is("(") {
		return nil, nil
	}
	p.next()
	var out []string
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		out = append(out, name)
		// Tolerate "name: KIND" annotations as in the paper (t:TYPE);
		// the kind may be any word, including keywords like TYPE.
		if p.peek().Is(":") {
			p.next()
			k := p.peek()
			if k.Kind != TokIdent && k.Kind != TokKeyword {
				return nil, p.errf("expected parameter kind, found %s", k)
			}
			p.next()
		}
		if p.peek().Is(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}

// parseTypeArgs parses an optional "(arg, arg)" list; each argument is a
// token run (identifier, dotted name, or literal).
func (p *parser) parseTypeArgs() ([][]Token, error) {
	if !p.peek().Is("(") {
		return nil, nil
	}
	p.next()
	var out [][]Token
	var cur []Token
	depth := 0
	for {
		t := p.peek()
		switch {
		case t.Kind == TokEOF:
			return nil, p.errf("unterminated type argument list")
		case t.Is("("):
			depth++
			cur = append(cur, p.next())
		case t.Is(")"):
			if depth == 0 {
				p.next()
				if len(cur) > 0 {
					out = append(out, cur)
				}
				return out, nil
			}
			depth--
			cur = append(cur, p.next())
		case t.Is(",") && depth == 0:
			p.next()
			out = append(out, cur)
			cur = nil
		default:
			cur = append(cur, p.next())
		}
	}
}

// captureUntilEND collects raw tokens up to (and consuming) the matching
// END keyword. Type bodies do not nest types, so the first END closes.
func (p *parser) captureUntilEND() ([]Token, error) {
	var out []Token
	for {
		t := p.peek()
		if t.Kind == TokEOF {
			return nil, p.errf("missing END")
		}
		if t.Is("END") {
			p.next()
			return out, nil
		}
		out = append(out, p.next())
	}
}

// parseDotted parses IDENT {"." IDENT} into a dotted name.
func (p *parser) parseDotted() (string, error) {
	name, err := p.expectIdent()
	if err != nil {
		return "", err
	}
	for p.peek().Is(".") && p.peek2().Kind == TokIdent {
		p.next()
		part, err := p.expectIdent()
		if err != nil {
			return "", err
		}
		name += "." + part
	}
	return name, nil
}

// splitRef splits a dotted name into (element, class) at the last dot.
func splitRef(full string) (element, class string) {
	for i := len(full) - 1; i >= 0; i-- {
		if full[i] == '.' {
			return full[:i], full[i+1:]
		}
	}
	return "", full
}

// parseClassRef parses a dotted class reference. Within an element body
// (owner non-empty), a single-component reference resolves to the owning
// element.
func (p *parser) parseClassRef(owner string) (core.ClassRef, error) {
	full, err := p.parseDotted()
	if err != nil {
		return core.ClassRef{}, err
	}
	elem, class := splitRef(full)
	if elem == "" && owner != "" {
		elem = owner
	}
	return core.Ref(elem, class), nil
}

// substituteTokens replaces identifier tokens per the substitution map —
// the paper's text-substitution semantics. Identifiers following a dot
// are member selectors and are never substituted.
func substituteTokens(body []Token, subst map[string][]Token) []Token {
	out := make([]Token, 0, len(body))
	for i, t := range body {
		if t.Kind == TokIdent {
			if i > 0 && body[i-1].Is(".") {
				out = append(out, t)
				continue
			}
			if rep, ok := subst[t.Text]; ok {
				out = append(out, rep...)
				continue
			}
		}
		out = append(out, t)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
