package gemlang

import (
	"fmt"
	"sort"
	"strings"

	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/spec"
)

// Format renders a compiled specification back into the concrete GEM
// syntax. Parsing the result yields an equivalent specification
// (Parse ∘ Format is a fixpoint up to formatting), which makes the
// concrete syntax a faithful interchange format for compiled specs.
// Element/group *types* are not reconstructed — instances are emitted
// expanded, which is exactly the paper's text-substitution semantics.
func Format(s *spec.Spec) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SPEC %s\n", s.Name)
	for _, name := range s.ElementNames() {
		d, _ := s.Element(name)
		fmt.Fprintf(&sb, "\nELEMENT %s\n", name)
		if len(d.Events) > 0 {
			sb.WriteString("  EVENTS\n")
			for _, ec := range d.Events {
				fmt.Fprintf(&sb, "    %s%s\n", ec.Name, formatParams(ec.Params))
			}
		}
		formatRestrictions(&sb, d.Restrictions)
		sb.WriteString("END\n")
	}
	for _, name := range s.GroupNames() {
		g, _ := s.Group(name)
		fmt.Fprintf(&sb, "\nGROUP %s MEMBERS(%s)\n", name, strings.Join(g.Members, ", "))
		if len(g.Ports) > 0 {
			var ports []string
			for _, p := range g.Ports {
				ports = append(ports, p.Element+"."+p.Class)
			}
			fmt.Fprintf(&sb, "  PORTS(%s)\n", strings.Join(ports, ", "))
		}
		formatRestrictions(&sb, g.Restrictions)
		sb.WriteString("END\n")
	}
	for _, tt := range s.Threads() {
		var parts []string
		for _, ref := range tt.Path {
			parts = append(parts, ref.String())
		}
		fmt.Fprintf(&sb, "\nTHREAD %s = (%s)\n", tt.Name, strings.Join(parts, " :: "))
	}
	for _, r := range s.Restrictions() {
		if r.Owner != s.Name {
			continue // element/group restrictions already emitted
		}
		fmt.Fprintf(&sb, "\nRESTRICTION %q:\n  %s ;\n", r.Name, Source(r.F))
	}
	return sb.String()
}

func formatParams(params []spec.ParamDecl) string {
	if len(params) == 0 {
		return ""
	}
	var parts []string
	for _, p := range params {
		parts = append(parts, p.Name+": "+p.Type)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func formatRestrictions(sb *strings.Builder, rs []spec.Restriction) {
	if len(rs) == 0 {
		return
	}
	sb.WriteString("  RESTRICTIONS\n")
	for _, r := range rs {
		fmt.Fprintf(sb, "    %q:\n      %s ;\n", r.Name, Source(r.F))
	}
}

// Source renders a formula in the concrete gemlang syntax; parsing the
// result yields a semantically identical formula. It panics on formula
// shapes that have no surface syntax (there are none among the exported
// constructors).
func Source(f logic.Formula) string {
	switch g := f.(type) {
	case logic.TrueF:
		return "TRUE"
	case logic.FalseF:
		return "FALSE"
	case logic.Occurred:
		return fmt.Sprintf("occurred(%s)", g.Var)
	case logic.New:
		return fmt.Sprintf("new(%s)", g.Var)
	case logic.Potential:
		return fmt.Sprintf("potential(%s)", g.Var)
	case logic.AtElement:
		return fmt.Sprintf("%s @ %s", g.Var, g.Element)
	case logic.InClass:
		return fmt.Sprintf("%s : %s", g.Var, g.Ref)
	case logic.AtControl:
		return fmt.Sprintf("%s at %s", g.Var, g.Ref)
	case logic.OnThread:
		return fmt.Sprintf("%s in %s", g.X, g.T)
	case logic.ThreadsDistinct:
		return fmt.Sprintf("distinct(%s, %s)", g.T1, g.T2)
	case logic.Enables:
		return fmt.Sprintf("%s |> %s", g.X, g.Y)
	case logic.ElemOrdered:
		return fmt.Sprintf("%s ~> %s", g.X, g.Y)
	case logic.Precedes:
		return fmt.Sprintf("%s => %s", g.X, g.Y)
	case logic.ConcurrentWith:
		return fmt.Sprintf("%s || %s", g.X, g.Y)
	case logic.SameEvent:
		return fmt.Sprintf("%s = %s", g.X, g.Y)
	case logic.ParamCmp:
		return fmt.Sprintf("%s.%s %s %s.%s", g.X, g.P, g.Op, g.Y, g.Q)
	case logic.ParamConst:
		return fmt.Sprintf("%s.%s %s %s", g.X, g.P, g.Op, sourceValue(g.V))
	case logic.CountDiff:
		max := "*"
		if !g.NoMax {
			max = fmt.Sprint(g.Max)
		}
		return fmt.Sprintf("COUNT(%s - %s IN %d .. %s)", g.A, g.B, g.Min, max)
	case logic.FIFOValues:
		return fmt.Sprintf("FIFO(%s.%s -> %s.%s)", g.A, g.PA, g.B, g.PB)
	case logic.Not:
		return "~(" + Source(g.F) + ")"
	case logic.And:
		return joinSource(g, " & ", "TRUE")
	case logic.Or:
		return joinSource(g, " | ", "FALSE")
	case logic.Implies:
		return "(" + Source(g.If) + " -> " + Source(g.Then) + ")"
	case logic.Iff:
		return "(" + Source(g.A) + " <-> " + Source(g.B) + ")"
	case logic.Box:
		return "[] (" + Source(g.F) + ")"
	case logic.Diamond:
		return "<> (" + Source(g.F) + ")"
	case logic.ForAll:
		return fmt.Sprintf("((FORALL %s: %s) %s)", g.Var, g.Ref, Source(g.Body))
	case logic.Exists:
		return fmt.Sprintf("((EXISTS %s: %s) %s)", g.Var, g.Ref, Source(g.Body))
	case logic.ExistsUnique:
		return fmt.Sprintf("((EXISTS1 %s: %s) %s)", g.Var, g.Ref, Source(g.Body))
	case logic.AtMostOne:
		return fmt.Sprintf("((ATMOST1 %s: %s) %s)", g.Var, g.Ref, Source(g.Body))
	case logic.ForAllThread:
		return fmt.Sprintf("((FORALLTHREAD %s: %s) %s)", g.Var, g.Type, Source(g.Body))
	case logic.ExistsThread:
		return fmt.Sprintf("((EXISTSTHREAD %s: %s) %s)", g.Var, g.Type, Source(g.Body))
	case logic.ForAllIn:
		return sourceUnion("FORALL", g.Var, g.Refs, g.Body)
	case logic.ExistsUniqueIn:
		return sourceUnion("EXISTS1", g.Var, g.Refs, g.Body)
	default:
		panic(fmt.Sprintf("gemlang: no surface syntax for %T", f))
	}
}

// sourceUnion renders a union-domain quantifier as a conjunction or
// counting over the member classes. ForAllIn distributes over the union;
// ExistsUniqueIn does not distribute, so it is rendered via the
// NDPREREQ-style expansion below only when the body is an Enables atom
// (its only use in the abbreviation library); anything else falls back
// to per-class quantifiers combined to preserve semantics.
func sourceUnion(kind, v string, refs []core.ClassRef, body logic.Formula) string {
	if kind == "FORALL" {
		var parts []string
		for _, ref := range refs {
			parts = append(parts, fmt.Sprintf("((FORALL %s: %s) %s)", v, ref, Source(body)))
		}
		return "(" + strings.Join(parts, " & ") + ")"
	}
	// EXISTS1 over a union: exactly one across all classes. Expressible
	// as: some class has exactly one and the others none, for each
	// partition — compact form: sum of counts equals one. Render via the
	// disjunction-of-unique-with-others-empty form.
	var parts []string
	for i, ref := range refs {
		var conj []string
		conj = append(conj, fmt.Sprintf("((EXISTS1 %s: %s) %s)", v, ref, Source(body)))
		for j, other := range refs {
			if j == i {
				continue
			}
			// Rendered exactly as Not{Exists{…}} would be, so reparsing
			// reaches the same fixpoint.
			conj = append(conj, fmt.Sprintf("~(((EXISTS %s: %s) %s))", v, other, Source(body)))
		}
		parts = append(parts, "("+strings.Join(conj, " & ")+")")
	}
	sort.Strings(parts)
	return "(" + strings.Join(parts, " | ") + ")"
}

func joinSource(fs []logic.Formula, sep, empty string) string {
	if len(fs) == 0 {
		return empty
	}
	var parts []string
	for _, f := range fs {
		parts = append(parts, Source(f))
	}
	return "(" + strings.Join(parts, sep) + ")"
}

func sourceValue(v core.Value) string {
	if v.Kind == core.KindBool {
		if v.B {
			return "TRUE"
		}
		return "FALSE"
	}
	return v.String() // ints bare, strings quoted
}
