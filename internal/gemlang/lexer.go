// Package gemlang implements a concrete syntax for GEM specifications
// closely following the paper's notation (ELEMENT TYPE / GROUP TYPE /
// EVENTS / RESTRICTIONS / PORTS / THREAD declarations and first-order
// restriction formulae with temporal operators), together with a lexer and
// recursive-descent parser producing the spec IR. Type descriptions follow
// the paper's text-substitution semantics: a type stores its body tokens
// and instantiation substitutes arguments before re-parsing.
//
// Operator spellings (ASCII renderings of the paper's symbols):
//
//	|>    enable relation  (⊳)
//	~>    element order    (⇒ₑ)
//	=>    temporal order   (⇒)
//	||    potential concurrency
//	[]    henceforth       (□)
//	<>    eventually       (◇)
//	->    implication      (⊃)
//	<->   equivalence
//	&  |  ~                conjunction, disjunction, negation
package gemlang

import (
	"fmt"
	"strings"
	"unicode"
)

// TokKind identifies a token kind.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokString
	TokKeyword // uppercase structural keywords and lowercase predicate keywords
	TokOp
)

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "<eof>"
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}

// Is reports whether the token is the given keyword or operator.
func (t Token) Is(text string) bool {
	return (t.Kind == TokKeyword || t.Kind == TokOp) && t.Text == text
}

var keywords = map[string]bool{
	// structural
	"ELEMENT": true, "GROUP": true, "TYPE": true, "EVENTS": true,
	"RESTRICTIONS": true, "MEMBERS": true, "PORTS": true, "END": true,
	"THREAD": true, "SPEC": true, "RESTRICTION": true, "ADD": true,
	// quantifiers
	"FORALL": true, "EXISTS": true, "EXISTS1": true, "ATMOST1": true,
	"FORALLTHREAD": true, "EXISTSTHREAD": true,
	// abbreviations
	"PREREQ": true, "NDPREREQ": true, "FORK": true, "JOIN": true,
	"COUNT": true, "FIFO": true, "IN": true,
	// literals
	"TRUE": true, "FALSE": true,
	// predicate keywords (lowercase, as in the paper's prose style)
	"occurred": true, "new": true, "potential": true, "at": true, "in": true,
	"distinct": true,
}

// multi-character operators, longest first.
var operators = []string{
	"<->", "=>", "->", "|>", "~>", "||", "[]", "<>", "::", "..",
	"<=", ">=", "!=", "&", "|", "~", "(", ")", ",", ":", ";", ".",
	"=", "<", ">", "@", "{", "}", "-", "*",
}

// Lex tokenizes source text. Comments run from "//" or "--" to end of
// line.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	advance := func(n int) {
		for k := 0; k < n; k++ {
			if src[i+k] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += n
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case strings.HasPrefix(src[i:], "//") || strings.HasPrefix(src[i:], "--"):
			for i < len(src) && src[i] != '\n' {
				advance(1)
			}
		case c == '"':
			startLine, startCol := line, col
			advance(1)
			var sb strings.Builder
			for i < len(src) && src[i] != '"' {
				if src[i] == '\n' {
					return nil, fmt.Errorf("gemlang:%d:%d: unterminated string", startLine, startCol)
				}
				sb.WriteByte(src[i])
				advance(1)
			}
			if i >= len(src) {
				return nil, fmt.Errorf("gemlang:%d:%d: unterminated string", startLine, startCol)
			}
			advance(1)
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Line: startLine, Col: startCol})
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1])) && numericContext(toks)):
			startLine, startCol := line, col
			j := i
			if src[j] == '-' {
				j++
			}
			for j < len(src) && unicode.IsDigit(rune(src[j])) {
				j++
			}
			toks = append(toks, Token{Kind: TokInt, Text: src[i:j], Line: startLine, Col: startCol})
			advance(j - i)
		case unicode.IsLetter(rune(c)) || c == '_':
			startLine, startCol := line, col
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			word := src[i:j]
			kind := TokIdent
			if keywords[word] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: word, Line: startLine, Col: startCol})
			advance(j - i)
		default:
			matched := false
			for _, op := range operators {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, Token{Kind: TokOp, Text: op, Line: line, Col: col})
					advance(len(op))
					matched = true
					break
				}
			}
			if !matched {
				return nil, fmt.Errorf("gemlang:%d:%d: unexpected character %q", line, col, c)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

// numericContext reports whether a '-' at the current point should start a
// negative integer literal: only after an operator or comparison, never
// after an identifier or number (where it would be part of "->").
func numericContext(toks []Token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	switch last.Kind {
	case TokIdent, TokInt, TokString:
		return false
	case TokOp:
		return last.Text != ")" && last.Text != "}"
	default:
		return true
	}
}
