package gemlang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) []string {
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind != TokEOF {
			out = append(out, t.Text)
		}
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex(`ELEMENT Var EVENTS Assign(newval: INTEGER) END`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"ELEMENT", "Var", "EVENTS", "Assign", "(", "newval", ":", "INTEGER", ")", "END"}
	got := texts(toks)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
	if toks[0].Kind != TokKeyword || toks[1].Kind != TokIdent {
		t.Errorf("kinds = %v", kinds(toks))
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := Lex(`a |> b ~> c => d <-> e -> f & g | h ~ [] <> :: || <= >= != { }`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"a", "|>", "b", "~>", "c", "=>", "d", "<->", "e", "->", "f",
		"&", "g", "|", "h", "~", "[]", "<>", "::", "||", "<=", ">=", "!=", "{", "}"}
	got := texts(toks)
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Errorf("tokens = %v, want %v", got, want)
	}
}

func TestLexOperatorMaximalMunch(t *testing.T) {
	// "<->" must not lex as "<" "->", and "||" not as "|" "|".
	toks, err := Lex(`<-> || |> <>`)
	if err != nil {
		t.Fatal(err)
	}
	got := texts(toks)
	if len(got) != 4 {
		t.Errorf("tokens = %v, want 4 operators", got)
	}
}

func TestLexComments(t *testing.T) {
	src := "A // line comment\nB -- another\nC"
	toks, err := Lex(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(toks); strings.Join(got, "") != "ABC" {
		t.Errorf("tokens = %v", got)
	}
}

func TestLexStringsAndInts(t *testing.T) {
	toks, err := Lex(`"hello world" 42 x.val = -7`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "hello world" {
		t.Errorf("string token = %+v", toks[0])
	}
	if toks[1].Kind != TokInt || toks[1].Text != "42" {
		t.Errorf("int token = %+v", toks[1])
	}
	// -7 after '=' is a negative literal.
	last := toks[len(toks)-2]
	if last.Kind != TokInt || last.Text != "-7" {
		t.Errorf("negative literal = %+v", last)
	}
}

func TestLexArrowNotNegative(t *testing.T) {
	toks, err := Lex(`a -> b`)
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(toks); strings.Join(got, " ") != "a -> b" {
		t.Errorf("tokens = %v", got)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex(`"unterminated`); err == nil {
		t.Error("unterminated string must fail")
	}
	if _, err := Lex("\"multi\nline\""); err == nil {
		t.Error("newline in string must fail")
	}
	if _, err := Lex(`a $ b`); err == nil {
		t.Error("unexpected character must fail")
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("A\n  B")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Line != 1 || toks[0].Col != 1 {
		t.Errorf("A at %d:%d", toks[0].Line, toks[0].Col)
	}
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("B at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func TestTokenString(t *testing.T) {
	if (Token{Kind: TokEOF}).String() != "<eof>" {
		t.Error("EOF string wrong")
	}
	if (Token{Kind: TokString, Text: "x"}).String() != `"x"` {
		t.Error("string token rendering wrong")
	}
	if (Token{Kind: TokIdent, Text: "abc"}).String() != "abc" {
		t.Error("ident rendering wrong")
	}
}

func TestKeywordRecognition(t *testing.T) {
	toks, err := Lex(`occurred new potential at in distinct FORALL`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:7] {
		if tok.Kind != TokKeyword {
			t.Errorf("%q should be a keyword", tok.Text)
		}
	}
	toks2, err := Lex(`occurredX news`)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks2[:2] {
		if tok.Kind != TokIdent {
			t.Errorf("%q should be an identifier", tok.Text)
		}
	}
}
