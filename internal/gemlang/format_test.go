package gemlang_test

import (
	"os"
	"strings"
	"testing"

	"gem/internal/core"
	"gem/internal/gemlang"
	"gem/internal/legal"
	"gem/internal/logic"
)

// TestSourceRoundTripsFormulae: Source renders every formula shape into
// parseable syntax, and reparsing yields a formula with identical
// verdicts (checked structurally via a second Format fixpoint).
func TestSourceRoundTripsFormulae(t *testing.T) {
	formulas := []string{
		"TRUE",
		"FALSE",
		"occurred(e)",
		"new(e)",
		"potential(e)",
		"x @ EL1",
		"x : db.control.StartRead",
		"x at db.control.StartRead",
		"x in t",
		"distinct(t1, t2)",
		"a |> b",
		"a ~> b",
		"a => b",
		"a || b",
		"a = b",
		"a != b",
		"x.v = y.w",
		"x.v < 5",
		`x.s = "lit"`,
		"~(TRUE)",
		"TRUE & FALSE & TRUE",
		"TRUE | FALSE",
		"TRUE -> FALSE",
		"TRUE <-> FALSE",
		"[] occurred(e)",
		"<> occurred(e)",
		"(FORALL x: A.B) occurred(x)",
		"(EXISTS x: A.B) occurred(x)",
		"(EXISTS1 x: A.B) x |> y",
		"(ATMOST1 x: A.B) x |> y",
		"(FORALLTHREAD t: pi) (EXISTS e: A.B) e in t",
		"(EXISTSTHREAD t: pi) TRUE",
		"COUNT(buf.Dep - buf.Fet IN 0 .. 3)",
		"COUNT(buf.Dep - buf.Fet IN -1 .. *)",
		"FIFO(buf.Dep.item -> buf.Fet.item)",
		"PREREQ(a.A -> b.B -> c.C)",
		"NDPREREQ({a.A, b.B} -> c.C)",
		"FORK(a.A -> {b.B, c.C})",
		"JOIN({b.B, c.C} -> a.A)",
	}
	for _, src := range formulas {
		f1, err := gemlang.ParseFormula(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		rendered := gemlang.Source(f1)
		f2, err := gemlang.ParseFormula(rendered)
		if err != nil {
			t.Fatalf("reparse of gemlang.Source(%q) = %q failed: %v", src, rendered, err)
		}
		// Fixpoint: formatting the reparsed formula is stable.
		if again := gemlang.Source(f2); again != rendered {
			t.Errorf("Source not a fixpoint for %q:\n  first:  %s\n  second: %s", src, rendered, again)
		}
	}
}

// TestFormatRoundTripsSpec: a full specification formats to source that
// reparses to an equivalent spec (Format fixpoint), and the reparsed
// spec gives the same legality verdicts.
func TestFormatRoundTripsSpec(t *testing.T) {
	src, err := os.ReadFile("../../examples/specs/readerswriters.gem")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := gemlang.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	out1 := gemlang.Format(s1)
	s2, err := gemlang.Parse(out1)
	if err != nil {
		t.Fatalf("formatted spec does not reparse: %v\n%s", err, out1)
	}
	out2 := gemlang.Format(s2)
	if out1 != out2 {
		t.Errorf("Format not a fixpoint:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
	if err := s2.Validate(); err != nil {
		t.Fatalf("reparsed spec invalid: %v", err)
	}
	// Same structure.
	if len(s1.ElementNames()) != len(s2.ElementNames()) ||
		len(s1.GroupNames()) != len(s2.GroupNames()) ||
		len(s1.Threads()) != len(s2.Threads()) ||
		len(s1.Restrictions()) != len(s2.Restrictions()) {
		t.Fatal("round trip changed the spec's shape")
	}
}

// TestFormatPreservesVerdicts: the original and round-tripped specs agree
// on a legal and an illegal computation.
func TestFormatPreservesVerdicts(t *testing.T) {
	const specSrc = `
SPEC verdicts
ELEMENT V
  EVENTS
    Assign(newval: VALUE)
    Getval(oldval: VALUE)
  RESTRICTIONS
    "rla":
      (FORALL a: Assign, g: Getval)
        (a ~> g & ~((EXISTS a2: Assign) (a ~> a2 & a2 ~> g)))
        -> a.newval = g.oldval ;
END
`
	s1, err := gemlang.Parse(specSrc)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := gemlang.Parse(gemlang.Format(s1))
	if err != nil {
		t.Fatal(err)
	}
	build := func(stale bool) *core.Computation {
		b := core.NewBuilder()
		b.Event("V", "Assign", core.Params{"newval": core.Int(1)})
		got := core.Int(1)
		if stale {
			got = core.Int(9)
		}
		b.Event("V", "Getval", core.Params{"oldval": got})
		c, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	for _, stale := range []bool{false, true} {
		v1 := legal.Check(s1, build(stale), legal.Options{}).Legal()
		v2 := legal.Check(s2, build(stale), legal.Options{}).Legal()
		if v1 != v2 {
			t.Errorf("stale=%v: original=%v roundtrip=%v", stale, v1, v2)
		}
		if v1 == stale {
			t.Errorf("stale=%v: verdict %v wrong", stale, v1)
		}
	}
}

func TestSourceBoolConstant(t *testing.T) {
	f := logic.ParamConst{X: "x", P: "alive", Op: logic.OpEq, V: core.Bool(true)}
	src := gemlang.Source(f)
	if !strings.Contains(src, "TRUE") {
		t.Errorf("bool constant rendering = %q", src)
	}
	if _, err := gemlang.ParseFormula(src); err != nil {
		t.Errorf("bool constant does not reparse: %v", err)
	}
}

func TestSourceUnionQuantifiers(t *testing.T) {
	refs := []core.ClassRef{core.Ref("a", "A"), core.Ref("b", "B")}
	fa := logic.ForAllIn{Var: "x", Refs: refs, Body: logic.Occurred{Var: "x"}}
	if _, err := gemlang.ParseFormula(gemlang.Source(fa)); err != nil {
		t.Errorf("ForAllIn source does not reparse: %v", err)
	}
	eu := logic.ExistsUniqueIn{Var: "x", Refs: refs, Body: logic.Enables{X: "x", Y: "y"}}
	if _, err := gemlang.ParseFormula(gemlang.Source(eu)); err != nil {
		t.Errorf("ExistsUniqueIn source does not reparse: %v", err)
	}
}

func TestFormatElementWithoutEvents(t *testing.T) {
	s, err := gemlang.Parse("ELEMENT Bare END")
	if err != nil {
		t.Fatal(err)
	}
	out := gemlang.Format(s)
	if _, err := gemlang.Parse(out); err != nil {
		t.Errorf("bare element format does not reparse: %v\n%s", err, out)
	}
}
