package gemlang

import (
	"testing"

	"gem/internal/logic"
)

// Hashes must be position-independent: the same restriction parsed from
// differently formatted sources (extra whitespace, comments, reordered
// surrounding declarations) hashes identically, and a semantic edit
// changes the hash.
func TestHashSpecPositionIndependent(t *testing.T) {
	a := `SPEC s
ELEMENT e
  EVENTS
    A
    B
  RESTRICTIONS
    "r": [] (~(occurred(x) & x : A)) ;
END`
	b := `SPEC s

ELEMENT e
  EVENTS
    A
    B

  RESTRICTIONS
    "r":
      [] ( ~( occurred(x) & x : A ) ) ;
END`
	edited := `SPEC s
ELEMENT e
  EVENTS
    A
    B
  RESTRICTIONS
    "r": [] (~(occurred(x) & x : B)) ;
END`
	sa, err := Parse(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	se, err := Parse(edited)
	if err != nil {
		t.Fatal(err)
	}
	if HashSpec(sa) != HashSpec(sb) {
		t.Errorf("reformatted spec changed the hash:\n%s\nvs\n%s", Format(sa), Format(sb))
	}
	if HashSpec(sa) == HashSpec(se) {
		t.Error("semantic edit did not change the spec hash")
	}
	ra, re := sa.Restrictions(), se.Restrictions()
	if HashFormula(ra[0].F) != HashFormula(sb.Restrictions()[0].F) {
		t.Error("reformatted restriction changed the formula hash")
	}
	if HashFormula(ra[0].F) == HashFormula(re[0].F) {
		t.Error("edited restriction kept the formula hash")
	}
}

// Formulas without surface syntax must still hash (via the String
// fallback), never panic.
type opaqueFormula struct{ logic.Formula }

func (opaqueFormula) String() string { return "opaque-test-formula" }

func TestHashFormulaOpaqueFallback(t *testing.T) {
	h1 := HashFormula(opaqueFormula{})
	h2 := HashFormula(opaqueFormula{})
	if h1 != h2 || len(h1) != 64 {
		t.Errorf("opaque formula hash unstable or malformed: %q vs %q", h1, h2)
	}
	if h1 == HashFormula(logic.TrueF{}) {
		t.Error("opaque fallback collided with a surface formula")
	}
}
