package gemlang

import (
	"strconv"

	"gem/internal/core"
	"gem/internal/logic"
)

// Formula grammar (precedence low to high):
//
//	formula  := iff
//	iff      := implies { "<->" implies }
//	implies  := or [ "->" implies ]          (right associative)
//	or       := and { "|" and }
//	and      := unary { "&" unary }
//	unary    := "~" unary | "[]" unary | "<>" unary | primary
//	primary  := "(" quantifier ")" unary
//	          | "(" formula ")"
//	          | "TRUE" | "FALSE"
//	          | "occurred" "(" var ")" | "new" "(" var ")"
//	          | "potential" "(" var ")"
//	          | "distinct" "(" tvar "," tvar ")"
//	          | "PREREQ" "(" ref "->" ref { "->" ref } ")"
//	          | "NDPREREQ" "(" "{" refs "}" "->" ref ")"
//	          | "FORK" "(" ref "->" "{" refs "}" ")"
//	          | "JOIN" "(" "{" refs "}" "->" ref ")"
//	          | relational
//
//	quantifier := ("FORALL"|"EXISTS"|"EXISTS1"|"ATMOST1") binder {"," binder}
//	            | ("FORALLTHREAD"|"EXISTSTHREAD") tbinder {"," tbinder}
//	binder     := var ":" classref
//	tbinder    := tvar ":" threadtype
//
//	relational := term relop term
//	            | var "@" element | var "at" classref | var "in" tvar
//	            | var "|>" var | var "~>" var | var "=>" var | var "||" var
//	            | var ":" classref
//	term       := var | var "." param | INT | STRING | TRUE | FALSE
//	relop      := "=" | "!=" | "<" | "<=" | ">" | ">="
func (p *parser) parseFormula(owner string) (logic.Formula, error) {
	if err := p.enterFormula(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	return p.parseIff(owner)
}

func (p *parser) parseIff(owner string) (logic.Formula, error) {
	left, err := p.parseImplies(owner)
	if err != nil {
		return nil, err
	}
	for p.peek().Is("<->") {
		p.next()
		right, err := p.parseImplies(owner)
		if err != nil {
			return nil, err
		}
		left = logic.Iff{A: left, B: right}
	}
	return left, nil
}

func (p *parser) parseImplies(owner string) (logic.Formula, error) {
	left, err := p.parseOr(owner)
	if err != nil {
		return nil, err
	}
	if p.peek().Is("->") {
		p.next()
		right, err := p.parseImplies(owner)
		if err != nil {
			return nil, err
		}
		return logic.Implies{If: left, Then: right}, nil
	}
	return left, nil
}

func (p *parser) parseOr(owner string) (logic.Formula, error) {
	left, err := p.parseAnd(owner)
	if err != nil {
		return nil, err
	}
	if !p.peek().Is("|") {
		return left, nil
	}
	out := logic.Or{left}
	for p.peek().Is("|") {
		p.next()
		right, err := p.parseAnd(owner)
		if err != nil {
			return nil, err
		}
		out = append(out, right)
	}
	return out, nil
}

func (p *parser) parseAnd(owner string) (logic.Formula, error) {
	left, err := p.parseUnary(owner)
	if err != nil {
		return nil, err
	}
	if !p.peek().Is("&") {
		return left, nil
	}
	out := logic.And{left}
	for p.peek().Is("&") {
		p.next()
		right, err := p.parseUnary(owner)
		if err != nil {
			return nil, err
		}
		out = append(out, right)
	}
	return out, nil
}

func (p *parser) parseUnary(owner string) (logic.Formula, error) {
	if err := p.enterFormula(); err != nil {
		return nil, err
	}
	defer func() { p.depth-- }()
	switch {
	case p.peek().Is("~"):
		p.next()
		f, err := p.parseUnary(owner)
		if err != nil {
			return nil, err
		}
		return logic.Not{F: f}, nil
	case p.peek().Is("[]"):
		p.next()
		f, err := p.parseUnary(owner)
		if err != nil {
			return nil, err
		}
		return logic.Box{F: f}, nil
	case p.peek().Is("<>"):
		p.next()
		f, err := p.parseUnary(owner)
		if err != nil {
			return nil, err
		}
		return logic.Diamond{F: f}, nil
	default:
		return p.parsePrimary(owner)
	}
}

var quantifierKeywords = map[string]bool{
	"FORALL": true, "EXISTS": true, "EXISTS1": true, "ATMOST1": true,
	"FORALLTHREAD": true, "EXISTSTHREAD": true,
}

func (p *parser) parsePrimary(owner string) (logic.Formula, error) {
	t := p.peek()
	switch {
	case t.Is("("):
		if quantifierKeywords[p.peek2().Text] {
			return p.parseQuantified(owner)
		}
		p.next()
		f, err := p.parseFormula(owner)
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	case t.Is("TRUE"):
		p.next()
		return logic.TrueF{}, nil
	case t.Is("FALSE"):
		p.next()
		return logic.FalseF{}, nil
	case t.Is("occurred"), t.Is("new"), t.Is("potential"):
		kw := p.next().Text
		if err := p.expect("("); err != nil {
			return nil, err
		}
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		switch kw {
		case "occurred":
			return logic.Occurred{Var: v}, nil
		case "new":
			return logic.New{Var: v}, nil
		default:
			return logic.Potential{Var: v}, nil
		}
	case t.Is("distinct"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		t1, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		t2, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return logic.ThreadsDistinct{T1: t1, T2: t2}, nil
	case t.Is("COUNT"):
		return p.parseCount(owner)
	case t.Is("FIFO"):
		return p.parseFIFO(owner)
	case t.Is("PREREQ"):
		return p.parsePrereq(owner)
	case t.Is("NDPREREQ"):
		return p.parseNDPrereq(owner)
	case t.Is("FORK"):
		return p.parseForkJoin(owner, true)
	case t.Is("JOIN"):
		return p.parseForkJoin(owner, false)
	case t.Kind == TokIdent || t.Kind == TokInt || t.Kind == TokString:
		return p.parseRelational(owner)
	default:
		return nil, p.errf("expected formula, found %s", t)
	}
}

func (p *parser) parseQuantified(owner string) (logic.Formula, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	kw := p.next().Text
	type binder struct {
		v   string
		ref core.ClassRef
		tt  string
	}
	var binders []binder
	for {
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expect(":"); err != nil {
			return nil, err
		}
		var bnd binder
		bnd.v = v
		if kw == "FORALLTHREAD" || kw == "EXISTSTHREAD" {
			tt, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			bnd.tt = tt
		} else {
			ref, err := p.parseClassRef(owner)
			if err != nil {
				return nil, err
			}
			bnd.ref = ref
		}
		binders = append(binders, bnd)
		if p.peek().Is(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	// Quantifier scope extends maximally to the right, as in standard
	// first-order notation (parenthesize to limit it).
	body, err := p.parseFormula(owner)
	if err != nil {
		return nil, err
	}
	// Wrap binders inside-out.
	for i := len(binders) - 1; i >= 0; i-- {
		b := binders[i]
		switch kw {
		case "FORALL":
			body = logic.ForAll{Var: b.v, Ref: b.ref, Body: body}
		case "EXISTS":
			body = logic.Exists{Var: b.v, Ref: b.ref, Body: body}
		case "EXISTS1":
			body = logic.ExistsUnique{Var: b.v, Ref: b.ref, Body: body}
		case "ATMOST1":
			body = logic.AtMostOne{Var: b.v, Ref: b.ref, Body: body}
		case "FORALLTHREAD":
			body = logic.ForAllThread{Var: b.v, Type: b.tt, Body: body}
		case "EXISTSTHREAD":
			body = logic.ExistsThread{Var: b.v, Type: b.tt, Body: body}
		}
	}
	return body, nil
}

// parseCount parses COUNT(refA - refB IN min .. max), where max may be
// "*" for unbounded: the counting restriction min ≤ #A − #B ≤ max over
// the current history.
func (p *parser) parseCount(owner string) (logic.Formula, error) {
	p.next() // COUNT
	if err := p.expect("("); err != nil {
		return nil, err
	}
	a, err := p.parseClassRef(owner)
	if err != nil {
		return nil, err
	}
	if err := p.expect("-"); err != nil {
		return nil, err
	}
	bref, err := p.parseClassRef(owner)
	if err != nil {
		return nil, err
	}
	if err := p.expect("IN"); err != nil {
		return nil, err
	}
	min, err := p.expectInt()
	if err != nil {
		return nil, err
	}
	if err := p.expect(".."); err != nil {
		return nil, err
	}
	out := logic.CountDiff{A: a, B: bref, Min: min}
	if p.peek().Is("*") {
		p.next()
		out.NoMax = true
	} else {
		max, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		out.Max = max
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}

// parseFIFO parses FIFO(refA.pa -> refB.pb): the k-th B event carries the
// same pb value as the k-th A event's pa.
func (p *parser) parseFIFO(owner string) (logic.Formula, error) {
	p.next() // FIFO
	if err := p.expect("("); err != nil {
		return nil, err
	}
	a, pa, err := p.parseRefWithParam(owner)
	if err != nil {
		return nil, err
	}
	if err := p.expect("->"); err != nil {
		return nil, err
	}
	bref, pb, err := p.parseRefWithParam(owner)
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return logic.FIFOValues{A: a, PA: pa, B: bref, PB: pb}, nil
}

// parseRefWithParam parses elem.Class.param (at least two components).
func (p *parser) parseRefWithParam(owner string) (core.ClassRef, string, error) {
	full, err := p.parseDotted()
	if err != nil {
		return core.ClassRef{}, "", err
	}
	rest, param := splitRef(full)
	if rest == "" {
		return core.ClassRef{}, "", p.errf("expected Class.param, found %q", full)
	}
	elem, class := splitRef(rest)
	if elem == "" && owner != "" {
		elem = owner
	}
	return core.Ref(elem, class), param, nil
}

func (p *parser) expectInt() (int, error) {
	t := p.peek()
	if t.Kind != TokInt {
		return 0, p.errf("expected integer, found %s", t)
	}
	p.next()
	n, err := strconv.Atoi(t.Text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.Text)
	}
	return n, nil
}

func (p *parser) parsePrereq(owner string) (logic.Formula, error) {
	p.next() // PREREQ
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var refs []core.ClassRef
	for {
		ref, err := p.parseClassRef(owner)
		if err != nil {
			return nil, err
		}
		refs = append(refs, ref)
		if p.peek().Is("->") {
			p.next()
			continue
		}
		break
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if len(refs) < 2 {
		return nil, p.errf("PREREQ needs at least two classes")
	}
	return logic.PrereqChain(refs...), nil
}

func (p *parser) parseNDPrereq(owner string) (logic.Formula, error) {
	p.next() // NDPREREQ
	if err := p.expect("("); err != nil {
		return nil, err
	}
	set, err := p.parseRefSet(owner)
	if err != nil {
		return nil, err
	}
	if err := p.expect("->"); err != nil {
		return nil, err
	}
	ref, err := p.parseClassRef(owner)
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return logic.NDPrereq(set, ref), nil
}

func (p *parser) parseForkJoin(owner string, fork bool) (logic.Formula, error) {
	p.next() // FORK or JOIN
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var out logic.Formula
	if fork {
		ref, err := p.parseClassRef(owner)
		if err != nil {
			return nil, err
		}
		if err := p.expect("->"); err != nil {
			return nil, err
		}
		set, err := p.parseRefSet(owner)
		if err != nil {
			return nil, err
		}
		out = logic.Fork(ref, set)
	} else {
		set, err := p.parseRefSet(owner)
		if err != nil {
			return nil, err
		}
		if err := p.expect("->"); err != nil {
			return nil, err
		}
		ref, err := p.parseClassRef(owner)
		if err != nil {
			return nil, err
		}
		out = logic.Join(set, ref)
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseRefSet(owner string) ([]core.ClassRef, error) {
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	var out []core.ClassRef
	for {
		ref, err := p.parseClassRef(owner)
		if err != nil {
			return nil, err
		}
		out = append(out, ref)
		if p.peek().Is(",") {
			p.next()
			continue
		}
		break
	}
	if err := p.expect("}"); err != nil {
		return nil, err
	}
	return out, nil
}

// term is a relational operand.
type term struct {
	isVar   bool
	varName string
	param   string // non-empty for var.param
	lit     core.Value
}

func (p *parser) parseTerm() (term, error) {
	t := p.peek()
	switch t.Kind {
	case TokInt:
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return term{}, p.errf("bad integer %q", t.Text)
		}
		return term{lit: core.Int(n)}, nil
	case TokString:
		p.next()
		return term{lit: core.Str(t.Text)}, nil
	case TokKeyword:
		if t.Is("TRUE") || t.Is("FALSE") {
			p.next()
			return term{lit: core.Bool(t.Text == "TRUE")}, nil
		}
		return term{}, p.errf("expected term, found %s", t)
	case TokIdent:
		v := p.next().Text
		if p.peek().Is(".") && p.peek2().Kind == TokIdent {
			p.next()
			param, err := p.expectIdent()
			if err != nil {
				return term{}, err
			}
			return term{isVar: true, varName: v, param: param}, nil
		}
		return term{isVar: true, varName: v}, nil
	default:
		return term{}, p.errf("expected term, found %s", t)
	}
}

var relops = map[string]logic.CmpOp{
	"=": logic.OpEq, "!=": logic.OpNe, "<": logic.OpLt,
	"<=": logic.OpLe, ">": logic.OpGt, ">=": logic.OpGe,
}

func (p *parser) parseRelational(owner string) (logic.Formula, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	// Event-relation operators require a bare variable on the left.
	if left.isVar && left.param == "" {
		switch {
		case t.Is("@"):
			p.next()
			elem, err := p.parseDotted()
			if err != nil {
				return nil, err
			}
			return logic.AtElement{Var: left.varName, Element: elem}, nil
		case t.Is("at"):
			p.next()
			ref, err := p.parseClassRef(owner)
			if err != nil {
				return nil, err
			}
			return logic.AtControl{Var: left.varName, Ref: ref}, nil
		case t.Is("in"):
			p.next()
			tv, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return logic.OnThread{X: left.varName, T: tv}, nil
		case t.Is("|>"):
			p.next()
			rv, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return logic.Enables{X: left.varName, Y: rv}, nil
		case t.Is("~>"):
			p.next()
			rv, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return logic.ElemOrdered{X: left.varName, Y: rv}, nil
		case t.Is("=>"):
			p.next()
			rv, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return logic.Precedes{X: left.varName, Y: rv}, nil
		case t.Is("||"):
			p.next()
			rv, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return logic.ConcurrentWith{X: left.varName, Y: rv}, nil
		case t.Is(":"):
			p.next()
			ref, err := p.parseClassRef(owner)
			if err != nil {
				return nil, err
			}
			return logic.InClass{Var: left.varName, Ref: ref}, nil
		}
	}
	op, ok := relops[t.Text]
	if !ok || t.Kind != TokOp {
		return nil, p.errf("expected relational operator, found %s", t)
	}
	p.next()
	right, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return buildComparison(left, op, right, p)
}

func buildComparison(left term, op logic.CmpOp, right term, p *parser) (logic.Formula, error) {
	switch {
	case left.isVar && left.param == "" && right.isVar && right.param == "":
		// Bare variables: event identity.
		switch op {
		case logic.OpEq:
			return logic.SameEvent{X: left.varName, Y: right.varName}, nil
		case logic.OpNe:
			return logic.Not{F: logic.SameEvent{X: left.varName, Y: right.varName}}, nil
		default:
			return nil, p.errf("events support only = and !=")
		}
	case left.isVar && left.param != "" && right.isVar && right.param != "":
		return logic.ParamCmp{X: left.varName, P: left.param, Op: op, Y: right.varName, Q: right.param}, nil
	case left.isVar && left.param != "" && !right.isVar:
		return logic.ParamConst{X: left.varName, P: left.param, Op: op, V: right.lit}, nil
	case !left.isVar && right.isVar && right.param != "":
		return logic.ParamConst{X: right.varName, P: right.param, Op: flip(op), V: left.lit}, nil
	default:
		return nil, p.errf("invalid comparison operands")
	}
}

func flip(op logic.CmpOp) logic.CmpOp {
	switch op {
	case logic.OpLt:
		return logic.OpGt
	case logic.OpLe:
		return logic.OpGe
	case logic.OpGt:
		return logic.OpLt
	case logic.OpGe:
		return logic.OpLe
	default:
		return op
	}
}
