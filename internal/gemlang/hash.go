package gemlang

import (
	"crypto/sha256"
	"encoding/hex"

	"gem/internal/logic"
	"gem/internal/spec"
)

// HashFormula returns a stable content hash of the formula: the SHA-256
// of its canonical concrete-syntax rendering (Source). Because the
// rendering carries no source positions, two formulas that differ only
// in where they were written in a spec file — or in which spec file —
// hash identically, and any semantic edit changes the hash. This is the
// restriction-level cache key of the persistent store: an edited spec
// re-derives per-restriction hashes, and only the restrictions whose
// canonical form changed miss the cache.
//
// Formula shapes with no surface syntax (none exist among the exported
// constructors, but external Formula implementations are possible) fall
// back to hashing the formula's String rendering.
func HashFormula(f logic.Formula) string {
	return hashString("gem.formula\x00" + formulaKey(f))
}

// HashSpec returns a stable content hash of a whole compiled
// specification: the SHA-256 of its canonical rendering (Format), which
// Parse round-trips to an equivalent spec. Like HashFormula it is
// position-independent; it keys whole-spec artifacts (the sat records
// and fast-path guard vectors of the persistent store).
func HashSpec(s *spec.Spec) string {
	return hashString("gem.spec\x00" + specKey(s))
}

// formulaKey renders the canonical source, falling back to the String
// form for shapes Source cannot express.
func formulaKey(f logic.Formula) (key string) {
	defer func() {
		if recover() != nil {
			key = "opaque\x00" + f.String()
		}
	}()
	return Source(f)
}

// specKey renders the canonical spec source, with the same fallback as
// formulaKey should any embedded formula lack surface syntax.
func specKey(s *spec.Spec) (key string) {
	defer func() {
		if recover() != nil {
			// Degrade to the String renderings restriction by restriction;
			// still deterministic and position-independent, just not
			// parseable.
			k := "opaque\x00" + s.Name
			for _, r := range s.Restrictions() {
				k += "\x00" + r.Owner + "\x00" + r.Name + "\x00" + formulaKey(r.F)
			}
			key = k
		}
	}()
	return Format(s)
}

func hashString(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}
