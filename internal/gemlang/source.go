package gemlang

import (
	"gem/internal/obs"
	"gem/internal/spec"
)

// Pos is a 1-based line/column source position.
type Pos struct {
	Line int
	Col  int
}

// SourceMap records where the declarations of a parsed specification
// appear in the source text, keyed by declared name. Restrictions are
// keyed by their (label or generated) name; for declarations stamped out
// of a type, positions point into the type body (the paper's
// text-substitution semantics: the instance *is* the substituted text).
// The first declaration of a name wins.
type SourceMap struct {
	Elements     map[string]Pos
	Groups       map[string]Pos
	Threads      map[string]Pos
	Restrictions map[string]Pos
}

func newSourceMap() *SourceMap {
	return &SourceMap{
		Elements:     make(map[string]Pos),
		Groups:       make(map[string]Pos),
		Threads:      make(map[string]Pos),
		Restrictions: make(map[string]Pos),
	}
}

func (m *SourceMap) mark(table map[string]Pos, name string, t Token) {
	if m == nil {
		return
	}
	if _, ok := table[name]; !ok {
		table[name] = Pos{Line: t.Line, Col: t.Col}
	}
}

// ParseWithPositions is Parse plus a SourceMap locating each declaration,
// for position-annotated diagnostics (gemlint).
func ParseWithPositions(src string) (*spec.Spec, *SourceMap, error) {
	_, sp := obs.StartSpan(nil, "parse")
	defer sp.End()
	toks, err := Lex(src)
	if err != nil {
		return nil, nil, err
	}
	p := &parser{
		toks:       toks,
		out:        spec.New("spec"),
		elemTypes:  make(map[string]*typeDef),
		groupTypes: make(map[string]*typeDef),
		marks:      newSourceMap(),
	}
	if err := p.parseSpec(); err != nil {
		return nil, nil, err
	}
	return p.out, p.marks, nil
}
