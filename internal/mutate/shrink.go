package mutate

import (
	"fmt"
	"strconv"
	"strings"

	"gem/internal/core"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/obs"
	"gem/internal/spec"
	"gem/internal/thread"
)

// ddmin-style counterexample shrinking: delta-debug a failing
// computation down to a minimal event subset that still fails the same
// way, then re-validate the minimized witness via Counterexample.Verify.
// The algorithm is Zeller–Hildebrandt ddmin over the event id set with
// deterministic (contiguous, index-ordered) chunking: the reduction path
// is a pure function of the input, so shrinking a shrunk witness is a
// fixpoint, and ddmin's final granularity escalation guarantees
// 1-minimality (no single event can be removed).

// ShrinkResult is a minimized failing computation.
type ShrinkResult struct {
	Comp       *core.Computation
	Events     int // events kept
	OrigEvents int
	// Kind is the violation class the shrink preserved. For
	// RestrictionViolation, Restriction/Owner name the failing
	// restriction and Cx is the re-derived, Verify-checked witness on
	// the minimized computation; for structural kinds Cx is nil (the
	// violation is its own witness).
	Kind        legal.ViolationKind
	Restriction string
	Owner       string
	Cx          *logic.Counterexample
}

// Shrink minimizes c with respect to the given violation: the result is
// a 1-minimal event subset of c whose induced sub-computation still
// exhibits v (same failing restriction, or same structural violation
// kind). opts configures the predicate's restriction checks (engine,
// cancellation, verdict cache); shrinking never mutates c.
func Shrink(sp *spec.Spec, c *core.Computation, v legal.Violation, opts logic.CheckOptions) (*ShrinkResult, error) {
	_, span := obs.StartSpan(opts.Ctx, "mutate.shrink")
	defer span.End()

	var f logic.Formula
	if v.Kind == legal.RestrictionViolation {
		f = findRestriction(sp, v.Owner, v.Restriction)
		if f == nil {
			return nil, fmt.Errorf("mutate: shrink target %s/%s not in spec", v.Owner, v.Restriction)
		}
	}
	ir := irOf(c)
	sh := &shrinker{sp: sp, ir: ir, kind: v.Kind, f: f, opts: opts, memo: make(map[string]bool)}

	all := make([]int, len(ir.events))
	for i := range all {
		all[i] = i
	}
	if !sh.fails(all) {
		// The violation does not reproduce on the shrinker's rebuild of the
		// full computation — a campaign finding, not a crash.
		return nil, fmt.Errorf("mutate: violation %s does not reproduce at full size", v.Kind)
	}
	kept := sh.ddmin(all)
	min, err := sh.build(kept)
	if err != nil {
		return nil, err
	}
	res := &ShrinkResult{
		Comp:        min,
		Events:      len(kept),
		OrigEvents:  len(ir.events),
		Kind:        v.Kind,
		Restriction: v.Restriction,
		Owner:       v.Owner,
	}
	if f != nil {
		cx := logic.Holds(f, min, sh.opts)
		if cx == nil {
			return nil, fmt.Errorf("mutate: shrunk computation no longer fails %s/%s", v.Owner, v.Restriction)
		}
		if err := cx.Verify(); err != nil {
			return nil, fmt.Errorf("mutate: shrunk witness fails Verify: %w", err)
		}
		res.Cx = cx
	}
	return res, nil
}

func findRestriction(sp *spec.Spec, owner, name string) logic.Formula {
	for _, r := range sp.Restrictions() {
		if r.Owner == owner && r.Name == name {
			return r.F
		}
	}
	return nil
}

type shrinker struct {
	sp   *spec.Spec
	ir   compIR
	kind legal.ViolationKind
	f    logic.Formula // nil for structural kinds
	opts logic.CheckOptions
	memo map[string]bool
}

// build assembles the sub-computation induced by the kept event indices
// (ascending): the kept events with every direct enable edge between
// them. A subgraph of a DAG is a DAG, so build only fails if the full
// computation was already broken.
func (s *shrinker) build(kept []int) (*core.Computation, error) {
	idx := make(map[int]int, len(kept))
	b := core.NewBuilder()
	for ni, oi := range kept {
		e := s.ir.events[oi]
		b.Event(e.element, e.class, e.params)
		idx[oi] = ni
	}
	for _, ed := range s.ir.edges {
		src, oks := idx[ed[0]]
		dst, okd := idx[ed[1]]
		if oks && okd {
			b.Enable(core.EventID(src), core.EventID(dst))
		}
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	thread.Apply(c, s.sp.Threads()...)
	return c, nil
}

// fails reports whether the induced sub-computation still exhibits the
// target violation. Evaluations are memoized per subset: ddmin re-tests
// overlapping complements, and on the restriction path each test is a
// full Holds run.
func (s *shrinker) fails(kept []int) bool {
	var sb strings.Builder
	for _, i := range kept {
		sb.WriteString(strconv.Itoa(i))
		sb.WriteByte(',')
	}
	k := sb.String()
	if v, ok := s.memo[k]; ok {
		return v
	}
	v := s.failsUncached(kept)
	s.memo[k] = v
	return v
}

func (s *shrinker) failsUncached(kept []int) bool {
	c, err := s.build(kept)
	if err != nil {
		return false
	}
	if s.f != nil {
		return logic.Holds(s.f, c, s.opts) != nil
	}
	res := legal.Check(s.sp, c, legal.Options{SkipRestrictions: true})
	for _, v := range res.Violations {
		if v.Kind == s.kind {
			return true
		}
	}
	return false
}

// ddmin is the classic delta-debugging minimization over the kept set.
// Chunk boundaries are deterministic functions of the set size, so the
// whole reduction is reproducible.
func (s *shrinker) ddmin(cur []int) []int {
	n := 2
	for len(cur) >= 2 {
		reduced := false
		// Try each chunk alone ("reduce to subset").
		for i := 0; i < n && !reduced; i++ {
			ch := chunk(cur, n, i)
			if len(ch) == 0 || len(ch) == len(cur) {
				continue
			}
			if s.fails(ch) {
				cur, n, reduced = ch, 2, true
			}
		}
		// Try each complement ("reduce to complement").
		if !reduced && n > 2 {
			for i := 0; i < n && !reduced; i++ {
				co := complement(cur, n, i)
				if len(co) == 0 || len(co) == len(cur) {
					continue
				}
				if s.fails(co) {
					cur, reduced = co, true
					if n--; n < 2 {
						n = 2
					}
				}
			}
		}
		if !reduced {
			if n >= len(cur) {
				break // granularity 1: every single removal re-fails → 1-minimal
			}
			n *= 2
			if n > len(cur) {
				n = len(cur)
			}
		}
	}
	return cur
}

// chunk returns the i-th of n contiguous chunks of set.
func chunk(set []int, n, i int) []int {
	lo := i * len(set) / n
	hi := (i + 1) * len(set) / n
	return set[lo:hi]
}

// complement returns set minus its i-th chunk.
func complement(set []int, n, i int) []int {
	lo := i * len(set) / n
	hi := (i + 1) * len(set) / n
	out := make([]int, 0, len(set)-(hi-lo))
	out = append(out, set[:lo]...)
	out = append(out, set[hi:]...)
	return out
}
