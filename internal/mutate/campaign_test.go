package mutate

import (
	"bytes"
	"testing"

	"gem/internal/core"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/store"
)

// runCampaign runs a small fixed campaign for the tests; seeds are
// rebuilt per run so spec-pointer memoization never leaks across runs.
func runCampaign(t *testing.T, par int, st *store.Store, n int) *Report {
	t.Helper()
	cfg := Config{N: n, Seed: 11, Parallelism: par, Store: st}
	if st != nil {
		cfg.Cache = st
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The campaign report must be a pure function of (seed, N): identical
// bytes from the sequential and the 8-worker run.
func TestCampaignDeterministicAcrossParallelism(t *testing.T) {
	rep1 := runCampaign(t, 1, nil, 150)
	rep8 := runCampaign(t, 8, nil, 150)
	var b1, b8 bytes.Buffer
	rep1.RenderVerbose(&b1)
	rep8.RenderVerbose(&b8)
	if !bytes.Equal(b1.Bytes(), b8.Bytes()) {
		t.Fatalf("-j1 and -j8 reports differ:\n--- j1 ---\n%s\n--- j8 ---\n%s", b1.String(), b8.String())
	}
	if rep1.Unique == 0 || rep1.Illegal == 0 {
		t.Fatalf("degenerate campaign: unique=%d illegal=%d", rep1.Unique, rep1.Illegal)
	}
}

// The three engines must agree on every mutant, every witness must pass
// Verify, and every failure must shrink — zero findings on a healthy
// checker. This is the in-tree version of the CI campaign gate.
func TestCampaignEngineAgreement(t *testing.T) {
	rep := runCampaign(t, 4, nil, 200)
	for _, f := range rep.Findings {
		t.Errorf("finding on mutant %d [%s]: %s: %s", f.Index, f.Op, f.Kind, f.Detail)
	}
	shrunk := 0
	for _, r := range rep.Results {
		if r.Legal {
			continue
		}
		if r.Shrunk == nil {
			t.Errorf("illegal mutant %d [%s] has no shrunk witness", r.Mutant.Index, r.Mutant.Op)
			continue
		}
		shrunk++
		if r.Shrunk.Events > r.Shrunk.OrigEvents {
			t.Errorf("mutant %d: shrink grew the computation %d -> %d",
				r.Mutant.Index, r.Shrunk.OrigEvents, r.Shrunk.Events)
		}
		if r.Shrunk.Kind == legal.RestrictionViolation {
			if r.Shrunk.Cx == nil {
				t.Errorf("mutant %d: restriction failure without counterexample", r.Mutant.Index)
			} else if err := r.Shrunk.Cx.Verify(); err != nil {
				t.Errorf("mutant %d: shrunk witness fails Verify: %v", r.Mutant.Index, err)
			}
		}
	}
	if shrunk == 0 {
		t.Fatal("campaign produced no shrunk witnesses")
	}
}

// Shrinking is a fixpoint: re-shrinking an already-minimal witness keeps
// the exact same computation (deterministic chunking + 1-minimality).
func TestShrinkIdempotent(t *testing.T) {
	rep := runCampaign(t, 4, nil, 120)
	checked := 0
	for _, r := range rep.Results {
		if r.Shrunk == nil {
			continue
		}
		v := legal.Violation{
			Kind:        r.Shrunk.Kind,
			Owner:       r.Shrunk.Owner,
			Restriction: r.Shrunk.Restriction,
		}
		again, err := Shrink(r.Mutant.Spec, r.Shrunk.Comp, v, logic.CheckOptions{})
		if err != nil {
			t.Errorf("mutant %d: re-shrink failed: %v", r.Mutant.Index, err)
			continue
		}
		if again.Events != r.Shrunk.Events {
			t.Errorf("mutant %d: re-shrink changed size %d -> %d",
				r.Mutant.Index, r.Shrunk.Events, again.Events)
		}
		if core.Fingerprint(again.Comp) != core.Fingerprint(r.Shrunk.Comp) {
			t.Errorf("mutant %d: re-shrink changed the computation", r.Mutant.Index)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no shrunk witnesses to re-shrink")
	}
}

// Corpus round trip: a campaign persisted through the store replays with
// full engine agreement, and the warm store serves hits.
func TestCampaignCorpusReplay(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	rep := runCampaign(t, 4, st, 150)
	persisted := 0
	for _, r := range rep.Results {
		if r.CorpusKey != "" {
			persisted++
		}
	}
	if persisted == 0 {
		t.Fatal("campaign persisted no corpus entries")
	}
	entries, err := Replay(st, "gemmut", st)
	if err != nil {
		t.Fatal(err)
	}
	if entries == 0 {
		t.Fatal("replay found an empty corpus")
	}
	if st.Stats().Hits == 0 {
		t.Fatal("replay over a warm store recorded no hits")
	}

	// A warm rerun of the identical campaign must reproduce the identical
	// report while serving verdicts from the store.
	before := st.Stats().Hits
	rep2 := runCampaign(t, 2, st, 150)
	var b1, b2 bytes.Buffer
	rep.Render(&b1)
	rep2.Render(&b2)
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatalf("warm rerun changed the report:\n--- cold ---\n%s\n--- warm ---\n%s", b1.String(), b2.String())
	}
	if st.Stats().Hits <= before {
		t.Fatal("warm rerun recorded no additional store hits")
	}
}
