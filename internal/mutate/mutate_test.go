package mutate

import (
	"errors"
	"testing"

	"gem/internal/core"
	"gem/internal/gemlang"
	"gem/internal/legal"
	"gem/internal/thread"
)

// The central operator property: for every campaign index, Generate
// either rejects with the typed error or produces a mutant whose spec
// still renders and re-parses through gemlang and whose computation is
// structurally sound — never a panic, never an unrenderable formula.
func TestOperatorProperty(t *testing.T) {
	seeds, err := DefaultSeeds()
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[Op]int)
	rejected := make(map[Op]int)
	for i := 0; i < 600; i++ {
		m, err := Generate(seeds, 42, i)
		if err != nil {
			var rej *Rejected
			if !errors.As(err, &rej) {
				t.Fatalf("index %d: non-typed error %v", i, err)
			}
			if rej.Reason == "" {
				t.Fatalf("index %d: rejection without reason", i)
			}
			rejected[rej.Op]++
			continue
		}
		covered[m.Op]++
		if m.Provenance == "" {
			t.Fatalf("index %d: mutant without provenance", i)
		}
		// The mutant spec must render and re-parse: the corpus persists
		// specs as gemlang source.
		src := gemlang.Format(m.Spec)
		if _, perr := gemlang.Parse(src); perr != nil {
			t.Fatalf("index %d (%s, %s): mutant spec does not re-parse: %v\n%s",
				i, m.Op, m.Provenance, perr, src)
		}
		// The computation built (Build validated acyclicity); its events
		// must be intact and its thread labels re-derivable.
		if m.Comp.NumEvents() == 0 {
			t.Fatalf("index %d (%s): mutant computation has no events", i, m.Op)
		}
		for _, e := range m.Comp.Events() {
			if e.Element == "" || e.Class == "" {
				t.Fatalf("index %d (%s): event %d lost element/class", i, m.Op, e.ID)
			}
		}
	}
	for _, op := range AllOps {
		if covered[op]+rejected[op] == 0 {
			t.Errorf("operator %s never drawn in 600 indices", op)
		}
	}
	// The sampler must actually produce mutants for the spec-side and the
	// main computation-side operators (some, like widen-port, may only
	// ever fire on one seed).
	for _, op := range []Op{OpDropRestriction, OpNegateNode, OpWeakenNode, OpDropEnable, OpDropEvent, OpPerturbParam} {
		if covered[op] == 0 {
			t.Errorf("operator %s produced no mutants in 600 indices", op)
		}
	}
}

// Mutant i is a pure function of (campaign seed, i): regenerating the
// same index yields the identical mutant, and different campaign seeds
// diverge.
func TestGenerateDeterministic(t *testing.T) {
	seeds, err := DefaultSeeds()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a, errA := Generate(seeds, 7, i)
		b, errB := Generate(seeds, 7, i)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("index %d: verdict differs across regeneration", i)
		}
		if errA != nil {
			if errA.Error() != errB.Error() {
				t.Fatalf("index %d: rejection differs: %v vs %v", i, errA, errB)
			}
			continue
		}
		if a.Op != b.Op || a.Provenance != b.Provenance || a.Seed != b.Seed {
			t.Fatalf("index %d: mutant differs: %+v vs %+v", i, a, b)
		}
		if gemlang.HashSpec(a.Spec) != gemlang.HashSpec(b.Spec) {
			t.Fatalf("index %d: spec hash differs", i)
		}
		if core.Fingerprint(a.Comp) != core.Fingerprint(b.Comp) {
			t.Fatalf("index %d: computation fingerprint differs", i)
		}
	}
}

// The default seeds must be legal under the default engine: mutation
// measures the checker's reaction to *deviations*, so the baseline must
// be violation-free.
func TestDefaultSeedsLegal(t *testing.T) {
	seeds, err := DefaultSeeds()
	if err != nil {
		t.Fatal(err)
	}
	for _, sd := range seeds {
		if len(sd.Comps) == 0 {
			t.Fatalf("seed %s has no computations", sd.Name)
		}
		for ci, c := range sd.Comps {
			res := legal.Check(sd.Spec, c, legal.Options{})
			if !res.Legal() {
				t.Errorf("seed %s comp %d is illegal: %v", sd.Name, ci, res.Error())
			}
		}
	}
}

// The codec must round-trip every seed computation bit-for-bit
// (fingerprints include params, thread labels, and the enable relation),
// and malformed bytes must error, never panic.
func TestComputationCodecRoundTrip(t *testing.T) {
	seeds, err := DefaultSeeds()
	if err != nil {
		t.Fatal(err)
	}
	for _, sd := range seeds {
		for ci, c := range sd.Comps {
			enc := EncodeComputation(c)
			dec, err := DecodeComputation(enc)
			if err != nil {
				t.Fatalf("seed %s comp %d: decode: %v", sd.Name, ci, err)
			}
			if core.Fingerprint(dec) != core.Fingerprint(c) {
				t.Fatalf("seed %s comp %d: fingerprint changed across codec", sd.Name, ci)
			}
			// Labels came from the encoding, not from re-applying threads:
			// they must still validate against the spec's thread types.
			if err := thread.Validate(dec, sd.Spec.Threads()...); err != nil {
				t.Fatalf("seed %s comp %d: decoded labels invalid: %v", sd.Name, ci, err)
			}
			// Truncations and bit flips error cleanly.
			for cut := 0; cut < len(enc); cut += 3 {
				if _, err := DecodeComputation(enc[:cut]); err == nil {
					t.Fatalf("seed %s comp %d: truncation at %d decoded", sd.Name, ci, cut)
				}
			}
			for pos := 0; pos < len(enc); pos += 5 {
				bad := append([]byte(nil), enc...)
				bad[pos] ^= 0x80
				dec, err := DecodeComputation(bad) // must not panic
				_ = dec
				_ = err
			}
		}
	}
}
