// Package mutate implements mutation campaigns over GEM specifications
// and computations: a deterministic, seedable mutator (drop a
// restriction, negate or weaken a formula node, widen a port, permute a
// thread's prerequisite chain, and edge/event/parameter mutations on
// computations), a campaign driver that fans thousands of mutants across
// a worker pool with per-mutant cancellation and verdict dedup, and a
// ddmin shrinker that delta-debugs every failing computation down to a
// minimal counterexample re-validated via logic.Counterexample.Verify.
//
// Mutation grows the engine-agreement corpus: every mutant is checked
// under the auto, lattice, and seq engines, and any verdict or blame
// disagreement is a campaign finding — the same campaign-at-scale shape
// the cat/herd tooling uses against memory models. Mutants that are
// merely illegal (the expected outcome for most operators) are corpus
// entries, not findings.
//
// Determinism contract: a campaign is a pure function of (seed set,
// campaign seed, N). Each mutant's randomness derives from
// splitmix64(campaign seed, mutant index) alone, generation and dedup
// are sequential, and only the checking of already-deduped mutants fans
// out — so reports are byte-identical across -j values.
package mutate

import (
	"fmt"
	"sort"

	"gem/internal/core"
	"gem/internal/logic"
	"gem/internal/spec"
	"gem/internal/thread"
)

// Op identifies a mutation operator.
type Op string

// The mutation operators. The first five mutate the specification IR
// (the paper's restriction language, enable-relation constraints, group
// ports, and thread prerequisite chains); the rest mutate the
// computation (the enable relation and event structure the restrictions
// are checked against).
const (
	OpDropRestriction Op = "drop-restriction"
	OpNegateNode      Op = "negate-node"
	OpWeakenNode      Op = "weaken-node"
	OpWidenPort       Op = "widen-port"
	OpPermutePrereqs  Op = "permute-prereqs"
	OpSwapEnable      Op = "swap-enable"
	OpDropEnable      Op = "drop-enable"
	OpAddEnable       Op = "add-enable"
	OpDropEvent       Op = "drop-event"
	OpPerturbParam    Op = "perturb-param"
)

// AllOps lists every operator in the fixed order the generator draws
// from; the order is part of the determinism contract.
var AllOps = []Op{
	OpDropRestriction, OpNegateNode, OpWeakenNode, OpWidenPort,
	OpPermutePrereqs, OpSwapEnable, OpDropEnable, OpAddEnable,
	OpDropEvent, OpPerturbParam,
}

// Rejected is the typed error for mutants the operator cannot produce:
// the operator is inapplicable to the drawn seed (no thread to permute,
// no parameter to perturb) or the mutated computation is structurally
// invalid (an edge swap introduced a temporal cycle). Rejection is a
// counted, expected outcome — never a panic.
type Rejected struct {
	Op     Op
	Reason string
}

func (e *Rejected) Error() string {
	return fmt.Sprintf("mutate: %s rejected: %s", e.Op, e.Reason)
}

func reject(op Op, format string, args ...any) error {
	return &Rejected{Op: op, Reason: fmt.Sprintf(format, args...)}
}

// Seed is one mutation substrate: a specification plus legal
// computations against it. Operators mutate either side.
type Seed struct {
	Name  string
	Spec  *spec.Spec
	Comps []*core.Computation
}

// Mutant is one generated variant, tagged with its operator and a
// human-readable provenance describing exactly what was changed.
type Mutant struct {
	Index      int
	Seed       string
	Op         Op
	Provenance string
	Spec       *spec.Spec
	Comp       *core.Computation
}

// rng is a splitmix64 generator. Each mutant's stream is keyed by
// (campaign seed, mutant index) alone, so mutant i is the same no
// matter in what order — or on how many workers — the campaign runs.
type rng struct{ state uint64 }

func newRNG(seed int64, index int) *rng {
	r := &rng{state: uint64(seed)*0x9E3779B97F4A7C15 ^ (uint64(index)+1)*0xBF58476D1CE4E5B9}
	r.next()
	r.next()
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 0 {
		panic("mutate: intn on empty domain")
	}
	return int(r.next() % uint64(n))
}

// Generate produces mutant index of the campaign: it draws a seed, a
// base computation, and an operator from the per-index stream and
// applies the operator. The error is always a *Rejected when non-nil.
func Generate(seeds []Seed, campaignSeed int64, index int) (*Mutant, error) {
	if len(seeds) == 0 {
		panic("mutate: no seeds")
	}
	r := newRNG(campaignSeed, index)
	sd := seeds[r.intn(len(seeds))]
	base := sd.Comps[r.intn(len(sd.Comps))]
	op := AllOps[r.intn(len(AllOps))]

	sp := sd.Spec
	ir := irOf(base)
	var prov string
	var err error
	switch op {
	case OpDropRestriction, OpNegateNode, OpWeakenNode:
		sp, prov, err = mutateFormulaSide(sd.Spec, op, r)
	case OpWidenPort:
		sp, prov, err = widenPort(sd.Spec, r)
	case OpPermutePrereqs:
		sp, prov, err = permutePrereqs(sd.Spec, r)
	case OpSwapEnable:
		prov, err = swapEnable(&ir, r)
	case OpDropEnable:
		prov, err = dropEnable(&ir, r)
	case OpAddEnable:
		prov, err = addEnable(&ir, r)
	case OpDropEvent:
		prov, err = dropEvent(&ir, r)
	case OpPerturbParam:
		prov, err = perturbParam(&ir, r)
	default:
		panic("mutate: unknown operator " + string(op))
	}
	if err != nil {
		return nil, err
	}
	comp, berr := ir.build(sp)
	if berr != nil {
		// The mutation produced a structurally invalid computation (a
		// temporal cycle): a typed rejection, never a panic.
		return nil, reject(op, "mutant does not build: %v", berr)
	}
	return &Mutant{
		Index:      index,
		Seed:       sd.Name,
		Op:         op,
		Provenance: prov,
		Spec:       sp,
		Comp:       comp,
	}, nil
}

// ---- specification-side operators ----

// mutateFormulaSide implements drop-restriction, negate-node, and
// weaken-node: pick a restriction slot (in spec.Restrictions order),
// then drop it or rewrite one of its formula nodes.
func mutateFormulaSide(s *spec.Spec, op Op, r *rng) (*spec.Spec, string, error) {
	rs := s.Restrictions()
	if len(rs) == 0 {
		return nil, "", reject(op, "spec declares no restrictions")
	}
	target := r.intn(len(rs))
	owner, name := rs[target].Owner, rs[target].Name
	switch op {
	case OpDropRestriction:
		out := rebuildSpec(s, target, func(spec.Restriction) (spec.Restriction, bool) {
			return spec.Restriction{}, false
		})
		return out, fmt.Sprintf("dropped restriction %q of %s", name, owner), nil
	case OpNegateNode:
		node := r.intn(countNodes(rs[target].F))
		var desc string
		out := rebuildSpec(s, target, func(old spec.Restriction) (spec.Restriction, bool) {
			k := node
			nf := rewriteNth(old.F, &k, func(sub logic.Formula) logic.Formula {
				desc = sub.String()
				return logic.Not{F: sub}
			})
			return spec.Restriction{Name: old.Name, F: nf}, true
		})
		return out, fmt.Sprintf("negated node %d (%s) of restriction %q of %s", node, clip(desc), name, owner), nil
	default: // OpWeakenNode
		node := r.intn(countNodes(rs[target].F))
		var desc string
		out := rebuildSpec(s, target, func(old spec.Restriction) (spec.Restriction, bool) {
			k := node
			nf := rewriteNth(old.F, &k, func(sub logic.Formula) logic.Formula {
				w := weaken(sub, r)
				desc = fmt.Sprintf("%s -> %s", clip(sub.String()), clip(w.String()))
				return w
			})
			return spec.Restriction{Name: old.Name, F: nf}, true
		})
		return out, fmt.Sprintf("weakened node %d (%s) of restriction %q of %s", node, desc, name, owner), nil
	}
}

// widenPort adds an extra port to a group: a member element's event
// class not already designated, chosen deterministically.
func widenPort(s *spec.Spec, r *rng) (*spec.Spec, string, error) {
	type candidate struct {
		group string
		port  core.Port
	}
	var cands []candidate
	for _, gname := range s.GroupNames() {
		g, _ := s.Group(gname)
		declared := make(map[core.Port]bool, len(g.Ports))
		for _, p := range g.Ports {
			declared[p] = true
		}
		for _, m := range g.Members {
			d, ok := s.Element(m)
			if !ok {
				continue // member group: its classes are not portable here
			}
			for _, ec := range d.Events {
				p := core.Port{Element: m, Class: ec.Name}
				if !declared[p] {
					cands = append(cands, candidate{group: gname, port: p})
				}
			}
		}
	}
	if len(cands) == 0 {
		return nil, "", reject(OpWidenPort, "no group has an undesignated member class")
	}
	c := cands[r.intn(len(cands))]
	out := rebuildSpec(s, -1, nil)
	g, _ := out.Group(c.group)
	g.Ports = append(g.Ports, c.port)
	return out, fmt.Sprintf("widened group %s with port %s.%s", c.group, c.port.Element, c.port.Class), nil
}

// permutePrereqs swaps two adjacent steps of a thread type's class
// path — the paper's prerequisite chains are exactly these paths, so the
// swap reorders a prerequisite.
func permutePrereqs(s *spec.Spec, r *rng) (*spec.Spec, string, error) {
	type candidate struct {
		thread int
		step   int
	}
	var cands []candidate
	for ti, tt := range s.Threads() {
		for j := 0; j+1 < len(tt.Path); j++ {
			if tt.Path[j] != tt.Path[j+1] {
				cands = append(cands, candidate{thread: ti, step: j})
			}
		}
	}
	if len(cands) == 0 {
		return nil, "", reject(OpPermutePrereqs, "no thread path has two distinct adjacent steps")
	}
	c := cands[r.intn(len(cands))]
	out := rebuildSpec(s, -1, nil)
	tt := out.Threads()[c.thread]
	path := tt.Path
	prov := fmt.Sprintf("permuted thread %s steps %d,%d (%s <-> %s)",
		tt.Name, c.step, c.step+1, path[c.step], path[c.step+1])
	path[c.step], path[c.step+1] = path[c.step+1], path[c.step]
	return out, prov, nil
}

// rebuildSpec deep-copies a specification, optionally transforming the
// target-th restriction (in spec.Restrictions order; tf returning false
// drops it). target < 0 copies verbatim. The copy owns all its slices,
// so callers may mutate ports and thread paths freely.
func rebuildSpec(s *spec.Spec, target int, tf func(spec.Restriction) (spec.Restriction, bool)) *spec.Spec {
	out := spec.New(s.Name)
	n := 0
	filter := func(rs []spec.Restriction) []spec.Restriction {
		kept := make([]spec.Restriction, 0, len(rs))
		for _, r := range rs {
			if n == target {
				if nr, keep := tf(r); keep {
					kept = append(kept, nr)
				}
			} else {
				kept = append(kept, r)
			}
			n++
		}
		return kept
	}
	// Globals come first in Restrictions order, so the counter must pass
	// them first; they are attached to the copy at the end (AddRestriction
	// appends, preserving order).
	var globals []spec.Restriction
	for _, r := range s.Restrictions() {
		if r.Owner == s.Name {
			globals = append(globals, r.Restriction)
		}
	}
	globals = filter(globals)
	for _, name := range s.ElementNames() {
		d, _ := s.Element(name)
		out.AddElement(&spec.ElementDecl{
			Name:         d.Name,
			TypeName:     d.TypeName,
			Events:       append([]spec.EventClassDecl(nil), d.Events...),
			Restrictions: filter(d.Restrictions),
		})
	}
	for _, name := range s.GroupNames() {
		g, _ := s.Group(name)
		out.AddGroup(&spec.GroupDecl{
			Name:         g.Name,
			TypeName:     g.TypeName,
			Members:      append([]string(nil), g.Members...),
			Ports:        append([]core.Port(nil), g.Ports...),
			Restrictions: filter(g.Restrictions),
		})
	}
	for _, r := range globals {
		out.AddRestriction(r.Name, r.F)
	}
	for _, tt := range s.Threads() {
		out.AddThread(thread.Type{Name: tt.Name, Path: append([]core.ClassRef(nil), tt.Path...)})
	}
	return out
}

// ---- formula node machinery ----

// countNodes counts the formula's nodes in pre-order.
func countNodes(f logic.Formula) int {
	n := 1
	switch g := f.(type) {
	case logic.Not:
		n += countNodes(g.F)
	case logic.And:
		for _, sub := range g {
			n += countNodes(sub)
		}
	case logic.Or:
		for _, sub := range g {
			n += countNodes(sub)
		}
	case logic.Implies:
		n += countNodes(g.If) + countNodes(g.Then)
	case logic.Iff:
		n += countNodes(g.A) + countNodes(g.B)
	case logic.Box:
		n += countNodes(g.F)
	case logic.Diamond:
		n += countNodes(g.F)
	case logic.ForAll:
		n += countNodes(g.Body)
	case logic.Exists:
		n += countNodes(g.Body)
	case logic.ExistsUnique:
		n += countNodes(g.Body)
	case logic.AtMostOne:
		n += countNodes(g.Body)
	case logic.ForAllThread:
		n += countNodes(g.Body)
	case logic.ExistsThread:
		n += countNodes(g.Body)
	case logic.ForAllIn:
		n += countNodes(g.Body)
	case logic.ExistsUniqueIn:
		n += countNodes(g.Body)
	}
	return n
}

// rewriteNth rebuilds the formula with tf applied to its k-th node in
// pre-order. k is decremented in place; on return k < 0 iff the rewrite
// was applied.
func rewriteNth(f logic.Formula, k *int, tf func(logic.Formula) logic.Formula) logic.Formula {
	if *k == 0 {
		*k = -1
		return tf(f)
	}
	if *k < 0 {
		return f
	}
	*k--
	switch g := f.(type) {
	case logic.Not:
		return logic.Not{F: rewriteNth(g.F, k, tf)}
	case logic.And:
		out := make(logic.And, len(g))
		for i, sub := range g {
			out[i] = rewriteNth(sub, k, tf)
		}
		return out
	case logic.Or:
		out := make(logic.Or, len(g))
		for i, sub := range g {
			out[i] = rewriteNth(sub, k, tf)
		}
		return out
	case logic.Implies:
		return logic.Implies{If: rewriteNth(g.If, k, tf), Then: rewriteNth(g.Then, k, tf)}
	case logic.Iff:
		return logic.Iff{A: rewriteNth(g.A, k, tf), B: rewriteNth(g.B, k, tf)}
	case logic.Box:
		return logic.Box{F: rewriteNth(g.F, k, tf)}
	case logic.Diamond:
		return logic.Diamond{F: rewriteNth(g.F, k, tf)}
	case logic.ForAll:
		g.Body = rewriteNth(g.Body, k, tf)
		return g
	case logic.Exists:
		g.Body = rewriteNth(g.Body, k, tf)
		return g
	case logic.ExistsUnique:
		g.Body = rewriteNth(g.Body, k, tf)
		return g
	case logic.AtMostOne:
		g.Body = rewriteNth(g.Body, k, tf)
		return g
	case logic.ForAllThread:
		g.Body = rewriteNth(g.Body, k, tf)
		return g
	case logic.ExistsThread:
		g.Body = rewriteNth(g.Body, k, tf)
		return g
	case logic.ForAllIn:
		g.Body = rewriteNth(g.Body, k, tf)
		return g
	case logic.ExistsUniqueIn:
		g.Body = rewriteNth(g.Body, k, tf)
		return g
	default:
		return f // leaf
	}
}

// weaken rewrites one node into a (usually) less constraining shape:
// temporal operators lose their modality, conjunctions and disjunctions
// lose a member, universals become existentials, negations unwrap, and
// leaves degrade to TRUE. Every result is an exported formula shape, so
// the mutant still renders and re-parses.
func weaken(f logic.Formula, r *rng) logic.Formula {
	switch g := f.(type) {
	case logic.Box:
		return g.F
	case logic.Diamond:
		return g.F
	case logic.Not:
		return g.F
	case logic.And:
		if len(g) >= 2 {
			return dropMember(g, r.intn(len(g)))
		}
		return logic.TrueF{}
	case logic.Or:
		if len(g) >= 2 {
			out := dropMember([]logic.Formula(g), r.intn(len(g)))
			if and, ok := out.(logic.And); ok {
				return logic.Or(and)
			}
			return out
		}
		return logic.TrueF{}
	case logic.ForAll:
		return logic.Exists{Var: g.Var, Ref: g.Ref, Body: g.Body}
	case logic.ForAllThread:
		return logic.ExistsThread{Var: g.Var, Type: g.Type, Body: g.Body}
	case logic.ExistsUnique:
		return logic.Exists{Var: g.Var, Ref: g.Ref, Body: g.Body}
	case logic.AtMostOne:
		return logic.TrueF{}
	case logic.Implies:
		return g.Then
	default:
		return logic.TrueF{}
	}
}

// dropMember removes member i; a singleton result unwraps.
func dropMember(fs []logic.Formula, i int) logic.Formula {
	out := make(logic.And, 0, len(fs)-1)
	out = append(out, fs[:i]...)
	out = append(out, fs[i+1:]...)
	if len(out) == 1 {
		return out[0]
	}
	return out
}

func clip(s string) string {
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

// ---- computation-side operators ----

// compIR is the mutable intermediate form of a computation: events in id
// order plus the direct enable edges. Thread labels are not carried —
// build re-derives them from the (possibly mutated) spec, so event and
// edge mutations relabel consistently.
type compIR struct {
	events []eventIR
	edges  [][2]int
}

type eventIR struct {
	element string
	class   string
	params  core.Params
}

// irOf lifts a computation into the mutable form. Edge order is (source
// id, adjacency order) — deterministic, matching the builder's dedup.
func irOf(c *core.Computation) compIR {
	var ir compIR
	for _, e := range c.Events() {
		ir.events = append(ir.events, eventIR{element: e.Element, class: e.Class, params: e.Params.Clone()})
	}
	for _, e := range c.Events() {
		for _, dst := range c.Enabled(e.ID) {
			ir.edges = append(ir.edges, [2]int{int(e.ID), int(dst)})
		}
	}
	return ir
}

// build assembles the computation and applies the spec's thread types.
func (ir compIR) build(sp *spec.Spec) (*core.Computation, error) {
	b := core.NewBuilder()
	for _, e := range ir.events {
		b.Event(e.element, e.class, e.params)
	}
	for _, ed := range ir.edges {
		b.Enable(core.EventID(ed[0]), core.EventID(ed[1]))
	}
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	thread.Apply(c, sp.Threads()...)
	return c, nil
}

func (ir compIR) edgeName(ed [2]int) string {
	return fmt.Sprintf("%s|>%s", ir.eventName(ed[0]), ir.eventName(ed[1]))
}

func (ir compIR) eventName(i int) string {
	return fmt.Sprintf("%s.%s[%d]", ir.events[i].element, ir.events[i].class, i)
}

func swapEnable(ir *compIR, r *rng) (string, error) {
	if len(ir.edges) < 2 {
		return "", reject(OpSwapEnable, "fewer than two enable edges")
	}
	i := r.intn(len(ir.edges))
	j := r.intn(len(ir.edges) - 1)
	if j >= i {
		j++
	}
	prov := fmt.Sprintf("swapped targets of %s and %s", ir.edgeName(ir.edges[i]), ir.edgeName(ir.edges[j]))
	ir.edges[i][1], ir.edges[j][1] = ir.edges[j][1], ir.edges[i][1]
	if ir.edges[i][0] == ir.edges[i][1] || ir.edges[j][0] == ir.edges[j][1] {
		return "", reject(OpSwapEnable, "swap produced a self-enabling event")
	}
	return prov, nil
}

func dropEnable(ir *compIR, r *rng) (string, error) {
	if len(ir.edges) == 0 {
		return "", reject(OpDropEnable, "no enable edges")
	}
	i := r.intn(len(ir.edges))
	prov := fmt.Sprintf("dropped edge %s", ir.edgeName(ir.edges[i]))
	ir.edges = append(ir.edges[:i], ir.edges[i+1:]...)
	return prov, nil
}

func addEnable(ir *compIR, r *rng) (string, error) {
	present := make(map[[2]int]bool, len(ir.edges))
	for _, ed := range ir.edges {
		present[ed] = true
	}
	var cands [][2]int
	for s := range ir.events {
		for d := range ir.events {
			if s != d && !present[[2]int{s, d}] {
				cands = append(cands, [2]int{s, d})
			}
		}
	}
	if len(cands) == 0 {
		return "", reject(OpAddEnable, "enable relation is complete")
	}
	ed := cands[r.intn(len(cands))]
	ir.edges = append(ir.edges, ed)
	return fmt.Sprintf("added edge %s", ir.edgeName(ed)), nil
}

func dropEvent(ir *compIR, r *rng) (string, error) {
	if len(ir.events) < 2 {
		return "", reject(OpDropEvent, "fewer than two events")
	}
	k := r.intn(len(ir.events))
	prov := fmt.Sprintf("dropped event %s", ir.eventName(k))
	ir.events = append(ir.events[:k], ir.events[k+1:]...)
	kept := ir.edges[:0]
	for _, ed := range ir.edges {
		if ed[0] == k || ed[1] == k {
			continue
		}
		if ed[0] > k {
			ed[0]--
		}
		if ed[1] > k {
			ed[1]--
		}
		kept = append(kept, ed)
	}
	ir.edges = kept
	return prov, nil
}

func perturbParam(ir *compIR, r *rng) (string, error) {
	type slot struct {
		event int
		name  string
	}
	var cands []slot
	for i, e := range ir.events {
		names := make([]string, 0, len(e.params))
		for name, v := range e.params {
			if v.Kind == core.KindInt {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		for _, name := range names {
			cands = append(cands, slot{event: i, name: name})
		}
	}
	if len(cands) == 0 {
		return "", reject(OpPerturbParam, "no integer parameters")
	}
	c := cands[r.intn(len(cands))]
	delta := int64(1 + r.intn(5))
	if r.intn(2) == 0 {
		delta = -delta
	}
	old := ir.events[c.event].params[c.name]
	ir.events[c.event].params[c.name] = core.Int(old.I + delta)
	return fmt.Sprintf("perturbed %s.%s %d -> %d", ir.eventName(c.event), c.name, old.I, old.I+delta), nil
}
