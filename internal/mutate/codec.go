package mutate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"gem/internal/core"
)

// Binary computation codec for corpus entries. Thread labels are
// serialized explicitly (unlike the mutator's compIR, which re-derives
// them from the spec): a replayed corpus entry must reproduce the
// checked computation bit-for-bit, including labels, without re-running
// thread.Apply.

var errBadComp = errors.New("mutate: corrupt computation encoding")

// EncodeComputation serializes a computation for corpus persistence.
func EncodeComputation(c *core.Computation) []byte {
	var out []byte
	str := func(s string) {
		out = binary.AppendUvarint(out, uint64(len(s)))
		out = append(out, s...)
	}
	out = binary.AppendUvarint(out, uint64(c.NumEvents()))
	for _, e := range c.Events() {
		str(e.Element)
		str(e.Class)
		names := make([]string, 0, len(e.Params))
		for name := range e.Params {
			names = append(names, name)
		}
		sort.Strings(names)
		out = binary.AppendUvarint(out, uint64(len(names)))
		for _, name := range names {
			str(name)
			v := e.Params[name]
			out = append(out, byte(v.Kind))
			switch v.Kind {
			case core.KindInt:
				out = binary.AppendVarint(out, v.I)
			case core.KindString:
				str(v.S)
			case core.KindBool:
				if v.B {
					out = append(out, 1)
				} else {
					out = append(out, 0)
				}
			}
		}
		out = binary.AppendUvarint(out, uint64(len(e.Threads)))
		for _, t := range e.Threads {
			str(t)
		}
	}
	edges := 0
	for _, e := range c.Events() {
		edges += len(c.Enabled(e.ID))
	}
	out = binary.AppendUvarint(out, uint64(edges))
	for _, e := range c.Events() {
		for _, dst := range c.Enabled(e.ID) {
			out = binary.AppendUvarint(out, uint64(e.ID))
			out = binary.AppendUvarint(out, uint64(dst))
		}
	}
	return out
}

// DecodeComputation rebuilds a computation from EncodeComputation's
// output. Arbitrary input never panics: malformed bytes return an
// error. Thread labels come from the encoding verbatim.
func DecodeComputation(data []byte) (*core.Computation, error) {
	pos := 0
	uv := func() (uint64, error) {
		v, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return 0, errBadComp
		}
		pos += n
		return v, nil
	}
	str := func() (string, error) {
		n, err := uv()
		if err != nil || uint64(len(data)-pos) < n {
			return "", errBadComp
		}
		s := string(data[pos : pos+int(n)])
		pos += int(n)
		return s, nil
	}
	nEvents, err := uv()
	if err != nil || nEvents > uint64(len(data)) {
		return nil, errBadComp
	}
	b := core.NewBuilder()
	type labels struct {
		id   core.EventID
		tids []string
	}
	var labelled []labels
	for i := uint64(0); i < nEvents; i++ {
		element, err := str()
		if err != nil {
			return nil, err
		}
		class, err := str()
		if err != nil {
			return nil, err
		}
		nParams, err := uv()
		if err != nil || nParams > uint64(len(data)) {
			return nil, errBadComp
		}
		var params core.Params
		if nParams > 0 {
			params = make(core.Params, nParams)
		}
		for j := uint64(0); j < nParams; j++ {
			name, err := str()
			if err != nil {
				return nil, err
			}
			if pos >= len(data) {
				return nil, errBadComp
			}
			kind := core.ValueKind(data[pos])
			pos++
			switch kind {
			case core.KindInt:
				v, n := binary.Varint(data[pos:])
				if n <= 0 {
					return nil, errBadComp
				}
				pos += n
				params[name] = core.Int(v)
			case core.KindString:
				s, err := str()
				if err != nil {
					return nil, err
				}
				params[name] = core.Str(s)
			case core.KindBool:
				if pos >= len(data) {
					return nil, errBadComp
				}
				params[name] = core.Bool(data[pos] == 1)
				pos++
			default:
				return nil, fmt.Errorf("mutate: unknown value kind %d", kind)
			}
		}
		id := b.Event(element, class, params)
		nThreads, err := uv()
		if err != nil || nThreads > uint64(len(data)) {
			return nil, errBadComp
		}
		var tids []string
		for j := uint64(0); j < nThreads; j++ {
			t, err := str()
			if err != nil {
				return nil, err
			}
			tids = append(tids, t)
		}
		if len(tids) > 0 {
			labelled = append(labelled, labels{id: id, tids: tids})
		}
	}
	nEdges, err := uv()
	if err != nil || nEdges > uint64(len(data)) {
		return nil, errBadComp
	}
	for i := uint64(0); i < nEdges; i++ {
		src, err := uv()
		if err != nil {
			return nil, err
		}
		dst, err := uv()
		if err != nil {
			return nil, err
		}
		if src >= nEvents || dst >= nEvents {
			return nil, errBadComp
		}
		b.Enable(core.EventID(src), core.EventID(dst))
	}
	if pos != len(data) {
		return nil, errBadComp
	}
	for _, l := range labelled {
		for _, t := range l.tids {
			b.Thread(l.id, t)
		}
	}
	return b.Build()
}
