package mutate

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"gem/internal/core"
	"gem/internal/gemlang"
	"gem/internal/legal"
	"gem/internal/logic"
	"gem/internal/obs"
	"gem/internal/spec"
	"gem/internal/store"
)

// The campaign driver: generate N mutants deterministically, dedup on
// (spec hash × computation fingerprint), fan the unique mutants across a
// worker pool (the same atomic-claim idiom as legal's parallel
// restriction check) with per-mutant cancellation, check each under all
// three engines, shrink every failure, and persist the shrunk corpus.
//
// Engine agreement is the campaign's verification target: a mutant on
// which auto, lattice, and seq disagree — different legality verdict,
// different blamed restrictions, or a witness that fails Verify — is a
// finding. Mutants that are merely illegal are the expected outcome and
// become corpus entries.

// engines is the verdict matrix every mutant is checked under.
var engines = []logic.Engine{logic.EngineAuto, logic.EngineLattice, logic.EngineSeq}

// Config parameterizes a campaign.
type Config struct {
	Seeds []Seed // defaults to DefaultSeeds()
	N     int    // mutants to generate (default 2000)
	Seed  int64  // campaign seed
	// Parallelism bounds the checking workers (values < 2 run
	// sequentially); generation and reporting are always sequential, so
	// output is identical across values.
	Parallelism int
	Ctx         context.Context    // campaign budget/interrupt (nil = background)
	Cache       logic.VerdictCache // verdict store, may be nil
	Store       *store.Store       // corpus persistence, may be nil
	Name        string             // manifest name (default "gemmut")
}

// EngineVerdict is one engine's view of one mutant.
type EngineVerdict struct {
	Engine string
	Legal  bool
	Blame  []string // sorted "kind:owner/restriction" strings
}

// Finding is a campaign-level verification failure: the engines
// disagreed, a witness failed Verify, or shrinking could not re-validate
// a failure. A campaign of a correct checker reports none.
type Finding struct {
	Index      int
	Seed       string
	Op         Op
	Provenance string
	Kind       string // "engine-disagreement", "bad-witness", "shrink-failure"
	Detail     string
}

// Result is the outcome for one unique mutant.
type Result struct {
	Mutant      *Mutant
	SpecHash    string
	Fingerprint string
	Legal       bool
	Blame       []string // the agreed blame (auto engine's view)
	Shrunk      *ShrinkResult
	CorpusKey   string // set when a shrunk entry was persisted
}

// Report is a completed campaign. Everything here is a deterministic
// function of (seeds, campaign seed, N) — no timing, no store state —
// so Render output is byte-identical across -j values and across
// cold/warm cache runs.
type Report struct {
	Name     string
	Seed     int64
	N        int
	Rejected int
	ByOp     map[Op]int // generated (accepted) mutants per operator
	RejByOp  map[Op]int
	Deduped  int // generated mutants dropped as duplicates
	Unique   int
	Legal    int
	Illegal  int
	Findings []Finding
	Results  []*Result // unique mutants in generation order
}

// Run executes a campaign.
func Run(cfg Config) (*Report, error) {
	if cfg.Seeds == nil {
		seeds, err := DefaultSeeds()
		if err != nil {
			return nil, err
		}
		cfg.Seeds = seeds
	}
	if cfg.N <= 0 {
		cfg.N = 2000
	}
	if cfg.Name == "" {
		cfg.Name = "gemmut"
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	rep := &Report{
		Name:    cfg.Name,
		Seed:    cfg.Seed,
		N:       cfg.N,
		ByOp:    make(map[Op]int),
		RejByOp: make(map[Op]int),
	}

	// Generation + dedup: sequential by construction. Each mutant is a
	// pure function of (campaign seed, index), so this phase is identical
	// no matter how the checking below is scheduled.
	_, genSpan := obs.StartSpan(ctx, "mutate.gen")
	specHashes := make(map[*spec.Spec]string)
	hashOf := func(sp *spec.Spec) string {
		if h, ok := specHashes[sp]; ok {
			return h
		}
		h := gemlang.HashSpec(sp)
		specHashes[sp] = h
		return h
	}
	seen := make(map[string]bool, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if ctx.Err() != nil {
			genSpan.End()
			return rep, ctx.Err()
		}
		m, err := Generate(cfg.Seeds, cfg.Seed, i)
		if err != nil {
			var rej *Rejected
			if !asRejected(err, &rej) {
				genSpan.End()
				return rep, err
			}
			rep.Rejected++
			rep.RejByOp[rej.Op]++
			obs.Count("mutate.reject", 1)
			continue
		}
		obs.Count("mutate.gen", 1)
		rep.ByOp[m.Op]++
		h, fp := hashOf(m.Spec), core.Fingerprint(m.Comp)
		dk := h + "\x00" + fp
		if seen[dk] {
			rep.Deduped++
			obs.Count("mutate.dedup", 1)
			continue
		}
		seen[dk] = true
		rep.Results = append(rep.Results, &Result{Mutant: m, SpecHash: h, Fingerprint: fp})
	}
	genSpan.End()
	rep.Unique = len(rep.Results)

	// Checking + shrinking: workers claim mutants via an atomic counter
	// and write into the indexed results slice, so scheduling never
	// affects the report.
	workers := logic.Workers(cfg.Parallelism, rep.Unique)
	var next atomic.Int64
	var wg sync.WaitGroup
	var findingsMu sync.Mutex
	var findings []Finding
	addFinding := func(f Finding) {
		findingsMu.Lock()
		findings = append(findings, f)
		findingsMu.Unlock()
	}
	work := func() {
		defer wg.Done()
		for {
			if ctx.Err() != nil {
				return
			}
			i := int(next.Add(1) - 1)
			if i >= rep.Unique {
				return
			}
			checkMutant(ctx, cfg, rep.Results[i], addFinding)
		}
	}
	if workers <= 1 {
		wg.Add(1)
		work()
	} else {
		for k := 0; k < workers; k++ {
			wg.Add(1)
			go work()
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	// Findings are collected concurrently; order them by mutant index
	// (then kind) for the deterministic report.
	sort.Slice(findings, func(a, b int) bool {
		if findings[a].Index != findings[b].Index {
			return findings[a].Index < findings[b].Index
		}
		return findings[a].Kind < findings[b].Kind
	})
	rep.Findings = findings
	for _, r := range rep.Results {
		if r.Legal {
			rep.Legal++
		} else {
			rep.Illegal++
		}
	}
	persistCorpus(cfg, rep)
	return rep, nil
}

func asRejected(err error, out **Rejected) bool {
	r, ok := err.(*Rejected)
	if ok {
		*out = r
	}
	return ok
}

// checkMutant runs one mutant through the engine matrix, records the
// agreed verdict, and shrinks failures. Each mutant gets its own
// cancellable context: when the campaign budget expires mid-check, the
// engines' enumerations stop at the next cancellation point.
func checkMutant(ctx context.Context, cfg Config, r *Result, addFinding func(Finding)) {
	m := r.Mutant
	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	_, span := obs.StartSpan(mctx, "mutate.check")
	defer span.End()

	verdicts := make([]EngineVerdict, len(engines))
	results := make([]legal.Result, len(engines))
	for ei, eng := range engines {
		res := legal.Check(m.Spec, m.Comp, legal.Options{
			Check: logic.CheckOptions{
				Engine:      eng,
				Ctx:         mctx,
				Cache:       cfg.Cache,
				Parallelism: 1,
			},
		})
		results[ei] = res
		verdicts[ei] = EngineVerdict{Engine: eng.String(), Legal: res.Legal(), Blame: blame(res)}
		for _, v := range res.Violations {
			if v.Cx != nil {
				if err := v.Cx.Verify(); err != nil {
					addFinding(Finding{
						Index: m.Index, Seed: m.Seed, Op: m.Op, Provenance: m.Provenance,
						Kind:   "bad-witness",
						Detail: fmt.Sprintf("engine %s: witness for %s/%s fails Verify: %v", eng, v.Owner, v.Restriction, err),
					})
				}
			}
		}
	}
	if mctx.Err() != nil {
		return // partial verdicts are never compared
	}
	r.Legal = verdicts[0].Legal
	r.Blame = verdicts[0].Blame
	for _, v := range verdicts[1:] {
		if v.Legal != verdicts[0].Legal || !equalStrings(v.Blame, verdicts[0].Blame) {
			addFinding(Finding{
				Index: m.Index, Seed: m.Seed, Op: m.Op, Provenance: m.Provenance,
				Kind:   "engine-disagreement",
				Detail: disagreementDetail(verdicts),
			})
			break
		}
	}

	// Shrink the first violation of the auto run (declaration order, so
	// the choice is deterministic). On an engine disagreement the auto
	// view may be "legal" — shrink the first engine that saw a failure so
	// the finding still carries a minimized witness.
	target := -1
	for ei := range results {
		if len(results[ei].Violations) > 0 {
			target = ei
			break
		}
	}
	if target < 0 {
		return
	}
	sh, err := Shrink(m.Spec, m.Comp, results[target].Violations[0], logic.CheckOptions{
		Engine: engines[target],
		Ctx:    mctx,
		Cache:  cfg.Cache,
	})
	if err != nil {
		if mctx.Err() != nil {
			return
		}
		addFinding(Finding{
			Index: m.Index, Seed: m.Seed, Op: m.Op, Provenance: m.Provenance,
			Kind:   "shrink-failure",
			Detail: err.Error(),
		})
		return
	}
	r.Shrunk = sh
}

// blame renders a result's violations as the engine-agreement literature
// string: sorted kind:owner/restriction labels. Messages are excluded —
// engines word the same failure differently.
func blame(res legal.Result) []string {
	out := make([]string, 0, len(res.Violations))
	for _, v := range res.Violations {
		out = append(out, fmt.Sprintf("%s:%s/%s", v.Kind, v.Owner, v.Restriction))
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func disagreementDetail(vs []EngineVerdict) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		verdict := "legal"
		if !v.Legal {
			verdict = "illegal[" + joinComma(v.Blame) + "]"
		}
		parts[i] = v.Engine + "=" + verdict
	}
	return joinComma(parts)
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ", "
		}
		out += s
	}
	return out
}

// ---- corpus persistence ----

// CorpusEntry is the persisted form of one shrunk failing mutant.
type CorpusEntry struct {
	Key         string
	Seed        string
	Op          Op
	Provenance  string
	Kind        string
	Owner       string
	Restriction string
	SpecSource  string // gemlang.Format of the mutant spec
	Comp        []byte // EncodeComputation of the shrunk computation
	Events      int
	OrigEvents  int
}

// Manifest indexes a campaign's persisted corpus.
type Manifest struct {
	Name     string
	Seed     int64
	N        int
	Unique   int
	Legal    int
	Illegal  int
	Findings int
	Keys     []string // sorted corpus-entry keys
}

// persistCorpus writes every shrunk failure and the campaign manifest
// through the store's corpus record layer. A nil store is a no-op.
func persistCorpus(cfg Config, rep *Report) {
	if cfg.Store == nil {
		return
	}
	keys := make(map[string]bool)
	for _, r := range rep.Results {
		if r.Shrunk == nil {
			continue
		}
		k := store.CorpusKey(r.SpecHash, core.Fingerprint(r.Shrunk.Comp))
		r.CorpusKey = k
		if keys[k] {
			continue // two mutants shrank to the same witness
		}
		keys[k] = true
		entry := CorpusEntry{
			Key:         k,
			Seed:        r.Mutant.Seed,
			Op:          r.Mutant.Op,
			Provenance:  r.Mutant.Provenance,
			Kind:        r.Shrunk.Kind.String(),
			Owner:       r.Shrunk.Owner,
			Restriction: r.Shrunk.Restriction,
			SpecSource:  gemlang.Format(r.Mutant.Spec),
			Comp:        EncodeComputation(r.Shrunk.Comp),
			Events:      r.Shrunk.Events,
			OrigEvents:  r.Shrunk.OrigEvents,
		}
		if payload, err := json.Marshal(entry); err == nil {
			cfg.Store.PutCorpus(k, payload)
		}
	}
	man := Manifest{
		Name:     rep.Name,
		Seed:     rep.Seed,
		N:        rep.N,
		Unique:   rep.Unique,
		Legal:    rep.Legal,
		Illegal:  rep.Illegal,
		Findings: len(rep.Findings),
	}
	for k := range keys {
		man.Keys = append(man.Keys, k)
	}
	sort.Strings(man.Keys)
	if payload, err := json.Marshal(man); err == nil {
		cfg.Store.PutManifest(rep.Name, payload)
	}
}

// Replay loads the named campaign's corpus from the store and re-checks
// every entry: the decoded computation must still be illegal under all
// three engines, with the persisted (owner, restriction) among the
// blamed set for restriction entries. It returns the number of entries
// replayed; any divergence is an error — the corpus is a regression
// suite for engine agreement.
func Replay(st *store.Store, name string, cache logic.VerdictCache) (int, error) {
	payload, ok := st.GetManifest(name)
	if !ok {
		return 0, fmt.Errorf("mutate: no manifest %q in store", name)
	}
	var man Manifest
	if err := json.Unmarshal(payload, &man); err != nil {
		return 0, fmt.Errorf("mutate: corrupt manifest %q: %w", name, err)
	}
	for _, k := range man.Keys {
		data, ok := st.GetCorpus(k)
		if !ok {
			return 0, fmt.Errorf("mutate: corpus entry %s missing", k)
		}
		var entry CorpusEntry
		if err := json.Unmarshal(data, &entry); err != nil {
			return 0, fmt.Errorf("mutate: corpus entry %s corrupt: %w", k, err)
		}
		sp, err := gemlang.Parse(entry.SpecSource)
		if err != nil {
			return 0, fmt.Errorf("mutate: corpus entry %s spec does not parse: %w", k, err)
		}
		c, err := DecodeComputation(entry.Comp)
		if err != nil {
			return 0, fmt.Errorf("mutate: corpus entry %s: %w", k, err)
		}
		want := ""
		if entry.Kind == legal.RestrictionViolation.String() {
			want = fmt.Sprintf("%s:%s/%s", entry.Kind, entry.Owner, entry.Restriction)
		}
		for _, eng := range engines {
			res := legal.Check(sp, c, legal.Options{
				Check: logic.CheckOptions{Engine: eng, Cache: cache, Parallelism: 1},
			})
			if res.Legal() {
				return 0, fmt.Errorf("mutate: corpus entry %s (op %s) is legal under engine %s", k, entry.Op, eng)
			}
			if want != "" && !containsString(blame(res), want) {
				return 0, fmt.Errorf("mutate: corpus entry %s: engine %s blames %v, want %s", k, eng, blame(res), want)
			}
		}
	}
	return len(man.Keys), nil
}

func containsString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// Render writes the deterministic campaign report: summary, per-operator
// table, findings, and the shrunk corpus. No timing, no store-traffic
// numbers — those go to the obs stats on stderr — so the bytes are
// identical across parallelism levels and cache temperatures.
func (rep *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "campaign %s: seed=%d n=%d unique=%d rejected=%d deduped=%d\n",
		rep.Name, rep.Seed, rep.N, rep.Unique, rep.Rejected, rep.Deduped)
	fmt.Fprintf(w, "verdicts: legal=%d illegal=%d findings=%d\n", rep.Legal, rep.Illegal, len(rep.Findings))
	fmt.Fprintln(w, "operators:")
	for _, op := range AllOps {
		if rep.ByOp[op] == 0 && rep.RejByOp[op] == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-18s generated=%-5d rejected=%d\n", op, rep.ByOp[op], rep.RejByOp[op])
	}
	shrunk := 0
	for _, r := range rep.Results {
		if r.Shrunk != nil {
			shrunk++
		}
	}
	fmt.Fprintf(w, "corpus: %d shrunk witnesses\n", shrunk)
	if len(rep.Findings) == 0 {
		fmt.Fprintln(w, "findings: none (engines agree on every mutant)")
	} else {
		fmt.Fprintln(w, "findings:")
		for _, f := range rep.Findings {
			fmt.Fprintf(w, "  mutant %d [%s on %s] %s: %s\n    %s\n", f.Index, f.Op, f.Seed, f.Kind, f.Provenance, f.Detail)
		}
	}
}

// RenderVerbose appends the per-mutant shrink table to Render's output.
func (rep *Report) RenderVerbose(w io.Writer) {
	rep.Render(w)
	fmt.Fprintln(w, "shrunk failures:")
	for _, r := range rep.Results {
		if r.Shrunk == nil {
			continue
		}
		m := r.Mutant
		fmt.Fprintf(w, "  mutant %d [%s on %s] %s: %d -> %d events (%s %s/%s)\n",
			m.Index, m.Op, m.Seed, m.Provenance,
			r.Shrunk.OrigEvents, r.Shrunk.Events, r.Shrunk.Kind, r.Shrunk.Owner, r.Shrunk.Restriction)
	}
}
