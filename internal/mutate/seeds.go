package mutate

import (
	"fmt"

	"gem/internal/core"
	"gem/internal/gemlang"
	"gem/internal/problems/rw"
	"gem/internal/spec"
	"gem/internal/thread"
)

// Campaign seeds. Mutation needs small, legal substrates: the paper's
// Section 8 Readers/Writers problem (thread quantifiers, temporal □,
// value flow) and a compact bounded-buffer variant (COUNT and FIFO
// counting restrictions). Both computations are built fully or mostly
// serialized — the serializing cross edges keep the history lattice
// small, so a mutant checks in microseconds and a campaign of thousands
// stays fast.

// toySource is the bounded-buffer seed spec (capacity 1, one producer,
// one consumer), exercising the restriction shapes the rw problem does
// not: COUNT, FIFO, and the □-wrapped counting invariant.
const toySource = `
SPEC Toy

ELEMENT buffer
  EVENTS
    Deposit(item: VALUE)
    Fetch(item: VALUE)
END

ELEMENT prod
  EVENTS
    Produce(item: VALUE)
END

ELEMENT cons
  EVENTS
    Consume(item: VALUE)
END

GROUP buf MEMBERS(buffer)
  PORTS(buffer.Deposit, buffer.Fetch)
END

THREAD piDep = (Produce :: buffer.Deposit)

THREAD piFet = (buffer.Fetch :: Consume)

RESTRICTION "produce-value":
  ((FORALL p: prod.Produce) ((FORALL d: buffer.Deposit) (p |> d -> p.item = d.item))) ;

RESTRICTION "fetch-value":
  ((FORALL f: buffer.Fetch) ((FORALL c: cons.Consume) (f |> c -> f.item = c.item))) ;

RESTRICTION "capacity":
  [] (COUNT(buffer.Deposit - buffer.Fetch IN 0 .. 1)) ;

RESTRICTION "fifo":
  FIFO(buffer.Deposit.item -> buffer.Fetch.item) ;
`

// DefaultSeeds builds the standard campaign seed set.
func DefaultSeeds() ([]Seed, error) {
	rwSpec, err := rw.ProblemSpec([]string{"u1"}, false)
	if err != nil {
		return nil, err
	}
	read1, err := rwRead(rwSpec)
	if err != nil {
		return nil, err
	}
	serial, err := rwReadThenWrite(rwSpec)
	if err != nil {
		return nil, err
	}
	partial, err := rwWriteThenRead(rwSpec)
	if err != nil {
		return nil, err
	}
	toySpec, err := gemlang.Parse(toySource)
	if err != nil {
		return nil, fmt.Errorf("mutate: toy seed spec does not parse: %w", err)
	}
	if err := toySpec.Validate(); err != nil {
		return nil, fmt.Errorf("mutate: toy seed spec invalid: %w", err)
	}
	toy1, err := toyComp(toySpec, 1)
	if err != nil {
		return nil, err
	}
	toy2, err := toyComp(toySpec, 2)
	if err != nil {
		return nil, err
	}
	return []Seed{
		{Name: "rw", Spec: rwSpec, Comps: []*core.Computation{read1, serial, partial}},
		{Name: "toy", Spec: toySpec, Comps: []*core.Computation{toy1, toy2}},
	}, nil
}

// readChain appends u1's six-event read transaction observing value v.
func readChain(b *core.Builder, v int64) (first, end, last core.EventID) {
	r := b.Event("u1", "Read", nil)
	rq := b.Event("db.control", "ReqRead", nil)
	st := b.Event("db.control", "StartRead", nil)
	gv := b.Event("db.data", "Getval", core.Params{"oldval": core.Int(v)})
	en := b.Event("db.control", "EndRead", core.Params{"info": core.Int(v)})
	fi := b.Event("u1", "FinishRead", core.Params{"info": core.Int(v)})
	link(b, r, rq, st, gv, en, fi)
	return r, en, fi
}

// writeChain appends u1's six-event write transaction assigning v.
func writeChain(b *core.Builder, v int64) (first, end, last core.EventID) {
	w := b.Event("u1", "Write", core.Params{"info": core.Int(v)})
	rq := b.Event("db.control", "ReqWrite", core.Params{"info": core.Int(v)})
	st := b.Event("db.control", "StartWrite", core.Params{"info": core.Int(v)})
	as := b.Event("db.data", "Assign", core.Params{"newval": core.Int(v)})
	en := b.Event("db.control", "EndWrite", nil)
	fi := b.Event("u1", "FinishWrite", nil)
	link(b, w, rq, st, as, en, fi)
	return w, en, fi
}

func link(b *core.Builder, ids ...core.EventID) {
	for i := 1; i < len(ids); i++ {
		b.Enable(ids[i-1], ids[i])
	}
}

func finish(b *core.Builder, sp *spec.Spec) (*core.Computation, error) {
	c, err := b.Build()
	if err != nil {
		return nil, err
	}
	thread.Apply(c, sp.Threads()...)
	return c, nil
}

// rwRead is one read transaction — a 6-event chain, 7 histories.
func rwRead(sp *spec.Spec) (*core.Computation, error) {
	b := core.NewBuilder()
	readChain(b, 0)
	return finish(b, sp)
}

// rwReadThenWrite serializes a read before a write: the read's finish
// enables the write's first event, so the 12 events form one chain.
func rwReadThenWrite(sp *spec.Spec) (*core.Computation, error) {
	b := core.NewBuilder()
	_, _, fi := readChain(b, 0)
	w, _, _ := writeChain(b, 7)
	b.Enable(fi, w)
	return finish(b, sp)
}

// rwWriteThenRead serializes only at the control element: the write's
// EndWrite enables the read's StartRead, so the read's request runs
// concurrently with the write — a small but non-linear history lattice.
func rwWriteThenRead(sp *spec.Spec) (*core.Computation, error) {
	b := core.NewBuilder()
	_, en, _ := writeChain(b, 7)
	r := b.Event("u1", "Read", nil)
	rq := b.Event("db.control", "ReqRead", nil)
	st := b.Event("db.control", "StartRead", nil)
	gv := b.Event("db.data", "Getval", core.Params{"oldval": core.Int(7)})
	en2 := b.Event("db.control", "EndRead", core.Params{"info": core.Int(7)})
	fi2 := b.Event("u1", "FinishRead", core.Params{"info": core.Int(7)})
	link(b, r, rq, st, gv, en2, fi2)
	b.Enable(en, st)
	return finish(b, sp)
}

// toyComp runs n produce/deposit/fetch/consume rounds; round k+1's
// deposit waits for round k's fetch (the capacity-1 discipline).
func toyComp(sp *spec.Spec, n int) (*core.Computation, error) {
	b := core.NewBuilder()
	var prevFetch core.EventID = -1
	for i := 0; i < n; i++ {
		item := core.Int(int64(i + 1))
		p := b.Event("prod", "Produce", core.Params{"item": item})
		d := b.Event("buffer", "Deposit", core.Params{"item": item})
		f := b.Event("buffer", "Fetch", core.Params{"item": item})
		c := b.Event("cons", "Consume", core.Params{"item": item})
		link(b, p, d, f, c)
		if prevFetch >= 0 {
			b.Enable(prevFetch, d)
		}
		prevFetch = f
	}
	return finish(b, sp)
}
