package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Record framing: every file in the store is one record —
//
//	"GEMS" | format version byte | kind byte | uvarint payload length |
//	payload | crc32c (4 bytes, little-endian, over everything before it)
//
// The checksum plus the strict length accounting make every truncation,
// bit flip, or version skew an explicit decode error; the store maps
// those to cache misses. Record kinds are append-only.
const (
	recordMagic   = "GEMS"
	recordVersion = 1
)

// The record kinds.
const (
	kindVerdict byte = 1 + iota
	kindGuards
	kindLattice
	kindSat
	kindCorpus
	kindManifest
)

var (
	errCorrupt = errors.New("store: corrupt record")
	crcTable   = crc32.MakeTable(crc32.Castagnoli)
)

// encodeRecord frames a payload.
func encodeRecord(kind byte, payload []byte) []byte {
	out := make([]byte, 0, len(recordMagic)+2+binary.MaxVarintLen64+len(payload)+4)
	out = append(out, recordMagic...)
	out = append(out, recordVersion, kind)
	out = binary.AppendUvarint(out, uint64(len(payload)))
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.Checksum(out, crcTable))
}

// decodeRecord parses a framed record, returning its kind and payload.
// Arbitrary input never panics: every malformed shape — short header,
// wrong magic, unknown version, bad length, trailing bytes, checksum
// mismatch — returns an error, which the store treats as a miss.
func decodeRecord(data []byte) (kind byte, payload []byte, err error) {
	if len(data) < len(recordMagic)+2+1+4 || string(data[:len(recordMagic)]) != recordMagic {
		return 0, nil, errCorrupt
	}
	if data[len(recordMagic)] != recordVersion {
		return 0, nil, fmt.Errorf("store: record version %d, want %d", data[len(recordMagic)], recordVersion)
	}
	kind = data[len(recordMagic)+1]
	rest := data[len(recordMagic)+2 : len(data)-4]
	plen, n := binary.Uvarint(rest)
	if n <= 0 || plen != uint64(len(rest)-n) {
		return 0, nil, errCorrupt
	}
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(data[:len(data)-4], crcTable) != sum {
		return 0, nil, errCorrupt
	}
	return kind, rest[n:], nil
}
