package store

import (
	"math/rand"
	"testing"

	"gem/internal/core"
	"gem/internal/history"
	"gem/internal/logic"
)

// FuzzDecodeRecord pins the store's robustness contract: arbitrary bytes
// fed to the record decoders never panic and always degrade to a miss
// (an error or a rejected payload), across every decoding layer — the
// record framing, the verdict payload, the guard payload, and the
// lattice artifact.
func FuzzDecodeRecord(f *testing.F) {
	comp := randComp(rand.New(rand.NewSource(42)), 5)
	formula := logic.And{
		logic.Box{F: logic.ForAll{Var: "e", Ref: core.Ref("", "X"), Body: logic.Occurred{Var: "e"}}},
		logic.FalseF{},
	}
	// Seeds: valid records of every kind, plus classic mutations.
	cx := logic.Holds(formula, comp, logic.CheckOptions{})
	verdict := encodeRecord(kindVerdict, encodeVerdict(cx))
	f.Add(verdict)
	f.Add(verdict[:len(verdict)/2])
	f.Add(encodeRecord(kindVerdict, encodeVerdict(nil)))
	f.Add(encodeRecord(kindGuards, encodeGuards([]bool{true, false, true})))
	f.Add(encodeRecord(kindSat, []byte{1}))
	lat := history.Shared(comp)
	lat.Histories()
	f.Add(encodeRecord(kindLattice, lat.Encode()))
	f.Add([]byte{})
	f.Add([]byte("GEMS"))

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := decodeRecord(data)
		if err != nil {
			return // a miss, exactly as required
		}
		// A structurally valid frame: every payload decoder must still
		// either reject it or return something internally consistent —
		// and must never panic.
		switch kind {
		case kindVerdict:
			cx, err := decodeVerdict(payload, formula, comp)
			if err == nil && cx != nil {
				// Whatever decoded must be a well-formed witness shape.
				if cx.Comp != comp || cx.History.Computation() != comp {
					t.Fatal("decoded verdict not bound to the live computation")
				}
			}
		case kindGuards:
			if hold, err := decodeGuards(payload); err == nil && hold != nil && len(hold) == 0 {
				t.Fatal("decodeGuards returned a non-nil empty vector")
			}
		case kindLattice:
			fresh := randComp(rand.New(rand.NewSource(42)), 5)
			_ = history.Shared(fresh).Hydrate(payload)
		default:
			// Unknown kinds are fine at the framing layer; the store's
			// read() rejects them by kind mismatch.
		}
	})
}
