// Package store implements the persistent, content-addressed result
// cache behind incremental checking: an on-disk map from (canonical spec
// hash × computation fingerprint × engine × versions) to restriction
// verdict records, fast-path guard vectors, whole-check sat records, and
// serialized history-lattice artifacts. Keys are content hashes of
// canonical forms (gemlang.HashFormula/HashSpec, core.Fingerprint), so
// invalidation is automatic and restriction-granular: editing one
// restriction of a spec changes only that restriction's formula hash,
// and every other restriction keeps hitting.
//
// The Store satisfies logic.VerdictCache, legal.GuardCache, and
// verify.SatCache structurally — those packages define the interfaces,
// this package implements them without importing them, so the engine
// layers stay store-free.
//
// Robustness rules: corrupt, truncated, or version-skewed records decode
// to a miss, never a wrong verdict (every record carries a magic,
// version, length, and checksum; every payload is validated against the
// live computation before use); concurrent writers stay safe via
// temp-file + atomic rename; all methods are nil-receiver-safe so a
// disabled cache can flow through call chains as a typed nil.
package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"gem/internal/obs"
)

// EngineVersion names the semantic version of the checking engines baked
// into every verdict and sat key. Bump it whenever an engine's verdict
// or witness semantics change: old records become unreachable (different
// keys) instead of serving stale verdicts.
const EngineVersion = 1

// layoutDir is the directory-layout version; records live under
// <dir>/v1/<first two hex of key>/<key>-<kind>.
const layoutDir = "v1"

// Mode selects how the store participates in a run.
type Mode int

// The cache modes of the -cache flag.
const (
	// Off disables the store entirely.
	Off Mode = iota
	// ReadOnly serves hits but never writes (useful for hermetic runs
	// against a pre-built cache).
	ReadOnly
	// ReadWrite serves hits and writes behind on misses — the default.
	ReadWrite
)

// ParseMode parses a -cache flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return Off, nil
	case "ro":
		return ReadOnly, nil
	case "rw":
		return ReadWrite, nil
	default:
		return Off, fmt.Errorf("store: unknown cache mode %q (want off, ro or rw)", s)
	}
}

func (m Mode) String() string {
	switch m {
	case ReadOnly:
		return "ro"
	case ReadWrite:
		return "rw"
	default:
		return "off"
	}
}

// Stats counts this process's store traffic; the same numbers feed the
// obs counters (store.hit/store.miss/store.write/store.evict) when the
// collector is enabled, but Stats works regardless so tests and embedders
// need not enable tracing.
type Stats struct {
	Hits, Misses, Writes, Evictions int64
}

// Store is a handle on one on-disk cache directory. Methods are safe for
// concurrent use and for nil receivers (every operation on a nil or Off
// store is a miss or a no-op).
type Store struct {
	dir  string
	mode Mode

	hits, misses, writes, evicts atomic.Int64
}

// DefaultDir returns the cache directory used when -cache-dir is not
// given: $GEM_CACHE_DIR if set, else <os.UserCacheDir>/gem.
func DefaultDir() (string, error) {
	if d := os.Getenv("GEM_CACHE_DIR"); d != "" {
		return d, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("store: no user cache dir (set GEM_CACHE_DIR or -cache-dir): %w", err)
	}
	return filepath.Join(base, "gem"), nil
}

// Open returns a store rooted at dir. Off mode returns (nil, nil): a nil
// *Store is a valid, always-missing store, so callers can thread it
// unconditionally. ReadWrite creates the directory; ReadOnly does not
// (a missing directory just misses on every lookup).
func Open(dir string, mode Mode) (*Store, error) {
	if mode == Off {
		return nil, nil
	}
	if mode == ReadWrite {
		if err := os.MkdirAll(filepath.Join(dir, layoutDir), 0o777); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &Store{dir: dir, mode: mode}, nil
}

// Stats returns a snapshot of this handle's traffic counters.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Writes:    s.writes.Load(),
		Evictions: s.evicts.Load(),
	}
}

// Dir returns the store's root directory ("" for a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

func (s *Store) path(key string, kind byte) string {
	return filepath.Join(s.dir, layoutDir, key[:2], fmt.Sprintf("%s-%d", key, kind))
}

// touchInterval throttles read-hit mtime refreshes: a record's mtime is
// only bumped when it is at least this stale, so a hot record costs one
// utimes per hour instead of one per read.
const touchInterval = time.Hour

// read fetches and unframes the record for key/kind. Any failure —
// missing file, corrupt or truncated record, kind mismatch — is reported
// as a miss; the caller is responsible for hit/miss accounting (a read
// that succeeds here can still become a miss if the payload fails
// semantic validation upstream).
//
// Trim evicts by mtime, so a successful read refreshes the record's
// mtime (throttled to touchInterval): without the touch, the hottest
// records — oldest-written, most-read — are exactly the ones a
// sustained campaign's Trim evicts first.
func (s *Store) read(key string, kind byte) ([]byte, bool) {
	if s == nil || s.mode == Off {
		return nil, false
	}
	path := s.path(key, kind)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	k, payload, err := decodeRecord(data)
	if err != nil || k != kind {
		return nil, false
	}
	if s.mode == ReadWrite {
		if info, err := os.Stat(path); err == nil {
			if now := time.Now(); now.Sub(info.ModTime()) >= touchInterval {
				_ = os.Chtimes(path, now, now) // best-effort: a failed touch is still a hit
			}
		}
	}
	return payload, true
}

// write frames and persists a record via temp-file + atomic rename, so
// concurrent writers (and a reader racing a writer) only ever observe
// complete records. Errors are swallowed: the store is an accelerator,
// never a source of run failures.
func (s *Store) write(key string, kind byte, payload []byte) {
	if s == nil || s.mode != ReadWrite {
		return
	}
	bucket := filepath.Join(s.dir, layoutDir, key[:2])
	if err := os.MkdirAll(bucket, 0o777); err != nil {
		return
	}
	tmp, err := os.CreateTemp(bucket, "tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(encodeRecord(kind, payload))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(key, kind)); err != nil {
		os.Remove(tmp.Name())
		return
	}
	s.writes.Add(1)
	obs.Count("store.write", 1)
}

func (s *Store) hit() {
	s.hits.Add(1)
	obs.Count("store.hit", 1)
}

func (s *Store) miss() {
	if s == nil {
		return
	}
	s.misses.Add(1)
	obs.Count("store.miss", 1)
}

// Trim evicts least-recently-modified records until the store fits in
// budget bytes (0 uses DefaultBudget). CLI runs call it once per rw
// open, so the cache is bounded without a daemon. Eviction order is
// mtime, oldest first; errors are ignored (a half-trimmed cache is still
// a correct cache).
func (s *Store) Trim(budget int64) {
	if s == nil || s.mode != ReadWrite {
		return
	}
	if budget <= 0 {
		budget = DefaultBudget
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var entries []entry
	var total int64
	root := filepath.Join(s.dir, layoutDir)
	_ = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		entries = append(entries, entry{path: path, size: info.Size(), mtime: info.ModTime()})
		total += info.Size()
		return nil
	})
	if total <= budget {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mtime.Before(entries[j].mtime) })
	for _, e := range entries {
		if total <= budget {
			break
		}
		if os.Remove(e.path) == nil {
			total -= e.size
			s.evicts.Add(1)
			obs.Count("store.evict", 1)
		}
	}
}

// DefaultBudget bounds the cache size Trim enforces by default (1 GiB,
// overridable per call and via GEM_CACHE_BUDGET in the CLIs).
const DefaultBudget int64 = 1 << 30

// EnvBudget returns the Trim budget configured via GEM_CACHE_BUDGET (in
// bytes), or 0 — meaning DefaultBudget — when unset. A malformed or
// non-positive value also falls back to 0, but emits a one-line warning
// on warn (nil suppresses it): a misconfigured budget must not look
// identical to an unset one.
func EnvBudget(warn io.Writer) int64 {
	raw := os.Getenv("GEM_CACHE_BUDGET")
	if raw == "" {
		return 0
	}
	n, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || n <= 0 {
		if warn != nil {
			fmt.Fprintf(warn, "store: ignoring GEM_CACHE_BUDGET=%q (want a positive byte count), using default %d\n", raw, DefaultBudget)
		}
		return 0
	}
	return n
}

// OpenFromFlags implements the -cache/-cache-dir flag pair shared by
// gemcheck and gemverify: parse the mode, resolve the directory (the
// flag value, else DefaultDir), open, and Trim a read-write store to the
// EnvBudget. An unknown mode is an error — that's a flag typo. An
// unusable cache directory is not: the store is an accelerator, never a
// prerequisite, so the run degrades to uncached with a warning on warn.
func OpenFromFlags(modeStr, dir string, warn io.Writer) (*Store, error) {
	mode, err := ParseMode(modeStr)
	if err != nil {
		return nil, err
	}
	if mode == Off {
		return nil, nil
	}
	if dir == "" {
		dir, err = DefaultDir()
		if err != nil {
			fmt.Fprintln(warn, "cache disabled:", err)
			return nil, nil
		}
	}
	st, err := Open(dir, mode)
	if err != nil {
		fmt.Fprintln(warn, "cache disabled:", err)
		return nil, nil
	}
	st.Trim(EnvBudget(warn))
	return st, nil
}
