package store

// The mutation-corpus record layer: campaign manifests and shrunk
// counterexamples persisted by cmd/gemmut so the engine-agreement suite
// can replay a campaign's corpus without regenerating it. Payloads are
// opaque to the store (internal/mutate owns the codec); the store
// contributes addressing, framing, integrity checking, and hit/miss
// accounting, exactly as for verdict records.

// CorpusKey derives the record key for one shrunk corpus entry from the
// mutant spec's canonical hash and the shrunk computation's fingerprint —
// the same (HashSpec × Fingerprint) identity the campaign dedups on.
func CorpusKey(specHash, fingerprint string) string {
	return key("corpus", engineVersionStr, specHash, fingerprint)
}

// GetCorpus fetches a corpus entry previously persisted under
// CorpusKey. A missing or corrupt record is a miss.
func (s *Store) GetCorpus(corpusKey string) ([]byte, bool) {
	if s == nil || s.mode == Off {
		return nil, false
	}
	payload, ok := s.read(corpusKey, kindCorpus)
	if !ok {
		s.miss()
		return nil, false
	}
	s.hit()
	return payload, true
}

// PutCorpus persists one corpus entry under CorpusKey.
func (s *Store) PutCorpus(corpusKey string, payload []byte) {
	s.write(corpusKey, kindCorpus, payload)
}

// manifestKey addresses a campaign manifest by its campaign name.
func manifestKey(name string) string {
	return key("manifest", engineVersionStr, name)
}

// GetManifest fetches the manifest persisted for the named campaign.
func (s *Store) GetManifest(name string) ([]byte, bool) {
	if s == nil || s.mode == Off {
		return nil, false
	}
	payload, ok := s.read(manifestKey(name), kindManifest)
	if !ok {
		s.miss()
		return nil, false
	}
	s.hit()
	return payload, true
}

// PutManifest persists the manifest for the named campaign, replacing
// any previous one (a campaign name is a mutable head pointing into the
// content-addressed corpus entries).
func (s *Store) PutManifest(name string, payload []byte) {
	s.write(manifestKey(name), kindManifest, payload)
}
