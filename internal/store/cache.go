package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"sync"

	"gem/internal/core"
	"gem/internal/gemlang"
	"gem/internal/history"
	"gem/internal/logic"
	"gem/internal/obs"
	"gem/internal/order"
	"gem/internal/spec"
)

// specHashes memoizes gemlang.HashSpec per live spec pointer: whole-spec
// hashes key sat and guard records and are requested once per checked
// computation, but a spec's canonical rendering never changes.
var specHashes sync.Map // *spec.Spec → string

func hashSpec(sp *spec.Spec) string {
	if h, ok := specHashes.Load(sp); ok {
		return h.(string)
	}
	h := gemlang.HashSpec(sp)
	specHashes.Store(sp, h)
	return h
}

// key derives a record key: the hex SHA-256 of the NUL-joined parts.
// Every key embeds a record-type tag and the relevant format/engine
// versions, so version bumps make old records unreachable rather than
// mis-read.
func key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))
}

var engineVersionStr = strconv.Itoa(EngineVersion)

func verdictKey(f logic.Formula, c *core.Computation, engine logic.Engine) string {
	return key("verdict", engineVersionStr, engine.String(), gemlang.HashFormula(f), core.Fingerprint(c))
}

func satKey(problem *spec.Spec, c *core.Computation, corrKey string, engine logic.Engine) string {
	return key("sat", engineVersionStr, engine.String(), hashSpec(problem), corrKey, core.Fingerprint(c))
}

func guardsKey(sp *spec.Spec, c *core.Computation) string {
	return key("guards", engineVersionStr, hashSpec(sp), core.Fingerprint(c))
}

func latticeKey(fp string) string {
	return key("lattice", strconv.Itoa(history.LatticeFormatVersion), fp)
}

// Lookup implements logic.VerdictCache: it serves a previously persisted
// restriction verdict for (f, c, engine), rehydrating the failing
// witness against the live computation. Any decode or validation failure
// is a miss. On a miss it also probes the lattice artifact once per
// computation, so the evaluation about to run starts from the persisted
// history enumeration instead of rebuilding it.
func (s *Store) Lookup(f logic.Formula, c *core.Computation, engine logic.Engine) (*logic.Counterexample, bool) {
	if s == nil || s.mode == Off {
		return nil, false
	}
	_, sp := obs.StartSpan(nil, "store.lookup")
	defer sp.End()
	if payload, ok := s.read(verdictKey(f, c, engine), kindVerdict); ok {
		if cx, err := decodeVerdict(payload, f, c); err == nil {
			s.hit()
			return cx, true
		}
	}
	s.miss()
	s.hydrateLattice(c)
	return nil, false
}

// Store implements logic.VerdictCache's write-behind: it persists the
// verdict just computed for (f, c, engine), and piggybacks the lattice
// artifact if this computation's lattice was enumerated during the
// evaluation.
func (s *Store) Store(f logic.Formula, c *core.Computation, engine logic.Engine, cx *logic.Counterexample) {
	if s == nil || s.mode != ReadWrite {
		return
	}
	s.write(verdictKey(f, c, engine), kindVerdict, encodeVerdict(cx))
	s.persistLattice(c)
}

// LookupGuards implements legal.GuardCache.
func (s *Store) LookupGuards(sp *spec.Spec, c *core.Computation) ([]bool, bool) {
	if s == nil || s.mode == Off {
		return nil, false
	}
	payload, ok := s.read(guardsKey(sp, c), kindGuards)
	if !ok {
		s.miss()
		return nil, false
	}
	hold, err := decodeGuards(payload)
	if err != nil {
		s.miss()
		return nil, false
	}
	s.hit()
	return hold, true
}

// StoreGuards implements legal.GuardCache.
func (s *Store) StoreGuards(sp *spec.Spec, c *core.Computation, hold []bool) {
	if s == nil || s.mode != ReadWrite {
		return
	}
	s.write(guardsKey(sp, c), kindGuards, encodeGuards(hold))
}

// LookupSat implements verify.SatCache: a hit means a prior complete,
// uncancelled run proved this exact (problem, correspondence, program
// computation, engine) combination sat. This is the warm fast path — it
// skips projection, thread labelling, and the whole legality check.
func (s *Store) LookupSat(problem *spec.Spec, c *core.Computation, corrKey string, engine logic.Engine) bool {
	if s == nil || s.mode == Off {
		return false
	}
	_, sp := obs.StartSpan(nil, "store.sat")
	defer sp.End()
	payload, ok := s.read(satKey(problem, c, corrKey, engine), kindSat)
	if !ok || len(payload) != 1 || payload[0] != 1 {
		s.miss()
		return false
	}
	s.hit()
	return true
}

// StoreSat implements verify.SatCache. Only sat — failures are never
// recorded, so refutations recompute and keep their counterexamples.
func (s *Store) StoreSat(problem *spec.Spec, c *core.Computation, corrKey string, engine logic.Engine) {
	if s == nil || s.mode != ReadWrite {
		return
	}
	s.write(satKey(problem, c, corrKey, engine), kindSat, []byte{1})
}

// latticeState tracks, per computation, whether the lattice artifact was
// already probed and whether the on-disk copy is current. It lives in
// the computation's Derived cache, but is created OUTSIDE the calls that
// use it — Derived holds the computation mutex during build, so the
// probe I/O and Hydrate run strictly after the tiny allocation below.
type latticeState struct {
	probed    sync.Once
	persisted bool // guarded by probed/once semantics + persistMu
	persistMu sync.Mutex
}

func latState(c *core.Computation) *latticeState {
	return c.Derived("store.lattice", func() any { return new(latticeState) }).(*latticeState)
}

// hydrateLattice seeds the computation's shared history lattice from the
// persisted artifact, at most once per computation per process. Called
// on the verdict-miss path, before the engines enumerate.
func (s *Store) hydrateLattice(c *core.Computation) {
	st := latState(c)
	lat := history.Shared(c)
	fp := core.Fingerprint(c)
	st.probed.Do(func() {
		if lat.Enumerated() {
			return
		}
		payload, ok := s.read(latticeKey(fp), kindLattice)
		if !ok {
			s.miss()
			return
		}
		if err := lat.Hydrate(payload); err != nil {
			s.miss()
			return
		}
		s.hit()
		st.persistMu.Lock()
		st.persisted = true
		st.persistMu.Unlock()
	})
}

// persistLattice writes the lattice artifact behind, once, if the
// evaluation actually enumerated it (never forcing an enumeration just
// to persist one).
func (s *Store) persistLattice(c *core.Computation) {
	if s == nil || s.mode != ReadWrite {
		return
	}
	lat := history.Shared(c)
	if !lat.Enumerated() {
		return
	}
	st := latState(c)
	st.persistMu.Lock()
	defer st.persistMu.Unlock()
	if st.persisted {
		return
	}
	st.persisted = true
	s.write(latticeKey(core.Fingerprint(c)), kindLattice, lat.Encode())
}

// ---- verdict payload codec ----

// Verdict payload layout:
//
//	flag byte (0 pass, 1 fail) — pass records end here.
//	formula hash (hex, length-prefixed): the canonical hash of the
//	  failing (sub)formula, matched against the live formula's
//	  decomposition on decode so the rehydrated counterexample renders
//	  byte-identically to the computed one.
//	uvarint numEvents (validated against the live computation)
//	history set | uvarint seqLen | seq sets — each set as uvarint size
//	  plus delta-encoded members.
func encodeVerdict(cx *logic.Counterexample) []byte {
	if cx == nil {
		return []byte{0}
	}
	out := []byte{1}
	fh := gemlang.HashFormula(cx.Formula)
	out = binary.AppendUvarint(out, uint64(len(fh)))
	out = append(out, fh...)
	out = binary.AppendUvarint(out, uint64(cx.Comp.NumEvents()))
	out = appendSet(out, cx.History.Set())
	out = binary.AppendUvarint(out, uint64(len(cx.Seq)))
	for _, h := range cx.Seq {
		out = appendSet(out, h.Set())
	}
	return out
}

func appendSet(out []byte, set order.Bitset) []byte {
	members := set.Members()
	out = binary.AppendUvarint(out, uint64(len(members)))
	prev := -1
	for _, m := range members {
		out = binary.AppendUvarint(out, uint64(m-prev))
		prev = m
	}
	return out
}

// decodeVerdict rehydrates a verdict payload against the live formula
// and computation. It validates everything: sets must be in-range,
// strictly increasing, and prefix-closed (history.FromSet), and the
// recorded failing formula must match the live formula or one of the
// subformulas the engines can attribute a failure to (And conjuncts,
// recursively, and □ bodies — mirroring the dispatch in logic.Holds).
// Any mismatch is an error, which the caller treats as a miss.
func decodeVerdict(payload []byte, f logic.Formula, c *core.Computation) (*logic.Counterexample, error) {
	if len(payload) == 0 {
		return nil, errCorrupt
	}
	flag, rest := payload[0], payload[1:]
	switch flag {
	case 0:
		if len(rest) != 0 {
			return nil, errCorrupt
		}
		return nil, nil
	case 1:
	default:
		return nil, errCorrupt
	}
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, false
		}
		rest = rest[n:]
		return v, true
	}
	fhLen, ok := next()
	if !ok || fhLen > uint64(len(rest)) {
		return nil, errCorrupt
	}
	fh := string(rest[:fhLen])
	rest = rest[fhLen:]
	failing := matchFormula(f, fh)
	if failing == nil {
		return nil, errCorrupt
	}
	n, ok := next()
	if !ok || int(n) != c.NumEvents() {
		return nil, errCorrupt
	}
	readSet := func() (order.Bitset, bool) {
		size, ok := next()
		if !ok || size > uint64(c.NumEvents()) {
			return order.Bitset{}, false
		}
		set := order.NewBitset(c.NumEvents())
		prev := -1
		for i := uint64(0); i < size; i++ {
			gap, ok := next()
			if !ok || gap == 0 || gap > uint64(c.NumEvents()) {
				return order.Bitset{}, false
			}
			m := prev + int(gap)
			if m >= c.NumEvents() {
				return order.Bitset{}, false
			}
			set.Set(m)
			prev = m
		}
		return set, true
	}
	hset, ok := readSet()
	if !ok {
		return nil, errCorrupt
	}
	h, err := history.FromSet(c, hset)
	if err != nil {
		return nil, errCorrupt
	}
	seqLen, ok := next()
	if !ok || seqLen > uint64(len(rest))+1 {
		return nil, errCorrupt
	}
	var seq history.Sequence
	for i := uint64(0); i < seqLen; i++ {
		set, ok := readSet()
		if !ok {
			return nil, errCorrupt
		}
		sh, err := history.FromSet(c, set)
		if err != nil {
			return nil, errCorrupt
		}
		seq = append(seq, sh)
	}
	if len(rest) != 0 {
		return nil, errCorrupt
	}
	return &logic.Counterexample{Formula: failing, History: h, Seq: seq, Comp: c}, nil
}

// matchFormula finds the (sub)formula of f whose canonical hash is
// wantHash, searching the shapes logic.Holds can attribute a failure to:
// the formula itself, And conjuncts (the top-level split), and □ bodies
// (the invariant reduction reports the body). Returns nil if nothing
// matches — the record then belongs to a different formula and must be
// treated as corrupt.
func matchFormula(f logic.Formula, wantHash string) logic.Formula {
	if gemlang.HashFormula(f) == wantHash {
		return f
	}
	switch g := f.(type) {
	case logic.And:
		for _, sub := range g {
			if m := matchFormula(sub, wantHash); m != nil {
				return m
			}
		}
	case logic.Box:
		return matchFormula(g.F, wantHash)
	}
	return nil
}

// ---- guards payload codec ----

// Guard payload: uvarint length, then the bits packed LSB-first. Length
// zero round-trips as a nil vector ("no guard fires").
func encodeGuards(hold []bool) []byte {
	out := binary.AppendUvarint(nil, uint64(len(hold)))
	var cur byte
	for i, h := range hold {
		if h {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			out = append(out, cur)
			cur = 0
		}
	}
	if len(hold)%8 != 0 {
		out = append(out, cur)
	}
	return out
}

func decodeGuards(payload []byte) ([]bool, error) {
	n, sz := binary.Uvarint(payload)
	if sz <= 0 || n > uint64(len(payload))*8 {
		return nil, errCorrupt
	}
	rest := payload[sz:]
	if uint64(len(rest)) != (n+7)/8 {
		return nil, errCorrupt
	}
	if n == 0 {
		return nil, nil
	}
	hold := make([]bool, n)
	for i := range hold {
		hold[i] = rest[i/8]&(1<<(i%8)) != 0
	}
	// Bits past n must be clear, so distinct payloads stay distinct.
	if tail := n % 8; tail != 0 && rest[len(rest)-1]>>tail != 0 {
		return nil, errCorrupt
	}
	return hold, nil
}
